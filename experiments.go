package dnsttl

import (
	"fmt"
	"sort"

	"dnsttl/internal/experiments"
	"dnsttl/internal/zonegen"
)

// Report is one reproduced table or figure.
type Report = experiments.Report

// ExperimentScale trades fidelity for runtime. The paper-scale equivalents
// use ~15k VPs and million-entry lists; Quick is sized for interactive use
// and tests, Full for overnight reproduction runs.
type ExperimentScale struct {
	// Probes sizes the vantage-point fleets.
	Probes int
	// CrawlScale multiplies the generated list sizes (1.0 ≈ tens of
	// thousands of domains).
	CrawlScale float64
	// Resolvers sizes the passive .nl resolver population.
	Resolvers int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the worker pool for experiments whose configuration
	// grids fan out in parallel (TTL points, outage steps, farm sizes).
	// 0 means GOMAXPROCS; 1 forces the serial path. Results are identical
	// at any setting.
	Workers int
	// Chaos optionally replaces the canned chaos-harness scenarios with one
	// custom fault schedule in the ParseFaultSchedule grammar, e.g.
	// "outage:192.88.0.7:1200s+2400s;loss:*:0s+600s:0.5". Only the "chaos"
	// experiment reads it.
	Chaos string
}

// QuickScale is suitable for tests and demos (seconds).
func QuickScale() ExperimentScale {
	return ExperimentScale{Probes: 250, CrawlScale: 0.05, Resolvers: 250, Seed: 42}
}

// FullScale is the benchmark-grade configuration (minutes).
func FullScale() ExperimentScale {
	return ExperimentScale{Probes: 2000, CrawlScale: 1.0, Resolvers: 1500, Seed: 42}
}

// ExperimentIDs lists the runnable reproductions in paper order.
var ExperimentIDs = []string{
	"table1", "table2", "figure1a", "figure1b", "figure2", "figures3-4",
	"figures6-8", "offline", "table5", "figure9", "tables6-7",
	"table8", "table9", "figure10", "table10",
	"ablation-glue", "ablation-stale", "ablation-prefetch", "ablation-cap",
	"dnssec", "hitrate", "outage-sweep", "propagation", "parent-child",
	"farm-fragmentation", "chaos", "cache-pressure", "planet-scale",
	"push-propagation", "water-torture",
}

// RunExperiment regenerates one paper artifact. IDs are listed in
// ExperimentIDs; unknown IDs return an error.
func RunExperiment(id string, sc ExperimentScale) (*Report, error) {
	if sc.Probes <= 0 {
		sc = QuickScale()
	}
	switch id {
	case "table1":
		return experiments.Table1(experiments.NewTestbed(sc.Seed)), nil
	case "table2":
		return experiments.Table2(sc.Probes/2, sc.Seed), nil
	case "figure1a":
		return experiments.Figure1UyNS(sc.Probes, sc.Seed), nil
	case "figure1b":
		return experiments.Figure1UyA(sc.Probes, sc.Seed), nil
	case "figure2":
		return experiments.Figure2GoogleCo(sc.Probes, sc.Seed), nil
	case "figures3-4":
		return experiments.NlPassive(experiments.NlPassiveConfig{
			Resolvers: sc.Resolvers, Days: 2, Seed: sc.Seed,
		}), nil
	case "figures6-8":
		return experiments.BailiwickPair(sc.Probes, sc.Seed), nil
	case "offline":
		return experiments.OfflineChild(sc.Probes, sc.Seed), nil
	case "table5", "figure9", "table8", "table9", "tables6-7", "parent-child":
		w, results := experiments.CrawlWorld(sc.CrawlScale, sc.Seed)
		switch id {
		case "table5":
			return experiments.Table5(results), nil
		case "figure9":
			return experiments.Figure9(results), nil
		case "table8":
			return experiments.Table8(results), nil
		case "table9":
			return experiments.Table9(results), nil
		case "parent-child":
			return experiments.ParentChildComparison(results), nil
		default:
			return experiments.Tables6And7(w, sc.Seed), nil
		}
	case "figure10":
		return experiments.Figure10(sc.Probes, sc.Seed), nil
	case "table10":
		return experiments.Table10Figure11(sc.Probes, sc.Seed), nil
	case "ablation-glue":
		return experiments.AblationGlueCoupling(sc.Probes/2, sc.Seed), nil
	case "ablation-stale":
		return experiments.AblationServeStale(sc.Probes/2, sc.Seed), nil
	case "ablation-prefetch":
		return experiments.AblationPrefetch(sc.Probes/2, sc.Seed), nil
	case "ablation-cap":
		return experiments.AblationCapStyle(sc.Seed), nil
	case "dnssec":
		return experiments.ValidationCentricity(sc.Probes/2, sc.Seed), nil
	case "hitrate":
		return experiments.HitRateVsTTL(sc.Probes*40, sc.Workers, sc.Seed), nil
	case "outage-sweep":
		return experiments.OutageSweep(sc.Probes/3, sc.Workers, sc.Seed), nil
	case "propagation":
		return experiments.PropagationSweep(sc.Probes/3, sc.Workers, sc.Seed), nil
	case "farm-fragmentation":
		return experiments.FarmFragmentation(sc.Probes*20, sc.Workers, sc.Seed), nil
	case "chaos":
		return experiments.ChaosExperiment(max(sc.Probes/40, 2), sc.Workers, sc.Seed, sc.Chaos), nil
	case "cache-pressure":
		return experiments.CachePressure(sc.Probes*16, sc.Workers, sc.Seed), nil
	case "planet-scale":
		// Fully closed-form: scale knobs don't apply, and there is no
		// randomness to seed.
		return experiments.PlanetScale(), nil
	case "push-propagation":
		return experiments.PushExperiment(max(sc.Probes/80, 2), sc.Workers, sc.Seed), nil
	case "water-torture":
		return experiments.WaterTorture(sc.Probes*4, sc.Workers, sc.Seed), nil
	}
	return nil, fmt.Errorf("dnsttl: unknown experiment %q (known: %v)", id, ExperimentIDs)
}

// RunAllExperiments regenerates every artifact, sharing one crawl.
func RunAllExperiments(sc ExperimentScale) ([]*Report, error) {
	if sc.Probes <= 0 {
		sc = QuickScale()
	}
	var out []*Report
	for _, id := range []string{"table1", "table2", "figure1a", "figure1b", "figure2", "figures3-4", "figures6-8", "offline"} {
		r, err := RunExperiment(id, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	w, results := experiments.CrawlWorld(sc.CrawlScale, sc.Seed)
	out = append(out,
		experiments.Table5(results),
		experiments.Tables6And7(w, sc.Seed),
		experiments.Table8(results),
		experiments.Table9(results),
		experiments.Figure9(results),
		experiments.ParentChildComparison(results),
	)
	for _, id := range []string{
		"figure10", "table10",
		"ablation-glue", "ablation-stale", "ablation-prefetch", "ablation-cap",
		"dnssec", "hitrate", "outage-sweep", "propagation",
		"farm-fragmentation", "chaos", "cache-pressure", "planet-scale",
		"push-propagation", "water-torture",
	} {
		r, err := RunExperiment(id, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// CrawlLists names the five generated domain populations.
func CrawlLists() []string {
	out := make([]string, 0, len(zonegen.AllLists))
	for _, l := range zonegen.AllLists {
		out = append(out, string(l))
	}
	sort.Strings(out)
	return out
}
