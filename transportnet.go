package dnsttl

import (
	"crypto/tls"
	"time"

	"dnsttl/internal/transport"
)

// TransportKind selects a real-socket upstream transport: UDP with
// truncation-driven TCP fallback, pipelined persistent TCP, DoT, or DoH.
type TransportKind = transport.Kind

// Transport kinds, re-exported for NewTransportNet.
const (
	TransportUDP = transport.UDP
	TransportTCP = transport.TCP
	TransportDoT = transport.DoT
	TransportDoH = transport.DoH
)

// ParseTransportKind maps "udp", "tcp", "dot", or "doh" to a kind.
func ParseTransportKind(s string) (TransportKind, error) { return transport.ParseKind(s) }

// Transport moves one wire query to an upstream and returns the response —
// the resolver-side real-socket plane (see internal/transport).
type Transport = transport.Transport

// TransportOptions parameterizes NewTransportNet.
type TransportOptions struct {
	// Port is the upstream destination port; 0 uses the kind's IANA
	// default (53, 53, 853, 443).
	Port uint16
	// PoolSize bounds live connections (or pooled UDP sockets) per
	// upstream; 0 means the package default.
	PoolSize int
	// Timeout bounds one exchange end to end; 0 means the default (5 s).
	Timeout time.Duration
	// IdleTimeout closes pooled connections unused this long; 0 means the
	// default (30 s).
	IdleTimeout time.Duration
	// TLS configures DoT/DoH upstream verification; nil uses defaults.
	TLS *tls.Config
	// ServerName overrides the TLS SNI / certificate host check.
	ServerName string
	// Insecure skips TLS certificate verification (self-signed upstreams).
	Insecure bool
	// Registry, when non-nil, receives the transport.* pool and exchange
	// metrics.
	Registry *Registry
}

// TransportNet is an Exchanger over a pooled real-socket transport; plug
// it into ClientConfig.Net to iterate over UDP, TCP, DoT, or DoH. Close
// releases the pooled connections.
type TransportNet = transport.Net

// NewTransportNet builds a pooled transport of the given kind wrapped in
// the Exchanger adapter the resolver consumes. The retry/hedging plane,
// span tracing, and caching all work unchanged over it.
func NewTransportNet(kind TransportKind, opts TransportOptions) (*TransportNet, error) {
	t, err := transport.New(transport.Config{
		Kind:        kind,
		PoolSize:    opts.PoolSize,
		Timeout:     opts.Timeout,
		IdleTimeout: opts.IdleTimeout,
		TLS:         opts.TLS,
		ServerName:  opts.ServerName,
		Insecure:    opts.Insecure,
		Metrics:     transport.NewMetrics(opts.Registry),
	})
	if err != nil {
		return nil, err
	}
	port := opts.Port
	if port == 0 {
		port = kind.DefaultPort()
	}
	return transport.NewNet(t, port), nil
}
