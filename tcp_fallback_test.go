package dnsttl

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
)

// TestTCPFallback drives the full truncation path over the OS network: a
// plain (non-EDNS) UDP query to a response bigger than 512 bytes comes back
// truncated, and UDPNet retries it over TCP transparently.
func TestTCPFallback(t *testing.T) {
	z := NewZone(NewName("example.org"))
	z.MustAdd(dnswire.NewSOA("example.org", 3600, "ns1.example.org", "x.example.org", 1, 1, 1, 1, 60))
	for i := 0; i < 10; i++ {
		z.MustAdd(dnswire.NewTXT("big.example.org", 60, fmt.Sprintf("%d-%s", i, strings.Repeat("y", 100))))
	}
	srv := NewServer(NewName("ns1.example.org"), nil)
	srv.AddZone(z)
	udpAddr, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tcpAddr, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A classic 512-byte client: no OPT record.
	q := dnswire.NewIterativeQuery(5, NewName("big.example.org"), TypeTXT)
	wire, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}

	// Without fallback: truncated, empty.
	plain := UDPNet{Port: udpAddr.Port(), Timeout: 2 * time.Second, DisableTCPFallback: true}
	respWire, _, err := plain.Exchange(netip.Addr{}, udpAddr.Addr(), wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.TC || len(resp.Answer) != 0 {
		t.Fatalf("expected truncation without fallback: TC=%v answers=%d", resp.Header.TC, len(resp.Answer))
	}

	// With fallback: the TCP retry returns the full answer.
	fb := UDPNet{Port: udpAddr.Port(), TCPPort: tcpAddr.Port(), Timeout: 2 * time.Second}
	respWire, rtt, err := fb.Exchange(netip.Addr{}, udpAddr.Addr(), wire)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.TC || len(resp.Answer) != 10 {
		t.Fatalf("fallback failed: TC=%v answers=%d", resp.Header.TC, len(resp.Answer))
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v", rtt)
	}
}
