package dnsttl

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/cache"
	"dnsttl/internal/farm"
	"dnsttl/internal/middleware"
	"dnsttl/internal/obs"
	"dnsttl/internal/qlog"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/transport"
	"dnsttl/internal/zone"
)

// Result is a completed client resolution: the response message plus the
// trace the paper's measurements are built from (latency, cache hit,
// answered TTL, final server).
type Result = resolver.Result

// Exchanger moves one wire-format query to a server and returns the reply;
// both the in-memory simulation network and UDPNet implement it.
type Exchanger = simnet.Exchanger

// UDPNet is an Exchanger over real UDP sockets, so the Client can resolve
// against actual nameservers (or the package's own Server instances bound
// to localhost). Truncated UDP responses are retried over TCP
// automatically, per RFC 1035 §4.2.2.
type UDPNet struct {
	// Port is the destination port; 0 means 53.
	Port uint16
	// TCPPort is the fallback port for truncated responses; 0 means Port.
	TCPPort uint16
	// Timeout per exchange; 0 means 5 s.
	Timeout time.Duration
	// DisableTCPFallback turns off the truncation retry.
	DisableTCPFallback bool
}

// Exchange implements Exchanger.
func (u UDPNet) Exchange(src, dst netip.Addr, query []byte) ([]byte, time.Duration, error) {
	port := u.Port
	if port == 0 {
		port = 53
	}
	timeout := u.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	resp, rtt, err := authoritative.UDPExchange(netip.AddrPortFrom(dst, port), query, timeout)
	if err != nil {
		return resp, rtt, err
	}
	// TC bit set? Retry over TCP for the full answer.
	if !u.DisableTCPFallback && len(resp) >= 4 && resp[2]&0x02 != 0 {
		tcpPort := u.TCPPort
		if tcpPort == 0 {
			tcpPort = port
		}
		tcpResp, tcpRTT, tcpErr := authoritative.TCPExchange(netip.AddrPortFrom(dst, tcpPort), query, timeout)
		if tcpErr == nil {
			return tcpResp, rtt + tcpRTT, nil
		}
	}
	return resp, rtt, nil
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Policy selects the behavioral family; zero value means
	// DefaultPolicy.
	Policy Policy
	// Roots are the root server addresses to iterate from.
	Roots []netip.Addr
	// Net carries queries; nil means real UDP on port 53.
	Net Exchanger
	// Clock drives TTL decay; nil means wall clock.
	Clock Clock
	// LocalRoot is the RFC 7706 mirror for policies that use one.
	LocalRoot *Zone
	// Frontends > 1 runs the client as a resolver farm of that many
	// recursive frontends behind one balancer (the paper's §4.4 public
	// resolver shape); 0 or 1 keeps the classic single resolver.
	Frontends int
	// Topology selects how much cache the farm frontends share
	// (FarmPrivate, FarmShared, FarmSharded). Ignored for a single
	// resolver.
	Topology FarmTopology
	// Placement picks the frontend for each query (FarmPlaceRandom,
	// FarmPlaceRoundRobin, FarmPlaceHashQName).
	Placement FarmPlacement
	// Coalesce enables farm-wide singleflight on identical in-flight
	// queries.
	Coalesce bool
	// CacheCapacity bounds the cache entry count (per frontend for
	// FarmPrivate, per shard for FarmSharded, total otherwise); 0 keeps the
	// cache default.
	CacheCapacity int
	// CacheBytes bounds the cache memory charge (wire-format record bytes
	// plus index overhead), with the same per-frontend/per-shard/total
	// semantics as CacheCapacity; 0 means unbounded.
	CacheBytes int64
	// Eviction selects the cache eviction policy (EvictFIFO, EvictLRU,
	// EvictSLRU); the zero value is the legacy FIFO.
	Eviction EvictionPolicy
	// Seed makes server selection and query IDs deterministic; 0 uses 1.
	Seed int64
	// Registry, when non-nil, collects the client's telemetry — resolution
	// counters, latency/TTL histograms, cache gauges, and (for farms) the
	// per-frontend fleet counters — for /metrics-style introspection.
	Registry *Registry
	// Tracer, when non-nil, records each resolution's lifecycle as a span
	// tree retrievable by name (the /trace endpoint, dnsq -trace).
	Tracer *Tracer
	// QueryLog, when non-nil, captures one structured record per upstream
	// exchange the client's resolver(s) perform (see NewQueryLog and the
	// Logger's Tap method). Nil disables capture at the cost of one pointer
	// check per exchange.
	QueryLog *QueryLogTap
	// Pipeline is a middleware graph spec (see docs/middleware.md) run in
	// front of the resolver datapath: blocklists, per-client rate limits,
	// response memoization, TTL clamps. Empty keeps the default pipeline —
	// a bare pass-through that resolves byte-for-byte like a pipelineless
	// client.
	Pipeline string
}

// Registry is the telemetry metrics registry shared by the resolver, farm,
// cache, and authoritative server (see internal/obs).
type Registry = obs.Registry

// Tracer records query lifecycles as span trees.
type Tracer = obs.Tracer

// MetricsSnapshot is a deterministic point-in-time copy of a Registry.
type MetricsSnapshot = obs.Snapshot

// NewRegistry builds a metrics registry; a nil clock means wall time.
func NewRegistry(clock Clock) *Registry { return obs.NewRegistry(clock) }

// NewTracer builds a lifecycle tracer; a nil clock means wall time.
func NewTracer(clock Clock) *Tracer { return obs.NewTracer(clock) }

// ServeMetrics starts an HTTP introspection listener on addr (":0" picks a
// port) exposing /metrics from reg and /trace from tr (either may be nil).
// It returns the bound address and a close function.
func ServeMetrics(addr string, reg *Registry, tr *Tracer) (string, func() error, error) {
	return obs.Serve(addr, reg, tr)
}

// MetricsHistory is a ring of timestamped registry snapshots backing
// /metrics?window= rate queries (see internal/obs.History).
type MetricsHistory = obs.History

// NewMetricsHistory builds a snapshot ring over reg holding up to capacity
// samples (0 means 360).
func NewMetricsHistory(reg *Registry, capacity int) *MetricsHistory {
	return obs.NewHistory(reg, capacity)
}

// ServeMetricsWith is ServeMetrics plus a MetricsHistory enabling windowed
// /metrics?window= queries (hist may be nil).
func ServeMetricsWith(addr string, reg *Registry, tr *Tracer, hist *MetricsHistory) (string, func() error, error) {
	return obs.ServeWith(addr, reg, tr, hist)
}

// QueryLog is the structured query-log pipeline: an async lock-free ring
// feeding JSONL or binary size-rotated log files (see internal/qlog).
type QueryLog = qlog.Logger

// QueryLogConfig parameterizes NewQueryLog.
type QueryLogConfig = qlog.Config

// QueryLogTap is a transport-labeled capture handle produced by
// (*QueryLog).Tap; ClientConfig and Server.AttachQueryLog accept one.
type QueryLogTap = qlog.Tap

// QueryLogRecord is one captured query-log event.
type QueryLogRecord = qlog.Record

// NewQueryLog opens a structured query log (see QueryLogConfig for the
// rotation, sampling, and encoding knobs). Close it to flush.
func NewQueryLog(cfg QueryLogConfig) (*QueryLog, error) { return qlog.New(cfg) }

// ReadQueryLog decodes every record across the given query-log files
// (auto-detecting JSONL vs binary), returning the records and the count of
// undecodable entries.
func ReadQueryLog(paths ...string) ([]QueryLogRecord, int, error) { return qlog.ReadAll(paths...) }

// QueryLogFiles lists a rotated query-log set oldest-first: base.N … base.
func QueryLogFiles(base string) ([]string, error) { return qlog.RotatedSet(base) }

// QueryLogFormat selects the query-log on-disk encoding.
type QueryLogFormat = qlog.Format

// QueryLogPointMask selects which capture points a query log records.
type QueryLogPointMask = qlog.PointMask

// ParseQueryLogFormat maps "jsonl" or "binary" to a QueryLogFormat.
func ParseQueryLogFormat(s string) (QueryLogFormat, error) { return qlog.ParseFormat(s) }

// ParseQueryLogPoints parses a comma list of capture points — "client",
// "response", "upstream", or "all" — into a QueryLogPointMask.
func ParseQueryLogPoints(s string) (QueryLogPointMask, error) { return qlog.ParsePointMask(s) }

// FarmTopology selects the farm cache design; see the Farm* constants.
type FarmTopology = farm.Topology

// FarmPlacement selects the farm's query placement policy.
type FarmPlacement = farm.Placement

// Farm cache topologies and placement policies, re-exported for
// ClientConfig.
const (
	FarmPrivate = farm.Private
	FarmShared  = farm.Shared
	FarmSharded = farm.Sharded

	FarmPlaceRandom     = farm.PlaceRandom
	FarmPlaceRoundRobin = farm.PlaceRoundRobin
	FarmPlaceHashQName  = farm.PlaceHashQName
)

// ParseFarmTopology maps "private", "shared", or "sharded" to a topology.
func ParseFarmTopology(s string) (FarmTopology, error) { return farm.ParseTopology(s) }

// ParseFarmPlacement maps "random", "roundrobin", or "hash" to a placement.
func ParseFarmPlacement(s string) (FarmPlacement, error) { return farm.ParsePlacement(s) }

// FarmStats is the fleet telemetry snapshot (per-frontend + aggregate).
type FarmStats = farm.Stats

// EvictionPolicy selects how caches order entries for eviction under
// memory pressure.
type EvictionPolicy = cache.EvictionPolicy

// Cache eviction policies, re-exported for ClientConfig.
const (
	EvictFIFO = cache.EvictFIFO
	EvictLRU  = cache.EvictLRU
	EvictSLRU = cache.EvictSLRU
)

// ParseEvictionPolicy maps "fifo", "lru", or "slru" to a policy.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) { return cache.ParseEvictionPolicy(s) }

// Client is an iterative caching DNS resolver — the library's front door
// for resolution. With ClientConfig.Frontends > 1 it is a whole resolver
// farm behind one Lookup. Every resolution runs through a middleware
// pipeline (internal/middleware); the zero-config default pipeline is a
// bare wrapper over the legacy datapath.
type Client struct {
	r *resolver.Resolver // single-resolver mode; nil when farmed
	f *farm.Farm         // farm mode; nil for a single resolver

	// Single-resolver pipeline state; farm mode keeps per-frontend
	// pipelines inside the farm.
	env middleware.Env
	pmu sync.RWMutex
	p   *middleware.Pipeline
}

// NewClient builds a Client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Roots) == 0 {
		return nil, fmt.Errorf("dnsttl: NewClient requires at least one root address")
	}
	if cfg.Net == nil {
		cfg.Net = UDPNet{}
	}
	if cfg.Policy == (Policy{}) {
		cfg.Policy = DefaultPolicy()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Frontends > 1 {
		f := farm.New(farm.Config{
			Frontends:     cfg.Frontends,
			Topology:      cfg.Topology,
			Placement:     cfg.Placement,
			Coalesce:      cfg.Coalesce,
			Policy:        cfg.Policy,
			CacheCapacity: cfg.CacheCapacity,
			CacheBytes:    cfg.CacheBytes,
			Eviction:      cfg.Eviction,
			LocalRoot:     cfg.LocalRoot,
			Seed:          cfg.Seed,
			Registry:      cfg.Registry,
			Tracer:        cfg.Tracer,
			QueryLog:      cfg.QueryLog,
		}, netip.MustParseAddr("127.0.0.1"), cfg.Net, cfg.Clock, cfg.Roots)
		if err := f.SetPipeline(cfg.Pipeline); err != nil {
			return nil, err
		}
		return &Client{f: f}, nil
	}
	r := resolver.New(netip.MustParseAddr("127.0.0.1"), cfg.Policy, cfg.Net, cfg.Clock, cfg.Roots, cfg.Seed)
	if cfg.CacheCapacity > 0 || cfg.CacheBytes > 0 || cfg.Eviction != cache.EvictFIFO {
		ccfg := cfg.Policy.CacheConfig()
		ccfg.Capacity = cfg.CacheCapacity
		ccfg.MaxBytes = cfg.CacheBytes
		ccfg.Eviction = cfg.Eviction
		r.Cache = cache.New(cfg.Clock, ccfg)
	}
	if cfg.LocalRoot != nil {
		r.LocalRootZone = cfg.LocalRoot
	}
	if cfg.Registry != nil {
		r.Obs = resolver.NewMetrics(cfg.Registry)
		cache.Instrument(cfg.Registry, "cache", r.Cache.Stats)
	}
	r.Tracer = cfg.Tracer
	r.QLog = cfg.QueryLog
	c := &Client{r: r}
	c.env = middleware.Env{Lookup: r.Resolve, Clock: cfg.Clock, Registry: cfg.Registry}
	p, err := middleware.Build(cfg.Pipeline, c.env)
	if err != nil {
		return nil, err
	}
	c.p = p
	return c, nil
}

// Lookup resolves (name, qtype), from cache when possible. In-process
// lookups carry no client address, so client-keyed pipeline stages (the
// rate limiter) pass them untouched.
func (c *Client) Lookup(name Name, qtype Type) (*Result, error) {
	resp, err := c.resolveQuery(context.Background(), &middleware.Query{Name: name, Type: qtype})
	if err != nil || resp == nil {
		return nil, err
	}
	return resp.Result, nil
}

// LookupFrom is Lookup on behalf of a network client: the pipeline sees
// the client address, so blocklists, per-client rate limits, and qlog
// attribution apply as they would for a wire query.
func (c *Client) LookupFrom(name Name, qtype Type, client netip.Addr) (*Result, error) {
	resp, err := c.resolveQuery(context.Background(), &middleware.Query{Name: name, Type: qtype, Client: client})
	if err != nil || resp == nil {
		return nil, err
	}
	return resp.Result, nil
}

// resolveQuery runs one query through the active pipeline, returning the
// middleware response (verdict included) for callers — the recursive
// server — that label outcomes or honor Drop.
func (c *Client) resolveQuery(ctx context.Context, q *middleware.Query) (*middleware.Response, error) {
	if c.f != nil {
		return c.f.ResolveQuery(ctx, q)
	}
	c.pmu.RLock()
	p := c.p
	c.pmu.RUnlock()
	return p.Resolve(ctx, q)
}

// SetPipeline compiles spec and swaps the client onto it atomically; an
// invalid spec is rejected with the active pipeline untouched (the
// resolverd SIGHUP-reload contract). The empty spec restores the default
// pass-through pipeline.
func (c *Client) SetPipeline(spec string) error {
	if c.f != nil {
		return c.f.SetPipeline(spec)
	}
	p, err := middleware.Build(spec, c.env)
	if err != nil {
		return err
	}
	c.pmu.Lock()
	c.p = p
	c.pmu.Unlock()
	return nil
}

// PipelineStages lists the active pipeline's stage names in spec order —
// ["resolver"] for the default pipeline.
func (c *Client) PipelineStages() []string {
	if c.f != nil {
		return c.f.PipelineStages()
	}
	c.pmu.RLock()
	defer c.pmu.RUnlock()
	return c.p.Stages()
}

// CheckPipeline validates a middleware graph spec without building a
// client — daemons use it to vet a -pipeline file before (re)loading.
func CheckPipeline(spec string) error { return middleware.Check(spec) }

// CacheStats reports the client's cache counters — aggregated over the
// whole fleet when the client is a farm.
func (c *Client) CacheStats() CacheStats {
	if c.f != nil {
		return c.f.CacheStats()
	}
	return c.r.Cache.Stats()
}

// FarmStats reports fleet telemetry. ok is false for a single-resolver
// client, which has no farm counters.
func (c *Client) FarmStats() (st FarmStats, ok bool) {
	if c.f == nil {
		return FarmStats{}, false
	}
	return c.f.Stats(), true
}

// CacheStats is the cache counter snapshot.
type CacheStats = cache.Stats

// Forwarder is a stub/forwarding resolver: it relays queries to one or
// more full recursives and (optionally) caches the answers — the second
// resolver species of the paper's §4.4 infrastructure analysis.
type Forwarder = resolver.Forwarder

// NewForwarder builds a forwarder with its own cache; set Passthrough for
// a pure load-balancing frontend.
func NewForwarder(addr netip.Addr, upstreams []netip.Addr, net Exchanger, clock Clock, seed int64) *Forwarder {
	return resolver.NewForwarder(addr, upstreams, net, clock, seed)
}

// Server is an authoritative DNS server for a set of zones, servable over
// real UDP, TCP, DoT, and DoH, or pluggable into a simulation.
type Server struct {
	s   *authoritative.Server
	u   *authoritative.UDPServer
	t   *authoritative.TCPServer
	dot *authoritative.TCPServer
	doh *authoritative.DoHServer
}

// NewServer creates a server named after its primary nameserver host.
func NewServer(name Name, clock Clock) *Server {
	return &Server{s: authoritative.NewServer(name, clock)}
}

// AddZone makes the server authoritative for z.
func (s *Server) AddZone(z *Zone) { s.s.AddZone(z) }

// ParseZone reads a master-file zone.
func ParseZone(text string, origin Name) (*Zone, error) {
	return zone.Parse(strings.NewReader(text), origin)
}

// Handle answers one decoded query (for in-process use).
func (s *Server) Handle(q *Message, from netip.Addr) *Message {
	return s.s.Handle(q, from)
}

// ListenUDP binds addr ("127.0.0.1:0" style) and serves until Close. It
// returns the bound address.
func (s *Server) ListenUDP(addr string) (netip.AddrPort, error) {
	s.u = &authoritative.UDPServer{Server: s.s}
	return s.u.Listen(addr)
}

// ListenTCP binds addr for the TCP transport (truncation fallback) and
// serves until Close, returning the bound address.
func (s *Server) ListenTCP(addr string) (netip.AddrPort, error) {
	s.t = &authoritative.TCPServer{Server: s.s}
	return s.t.Listen(addr)
}

// ListenDoT binds addr for DNS-over-TLS service (RFC 7858) with the given
// TLS config, serving until Close.
func (s *Server) ListenDoT(addr string, cfg *tls.Config) (netip.AddrPort, error) {
	s.dot = &authoritative.TCPServer{Server: s.s, TLS: cfg}
	return s.dot.Listen(addr)
}

// ListenDoH binds addr for DNS-over-HTTPS service (RFC 8484) with the
// given TLS config, serving until Close.
func (s *Server) ListenDoH(addr string, cfg *tls.Config) (netip.AddrPort, error) {
	s.doh = &authoritative.DoHServer{Server: s.s, TLS: cfg}
	return s.doh.Listen(addr)
}

// SelfSignedTLS mints an ephemeral server certificate for the given hosts
// plus a client CertPool trusting it — the batteries for DoT/DoH test and
// demo setups without a real PKI.
func SelfSignedTLS(hosts ...string) (tls.Certificate, *x509.CertPool, error) {
	return transport.SelfSigned(hosts...)
}

// QueryCount reports queries handled.
func (s *Server) QueryCount() uint64 { return s.s.QueryCount() }

// RRLConfig configures authoritative response rate limiting; see
// internal/authoritative's rrl.go for band semantics.
type RRLConfig = authoritative.RRLConfig

// DefaultRRLConfig is the BIND-flavored RRL starting point (5 rps, burst
// 15, slip 2, /24 and /56 client aggregation).
func DefaultRRLConfig() RRLConfig { return authoritative.DefaultRRLConfig() }

// ParseRRLConfig parses "rps=5,burst=15,slip=2,prefix4=24,prefix6=56"
// flag syntax ("default" or "" for the defaults).
func ParseRRLConfig(s string) (RRLConfig, error) { return authoritative.ParseRRLConfig(s) }

// EnableRRL turns on response rate limiting for UDP responses: limited
// responses are dropped, except every slip-th which goes out truncated so
// honest clients can fall back to TCP (TCP is never limited).
func (s *Server) EnableRRL(cfg RRLConfig) { s.s.EnableRRL(cfg) }

// DisableRRL removes the response rate limiter.
func (s *Server) DisableRRL() { s.s.DisableRRL() }

// Instrument mirrors the server's query counters into reg (auth.queries,
// auth.referrals, auth.nxdomain, auth.refused); nil detaches.
func (s *Server) Instrument(reg *Registry) { s.s.Instrument(reg) }

// AttachQueryLog captures one structured response-out record per handled
// query through tap — the paper's §3.4 authoritative-side capture. A nil
// tap detaches.
func (s *Server) AttachQueryLog(tap *QueryLogTap) { s.s.QLog = tap }

// Close stops all listening transports.
func (s *Server) Close() error {
	var err error
	if s.u != nil {
		err = s.u.Close()
	}
	if s.t != nil {
		if e := s.t.Close(); err == nil {
			err = e
		}
	}
	if s.dot != nil {
		if e := s.dot.Close(); err == nil {
			err = e
		}
	}
	if s.doh != nil {
		if e := s.doh.Close(); err == nil {
			err = e
		}
	}
	return err
}
