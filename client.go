package dnsttl

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/cache"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// Result is a completed client resolution: the response message plus the
// trace the paper's measurements are built from (latency, cache hit,
// answered TTL, final server).
type Result = resolver.Result

// Exchanger moves one wire-format query to a server and returns the reply;
// both the in-memory simulation network and UDPNet implement it.
type Exchanger = simnet.Exchanger

// UDPNet is an Exchanger over real UDP sockets, so the Client can resolve
// against actual nameservers (or the package's own Server instances bound
// to localhost). Truncated UDP responses are retried over TCP
// automatically, per RFC 1035 §4.2.2.
type UDPNet struct {
	// Port is the destination port; 0 means 53.
	Port uint16
	// TCPPort is the fallback port for truncated responses; 0 means Port.
	TCPPort uint16
	// Timeout per exchange; 0 means 5 s.
	Timeout time.Duration
	// DisableTCPFallback turns off the truncation retry.
	DisableTCPFallback bool
}

// Exchange implements Exchanger.
func (u UDPNet) Exchange(src, dst netip.Addr, query []byte) ([]byte, time.Duration, error) {
	port := u.Port
	if port == 0 {
		port = 53
	}
	timeout := u.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	resp, rtt, err := authoritative.UDPExchange(netip.AddrPortFrom(dst, port), query, timeout)
	if err != nil {
		return resp, rtt, err
	}
	// TC bit set? Retry over TCP for the full answer.
	if !u.DisableTCPFallback && len(resp) >= 4 && resp[2]&0x02 != 0 {
		tcpPort := u.TCPPort
		if tcpPort == 0 {
			tcpPort = port
		}
		tcpResp, tcpRTT, tcpErr := authoritative.TCPExchange(netip.AddrPortFrom(dst, tcpPort), query, timeout)
		if tcpErr == nil {
			return tcpResp, rtt + tcpRTT, nil
		}
	}
	return resp, rtt, nil
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Policy selects the behavioral family; zero value means
	// DefaultPolicy.
	Policy Policy
	// Roots are the root server addresses to iterate from.
	Roots []netip.Addr
	// Net carries queries; nil means real UDP on port 53.
	Net Exchanger
	// Clock drives TTL decay; nil means wall clock.
	Clock Clock
	// LocalRoot is the RFC 7706 mirror for policies that use one.
	LocalRoot *Zone
	// Seed makes server selection and query IDs deterministic; 0 uses 1.
	Seed int64
}

// Client is an iterative caching DNS resolver — the library's front door
// for resolution.
type Client struct {
	r *resolver.Resolver
}

// NewClient builds a Client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Roots) == 0 {
		return nil, fmt.Errorf("dnsttl: NewClient requires at least one root address")
	}
	if cfg.Net == nil {
		cfg.Net = UDPNet{}
	}
	if cfg.Policy == (Policy{}) {
		cfg.Policy = DefaultPolicy()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r := resolver.New(netip.MustParseAddr("127.0.0.1"), cfg.Policy, cfg.Net, cfg.Clock, cfg.Roots, cfg.Seed)
	if cfg.LocalRoot != nil {
		r.LocalRootZone = cfg.LocalRoot
	}
	return &Client{r: r}, nil
}

// Lookup resolves (name, qtype), from cache when possible.
func (c *Client) Lookup(name Name, qtype Type) (*Result, error) {
	return c.r.Resolve(name, qtype)
}

// CacheStats reports the client's cache counters.
func (c *Client) CacheStats() CacheStats { return c.r.Cache.Stats() }

// CacheStats is the cache counter snapshot.
type CacheStats = cache.Stats

// Forwarder is a stub/forwarding resolver: it relays queries to one or
// more full recursives and (optionally) caches the answers — the second
// resolver species of the paper's §4.4 infrastructure analysis.
type Forwarder = resolver.Forwarder

// NewForwarder builds a forwarder with its own cache; set Passthrough for
// a pure load-balancing frontend.
func NewForwarder(addr netip.Addr, upstreams []netip.Addr, net Exchanger, clock Clock, seed int64) *Forwarder {
	return resolver.NewForwarder(addr, upstreams, net, clock, seed)
}

// Server is an authoritative DNS server for a set of zones, servable over
// real UDP and TCP or pluggable into a simulation.
type Server struct {
	s *authoritative.Server
	u *authoritative.UDPServer
	t *authoritative.TCPServer
}

// NewServer creates a server named after its primary nameserver host.
func NewServer(name Name, clock Clock) *Server {
	return &Server{s: authoritative.NewServer(name, clock)}
}

// AddZone makes the server authoritative for z.
func (s *Server) AddZone(z *Zone) { s.s.AddZone(z) }

// ParseZone reads a master-file zone.
func ParseZone(text string, origin Name) (*Zone, error) {
	return zone.Parse(strings.NewReader(text), origin)
}

// Handle answers one decoded query (for in-process use).
func (s *Server) Handle(q *Message, from netip.Addr) *Message {
	return s.s.Handle(q, from)
}

// ListenUDP binds addr ("127.0.0.1:0" style) and serves until Close. It
// returns the bound address.
func (s *Server) ListenUDP(addr string) (netip.AddrPort, error) {
	s.u = &authoritative.UDPServer{Server: s.s}
	return s.u.Listen(addr)
}

// ListenTCP binds addr for the TCP transport (truncation fallback) and
// serves until Close, returning the bound address.
func (s *Server) ListenTCP(addr string) (netip.AddrPort, error) {
	s.t = &authoritative.TCPServer{Server: s.s}
	return s.t.Listen(addr)
}

// QueryCount reports queries handled.
func (s *Server) QueryCount() uint64 { return s.s.QueryCount() }

// Close stops all listening transports.
func (s *Server) Close() error {
	var err error
	if s.u != nil {
		err = s.u.Close()
	}
	if s.t != nil {
		if terr := s.t.Close(); err == nil {
			err = terr
		}
	}
	return err
}
