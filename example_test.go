package dnsttl_test

import (
	"fmt"

	"dnsttl"
)

// The effective-TTL model answers the paper's central question — which of
// the many configured TTLs do resolvers actually honor? Here, the .uy
// situation of early 2019.
func ExampleEffectiveNSTTL() {
	cfg := dnsttl.ZoneConfig{
		Domain:      dnsttl.NewName("uy"),
		ParentNSTTL: 172800, // the root's delegation
		ChildNSTTL:  300,    // the zone's own NS TTL
	}
	d := dnsttl.EffectiveNSTTL(cfg, dnsttl.MeasuredPopulation())
	fmt.Print(d)
	// Output:
	//     90.0%  TTL 300     child-centric (child NS TTL)
	//      1.5%  TTL 21599   parent-centric (parent NS TTL), capped
	//      8.5%  TTL 172800  parent-centric (parent NS TTL)
}

// The §4 finding as a one-liner: in-bailiwick server addresses live only
// as long as the NS set that carries their glue.
func ExampleEffectiveAddrTTL() {
	cfg := dnsttl.ZoneConfig{
		ChildNSTTL:   3600,
		ChildAddrTTL: 7200,
		Bailiwick:    dnsttl.BailiwickInOnly,
	}
	d := dnsttl.EffectiveAddrTTL(cfg, dnsttl.PopulationModel{ChildCentric: 1})
	fmt.Printf("effective address TTL: %d s (configured %d s)\n", d.Min(), cfg.ChildAddrTTL)
	// Output:
	// effective address TTL: 3600 s (configured 7200 s)
}

// HitRate is the Jung et al. cache model: λT/(1+λT).
func ExampleHitRate() {
	for _, ttl := range []uint32{60, 1000, 86400} {
		fmt.Printf("TTL %6d: %.0f%%\n", ttl, 100*dnsttl.HitRate(ttl, 0.02))
	}
	// Output:
	// TTL     60: 55%
	// TTL   1000: 95%
	// TTL  86400: 100%
}

// Advise applies the paper's §6 recommendations to a configuration.
func ExampleAdvise() {
	cfg := dnsttl.ZoneConfig{
		Domain:      dnsttl.NewName("example.org"),
		ParentNSTTL: 86400, ChildNSTTL: 86400,
		ChildAddrTTL: 86400, Bailiwick: dnsttl.BailiwickOutOnly,
		ServiceTTL: 14400,
	}
	for _, rec := range dnsttl.Advise(cfg, dnsttl.Scenario{}) {
		fmt.Println(rec)
	}
	// Output:
	// [INFO] ok: configuration follows the paper's recommendations
}

// ParseZone reads RFC 1035 master-file syntax.
func ExampleParseZone() {
	z, err := dnsttl.ParseZone(`
$ORIGIN example.org.
@    3600 IN SOA ns1 admin 1 7200 3600 1209600 300
www  300  IN A 192.0.2.80
`, dnsttl.NewName("example.org"))
	if err != nil {
		panic(err)
	}
	set := z.Get(dnsttl.NewName("www.example.org"), dnsttl.TypeA)
	fmt.Println(set.RRs[0])
	// Output:
	// www.example.org.	300	IN	A	192.0.2.80
}
