package dnsttl

import (
	"time"

	"dnsttl/internal/dnssec"
)

// SigningKey is a zone's DNSSEC signing key.
type SigningKey = dnssec.Key

// NewSigningKey derives a deterministic signing key for a zone.
func NewSigningKey(z Name, seed int64) *SigningKey { return dnssec.NewKey(z, seed) }

// SignZone signs every RRset in z and installs the DNSKEY at the apex,
// returning the number of RRSIGs added. Signed zones make validating
// resolvers structurally child-centric (§2, §6.3 of the paper): the
// signature binds the child's TTL as OriginalTTL.
func SignZone(z *Zone, k *SigningKey, now time.Time) (int, error) {
	return dnssec.SignZone(z, k, now)
}

// VerifyRRSet checks an RRset against its RRSIG and the zone's DNSKEY.
// Decayed TTLs verify; TTLs above the signed original fail.
func VerifyRRSet(keyRR RR, rrs []RR, sigRR RR, now time.Time) error {
	return dnssec.Verify(keyRR, rrs, sigRR, now)
}
