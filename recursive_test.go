package dnsttl

import (
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
)

// TestRecursiveDaemon chains the whole product over real sockets: an
// authoritative server on loopback, a recursive daemon resolving through
// it, and a stub client querying the daemon — three processes' worth of
// DNS in one test.
func TestRecursiveDaemon(t *testing.T) {
	// Authoritative for root + example.org.
	auth := NewServer(NewName("a.root-servers.net"), nil)
	for origin, text := range map[string]string{".": rootZoneText, "example.org": orgZoneText} {
		z, err := ParseZone(text, NewName(origin))
		if err != nil {
			t.Fatal(err)
		}
		auth.AddZone(z)
	}
	authAddr, err := auth.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer auth.Close()

	client, err := NewClient(ClientConfig{
		Roots: []netip.Addr{authAddr.Addr()},
		Net:   UDPNet{Port: authAddr.Port(), Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rd := &RecursiveServer{Client: client}
	rdAddr, err := rd.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	// Stub query to the daemon.
	q := dnswire.NewQuery(0xBEEF, NewName("www.example.org"), TypeA)
	wire, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	respWire, _, err := authoritative.UDPExchange(rdAddr, wire, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 0xBEEF || !resp.Header.QR || !resp.Header.RA {
		t.Fatalf("daemon response header: %+v", resp.Header)
	}
	if len(resp.Answer) != 1 || resp.Answer[0].TTL != 300 {
		t.Fatalf("daemon answer: %v", resp.Answer)
	}

	// Second stub query: served from the daemon's cache.
	respWire, _, err = authoritative.UDPExchange(rdAddr, wire, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st := client.CacheStats(); st.Hits == 0 {
		t.Errorf("daemon cache never hit: %+v", st)
	}

	// Garbage in: FORMERR or silence, never a crash.
	if resp := rd.ServeDNS([]byte{1, 2, 3}, netip.Addr{}); resp != nil {
		t.Errorf("tiny garbage should be dropped")
	}
	if resp := rd.ServeDNS(make([]byte, 12), netip.Addr{}); resp == nil {
		t.Errorf("empty-question query should get a response")
	}
}

// TestAXFRLocalRootIntegration mirrors the root zone from a running server
// over AXFR/TCP and resolves with it (the RFC 7706 path of cmd/resolverd).
func TestAXFRLocalRootIntegration(t *testing.T) {
	auth := NewServer(NewName("a.root-servers.net"), nil)
	for origin, text := range map[string]string{".": rootZoneText, "example.org": orgZoneText} {
		z, err := ParseZone(text, NewName(origin))
		if err != nil {
			t.Fatal(err)
		}
		auth.AddZone(z)
	}
	udpAddr, err := auth.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tcpAddr, err := auth.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer auth.Close()

	mirror, err := authoritative.FetchZone(tcpAddr, NewName("."), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mirror.RecordCount() == 0 {
		t.Fatal("empty mirror")
	}
	pol := DefaultPolicy()
	pol.LocalRoot = true
	client, err := NewClient(ClientConfig{
		Policy:    pol,
		Roots:     []netip.Addr{udpAddr.Addr()},
		Net:       UDPNet{Port: udpAddr.Port(), Timeout: 2 * time.Second},
		LocalRoot: mirror,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Lookup(NewName("www.example.org"), TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.Header.RCode != RCodeNoError || len(res.Msg.Answer) == 0 {
		t.Fatalf("local-root resolution failed: %s", res.Msg.Header.RCode)
	}
	// The root referral came from the mirror: only one upstream query.
	if res.Queries != 1 {
		t.Errorf("queries = %d, want 1 (root from mirror)", res.Queries)
	}
}
