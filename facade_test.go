package dnsttl

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnsttl/internal/simnet"
)

// TestFacadeDNSSEC drives the public signing/validation API end to end.
func TestFacadeDNSSEC(t *testing.T) {
	z, err := ParseZone(orgZoneText, NewName("example.org"))
	if err != nil {
		t.Fatal(err)
	}
	key := NewSigningKey(NewName("example.org"), 7)
	n, err := SignZone(z, key, simnet.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 {
		t.Fatalf("signed %d RRsets", n)
	}
	www := z.Get(NewName("www.example.org"), TypeA)
	sigs := z.Get(NewName("www.example.org"), Type(46)) // RRSIG
	if www == nil || sigs == nil {
		t.Fatal("signed sets missing")
	}
	if err := VerifyRRSet(key.DNSKEY(3600), www.RRs, sigs.RRs[0], simnet.Epoch); err != nil {
		t.Errorf("VerifyRRSet: %v", err)
	}
	// Inflated TTLs fail, decayed pass — the §2 property.
	inflated := z.Get(NewName("www.example.org"), TypeA)
	inflated.RRs[0].TTL = 999999
	if err := VerifyRRSet(key.DNSKEY(3600), inflated.RRs, sigs.RRs[0], simnet.Epoch); err == nil {
		t.Errorf("inflated TTL must fail verification")
	}
}

// TestFacadeForwarder exercises the public Forwarder against a loopback
// recursive daemon over real UDP.
func TestFacadeForwarder(t *testing.T) {
	srv := NewServer(NewName("a.root-servers.net"), nil)
	for origin, text := range map[string]string{".": rootZoneText, "example.org": orgZoneText} {
		z, err := ParseZone(text, NewName(origin))
		if err != nil {
			t.Fatal(err)
		}
		srv.AddZone(z)
	}
	authAddr, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := NewClient(ClientConfig{
		Roots: []netip.Addr{authAddr.Addr()},
		Net:   UDPNet{Port: authAddr.Port(), Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rd := &RecursiveServer{Client: client}
	rdAddr, err := rd.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	fw := NewForwarder(netip.MustParseAddr("127.0.0.1"),
		[]netip.Addr{rdAddr.Addr()},
		UDPNet{Port: rdAddr.Port(), Timeout: 2 * time.Second}, nil, 3)
	res, err := fw.Resolve(NewName("www.example.org"), TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.Header.RCode != RCodeNoError || len(res.Msg.Answer) == 0 {
		t.Fatalf("forwarder over UDP: %s", res.Msg.Header.RCode)
	}
	// Forwarder's own cache serves the repeat.
	res, err = fw.Resolve(NewName("www.example.org"), TypeA)
	if err != nil || !res.CacheHit {
		t.Errorf("repeat should hit the forwarder cache: %v hit=%v", err, res.CacheHit)
	}
}

// TestRunAllExperimentsTiny smoke-runs the whole registry at a tiny scale —
// the `ttlrepro -experiment all` path.
func TestRunAllExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := ExperimentScale{Probes: 60, CrawlScale: 0.02, Resolvers: 60, Seed: 7}
	reports, err := RunAllExperiments(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(ExperimentIDs) {
		t.Errorf("got %d reports for %d ids", len(reports), len(ExperimentIDs))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if r.ID == "" || r.Text == "" {
			t.Errorf("incomplete report %q", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate report id %q", r.ID)
		}
		seen[r.ID] = true
	}
	// FullScale is a valid configuration too.
	if FullScale().Probes <= QuickScale().Probes {
		t.Errorf("FullScale should exceed QuickScale")
	}
}

// TestRecursiveServerErrorPaths covers the daemon's SERVFAIL fallback.
func TestRecursiveServerErrorPaths(t *testing.T) {
	// A client with unreachable roots: every lookup SERVFAILs, and the
	// daemon surfaces that rather than dropping.
	client, err := NewClient(ClientConfig{
		Roots: []netip.Addr{netip.MustParseAddr("127.0.0.1")},
		Net:   UDPNet{Port: 1, Timeout: 50 * time.Millisecond}, // nothing listens
	})
	if err != nil {
		t.Fatal(err)
	}
	rd := &RecursiveServer{Client: client}
	q := &Message{Header: Header{ID: 9, RD: true},
		Question: []Question{{Name: NewName("x.org"), Type: TypeA, Class: 1}}}
	wire, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	respWire := rd.ServeDNS(wire, netip.Addr{})
	if respWire == nil {
		t.Fatal("no response")
	}
	resp, err := Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != RCodeServFail || resp.Header.ID != 9 {
		t.Errorf("daemon error path: %+v", resp.Header)
	}
	if err := rd.Close(); err != nil {
		t.Errorf("Close on unlistened daemon: %v", err)
	}
	if !strings.Contains(RCodeServFail.String(), "SERVFAIL") {
		t.Errorf("rcode string")
	}
}

// TestFacadeFarmClient runs the public Client in farm mode over the
// simulation network: three sharded frontends behind round-robin placement
// behave like one resolver (the second query hits cache on a different
// frontend), and fleet telemetry is exposed through FarmStats.
func TestFacadeFarmClient(t *testing.T) {
	rootZone, err := ParseZone(rootZoneText, NewName("."))
	if err != nil {
		t.Fatal(err)
	}
	orgZone, err := ParseZone(orgZoneText, NewName("example.org"))
	if err != nil {
		t.Fatal(err)
	}
	clock := NewVirtualClock()
	net := simnet.NewNetwork(1)
	srv := NewServer(NewName("a.root-servers.net"), clock)
	srv.AddZone(rootZone)
	srv.AddZone(orgZone)
	net.Attach(netip.MustParseAddr("127.0.0.1"), srv.s)

	client, err := NewClient(ClientConfig{
		Roots:     []netip.Addr{netip.MustParseAddr("127.0.0.1")},
		Net:       net,
		Clock:     clock,
		Frontends: 3,
		Topology:  FarmSharded,
		Placement: FarmPlaceRoundRobin,
		Coalesce:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Lookup(NewName("www.example.org"), TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || len(res.Msg.Answer) == 0 {
		t.Fatalf("first farm lookup: hit=%v answers=%d", res.CacheHit, len(res.Msg.Answer))
	}
	// Round-robin sends the repeat to a different frontend; the sharded
	// pool makes it a hit anyway.
	res, err = client.Lookup(NewName("www.example.org"), TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Errorf("second lookup missed: the sharded farm cache is fragmented")
	}
	fs, ok := client.FarmStats()
	if !ok {
		t.Fatal("farm client reports no FarmStats")
	}
	if len(fs.PerFrontend) != 3 || fs.Total.Client != 2 || fs.Total.Hits != 1 {
		t.Errorf("farm stats = %+v", fs.Total)
	}
	if st := client.CacheStats(); st.Hits != 1 || st.Entries == 0 {
		t.Errorf("aggregated cache stats = %+v", st)
	}

	// A single-resolver client has no farm telemetry.
	single, err := NewClient(ClientConfig{
		Roots: []netip.Addr{netip.MustParseAddr("127.0.0.1")},
		Net:   net, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := single.FarmStats(); ok {
		t.Errorf("single-resolver client should report ok=false from FarmStats")
	}
}
