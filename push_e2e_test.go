package dnsttl

import (
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/push"
	"dnsttl/internal/qlog"
)

// queryA resolves name through the daemon at rd over real UDP and returns
// the first A answer.
func queryA(t *testing.T, rd netip.AddrPort, name string) string {
	t.Helper()
	q := dnswire.NewQuery(0x4242, NewName(name), TypeA)
	wire, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	respWire, _, err := authoritative.UDPExchange(rd, wire, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range resp.Answer {
		if a, ok := rr.Data.(dnswire.A); ok {
			return a.Addr.String()
		}
	}
	return ""
}

// TestPushEndToEnd closes the push plane over real loopback sockets: a live
// authoritative server publishes example.org's change feed, a recursive
// daemon subscribes, and a zone update propagates — NOTIFY out, IXFR pull
// back, targeted cache purge — well inside the record's TTL. The qlog
// notify records and the push.* registry counters must both witness it.
func TestPushEndToEnd(t *testing.T) {
	rootZone, err := ParseZone(rootZoneText, NewName("."))
	if err != nil {
		t.Fatal(err)
	}
	orgZone, err := ParseZone(orgZoneText, NewName("example.org"))
	if err != nil {
		t.Fatal(err)
	}
	auth := NewServer(NewName("a.root-servers.net"), nil)
	auth.AddZone(rootZone)
	auth.AddZone(orgZone)
	pa, err := auth.EnablePush(orgZone)
	if err != nil {
		t.Fatal(err)
	}
	authAddr, err := auth.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer auth.Close()

	logPath := filepath.Join(t.TempDir(), "push.qlog")
	reg := NewRegistry(nil)
	qlogger, err := NewQueryLog(QueryLogConfig{Path: logPath})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ClientConfig{
		Roots: []netip.Addr{authAddr.Addr()},
		Net:   UDPNet{Port: authAddr.Port(), Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rd := &RecursiveServer{Client: client}
	rdAddr, err := rd.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	sub := rd.EnablePush(PushConfig{
		Port:     rdAddr.Port(),
		Net:      UDPNet{Port: authAddr.Port(), Timeout: 2 * time.Second},
		Registry: reg,
		QueryLog: qlogger.Tap("push"),
	})
	sub.Subscribe(NewName("example.org"), authAddr.Addr())
	if st := sub.Stats(); st.Subscribes != 1 {
		t.Fatalf("subscribes = %d, want 1 (stats %+v)", st.Subscribes, st)
	}

	// Warm the cache, then prove it's serving from cache.
	if got := queryA(t, rdAddr, "www.example.org"); got != "192.0.2.80" {
		t.Fatalf("initial answer = %q, want 192.0.2.80", got)
	}
	authQBefore := auth.QueryCount()
	if got := queryA(t, rdAddr, "www.example.org"); got != "192.0.2.80" {
		t.Fatalf("cached answer = %q", got)
	}
	if n := auth.QueryCount(); n != authQBefore {
		t.Fatalf("cached lookup still hit the authoritative (%d -> %d queries)", authQBefore, n)
	}

	// The update: well inside www's 300 s TTL, so only the push plane can
	// make the daemon notice.
	if err := orgZone.Replace(NewName("www.example.org"), TypeA,
		dnswire.NewA("www.example.org", 300, "192.0.2.81")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for sub.Stats().Purged == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("purge never arrived: sub stats %+v, authority stats %+v",
				sub.Stats(), pa.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := queryA(t, rdAddr, "www.example.org"); got != "192.0.2.81" {
		t.Fatalf("post-update answer = %q, want 192.0.2.81 (TTL had ~300 s left)", got)
	}

	// Both halves witnessed the exchange.
	ss := sub.Stats()
	if ss.Notifies == 0 || ss.IXFR == 0 || ss.Purged == 0 {
		t.Errorf("subscriber stats %+v, want notify+ixfr+purge", ss)
	}
	as := pa.Stats()
	if as.Changes != 1 || as.Notifies == 0 || as.IXFRServed == 0 || as.Subscribers != 1 {
		t.Errorf("authority stats %+v, want 1 change notified and pulled", as)
	}

	// The registry mirrored the subscriber counters.
	snap := reg.Snapshot()
	for _, name := range []string{push.MetricNotifies, push.MetricIXFR, push.MetricPurged, push.MetricSubscribes} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}

	// And the query log holds the notify-in record: zone origin in Name,
	// the advertised serial (2 after one change) in TTL.
	if err := qlogger.Close(); err != nil {
		t.Fatal(err)
	}
	recs, decodeErrs, err := ReadQueryLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if decodeErrs != 0 {
		t.Fatalf("decode errors = %d", decodeErrs)
	}
	notifies := 0
	for i := range recs {
		r := &recs[i]
		if r.Point != qlog.PointNotify {
			continue
		}
		notifies++
		if r.Name != NewName("example.org") || r.TTL != 2 || r.Transport != "push" {
			t.Errorf("notify record = %+v, want example.org serial 2 via push", r)
		}
	}
	if notifies == 0 {
		t.Error("no notify records in the query log")
	}
}
