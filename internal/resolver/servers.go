package resolver

import (
	"net/netip"
	"time"

	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/zone"
)

// bestServers finds the deepest zone enclosing name whose nameserver
// addresses the resolver can produce, and those addresses. It may issue
// subqueries (charged to res) to resolve out-of-bailiwick nameserver names.
func (r *Resolver) bestServers(name dnswire.Name, res *Result, depth int) (dnswire.Name, []netip.Addr) {
	for z := name; ; z = z.Parent() {
		if r.Policy.Sticky {
			r.mu.Lock()
			pinned, ok := r.sticky[z]
			r.mu.Unlock()
			if ok {
				return z, []netip.Addr{pinned}
			}
		}
		if e, _, ok := r.Cache.Get(z, dnswire.TypeNS); ok && e.Negative == cache.NotNegative {
			if addrs := r.nsAddresses(z, e, res, depth); len(addrs) > 0 {
				return z, addrs
			}
		}
		if z.IsRoot() {
			break
		}
	}
	return dnswire.Root, append([]netip.Addr(nil), r.RootHints...)
}

// nsAddresses produces addresses for the NS hosts of zone z, using cached
// addresses first and subqueries for out-of-bailiwick hosts without one.
func (r *Resolver) nsAddresses(z dnswire.Name, nsSet *cache.Entry, res *Result, depth int) []netip.Addr {
	var addrs []netip.Addr
	var unresolved []dnswire.Name
	for _, rr := range nsSet.RRs {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		if r.Policy.RevalidateGlue && depth == 0 {
			// Upgrade glue-credibility addresses to authoritative data
			// with an explicit query to the child (§3.4's traffic).
			if e, _, ok := r.Cache.Get(ns.Host, dnswire.TypeA); ok &&
				e.Negative == cache.NotNegative && e.Cred == cache.CredAdditional {
				scratch := &Result{Msg: &dnswire.Message{}}
				_ = r.resolveInto(ns.Host, dnswire.TypeA, scratch, depth+1)
				res.Latency += scratch.Latency
				res.Queries += scratch.Queries
				res.Timeouts += scratch.Timeouts
			}
		}
		if a := r.cachedAddress(ns.Host); a.IsValid() {
			addrs = append(addrs, a)
		} else if !ns.Host.IsSubdomainOf(z) {
			// Out-of-bailiwick host: resolvable independently. An
			// in-bailiwick host without glue is a dead end (resolving it
			// would require the very zone we are trying to enter).
			unresolved = append(unresolved, ns.Host)
		}
	}
	if len(addrs) > 0 || depth >= maxDepth {
		return addrs
	}
	for _, host := range unresolved {
		scratch := &Result{Msg: &dnswire.Message{}}
		err := r.resolveInto(host, dnswire.TypeA, scratch, depth+1)
		res.Latency += scratch.Latency
		res.Queries += scratch.Queries
		res.Timeouts += scratch.Timeouts
		if err != nil {
			continue
		}
		if a := r.cachedAddress(host); a.IsValid() {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// cachedAddress returns a fresh cached address for host (A preferred, then
// AAAA), or the zero Addr.
func (r *Resolver) cachedAddress(host dnswire.Name) netip.Addr {
	for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
		e, _, ok := r.Cache.Get(host, t)
		if !ok || e.Negative != cache.NotNegative {
			continue
		}
		for _, rr := range e.RRs {
			switch d := rr.Data.(type) {
			case dnswire.A:
				return d.Addr
			case dnswire.AAAA:
				return d.Addr
			}
		}
	}
	return netip.Addr{}
}

// pinSticky records the first server successfully used for a zone.
func (r *Resolver) pinSticky(z dnswire.Name, server netip.Addr) {
	if !r.Policy.Sticky {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sticky[z]; !ok {
		r.sticky[z] = server
	}
}

// cacheReferral stores a referral's NS set and glue, returning the child
// zone name the referral delegates to.
func (r *Resolver) cacheReferral(resp *dnswire.Message, now time.Time) dnswire.Name {
	var child dnswire.Name
	nsByOwner := groupRRs(resp.Authority, dnswire.TypeNS)
	for owner, rrs := range nsByOwner {
		child = owner
		r.Cache.Put(cache.Entry{
			Key:    cache.Key{Name: owner, Type: dnswire.TypeNS},
			RRs:    rrs,
			TTL:    rrs[0].TTL,
			Stored: now,
			Cred:   cache.CredAuthorityReferral,
		})
	}
	if child == "" {
		return ""
	}
	for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
		for owner, rrs := range groupRRs(resp.Additional, t) {
			if !r.Policy.RefreshGlueOnReferral {
				// Keep a still-fresh cached address; only fill gaps.
				if _, _, ok := r.Cache.Get(owner, t); ok {
					continue
				}
			} else {
				// The common behavior §4.2 measures: a re-fetched
				// referral's glue displaces whatever address was cached,
				// coupling the effective A lifetime to the NS TTL.
				r.Cache.Remove(owner, t)
			}
			r.Cache.Put(cache.Entry{
				Key:    cache.Key{Name: owner, Type: t},
				RRs:    rrs,
				TTL:    rrs[0].TTL,
				Stored: now,
				Cred:   cache.CredAdditional,
				GlueOf: child,
			})
		}
	}
	return child
}

// cacheAnswerSections stores every section of a (positive) answer with the
// credibility its section and the AA bit earn it (RFC 2181 §5.4.1).
func (r *Resolver) cacheAnswerSections(resp *dnswire.Message, server netip.Addr, now time.Time) {
	ansCred := cache.CredAnswerNonAuth
	authCred := cache.CredAuthorityReferral
	if resp.Header.AA {
		ansCred = cache.CredAnswerAuth
		authCred = cache.CredAuthorityAuth
	}
	put := func(rrs map[dnswire.Name][]dnswire.RR, t dnswire.Type, cred cache.Credibility) {
		for owner, set := range rrs {
			r.Cache.Put(cache.Entry{
				Key:    cache.Key{Name: owner, Type: t},
				RRs:    set,
				TTL:    set[0].TTL,
				Stored: now,
				Cred:   cred,
				Server: server.String(),
			})
		}
	}
	for _, t := range answerableTypes {
		put(groupRRs(resp.Answer, t), t, ansCred)
		put(groupRRs(resp.Authority, t), t, authCred)
		put(groupRRs(resp.Additional, t), t, cache.CredAdditional)
	}
}

// answerableTypes are the record types this resolver caches from responses.
var answerableTypes = []dnswire.Type{
	dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeNS, dnswire.TypeCNAME,
	dnswire.TypeMX, dnswire.TypeTXT, dnswire.TypeSOA, dnswire.TypeDNSKEY,
	dnswire.TypePTR, dnswire.TypeDS,
}

// cacheNegative stores an RFC 2308 negative answer; the TTL is the SOA
// minimum bounded by the SOA record's own TTL, or the policy fallback when
// the response carries no SOA, clamped like any other TTL. It reports the
// TTL stored and whether it was SOA-derived, for the lifecycle trace.
func (r *Resolver) cacheNegative(resp *dnswire.Message, name dnswire.Name, qtype dnswire.Type, kind cache.NegativeKind, now time.Time) (uint32, bool) {
	ttl := r.Policy.negTTLFallback()
	fromSOA := false
	for _, rr := range resp.Authority {
		if soa, ok := rr.Data.(dnswire.SOA); ok {
			ttl = soa.Minimum
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
			fromSOA = true
			break
		}
	}
	ttl = r.Policy.ClampTTL(ttl)
	r.Cache.Put(cache.Entry{
		Key:      cache.Key{Name: name, Type: qtype},
		TTL:      ttl,
		Stored:   now,
		Cred:     cache.CredAnswerAuth,
		Negative: kind,
	})
	return ttl, fromSOA
}

// localRootStep consults the RFC 7706 root mirror instead of querying a
// root server. It returns done=true when the client answer is complete.
func (r *Resolver) localRootStep(name dnswire.Name, qtype dnswire.Type, res *Result) (bool, error) {
	lr := r.LocalRootZone.Lookup(name, qtype)
	now := r.Clock.Now()
	switch lr.Kind {
	case zone.Delegation:
		fake := &dnswire.Message{Header: dnswire.Header{QR: true}}
		fake.AddAuthority(lr.Authority.RRs...)
		fake.AddAdditional(lr.Glue...)
		r.cacheReferral(fake, now)
		// Mirror data is parent data: a parent-centric resolver answers
		// from it immediately; a child-centric one keeps iterating.
		if e, rem, ok := r.answerFromCache(name, qtype); ok {
			r.applyCached(e, rem, name, qtype, res, maxDepth)
			return true, nil
		}
		return false, nil
	case zone.Answer:
		res.Msg.AddAnswer(lr.Answer.RRs...)
		return true, nil
	case zone.NXDomain:
		res.Msg.Header.RCode = dnswire.RCodeNXDomain
		return true, nil
	case zone.NoData:
		return true, nil
	default:
		return true, r.fail(name, qtype, res, errLameLocalRoot)
	}
}

var errLameLocalRoot = errLocalRoot{}

type errLocalRoot struct{}

func (errLocalRoot) Error() string { return "resolver: local root mirror cannot serve query" }

// groupRRs collects the records of type t in rrs by owner name.
func groupRRs(rrs []dnswire.RR, t dnswire.Type) map[dnswire.Name][]dnswire.RR {
	var out map[dnswire.Name][]dnswire.RR
	for _, rr := range rrs {
		if rr.Type != t {
			continue
		}
		if out == nil {
			out = make(map[dnswire.Name][]dnswire.RR)
		}
		out[rr.Name] = append(out[rr.Name], rr)
	}
	return out
}
