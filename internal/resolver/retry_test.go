package resolver

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

// TestBackoffMonotoneCapped: for a spread of policies, the backoff sequence
// never decreases and never exceeds the cap.
func TestBackoffMonotoneCapped(t *testing.T) {
	policies := []RetryPolicy{
		{Backoff: 100 * time.Millisecond},
		{Backoff: 100 * time.Millisecond, Factor: 1.5, MaxBackoff: time.Second},
		{Backoff: time.Second, Factor: 4, MaxBackoff: 10 * time.Second},
		{Backoff: 30 * time.Second, Factor: 3, MaxBackoff: 300 * time.Second},
		{Backoff: time.Millisecond, Factor: 10},
	}
	for pi, rp := range policies {
		if got := rp.backoffFor(0); got != 0 {
			t.Errorf("policy %d: backoffFor(0) = %v, want 0", pi, got)
		}
		prev := time.Duration(0)
		for n := 1; n <= 30; n++ {
			b := rp.backoffFor(n)
			if b < prev {
				t.Errorf("policy %d: backoff shrank at n=%d: %v < %v", pi, n, b, prev)
			}
			if b > rp.maxBackoff() {
				t.Errorf("policy %d: backoff %v exceeds cap %v at n=%d", pi, b, rp.maxBackoff(), n)
			}
			prev = b
		}
		if rp.backoffFor(30) != rp.maxBackoff() {
			t.Errorf("policy %d: backoff never reached the cap: %v", pi, rp.backoffFor(30))
		}
	}
	if (RetryPolicy{}).backoffFor(5) != 0 {
		t.Error("zero policy produced a backoff")
	}
}

// TestJitterBounds: jitter draws stay in [0, Jitter·b) for every seed, and
// out-of-range Jitter values clamp.
func TestJitterBounds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, b := range []time.Duration{time.Millisecond, 100 * time.Millisecond, 5 * time.Second} {
			for _, j := range []float64{0.1, 0.5, 1.0} {
				rp := RetryPolicy{Jitter: j}
				d := rp.jitterFor(b, rng)
				if d < 0 || float64(d) >= j*float64(b) {
					t.Fatalf("seed %d: jitter %v outside [0, %v·%v)", seed, d, j, b)
				}
			}
			// Clamping: Jitter > 1 behaves as 1; <= 0 draws nothing.
			if d := (RetryPolicy{Jitter: 7}).jitterFor(b, rng); float64(d) >= float64(b) {
				t.Fatalf("clamped jitter %v >= %v", d, b)
			}
			if d := (RetryPolicy{Jitter: -1}).jitterFor(b, rng); d != 0 {
				t.Fatalf("negative Jitter drew %v", d)
			}
		}
	}
}

// TestRetryPolicyEnabledGates: the zero value is inert; each knob arms the
// plane.
func TestRetryPolicyEnabledGates(t *testing.T) {
	if (RetryPolicy{}).enabled() {
		t.Error("zero RetryPolicy reports enabled")
	}
	for _, rp := range []RetryPolicy{
		{Attempts: 2}, {Backoff: time.Second}, {AttemptTimeout: time.Second},
		{Deadline: time.Second}, {Hedge: time.Millisecond}, {OrderBySRTT: true},
	} {
		if !rp.enabled() {
			t.Errorf("%+v should report enabled", rp)
		}
	}
}

// TestSRTTConvergence: under fixed latency the estimate converges to the
// true RTT, monotonically from above.
func TestSRTTConvergence(t *testing.T) {
	tab := newSRTTTable()
	s := netip.MustParseAddr("192.0.2.1")
	tab.observe(s, 200*time.Millisecond)
	const truth = 40 * time.Millisecond
	prev, _ := tab.estimate(s)
	for i := 0; i < 40; i++ {
		got := tab.observe(s, truth)
		if got > prev {
			t.Fatalf("estimate rose while observing a lower fixed RTT: %v > %v", got, prev)
		}
		prev = got
	}
	if est, _ := tab.estimate(s); est < truth || est > truth+time.Millisecond {
		t.Errorf("estimate %v did not converge to %v", est, truth)
	}
}

// TestSRTTReorderAfterFlap: a server that times out sinks behind its peers
// in sortBySRTT, and fresh successes pull it forward again. Unknown servers
// always explore first.
func TestSRTTReorderAfterFlap(t *testing.T) {
	tab := newSRTTTable()
	a := netip.MustParseAddr("192.0.2.1")
	b := netip.MustParseAddr("192.0.2.2")
	u := netip.MustParseAddr("192.0.2.3") // never observed
	tab.observe(a, 10*time.Millisecond)
	tab.observe(b, 50*time.Millisecond)

	order := []netip.Addr{b, a, u}
	tab.sortBySRTT(order)
	if order[0] != u || order[1] != a || order[2] != b {
		t.Fatalf("initial order %v, want [unknown, fast, slow]", order)
	}

	// a flaps: timeouts penalize it past b.
	tab.penalize(a, 5*time.Second)
	order = []netip.Addr{a, b}
	tab.sortBySRTT(order)
	if order[0] != b {
		t.Fatalf("after penalty order %v, want b first", order)
	}

	// Fresh successes on a pull it back in front.
	for i := 0; i < 40; i++ {
		tab.observe(a, 10*time.Millisecond)
	}
	order = []netip.Addr{b, a}
	tab.sortBySRTT(order)
	if order[0] != a {
		t.Fatalf("after recovery order %v, want a first", order)
	}

	// The penalty is capped: one bad window can't exile a server forever.
	tab.penalize(b, 100*time.Millisecond)
	tab.penalize(b, 100*time.Millisecond)
	tab.penalize(b, 100*time.Millisecond)
	tab.penalize(b, 100*time.Millisecond)
	if est, _ := tab.estimate(b); est > 800*time.Millisecond {
		t.Errorf("penalty uncapped: %v", est)
	}
}

// TestRetryRidesOutFlap: with a single-server zone flapping down half of
// each 10 s period, the legacy resolver SERVFAILs while growing backoff —
// whose delay advances the fault schedule through the per-exchange offset —
// reaches an up-phase and answers.
func TestRetryRidesOutFlap(t *testing.T) {
	mk := func(pol Policy) (*testNet, *Resolver) {
		tn := newTestNet(t)
		tn.net.Clock = tn.clock
		tn.net.Faults = simnet.NewFaultSchedule(
			simnet.Flap(tn.ctAddr, 0, 0, 10*time.Second, 0.5))
		return tn, tn.resolver(pol, 3)
	}

	// Legacy: one candidate server, one attempt, down at t=0 → SERVFAIL.
	_, legacy := mk(DefaultPolicy())
	res, err := legacy.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
	if err == nil && res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("legacy resolver should fail inside the flap's down phase, got %s", res.Msg.Header.RCode)
	}

	// Retry plane: attempts at offsets 0 s (down), ~11 s (down), ~28 s (up).
	pol := DefaultPolicy()
	pol.Retry = RetryPolicy{Attempts: 3, Backoff: 6 * time.Second}
	_, retry := mk(pol)
	res = mustResolve(t, retry, "www.cachetest.net", dnswire.TypeA)
	if len(res.Msg.Answer) == 0 {
		t.Fatalf("retrying resolver got no answer: rcode %s", res.Msg.Header.RCode)
	}
	if res.Retries != 2 || res.Timeouts != 2 {
		t.Errorf("retries=%d timeouts=%d, want 2/2 (two down-phase attempts)", res.Retries, res.Timeouts)
	}
	if res.Stale {
		t.Error("answer should be fresh, not stale")
	}
}

// TestHedgeWinsOverSlowPrimary: with SRTT ordering pinned so the slow
// server leads, a hedged query to the second candidate answers first and
// the client pays the hedge completion, not the slow primary's RTT.
func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	tn := newTestNet(t)
	ct2 := netip.MustParseAddr("192.0.2.2")
	// Second nameserver for cachetest.net: the same zone served from a new
	// address.
	tn.netZone.MustAdd(
		dnswire.NewNS("cachetest.net", 172800, "ns2.cachetest.net"),
		dnswire.NewA("ns2.cachetest.net", 172800, ct2.String()),
	)
	tn.ct.MustAdd(
		dnswire.NewNS("cachetest.net", 3600, "ns2.cachetest.net"),
		dnswire.NewA("ns2.cachetest.net", 3600, ct2.String()),
	)
	ns2 := authoritative.NewServer(dnswire.NewName("ns2.cachetest.net"), tn.clock)
	ns2.AddZone(tn.ct)
	tn.net.Attach(ct2, ns2)
	tn.net.LatencyFor = func(src, dst netip.Addr) simnet.LatencyModel {
		if dst == tn.ctAddr {
			return simnet.Constant(100 * time.Millisecond) // slow primary
		}
		return simnet.Constant(10 * time.Millisecond)
	}

	pol := DefaultPolicy()
	pol.Retry = RetryPolicy{Hedge: 20 * time.Millisecond, OrderBySRTT: true}
	r := tn.resolver(pol, 5)
	// Pin the SRTT order: the slow server looks best, so it leads and the
	// hedge has something to rescue.
	r.srtt.observe(tn.ctAddr, 5*time.Millisecond)
	r.srtt.observe(ct2, 50*time.Millisecond)

	// Warm the referral chain, then expire the answer so the next
	// resolution is exactly one cachetest step.
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	tn.clock.Advance(400 * time.Second)

	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if res.Hedges != 1 {
		t.Fatalf("hedges = %d, want 1", res.Hedges)
	}
	if res.Queries != 2 {
		t.Errorf("queries = %d, want 2 (primary + hedge)", res.Queries)
	}
	if res.FinalServer != ct2 {
		t.Errorf("final server %v, want the hedged backup %v", res.FinalServer, ct2)
	}
	// Client pays hedge-trigger + backup RTT (30 ms), not the 100 ms
	// primary.
	if want := 30 * time.Millisecond; res.Latency != want {
		t.Errorf("latency %v, want %v (hedge completion)", res.Latency, want)
	}
}

// TestAttemptTimeoutCharges: replies slower than AttemptTimeout count as
// timeouts and cost exactly the deadline.
func TestAttemptTimeoutCharges(t *testing.T) {
	tn := newTestNet(t)
	tn.net.LatencyFor = func(src, dst netip.Addr) simnet.LatencyModel {
		return simnet.Constant(200 * time.Millisecond)
	}
	pol := DefaultPolicy()
	pol.Retry = RetryPolicy{Attempts: 2, AttemptTimeout: 50 * time.Millisecond}
	pol.ServeStale = false
	r := tn.resolver(pol, 1)
	res, err := r.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
	if err == nil && res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("all attempts are slower than AttemptTimeout; want failure, got %s", res.Msg.Header.RCode)
	}
	// Root step: 2 attempts × 50 ms each, all booked as timeouts.
	if res.Timeouts != res.Queries || res.Timeouts == 0 {
		t.Errorf("timeouts=%d queries=%d, want every attempt timed out", res.Timeouts, res.Queries)
	}
	if want := time.Duration(res.Queries) * 50 * time.Millisecond; res.Latency != want {
		t.Errorf("latency %v, want %v (AttemptTimeout per attempt)", res.Latency, want)
	}
}

// TestRetryDeadlineStopsAttempts: the overall deadline cuts the attempt
// budget short once RTTs and backoffs exceed it.
func TestRetryDeadlineStopsAttempts(t *testing.T) {
	tn := newTestNet(t)
	if err := tn.net.SetDown(tn.rootAddr, true); err != nil {
		t.Fatal(err)
	}
	pol := DefaultPolicy()
	pol.Retry = RetryPolicy{Attempts: 10, Backoff: time.Second, Deadline: 8 * time.Second}
	r := tn.resolver(pol, 1)
	res, _ := r.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
	// Each attempt costs the 5 s network timeout; the 8 s deadline admits
	// the first attempt and one retry, never the full budget of 10.
	if res.Queries >= 10 || res.Queries == 0 {
		t.Errorf("queries = %d, want the deadline to stop the 10-attempt budget early", res.Queries)
	}
}

// TestRetryDeterministic: the retry plane (jitter included) replays
// byte-identically for the same seed, and jitter differs across seeds.
func TestRetryDeterministic(t *testing.T) {
	run := func(seed int64) (int, int, time.Duration) {
		tn := newTestNet(t)
		tn.net.Clock = tn.clock
		tn.net.Faults = simnet.NewFaultSchedule(
			simnet.LossBurst(tn.ctAddr, 0, 0, 0.6))
		pol := DefaultPolicy()
		pol.Retry = RetryPolicy{Attempts: 5, Backoff: 300 * time.Millisecond, Jitter: 0.5}
		r := tn.resolver(pol, seed)
		res, _ := r.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
		return res.Queries, res.Retries, res.Latency
	}
	q1, r1, l1 := run(9)
	q2, r2, l2 := run(9)
	if q1 != q2 || r1 != r2 || l1 != l2 {
		t.Errorf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", q1, r1, l1, q2, r2, l2)
	}
}

// TestForwarderRetriesFlappingUpstream is the regression test for the
// forwarder's instant-SERVFAIL bug: with the retry plane armed it rides out
// a flapping upstream instead of failing the client on the first timeout.
func TestForwarderRetriesFlappingUpstream(t *testing.T) {
	tn := newTestNet(t)
	tn.net.Clock = tn.clock

	// A recursive backend the forwarder relays to.
	recAddr := netip.MustParseAddr("10.0.0.53")
	attachRecursive(tn, recAddr, DefaultPolicy(), 2)
	// The upstream flaps: down the first 5 s of every 10 s.
	tn.net.Faults = simnet.NewFaultSchedule(
		simnet.Flap(recAddr, 0, 0, 10*time.Second, 0.5))

	// Legacy forwarder: first timeout → instant SERVFAIL.
	fLegacy := NewForwarder(netip.MustParseAddr("10.0.0.99"), []netip.Addr{recAddr}, tn.net, tn.clock, 4)
	res, err := fLegacy.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.Header.RCode != dnswire.RCodeServFail || res.Timeouts != 1 {
		t.Fatalf("legacy forwarder: rcode %s timeouts %d, want instant SERVFAIL", res.Msg.Header.RCode, res.Timeouts)
	}

	// Retrying forwarder: backoff carries the next attempt into the
	// upstream's up-phase.
	f := NewForwarder(netip.MustParseAddr("10.0.0.98"), []netip.Addr{recAddr}, tn.net, tn.clock, 4)
	f.Policy.Retry = RetryPolicy{Attempts: 3, Backoff: 6 * time.Second}
	res, err = f.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.Header.RCode != dnswire.RCodeNoError || len(res.Msg.Answer) == 0 {
		t.Fatalf("retrying forwarder failed: rcode %s answers %d", res.Msg.Header.RCode, len(res.Msg.Answer))
	}
	if res.Retries == 0 || res.Timeouts == 0 {
		t.Errorf("retries=%d timeouts=%d, want evidence the flap bit first", res.Retries, res.Timeouts)
	}
}
