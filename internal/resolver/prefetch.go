package resolver

import (
	"time"

	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
)

// Refresh-ahead prefetch (the Pappas et al. proposal discussed in §7 of the
// paper, and the update-timing decoupling of Afek & Litmanovich): a cache
// hit on an entry nearing expiry re-resolves the name without charging the
// client, so the next hit after the old entry would have lapsed is still a
// hit. The trade is explicit — prefetch converts client misses into extra
// authoritative queries — so triggers are coalesced while a refresh for the
// same key is in flight and capped by Policy.PrefetchBudget per window.
//
// Under simnet's VirtualClock the refresh runs synchronously in virtual
// time: it completes "instantly" from the client's perspective (none of its
// upstream cost lands in res.Latency), which models an asynchronous
// background refresh while keeping experiments deterministic.

// prefetchBudgetWindow is the clock window over which Policy.PrefetchBudget
// prefetches may be issued.
const prefetchBudgetWindow = 60 * time.Second

// maybePrefetch refreshes (name, qtype) without charging the client, unless
// an identical refresh is already in flight or the budget window is spent.
// The stale-but-fresh entry stays in cache and keeps answering until the
// refreshed data replaces it (equal credibility replaces, per RFC 2181).
func (r *Resolver) maybePrefetch(name dnswire.Name, qtype dnswire.Type, res *Result) {
	k := cache.Key{Name: name, Type: qtype}
	now := r.Clock.Now()

	r.prefetchMu.Lock()
	if _, busy := r.prefetchInflight[k]; busy {
		r.prefetchMu.Unlock()
		res.Span.Annotate("prefetch", "coalesced")
		if m := r.Obs; m != nil {
			m.PrefetchCoalesced.Inc()
		}
		return
	}
	if b := r.Policy.PrefetchBudget; b > 0 {
		if now.Sub(r.prefetchWindow) >= prefetchBudgetWindow {
			r.prefetchWindow = now
			r.prefetchSpent = 0
		}
		if r.prefetchSpent >= b {
			r.prefetchMu.Unlock()
			res.Span.Annotate("prefetch", "budget-denied")
			if m := r.Obs; m != nil {
				m.PrefetchDenied.Inc()
			}
			return
		}
		r.prefetchSpent++
	}
	if r.prefetchInflight == nil {
		r.prefetchInflight = make(map[cache.Key]struct{})
	}
	r.prefetchInflight[k] = struct{}{}
	r.prefetchMu.Unlock()

	res.Span.Annotate("prefetch", "triggered")
	if m := r.Obs; m != nil {
		m.Prefetches.Inc()
	}
	if r.Cache != nil {
		r.Cache.NotePrefetch()
	}

	// The refresh iterates into a scratch result: upstream query counts
	// still accrue at the authoritatives (the real price of prefetch), but
	// nothing is charged to the client resolution that triggered it.
	scratch := &Result{Msg: &dnswire.Message{}}
	_ = r.iterate(name, qtype, scratch, 0)

	r.prefetchMu.Lock()
	delete(r.prefetchInflight, k)
	r.prefetchMu.Unlock()
}
