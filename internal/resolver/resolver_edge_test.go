package resolver

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

func TestCentricityString(t *testing.T) {
	if ChildCentric.String() != "child-centric" || ParentCentric.String() != "parent-centric" {
		t.Errorf("centricity strings wrong")
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}
	if p.prefetchThreshold() != 10 {
		t.Errorf("default prefetch threshold = %d", p.prefetchThreshold())
	}
	p.PrefetchThreshold = 77
	if p.prefetchThreshold() != 77 {
		t.Errorf("explicit threshold ignored")
	}
	if (Policy{}).maxRetries() != 3 {
		t.Errorf("default retries = %d", (Policy{}).maxRetries())
	}
	if (Policy{MaxRetries: 5}).maxRetries() != 5 {
		t.Errorf("explicit retries ignored")
	}
}

func TestTTLFloorOnAnswers(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.TTLFloor = 600
	r := tn.resolver(pol, 1)
	// a.nic.uy has child TTL 120 — floored to 600.
	res := mustResolve(t, r, "a.nic.uy", dnswire.TypeA)
	if res.AnswerTTL != 600 {
		t.Errorf("floored TTL = %d, want 600", res.AnswerTTL)
	}
}

// TestServerRotation: resolvers rotate between a zone's authoritative
// servers (the Müller et al. behavior the paper cites as [37]).
func TestServerRotation(t *testing.T) {
	tn := newTestNet(t)
	// Second uy server.
	uy2 := netip.MustParseAddr("200.40.0.2")
	srv2 := authoritative.NewServer(dnswire.NewName("b.nic.uy"), tn.clock)
	srv2.AddZone(tn.uy)
	tn.net.Attach(uy2, srv2)
	tn.uy.MustAdd(
		dnswire.NewNS("uy", 300, "b.nic.uy"),
		dnswire.NewA("b.nic.uy", 120, uy2.String()),
	)
	tn.root.MustAdd(
		dnswire.NewNS("uy", 172800, "b.nic.uy"),
		dnswire.NewA("b.nic.uy", 172800, uy2.String()),
	)
	r := tn.resolver(DefaultPolicy(), 3)
	for i := 0; i < 20; i++ {
		mustResolve(t, r, "uy", dnswire.TypeNS)
		tn.clock.Advance(400 * time.Second) // expire the NS each round
	}
	if tn.uySrv.QueryCount() == 0 || srv2.QueryCount() == 0 {
		t.Errorf("rotation: server counts %d / %d — both should be used",
			tn.uySrv.QueryCount(), srv2.QueryCount())
	}
}

// TestRetryOnLoss: a lossy network costs timeouts but retries succeed.
func TestRetryOnLoss(t *testing.T) {
	tn := newTestNet(t)
	// Second uy server so a retry has somewhere to go.
	uy2 := netip.MustParseAddr("200.40.0.2")
	srv2 := authoritative.NewServer(dnswire.NewName("b.nic.uy"), tn.clock)
	srv2.AddZone(tn.uy)
	tn.net.Attach(uy2, srv2)
	tn.uy.MustAdd(
		dnswire.NewNS("uy", 300, "b.nic.uy"),
		dnswire.NewA("b.nic.uy", 120, uy2.String()),
	)
	tn.root.MustAdd(
		dnswire.NewNS("uy", 172800, "b.nic.uy"),
		dnswire.NewA("b.nic.uy", 172800, uy2.String()),
	)
	// The first uy server drops everything.
	if err := tn.net.SetDown(tn.uyAddr, true); err != nil {
		t.Fatal(err)
	}
	succeeded := 0
	timeouts := 0
	for seed := int64(0); seed < 8; seed++ {
		r := tn.resolver(DefaultPolicy(), seed)
		res, err := r.Resolve(dnswire.NewName("uy"), dnswire.TypeNS)
		if err == nil && res.Msg.Header.RCode == dnswire.RCodeNoError {
			succeeded++
			timeouts += res.Timeouts
		}
	}
	if succeeded != 8 {
		t.Errorf("only %d of 8 resolutions succeeded with one server down", succeeded)
	}
	if timeouts == 0 {
		t.Errorf("no timeouts recorded despite a dead server")
	}
}

// TestLameReferral: a server that answers with a referral not descending
// toward the name must not loop.
func TestLameReferral(t *testing.T) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(1)
	rootAddr := netip.MustParseAddr("192.0.2.1")
	lame := simnet.HandlerFunc(func(wire []byte, _ netip.Addr) []byte {
		q, err := dnswire.Decode(wire)
		if err != nil {
			return nil
		}
		resp := q.Reply()
		// Referral to an unrelated zone: lame.
		resp.AddAuthority(dnswire.NewNS("unrelated.test", 300, "ns1.unrelated.test"))
		resp.AddAdditional(dnswire.NewA("ns1.unrelated.test", 300, "192.0.2.9"))
		out, _ := dnswire.Encode(resp)
		return out
	})
	net.Attach(rootAddr, lame)
	r := New(netip.MustParseAddr("10.0.0.1"), DefaultPolicy(), net, clock, []netip.Addr{rootAddr}, 1)
	res, _ := r.Resolve(dnswire.NewName("www.example.org"), dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("lame referral should SERVFAIL, got %s", res.Msg.Header.RCode)
	}
}

// TestReferralSelfLoop: a server refers to the zone it was asked about.
func TestReferralSelfLoop(t *testing.T) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(1)
	rootAddr := netip.MustParseAddr("192.0.2.1")
	selfSrv := simnet.HandlerFunc(func(wire []byte, _ netip.Addr) []byte {
		q, err := dnswire.Decode(wire)
		if err != nil {
			return nil
		}
		resp := q.Reply()
		resp.AddAuthority(dnswire.NewNS("example.org", 300, "ns1.example.org"))
		resp.AddAdditional(dnswire.NewA("ns1.example.org", 300, rootAddr.String()))
		out, _ := dnswire.Encode(resp)
		return out
	})
	net.Attach(rootAddr, selfSrv)
	r := New(netip.MustParseAddr("10.0.0.1"), DefaultPolicy(), net, clock, []netip.Addr{rootAddr}, 1)
	res, _ := r.Resolve(dnswire.NewName("www.example.org"), dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("referral loop should SERVFAIL, got %s", res.Msg.Header.RCode)
	}
	if res.Queries > maxSteps+5 {
		t.Errorf("loop not bounded: %d queries", res.Queries)
	}
}

// TestGarbageResponse: undecodable responses are survivable errors.
func TestGarbageResponse(t *testing.T) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(1)
	rootAddr := netip.MustParseAddr("192.0.2.1")
	net.Attach(rootAddr, simnet.HandlerFunc(func([]byte, netip.Addr) []byte {
		return []byte{0xde, 0xad}
	}))
	r := New(netip.MustParseAddr("10.0.0.1"), DefaultPolicy(), net, clock, []netip.Addr{rootAddr}, 1)
	res, _ := r.Resolve(dnswire.NewName("x.org"), dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("garbage should SERVFAIL, got %s", res.Msg.Header.RCode)
	}
}

// TestIDMismatch: responses with the wrong transaction ID are rejected.
func TestIDMismatch(t *testing.T) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(1)
	rootAddr := netip.MustParseAddr("192.0.2.1")
	net.Attach(rootAddr, simnet.HandlerFunc(func(wire []byte, _ netip.Addr) []byte {
		q, err := dnswire.Decode(wire)
		if err != nil {
			return nil
		}
		resp := q.Reply()
		resp.Header.ID ^= 0xFFFF // spoof-like mismatch
		resp.AddAnswer(dnswire.NewA("x.org", 60, "192.0.2.80"))
		out, _ := dnswire.Encode(resp)
		return out
	}))
	r := New(netip.MustParseAddr("10.0.0.1"), DefaultPolicy(), net, clock, []netip.Addr{rootAddr}, 1)
	res, _ := r.Resolve(dnswire.NewName("x.org"), dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeServFail || len(res.Msg.Answer) != 0 {
		t.Errorf("mismatched ID must be rejected: %s", res.Msg)
	}
}

func TestNoRootHints(t *testing.T) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(1)
	r := New(netip.MustParseAddr("10.0.0.1"), DefaultPolicy(), net, clock, nil, 1)
	res, _ := r.Resolve(dnswire.NewName("x.org"), dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("no hints should SERVFAIL")
	}
}

// TestLocalRootNegative covers local-root answer/NXDOMAIN/NODATA paths.
func TestLocalRootNegative(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.LocalRoot = true
	r := tn.resolver(pol, 1)
	r.LocalRootZone = tn.root
	if err := tn.net.SetDown(tn.rootAddr, true); err != nil {
		t.Fatal(err)
	}
	// Root's own NS: answered straight from the mirror.
	res := mustResolve(t, r, ".", dnswire.TypeNS)
	if len(res.Msg.Answer) == 0 {
		t.Errorf("root NS should come from the mirror")
	}
	// A name under no TLD: NXDOMAIN from the mirror.
	res, _ = r.Resolve(dnswire.NewName("no-such-tld-zz"), dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("mirror NXDOMAIN: got %s", res.Msg.Header.RCode)
	}
	// Root apex, type with no records: NODATA.
	res, _ = r.Resolve(dnswire.Root, dnswire.TypeMX)
	if res.Msg.Header.RCode != dnswire.RCodeNoError || len(res.Msg.Answer) != 0 {
		t.Errorf("mirror NODATA: %s", res.Msg)
	}
}

// TestInBailiwickHostWithoutGlue: the dead-end case — an in-bailiwick NS
// host with no glue cannot be resolved.
func TestInBailiwickHostWithoutGlue(t *testing.T) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(1)
	rootAddr := netip.MustParseAddr("192.0.2.1")
	root := zone.New(dnswire.Root)
	root.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "x.", 1, 1, 1, 1, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, rootAddr.String()),
		// Glueless in-bailiwick delegation: unreachable by construction.
		dnswire.NewNS("broken.test", 300, "ns1.broken.test"),
	)
	srv := authoritative.NewServer(dnswire.NewName("a.root-servers.net"), clock)
	srv.AddZone(root)
	net.Attach(rootAddr, srv)
	r := New(netip.MustParseAddr("10.0.0.1"), DefaultPolicy(), net, clock, []netip.Addr{rootAddr}, 1)
	res, _ := r.Resolve(dnswire.NewName("www.broken.test"), dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("glueless in-bailiwick delegation should SERVFAIL, got %s", res.Msg.Header.RCode)
	}
}

func TestClampTTL(t *testing.T) {
	r := &Resolver{Policy: Policy{TTLCap: 100, TTLFloor: 10}}
	if r.clampTTL(500) != 100 || r.clampTTL(5) != 10 || r.clampTTL(50) != 50 {
		t.Errorf("clampTTL wrong")
	}
	r2 := &Resolver{}
	if r2.clampTTL(12345) != 12345 {
		t.Errorf("no-policy clamp should be identity")
	}
}

// TestCachedAddressPrefersAThenAAAA exercises the AAAA fallback.
func TestCachedAddressPrefersAThenAAAA(t *testing.T) {
	tn := newTestNet(t)
	r := tn.resolver(DefaultPolicy(), 1)
	// Seed the cache with only an AAAA for a host.
	r.Cache.Put(cacheEntryAAAA())
	if a := r.cachedAddress(dnswire.NewName("v6only.test")); !a.Is6() {
		t.Errorf("cachedAddress should fall back to AAAA, got %v", a)
	}
	if a := r.cachedAddress(dnswire.NewName("unknown.test")); a.IsValid() {
		t.Errorf("unknown host should yield zero Addr")
	}
}

func cacheEntryAAAA() cache.Entry {
	rr := dnswire.NewAAAA("v6only.test", 300, "2001:db8::5")
	return cache.Entry{
		Key:  cache.Key{Name: dnswire.NewName("v6only.test"), Type: dnswire.TypeAAAA},
		RRs:  []dnswire.RR{rr},
		TTL:  300,
		Cred: cache.CredAnswerAuth,
	}
}

// TestQuickAnswerTTLBounded is the paper-level invariant: whatever the
// parent/child TTL configuration and resolver policy, an answered TTL never
// exceeds the largest configured value for the record (TTLs only decay or
// get capped — nothing in the resolution pipeline may inflate them).
func TestQuickAnswerTTLBounded(t *testing.T) {
	f := func(parentRaw, childRaw uint16, parentCentric, capped bool, advance uint16) bool {
		parentTTL := uint32(parentRaw)%172800 + 1
		childTTL := uint32(childRaw)%86400 + 1
		tn := newTestNet(t)
		if !tn.root.SetTTL(dnswire.NewName("uy"), dnswire.TypeNS, parentTTL) {
			return false
		}
		if !tn.uy.SetTTL(dnswire.NewName("uy"), dnswire.TypeNS, childTTL) {
			return false
		}
		pol := DefaultPolicy()
		if parentCentric {
			pol.Centricity = ParentCentric
		}
		if capped {
			pol.TTLCap = 21599
			pol.CapAtServe = true
		}
		r := tn.resolver(pol, int64(parentRaw)<<16|int64(childRaw))
		// Caps only lower values, so max(parent, child) bounds every
		// policy's answers.
		bound := parentTTL
		if childTTL > bound {
			bound = childTTL
		}
		for i := 0; i < 3; i++ {
			res, err := r.Resolve(dnswire.NewName("uy"), dnswire.TypeNS)
			if err != nil {
				return false
			}
			if res.Msg.Header.RCode == dnswire.RCodeNoError && res.AnswerTTL > bound {
				t.Logf("answer TTL %d exceeds bound %d (parent %d, child %d, pc=%v cap=%v)",
					res.AnswerTTL, bound, parentTTL, childTTL, parentCentric, capped)
				return false
			}
			tn.clock.Advance(time.Duration(advance%7200) * time.Second)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
