package resolver

import (
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// testNet is a miniature Internet shaped like the paper's experiments:
//
//	.                 root, 2-day delegations
//	net.              TLD
//	cachetest.net.    the controlled test domain (§4.1)
//	sub.cachetest.net with an in-bailiwick server (§4.2)
//	uy.               ccTLD with short child TTLs (§3.2): NS 300, A 120
type testNet struct {
	clock *simnet.VirtualClock
	net   *simnet.Network

	rootAddr, netAddr, ctAddr, subAddr, subAddr2, uyAddr netip.Addr

	root, netZone, ct, sub, uy *zone.Zone
	subSrv                     *authoritative.Server
	uySrv                      *authoritative.Server
	rootSrv                    *authoritative.Server
}

func newTestNet(t *testing.T) *testNet {
	t.Helper()
	tn := &testNet{
		clock:    simnet.NewVirtualClock(),
		rootAddr: netip.MustParseAddr("198.41.0.4"),
		netAddr:  netip.MustParseAddr("192.5.6.30"),
		ctAddr:   netip.MustParseAddr("192.0.2.1"),
		subAddr:  netip.MustParseAddr("192.0.2.53"),
		subAddr2: netip.MustParseAddr("192.0.2.54"), // renumber target
		uyAddr:   netip.MustParseAddr("200.40.0.1"),
	}
	tn.net = simnet.NewNetwork(1)
	tn.net.LatencyFor = func(src, dst netip.Addr) simnet.LatencyModel {
		return simnet.Constant(10 * time.Millisecond)
	}

	tn.root = zone.New(dnswire.Root)
	tn.root.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "nstld.verisign-grs.com.", 1, 1800, 900, 604800, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, "198.41.0.4"),
		// net. delegation
		dnswire.NewNS("net", 172800, "a.gtld-servers.net"),
		dnswire.NewA("a.gtld-servers.net", 172800, "192.5.6.30"),
		// uy. delegation: parent says 2 days.
		dnswire.NewNS("uy", 172800, "a.nic.uy"),
		dnswire.NewA("a.nic.uy", 172800, "200.40.0.1"),
	)

	tn.netZone = zone.New(dnswire.NewName("net"))
	tn.netZone.MustAdd(
		dnswire.NewSOA("net", 900, "a.gtld-servers.net.", "nstld.verisign-grs.com.", 1, 1800, 900, 604800, 86400),
		dnswire.NewNS("net", 172800, "a.gtld-servers.net"),
		// cachetest.net delegation with 2-day parent TTLs.
		dnswire.NewNS("cachetest.net", 172800, "ns1.cachetest.net"),
		dnswire.NewA("ns1.cachetest.net", 172800, "192.0.2.1"),
	)

	tn.ct = zone.New(dnswire.NewName("cachetest.net"))
	tn.ct.MustAdd(
		dnswire.NewSOA("cachetest.net", 3600, "ns1.cachetest.net", "admin.cachetest.net", 1, 7200, 3600, 1209600, 60),
		dnswire.NewNS("cachetest.net", 3600, "ns1.cachetest.net"),
		dnswire.NewA("ns1.cachetest.net", 3600, "192.0.2.1"),
		dnswire.NewA("www.cachetest.net", 300, "192.0.2.80"),
		dnswire.NewCNAME("alias.cachetest.net", 600, "www.cachetest.net"),
		// sub delegation: NS 3600, glue A 7200 (§4.2 parameters).
		dnswire.NewNS("sub.cachetest.net", 3600, "ns3.sub.cachetest.net"),
		dnswire.NewA("ns3.sub.cachetest.net", 7200, "192.0.2.53"),
	)

	tn.sub = zone.New(dnswire.NewName("sub.cachetest.net"))
	tn.sub.MustAdd(
		dnswire.NewSOA("sub.cachetest.net", 3600, "ns3.sub.cachetest.net", "admin.cachetest.net", 1, 7200, 3600, 1209600, 60),
		dnswire.NewNS("sub.cachetest.net", 3600, "ns3.sub.cachetest.net"),
		dnswire.NewA("ns3.sub.cachetest.net", 7200, "192.0.2.53"),
		dnswire.NewAAAA("probe.sub.cachetest.net", 60, "2001:db8::1"),
	)

	tn.uy = zone.New(dnswire.NewName("uy"))
	tn.uy.MustAdd(
		dnswire.NewSOA("uy", 300, "a.nic.uy", "hostmaster.nic.uy", 1, 1800, 900, 604800, 300),
		dnswire.NewNS("uy", 300, "a.nic.uy"),        // child NS TTL: 300 s
		dnswire.NewA("a.nic.uy", 120, "200.40.0.1"), // child A TTL: 120 s
	)

	attach := func(addr netip.Addr, name string, zs ...*zone.Zone) *authoritative.Server {
		s := authoritative.NewServer(dnswire.NewName(name), tn.clock)
		for _, z := range zs {
			s.AddZone(z)
		}
		tn.net.Attach(addr, s)
		return s
	}
	tn.rootSrv = attach(tn.rootAddr, "a.root-servers.net", tn.root)
	attach(tn.netAddr, "a.gtld-servers.net", tn.netZone)
	attach(tn.ctAddr, "ns1.cachetest.net", tn.ct)
	tn.subSrv = attach(tn.subAddr, "ns3.sub.cachetest.net", tn.sub)
	tn.uySrv = attach(tn.uyAddr, "a.nic.uy", tn.uy)
	return tn
}

func (tn *testNet) resolver(pol Policy, seed int64) *Resolver {
	return New(netip.MustParseAddr("10.0.0.2"), pol, tn.net, tn.clock,
		[]netip.Addr{tn.rootAddr}, seed)
}

// renumberSub moves the sub.cachetest.net server to a new address serving
// different content, updating parent glue and child zone — the §4.2
// experiment's manipulation.
func (tn *testNet) renumberSub(t *testing.T) {
	t.Helper()
	newSub := zone.New(dnswire.NewName("sub.cachetest.net"))
	newSub.MustAdd(
		dnswire.NewSOA("sub.cachetest.net", 3600, "ns3.sub.cachetest.net", "admin.cachetest.net", 2, 7200, 3600, 1209600, 60),
		dnswire.NewNS("sub.cachetest.net", 3600, "ns3.sub.cachetest.net"),
		dnswire.NewA("ns3.sub.cachetest.net", 7200, "192.0.2.54"),
		dnswire.NewAAAA("probe.sub.cachetest.net", 60, "2001:db8::2"), // different answer
	)
	s := authoritative.NewServer(dnswire.NewName("ns3.sub.cachetest.net"), tn.clock)
	s.AddZone(newSub)
	tn.net.Attach(tn.subAddr2, s)
	tn.net.Detach(tn.subAddr)
	if err := tn.ct.Replace(dnswire.NewName("ns3.sub.cachetest.net"), dnswire.TypeA,
		dnswire.NewA("ns3.sub.cachetest.net", 7200, "192.0.2.54")); err != nil {
		t.Fatal(err)
	}
}

func mustResolve(t *testing.T, r *Resolver, name string, qt dnswire.Type) *Result {
	t.Helper()
	res, err := r.Resolve(dnswire.NewName(name), qt)
	if err != nil {
		t.Fatalf("Resolve(%s, %s): %v", name, qt, err)
	}
	return res
}

func answerAddr(t *testing.T, res *Result) string {
	t.Helper()
	if len(res.Msg.Answer) == 0 {
		t.Fatalf("no answer: %s (rcode %s)", res.Msg, res.Msg.Header.RCode)
	}
	switch d := res.Msg.Answer[len(res.Msg.Answer)-1].Data.(type) {
	case dnswire.A:
		return d.Addr.String()
	case dnswire.AAAA:
		return d.Addr.String()
	}
	t.Fatalf("last answer is not an address: %v", res.Msg.Answer)
	return ""
}

func TestIterativeResolution(t *testing.T) {
	tn := newTestNet(t)
	r := tn.resolver(DefaultPolicy(), 1)
	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if res.CacheHit {
		t.Errorf("first resolution cannot be a cache hit")
	}
	if got := answerAddr(t, res); got != "192.0.2.80" {
		t.Errorf("answer = %s", got)
	}
	if res.AnswerTTL != 300 {
		t.Errorf("AnswerTTL = %d, want 300", res.AnswerTTL)
	}
	// root → net → cachetest: three exchanges.
	if res.Queries != 3 {
		t.Errorf("queries = %d, want 3", res.Queries)
	}
	if res.Latency != 30*time.Millisecond {
		t.Errorf("latency = %v, want 30ms", res.Latency)
	}
	if res.FinalServer != tn.ctAddr {
		t.Errorf("final server = %v", res.FinalServer)
	}
}

func TestCacheHitAndDecay(t *testing.T) {
	tn := newTestNet(t)
	r := tn.resolver(DefaultPolicy(), 1)
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	tn.clock.Advance(100 * time.Second)
	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if !res.CacheHit {
		t.Fatalf("second resolution should hit cache")
	}
	if res.Queries != 0 || res.Latency != 0 {
		t.Errorf("cache hit cost: %d queries, %v", res.Queries, res.Latency)
	}
	if res.AnswerTTL != 200 {
		t.Errorf("decayed TTL = %d, want 200", res.AnswerTTL)
	}
	// After expiry it re-fetches, but infrastructure is still cached: one
	// query straight to the cachetest server.
	tn.clock.Advance(300 * time.Second)
	res = mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if res.CacheHit || res.Queries != 1 {
		t.Errorf("post-expiry: hit=%v queries=%d, want miss with 1 query", res.CacheHit, res.Queries)
	}
	if res.AnswerTTL != 300 {
		t.Errorf("refreshed TTL = %d", res.AnswerTTL)
	}
}

// TestCentricityNSTTL reproduces §3.2: the same NS .uy question yields the
// child's 300 s TTL from a child-centric resolver and the parent's 172800 s
// from a parent-centric one.
func TestCentricityNSTTL(t *testing.T) {
	tn := newTestNet(t)

	child := tn.resolver(DefaultPolicy(), 1)
	res := mustResolve(t, child, "uy", dnswire.TypeNS)
	if res.AnswerTTL != 300 {
		t.Errorf("child-centric NS TTL = %d, want 300", res.AnswerTTL)
	}
	if res.FinalServer != tn.uyAddr {
		t.Errorf("child-centric must ask the child: %v", res.FinalServer)
	}

	pol := DefaultPolicy()
	pol.Centricity = ParentCentric
	parent := tn.resolver(pol, 2)
	res = mustResolve(t, parent, "uy", dnswire.TypeNS)
	if res.AnswerTTL != 172800 {
		t.Errorf("parent-centric NS TTL = %d, want 172800", res.AnswerTTL)
	}
	if res.FinalServer != tn.rootAddr {
		t.Errorf("parent-centric should answer from the root's referral: %v", res.FinalServer)
	}
	// The child authoritative must never have seen the NS query.
	if tn.uySrv.QueryCount() != 1 { // one from the child-centric resolver
		t.Errorf("uy server saw %d queries, want 1", tn.uySrv.QueryCount())
	}
}

// TestCentricityGlueTTL reproduces the a.nic.uy-A experiment: child 120 s
// vs parent glue 172800 s.
func TestCentricityGlueTTL(t *testing.T) {
	tn := newTestNet(t)
	child := tn.resolver(DefaultPolicy(), 1)
	res := mustResolve(t, child, "a.nic.uy", dnswire.TypeA)
	if res.AnswerTTL != 120 {
		t.Errorf("child-centric A TTL = %d, want 120", res.AnswerTTL)
	}
	pol := DefaultPolicy()
	pol.Centricity = ParentCentric
	parent := tn.resolver(pol, 2)
	res = mustResolve(t, parent, "a.nic.uy", dnswire.TypeA)
	if res.AnswerTTL != 172800 {
		t.Errorf("parent-centric A TTL = %d, want 172800 (glue)", res.AnswerTTL)
	}
}

func TestCNAMEChase(t *testing.T) {
	tn := newTestNet(t)
	r := tn.resolver(DefaultPolicy(), 1)
	res := mustResolve(t, r, "alias.cachetest.net", dnswire.TypeA)
	if len(res.Msg.Answer) != 2 {
		t.Fatalf("answers = %v", res.Msg.Answer)
	}
	if res.Msg.Answer[0].Type != dnswire.TypeCNAME || res.Msg.Answer[1].Type != dnswire.TypeA {
		t.Errorf("chain = %v", res.Msg.Answer)
	}
	// Cached CNAME serves the next query.
	res = mustResolve(t, r, "alias.cachetest.net", dnswire.TypeA)
	if !res.CacheHit {
		t.Errorf("CNAME chain should be served from cache")
	}
}

func TestNegativeCaching(t *testing.T) {
	tn := newTestNet(t)
	r := tn.resolver(DefaultPolicy(), 1)
	res := mustResolve(t, r, "missing.cachetest.net", dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s", res.Msg.Header.RCode)
	}
	res = mustResolve(t, r, "missing.cachetest.net", dnswire.TypeA)
	if !res.CacheHit || res.Msg.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("negative answer not cached: hit=%v rcode=%s", res.CacheHit, res.Msg.Header.RCode)
	}
	// NODATA likewise.
	res = mustResolve(t, r, "www.cachetest.net", dnswire.TypeMX)
	if res.Msg.Header.RCode != dnswire.RCodeNoError || len(res.Msg.Answer) != 0 {
		t.Fatalf("expected NODATA")
	}
	res = mustResolve(t, r, "www.cachetest.net", dnswire.TypeMX)
	if !res.CacheHit {
		t.Errorf("NODATA not cached")
	}
}

// TestInBailiwickRenumber reproduces §4.2: with in-bailiwick servers and
// glue-refreshing resolvers, the still-valid A record is replaced when the
// NS TTL (3600 s) expires — the switch happens at 1 h, not at the A's 2 h.
func TestInBailiwickRenumber(t *testing.T) {
	tn := newTestNet(t)
	r := tn.resolver(DefaultPolicy(), 1)
	res := mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	if got := answerAddr(t, res); got != "2001:db8::1" {
		t.Fatalf("initial answer = %s", got)
	}
	tn.renumberSub(t)

	// Before NS expiry: cached NS+glue still point at the old server, but
	// it is detached → the probe's 60 s TTL expires each round and the
	// re-query to the old address times out... the old server is gone
	// entirely, so emulate the paper by keeping the old server running
	// with the old content instead.
	tn.net.Attach(tn.subAddr, tn.subSrv)

	tn.clock.Advance(30 * time.Minute)
	res = mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	if got := answerAddr(t, res); got != "2001:db8::1" {
		t.Errorf("t=30min: answer = %s, want old server's (NS still cached)", got)
	}

	// After NS expiry (>60 min): referral re-fetched, new glue replaces
	// the still-valid old A, resolver switches.
	tn.clock.Advance(31 * time.Minute)
	res = mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	if got := answerAddr(t, res); got != "2001:db8::2" {
		t.Errorf("t=61min: answer = %s, want new server's (glue refresh)", got)
	}
}

// TestInBailiwickDecoupled: the minority behavior — a resolver that keeps a
// fresh cached address ignores the new glue until the A's own TTL expires.
func TestInBailiwickDecoupled(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.RefreshGlueOnReferral = false
	r := tn.resolver(pol, 1)
	mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	tn.renumberSub(t)
	tn.net.Attach(tn.subAddr, tn.subSrv)

	tn.clock.Advance(61 * time.Minute) // NS expired, A (7200 s) still fresh
	res := mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	if got := answerAddr(t, res); got != "2001:db8::1" {
		t.Errorf("t=61min decoupled: answer = %s, want old", got)
	}
	tn.clock.Advance(62 * time.Minute) // past 2 h: A expired too
	res = mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	if got := answerAddr(t, res); got != "2001:db8::2" {
		t.Errorf("t=123min decoupled: answer = %s, want new", got)
	}
}

func TestStickyResolver(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.Sticky = true
	r := tn.resolver(pol, 1)
	mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	tn.renumberSub(t)
	tn.net.Attach(tn.subAddr, tn.subSrv)

	// Far past every TTL, a sticky resolver still asks the old server.
	tn.clock.Advance(5 * time.Hour)
	res := mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	if got := answerAddr(t, res); got != "2001:db8::1" {
		t.Errorf("sticky resolver switched: %s", got)
	}
}

func TestServeStale(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.ServeStale = true
	r := tn.resolver(pol, 1)
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)

	// All servers down, answer expired: stale answer instead of SERVFAIL.
	for _, a := range []netip.Addr{tn.rootAddr, tn.netAddr, tn.ctAddr} {
		if err := tn.net.SetDown(a, true); err != nil {
			t.Fatal(err)
		}
	}
	tn.clock.Advance(10 * time.Minute)
	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if !res.Stale {
		t.Fatalf("expected stale answer, got %s (rcode %s)", res.Msg, res.Msg.Header.RCode)
	}
	if res.AnswerTTL != 30 {
		t.Errorf("stale TTL = %d, want 30", res.AnswerTTL)
	}

	// Without serve-stale: SERVFAIL.
	r2 := tn.resolver(DefaultPolicy(), 2)
	res2, _ := r2.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
	if res2.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %s, want SERVFAIL", res2.Msg.Header.RCode)
	}
}

func TestLocalRoot(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.LocalRoot = true
	r := tn.resolver(pol, 1)
	r.LocalRootZone = tn.root

	// Root servers unreachable: RFC 7706 resolvers don't care.
	if err := tn.net.SetDown(tn.rootAddr, true); err != nil {
		t.Fatal(err)
	}
	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if got := answerAddr(t, res); got != "192.0.2.80" {
		t.Errorf("answer = %s", got)
	}
	// Only net + cachetest queried; the root referral was local.
	if res.Queries != 2 {
		t.Errorf("queries = %d, want 2", res.Queries)
	}
	if tn.rootSrv.QueryCount() != 0 {
		t.Errorf("root server saw %d queries", tn.rootSrv.QueryCount())
	}
}

func TestTTLCap(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.TTLCap = 21599 // the Google-like cap of §3.3
	r := tn.resolver(pol, 1)
	res := mustResolve(t, r, "uy", dnswire.TypeNS)
	if res.AnswerTTL != 300 {
		t.Fatalf("uncapped child value: %d", res.AnswerTTL)
	}
	// Parent-centric + cap: 172800 → 21599.
	pol.Centricity = ParentCentric
	r2 := tn.resolver(pol, 2)
	res = mustResolve(t, r2, "uy", dnswire.TypeNS)
	if res.AnswerTTL != 21599 {
		t.Errorf("capped TTL = %d, want 21599", res.AnswerTTL)
	}
}

func TestPrefetch(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.Prefetch = true
	pol.PrefetchThreshold = 60
	r := tn.resolver(pol, 1)
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)

	// 250 s in: remaining 50 < threshold → hit served, then refreshed.
	tn.clock.Advance(250 * time.Second)
	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if !res.CacheHit || res.AnswerTTL != 50 {
		t.Fatalf("prefetch hit: hit=%v ttl=%d", res.CacheHit, res.AnswerTTL)
	}
	// The refresh restored a full TTL: the next query 100 s later would
	// have missed without prefetch, but hits with ~200 s left.
	tn.clock.Advance(100 * time.Second)
	res = mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if !res.CacheHit {
		t.Errorf("prefetch did not refresh the entry")
	}
	if res.AnswerTTL != 200 {
		t.Errorf("post-prefetch TTL = %d, want 200", res.AnswerTTL)
	}
}

func TestSERVFAILWhenAllDown(t *testing.T) {
	tn := newTestNet(t)
	r := tn.resolver(DefaultPolicy(), 1)
	if err := tn.net.SetDown(tn.rootAddr, true); err != nil {
		t.Fatal(err)
	}
	res, _ := r.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %s", res.Msg.Header.RCode)
	}
	if res.Timeouts == 0 {
		t.Errorf("timeouts not accounted")
	}
}

func TestSharedCache(t *testing.T) {
	tn := newTestNet(t)
	shared := cache.New(tn.clock, cache.Config{})
	r1 := tn.resolver(DefaultPolicy(), 1)
	r1.Cache = shared
	r2 := tn.resolver(DefaultPolicy(), 2)
	r2.Cache = shared
	mustResolve(t, r1, "www.cachetest.net", dnswire.TypeA)
	res := mustResolve(t, r2, "www.cachetest.net", dnswire.TypeA)
	if !res.CacheHit {
		t.Errorf("shared cache: second resolver should hit")
	}
}

func TestAnswersHaveRAFlag(t *testing.T) {
	tn := newTestNet(t)
	r := tn.resolver(DefaultPolicy(), 1)
	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if !res.Msg.Header.RA || !res.Msg.Header.QR {
		t.Errorf("client response header: %+v", res.Msg.Header)
	}
}

// denyGate is a scripted StaleGate: it vetoes exactly the keys in deny and
// counts every veto.
type denyGate struct {
	deny   map[cache.Key]bool
	denied int
}

func (g *denyGate) AllowStale(name dnswire.Name, qtype dnswire.Type, storedAt time.Time) bool {
	if g.deny[cache.Key{Name: name, Type: qtype}] {
		g.denied++
		return false
	}
	return true
}

// TestServeStaleGate is the push-plane regression: a name the gate vetoes
// (purged by NOTIFY, or covered by an unhealthy subscription) must never be
// served stale — the resolver fails instead of answering known-superseded
// data. Ungated names keep the RFC 8767 behavior.
func TestServeStaleGate(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.ServeStale = true
	r := tn.resolver(pol, 1)
	www := dnswire.NewName("www.cachetest.net")
	gate := &denyGate{deny: map[cache.Key]bool{{Name: www, Type: dnswire.TypeA}: true}}
	r.StaleGate = gate

	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	mustResolve(t, r, "alias.cachetest.net", dnswire.TypeA)
	for _, a := range []netip.Addr{tn.rootAddr, tn.netAddr, tn.ctAddr} {
		if err := tn.net.SetDown(a, true); err != nil {
			t.Fatal(err)
		}
	}
	tn.clock.Advance(15 * time.Minute)

	// Vetoed name: SERVFAIL, not a stale answer.
	res, _ := r.Resolve(www, dnswire.TypeA)
	if res.Stale || res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Fatalf("gated name served stale: stale=%v rcode=%s", res.Stale, res.Msg.Header.RCode)
	}
	if gate.denied == 0 {
		t.Fatal("gate was never consulted")
	}

	// The gate stops vetoing (re-subscribe succeeded, purge superseded):
	// stale serving resumes.
	gate.deny = nil
	res, err := r.Resolve(www, dnswire.TypeA)
	if err != nil || !res.Stale {
		t.Fatalf("ungated name not served stale: stale=%v err=%v", res.Stale, err)
	}
}
