package resolver

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/qlog"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// Trace accounts for one client resolution: what it cost and where the
// answer came from. Experiments read Traces to build the paper's latency
// CDFs and server-switch timeseries.
type Trace struct {
	// CacheHit is true when the client answer required no upstream query.
	CacheHit bool
	// Stale is true when the answer was served past its TTL (RFC 8767).
	Stale bool
	// Coalesced is true when the resolution was answered by joining an
	// identical query already in flight (farm singleflight) instead of by
	// the cache or an upstream iteration of its own.
	Coalesced bool
	// Latency is the summed upstream RTT the resolution cost the client.
	Latency time.Duration
	// Queries is the number of upstream exchanges attempted.
	Queries int
	// Timeouts is how many of those exchanges timed out.
	Timeouts int
	// Retries counts attempts past the first within iteration steps — the
	// work the retry plane (Policy.Retry) added to rescue this resolution.
	Retries int
	// Hedges counts hedged second queries launched (Policy.Retry.Hedge).
	Hedges int
	// FinalServer is the authoritative address that supplied the answer,
	// or the zero Addr for cache hits.
	FinalServer netip.Addr
	// AnswerTTL is the TTL carried by the first answer record returned to
	// the client (decayed, for cache hits) — the quantity measured by the
	// paper's Figures 1 and 2.
	AnswerTTL uint32
	// Validated is true when DNSSEC validation succeeded for the answer.
	Validated bool
	// Span is the root of this resolution's lifecycle trace; nil unless the
	// resolver has a Tracer attached. Read-only once the resolution returns.
	Span *obs.Span
}

// Result is a completed resolution.
type Result struct {
	Msg *dnswire.Message
	Trace
}

// Resolver is an iterative caching resolver.
type Resolver struct {
	// Addr is the resolver's own address, used as the query source.
	Addr netip.Addr
	// Policy configures behavior; see Policy.
	Policy Policy
	// Net carries queries to servers.
	Net simnet.Exchanger
	// Clock drives TTL decay.
	Clock simnet.Clock
	// Cache may be shared between resolvers (a resolver farm behind one
	// frontend, as in §4.4). Any cache.Store works: a private *cache.Cache,
	// one *cache.Cache shared by a whole farm, or a *cache.Sharded pool.
	Cache cache.Store
	// RootHints are the root server addresses.
	RootHints []netip.Addr
	// LocalRootZone is the RFC 7706 mirror used when Policy.LocalRoot is
	// set.
	LocalRootZone *zone.Zone
	// Obs, when non-nil, records per-resolution counters and latency/TTL
	// histograms (see NewMetrics). Nil disables recording at the cost of
	// one pointer check per resolution.
	Obs *Metrics
	// Tracer, when non-nil, records every resolution as a span tree —
	// cache lookup, per-zone iteration steps, upstream exchanges, and the
	// TTL decisions taken at each — retrievable via the tracer (and the
	// daemons' /trace endpoint). Nil keeps the hot path to one pointer
	// check per instrumentation point.
	Tracer *obs.Tracer
	// QLog, when non-nil, emits one qlog upstream-exchange record per
	// attempt (server, question, rcode, TTL, RTT, timeout/error outcome).
	// Nil costs one pointer check per attempt.
	QLog *qlog.Tap
	// StaleGate, when non-nil, is consulted before serving a stale answer
	// (Policy.ServeStale). The push plane installs its subscriber here so a
	// name purged by NOTIFY — or covered by an unhealthy subscription that
	// may have missed purges — is never served stale from a pre-purge entry.
	StaleGate StaleGate

	mu     sync.Mutex
	rng    *rand.Rand
	sticky map[dnswire.Name]netip.Addr
	nextID uint16

	// Refresh-ahead state (prefetch.go): singleflight dedup of in-flight
	// prefetches and the budget window. Its own lock, since the prefetch
	// iteration itself takes r.mu for transaction IDs.
	prefetchMu       sync.Mutex
	prefetchInflight map[cache.Key]struct{}
	prefetchWindow   time.Time
	prefetchSpent    int

	// srtt is the per-server smoothed-RTT table behind
	// Policy.Retry.OrderBySRTT. It has its own lock; nil (for resolvers
	// built as struct literals) disables SRTT tracking.
	srtt *srttTable
}

// New builds a resolver. A nil cache gets a private one configured from the
// policy's TTL cap/floor and serve-stale flag; a nil clock means wall time.
func New(addr netip.Addr, pol Policy, net simnet.Exchanger, clock simnet.Clock, roots []netip.Addr, seed int64) *Resolver {
	if clock == nil {
		clock = simnet.WallClock{}
	}
	c := cache.New(clock, pol.CacheConfig())
	return &Resolver{
		Addr:      addr,
		Policy:    pol,
		Net:       net,
		Clock:     clock,
		Cache:     c,
		RootHints: roots,
		rng:       rand.New(rand.NewSource(seed)),
		sticky:    make(map[dnswire.Name]netip.Addr),
		srtt:      newSRTTTable(),
	}
}

// maxDepth bounds subquery recursion (resolving NS-host addresses) and
// CNAME chains.
const maxDepth = 8

// maxSteps bounds referral chasing per resolution.
const maxSteps = 30

// Resolve answers (name, qtype) for a client, from cache when possible and
// by iterating from the roots otherwise.
func (r *Resolver) Resolve(name dnswire.Name, qtype dnswire.Type) (*Result, error) {
	res := &Result{Msg: &dnswire.Message{
		Header:   dnswire.Header{QR: true, RA: true},
		Question: []dnswire.Question{{Name: name, Type: qtype, Class: dnswire.ClassIN}},
	}}
	if r.Tracer != nil {
		res.Span = r.Tracer.Start("resolve " + string(name) + " " + qtype.String())
	}
	err := r.resolveInto(name, qtype, res, 0)
	if err != nil {
		res.Msg.Header.RCode = dnswire.RCodeServFail
	}
	if len(res.Msg.Answer) > 0 {
		res.AnswerTTL = res.Msg.Answer[0].TTL
	}
	if sp := res.Span; sp != nil {
		sp.Annotate("rcode", res.Msg.Header.RCode.String())
		sp.AnnotateUint("answer_ttl_s", uint64(res.AnswerTTL))
		sp.AnnotateUint("upstream_queries", uint64(res.Queries))
		if res.Retries > 0 {
			sp.AnnotateUint("retries", uint64(res.Retries))
		}
		if res.Hedges > 0 {
			sp.AnnotateUint("hedges", uint64(res.Hedges))
		}
		r.Tracer.Keep(sp)
	}
	if m := r.Obs; m != nil {
		m.observeResolution(res)
	}
	return res, nil
}

// resolveInto resolves (name, qtype), appending answers to res.Msg and
// accounting into res.Trace. CNAME chains recurse with increased depth.
func (r *Resolver) resolveInto(name dnswire.Name, qtype dnswire.Type, res *Result, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("resolver: depth limit at %s", name)
	}

	// 1. Cache.
	if e, rem, ok := r.answerFromCache(name, qtype); ok {
		if depth == 0 {
			res.CacheHit = res.Queries == 0
		}
		if csp := res.Span.Child("cache lookup"); csp != nil {
			csp.Annotate("name", string(name))
			csp.Annotate("outcome", cacheOutcome(e))
			csp.Annotate("cred", e.Cred.String())
			csp.AnnotateUint("remaining_ttl_s", uint64(rem))
			csp.Finish()
		}
		r.applyCached(e, rem, name, qtype, res, depth)
		if e.Negative == cache.NotNegative && r.Policy.prefetchTriggered(rem, e.TTL) {
			r.maybePrefetch(name, qtype, res)
		}
		return nil
	}
	if csp := res.Span.Child("cache lookup"); csp != nil {
		csp.Annotate("name", string(name))
		csp.Annotate("outcome", "miss")
		csp.Finish()
	}

	// 2. Iterate from the best known servers.
	return r.iterate(name, qtype, res, depth)
}

// cacheOutcome labels a cache hit for the lifecycle trace.
func cacheOutcome(e *cache.Entry) string {
	switch e.Negative {
	case cache.NegNXDomain:
		return "hit-negative-nxdomain"
	case cache.NegNoData:
		return "hit-negative-nodata"
	}
	return "hit"
}

// applyCached copies a cache entry into the client answer with decayed TTLs.
func (r *Resolver) applyCached(e *cache.Entry, rem uint32, name dnswire.Name, qtype dnswire.Type, res *Result, depth int) {
	if sp := res.Span; sp != nil {
		if out := r.clampTTL(rem); out != rem {
			sp.Annotate("ttl_clamp", clampLabel(rem, out))
		}
	}
	switch e.Negative {
	case cache.NegNXDomain:
		res.Msg.Header.RCode = dnswire.RCodeNXDomain
		return
	case cache.NegNoData:
		return
	}
	for _, rr := range e.RRs {
		rr.TTL = r.clampTTL(rem)
		res.Msg.AddAnswer(rr)
	}
	// Chase a cached CNAME.
	if e.Key.Type == dnswire.TypeCNAME && qtype != dnswire.TypeCNAME && len(e.RRs) > 0 {
		target := e.RRs[0].Data.(dnswire.CNAME).Target
		_ = r.resolveInto(target, qtype, res, depth+1)
	}
}

// answerFromCache checks whether cached data may answer the client
// directly. Child-centric resolvers only answer from answer-grade data;
// parent-centric resolvers also answer from referral NS sets and glue —
// unless they validate, since parent-side data carries no signatures
// (the §6.3 structural argument for child-centricity).
func (r *Resolver) answerFromCache(name dnswire.Name, qtype dnswire.Type) (*cache.Entry, uint32, bool) {
	minCred := cache.CredAnswerNonAuth
	if r.Policy.Centricity == ParentCentric && !r.Policy.Validate {
		minCred = cache.CredAdditional
	}
	if e, rem, ok := r.Cache.Get(name, qtype); ok && e.Cred >= minCred {
		return e, rem, true
	}
	// A cached CNAME redirects any qtype (except CNAME itself).
	if qtype != dnswire.TypeCNAME {
		if e, rem, ok := r.Cache.Get(name, dnswire.TypeCNAME); ok && e.Cred >= minCred {
			return e, rem, true
		}
	}
	return nil, 0, false
}

// iterate walks the delegation tree toward (name, qtype).
func (r *Resolver) iterate(name dnswire.Name, qtype dnswire.Type, res *Result, depth int) error {
	for step := 0; step < maxSteps; step++ {
		zoneName, servers := r.bestServers(name, res, depth)

		ssp := res.Span.Child("step")
		if ssp != nil {
			ssp.AnnotateUint("n", uint64(step+1))
			ssp.Annotate("zone", string(zoneName))
		}

		// RFC 7706: referrals for names at or below a TLD can be taken
		// from the local root mirror without a query.
		if r.Policy.LocalRoot && r.LocalRootZone != nil && zoneName.IsRoot() {
			if ssp != nil {
				ssp.Annotate("source", "local-root-mirror")
			}
			done, err := r.localRootStep(name, qtype, res)
			ssp.Finish()
			if done {
				return err
			}
			// localRootStep cached a referral; go around.
			continue
		}

		if len(servers) == 0 {
			ssp.Annotate("outcome", "no-servers")
			ssp.Finish()
			return r.fail(name, qtype, res, fmt.Errorf("resolver: no servers for %s", zoneName))
		}
		resp, server, err := r.exchangeAny(servers, name, qtype, res, ssp)
		if err != nil {
			ssp.Annotate("outcome", "exchange-failed")
			ssp.Finish()
			return r.fail(name, qtype, res, err)
		}
		r.pinSticky(zoneName, server)

		done, err := r.absorb(resp, server, zoneName, name, qtype, res, depth, ssp)
		ssp.Finish()
		if done || err != nil {
			return err
		}
	}
	return r.fail(name, qtype, res, fmt.Errorf("resolver: referral chase exceeded %d steps", maxSteps))
}

// absorb caches a response's contents and decides what happens next.
// done=true means the client answer (or error) is complete. The TTL
// decision taken at this step (cap/floor clamp, negative fallback) is
// annotated on sp, the current step's span.
func (r *Resolver) absorb(resp *dnswire.Message, server netip.Addr, zoneName, name dnswire.Name, qtype dnswire.Type, res *Result, depth int, sp *obs.Span) (bool, error) {
	now := r.Clock.Now()

	switch {
	case resp.Header.RCode == dnswire.RCodeNXDomain:
		negTTL, fromSOA := r.cacheNegative(resp, name, qtype, cache.NegNXDomain, now)
		if sp != nil {
			sp.Annotate("outcome", "nxdomain")
			sp.Annotate("neg_ttl_source", negSource(fromSOA))
			sp.AnnotateUint("neg_ttl_s", uint64(negTTL))
		}
		res.Msg.Header.RCode = dnswire.RCodeNXDomain
		res.FinalServer = server
		return true, nil

	case resp.Header.RCode != dnswire.RCodeNoError:
		sp.Annotate("outcome", "upstream-error")
		return true, r.fail(name, qtype, res, fmt.Errorf("resolver: upstream rcode %s", resp.Header.RCode))

	case len(resp.Answer) > 0:
		r.cacheAnswerSections(resp, server, now)
		res.FinalServer = server
		// Copy matching answers (and any CNAME chain present). Client
		// answers carry the TTLs the cache will honor — capped and
		// floored — exactly as deployed resolvers report them.
		var lastCNAME dnswire.Name
		answered := false
		for _, rr := range resp.Answer {
			if sp != nil && r.clampTTL(rr.TTL) != rr.TTL {
				sp.Annotate("ttl_clamp", clampLabel(rr.TTL, r.clampTTL(rr.TTL)))
			}
			rr.TTL = r.clampTTL(rr.TTL)
			if rr.Name == name && rr.Type == qtype {
				res.Msg.AddAnswer(rr)
				answered = true
			} else if rr.Type == dnswire.TypeCNAME {
				res.Msg.AddAnswer(rr)
				lastCNAME = rr.Data.(dnswire.CNAME).Target
				name = lastCNAME // chain may continue in this response
			}
		}
		sp.Annotate("outcome", "answer")
		if !answered && lastCNAME != "" {
			// Chase the alias.
			if sp != nil {
				sp.Annotate("cname", string(lastCNAME))
			}
			return true, r.resolveInto(lastCNAME, qtype, res, depth+1)
		}
		if !answered {
			return true, r.fail(name, qtype, res, fmt.Errorf("resolver: answer section did not match question"))
		}
		if r.Policy.Validate && resp.Header.AA && depth < maxDepth {
			if err := r.validateAnswer(server, name, qtype, resp.AnswersFor(name, qtype), res, depth); err != nil {
				sp.Annotate("dnssec", "bogus")
				return true, r.fail(name, qtype, res, err)
			}
			res.Msg.Header.AD = res.Validated
			if sp != nil && res.Validated {
				sp.Annotate("dnssec", "validated")
			}
		}
		return true, nil

	case resp.IsReferral():
		child := r.cacheReferral(resp, now)
		if sp != nil {
			sp.Annotate("outcome", "referral")
			sp.Annotate("child", string(child))
		}
		if child == "" || !name.IsSubdomainOf(child) {
			return true, r.fail(name, qtype, res, fmt.Errorf("resolver: lame referral from %s", server))
		}
		if child == zoneName {
			return true, r.fail(name, qtype, res, fmt.Errorf("resolver: referral loop at %s", child))
		}
		// Parent-centric resolvers can now answer NS/address questions
		// straight from the referral data they just cached.
		if e, rem, ok := r.answerFromCache(name, qtype); ok {
			sp.Annotate("answered_from", "referral-data")
			res.FinalServer = server
			r.applyCached(e, rem, name, qtype, res, depth)
			return true, nil
		}
		return false, nil

	default:
		// NODATA.
		negTTL, fromSOA := r.cacheNegative(resp, name, qtype, cache.NegNoData, now)
		if sp != nil {
			sp.Annotate("outcome", "nodata")
			sp.Annotate("neg_ttl_source", negSource(fromSOA))
			sp.AnnotateUint("neg_ttl_s", uint64(negTTL))
		}
		res.FinalServer = server
		return true, nil
	}
}

// negSource labels where a negative TTL came from.
func negSource(fromSOA bool) string {
	if fromSOA {
		return "soa-minimum"
	}
	return "policy-fallback"
}

// clampLabel renders a TTL cap/floor decision for the lifecycle trace.
func clampLabel(in, out uint32) string {
	return fmt.Sprintf("%d->%d", in, out)
}

// StaleGate vetoes RFC 8767 serve-stale answers. AllowStale is asked with
// the candidate entry's store time; returning false forces the error path
// (SERVFAIL) instead of the stale answer. The push plane's subscriber
// implements this: stale is fine for plain TTL expiry, but an entry that a
// NOTIFY purged — or that an unhealthy subscription can no longer vouch
// for — is known-superseded, not merely old.
type StaleGate interface {
	AllowStale(name dnswire.Name, qtype dnswire.Type, storedAt time.Time) bool
}

// fail is the terminal error path: serve stale if allowed, else SERVFAIL.
func (r *Resolver) fail(name dnswire.Name, qtype dnswire.Type, res *Result, err error) error {
	if r.Policy.ServeStale {
		if e, rem, ok := r.Cache.GetStale(name, qtype); ok && e.Negative == cache.NotNegative {
			if g := r.StaleGate; g != nil && !g.AllowStale(name, qtype, e.Stored) {
				res.Span.Annotate("serve_stale_denied", string(name))
				return err
			}
			res.Stale = true
			res.Span.Annotate("serve_stale", string(name))
			for _, rr := range e.RRs {
				rr.TTL = rem
				res.Msg.AddAnswer(rr)
			}
			return nil
		}
	}
	return err
}

// exchangeAny tries the candidate servers (sticky resolvers always lead
// with their pinned choice) until one responds. Each attempt becomes an
// "exchange" child of sp, the current step's span. With the zero-value
// RetryPolicy this behaves exactly as the legacy resolver did: up to
// Policy.maxRetries distinct servers, back to back, no extra randomness.
// An active Retry policy adds cycling attempts, backoff with deterministic
// jitter, per-attempt and overall deadlines, and an optional hedged second
// query on the first attempt.
func (r *Resolver) exchangeAny(servers []netip.Addr, name dnswire.Name, qtype dnswire.Type, res *Result, sp *obs.Span) (*dnswire.Message, netip.Addr, error) {
	rp := r.Policy.Retry
	retrying := rp.enabled()
	order := r.serverOrder(servers)
	attempts := rp.Attempts
	if attempts <= 0 {
		// Legacy semantics: distinct servers only, never more than the
		// candidate list offers.
		attempts = r.Policy.maxRetries()
		if attempts > len(order) {
			attempts = len(order)
		}
	}

	// The query is encoded once; each attempt stamps a fresh transaction ID
	// straight into the header bytes.
	qs := acquireQueryScratch()
	defer releaseQueryScratch(qs)
	qs.msg.Reset()
	qs.msg.Header = dnswire.Header{Opcode: dnswire.OpcodeQuery}
	qs.msg.Question = append(qs.msg.Question,
		dnswire.Question{Name: name, Type: qtype, Class: dnswire.ClassIN})
	// Advertise EDNS so referrals with glue fit in one datagram.
	qs.msg.AddAdditional(dnswire.RR{Name: dnswire.Root, Type: dnswire.TypeOPT,
		Data: dnswire.OPT{UDPSize: dnswire.MaxEDNSSize}})
	wire, err := qs.encode()
	if err != nil {
		return nil, netip.Addr{}, err
	}

	var (
		spent   time.Duration // virtual cost of this step's attempts
		lastErr error
	)
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if b := rp.backoffFor(i); b > 0 {
				d := b + r.drawJitter(rp, b)
				spent += d
				res.Latency += d
				if m := r.Obs; m != nil {
					m.Backoff.Observe(float64(d) / float64(time.Millisecond))
				}
				if sp != nil {
					sp.AnnotateUint("backoff_us", uint64(d/time.Microsecond))
				}
			}
			if rp.Deadline > 0 && spent >= rp.Deadline {
				sp.Annotate("retry", "deadline-exhausted")
				break
			}
			res.Retries++
			if m := r.Obs; m != nil {
				m.Retries.Inc()
			}
		}
		if i == 0 && rp.Hedge > 0 && len(order) > 1 {
			resp, server, cost, err := r.hedgedAttempt(order, name, qtype, wire, rp, res, sp)
			spent += cost
			res.Latency += cost
			if err == nil {
				return resp, server, nil
			}
			lastErr = err
			continue
		}
		server := order[i%len(order)]
		resp, cost, err := r.attempt(server, name, qtype, wire, rp, retrying, res, sp, res.Latency)
		spent += cost
		res.Latency += cost
		if err == nil {
			return resp, server, nil
		}
		lastErr = err
		if rp.Deadline > 0 && spent >= rp.Deadline {
			sp.Annotate("retry", "deadline-exhausted")
			break
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("resolver: no servers answered for %s", name)
	}
	return nil, netip.Addr{}, lastErr
}

// attempt performs one upstream exchange against server, stamping a fresh
// transaction ID into the pre-encoded wire query. It books Queries/Timeouts
// and SRTT state but deliberately does NOT charge res.Latency: sequential
// retries charge their full cost, while a hedged pair charges only the
// earlier completion — the caller knows which. offset positions the fault
// schedule at the virtual latency this resolution has already accumulated,
// so a retry after backoff sees later fault-window state.
func (r *Resolver) attempt(server netip.Addr, name dnswire.Name, qtype dnswire.Type, wire []byte, rp RetryPolicy, retrying bool, res *Result, sp *obs.Span, offset time.Duration) (*dnswire.Message, time.Duration, error) {
	esp := sp.Child("exchange")
	if esp != nil {
		esp.Annotate("server", server.String())
	}
	qID := r.id()
	wire[0], wire[1] = byte(qID>>8), byte(qID)
	res.Queries++
	respWire, rtt, err := r.exchangeWire(server, wire, offset)
	if m := r.Obs; m != nil {
		m.UpstreamRTT.Observe(float64(rtt) / float64(time.Millisecond))
	}
	if esp != nil {
		esp.AnnotateUint("rtt_us", uint64(rtt/time.Microsecond))
	}
	cost := rtt
	if err != nil {
		if rp.AttemptTimeout > 0 && cost > rp.AttemptTimeout {
			cost = rp.AttemptTimeout
		}
		res.Timeouts++
		r.srttPenalize(server, cost)
		esp.Annotate("error", "timeout")
		esp.Finish()
		r.QLog.Upstream(server, name, qtype, 0, 0, qlog.OutcomeTimeout, cost)
		return nil, cost, err
	}
	if rp.AttemptTimeout > 0 && rtt > rp.AttemptTimeout {
		// The reply exists but arrived past the per-attempt deadline: the
		// client has moved on, so charge exactly the deadline and book a
		// timeout.
		cost = rp.AttemptTimeout
		res.Timeouts++
		r.srttPenalize(server, cost)
		esp.Annotate("error", "attempt-timeout")
		esp.Finish()
		r.QLog.Upstream(server, name, qtype, 0, 0, qlog.OutcomeTimeout, cost)
		return nil, cost, errAttemptSlow
	}
	if srtt := r.srttObserve(server, rtt); srtt > 0 {
		if m := r.Obs; m != nil {
			m.SRTT.Observe(float64(srtt) / float64(time.Millisecond))
		}
		if esp != nil {
			esp.AnnotateUint("srtt_us", uint64(srtt/time.Microsecond))
		}
	}
	resp, derr := dnswire.Decode(respWire)
	if derr != nil {
		esp.Annotate("error", "decode")
		esp.Finish()
		r.QLog.Upstream(server, name, qtype, 0, 0, qlog.OutcomeError, rtt)
		return nil, cost, derr
	}
	if resp.Header.ID != qID {
		esp.Annotate("error", "id-mismatch")
		esp.Finish()
		r.QLog.Upstream(server, name, qtype, 0, 0, qlog.OutcomeError, rtt)
		return nil, cost, errIDMismatch
	}
	if retrying {
		// An active retry plane treats degraded replies as retryable: an
		// empty truncated shell (anycast shedding load) and failure rcodes
		// both mean "ask someone else", where the legacy path would hand
		// them to absorb and fail the whole resolution.
		if resp.Header.TC && len(resp.Answer) == 0 && len(resp.Authority) == 0 {
			esp.Annotate("error", "truncated")
			esp.Finish()
			r.QLog.Upstream(server, name, qtype, resp.Header.RCode, 0, qlog.OutcomeError, rtt)
			return nil, cost, errTruncated
		}
		if rc := resp.Header.RCode; rc == dnswire.RCodeServFail || rc == dnswire.RCodeRefused {
			esp.Annotate("error", "failure-rcode")
			esp.Finish()
			r.QLog.Upstream(server, name, qtype, rc, 0, qlog.OutcomeError, rtt)
			return nil, cost, errUpstreamFailed
		}
	}
	esp.Finish()
	var ttl uint32
	if len(resp.Answer) > 0 {
		ttl = resp.Answer[0].TTL
	}
	r.QLog.Upstream(server, name, qtype, resp.Header.RCode, ttl, qlog.OutcomeNone, rtt)
	return resp, cost, nil
}

// hedgedAttempt races the two best candidates: the primary goes first and,
// if it has not completed within rp.Hedge, the backup is launched too. In
// the synchronous simulation both costs are known immediately, so the race
// resolves arithmetically — the client pays the earlier completion, and both
// queries hit the authoritatives (the real price of hedging).
func (r *Resolver) hedgedAttempt(order []netip.Addr, name dnswire.Name, qtype dnswire.Type, wire []byte, rp RetryPolicy, res *Result, sp *obs.Span) (*dnswire.Message, netip.Addr, time.Duration, error) {
	base := res.Latency
	primary, backup := order[0], order[1]
	respP, costP, errP := r.attempt(primary, name, qtype, wire, rp, true, res, sp, base)
	if errP == nil && costP <= rp.Hedge {
		return respP, primary, costP, nil
	}
	// The hedge timer fired while the primary was still outstanding.
	res.Hedges++
	if m := r.Obs; m != nil {
		m.Hedges.Inc()
	}
	if sp != nil {
		sp.Annotate("hedge", backup.String())
	}
	respH, costH, errH := r.attempt(backup, name, qtype, wire, rp, true, res, sp, base+rp.Hedge)
	completionH := rp.Hedge + costH
	switch {
	case errP == nil && (errH != nil || costP <= completionH):
		return respP, primary, costP, nil
	case errH == nil:
		if m := r.Obs; m != nil {
			m.HedgeWins.Inc()
		}
		if sp != nil {
			sp.Annotate("hedge_win", backup.String())
		}
		return respH, backup, completionH, nil
	}
	// Both failed: the client waited out the slower failure.
	cost := costP
	if completionH > cost {
		cost = completionH
	}
	return nil, netip.Addr{}, cost, errP
}

// exchangeWire sends one wire query, positioning the fault schedule at the
// given virtual-time offset when the network supports it (the in-memory
// simnet does; the real-UDP exchanger ignores offsets by not implementing
// the interface).
func (r *Resolver) exchangeWire(server netip.Addr, wire []byte, offset time.Duration) ([]byte, time.Duration, error) {
	if oe, ok := r.Net.(simnet.OffsetExchanger); ok {
		return oe.ExchangeAt(r.Addr, server, wire, offset)
	}
	return r.Net.Exchange(r.Addr, server, wire)
}

// drawJitter draws the backoff jitter addition from the resolver's seeded
// RNG, so retry timing is deterministic per (seed, query sequence).
func (r *Resolver) drawJitter(rp RetryPolicy, b time.Duration) time.Duration {
	if rp.jitter() <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return rp.jitterFor(b, r.rng)
}

func (r *Resolver) srttObserve(server netip.Addr, rtt time.Duration) time.Duration {
	if r.srtt == nil {
		return 0
	}
	return r.srtt.observe(server, rtt)
}

func (r *Resolver) srttPenalize(server netip.Addr, cost time.Duration) {
	if r.srtt == nil {
		return
	}
	r.srtt.penalize(server, cost)
}

func (r *Resolver) serverOrder(servers []netip.Addr) []netip.Addr {
	// Single-candidate lists (the common case deep in a delegation) need
	// neither the shuffle nor the lock+copy it requires — this sits on the
	// hot path of every exchange.
	if len(servers) <= 1 {
		return servers
	}
	if r.Policy.Retry.OrderBySRTT && r.srtt != nil {
		out := append([]netip.Addr(nil), servers...)
		r.srtt.sortBySRTT(out)
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]netip.Addr(nil), servers...)
	r.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// clampTTL applies the policy's cap and floor to a TTL reported to clients.
func (r *Resolver) clampTTL(ttl uint32) uint32 { return r.Policy.ClampTTL(ttl) }

func (r *Resolver) id() uint16 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	return r.nextID
}
