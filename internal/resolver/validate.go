package resolver

import (
	"fmt"
	"net/netip"

	"dnsttl/internal/cache"
	"dnsttl/internal/dnssec"
	"dnsttl/internal/dnswire"
)

// validateAnswer runs DNSSEC validation for an authoritative answer: fetch
// the covering RRSIG from the answering server and the signer's DNSKEY
// through normal (cached) resolution, then verify. Unsigned zones pass as
// "insecure" (no RRSIG exists); broken signatures fail the resolution.
func (r *Resolver) validateAnswer(server netip.Addr, name dnswire.Name, qtype dnswire.Type, rrs []dnswire.RR, res *Result, depth int) error {
	if len(rrs) == 0 || qtype == dnswire.TypeRRSIG || qtype == dnswire.TypeDNSKEY {
		return nil
	}
	sig, ok, err := r.fetchRRSIG(server, name, qtype, res)
	if err != nil || !ok {
		// No signature: the zone is unsigned — insecure but accepted,
		// as in real DNSSEC without a DS chain.
		return nil
	}
	signer := sig.Data.(dnswire.RRSIG).SignerName

	keyRR, err := r.fetchDNSKEY(signer, res, depth)
	if err != nil {
		return fmt.Errorf("resolver: DNSKEY for %s: %w", signer, err)
	}
	if err := dnssec.Verify(keyRR, rrs, sig, r.Clock.Now()); err != nil {
		return fmt.Errorf("resolver: validation of %s/%s failed: %w", name, qtype, err)
	}
	res.Validated = true
	return nil
}

// fetchRRSIG asks the answering server for the signature covering
// (name, qtype).
func (r *Resolver) fetchRRSIG(server netip.Addr, name dnswire.Name, qtype dnswire.Type, res *Result) (dnswire.RR, bool, error) {
	sp := res.Span.Child("fetch rrsig")
	resp, _, err := r.exchangeAny([]netip.Addr{server}, name, dnswire.TypeRRSIG, res, sp)
	sp.Finish()
	if err != nil {
		return dnswire.RR{}, false, err
	}
	for _, rr := range resp.AnswersFor(name, dnswire.TypeRRSIG) {
		if sig, ok := rr.Data.(dnswire.RRSIG); ok && sig.TypeCovered == qtype {
			return rr, true, nil
		}
	}
	return dnswire.RR{}, false, nil
}

// fetchDNSKEY resolves the signer zone's key, using the cache across
// validations.
func (r *Resolver) fetchDNSKEY(signer dnswire.Name, res *Result, depth int) (dnswire.RR, error) {
	if e, _, ok := r.Cache.Get(signer, dnswire.TypeDNSKEY); ok && e.Negative == cache.NotNegative && len(e.RRs) > 0 {
		return e.RRs[0], nil
	}
	scratch := &Result{Msg: &dnswire.Message{}}
	err := r.resolveInto(signer, dnswire.TypeDNSKEY, scratch, depth+1)
	res.Latency += scratch.Latency
	res.Queries += scratch.Queries
	res.Timeouts += scratch.Timeouts
	if err != nil {
		return dnswire.RR{}, err
	}
	if len(scratch.Msg.Answer) == 0 {
		return dnswire.RR{}, fmt.Errorf("resolver: zone %s has no DNSKEY", signer)
	}
	return scratch.Msg.Answer[0], nil
}
