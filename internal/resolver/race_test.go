package resolver

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

// TestConcurrentResolutionsUnderChaos hammers one shared resolver — retry
// plane, hedging, and SRTT ordering all armed — from many goroutines while
// the virtual clock advances underneath and a fault schedule flips the
// authoritative between up and down. Run with -race this covers every lock
// in the retry plane: the RNG draw for jitter, the SRTT table, the sticky
// map, and the shared cache.
func TestConcurrentResolutionsUnderChaos(t *testing.T) {
	tn := newTestNet(t)
	tn.net.Clock = tn.clock
	// Unique names resolve through a wildcard so every goroutine's stream
	// misses the cache and exercises the full retry path.
	tn.ct.MustAdd(dnswire.NewA("*.w.cachetest.net", 60, "192.0.2.81"))
	// A second cachetest.net nameserver so hedging has a backup candidate.
	ct2 := netip.MustParseAddr("192.0.2.2")
	tn.netZone.MustAdd(
		dnswire.NewNS("cachetest.net", 172800, "ns2.cachetest.net"),
		dnswire.NewA("ns2.cachetest.net", 172800, ct2.String()),
	)
	ns2 := authoritative.NewServer(dnswire.NewName("ns2.cachetest.net"), tn.clock)
	ns2.AddZone(tn.ct)
	tn.net.Attach(ct2, ns2)
	// The primary flaps while a mild loss burst runs unbounded.
	tn.net.Faults = simnet.NewFaultSchedule(
		simnet.Flap(tn.ctAddr, 0, 0, 10*time.Second, 0.3),
		simnet.LossBurst(ct2, 0, 0, 0.2),
	)

	pol := DefaultPolicy()
	pol.ServeStale = true
	pol.Retry = RetryPolicy{
		Attempts: 3, Backoff: 2 * time.Second, Jitter: 0.5,
		Hedge: 100 * time.Millisecond, OrderBySRTT: true,
	}
	r := tn.resolver(pol, 7)

	const goroutines = 8
	const perG = 25
	var answered atomic.Int64
	done := make(chan struct{})
	var advancer sync.WaitGroup
	advancer.Add(1)
	go func() {
		defer advancer.Done()
		for {
			select {
			case <-done:
				return
			default:
				tn.clock.Advance(700 * time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := dnswire.NewName(fmt.Sprintf("n%d-%d.w.cachetest.net", g, i))
				res, err := r.Resolve(name, dnswire.TypeA)
				if err != nil {
					continue // faults may exhaust the budget; that's the point
				}
				if res.Msg.Header.RCode == dnswire.RCodeNoError && len(res.Msg.Answer) > 0 {
					answered.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	advancer.Wait()

	// The retry plane should rescue a healthy majority despite the chaos.
	if got := answered.Load(); got < goroutines*perG/2 {
		t.Errorf("answered %d of %d resolutions; expected the retry plane to carry most", got, goroutines*perG)
	}
}

// TestSRTTTableRace hammers every srttTable operation from concurrent
// goroutines — the table is shared by all of a resolver's in-flight
// resolutions, so observe/penalize racing estimate/sortBySRTT is the normal
// state of the world under load.
func TestSRTTTableRace(t *testing.T) {
	tab := newSRTTTable()
	addrs := []netip.Addr{
		netip.MustParseAddr("192.0.2.1"),
		netip.MustParseAddr("192.0.2.2"),
		netip.MustParseAddr("192.0.2.3"),
		netip.MustParseAddr("192.0.2.4"),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a := addrs[(g+i)%len(addrs)]
				switch i % 4 {
				case 0:
					tab.observe(a, time.Duration(1+i%50)*time.Millisecond)
				case 1:
					tab.penalize(a, 100*time.Millisecond)
				case 2:
					tab.estimate(a)
				case 3:
					order := append([]netip.Addr(nil), addrs...)
					tab.sortBySRTT(order)
				}
			}
		}(g)
	}
	wg.Wait()
	for _, a := range addrs {
		if est, ok := tab.estimate(a); !ok || est <= 0 {
			t.Errorf("server %v lost its estimate under concurrency: %v %v", a, est, ok)
		}
	}
}
