package resolver

import (
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

// Lookuper is anything that can answer a client resolution — a full
// iterative Resolver or a Forwarder in front of one. Vantage points hold a
// Lookuper, matching the paper's observation (§4.4) that clients sit behind
// "multiple levels of resolvers".
type Lookuper interface {
	Resolve(name dnswire.Name, qtype dnswire.Type) (*Result, error)
}

// Handler adapts a Resolver into a simnet.Handler so recursives can be
// attached to the network and queried by forwarders over the wire, exactly
// like every other hop.
type Handler struct {
	R *Resolver
}

// ServeDNS answers one wire-format client query through the resolver.
func (h Handler) ServeDNS(wire []byte, from netip.Addr) []byte {
	q, err := dnswire.Decode(wire)
	if err != nil || len(q.Question) == 0 {
		return nil
	}
	res, err := h.R.Resolve(q.Q().Name, q.Q().Type)
	if err != nil || res == nil {
		resp := q.Reply()
		resp.Header.RCode = dnswire.RCodeServFail
		resp.Header.RA = true
		out, _ := dnswire.Encode(resp)
		return out
	}
	msg := res.Msg
	msg.Header.ID = q.Header.ID
	msg.Header.RD = q.Header.RD
	out, err := dnswire.Encode(msg)
	if err != nil {
		return nil
	}
	return out
}

// Forwarder is the other resolver species the paper's infrastructure
// analysis finds (§4.4): it does no iteration itself, relaying queries
// (RD=1) to one of several full recursives and caching what comes back.
// With more than one upstream it models a resolver farm's frontend — each
// query may land on a different backend cache, producing exactly the
// fragmentation the paper observed in OpenDNS's mixed answers.
type Forwarder struct {
	// Addr is the forwarder's own address.
	Addr netip.Addr
	// Upstreams are the recursive backends, queried one per resolution.
	Upstreams []netip.Addr
	// Net carries the queries; Clock decays the local cache.
	Net   simnet.Exchanger
	Clock simnet.Clock
	// Cache is the forwarder's own (usually small) cache layer.
	Cache *cache.Cache
	// Passthrough disables the local cache: the forwarder becomes a pure
	// load-balancing frontend, as public-resolver front doors are.
	Passthrough bool
	// Policy supplies the TTL knobs the forwarder honors: the no-SOA
	// negative-TTL fallback plus the cap/floor clamping it shares with the
	// full resolver. The zero value means no cap, no floor, 60 s fallback.
	Policy Policy

	mu     sync.Mutex
	rng    *rand.Rand
	nextID uint16
}

// NewForwarder builds a forwarder with its own cache.
func NewForwarder(addr netip.Addr, upstreams []netip.Addr, net simnet.Exchanger, clock simnet.Clock, seed int64) *Forwarder {
	if clock == nil {
		clock = simnet.WallClock{}
	}
	return &Forwarder{
		Addr:      addr,
		Upstreams: upstreams,
		Net:       net,
		Clock:     clock,
		Cache:     cache.New(clock, cache.Config{}),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Resolve implements Lookuper: local cache, then one upstream.
func (f *Forwarder) Resolve(name dnswire.Name, qtype dnswire.Type) (*Result, error) {
	res := &Result{Msg: &dnswire.Message{
		Header:   dnswire.Header{QR: true, RA: true},
		Question: []dnswire.Question{{Name: name, Type: qtype, Class: dnswire.ClassIN}},
	}}
	if e, rem, ok := f.cacheGet(name, qtype); ok {
		res.CacheHit = true
		switch e.Negative {
		case cache.NegNXDomain:
			res.Msg.Header.RCode = dnswire.RCodeNXDomain
		case cache.NegNoData:
		default:
			for _, rr := range e.RRs {
				rr.TTL = rem
				res.Msg.AddAnswer(rr)
			}
		}
		if len(res.Msg.Answer) > 0 {
			res.AnswerTTL = res.Msg.Answer[0].TTL
		}
		return res, nil
	}
	if len(f.Upstreams) == 0 {
		res.Msg.Header.RCode = dnswire.RCodeServFail
		return res, nil
	}

	f.mu.Lock()
	start := f.rng.Intn(len(f.Upstreams))
	f.mu.Unlock()

	// The retry plane mirrors the full resolver's: the zero-value policy
	// keeps the legacy single-shot behavior (one upstream, one attempt,
	// SERVFAIL on any failure); Retry.Attempts > 1 cycles the upstreams
	// with backoff, which is what rescues clients behind a flapping
	// recursive instead of handing them an instant SERVFAIL.
	rp := f.Policy.Retry
	attempts := rp.Attempts
	if attempts <= 0 {
		attempts = 1
	}

	qs := acquireQueryScratch()
	qs.msg.Header = dnswire.Header{RD: true, Opcode: dnswire.OpcodeQuery}
	qs.msg.Question = append(qs.msg.Question,
		dnswire.Question{Name: name, Type: qtype, Class: dnswire.ClassIN})
	wire, err := qs.encode()
	if err != nil {
		releaseQueryScratch(qs)
		return nil, err
	}
	var (
		resp     *dnswire.Message
		upstream netip.Addr
		spent    time.Duration
	)
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if b := rp.backoffFor(i); b > 0 {
				d := b + f.drawJitter(rp, b)
				spent += d
				res.Latency += d
			}
			if rp.Deadline > 0 && spent >= rp.Deadline {
				break
			}
			res.Retries++
		}
		upstream = f.Upstreams[(start+i)%len(f.Upstreams)]
		f.mu.Lock()
		f.nextID++
		id := f.nextID
		f.mu.Unlock()
		wire[0], wire[1] = byte(id>>8), byte(id)
		res.Queries++
		respWire, rtt, err := f.exchangeWire(upstream, wire, res.Latency)
		res.Latency += rtt
		spent += rtt
		if err != nil {
			res.Timeouts++
			continue
		}
		m, derr := dnswire.Decode(respWire)
		if derr != nil || m.Header.ID != id {
			continue
		}
		if rp.enabled() && (m.Header.RCode == dnswire.RCodeServFail || m.Header.RCode == dnswire.RCodeRefused) {
			continue
		}
		resp = m
		break
	}
	releaseQueryScratch(qs)
	if resp == nil {
		res.Msg.Header.RCode = dnswire.RCodeServFail
		return res, nil
	}
	res.Msg.Header.RCode = resp.Header.RCode
	res.FinalServer = upstream
	now := f.Clock.Now()
	if f.Passthrough {
		if len(resp.Answer) > 0 {
			res.Msg.Answer = resp.Answer
			res.AnswerTTL = resp.Answer[0].TTL
		}
		return res, nil
	}
	switch {
	case resp.Header.RCode == dnswire.RCodeNXDomain:
		f.Cache.Put(cache.Entry{
			Key: cache.Key{Name: name, Type: qtype}, TTL: f.negTTLFrom(resp),
			Stored: now, Cred: cache.CredAnswerNonAuth, Negative: cache.NegNXDomain,
		})
	case resp.Header.RCode != dnswire.RCodeNoError:
		// Upstream failure: nothing cacheable.
	case len(resp.Answer) > 0:
		res.Msg.Answer = resp.Answer
		res.AnswerTTL = resp.Answer[0].TTL
		for _, t := range answerableTypes {
			for owner, rrs := range groupRRs(resp.Answer, t) {
				f.Cache.Put(cache.Entry{
					Key: cache.Key{Name: owner, Type: t}, RRs: rrs, TTL: rrs[0].TTL,
					Stored: now, Cred: cache.CredAnswerNonAuth, Server: upstream.String(),
				})
			}
		}
	default:
		f.Cache.Put(cache.Entry{
			Key: cache.Key{Name: name, Type: qtype}, TTL: f.negTTLFrom(resp),
			Stored: now, Cred: cache.CredAnswerNonAuth, Negative: cache.NegNoData,
		})
	}
	return res, nil
}

// exchangeWire sends one wire query, positioning the fault schedule at the
// resolution's accumulated virtual latency when the network supports it.
func (f *Forwarder) exchangeWire(upstream netip.Addr, wire []byte, offset time.Duration) ([]byte, time.Duration, error) {
	if oe, ok := f.Net.(simnet.OffsetExchanger); ok {
		return oe.ExchangeAt(f.Addr, upstream, wire, offset)
	}
	return f.Net.Exchange(f.Addr, upstream, wire)
}

// drawJitter draws backoff jitter from the forwarder's seeded RNG.
func (f *Forwarder) drawJitter(rp RetryPolicy, b time.Duration) time.Duration {
	if rp.jitter() <= 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return rp.jitterFor(b, f.rng)
}

func (f *Forwarder) cacheGet(name dnswire.Name, qtype dnswire.Type) (*cache.Entry, uint32, bool) {
	if f.Passthrough {
		return nil, 0, false
	}
	return f.Cache.Get(name, qtype)
}

// negTTLFrom derives the RFC 2308 negative TTL: min(SOA TTL, SOA minimum)
// when the response carries a SOA, the policy's fallback otherwise. Either
// way the result is clamped by the policy cap/floor, exactly like positive
// TTLs are.
func (f *Forwarder) negTTLFrom(resp *dnswire.Message) uint32 {
	ttl := f.Policy.negTTLFallback()
	for _, rr := range resp.Authority {
		if soa, ok := rr.Data.(dnswire.SOA); ok {
			ttl = soa.Minimum
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
			break
		}
	}
	return f.Policy.ClampTTL(ttl)
}

var (
	_ Lookuper = (*Resolver)(nil)
	_ Lookuper = (*Forwarder)(nil)
)
