package resolver

import (
	"sync"

	"dnsttl/internal/dnswire"
)

// queryScratch bundles the reusable query Message and wire buffer the
// query-build hot paths (Resolver.exchangeAny, Forwarder.Resolve) encode
// into. Reuse after Exchange returns is safe because the simulated network
// delivers synchronously: no handler retains the query bytes past the call.
// Response messages are never pooled — they escape into Results and the
// cache.
type queryScratch struct {
	msg  dnswire.Message
	wire []byte
}

var queryScratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

func acquireQueryScratch() *queryScratch { return queryScratchPool.Get().(*queryScratch) }

func releaseQueryScratch(qs *queryScratch) {
	qs.msg.Reset()
	queryScratchPool.Put(qs)
}

// encodeQuery builds a one-question query (plus optional extra additional
// records already placed in qs.msg.Additional by the caller) into qs.wire.
func (qs *queryScratch) encode() ([]byte, error) {
	wire, err := dnswire.AppendEncode(qs.wire[:0], &qs.msg)
	if wire != nil {
		qs.wire = wire[:0]
	}
	return wire, err
}
