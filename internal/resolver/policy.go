// Package resolver implements an iterative (recursive-resolving) DNS server
// over the cache and simnet substrates. One implementation with policy
// knobs reproduces the behavioral families the paper observes in the wild:
// child- vs parent-centric TTL preference (§3), coupled vs independent
// NS/A-record lifetimes for in-bailiwick servers (§4.2–4.3), sticky
// resolvers (§4.4), TTL capping (§3.3), RFC 7706 local-root mirroring, and
// serve-stale.
package resolver

import (
	"time"

	"dnsttl/internal/cache"
)

// Centricity says which zone's TTL a resolver effectively honors for
// records that are duplicated at a delegation (NS sets and glue addresses).
type Centricity uint8

const (
	// ChildCentric resolvers follow RFC 2181 §5.4.1: they treat parent-side
	// referral data as non-authoritative, so explicit queries for NS or
	// nameserver addresses are forwarded to the child zone and the child's
	// TTLs govern the cache. Most deployed resolvers behave this way
	// (~90 % of .uy queries in §3.2).
	ChildCentric Centricity = iota
	// ParentCentric resolvers answer from referral/glue data directly and
	// never ask the child for records the parent already supplied, so the
	// parent's (often much longer) TTLs govern. OpenDNS exhibited this in
	// §4.4.
	ParentCentric
)

func (c Centricity) String() string {
	if c == ParentCentric {
		return "parent-centric"
	}
	return "child-centric"
}

// Policy is the behavioral configuration of one resolver.
type Policy struct {
	// Centricity selects parent- vs child-centric TTL preference.
	Centricity Centricity
	// RefreshGlueOnReferral controls what happens when a re-fetched
	// referral carries glue for an address that is still fresh in cache.
	// True (the common behavior, §4.2) replaces the cached address, which
	// couples the effective A lifetime to the NS TTL for in-bailiwick
	// servers; false keeps the cached address until its own TTL expires.
	RefreshGlueOnReferral bool
	// TTLCap bounds the TTLs this resolver honors; 0 means no cap. 21599
	// reproduces the Google Public DNS behavior of §3.3; BIND's default
	// is one week.
	TTLCap uint32
	// CapAtServe selects where the cap applies. False (BIND-style)
	// truncates the stored TTL, so an over-cap record expires after
	// TTLCap seconds. True (Google-style) stores the full TTL and clamps
	// only the *reported* value — which is why §3.3 sees a steady stream
	// of answers at exactly 21599 s: the remaining TTL stays above the
	// cap for days.
	CapAtServe bool
	// TTLFloor raises tiny TTLs; 0 means none.
	TTLFloor uint32
	// RevalidateGlue makes the resolver fetch an authoritative copy of a
	// nameserver address it only knows from glue (BIND-style credibility
	// upgrading). These explicit NS-host address queries are what the .nl
	// authoritatives observe in §3.4 — and their spacing tracks the child
	// TTL, producing Figure 4's bumps at one-hour multiples.
	RevalidateGlue bool
	// Sticky resolvers keep using the first server address they learned
	// for a zone, ignoring TTL expiry for server selection (§4.4).
	Sticky bool
	// LocalRoot mirrors the root zone locally (RFC 7706): referrals for
	// TLDs are answered from the mirror at zero network cost, and carry
	// the parent's TTLs.
	LocalRoot bool
	// ServeStale answers from expired cache entries when all
	// authoritative servers for a zone fail (RFC 8767).
	ServeStale bool
	// Validate enables DNSSEC validation: answers from signed zones must
	// verify against the zone's DNSKEY or the resolution fails, and
	// answers are never synthesized from unsigned parent-side data — a
	// validating resolver is structurally child-centric (§2, §6.3).
	Validate bool
	// Prefetch refreshes popular entries shortly before expiry instead of
	// letting them lapse (the Pappas et al. proposal discussed in §7).
	Prefetch bool
	// PrefetchThreshold is the remaining TTL, in seconds, below which a
	// cache hit triggers a refresh. Zero with Prefetch set means 10 s.
	// Ignored when PrefetchFraction is set.
	PrefetchThreshold uint32
	// PrefetchFraction, when non-zero, scales the refresh trigger to the
	// record's own TTL: a hit refreshes when the remaining TTL falls to
	// this fraction of the stored TTL (0.1 = last 10 % of lifetime). A
	// fractional trigger treats a 30 s and a 1-day record alike, where the
	// fixed PrefetchThreshold window would refresh short records on nearly
	// every hit.
	PrefetchFraction float64
	// PrefetchBudget bounds refresh-ahead load: at most this many
	// prefetches are issued per 60 s window of the resolver's clock
	// (coalesced and denied triggers are observable via Metrics). Zero
	// means unlimited.
	PrefetchBudget int
	// NegTTLFallback is the negative-cache TTL used when a negative
	// response carries no SOA to derive one from (RFC 2308 §5 leaves this
	// implementation-defined). Zero means 60 s. Like every other TTL it is
	// subject to TTLCap and TTLFloor.
	NegTTLFallback uint32
	// Timeout for one upstream exchange; zero means 5 s.
	Timeout time.Duration
	// MaxRetries is how many distinct servers are tried per step before
	// giving up; zero means 3. Superseded by Retry.Attempts when set.
	MaxRetries int
	// Retry configures the retry/backoff/hedging plane: per-step attempt
	// budgets, exponential backoff with deterministic jitter, per-attempt
	// and overall deadlines, hedged second queries, and SRTT-based server
	// ordering. The zero value keeps the legacy behavior.
	Retry RetryPolicy
}

func (p Policy) prefetchThreshold() uint32 {
	if p.PrefetchThreshold == 0 {
		return 10
	}
	return p.PrefetchThreshold
}

// prefetchTriggered reports whether a cache hit with rem seconds left on a
// record stored with ttl seconds should trigger a refresh-ahead.
func (p Policy) prefetchTriggered(rem, ttl uint32) bool {
	if !p.Prefetch {
		return false
	}
	if p.PrefetchFraction > 0 {
		return float64(rem) <= p.PrefetchFraction*float64(ttl)
	}
	return rem <= p.prefetchThreshold()
}

func (p Policy) negTTLFallback() uint32 {
	if p.NegTTLFallback == 0 {
		return 60
	}
	return p.NegTTLFallback
}

// CacheConfig derives the cache configuration this policy implies: the TTL
// cap lands in storage (BIND-style) or stays out of it (CapAtServe), the
// floor and serve-stale flags carry over. Callers add capacity/byte bounds
// and an eviction policy on top. resolver.New, farm.New, and the library
// Client all derive their caches through here so the TTL semantics cannot
// drift apart.
func (p Policy) CacheConfig() cache.Config {
	storageCap := p.TTLCap
	if p.CapAtServe {
		storageCap = 0 // full TTL in cache; clamp on the way out
	}
	return cache.Config{
		MaxTTL:     storageCap,
		MinTTL:     p.TTLFloor,
		ServeStale: p.ServeStale,
	}
}

// ClampTTL applies the policy's cap and floor to a TTL — the value this
// resolver reports to clients. The workload compiler uses it to predict
// served TTLs without instantiating a resolver.
func (p Policy) ClampTTL(ttl uint32) uint32 {
	if p.TTLCap > 0 && ttl > p.TTLCap {
		ttl = p.TTLCap
	}
	if ttl < p.TTLFloor {
		ttl = p.TTLFloor
	}
	return ttl
}

// CacheLifetime is the number of seconds a record with authoritative TTL
// ttl actually lives in this resolver's cache — the T in the Jung et al.
// renewal model λT/(1+λT). A BIND-style cap (CapAtServe false) truncates
// the stored TTL, so the cap bounds the lifetime; a Google-style serve
// clamp (CapAtServe true) stores the full TTL and only clamps reported
// values, so the lifetime is the uncapped TTL. The floor applies either
// way, matching Policy.CacheConfig's MinTTL.
func (p Policy) CacheLifetime(ttl uint32) uint32 {
	if p.CapAtServe {
		if ttl < p.TTLFloor {
			return p.TTLFloor
		}
		return ttl
	}
	return p.ClampTTL(ttl)
}

func (p Policy) maxRetries() int {
	if p.MaxRetries <= 0 {
		return 3
	}
	return p.MaxRetries
}

// DefaultPolicy is a mainstream child-centric resolver: BIND-like one-week
// cap, coupled glue refresh, no stickiness.
func DefaultPolicy() Policy {
	return Policy{
		Centricity:            ChildCentric,
		RefreshGlueOnReferral: true,
		TTLCap:                604800,
	}
}
