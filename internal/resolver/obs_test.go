package resolver

import (
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/simnet"
)

// TestResolverMetrics checks the registry view of a cold-then-warm
// resolution pair: one iteration's worth of upstream queries, then a pure
// cache hit, with the latency and answer-TTL histograms fed from the same
// resolutions the counters book.
func TestResolverMetrics(t *testing.T) {
	tn := newTestNet(t)
	reg := obs.NewRegistry(tn.clock)
	r := tn.resolver(DefaultPolicy(), 1)
	r.Obs = NewMetrics(reg)

	cold := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	warm := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if cold.CacheHit || !warm.CacheHit {
		t.Fatalf("expected cold then warm: %v %v", cold.CacheHit, warm.CacheHit)
	}

	s := reg.Snapshot()
	if got := s.Counters[MetricResolutions]; got != 2 {
		t.Fatalf("%s = %d, want 2", MetricResolutions, got)
	}
	if got := s.Counters[MetricCacheHits]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricCacheHits, got)
	}
	if got := s.Counters[MetricUpstream]; got != uint64(cold.Queries) || got == 0 {
		t.Fatalf("%s = %d, want %d (cold resolution's queries)", MetricUpstream, got, cold.Queries)
	}
	lat := s.Histograms[MetricLatency]
	if lat.Count != 2 {
		t.Fatalf("latency count = %d, want 2", lat.Count)
	}
	wantMax := float64(cold.Latency) / float64(time.Millisecond)
	if lat.Max != wantMax {
		t.Fatalf("latency max = %v ms, want %v ms", lat.Max, wantMax)
	}
	rtt := s.Histograms[MetricUpstreamRTT]
	if rtt.Count != uint64(cold.Queries) {
		t.Fatalf("upstream RTT count = %d, want %d", rtt.Count, cold.Queries)
	}
	ttl := s.Histograms[MetricAnswerTTL]
	if ttl.Count != 2 || ttl.Max != 300 {
		t.Fatalf("answer TTL histogram = %+v, want 2 observations with max 300", ttl)
	}
	// The warm answer's TTL decayed relative to the cold one only if the
	// clock moved; with constant latency on a virtual clock both are ≤ 300.
	if ttl.Min > 300 {
		t.Fatalf("answer TTL min = %v, want ≤ 300", ttl.Min)
	}
}

// TestResolverTraceTree checks the query-lifecycle trace of a cold
// resolution: a cache miss, one step per delegation level with its
// exchanges, and the terminal annotations.
func TestResolverTraceTree(t *testing.T) {
	tn := newTestNet(t)
	tr := obs.NewTracer(tn.clock)
	r := tn.resolver(DefaultPolicy(), 1)
	r.Tracer = tr

	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if res.Span == nil {
		t.Fatal("resolution with a tracer attached carried no span")
	}
	sp, ok := tr.Find("www.cachetest.net")
	if !ok || sp != res.Span {
		t.Fatal("tracer did not retain the resolution's root span")
	}

	out := sp.String()
	for _, want := range []string{
		"resolve www.cachetest.net. A",
		"cache lookup", "outcome=miss",
		"zone=.", "zone=net.", "zone=cachetest.net.",
		"exchange", "server=198.41.0.4", "rtt_us=",
		"outcome=referral", "outcome=answer",
		"rcode=NOERROR", "answer_ttl_s=300",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	steps := 0
	sp.Walk(func(_ int, s *obs.Span) {
		if s.Name == "step" {
			steps++
		}
	})
	if steps < 3 {
		t.Fatalf("cold resolution recorded %d steps, want ≥ 3 (root, net, cachetest):\n%s", steps, out)
	}
	// simnet reports RTTs without advancing the virtual clock, so span
	// durations are zero here; Keep must still have finished the root.
	if sp.End.IsZero() {
		t.Fatal("retained root span was never finished")
	}

	// A warm re-resolution replaces the retained trace with the hit path.
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	sp2, _ := tr.Find("www.cachetest.net")
	if sp2 == sp {
		t.Fatal("warm resolution did not replace the retained trace")
	}
	if out := sp2.String(); !strings.Contains(out, "outcome=hit") {
		t.Fatalf("warm trace missing cache hit:\n%s", out)
	}
}

// TestCacheNegativeTTLDecision pins the RFC 2308 TTL choice cacheNegative
// reports to the trace: SOA-derived when the response carries one, the
// policy fallback otherwise, both clamped by the policy cap/floor.
func TestCacheNegativeTTLDecision(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.TTLFloor = 30
	r := tn.resolver(pol, 1)
	now := tn.clock.Now()

	withSOA := &dnswire.Message{}
	withSOA.AddAuthority(dnswire.NewSOA("cachetest.net", 3600, "ns1.cachetest.net",
		"admin.cachetest.net", 1, 7200, 3600, 1209600, 60))
	ttl, fromSOA := r.cacheNegative(withSOA, dnswire.NewName("gone.cachetest.net"),
		dnswire.TypeA, 1, now)
	if !fromSOA || ttl != 60 {
		t.Fatalf("SOA negative: ttl=%d fromSOA=%v, want 60 true", ttl, fromSOA)
	}

	// No SOA: policy fallback (default 60), still clamped.
	ttl, fromSOA = r.cacheNegative(&dnswire.Message{}, dnswire.NewName("gone2.cachetest.net"),
		dnswire.TypeA, 1, now)
	if fromSOA || ttl != r.Policy.negTTLFallback() {
		t.Fatalf("fallback negative: ttl=%d fromSOA=%v, want %d false", ttl, fromSOA, r.Policy.negTTLFallback())
	}

	// The floor lifts an aggressive SOA minimum like any other TTL.
	tiny := &dnswire.Message{}
	tiny.AddAuthority(dnswire.NewSOA("cachetest.net", 3600, "ns1.cachetest.net",
		"admin.cachetest.net", 1, 7200, 3600, 1209600, 5))
	ttl, _ = r.cacheNegative(tiny, dnswire.NewName("gone3.cachetest.net"), dnswire.TypeA, 1, now)
	if ttl != 30 {
		t.Fatalf("floored negative ttl = %d, want 30", ttl)
	}
}

// TestNXDomainTraceAnnotations checks the negative path end to end: the
// step span records the outcome and the TTL decision source.
func TestNXDomainTraceAnnotations(t *testing.T) {
	tn := newTestNet(t)
	tr := obs.NewTracer(tn.clock)
	r := tn.resolver(DefaultPolicy(), 1)
	r.Tracer = tr

	res := mustResolve(t, r, "nope.cachetest.net", dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s, want NXDOMAIN", res.Msg.Header.RCode)
	}
	out := res.Span.String()
	for _, want := range []string{"outcome=nxdomain", "neg_ttl_source=soa-minimum", "neg_ttl_s=60"} {
		if !strings.Contains(out, want) {
			t.Fatalf("negative trace missing %q:\n%s", want, out)
		}
	}
}

// TestResolverObsAllocFree pins the telemetry cost on the resolver hot
// path: booking a completed resolution into the registry allocates nothing,
// and a warm resolution with metrics attached allocates no more than one
// without (tracing off is the production configuration being priced).
func TestResolverObsAllocFree(t *testing.T) {
	tn := newTestNet(t)
	reg := obs.NewRegistry(tn.clock)
	m := NewMetrics(reg)
	res := &Result{Msg: &dnswire.Message{}}
	res.Msg.AddAnswer(dnswire.NewA("www.cachetest.net", 300, "192.0.2.80"))
	res.Latency = 20 * time.Millisecond
	res.Queries = 3
	res.CacheHit = true
	if allocs := testing.AllocsPerRun(200, func() { m.observeResolution(res) }); allocs >= 0.5 {
		t.Errorf("observeResolution: %.2f allocs/op, want 0", allocs)
	}

	bare := tn.resolver(DefaultPolicy(), 1)
	mustResolve(t, bare, "www.cachetest.net", dnswire.TypeA)
	instrumented := tn.resolver(DefaultPolicy(), 2)
	instrumented.Obs = NewMetrics(reg)
	mustResolve(t, instrumented, "www.cachetest.net", dnswire.TypeA)

	name := dnswire.NewName("www.cachetest.net")
	warm := func(r *Resolver) float64 {
		return testing.AllocsPerRun(200, func() {
			if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
				t.Fatal(err)
			}
		})
	}
	base, withObs := warm(bare), warm(instrumented)
	if withObs > base+0.5 {
		t.Errorf("metrics added allocations to the warm path: %.2f vs %.2f allocs/op", withObs, base)
	}
}

// TestRetryPlaneObservability drives the retry plane through a flapping
// authoritative and checks its full telemetry surface: the new counters and
// histograms in the registry, the /metrics endpoint, and the span
// annotations (backoff_us, retries, failure detail) the trace carries.
func TestRetryPlaneObservability(t *testing.T) {
	tn := newTestNet(t)
	tn.net.Clock = tn.clock
	tn.net.Faults = simnet.NewFaultSchedule(
		simnet.Flap(tn.ctAddr, 0, 0, 10*time.Second, 0.5))
	reg := obs.NewRegistry(tn.clock)
	tr := obs.NewTracer(tn.clock)
	pol := DefaultPolicy()
	pol.Retry = RetryPolicy{Attempts: 3, Backoff: 6 * time.Second, OrderBySRTT: true}
	r := tn.resolver(pol, 3)
	r.Obs = NewMetrics(reg)
	r.Tracer = tr

	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if res.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (two down-phase attempts)", res.Retries)
	}

	s := reg.Snapshot()
	if got := s.Counters[MetricRetries]; got != uint64(res.Retries) {
		t.Errorf("%s = %d, want %d", MetricRetries, got, res.Retries)
	}
	if b := s.Histograms[MetricBackoff]; b.Count != uint64(res.Retries) {
		t.Errorf("%s count = %d, want %d (one observation per backoff)", MetricBackoff, b.Count, res.Retries)
	}
	if h := s.Histograms[MetricSRTT]; h.Count == 0 {
		t.Errorf("%s empty; successful exchanges must feed the SRTT histogram", MetricSRTT)
	}

	out := res.Span.String()
	for _, want := range []string{"retries=2", "backoff_us=", "srtt_us=", "error=timeout"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}

	// The live endpoint exposes the same names.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	obs.NewHandler(reg, tr).ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{MetricRetries, MetricHedges, MetricSRTT, MetricBackoff} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHedgeObservability checks the hedged-query telemetry: the hedge and
// hedge-win counters and the span's hedge annotation naming the backup.
func TestHedgeObservability(t *testing.T) {
	tn := newTestNet(t)
	ct2 := netip.MustParseAddr("192.0.2.2")
	tn.netZone.MustAdd(
		dnswire.NewNS("cachetest.net", 172800, "ns2.cachetest.net"),
		dnswire.NewA("ns2.cachetest.net", 172800, ct2.String()),
	)
	ns2 := authoritative.NewServer(dnswire.NewName("ns2.cachetest.net"), tn.clock)
	ns2.AddZone(tn.ct)
	tn.net.Attach(ct2, ns2)
	tn.net.LatencyFor = func(src, dst netip.Addr) simnet.LatencyModel {
		if dst == tn.ctAddr {
			return simnet.Constant(100 * time.Millisecond)
		}
		return simnet.Constant(10 * time.Millisecond)
	}

	reg := obs.NewRegistry(tn.clock)
	tr := obs.NewTracer(tn.clock)
	pol := DefaultPolicy()
	pol.Retry = RetryPolicy{Hedge: 20 * time.Millisecond, OrderBySRTT: true}
	r := tn.resolver(pol, 5)
	r.Obs = NewMetrics(reg)
	r.Tracer = tr
	// Pin the order so the slow server leads and the hedge fires.
	r.srtt.observe(tn.ctAddr, 5*time.Millisecond)
	r.srtt.observe(ct2, 50*time.Millisecond)

	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if res.Hedges == 0 {
		t.Fatal("no hedge fired against the slow primary")
	}
	s := reg.Snapshot()
	if got := s.Counters[MetricHedges]; got != uint64(res.Hedges) {
		t.Errorf("%s = %d, want %d", MetricHedges, got, res.Hedges)
	}
	if got := s.Counters[MetricHedgeWins]; got == 0 {
		t.Errorf("%s = 0; the 10 ms backup must beat the 100 ms primary", MetricHedgeWins)
	}
	out := res.Span.String()
	for _, want := range []string{"hedges=", "hedge=" + ct2.String()} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestVirtualClockTraceDeterminism re-runs the same cold resolution on two
// fresh virtual-time worlds and expects byte-identical rendered traces.
func TestVirtualClockTraceDeterminism(t *testing.T) {
	render := func() string {
		tn := newTestNet(t)
		tr := obs.NewTracer(tn.clock)
		r := tn.resolver(DefaultPolicy(), 7)
		r.Tracer = tr
		res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
		return res.Span.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("virtual-time traces differ:\n%s\nvs\n%s", a, b)
	}
}
