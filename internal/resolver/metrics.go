package resolver

import (
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
)

// Metrics is the resolver's bundle of telemetry handles, pre-resolved from
// a registry so the hot path pays one atomic op per event and zero registry
// lookups. A nil *Metrics disables recording at the cost of one pointer
// check per resolution; the individual handles are themselves nil-safe, so
// a partially populated Metrics is also valid.
type Metrics struct {
	// Resolutions counts client resolutions answered (farm followers that
	// joined an in-flight query are counted by the leader only).
	Resolutions *obs.Counter
	// CacheHits counts resolutions answered without any upstream query.
	CacheHits *obs.Counter
	// StaleServed counts answers served past their TTL (RFC 8767).
	StaleServed *obs.Counter
	// ServFail counts resolutions that ended in SERVFAIL.
	ServFail *obs.Counter
	// Upstream counts upstream exchanges attempted; Timeouts the subset
	// that timed out.
	Upstream *obs.Counter
	Timeouts *obs.Counter
	// Retries counts attempts past the first within iteration steps (the
	// retry plane's added work); Hedges counts hedged second queries
	// launched and HedgeWins the subset where the hedge finished first.
	Retries   *obs.Counter
	Hedges    *obs.Counter
	HedgeWins *obs.Counter
	// Prefetches counts refresh-ahead re-resolutions issued;
	// PrefetchCoalesced counts triggers absorbed by an identical prefetch
	// already in flight; PrefetchDenied counts triggers dropped by the
	// Policy.PrefetchBudget window.
	Prefetches        *obs.Counter
	PrefetchCoalesced *obs.Counter
	PrefetchDenied    *obs.Counter
	// Latency is the per-resolution client latency in milliseconds.
	Latency *obs.Histogram
	// UpstreamRTT is the per-exchange round-trip time in milliseconds.
	UpstreamRTT *obs.Histogram
	// AnswerTTL is the TTL carried by the first answer record returned to
	// the client, in seconds — the paper's Figures 1/2 quantity.
	AnswerTTL *obs.Histogram
	// SRTT is the smoothed per-server RTT estimate after each successful
	// exchange, in milliseconds.
	SRTT *obs.Histogram
	// Backoff is the per-retry backoff delay (jitter included) charged to
	// clients, in milliseconds.
	Backoff *obs.Histogram
}

// Metric names under which NewMetrics registers the resolver's telemetry.
const (
	MetricResolutions = "resolver.resolutions"
	MetricCacheHits   = "resolver.cache_hits"
	MetricStaleServed = "resolver.stale_served"
	MetricServFail    = "resolver.servfail"
	MetricUpstream    = "resolver.upstream_queries"
	MetricTimeouts    = "resolver.upstream_timeouts"
	MetricLatency     = "resolver.latency_ms"
	MetricUpstreamRTT = "resolver.upstream_rtt_ms"
	MetricAnswerTTL   = "resolver.answer_ttl_s"
	MetricRetries     = "resolver.retries"
	MetricHedges      = "resolver.hedges"
	MetricHedgeWins   = "resolver.hedge_wins"
	MetricSRTT        = "resolver.srtt_ms"
	MetricBackoff     = "resolver.backoff_ms"

	MetricPrefetches        = "resolver.prefetches"
	MetricPrefetchCoalesced = "resolver.prefetch_coalesced"
	MetricPrefetchDenied    = "resolver.prefetch_budget_denied"
)

// NewMetrics resolves the standard handle set from reg. A nil registry
// yields a Metrics of nil handles, which records nothing — callers can
// attach it unconditionally.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Resolutions: reg.Counter(MetricResolutions),
		CacheHits:   reg.Counter(MetricCacheHits),
		StaleServed: reg.Counter(MetricStaleServed),
		ServFail:    reg.Counter(MetricServFail),
		Upstream:    reg.Counter(MetricUpstream),
		Timeouts:    reg.Counter(MetricTimeouts),
		Latency:     reg.Histogram(MetricLatency),
		UpstreamRTT: reg.Histogram(MetricUpstreamRTT),
		AnswerTTL:   reg.Histogram(MetricAnswerTTL),
		Retries:     reg.Counter(MetricRetries),
		Hedges:      reg.Counter(MetricHedges),
		HedgeWins:   reg.Counter(MetricHedgeWins),
		SRTT:        reg.Histogram(MetricSRTT),
		Backoff:     reg.Histogram(MetricBackoff),

		Prefetches:        reg.Counter(MetricPrefetches),
		PrefetchCoalesced: reg.Counter(MetricPrefetchCoalesced),
		PrefetchDenied:    reg.Counter(MetricPrefetchDenied),
	}
}

// observeResolution books one completed client resolution.
func (m *Metrics) observeResolution(res *Result) {
	m.Resolutions.Inc()
	if res.CacheHit {
		m.CacheHits.Inc()
	}
	if res.Stale {
		m.StaleServed.Inc()
	}
	if res.Msg != nil && res.Msg.Header.RCode == dnswire.RCodeServFail {
		m.ServFail.Inc()
	}
	m.Upstream.Add(uint64(res.Queries))
	m.Timeouts.Add(uint64(res.Timeouts))
	m.Latency.Observe(float64(res.Latency) / float64(time.Millisecond))
	if res.Msg != nil && len(res.Msg.Answer) > 0 {
		m.AnswerTTL.Observe(float64(res.AnswerTTL))
	}
}
