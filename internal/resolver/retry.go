package resolver

import (
	"errors"
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// RetryPolicy configures how a resolver (or forwarder) behaves when an
// upstream exchange fails or stalls — the knobs that decide user-visible
// availability when authoritatives degrade (§5 of the paper, RFC 8767's
// motivating regime). The zero value preserves the legacy behavior: up to
// Policy.MaxRetries distinct servers per step, no backoff, no hedging,
// shuffled server order.
type RetryPolicy struct {
	// Attempts is the maximum upstream attempts per iteration step,
	// counting the first. When positive, attempts cycle over the candidate
	// servers, so even a single-server zone gets retried. Zero falls back
	// to Policy.MaxRetries semantics (distinct servers only).
	Attempts int
	// Backoff is the delay inserted before the first retry; each further
	// retry multiplies it by Factor, capped at MaxBackoff. Zero disables
	// backoff. Delays are charged to the client as virtual latency.
	Backoff time.Duration
	// MaxBackoff caps the grown backoff; zero means 30 s.
	MaxBackoff time.Duration
	// Factor is the backoff multiplier; values <= 1 mean 2.
	Factor float64
	// Jitter randomizes each backoff b to b + U[0, Jitter·b), drawn from
	// the resolver's seeded RNG so runs stay deterministic. Values are
	// clamped to [0, 1].
	Jitter float64
	// AttemptTimeout caps what one exchange may cost: slower replies are
	// treated as timeouts and charged exactly AttemptTimeout. Zero leaves
	// only the network's own timeout.
	AttemptTimeout time.Duration
	// Deadline bounds the summed virtual cost (RTTs + backoffs) of one
	// step's attempts; once exceeded, no further attempt starts. Zero
	// means no overall deadline.
	Deadline time.Duration
	// Hedge, when positive, launches a second identical query to the
	// next-best server once the first has been outstanding this long, and
	// the client pays only the earlier completion — tail-latency
	// insurance priced at one extra upstream query. Needs >= 2 candidate
	// servers.
	Hedge time.Duration
	// OrderBySRTT orders candidate servers by decaying smoothed-RTT
	// estimates (unknown servers first, then fastest), penalizing servers
	// that timed out, instead of shuffling uniformly.
	OrderBySRTT bool
}

// enabled reports whether any retry-plane behavior deviates from legacy.
func (rp RetryPolicy) enabled() bool {
	return rp.Attempts > 0 || rp.Backoff > 0 || rp.AttemptTimeout > 0 ||
		rp.Deadline > 0 || rp.Hedge > 0 || rp.OrderBySRTT
}

func (rp RetryPolicy) factor() float64 {
	if rp.Factor <= 1 {
		return 2
	}
	return rp.Factor
}

func (rp RetryPolicy) maxBackoff() time.Duration {
	if rp.MaxBackoff <= 0 {
		return 30 * time.Second
	}
	return rp.MaxBackoff
}

func (rp RetryPolicy) jitter() float64 {
	switch {
	case rp.Jitter < 0:
		return 0
	case rp.Jitter > 1:
		return 1
	}
	return rp.Jitter
}

// backoffFor returns the pre-jitter delay before retry number n (n >= 1).
// The sequence is monotone non-decreasing and capped at MaxBackoff.
func (rp RetryPolicy) backoffFor(n int) time.Duration {
	if rp.Backoff <= 0 || n < 1 {
		return 0
	}
	b := float64(rp.Backoff)
	f := rp.factor()
	cap := float64(rp.maxBackoff())
	for i := 1; i < n; i++ {
		b *= f
		if b >= cap {
			return rp.maxBackoff()
		}
	}
	if b > cap {
		b = cap
	}
	return time.Duration(b)
}

// BackoffFor exposes the pre-jitter retry delay sequence (retry number
// n >= 1) for other planes that schedule retries under this policy — the
// push subscriber paces resubscribe attempts with it.
func (rp RetryPolicy) BackoffFor(n int) time.Duration { return rp.backoffFor(n) }

// jitterFor draws the randomized addition for a backoff b from rng. The
// result is always in [0, Jitter·b).
func (rp RetryPolicy) jitterFor(b time.Duration, rng *rand.Rand) time.Duration {
	j := rp.jitter()
	if j <= 0 || b <= 0 {
		return 0
	}
	span := int64(float64(b) * j)
	if span <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(span))
}

// Attempt-failure sentinels. Allocation-free so the retry loop stays clean
// on the happy path.
var (
	// errAttemptSlow marks a reply that arrived past AttemptTimeout.
	errAttemptSlow = errors.New("resolver: reply slower than attempt timeout")
	// errTruncated marks an empty TC=1 reply (no TCP in the simulated
	// plane, so truncation means "try another server").
	errTruncated = errors.New("resolver: truncated reply")
	// errUpstreamFailed marks a SERVFAIL/REFUSED reply treated as
	// retryable under an active RetryPolicy.
	errUpstreamFailed = errors.New("resolver: upstream returned failure rcode")
	// errIDMismatch marks a reply whose transaction ID does not match the
	// query's.
	errIDMismatch = errors.New("resolver: response ID mismatch")
)

// srttAlpha is the EWMA weight for new RTT observations (RFC 6298's 1/8 is
// for smoothing real jitter; resolvers converge faster at 1/4).
const srttAlpha = 0.25

// srttTable tracks decaying smoothed-RTT estimates per server, shared by
// every resolution of one resolver. Timeouts penalize multiplicatively so a
// flapping server sinks to the back of serverOrder until fresh successes
// pull it forward again.
type srttTable struct {
	mu sync.Mutex
	m  map[netip.Addr]time.Duration
}

func newSRTTTable() *srttTable {
	return &srttTable{m: make(map[netip.Addr]time.Duration)}
}

// observe folds a successful exchange's RTT into the estimate and returns
// the updated value.
func (t *srttTable) observe(server netip.Addr, rtt time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.m[server]
	if !ok {
		t.m[server] = rtt
		return rtt
	}
	next := time.Duration((1-srttAlpha)*float64(cur) + srttAlpha*float64(rtt))
	t.m[server] = next
	return next
}

// penalize books a timeout: the estimate doubles (from the charged cost if
// unknown), capped at 8× the cost so one bad window doesn't exile a server
// forever.
func (t *srttTable) penalize(server netip.Addr, cost time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.m[server]
	if !ok || cur < cost {
		cur = cost
	}
	next := 2 * cur
	if max := 8 * cost; cost > 0 && next > max {
		next = max
	}
	t.m[server] = next
	return next
}

// estimate returns the current smoothed RTT for server.
func (t *srttTable) estimate(server netip.Addr) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d, ok := t.m[server]
	return d, ok
}

// sortBySRTT orders servers in place: unknown servers first (in their given
// order, so fresh servers get explored), then known servers by ascending
// estimate. Insertion sort keeps the hot path allocation-free — candidate
// lists are a handful of entries.
func (t *srttTable) sortBySRTT(servers []netip.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := func(a netip.Addr) (time.Duration, bool) {
		d, ok := t.m[a]
		return d, ok
	}
	for i := 1; i < len(servers); i++ {
		for j := i; j > 0; j-- {
			dj, okj := key(servers[j])
			dp, okp := key(servers[j-1])
			// Unknown (ok=false) sorts before known; among known, lower
			// estimate first. Equal keys keep their order (stable).
			less := (!okj && okp) || (okj && okp && dj < dp)
			if !less {
				break
			}
			servers[j], servers[j-1] = servers[j-1], servers[j]
		}
	}
}
