package resolver

import (
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
)

// attachRecursive puts a full resolver on the network as a server.
func attachRecursive(tn *testNet, addr netip.Addr, pol Policy, seed int64) *Resolver {
	r := New(addr, pol, tn.net, tn.clock, []netip.Addr{tn.rootAddr}, seed)
	tn.net.Attach(addr, Handler{R: r})
	return r
}

func TestForwarderBasics(t *testing.T) {
	tn := newTestNet(t)
	up := netip.MustParseAddr("172.30.0.1")
	attachRecursive(tn, up, DefaultPolicy(), 1)
	fw := NewForwarder(netip.MustParseAddr("192.168.1.1"), []netip.Addr{up}, tn.net, tn.clock, 2)

	res, err := fw.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.Header.RCode != dnswire.RCodeNoError || len(res.Msg.Answer) != 1 {
		t.Fatalf("forwarded answer: %s", res.Msg)
	}
	if res.AnswerTTL != 300 || res.CacheHit {
		t.Errorf("first answer: ttl=%d hit=%v", res.AnswerTTL, res.CacheHit)
	}
	if res.FinalServer != up {
		t.Errorf("final server = %v, want the upstream", res.FinalServer)
	}

	// Second query: the forwarder's own cache answers, decayed.
	tn.clock.Advance(50 * time.Second)
	res, err = fw.Resolve(dnswire.NewName("www.cachetest.net"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.AnswerTTL != 250 {
		t.Errorf("forwarder cache: hit=%v ttl=%d", res.CacheHit, res.AnswerTTL)
	}
}

func TestForwarderNegativeCaching(t *testing.T) {
	tn := newTestNet(t)
	up := netip.MustParseAddr("172.30.0.1")
	attachRecursive(tn, up, DefaultPolicy(), 1)
	fw := NewForwarder(netip.MustParseAddr("192.168.1.1"), []netip.Addr{up}, tn.net, tn.clock, 2)

	res, err := fw.Resolve(dnswire.NewName("missing.cachetest.net"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s", res.Msg.Header.RCode)
	}
	res, err = fw.Resolve(dnswire.NewName("missing.cachetest.net"), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.Msg.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("negative answer not cached by forwarder: hit=%v rcode=%s",
			res.CacheHit, res.Msg.Header.RCode)
	}
}

func TestForwarderNoUpstreams(t *testing.T) {
	tn := newTestNet(t)
	fw := NewForwarder(netip.MustParseAddr("192.168.1.1"), nil, tn.net, tn.clock, 2)
	res, err := fw.Resolve(dnswire.NewName("x.org"), dnswire.TypeA)
	if err != nil || res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("upstream-less forwarder: %v %s", err, res.Msg.Header.RCode)
	}
}

func TestForwarderUpstreamDown(t *testing.T) {
	tn := newTestNet(t)
	up := netip.MustParseAddr("172.30.0.1")
	attachRecursive(tn, up, DefaultPolicy(), 1)
	if err := tn.net.SetDown(up, true); err != nil {
		t.Fatal(err)
	}
	fw := NewForwarder(netip.MustParseAddr("192.168.1.1"), []netip.Addr{up}, tn.net, tn.clock, 2)
	res, err := fw.Resolve(dnswire.NewName("x.org"), dnswire.TypeA)
	if err != nil || res.Msg.Header.RCode != dnswire.RCodeServFail || res.Timeouts != 1 {
		t.Errorf("dead upstream: %v %s timeouts=%d", err, res.Msg.Header.RCode, res.Timeouts)
	}
}

// TestFarmFragmentation reproduces the §4.4 observation: behind a
// passthrough frontend with independent backend caches, a client can see a
// mix of old and new content after a renumbering, because each query lands
// on a backend whose cache is in a different state.
func TestFarmFragmentation(t *testing.T) {
	tn := newTestNet(t)
	// Farm: 4 parent-centric backends (the OpenDNS case).
	pol := DefaultPolicy()
	pol.Centricity = ParentCentric
	var ups []netip.Addr
	for i := 0; i < 4; i++ {
		addr := netip.AddrFrom4([4]byte{172, 30, 1, byte(i + 1)})
		attachRecursive(tn, addr, pol, int64(i+10))
		ups = append(ups, addr)
	}
	fw := NewForwarder(netip.MustParseAddr("192.168.1.1"), ups, tn.net, tn.clock, 3)
	fw.Passthrough = true

	name := dnswire.NewName("probe.sub.cachetest.net")
	// Warm only two of the four backends before the renumber by querying
	// until both have answered (passthrough picks randomly).
	warmed := map[netip.Addr]bool{}
	for len(warmed) < 2 {
		res, err := fw.Resolve(name, dnswire.TypeAAAA)
		if err != nil {
			t.Fatal(err)
		}
		warmed[res.FinalServer] = true
	}
	_ = warmed

	// Renumber; warmed backends hold the old glue (7200 s from the
	// cachetest.net referral), cold backends will learn the new address.
	tn.renumberSub(t)
	tn.net.Attach(tn.subAddr, tn.subSrv)
	tn.clock.Advance(2 * time.Minute)

	answers := map[string]bool{}
	for i := 0; i < 40; i++ {
		res, err := fw.Resolve(name, dnswire.TypeAAAA)
		if err != nil || len(res.Msg.Answer) == 0 {
			continue
		}
		answers[res.Msg.Answer[len(res.Msg.Answer)-1].Data.String()] = true
		tn.clock.Advance(90 * time.Second) // probe AAAA TTL is 60 s
	}
	if len(answers) < 2 {
		t.Errorf("expected mixed old/new answers from a fragmented farm, got %v", answers)
	}
}

// TestForwarderNegTTLPolicy pins the no-SOA negative-caching path: the
// fallback TTL comes from the policy (not a hard-coded constant) and is
// clamped by the policy cap/floor exactly like positive TTLs.
func TestForwarderNegTTLPolicy(t *testing.T) {
	tn := newTestNet(t)
	up := netip.MustParseAddr("172.30.0.1")
	attachRecursive(tn, up, DefaultPolicy(), 1)
	missing := dnswire.NewName("missing.cachetest.net")

	// The recursive upstream's NXDomain reply carries no SOA, so the
	// forwarder must use its policy fallback — here 900 s, capped to 600.
	fw := NewForwarder(netip.MustParseAddr("192.168.1.1"), []netip.Addr{up}, tn.net, tn.clock, 2)
	fw.Policy.NegTTLFallback = 900
	fw.Policy.TTLCap = 600
	if res, err := fw.Resolve(missing, dnswire.TypeA); err != nil || res.Msg.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("resolve: %v", err)
	}
	if _, rem, ok := fw.Cache.Get(missing, dnswire.TypeA); !ok || rem != 600 {
		t.Errorf("negative TTL = %d (ok=%v), want the 900 s fallback capped to 600", rem, ok)
	}

	// Zero-value policy keeps the old 60 s default.
	fw2 := NewForwarder(netip.MustParseAddr("192.168.1.2"), []netip.Addr{up}, tn.net, tn.clock, 3)
	if _, err := fw2.Resolve(missing, dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if _, rem, ok := fw2.Cache.Get(missing, dnswire.TypeA); !ok || rem != 60 {
		t.Errorf("default negative TTL = %d (ok=%v), want 60", rem, ok)
	}

	// The floor raises tiny fallbacks, as it does for positive TTLs.
	fw3 := NewForwarder(netip.MustParseAddr("192.168.1.3"), []netip.Addr{up}, tn.net, tn.clock, 4)
	fw3.Policy.NegTTLFallback = 5
	fw3.Policy.TTLFloor = 30
	if _, err := fw3.Resolve(missing, dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if _, rem, ok := fw3.Cache.Get(missing, dnswire.TypeA); !ok || rem != 30 {
		t.Errorf("floored negative TTL = %d (ok=%v), want 30", rem, ok)
	}
}
