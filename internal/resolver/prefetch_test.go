package resolver

import (
	"testing"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
)

// TestPrefetchFraction pins the fraction-of-TTL trigger: with
// PrefetchFraction 0.5 a 300 s record refreshes on hits in its last 150 s —
// and not before — regardless of the legacy fixed threshold.
func TestPrefetchFraction(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.Prefetch = true
	pol.PrefetchFraction = 0.5
	pol.PrefetchThreshold = 10 // must be ignored when the fraction is set
	r := tn.resolver(pol, 1)
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)

	// 100 s in: remaining 200 > 150 — no refresh yet.
	tn.clock.Advance(100 * time.Second)
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	tn.clock.Advance(100 * time.Second)
	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if !res.CacheHit || res.AnswerTTL != 100 {
		t.Fatalf("expected an un-refreshed hit at 100 s left: hit=%v ttl=%d",
			res.CacheHit, res.AnswerTTL)
	}
	// That hit (100 ≤ 150) triggered the refresh: a query after the
	// original entry would have expired still hits, with a restored TTL.
	tn.clock.Advance(150 * time.Second)
	res = mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if !res.CacheHit || res.AnswerTTL != 150 {
		t.Errorf("post-refresh: hit=%v ttl=%d, want hit with 150 s left",
			res.CacheHit, res.AnswerTTL)
	}
}

// TestPrefetchBudget pins the per-window cap: with PrefetchBudget 1, the
// second distinct trigger inside the window is denied (and counted), and a
// new window refills the budget.
func TestPrefetchBudget(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.Prefetch = true
	pol.PrefetchFraction = 0.9 // nearly every hit triggers
	pol.PrefetchBudget = 1
	r := tn.resolver(pol, 1)
	reg := obs.NewRegistry(tn.clock)
	r.Obs = NewMetrics(reg)

	// www: TTL 300, triggers once 30 s old. probe: TTL 60, triggers at 6 s.
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	tn.clock.Advance(40 * time.Second) // both records inside their last 90 %

	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA) // spends the budget
	mustResolve(t, r, "probe.sub.cachetest.net", dnswire.TypeAAAA)
	snap := reg.Snapshot()
	if got := snap.Counters[MetricPrefetches]; got != 1 {
		t.Errorf("prefetches = %d, want 1 (budget is 1)", got)
	}
	if got := snap.Counters[MetricPrefetchDenied]; got != 1 {
		t.Errorf("budget denials = %d, want 1", got)
	}

	// The next window refills: the refreshed www entry (now 60 s old, again
	// inside its last 90 %) prefetches once more.
	tn.clock.Advance(prefetchBudgetWindow)
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if got := reg.Snapshot().Counters[MetricPrefetches]; got != 2 {
		t.Errorf("prefetches after window reset = %d, want 2", got)
	}
}

// TestPrefetchDoesNotChargeClient: the triggering resolution is a pure
// cache hit — zero upstream queries and zero latency land on the client —
// while the authoritatives see the refresh traffic.
func TestPrefetchDoesNotChargeClient(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.Prefetch = true
	pol.PrefetchFraction = 0.5
	r := tn.resolver(pol, 1)
	mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	upstreamBefore, _ := tn.net.Stats()

	tn.clock.Advance(200 * time.Second)
	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if !res.CacheHit || res.Queries != 0 {
		t.Errorf("triggering hit charged the client: hit=%v queries=%d",
			res.CacheHit, res.Queries)
	}
	if after, _ := tn.net.Stats(); after <= upstreamBefore {
		t.Errorf("authoritatives saw no refresh traffic (%d before, %d after)",
			upstreamBefore, after)
	}
}

// TestPrefetchSkipsNegative: negative entries (NXDOMAIN/NODATA) are not
// refresh-ahead candidates — renewing a proof of absence buys nothing.
func TestPrefetchSkipsNegative(t *testing.T) {
	tn := newTestNet(t)
	pol := DefaultPolicy()
	pol.Prefetch = true
	pol.PrefetchFraction = 0.99
	r := tn.resolver(pol, 1)
	reg := obs.NewRegistry(tn.clock)
	r.Obs = NewMetrics(reg)

	if _, err := r.Resolve(dnswire.NewName("nope.cachetest.net"), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	tn.clock.Advance(30 * time.Second)
	if _, err := r.Resolve(dnswire.NewName("nope.cachetest.net"), dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters[MetricPrefetches]; got != 0 {
		t.Errorf("negative entry triggered %d prefetches", got)
	}
}
