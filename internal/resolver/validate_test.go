package resolver

import (
	"testing"

	"dnsttl/internal/dnssec"
	"dnsttl/internal/dnswire"
)

func signUy(t *testing.T, tn *testNet) *dnssec.Key {
	t.Helper()
	k := dnssec.NewKey(dnswire.NewName("uy"), 99)
	if _, err := dnssec.SignZone(tn.uy, k, tn.clock.Now()); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestValidationSignedZone(t *testing.T) {
	tn := newTestNet(t)
	signUy(t, tn)
	pol := DefaultPolicy()
	pol.Validate = true
	r := tn.resolver(pol, 1)
	res := mustResolve(t, r, "uy", dnswire.TypeNS)
	if res.Msg.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %s", res.Msg.Header.RCode)
	}
	if !res.Validated || !res.Msg.Header.AD {
		t.Errorf("validation did not run: validated=%v ad=%v", res.Validated, res.Msg.Header.AD)
	}
	if res.AnswerTTL != 300 {
		t.Errorf("TTL = %d, want the child's signed 300", res.AnswerTTL)
	}
}

// TestValidationForcesChildCentric is the §6.3 structural argument: a
// parent-centric resolver that validates cannot answer from unsigned parent
// glue, so it behaves child-centric for signed zones.
func TestValidationForcesChildCentric(t *testing.T) {
	tn := newTestNet(t)
	signUy(t, tn)
	pol := DefaultPolicy()
	pol.Centricity = ParentCentric
	pol.Validate = true
	r := tn.resolver(pol, 2)
	res := mustResolve(t, r, "uy", dnswire.TypeNS)
	if res.AnswerTTL != 300 {
		t.Errorf("validating parent-centric resolver answered TTL %d, want the child's 300", res.AnswerTTL)
	}
	if res.FinalServer != tn.uyAddr {
		t.Errorf("must have contacted the child: %v", res.FinalServer)
	}
	if !res.Validated {
		t.Errorf("answer should be validated")
	}
}

func TestValidationDetectsForgery(t *testing.T) {
	tn := newTestNet(t)
	signUy(t, tn)
	// The zone data changes without re-signing — stale signatures.
	if err := tn.uy.Replace(dnswire.NewName("a.nic.uy"), dnswire.TypeA,
		dnswire.NewA("a.nic.uy", 120, "203.0.113.66")); err != nil {
		t.Fatal(err)
	}
	pol := DefaultPolicy()
	pol.Validate = true
	r := tn.resolver(pol, 3)
	res, _ := r.Resolve(dnswire.NewName("a.nic.uy"), dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("forged data must SERVFAIL, got %s", res.Msg.Header.RCode)
	}
	// The same resolution without validation sails through.
	r2 := tn.resolver(DefaultPolicy(), 4)
	res2 := mustResolve(t, r2, "a.nic.uy", dnswire.TypeA)
	if len(res2.Msg.Answer) == 0 {
		t.Errorf("non-validating resolver should answer")
	}
}

func TestValidationUnsignedZoneIsInsecure(t *testing.T) {
	tn := newTestNet(t) // nothing signed
	pol := DefaultPolicy()
	pol.Validate = true
	r := tn.resolver(pol, 5)
	res := mustResolve(t, r, "www.cachetest.net", dnswire.TypeA)
	if res.Msg.Header.RCode != dnswire.RCodeNoError || len(res.Msg.Answer) == 0 {
		t.Fatalf("unsigned zone must still resolve: %s", res.Msg.Header.RCode)
	}
	if res.Validated || res.Msg.Header.AD {
		t.Errorf("unsigned answers are insecure, not validated")
	}
}

func TestValidationCachesDNSKEY(t *testing.T) {
	tn := newTestNet(t)
	signUy(t, tn)
	pol := DefaultPolicy()
	pol.Validate = true
	r := tn.resolver(pol, 6)
	mustResolve(t, r, "uy", dnswire.TypeNS)
	q1 := tn.uySrv.QueryCount()
	tn.clock.Advance(400 * 1e9) // past the 300 s NS TTL, inside DNSKEY's 3600
	mustResolve(t, r, "uy", dnswire.TypeNS)
	q2 := tn.uySrv.QueryCount()
	// The refresh needs NS + RRSIG queries, but not another DNSKEY.
	if q2-q1 > 2 {
		t.Errorf("refresh cost %d queries; DNSKEY should come from cache", q2-q1)
	}
}
