package resolver

import (
	"testing"
	"time"

	"dnsttl/internal/dnswire"
)

// BenchmarkResolveCacheHit measures a warm lookup through the resolver.
func BenchmarkResolveCacheHit(b *testing.B) {
	tn := newTestNet(&testing.T{})
	r := tn.resolver(DefaultPolicy(), 1)
	name := dnswire.NewName("www.cachetest.net")
	if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Resolve(name, dnswire.TypeA)
		if err != nil || !res.CacheHit {
			b.Fatal("expected cache hit")
		}
	}
}

// BenchmarkResolveColdWalk measures a full root-to-leaf iteration (the
// cache expires between iterations).
func BenchmarkResolveColdWalk(b *testing.B) {
	tn := newTestNet(&testing.T{})
	r := tn.resolver(DefaultPolicy(), 1)
	name := dnswire.NewName("www.cachetest.net")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Cache.Flush()
		if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
		tn.clock.Advance(time.Second)
	}
}

// BenchmarkResolveRetryColdWalk is the cold walk with the full retry plane
// armed (attempts, backoff+jitter, SRTT ordering). On the healthy path the
// plane must cost nothing: no retries fire, and the only extra work per
// exchange is the SRTT bookkeeping.
func BenchmarkResolveRetryColdWalk(b *testing.B) {
	tn := newTestNet(&testing.T{})
	pol := DefaultPolicy()
	pol.Retry = RetryPolicy{
		Attempts: 4, Backoff: 200 * time.Millisecond, Jitter: 0.5,
		OrderBySRTT: true,
	}
	r := tn.resolver(pol, 1)
	name := dnswire.NewName("www.cachetest.net")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Cache.Flush()
		res, err := r.Resolve(name, dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		if res.Retries != 0 {
			b.Fatal("retries fired on a healthy network")
		}
		tn.clock.Advance(time.Second)
	}
}

// TestRetryPlaneAllocNeutral pins the retry plane's happy-path allocation
// cost at zero: a cold resolution with the full policy armed allocates no
// more than the legacy single-shot path, so arming retries fleet-wide is
// free until a fault actually bites.
func TestRetryPlaneAllocNeutral(t *testing.T) {
	name := dnswire.NewName("www.cachetest.net")
	coldAllocs := func(pol Policy) float64 {
		tn := newTestNet(t)
		r := tn.resolver(pol, 1)
		if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(100, func() {
			r.Cache.Flush()
			if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
				t.Fatal(err)
			}
			tn.clock.Advance(time.Second)
		})
	}
	retryPol := DefaultPolicy()
	retryPol.Retry = RetryPolicy{
		Attempts: 4, Backoff: 200 * time.Millisecond, Jitter: 0.5,
		OrderBySRTT: true,
	}
	base, retry := coldAllocs(DefaultPolicy()), coldAllocs(retryPol)
	if retry > base+0.5 {
		t.Errorf("retry plane allocates on the healthy path: %.1f vs %.1f allocs/op", retry, base)
	}
}
