package resolver

import (
	"testing"
	"time"

	"dnsttl/internal/dnswire"
)

// BenchmarkResolveCacheHit measures a warm lookup through the resolver.
func BenchmarkResolveCacheHit(b *testing.B) {
	tn := newTestNet(&testing.T{})
	r := tn.resolver(DefaultPolicy(), 1)
	name := dnswire.NewName("www.cachetest.net")
	if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Resolve(name, dnswire.TypeA)
		if err != nil || !res.CacheHit {
			b.Fatal("expected cache hit")
		}
	}
}

// BenchmarkResolveColdWalk measures a full root-to-leaf iteration (the
// cache expires between iterations).
func BenchmarkResolveColdWalk(b *testing.B) {
	tn := newTestNet(&testing.T{})
	r := tn.resolver(DefaultPolicy(), 1)
	name := dnswire.NewName("www.cachetest.net")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Cache.Flush()
		if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
		tn.clock.Advance(time.Second)
	}
}
