package loadgen

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/simnet"
	"dnsttl/internal/transport"
)

func TestParseWorkloadItems(t *testing.T) {
	w, err := ParseWorkload("www.example.org:A,api.example.org:AAAA,plain.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if q := w.At(1); q.Type != dnswire.TypeAAAA {
		t.Errorf("item 1 type = %v, want AAAA", q.Type)
	}
	if q := w.At(2); q.Type != dnswire.TypeA {
		t.Errorf("bare item type = %v, want A (default)", q.Type)
	}
	// At wraps around the list.
	if w.At(0) != w.At(3) {
		t.Errorf("At should cycle mod Len")
	}
}

func TestParseWorkloadExpansion(t *testing.T) {
	w, err := ParseWorkload("q{i}.example.org:A*5")
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 5 {
		t.Fatalf("Len = %d, want 5", w.Len())
	}
	if got := w.At(3).Name.String(); got != "q3.example.org." {
		t.Errorf("expanded name = %q", got)
	}
	// A hot-name repeat without {i}.
	w, err = ParseWorkload("hot.example.org*4")
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 4 || w.At(0) != w.At(3) {
		t.Errorf("repeat expansion: len=%d", w.Len())
	}
}

func TestParseWorkloadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.txt")
	content := "# comment line\nwww.example.org A\nmail.example.org MX  # trailing comment\n\nbare.example.org\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := ParseWorkload("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if q := w.At(1); q.Type != dnswire.TypeMX {
		t.Errorf("file item 1 type = %v, want MX", q.Type)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	for _, spec := range []string{"", "   ", "name:BOGUSTYPE", ":A", "name*0", "name*x", "@/nonexistent/path"} {
		if _, err := ParseWorkload(spec); err == nil {
			t.Errorf("ParseWorkload(%q) should fail", spec)
		}
	}
}

// echoServer answers any query with QR + NOERROR over loopback UDP.
func echoServer(t *testing.T) netip.AddrPort {
	t.Helper()
	s := &authoritative.UDPServer{Handler: simnet.HandlerFunc(func(wire []byte, _ netip.Addr) []byte {
		resp := make([]byte, len(wire))
		copy(resp, wire)
		resp[2] |= 0x80
		return resp
	})}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr
}

func TestRunCountBounded(t *testing.T) {
	addr := echoServer(t)
	tr, err := transport.New(transport.Config{Kind: transport.UDP, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	wl, err := ParseWorkload("q{i}.example.org:A*50")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(nil)
	res, err := Run(Config{
		Target:        addr,
		Transport:     tr,
		TransportName: "udp",
		Workload:      wl,
		Workers:       4,
		Count:         200,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 200 {
		t.Errorf("Sent = %d, want 200", res.Sent)
	}
	if res.NoError != 200 {
		t.Errorf("NoError = %d, want 200 (timeouts=%d net=%d bad=%d)",
			res.NoError, res.Timeouts, res.NetErrors, res.BadMessages)
	}
	if res.Errors != 0 {
		t.Errorf("Errors = %d, want 0", res.Errors)
	}
	if res.QPS <= 0 {
		t.Errorf("QPS = %f, want > 0", res.QPS)
	}
	if res.LatencyMsP50 <= 0 || res.LatencyMsP99 < res.LatencyMsP50 {
		t.Errorf("quantiles look wrong: p50=%f p99=%f", res.LatencyMsP50, res.LatencyMsP99)
	}
	if res.Transport != "udp" {
		t.Errorf("Transport = %q", res.Transport)
	}
	// The obs mirrors saw the same counts.
	snap := reg.Snapshot()
	if snap.Counters[MetricSent] != 200 || snap.Counters[MetricNoError] != 200 {
		t.Errorf("registry mirror: sent=%d noerror=%d", snap.Counters[MetricSent], snap.Counters[MetricNoError])
	}
}

func TestRunDurationBounded(t *testing.T) {
	addr := echoServer(t)
	tr, err := transport.New(transport.Config{Kind: transport.UDP, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	wl, _ := ParseWorkload("www.example.org:A")
	res, err := Run(Config{
		Target:    addr,
		Transport: tr,
		Workload:  wl,
		Workers:   2,
		Duration:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Errorf("duration-bounded run sent nothing")
	}
	if res.Seconds < 0.25 || res.Seconds > 5 {
		t.Errorf("Seconds = %f, want ~0.3", res.Seconds)
	}
}

func TestRunQPSPacing(t *testing.T) {
	addr := echoServer(t)
	tr, err := transport.New(transport.Config{Kind: transport.UDP, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	wl, _ := ParseWorkload("www.example.org:A")
	// 100 queries at 500 qps should take about 200ms, never finish "instantly".
	start := time.Now()
	res, err := Run(Config{
		Target:    addr,
		Transport: tr,
		Workload:  wl,
		Workers:   8,
		Count:     100,
		QPS:       500,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Errorf("paced run finished in %v, pacing not applied", elapsed)
	}
	if res.QPS > 700 {
		t.Errorf("QPS = %f, want ≈500 under pacing", res.QPS)
	}
}

func TestRunConfigValidation(t *testing.T) {
	tr, _ := transport.New(transport.Config{Kind: transport.UDP})
	defer tr.Close()
	wl, _ := ParseWorkload("www.example.org:A")
	if _, err := Run(Config{Workload: wl, Count: 1}); err == nil {
		t.Errorf("nil Transport should fail")
	}
	if _, err := Run(Config{Transport: tr, Count: 1}); err == nil {
		t.Errorf("nil Workload should fail")
	}
	if _, err := Run(Config{Transport: tr, Workload: wl}); err == nil {
		t.Errorf("missing Count and Duration should fail")
	}
}

// TestRunAgainstDeadServer classifies unanswered queries as timeouts, which
// count toward Errors.
func TestRunAgainstDeadServer(t *testing.T) {
	tr, err := transport.New(transport.Config{Kind: transport.UDP, Timeout: 100 * time.Millisecond, DisableTCPFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	wl, _ := ParseWorkload("www.example.org:A")
	res, err := Run(Config{
		Target:    netip.MustParseAddrPort("127.0.0.1:9"), // discard port, nothing listens
		Transport: tr,
		Workload:  wl,
		Workers:   2,
		Count:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 4 {
		t.Errorf("Errors = %d, want 4 (timeouts=%d net=%d)", res.Errors, res.Timeouts, res.NetErrors)
	}
}
