// Package loadgen is the repo's ZDNS-class query engine: a bounded worker
// pool that fans a qname/qtype workload through a real-socket transport at
// configurable rates, classifying every response into a success/error
// taxonomy and reporting QPS plus latency quantiles through internal/obs
// histograms. It exists to drive the serving plane hard enough that
// transport-level behavior — pooling, pipelining, truncation fallback,
// connection resets — is observable at production query rates.
package loadgen

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dnsttl/internal/dnswire"
)

// Query is one workload element.
type Query struct {
	Name dnswire.Name
	Type dnswire.Type
}

// Workload is a materialized query list the engine cycles through.
// Workers draw queries by a shared atomic index, so a run covers the list
// in order regardless of worker count.
type Workload struct {
	queries []Query
}

// Len reports the number of distinct queries.
func (w *Workload) Len() int { return len(w.queries) }

// At returns query i (mod Len).
func (w *Workload) At(i int) Query { return w.queries[i%len(w.queries)] }

// ParseWorkload builds a workload from a spec:
//
//	@path                       file with one "name [type]" per line
//	                            ('#' starts a comment)
//	item[,item...]              inline list
//	item = name[:type][*count]  type defaults to A; "*count" expands the
//	                            item count times, substituting "{i}" in
//	                            the name with 0..count-1
//
// Examples:
//
//	www.example.org:A,api.example.org:AAAA
//	q{i}.example.org:A*100000        (100k distinct names — cache-miss load)
//	www.example.org*100000           (one hot name — cache-hit load)
func ParseWorkload(spec string) (*Workload, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("loadgen: empty workload spec")
	}
	if rest, ok := strings.CutPrefix(spec, "@"); ok {
		return parseWorkloadFile(rest)
	}
	w := &Workload{}
	for _, item := range strings.Split(spec, ",") {
		if err := w.addItem(item); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func (w *Workload) addItem(item string) error {
	item = strings.TrimSpace(item)
	if item == "" {
		return fmt.Errorf("loadgen: empty workload item")
	}
	count := 1
	if name, n, ok := strings.Cut(item, "*"); ok {
		c, err := strconv.Atoi(n)
		if err != nil || c < 1 {
			return fmt.Errorf("loadgen: bad count in workload item %q", item)
		}
		item, count = name, c
	}
	name := item
	qtype := dnswire.TypeA
	if n, t, ok := strings.Cut(item, ":"); ok {
		parsed, err := dnswire.ParseType(t)
		if err != nil {
			return fmt.Errorf("loadgen: workload item %q: %w", item, err)
		}
		name, qtype = n, parsed
	}
	if name == "" {
		return fmt.Errorf("loadgen: workload item %q has no name", item)
	}
	if count == 1 && !strings.Contains(name, "{i}") {
		w.queries = append(w.queries, Query{Name: dnswire.NewName(name), Type: qtype})
		return nil
	}
	for i := 0; i < count; i++ {
		n := strings.ReplaceAll(name, "{i}", strconv.Itoa(i))
		w.queries = append(w.queries, Query{Name: dnswire.NewName(n), Type: qtype})
	}
	return nil
}

func parseWorkloadFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	defer f.Close()
	w := &Workload{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		qtype := dnswire.TypeA
		if len(fields) > 1 {
			t, err := dnswire.ParseType(fields[1])
			if err != nil {
				return nil, fmt.Errorf("loadgen: %s:%d: %w", path, line, err)
			}
			qtype = t
		}
		w.queries = append(w.queries, Query{Name: dnswire.NewName(fields[0]), Type: qtype})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if len(w.queries) == 0 {
		return nil, fmt.Errorf("loadgen: %s: no queries", path)
	}
	return w, nil
}
