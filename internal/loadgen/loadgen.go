package loadgen

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/transport"
)

// Metric names under which Run registers the engine's telemetry.
const (
	MetricSent        = "loadgen.sent"
	MetricNoError     = "loadgen.noerror"
	MetricNXDomain    = "loadgen.nxdomain"
	MetricServFail    = "loadgen.servfail"
	MetricRefused     = "loadgen.refused"
	MetricOtherRCode  = "loadgen.rcode_other"
	MetricTimeouts    = "loadgen.timeouts"
	MetricNetErrors   = "loadgen.net_errors"
	MetricBadMessages = "loadgen.bad_messages"
	MetricTruncated   = "loadgen.truncated"
	MetricLatency     = "loadgen.latency_ms"
)

// Config parameterizes one load run.
type Config struct {
	// Target is the server under load.
	Target netip.AddrPort
	// Transport carries the queries (any of the four kinds).
	Transport transport.Transport
	// TransportName labels the transport in the Result ("udp", "dot", …).
	TransportName string
	// Workload supplies the qname/qtype stream.
	Workload *Workload
	// Workers bounds in-flight queries; 0 means 8.
	Workers int
	// Count stops the run after this many queries; 0 defers to Duration.
	Count int
	// Duration stops the run after this wall time; 0 defers to Count. At
	// least one of Count and Duration must be set.
	Duration time.Duration
	// QPS caps the aggregate send rate; 0 means as fast as the workers go.
	QPS int
	// Registry, when non-nil, receives the loadgen.* counters and the
	// latency histogram (shared with whatever else reports there).
	Registry *obs.Registry
}

// Result is the run's scorecard: volume, the response taxonomy, and
// latency quantiles in milliseconds.
type Result struct {
	Transport string  `json:"transport"`
	Target    string  `json:"target"`
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`

	Sent uint64  `json:"sent"`
	QPS  float64 `json:"qps"`

	NoError    uint64 `json:"noerror"`
	NXDomain   uint64 `json:"nxdomain"`
	ServFail   uint64 `json:"servfail"`
	Refused    uint64 `json:"refused"`
	OtherRCode uint64 `json:"rcode_other"`
	Truncated  uint64 `json:"truncated"`

	Timeouts    uint64 `json:"timeouts"`
	NetErrors   uint64 `json:"net_errors"`
	BadMessages uint64 `json:"bad_messages"`
	// Errors aggregates the transport/protocol failures (timeouts, network
	// errors, undecodable or mismatched responses) — the "zero protocol
	// errors" number CI gates on. Server-reported RCodes are not errors at
	// this layer.
	Errors uint64 `json:"errors"`

	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP90 float64 `json:"latency_ms_p90"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`
	LatencyMsMax float64 `json:"latency_ms_max"`
}

// String renders the dnsload summary block.
func (r *Result) String() string {
	return fmt.Sprintf(
		"target %s over %s: %d queries in %.2fs = %.0f qps (%d workers)\n"+
			"  rcodes: %d noerror, %d nxdomain, %d servfail, %d refused, %d other (%d truncated)\n"+
			"  errors: %d timeout, %d network, %d bad-message\n"+
			"  latency ms: p50 %.3f, p90 %.3f, p99 %.3f, max %.3f\n",
		r.Target, r.Transport, r.Sent, r.Seconds, r.QPS, r.Workers,
		r.NoError, r.NXDomain, r.ServFail, r.Refused, r.OtherRCode, r.Truncated,
		r.Timeouts, r.NetErrors, r.BadMessages,
		r.LatencyMsP50, r.LatencyMsP90, r.LatencyMsP99, r.LatencyMsMax)
}

// taxonomy is the run's counter set: local atomics for the Result plus
// optional obs mirrors for live /metrics scraping.
type taxonomy struct {
	sent, noerror, nxdomain, servfail, refused, other atomic.Uint64
	truncated, timeouts, neterrs, badmsg              atomic.Uint64
	m                                                 map[*atomic.Uint64]*obs.Counter
}

func newTaxonomy(reg *obs.Registry) *taxonomy {
	t := &taxonomy{}
	t.m = map[*atomic.Uint64]*obs.Counter{
		&t.sent:      reg.Counter(MetricSent),
		&t.noerror:   reg.Counter(MetricNoError),
		&t.nxdomain:  reg.Counter(MetricNXDomain),
		&t.servfail:  reg.Counter(MetricServFail),
		&t.refused:   reg.Counter(MetricRefused),
		&t.other:     reg.Counter(MetricOtherRCode),
		&t.truncated: reg.Counter(MetricTruncated),
		&t.timeouts:  reg.Counter(MetricTimeouts),
		&t.neterrs:   reg.Counter(MetricNetErrors),
		&t.badmsg:    reg.Counter(MetricBadMessages),
	}
	return t
}

func (t *taxonomy) inc(c *atomic.Uint64) {
	c.Add(1)
	t.m[c].Inc() // nil-safe when no registry was given
}

// Run drives the configured load and blocks until it completes.
func Run(cfg Config) (*Result, error) {
	if cfg.Transport == nil {
		return nil, errors.New("loadgen: Config.Transport is required")
	}
	if cfg.Workload == nil || cfg.Workload.Len() == 0 {
		return nil, errors.New("loadgen: Config.Workload is required")
	}
	if cfg.Count <= 0 && cfg.Duration <= 0 {
		return nil, errors.New("loadgen: set Config.Count and/or Config.Duration")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	tax := newTaxonomy(cfg.Registry)
	hist := cfg.Registry.Histogram(MetricLatency)
	if hist == nil {
		hist = obs.NewHistogram()
	}

	var (
		next     atomic.Uint64
		interval time.Duration
	)
	if cfg.QPS > 0 {
		interval = time.Second / time.Duration(cfg.QPS)
	}
	start := time.Now()
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]byte, 0, 512)
			dec := dnswire.NewDecoder()
			var qmsg, rmsg dnswire.Message
			for {
				i := next.Add(1) - 1
				if cfg.Count > 0 && i >= uint64(cfg.Count) {
					return
				}
				if interval > 0 {
					// Global pacing: query i is due at start + i·interval,
					// no matter which worker drew it.
					due := start.Add(time.Duration(i) * interval)
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				q := cfg.Workload.At(int(i))
				qmsg.Reset()
				qmsg.Header = dnswire.Header{
					ID:     uint16(i) ^ uint16(i>>16),
					RD:     true,
					Opcode: dnswire.OpcodeQuery,
				}
				qmsg.Question = append(qmsg.Question[:0],
					dnswire.Question{Name: q.Name, Type: q.Type, Class: dnswire.ClassIN})
				wire, err := dnswire.AppendEncode(scratch[:0], &qmsg)
				if err != nil {
					tax.inc(&tax.badmsg)
					continue
				}
				scratch = wire[:0]
				tax.inc(&tax.sent)
				resp, rtt, err := cfg.Transport.Exchange(cfg.Target, wire)
				if err != nil {
					if errors.Is(err, transport.ErrTimeout) {
						tax.inc(&tax.timeouts)
					} else {
						tax.inc(&tax.neterrs)
					}
					continue
				}
				hist.ObserveDuration(rtt)
				if derr := dec.Decode(resp, &rmsg); derr != nil ||
					rmsg.Header.ID != qmsg.Header.ID || !rmsg.Header.QR {
					tax.inc(&tax.badmsg)
					continue
				}
				if rmsg.Header.TC {
					tax.inc(&tax.truncated)
				}
				switch rmsg.Header.RCode {
				case dnswire.RCodeNoError:
					tax.inc(&tax.noerror)
				case dnswire.RCodeNXDomain:
					tax.inc(&tax.nxdomain)
				case dnswire.RCodeServFail:
					tax.inc(&tax.servfail)
				case dnswire.RCodeRefused:
					tax.inc(&tax.refused)
				default:
					tax.inc(&tax.other)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := hist.Snapshot()
	res := &Result{
		Transport: cfg.TransportName,
		Target:    cfg.Target.String(),
		Workers:   workers,
		Seconds:   elapsed.Seconds(),

		Sent:       tax.sent.Load(),
		NoError:    tax.noerror.Load(),
		NXDomain:   tax.nxdomain.Load(),
		ServFail:   tax.servfail.Load(),
		Refused:    tax.refused.Load(),
		OtherRCode: tax.other.Load(),
		Truncated:  tax.truncated.Load(),

		Timeouts:    tax.timeouts.Load(),
		NetErrors:   tax.neterrs.Load(),
		BadMessages: tax.badmsg.Load(),

		LatencyMsP50: snap.P50,
		LatencyMsP90: snap.P90,
		LatencyMsP99: snap.P99,
		LatencyMsMax: snap.Max,
	}
	res.Errors = res.Timeouts + res.NetErrors + res.BadMessages
	if elapsed > 0 {
		res.QPS = float64(res.Sent) / elapsed.Seconds()
	}
	return res, nil
}
