package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
)

// TestAliasMatchesWeights checks the alias table reproduces an arbitrary
// discrete distribution to sampling accuracy.
func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{5, 1, 0.25, 3, 0, 0.75}
	total := 10.0
	a := NewAlias(weights)
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, len(weights))
	const n = 400000
	for i := 0; i < n; i++ {
		counts[a.Draw(rng.Float64())]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / total
		if math.Abs(got-want) > 0.004 {
			t.Errorf("outcome %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
}

// TestAliasZipfExact compares alias draws against the exact inverse-CDF
// draw on the same uniforms: the two must agree in distribution, checked
// per rank at Zipf head and tail.
func TestAliasZipfExact(t *testing.T) {
	const n = 512
	weights := make([]float64, n)
	cum := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	acc := 0.0
	for i := range cum {
		acc += weights[i] / total
		cum[i] = acc
	}
	a := NewAlias(weights)
	rng := rand.New(rand.NewSource(4))
	aliasCounts := make([]int, n)
	cdfCounts := make([]int, n)
	const draws = 300000
	for i := 0; i < draws; i++ {
		u := rng.Float64()
		aliasCounts[a.Draw(u)]++
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		cdfCounts[lo]++
	}
	for _, rank := range []int{0, 1, 7, 63, 511} {
		ga := float64(aliasCounts[rank]) / draws
		gc := float64(cdfCounts[rank]) / draws
		if math.Abs(ga-gc) > 0.004 {
			t.Errorf("rank %d: alias %.4f vs inverse-CDF %.4f", rank, ga, gc)
		}
	}
}

// TestAliasEdgeCases: empty, all-zero, and single-outcome tables must not
// panic and must return a valid index.
func TestAliasEdgeCases(t *testing.T) {
	for _, weights := range [][]float64{nil, {0, 0, 0}, {2}, {-1, 3}} {
		a := NewAlias(weights)
		for _, u := range []float64{0, 0.5, math.Nextafter(1, 0)} {
			i := a.Draw(u)
			if i < 0 || i >= a.Len() {
				t.Errorf("weights %v u=%v: draw %d out of range [0,%d)", weights, u, i, a.Len())
			}
		}
	}
	// A negative weight is treated as zero mass.
	a := NewAlias([]float64{-1, 3})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if a.Draw(rng.Float64()) == 0 {
			t.Fatal("negative-weight outcome drawn")
		}
	}
}

// TestNextConsumesOneUniformPerDraw pins the RNG-consumption contract the
// alias swap preserved: one ExpFloat64 + one Float64 per Next call, so the
// gap stream is reproducible independent of how names are drawn.
func TestNextConsumesOneUniformPerDraw(t *testing.T) {
	const seed = 77
	g := New(dnswire.NewName("example.org"), 300, 1.0, 4, seed)
	ref := rand.New(rand.NewSource(seed))
	for i := 0; i < 5000; i++ {
		wantGap := time.Duration(ref.ExpFloat64() / 4 * float64(time.Second))
		ref.Float64() // the name draw's single uniform
		gap, _ := g.Next()
		if gap != wantGap {
			t.Fatalf("draw %d: gap %v, want %v — Next's RNG consumption drifted", i, gap, wantGap)
		}
	}
}
