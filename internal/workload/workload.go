// Package workload generates client query streams for the cache
// experiments: Zipf-distributed name popularity with Poisson arrivals, the
// standard model for resolver-side DNS demand (and the setting for the
// Jung et al. cache analysis the paper builds on).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dnsttl/internal/dnswire"
)

// Generator produces a query stream over a fixed name population.
type Generator struct {
	// Names is the queryable population, most popular first.
	Names []dnswire.Name
	// Rate is the total arrival rate in queries per second.
	Rate float64

	masses []float64 // per-name popularity, most popular first
	alias  *Alias    // O(1) name draw
	rng    *rand.Rand
}

// New builds a generator over n names under the given base domain, with
// Zipf exponent s (1.0 is classic web-like skew) and total rate qps.
func New(base dnswire.Name, n int, s, qps float64, seed int64) *Generator {
	if n < 1 {
		n = 1
	}
	g := &Generator{Rate: qps, rng: rand.New(rand.NewSource(seed))}
	weights := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1 / math.Pow(float64(i+1), s)
		weights[i] = w
		total += w
	}
	g.Names = make([]dnswire.Name, n)
	g.masses = make([]float64, n)
	for i := 0; i < n; i++ {
		g.Names[i] = base.Child(fmt.Sprintf("w%04d", i))
		g.masses[i] = weights[i] / total
	}
	g.alias = NewAlias(weights)
	return g
}

// Popularity returns name i's probability mass.
func (g *Generator) Popularity(i int) float64 {
	return g.masses[i]
}

// Masses returns the per-name popularity vector, most popular first. The
// workload compiler reads it to build per-name arrival rates; callers must
// not mutate it.
func (g *Generator) Masses() []float64 { return g.masses }

// Next returns the interarrival gap to the next query and its name.
// Gaps are exponential (Poisson process); names follow the Zipf weights via
// an O(1) alias-table draw. Each call consumes exactly one ExpFloat64 and
// one Float64 from the RNG — the same consumption as the former
// binary-search draw — so the gap stream is unchanged across that swap.
func (g *Generator) Next() (time.Duration, dnswire.Name) {
	gap := time.Duration(g.rng.ExpFloat64() / g.Rate * float64(time.Second))
	return gap, g.Names[g.alias.Draw(g.rng.Float64())]
}

// ExpectedHitRate computes the aggregate cache hit rate the Jung et al.
// model predicts for this workload at a given TTL: each name hits
// independently at λᵢT/(1+λᵢT), weighted by its share of queries.
func (g *Generator) ExpectedHitRate(ttl uint32) float64 {
	h := 0.0
	for i := range g.Names {
		p := g.Popularity(i)
		li := p * g.Rate
		x := li * float64(ttl)
		h += p * (x / (x + 1))
	}
	return h
}
