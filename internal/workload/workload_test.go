package workload

import (
	"math"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
)

func TestZipfShape(t *testing.T) {
	g := New(dnswire.NewName("example.org"), 100, 1.0, 10, 1)
	if len(g.Names) != 100 {
		t.Fatalf("names = %d", len(g.Names))
	}
	// Popularity decreases and sums to 1.
	sum := 0.0
	prev := math.Inf(1)
	for i := range g.Names {
		p := g.Popularity(i)
		if p > prev {
			t.Fatalf("popularity not decreasing at %d", i)
		}
		prev = p
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("popularity sums to %v", sum)
	}
	// Zipf s=1: p(1)/p(2) = 2.
	if r := g.Popularity(0) / g.Popularity(1); math.Abs(r-2) > 1e-9 {
		t.Errorf("rank ratio = %v, want 2", r)
	}
}

func TestArrivalProcess(t *testing.T) {
	g := New(dnswire.NewName("example.org"), 50, 1.0, 5, 2)
	var total time.Duration
	counts := map[dnswire.Name]int{}
	n := 20000
	for i := 0; i < n; i++ {
		gap, name := g.Next()
		if gap < 0 {
			t.Fatalf("negative gap")
		}
		total += gap
		counts[name]++
	}
	// Mean interarrival ≈ 1/rate = 200 ms.
	mean := total / time.Duration(n)
	if mean < 150*time.Millisecond || mean > 250*time.Millisecond {
		t.Errorf("mean gap = %v, want ≈200ms", mean)
	}
	// The top name dominates per Zipf.
	top := counts[g.Names[0]]
	second := counts[g.Names[1]]
	if top <= second {
		t.Errorf("rank-1 count %d should exceed rank-2 %d", top, second)
	}
	frac := float64(top) / float64(n)
	if math.Abs(frac-g.Popularity(0)) > 0.02 {
		t.Errorf("rank-1 frequency %.3f vs popularity %.3f", frac, g.Popularity(0))
	}
}

func TestExpectedHitRateMonotone(t *testing.T) {
	g := New(dnswire.NewName("example.org"), 100, 1.0, 1, 3)
	prev := 0.0
	for _, ttl := range []uint32{10, 60, 300, 1000, 3600, 86400} {
		h := g.ExpectedHitRate(ttl)
		if h <= prev || h >= 1 {
			t.Fatalf("hit rate not sane at %d: %v (prev %v)", ttl, h, prev)
		}
		prev = h
	}
	// The Jung et al. observation: by TTL ≈ 1000 s most of the benefit is
	// realized — the curve is well into diminishing returns.
	at1000 := g.ExpectedHitRate(1000)
	at86400 := g.ExpectedHitRate(86400)
	if at1000 < 0.6*at86400 {
		t.Errorf("hit rate at 1000 s (%.3f) should capture most of the day-long benefit (%.3f)", at1000, at86400)
	}
}

// TestExpectedHitRateMatchesSimulatedCache replays the generator's own
// query stream against a literal TTL cache (a map of expiry times on
// virtual time) over a small grid of populations, rates and TTLs, and
// requires the Jung et al. analytic prediction to land within 0.5 hit
// points of the simulation. This is the workload-level end of the
// analytic-vs-simulated tolerance harness the planet-scale compiler
// validation builds on (internal/experiments TestCompiledModel*).
func TestExpectedHitRateMatchesSimulatedCache(t *testing.T) {
	grid := []struct {
		names   int
		qps     float64
		ttl     uint32
		queries int
	}{
		{names: 50, qps: 2, ttl: 60, queries: 200000},
		{names: 50, qps: 2, ttl: 600, queries: 200000},
		{names: 200, qps: 8, ttl: 30, queries: 300000},
		{names: 200, qps: 8, ttl: 300, queries: 300000},
		{names: 400, qps: 1, ttl: 3600, queries: 200000},
	}
	const tolerance = 0.005
	for _, cell := range grid {
		g := New(dnswire.NewName("example.org"), cell.names, 1.0, cell.qps, 11)
		expiry := make(map[dnswire.Name]time.Duration, cell.names)
		var now time.Duration
		hits := 0
		for q := 0; q < cell.queries; q++ {
			gap, name := g.Next()
			now += gap
			if exp, ok := expiry[name]; ok && now < exp {
				hits++
			} else {
				expiry[name] = now + time.Duration(cell.ttl)*time.Second
			}
		}
		simulated := float64(hits) / float64(cell.queries)
		predicted := g.ExpectedHitRate(cell.ttl)
		if d := math.Abs(simulated - predicted); d > tolerance {
			t.Errorf("names=%d qps=%g ttl=%d: simulated %.4f vs analytic %.4f (Δ %.4f > %.3f)",
				cell.names, cell.qps, cell.ttl, simulated, predicted, d, tolerance)
		}
	}
}

func TestDegenerate(t *testing.T) {
	g := New(dnswire.NewName("x.org"), 0, 1, 1, 4)
	if len(g.Names) != 1 {
		t.Errorf("n<1 should clamp to 1")
	}
	if _, name := g.Next(); name != g.Names[0] {
		t.Errorf("single-name generator broken")
	}
}
