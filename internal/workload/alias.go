package workload

// Alias is a Walker/Vose alias table: O(n) to build, O(1) per draw, for
// sampling from an arbitrary discrete distribution. The generator's Zipf
// name draw uses it in place of the former O(log n) binary search over the
// cumulative distribution — at planet-scale name populations (10⁵–10⁷
// ranks) the draw is the workload generator's hot path.
type Alias struct {
	// prob[i] is the probability that bucket i returns itself rather than
	// its alias; alias[i] is the overflow target.
	prob  []float64
	alias []int32
}

// NewAlias builds the table from non-negative weights (they need not sum
// to 1). An empty or all-zero weight vector yields a single-outcome table.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		return &Alias{prob: []float64{1}, alias: []int32{0}}
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	if total <= 0 {
		for i := range a.prob {
			a.prob[i] = 1
			a.alias[i] = int32(i)
		}
		return a
	}
	// Scale weights to mean 1, then split buckets into small (< 1) and
	// large (≥ 1) worklists and pair them off.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Numerical leftovers are all (within rounding) exactly 1.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = int32(i)
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = int32(i)
	}
	return a
}

// Draw maps one uniform variate in [0,1) to an outcome index. It splits u
// into a bucket index and a coin, so one RNG call per draw suffices — the
// same RNG consumption as the binary-search draw it replaced, which keeps
// interleaved gap/name streams reproducible across the swap.
func (a *Alias) Draw(u float64) int {
	n := len(a.prob)
	scaled := u * float64(n)
	i := int(scaled)
	if i >= n { // u rounding up to 1.0 × n
		i = n - 1
	}
	if scaled-float64(i) < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }
