// Package dmap reproduces the DMap content-classification pipeline of
// §5.1.1: fetch each domain's web page, classify it as placeholder,
// e-commerce or parking, and join the classes with the domains' DNS TTLs
// (Tables 6 and 7). The web is synthetic here — each generated .nl domain
// renders a page in the style its ground-truth class implies — but the
// classifier works from page content alone, exactly as DMap does.
package dmap

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/zonegen"
)

// Page is one fetched web page.
type Page struct {
	Domain dnswire.Name
	Status int
	Body   string
}

// Template fragments per class. The classifier must not simply invert the
// generator, so each class has several phrasings and pages carry filler.
var (
	ecommerceSnippets = []string{
		`<a href="/cart">View shopping cart</a><span class="cart-count">0</span>`,
		`<button class="add-to-cart">Add to cart</button><div id="checkout">Checkout</div>`,
		`<div class="winkelwagen">Winkelwagen (0)</div><a href="/afrekenen">Afrekenen</a>`,
	}
	parkingSnippets = []string{
		`This domain has been registered and is parked by its owner.`,
		`<h1>domain parked</h1> Interested? This domain may be for sale. Contact the broker.`,
		`Deze domeinnaam is geregistreerd en geparkeerd. Koop deze domeinnaam!`,
	}
	placeholderSnippets = []string{
		`<h1>Welcome to nginx!</h1>If you see this page, the web server is successfully installed.`,
		`<title>Default web page</title>This is the default hosting page of your provider.`,
		`<h1>Site under construction</h1>Standaard pagina van uw hostingprovider.`,
	}
	genericSnippets = []string{
		`<h1>Our company</h1><p>We have been serving customers since 1987.</p>`,
		`<h1>Blog</h1><p>Thoughts on cheese, bicycles and the sea.</p>`,
		`<h1>Vereniging</h1><p>Welkom op de site van onze vereniging.</p>`,
	}
)

// RenderPage synthesizes the page a domain would serve, from its
// ground-truth class. A small fraction of pages carry no recognizable
// signal, as in real crawls.
func RenderPage(d *zonegen.Domain, r *rand.Rand) *Page {
	var body strings.Builder
	fmt.Fprintf(&body, "<html><head><title>%s</title></head><body>", d.Name)
	body.WriteString(genericSnippets[r.Intn(len(genericSnippets))])
	noise := r.Float64() < 0.03 // unclassifiable tail
	if !noise {
		switch d.Content {
		case zonegen.Ecommerce:
			body.WriteString(ecommerceSnippets[r.Intn(len(ecommerceSnippets))])
		case zonegen.Parking:
			body.WriteString(parkingSnippets[r.Intn(len(parkingSnippets))])
		case zonegen.Placeholder:
			body.WriteString(placeholderSnippets[r.Intn(len(placeholderSnippets))])
		}
	}
	body.WriteString("</body></html>")
	return &Page{Domain: d.Name, Status: 200, Body: body.String()}
}

// classRules map content signals to classes; first match wins, e-commerce
// before parking before placeholder (cart markup on a parked page means a
// live shop template).
var classRules = []struct {
	class    zonegen.ContentClass
	keywords []string
}{
	{zonegen.Ecommerce, []string{"add-to-cart", "shopping cart", "winkelwagen", "checkout", "afrekenen", "cart-count"}},
	{zonegen.Parking, []string{"parked", "geparkeerd", "for sale", "koop deze domeinnaam", "domain broker"}},
	{zonegen.Placeholder, []string{"welcome to nginx", "default web page", "default hosting page", "under construction", "standaard pagina"}},
}

// Classify assigns a content class from page content alone.
func Classify(p *Page) zonegen.ContentClass {
	if p == nil || p.Status != 200 {
		return zonegen.Unclassified
	}
	body := strings.ToLower(p.Body)
	for _, rule := range classRules {
		for _, kw := range rule.keywords {
			if strings.Contains(body, kw) {
				return rule.class
			}
		}
	}
	return zonegen.Unclassified
}

// Survey is the Tables 6/7 product: class counts and per-class median TTLs
// (in hours) per record type.
type Survey struct {
	// Counts per classified class (Table 6).
	Counts map[zonegen.ContentClass]int
	// Total is the number of classified domains.
	Total int
	// MedianTTLHours[class][type] reproduces Table 7.
	MedianTTLHours map[zonegen.ContentClass]map[dnswire.Type]float64
}

// table7Types are the record types Table 7 reports.
var table7Types = []dnswire.Type{
	dnswire.TypeNS, dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeMX, dnswire.TypeDNSKEY,
}

// Run renders and classifies every responsive .nl domain with a web
// presence and joins classes with the domains' child-zone TTLs.
func Run(w *zonegen.World, seed int64) *Survey {
	r := rand.New(rand.NewSource(seed))
	s := &Survey{
		Counts:         make(map[zonegen.ContentClass]int),
		MedianTTLHours: make(map[zonegen.ContentClass]map[dnswire.Type]float64),
	}
	ttls := make(map[zonegen.ContentClass]map[dnswire.Type][]float64)
	for _, d := range w.Lists[zonegen.NL] {
		if !d.Responsive || d.Zone == nil || d.NSBehavior != zonegen.NSAnswer {
			continue
		}
		class := Classify(RenderPage(d, r))
		if class == zonegen.Unclassified {
			continue
		}
		s.Counts[class]++
		s.Total++
		if ttls[class] == nil {
			ttls[class] = make(map[dnswire.Type][]float64)
		}
		for _, t := range table7Types {
			if set := d.Zone.Get(d.Name, t); set != nil {
				ttls[class][t] = append(ttls[class][t], float64(set.TTL)/3600)
			}
		}
	}
	for class, byType := range ttls {
		s.MedianTTLHours[class] = make(map[dnswire.Type]float64)
		for t, xs := range byType {
			sort.Float64s(xs)
			s.MedianTTLHours[class][t] = xs[(len(xs)-1)/2]
		}
	}
	return s
}
