package dmap

import (
	"math"
	"math/rand"
	"testing"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zonegen"
)

func TestClassifyKeywords(t *testing.T) {
	cases := []struct {
		body string
		want zonegen.ContentClass
	}{
		{`<div>Add-To-Cart</div>`, zonegen.Ecommerce},
		{`buy now at our Winkelwagen page`, zonegen.Ecommerce},
		{`this domain is parked`, zonegen.Parking},
		{`Koop deze domeinnaam vandaag`, zonegen.Parking},
		{`Welcome to nginx! it works`, zonegen.Placeholder},
		{`standaard pagina van de provider`, zonegen.Placeholder},
		{`my personal blog about cats`, zonegen.Unclassified},
		// E-commerce outranks parking when both signals appear.
		{`parked ... checkout`, zonegen.Ecommerce},
	}
	for _, c := range cases {
		got := Classify(&Page{Status: 200, Body: c.body})
		if got != c.want {
			t.Errorf("Classify(%q) = %s, want %s", c.body, got, c.want)
		}
	}
	if Classify(nil) != zonegen.Unclassified {
		t.Errorf("nil page should be unclassified")
	}
	if Classify(&Page{Status: 404, Body: "parked"}) != zonegen.Unclassified {
		t.Errorf("non-200 page should be unclassified")
	}
}

func TestRenderClassifyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, class := range []zonegen.ContentClass{zonegen.Ecommerce, zonegen.Parking, zonegen.Placeholder} {
		agree := 0
		n := 500
		for i := 0; i < n; i++ {
			d := &zonegen.Domain{Name: dnswire.NewName("x.nl"), Content: class}
			if Classify(RenderPage(d, r)) == class {
				agree++
			}
		}
		// The 3% noise tail aside, the classifier recovers the class.
		if float64(agree)/float64(n) < 0.9 {
			t.Errorf("class %s recovered only %d/%d", class, agree, n)
		}
	}
	// Unclassified domains stay unclassified.
	d := &zonegen.Domain{Name: dnswire.NewName("x.nl"), Content: zonegen.Unclassified}
	if got := Classify(RenderPage(d, r)); got != zonegen.Unclassified {
		t.Errorf("generic page classified as %s", got)
	}
}

func TestSurveyTable6And7(t *testing.T) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(5)
	w := zonegen.Build(zonegen.Config{Seed: 42, Scale: 0.2}, net, clock)
	s := Run(w, 7)

	if s.Total == 0 {
		t.Fatal("survey classified nothing")
	}
	// Table 6 proportions: placeholder ≈81 %, e-commerce ≈10 %, parking ≈9 %.
	fPlaceholder := float64(s.Counts[zonegen.Placeholder]) / float64(s.Total)
	if fPlaceholder < 0.7 || fPlaceholder > 0.9 {
		t.Errorf("placeholder share = %.3f, want ≈0.81", fPlaceholder)
	}
	if s.Counts[zonegen.Ecommerce] == 0 || s.Counts[zonegen.Parking] == 0 {
		t.Errorf("counts = %v", s.Counts)
	}

	// Table 7 medians (hours).
	want := map[zonegen.ContentClass]map[dnswire.Type]float64{
		zonegen.Ecommerce:   {dnswire.TypeNS: 4, dnswire.TypeA: 1, dnswire.TypeMX: 1, dnswire.TypeDNSKEY: 1},
		zonegen.Parking:     {dnswire.TypeNS: 24, dnswire.TypeA: 1, dnswire.TypeMX: 1, dnswire.TypeDNSKEY: 24},
		zonegen.Placeholder: {dnswire.TypeNS: 4, dnswire.TypeA: 1, dnswire.TypeMX: 1, dnswire.TypeDNSKEY: 4},
	}
	for class, byType := range want {
		for typ, hours := range byType {
			got := s.MedianTTLHours[class][typ]
			if math.Abs(got-hours) > hours*0.5+0.5 {
				t.Errorf("median TTL %s/%s = %.1f h, want ≈%.1f h", class, typ, got, hours)
			}
		}
	}
	// The headline contrast: parking NS TTLs are much longer.
	if s.MedianTTLHours[zonegen.Parking][dnswire.TypeNS] <= s.MedianTTLHours[zonegen.Ecommerce][dnswire.TypeNS] {
		t.Errorf("parking NS median should exceed e-commerce's")
	}
}
