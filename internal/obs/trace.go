package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"dnsttl/internal/simnet"
)

// Attr is one key=value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// Span is one timed step of a query's lifecycle — a cache lookup, one
// upstream exchange, a referral absorption — with the TTL decisions taken
// there recorded as annotations. Spans form a tree rooted at the client
// resolution.
//
// Every method is nil-safe: when tracing is off the resolver carries a nil
// *Span and each instrumentation point costs exactly one pointer check.
// A span tree is built by a single goroutine (a resolution is synchronous);
// after Finish it is read-only and may be shared.
type Span struct {
	Name     string
	Start    time.Time
	End      time.Time
	Attrs    []Attr
	Children []*Span

	clock simnet.Clock
}

// Child opens a sub-span. It returns nil when s is nil, so call chains stay
// safe with tracing off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, clock: s.clock, Start: s.clock.Now()}
	s.Children = append(s.Children, c)
	return c
}

// Annotate attaches key=val to the span.
func (s *Span) Annotate(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// AnnotateUint attaches an integer annotation without formatting cost at
// disabled call sites.
func (s *Span) AnnotateUint(key string, v uint64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: strconv.FormatUint(v, 10)})
}

// Finish stamps the span's end time.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.End = s.clock.Now()
}

// Duration is the span's elapsed time (zero before Finish).
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.Before(s.Start) {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Attr returns the value of the named annotation ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Walk visits the span and every descendant depth-first.
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	var rec func(int, *Span)
	rec = func(d int, sp *Span) {
		fn(d, sp)
		for _, c := range sp.Children {
			rec(d+1, c)
		}
	}
	rec(0, s)
}

// String renders the span tree in the spirit of `dig +trace`: one line per
// step, indented by depth, with duration and annotations.
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(depth int, sp *Span) {
		fmt.Fprintf(&b, "%s%-*s %8s", strings.Repeat("  ", depth),
			36-2*depth, sp.Name, formatDur(sp.Duration()))
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, "  %s=%s", a.Key, a.Val)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

func formatDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Microsecond).String()
	}
}

// tracerKeep bounds how many finished traces a Tracer retains.
const tracerKeep = 128

// Tracer hands out root spans and retains the most recent finished trace
// per root name, so /trace?name=... can show why the last resolution of a
// name took the path it did. A nil *Tracer is a valid no-op.
type Tracer struct {
	clock simnet.Clock

	mu     sync.Mutex
	recent map[string]*Span
	order  []string // FIFO of keys for eviction
}

// NewTracer builds a tracer on the given clock (nil means wall clock).
func NewTracer(clock simnet.Clock) *Tracer {
	if clock == nil {
		clock = simnet.WallClock{}
	}
	return &Tracer{clock: clock, recent: make(map[string]*Span)}
}

// Start opens a root span. It returns nil when t is nil.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{Name: name, clock: t.clock, Start: t.clock.Now()}
}

// Keep finishes root (if it is not yet finished) and retains it as the
// latest trace under its name, evicting the oldest retained trace beyond
// the retention bound.
func (t *Tracer) Keep(root *Span) {
	if t == nil || root == nil {
		return
	}
	if root.End.IsZero() {
		root.Finish()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, seen := t.recent[root.Name]; !seen {
		t.order = append(t.order, root.Name)
		for len(t.order) > tracerKeep {
			delete(t.recent, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.recent[root.Name] = root
}

// Find returns the latest trace whose root name matches q exactly, or —
// failing that — the first retained name containing q. ok is false when
// nothing matches.
func (t *Tracer) Find(q string) (*Span, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp, ok := t.recent[q]; ok {
		return sp, true
	}
	for i := len(t.order) - 1; i >= 0; i-- {
		if strings.Contains(t.order[i], q) {
			return t.recent[t.order[i]], true
		}
	}
	return nil, false
}

// Names lists the retained trace names, oldest first.
func (t *Tracer) Names() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}
