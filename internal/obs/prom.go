package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
)

// promName sanitizes a registry metric name ("resolver.cache.hits") into
// the Prometheus exposition charset ("resolver_cache_hits"): every rune
// outside [a-zA-Z0-9_] becomes '_', and a leading digit gains a '_'
// prefix. The mapping is stable, so dashboards can be written against it.
func promName(name string) string {
	b := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			c = '_'
		}
		if i == 0 && c >= '0' && c <= '9' {
			b = append(b, '_')
		}
		b = append(b, c)
	}
	return string(b)
}

// appendPromFloat renders v the way the exposition format expects:
// "+Inf"/"-Inf"/"NaN" spellings, shortest float otherwise.
func appendPromFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): every metric gets a # TYPE line, histograms
// expose cumulative le-labeled buckets plus _sum and _count, and names are
// emitted in sorted order so output is deterministic.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b []byte

	counterNames := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		counterNames = append(counterNames, n)
	}
	sort.Strings(counterNames)
	for _, n := range counterNames {
		pn := promName(n)
		b = append(b, "# TYPE "...)
		b = append(b, pn...)
		b = append(b, " counter\n"...)
		b = append(b, pn...)
		b = append(b, ' ')
		b = strconv.AppendUint(b, s.Counters[n], 10)
		b = append(b, '\n')
	}

	gaugeNames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gaugeNames = append(gaugeNames, n)
	}
	sort.Strings(gaugeNames)
	for _, n := range gaugeNames {
		pn := promName(n)
		b = append(b, "# TYPE "...)
		b = append(b, pn...)
		b = append(b, " gauge\n"...)
		b = append(b, pn...)
		b = append(b, ' ')
		b = appendPromFloat(b, s.Gauges[n])
		b = append(b, '\n')
	}

	histNames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		histNames = append(histNames, n)
	}
	sort.Strings(histNames)
	for _, n := range histNames {
		h := s.Histograms[n]
		pn := promName(n)
		b = append(b, "# TYPE "...)
		b = append(b, pn...)
		b = append(b, " histogram\n"...)
		cum := uint64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			// The overflow bucket's upper bound is +Inf; the closing
			// le="+Inf" series below covers it, so skip it here to keep
			// the series unique.
			if bk.Hi == math.MaxFloat64 || math.IsInf(bk.Hi, 1) {
				continue
			}
			b = append(b, pn...)
			b = append(b, `_bucket{le="`...)
			b = appendPromFloat(b, bk.Hi)
			b = append(b, `"} `...)
			b = strconv.AppendUint(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, pn...)
		b = append(b, `_bucket{le="+Inf"} `...)
		b = strconv.AppendUint(b, h.Count, 10)
		b = append(b, '\n')
		b = append(b, pn...)
		b = append(b, "_sum "...)
		b = appendPromFloat(b, h.Sum)
		b = append(b, '\n')
		b = append(b, pn...)
		b = append(b, "_count "...)
		b = strconv.AppendUint(b, h.Count, 10)
		b = append(b, '\n')
	}

	_, err := w.Write(b)
	return err
}

// WritePrometheusText snapshots the registry and writes the exposition.
func (r *Registry) WritePrometheusText(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}
