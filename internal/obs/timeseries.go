package obs

import (
	"math"
	"sync"
	"time"
)

// History is the registry's time-series layer: a fixed ring of timestamped
// Snapshots from which windowed counter rates and delta histograms are
// computed on demand (served at /metrics?window=). Sampling is explicit
// (Sample) or periodic (Start), so virtual-time experiments can drive it
// from a simnet clock while daemons run it on a wall ticker.
type History struct {
	reg *Registry

	mu    sync.Mutex
	ring  []Snapshot
	head  int // next write position
	count int // number of valid entries

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHistory builds a history ring over reg holding up to capacity
// snapshots (0 means 360 — an hour at the default 10 s period).
func NewHistory(reg *Registry, capacity int) *History {
	if capacity <= 0 {
		capacity = 360
	}
	return &History{
		reg:  reg,
		ring: make([]Snapshot, capacity),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Sample appends one snapshot of the registry to the ring.
func (h *History) Sample() {
	if h == nil {
		return
	}
	s := h.reg.Snapshot()
	h.mu.Lock()
	h.ring[h.head] = s
	h.head = (h.head + 1) % len(h.ring)
	if h.count < len(h.ring) {
		h.count++
	}
	h.mu.Unlock()
}

// Start samples every period on a wall ticker until Stop. It samples once
// immediately so a window query right after startup has a baseline.
func (h *History) Start(period time.Duration) {
	if h == nil {
		return
	}
	if period <= 0 {
		period = 10 * time.Second
	}
	h.Sample()
	go func() {
		defer close(h.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.Sample()
			case <-h.stop:
				return
			}
		}
	}()
}

// Stop halts a Start loop. Safe to call multiple times or without Start.
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
}

// Len reports how many snapshots the ring currently holds.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// snapshotAt returns the i-th oldest retained snapshot (0 = oldest).
// Caller holds h.mu.
func (h *History) snapshotAt(i int) Snapshot {
	start := (h.head - h.count + len(h.ring)) % len(h.ring)
	return h.ring[(start+i)%len(h.ring)]
}

// CounterDelta is one counter's change over a window.
type CounterDelta struct {
	Delta uint64  `json:"delta"`
	Rate  float64 `json:"rate_per_sec"`
}

// Delta is the change in the registry between two snapshots: counter
// deltas with per-second rates, latest gauge values, and delta histograms
// (bucket differences with quantiles recomputed over just the window's
// observations).
type Delta struct {
	From       time.Time                    `json:"from"`
	To         time.Time                    `json:"to"`
	Seconds    float64                      `json:"seconds"`
	Counters   map[string]CounterDelta      `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Window takes a fresh snapshot and diffs it against the oldest retained
// snapshot no older than d (i.e. the sample closest to now-d from above).
// It reports ok=false when the ring holds no usable baseline yet.
func (h *History) Window(d time.Duration) (Delta, bool) {
	if h == nil {
		return Delta{}, false
	}
	now := h.reg.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return Delta{}, false
	}
	cutoff := now.At.Add(-d)
	// Oldest snapshot inside the window; fall back to the newest retained
	// snapshot older than the cutoff if none is inside (short uptime).
	base := h.snapshotAt(0)
	for i := 0; i < h.count; i++ {
		s := h.snapshotAt(i)
		if !s.At.Before(cutoff) {
			base = s
			break
		}
		base = s
	}
	if !base.At.Before(now.At) {
		return Delta{}, false
	}
	return diffSnapshots(base, now), true
}

// diffSnapshots computes to − from.
func diffSnapshots(from, to Snapshot) Delta {
	d := Delta{
		From:    from.At,
		To:      to.At,
		Seconds: to.At.Sub(from.At).Seconds(),
	}
	if len(to.Counters) > 0 {
		d.Counters = make(map[string]CounterDelta, len(to.Counters))
		for n, v := range to.Counters {
			delta := v - from.Counters[n] // counters are monotonic
			if v < from.Counters[n] {
				delta = v // registry restarted mid-window; report the new count
			}
			cd := CounterDelta{Delta: delta}
			if d.Seconds > 0 {
				cd.Rate = float64(delta) / d.Seconds
			}
			d.Counters[n] = cd
		}
	}
	if len(to.Gauges) > 0 {
		d.Gauges = make(map[string]float64, len(to.Gauges))
		for n, v := range to.Gauges {
			d.Gauges[n] = v
		}
	}
	if len(to.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(to.Histograms))
		for n, hs := range to.Histograms {
			d.Histograms[n] = diffHistograms(from.Histograms[n], hs)
		}
	}
	return d
}

// diffHistograms subtracts from's buckets out of to's and recomputes the
// quantiles over the remainder — the latency distribution of just the
// window's observations. Min/Max are bucket-bounded (the true extremes of
// the window are not recoverable from cumulative state).
func diffHistograms(from, to HistogramSnapshot) HistogramSnapshot {
	var counts [numBuckets]uint64
	for _, b := range to.Buckets {
		counts[bucketOf(b.Lo)] = b.Count
	}
	for _, b := range from.Buckets {
		i := bucketOf(b.Lo)
		if counts[i] >= b.Count {
			counts[i] -= b.Count
		} else {
			counts[i] = 0
		}
	}
	var out HistogramSnapshot
	total := uint64(0)
	lo := math.Inf(1)
	hi := 0.0
	for i, n := range counts {
		if n == 0 {
			continue
		}
		total += n
		blo, bhi := bucketBounds(i)
		if math.IsInf(bhi, 1) {
			bhi = math.MaxFloat64
		}
		if blo < lo {
			lo = blo
		}
		if bhi > hi {
			hi = bhi
		}
		out.Buckets = append(out.Buckets, Bucket{Lo: blo, Hi: bhi, Count: n})
	}
	out.Count = total
	if total == 0 {
		return out
	}
	out.Min = lo
	out.Max = hi
	if s := to.Sum - from.Sum; s > 0 {
		out.Sum = s
	}
	// Clamp like Histogram.Snapshot so the implied mean stays in range.
	if smin := float64(total) * out.Min; out.Sum < smin {
		out.Sum = smin
	}
	if smax := float64(total) * out.Max; out.Sum > smax {
		out.Sum = smax
	}
	out.P50 = quantileFromBuckets(counts[:], total, 0.50, out.Min, out.Max)
	out.P90 = quantileFromBuckets(counts[:], total, 0.90, out.Min, out.Max)
	out.P99 = quantileFromBuckets(counts[:], total, 0.99, out.Min, out.Max)
	return out
}
