// Package obs is the module's unified telemetry plane: a zero-dependency,
// allocation-conscious metrics registry (atomic counters, gauges, and
// log-bucketed histograms with quantile snapshots), a query-lifecycle
// tracer that records each resolution as a span tree, and the HTTP
// introspection handlers the daemons mount at /metrics and /trace.
//
// Every experiment and both daemons report from the same source: a
// *Registry handed to the resolver, farm, cache, and authoritative server.
// All read paths are snapshot-based and deterministic (sorted keys, clock
// injected via simnet.Clock), so virtual-time experiments produce
// byte-identical telemetry across runs.
//
// Hot-path cost is one atomic op per counter increment and one pointer
// check when a handle is nil: every method on *Counter, *Gauge, *Histogram,
// and *Span is nil-safe, so instrumented code needs no "is telemetry on"
// branches of its own.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnsttl/internal/simnet"
)

// Counter is a monotonically increasing atomic counter. The nil *Counter is
// a valid no-op, so call sites never branch on whether metrics are enabled.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits encoding
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// numBuckets is the fixed histogram shape: bucket 0 holds values below 1,
// bucket i (1 ≤ i ≤ 62) holds [2^(i-1), 2^i), and bucket 63 is the
// overflow. Power-of-two bucketing keeps Observe allocation-free and
// branch-light (one bits.Len64) while spanning microseconds to weeks.
const numBuckets = 64

// Histogram is a concurrent log-bucketed histogram. Observe is lock-free
// and allocation-free; quantiles are computed from a Snapshot. The nil
// *Histogram is a valid no-op. Construct with NewHistogram (or through a
// Registry), which seeds the extreme trackers.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits encoding, CAS-updated
	min     atomic.Uint64 // math.Float64bits; valid only when count > 0
	max     atomic.Uint64 // math.Float64bits; valid only when count > 0
	buckets [numBuckets]atomic.Uint64
}

// NewHistogram builds an empty histogram with min/max seeded to ±Inf so
// the first concurrent observers converge on the true extremes.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	if v >= float64(uint64(1)<<62) {
		return numBuckets - 1
	}
	return bits.Len64(uint64(v))
}

// bucketBounds returns bucket i's [lo, hi) value range.
func bucketBounds(i int) (lo, hi float64) {
	switch {
	case i == 0:
		return 0, 1
	case i >= numBuckets-1:
		return float64(uint64(1) << 62), math.Inf(1)
	default:
		return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
	}
}

// Observe records one value. Negative values clamp into the lowest bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	casExtreme(&h.min, v, func(cur float64) bool { return v < cur })
	casExtreme(&h.max, v, func(cur float64) bool { return v > cur })
}

// casExtreme moves the float64-bits cell to v while better(current) holds;
// the cells start at ±Inf (NewHistogram), so any first observation wins.
func casExtreme(cell *atomic.Uint64, v float64, better func(float64) bool) {
	for {
		old := cell.Load()
		if !better(math.Float64frombits(old)) {
			return
		}
		if cell.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// ObserveDuration records d in milliseconds, the unit every latency
// histogram in the module uses.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Bucket is one populated histogram bucket in a snapshot.
type Bucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"` // math.MaxFloat64 stands in for +inf in JSON
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram with the
// quantiles the paper's distribution tables report.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's state and computes p50/p90/p99.
//
// Consistency under concurrent Observe: the bucket array is copied first
// and Count is derived from that copy, so Count always equals the sum of
// the reported buckets. Observe publishes bucket → count → sum → extremes,
// which means a racing snapshot can read a Sum or Min/Max that lags (or
// leads) the copied buckets by the handful of observations in flight. We
// repair rather than lock: Min/Max fall back to the populated buckets'
// bounds while the extreme cells are still at their ±Inf seeds, and Sum is
// clamped into [Count·Min, Count·Max] so the implied mean always lies
// within the observed range. The tolerance is therefore: Count and the
// buckets are exactly consistent; Sum is exact when quiescent and off by
// at most the in-flight observations' values (bounded by the clamp) under
// contention. TestSnapshotRace pins this.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	var counts [numBuckets]uint64
	total := uint64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.Count = total
	if total == 0 {
		return s
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	s.Min = math.Float64frombits(h.min.Load())
	s.Max = math.Float64frombits(h.max.Load())
	// A snapshot racing the very first observations can catch the extreme
	// cells before they move off their ±Inf seeds (Observe publishes them
	// last). Fall back to the populated buckets' bounds — ±Inf must never
	// escape (it breaks encoding/json) and quantile clamping needs finite
	// extremes.
	if math.IsInf(s.Min, 0) || math.IsInf(s.Max, 0) {
		lo := math.Inf(1)
		hi := 0.0
		for i, n := range counts {
			if n == 0 {
				continue
			}
			blo, bhi := bucketBounds(i)
			if blo < lo {
				lo = blo
			}
			if math.IsInf(bhi, 1) {
				bhi = math.MaxFloat64
			}
			if bhi > hi {
				hi = bhi
			}
		}
		if math.IsInf(s.Min, 0) {
			s.Min = lo
		}
		if math.IsInf(s.Max, 0) {
			s.Max = hi
		}
	}
	// Clamp Sum so the implied mean stays within [Min, Max] even when the
	// sum cell lags the copied buckets.
	if lo := float64(total) * s.Min; s.Sum < lo {
		s.Sum = lo
	}
	if hi := float64(total) * s.Max; s.Sum > hi {
		s.Sum = hi
	}
	for i, n := range counts {
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		if math.IsInf(hi, 1) {
			hi = math.MaxFloat64
		}
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
	}
	s.P50 = quantileFromBuckets(counts[:], total, 0.50, s.Min, s.Max)
	s.P90 = quantileFromBuckets(counts[:], total, 0.90, s.Min, s.Max)
	s.P99 = quantileFromBuckets(counts[:], total, 0.99, s.Min, s.Max)
	return s
}

// Quantile interpolates the q-th quantile from the snapshot's buckets,
// clamped to the observed [Min, Max]. It returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	var counts [numBuckets]uint64
	for _, b := range s.Buckets {
		counts[bucketOf(b.Lo)] = b.Count
	}
	return quantileFromBuckets(counts[:], s.Count, q, s.Min, s.Max)
}

// quantileFromBuckets finds the bucket holding rank q·total and linearly
// interpolates within it, clamping to the observed extremes so a
// single-bucket histogram reports exact-ish values.
func quantileFromBuckets(counts []uint64, total uint64, q float64, minV, maxV float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, n := range counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next || i == len(counts)-1 {
			lo, hi := bucketBounds(i)
			if math.IsInf(hi, 1) {
				hi = maxV
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			v := lo + frac*(hi-lo)
			if v < minV {
				v = minV
			}
			if v > maxV {
				v = maxV
			}
			return v
		}
		cum = next
	}
	return maxV
}

// Registry is a concurrent name → metric table. Get-or-create accessors
// hand out stable handles; hot paths hold the handle and never touch the
// registry again. The nil *Registry is valid: its accessors return nil
// handles, which are themselves no-ops.
type Registry struct {
	clock simnet.Clock

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry builds a registry on the given clock (nil means wall clock).
// The clock only timestamps snapshots; metrics themselves are clock-free,
// so one registry serves both simulated and wall-time daemons.
func NewRegistry(clock simnet.Clock) *Registry {
	if clock == nil {
		clock = simnet.WallClock{}
	}
	return &Registry{
		clock:      clock,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn to be evaluated at snapshot time under name —
// the bridge for subsystems that already keep their own counters (the
// cache's Stats, the authoritative query log). Re-registering replaces.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a deterministic point-in-time copy of every metric.
type Snapshot struct {
	At         time.Time                    `json:"at"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Map iteration order does not leak:
// consumers either index by name or marshal to JSON, which sorts keys.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{At: r.clock.Now()}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges)+len(r.gaugeFuncs) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
		for n, fn := range r.gaugeFuncs {
			s.Gauges[n] = fn()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON emits the expvar-style snapshot JSON served at /metrics.
// encoding/json sorts map keys, so the output is deterministic for a given
// registry state and clock.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// HistogramNames lists the registered histograms in sorted order.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.hists))
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
