package obs

import (
	"testing"
	"time"

	"dnsttl/internal/simnet"
)

// TestHistoryWindow drives a History on a virtual clock and checks the
// windowed counter rates and delta-histogram quantiles.
func TestHistoryWindow(t *testing.T) {
	clock := simnet.NewVirtualClock()
	reg := NewRegistry(clock)
	hits := reg.Counter("cache.hits")
	lat := reg.Histogram("latency_ms")
	hist := NewHistory(reg, 8)

	// t=0: empty baseline.
	hist.Sample()

	// First 10 s: 100 hits, slow answers.
	hits.Add(100)
	for i := 0; i < 50; i++ {
		lat.Observe(100)
	}
	clock.Advance(10 * time.Second)
	hist.Sample()

	// Next 10 s: 40 hits, fast answers.
	hits.Add(40)
	for i := 0; i < 50; i++ {
		lat.Observe(2)
	}
	clock.Advance(10 * time.Second)

	// A 10 s window sees only the second interval.
	d, ok := hist.Window(10 * time.Second)
	if !ok {
		t.Fatal("window returned no delta")
	}
	if d.Seconds != 10 {
		t.Fatalf("window spans %.1fs, want 10", d.Seconds)
	}
	cd := d.Counters["cache.hits"]
	if cd.Delta != 40 || cd.Rate != 4 {
		t.Fatalf("cache.hits delta %+v, want {40 4}", cd)
	}
	dh := d.Histograms["latency_ms"]
	if dh.Count != 50 {
		t.Fatalf("delta histogram count %d, want 50", dh.Count)
	}
	if dh.P50 > 4 {
		t.Fatalf("delta p50 %.1f should reflect only the fast window", dh.P50)
	}

	// A 30 s window falls back to the oldest snapshot and sees everything.
	d, ok = hist.Window(30 * time.Second)
	if !ok {
		t.Fatal("wide window returned no delta")
	}
	if cd := d.Counters["cache.hits"]; cd.Delta != 140 {
		t.Fatalf("wide window delta %d, want 140", cd.Delta)
	}
	if dh := d.Histograms["latency_ms"]; dh.Count != 100 {
		t.Fatalf("wide delta histogram count %d, want 100", dh.Count)
	}
}

// TestHistoryRingEviction fills the ring past capacity and checks the
// oldest snapshots are evicted.
func TestHistoryRingEviction(t *testing.T) {
	clock := simnet.NewVirtualClock()
	reg := NewRegistry(clock)
	c := reg.Counter("n")
	hist := NewHistory(reg, 4)
	for i := 0; i < 10; i++ {
		c.Inc()
		hist.Sample()
		clock.Advance(time.Second)
	}
	if hist.Len() != 4 {
		t.Fatalf("ring holds %d snapshots, want 4", hist.Len())
	}
	// The oldest retained snapshot is from iteration 6 (counter=7).
	d, ok := hist.Window(time.Hour)
	if !ok {
		t.Fatal("window returned no delta")
	}
	if got := d.Counters["n"].Delta; got != 3 {
		t.Fatalf("delta over full ring %d, want 3 (10 now - 7 oldest)", got)
	}
}

// TestHistoryNilAndEmpty pins the degenerate cases.
func TestHistoryNilAndEmpty(t *testing.T) {
	var h *History
	h.Sample()
	h.Stop()
	if h.Len() != 0 {
		t.Fatal("nil history has nonzero length")
	}
	if _, ok := h.Window(time.Second); ok {
		t.Fatal("nil history produced a window")
	}

	reg := NewRegistry(simnet.NewVirtualClock())
	h2 := NewHistory(reg, 0)
	if _, ok := h2.Window(time.Second); ok {
		t.Fatal("empty history produced a window")
	}
}

// TestHistoryStartStop exercises the wall-clock sampling loop.
func TestHistoryStartStop(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Counter("x").Inc()
	h := NewHistory(reg, 16)
	h.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for h.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	if h.Len() < 3 {
		t.Fatalf("sampler collected %d snapshots, want >= 3", h.Len())
	}
}
