package obs

import (
	"math"
	"sync"
	"testing"
)

// TestSnapshotRace pins the documented Snapshot consistency contract while
// observations race the snapshot: Count equals the bucket total, Sum
// equals Count·v exactly when every observer writes the same value v (the
// clamp makes this an identity, not an approximation), the extremes stay
// finite, and quantiles stay within [Min, Max]. Run under -race.
func TestSnapshotRace(t *testing.T) {
	const v = 8.0 // exact in float64, lands in bucket [8,16)
	const goroutines = 4
	const perG = 200000
	h := NewHistogram()
	observersDone := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(v)
			}
		}()
	}
	go func() { wg.Wait(); close(observersDone) }()
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		var bucketTotal uint64
		for _, b := range s.Buckets {
			bucketTotal += b.Count
		}
		if s.Count != bucketTotal {
			t.Fatalf("Count %d != bucket total %d", s.Count, bucketTotal)
		}
		if s.Count == 0 {
			continue
		}
		if math.IsInf(s.Min, 0) || math.IsInf(s.Max, 0) || math.IsNaN(s.Sum) {
			t.Fatalf("non-finite snapshot fields: min=%v max=%v sum=%v", s.Min, s.Max, s.Sum)
		}
		// All observations are the constant v, so Min/Max are either the
		// true extremes (v) or the bucket-bound fallback enclosing v.
		if s.Min > v || s.Max < v {
			t.Fatalf("extremes exclude the observed value: min=%v max=%v", s.Min, s.Max)
		}
		// The clamp guarantees Count·Min ≤ Sum ≤ Count·Max; with a single
		// observed value and exact extremes that means Sum == Count·v.
		if s.Min == v && s.Max == v && s.Sum != float64(s.Count)*v {
			t.Fatalf("Sum %v != Count %d × %v", s.Sum, s.Count, v)
		}
		if lo, hi := float64(s.Count)*s.Min, float64(s.Count)*s.Max; s.Sum < lo || s.Sum > hi {
			t.Fatalf("Sum %v outside clamp [%v, %v]", s.Sum, lo, hi)
		}
		for _, q := range []float64{s.P50, s.P90, s.P99} {
			if q < s.Min || q > s.Max {
				t.Fatalf("quantile %v outside [%v, %v]", q, s.Min, s.Max)
			}
		}
	}
	<-observersDone

	// Quiescent: everything is exact.
	s := h.Snapshot()
	if s.Count != goroutines*perG || s.Min != v || s.Max != v || s.Sum != float64(s.Count)*v {
		t.Fatalf("quiescent snapshot inexact: %+v (want count %d)", s, goroutines*perG)
	}
}
