package obs

import (
	"strings"
	"testing"

	"dnsttl/internal/simnet"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"resolver.cache.hits": "resolver_cache_hits",
		"qlog.bytes_written":  "qlog_bytes_written",
		"9lives":              "_9lives",
		"a-b c":               "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry(simnet.NewVirtualClock())
	reg.Counter("resolver.resolutions").Add(7)
	reg.Gauge("cache.bytes").Set(1234.5)
	reg.GaugeFunc("cache.entries", func() float64 { return 3 })
	h := reg.Histogram("resolver.latency_ms")
	for _, v := range []float64{0.5, 3, 3, 10, 200} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := reg.WritePrometheusText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE resolver_resolutions counter\nresolver_resolutions 7\n",
		"# TYPE cache_bytes gauge\ncache_bytes 1234.5\n",
		"cache_entries 3\n",
		"# TYPE resolver_latency_ms histogram\n",
		`resolver_latency_ms_bucket{le="+Inf"} 5`,
		"resolver_latency_ms_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// The exposition must pass our own promtool-style lint.
	if problems := LintExposition(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("lint problems in own exposition: %v\n%s", problems, out)
	}

	// Determinism: a second render is byte-identical.
	var sb2 strings.Builder
	if err := reg.WritePrometheusText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("exposition output is not deterministic")
	}
}

func TestLintExpositionCatchesViolations(t *testing.T) {
	for name, tc := range map[string]struct {
		in   string
		want string // substring of some reported problem
	}{
		"no type line": {
			in:   "orphan_metric 3\n",
			want: "no preceding # TYPE",
		},
		"bad value": {
			in:   "# TYPE m counter\nm notanumber\n",
			want: "does not parse",
		},
		"bad name": {
			in:   "# TYPE m counter\nm-x 3\n",
			want: "invalid metric name",
		},
		"duplicate series": {
			in:   "# TYPE m counter\nm 1\nm 2\n",
			want: "duplicate series",
		},
		"duplicate type": {
			in:   "# TYPE m counter\n# TYPE m gauge\nm 1\n",
			want: "duplicate TYPE",
		},
		"unknown type": {
			in:   "# TYPE m widget\nm 1\n",
			want: "unknown metric type",
		},
		"non-monotonic buckets": {
			in: "# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				`h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\n" +
				"h_sum 10\nh_count 5\n",
			want: "below preceding bucket",
		},
		"missing inf bucket": {
			in: "# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				"h_sum 10\nh_count 5\n",
			want: `missing le="+Inf"`,
		},
		"inf bucket disagrees with count": {
			in: "# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 4` + "\n" +
				"h_sum 10\nh_count 5\n",
			want: "!= _count",
		},
		"missing sum": {
			in: "# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 5` + "\n" +
				"h_count 5\n",
			want: "missing _sum",
		},
	} {
		t.Run(name, func(t *testing.T) {
			problems := LintExposition(strings.NewReader(tc.in))
			found := false
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("lint missed %q; reported: %v", tc.want, problems)
			}
		})
	}

	// And a clean hand-written exposition passes.
	clean := "# TYPE up gauge\nup 1\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="0.5"} 2` + "\n" +
		`h_bucket{le="+Inf"} 5` + "\n" +
		"h_sum 12.5\nh_count 5\n"
	if problems := LintExposition(strings.NewReader(clean)); len(problems) != 0 {
		t.Fatalf("clean exposition reported problems: %v", problems)
	}
}
