package obs

import (
	"fmt"
	"net"
	"net/http"
	"strings"
)

// NewHandler builds the live-introspection mux both daemons mount:
//
//	/metrics        expvar-style JSON snapshot of the registry
//	/trace          list of retained trace names
//	/trace?name=N   rendered span tree of the last resolution of N
//
// Either argument may be nil; the corresponding endpoint then reports that
// the facility is disabled.
func NewHandler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if reg == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		if tr == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		name := req.URL.Query().Get("name")
		if name == "" {
			names := tr.Names()
			if len(names) == 0 {
				fmt.Fprintln(w, "no traces retained yet")
				return
			}
			fmt.Fprintln(w, "retained traces (query with ?name=...):")
			for _, n := range names {
				fmt.Fprintf(w, "  %s\n", n)
			}
			return
		}
		sp, ok := tr.Find(name)
		if !ok {
			http.Error(w, fmt.Sprintf("no trace for %q", name), http.StatusNotFound)
			return
		}
		_, _ = w.Write([]byte(sp.String()))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "endpoints: /metrics /trace /trace?name=<qname>")
	})
	return mux
}

// Serve binds addr and serves the introspection handler until the returned
// close function is called. It returns the bound address, so addr may use
// port 0 in tests.
func Serve(addr string, reg *Registry, tr *Tracer) (bound string, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandler(reg, tr)}
	go func() {
		if serveErr := srv.Serve(ln); serveErr != nil && !strings.Contains(serveErr.Error(), "closed") {
			_ = serveErr
		}
	}()
	return ln.Addr().String(), srv.Close, nil
}
