package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// NewHandler builds the live-introspection mux both daemons mount:
//
//	/metrics              expvar-style JSON snapshot of the registry
//	/metrics?format=prom  Prometheus text exposition (also via Accept:
//	                      text/plain); JSON stays the default
//	/metrics?window=30s   windowed delta (rates, delta histograms) when a
//	                      History is attached (NewHandlerWith)
//	/trace                list of retained trace names
//	/trace?name=N         rendered span tree of the last resolution of N
//
// Either argument may be nil; the corresponding endpoint then reports that
// the facility is disabled.
func NewHandler(reg *Registry, tr *Tracer) http.Handler {
	return NewHandlerWith(reg, tr, nil)
}

// NewHandlerWith is NewHandler plus an optional History backing
// /metrics?window= queries.
func NewHandlerWith(reg *Registry, tr *Tracer, hist *History) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if reg == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		if win := req.URL.Query().Get("window"); win != "" {
			d, err := time.ParseDuration(win)
			if err != nil || d <= 0 {
				http.Error(w, fmt.Sprintf("bad window %q (want a positive Go duration)", win), http.StatusBadRequest)
				return
			}
			if hist == nil {
				http.Error(w, "windowed metrics disabled (no history attached)", http.StatusNotFound)
				return
			}
			delta, ok := hist.Window(d)
			if !ok {
				http.Error(w, "no baseline snapshot retained yet", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(delta)
			return
		}
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheusText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		if tr == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		name := req.URL.Query().Get("name")
		if name == "" {
			names := tr.Names()
			if len(names) == 0 {
				fmt.Fprintln(w, "no traces retained yet")
				return
			}
			fmt.Fprintln(w, "retained traces (query with ?name=...):")
			for _, n := range names {
				fmt.Fprintf(w, "  %s\n", n)
			}
			return
		}
		sp, ok := tr.Find(name)
		if !ok {
			http.Error(w, fmt.Sprintf("no trace for %q", name), http.StatusNotFound)
			return
		}
		_, _ = w.Write([]byte(sp.String()))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "endpoints: /metrics /trace /trace?name=<qname>")
	})
	return mux
}

// wantsPrometheus decides the /metrics representation: ?format=prom (or
// "prometheus"/"text") selects the text exposition, as does an Accept
// header preferring text/plain. JSON remains the default so existing
// scrapers keep working.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prom", "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	if accept == "" || strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain")
}

// Serve binds addr and serves the introspection handler until the returned
// close function is called. It returns the bound address, so addr may use
// port 0 in tests.
func Serve(addr string, reg *Registry, tr *Tracer) (bound string, closeFn func() error, err error) {
	return ServeWith(addr, reg, tr, nil)
}

// ServeWith is Serve plus an optional History for /metrics?window=.
func ServeWith(addr string, reg *Registry, tr *Tracer, hist *History) (bound string, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandlerWith(reg, tr, hist)}
	go func() {
		if serveErr := srv.Serve(ln); serveErr != nil && !strings.Contains(serveErr.Error(), "closed") {
			_ = serveErr
		}
	}()
	return ln.Addr().String(), srv.Close, nil
}
