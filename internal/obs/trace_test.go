package obs

import (
	"strings"
	"testing"
	"time"

	"dnsttl/internal/simnet"
)

func TestSpanTree(t *testing.T) {
	clock := simnet.NewVirtualClock()
	tr := NewTracer(clock)
	root := tr.Start("resolve www.example.org. A")
	c := root.Child("cache lookup")
	c.Annotate("outcome", "miss")
	c.Finish()
	step := root.Child("step 1")
	step.Annotate("zone", ".")
	ex := step.Child("exchange")
	ex.Annotate("server", "198.41.0.4")
	clock.Advance(10 * time.Millisecond)
	ex.AnnotateUint("rtt_us", 10000)
	ex.Finish()
	step.Finish()
	tr.Keep(root)

	if root.Duration() != 10*time.Millisecond {
		t.Fatalf("root duration = %v, want 10ms", root.Duration())
	}
	if got := ex.Attr("server"); got != "198.41.0.4" {
		t.Fatalf("Attr(server) = %q", got)
	}
	if got := ex.Attr("absent"); got != "" {
		t.Fatalf("Attr(absent) = %q, want empty", got)
	}

	out := root.String()
	for _, want := range []string{"resolve www.example.org. A", "cache lookup", "outcome=miss",
		"exchange", "server=198.41.0.4", "rtt_us=10000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, out)
		}
	}

	spans := 0
	root.Walk(func(depth int, sp *Span) {
		spans++
		if depth > 2 {
			t.Fatalf("unexpected depth %d for %s", depth, sp.Name)
		}
	})
	if spans != 4 {
		t.Fatalf("walked %d spans, want 4", spans)
	}
}

func TestTracerFindAndEvict(t *testing.T) {
	tr := NewTracer(simnet.NewVirtualClock())
	for i := 0; i < tracerKeep+10; i++ {
		root := tr.Start("resolve q" + strings.Repeat("x", i%3) + string(rune('a'+i%26)))
		tr.Keep(root)
	}
	if n := len(tr.Names()); n > tracerKeep {
		t.Fatalf("retained %d traces, want ≤ %d", n, tracerKeep)
	}
	root := tr.Start("resolve www.cachetest.net. A")
	tr.Keep(root)
	if _, ok := tr.Find("resolve www.cachetest.net. A"); !ok {
		t.Fatal("exact lookup failed")
	}
	if sp, ok := tr.Find("cachetest"); !ok || sp != root {
		t.Fatal("substring lookup failed")
	}
	if _, ok := tr.Find("nonexistent.example"); ok {
		t.Fatal("lookup of unknown name should fail")
	}
	// Keeping the same name twice replaces, not duplicates.
	again := tr.Start("resolve www.cachetest.net. A")
	tr.Keep(again)
	if sp, _ := tr.Find("resolve www.cachetest.net. A"); sp != again {
		t.Fatal("re-Keep did not replace the retained trace")
	}
}

// TestNilSpanCallsAllocFree pins the disabled-tracing cost: every span
// method on a nil receiver must be zero-alloc (one pointer check).
func TestNilSpanCallsAllocFree(t *testing.T) {
	var sp *Span
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		c := sp.Child("cache lookup")
		c.Annotate("outcome", "hit")
		c.AnnotateUint("remaining_ttl", 300)
		c.Finish()
		_ = c.Duration()
		tr.Keep(sp)
		_ = tr.Start("")
	})
	if allocs >= 0.5 {
		t.Errorf("nil span/tracer calls: %.2f allocs/op, want 0", allocs)
	}
	if sp.String() != "" || sp.Attr("x") != "" {
		t.Fatal("nil span readers must return zero values")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if sp := tr.Start("x"); sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	if _, ok := tr.Find("x"); ok {
		t.Fatal("nil tracer Find must miss")
	}
	if tr.Names() != nil {
		t.Fatal("nil tracer Names must be nil")
	}
}
