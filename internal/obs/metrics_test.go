package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"

	"dnsttl/internal/simnet"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry(nil)
	c := reg.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if reg.Counter("a.count") != c {
		t.Fatal("second lookup returned a different handle")
	}
	g := reg.Gauge("a.gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var reg *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	reg.GaugeFunc("x", func() float64 { return 1 })
	if s := reg.Snapshot(); s.Counters != nil || s.Gauges != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestHistogramZeroObservations pins the empty-histogram snapshot: count 0,
// all quantiles 0, no buckets.
func TestHistogramZeroObservations(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram snapshot not zero: %+v", s)
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty Quantile = %v, want 0", q)
	}
}

// TestHistogramSingleBucket checks quantiles when every observation lands
// in one bucket: interpolation must stay clamped to [min, max].
func TestHistogramSingleBucket(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(10) // bucket [8, 16)
	}
	s := h.Snapshot()
	if s.Count != 100 || len(s.Buckets) != 1 {
		t.Fatalf("want one bucket of 100, got %+v", s)
	}
	if s.Min != 10 || s.Max != 10 {
		t.Fatalf("extremes = [%v, %v], want [10, 10]", s.Min, s.Max)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := s.Quantile(q); got != 10 {
			t.Fatalf("Quantile(%v) = %v, want clamp to 10", q, got)
		}
	}
	if s.P50 != 10 || s.P90 != 10 || s.P99 != 10 {
		t.Fatalf("snapshot percentiles %v/%v/%v, want all 10", s.P50, s.P90, s.P99)
	}
}

// TestHistogramOverflowBucket checks values beyond the top bucket boundary
// land in the overflow bucket and quantiles clamp to the observed max.
func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	huge := math.MaxFloat64 / 2
	h.Observe(huge)
	h.Observe(1e30)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if len(s.Buckets) != 1 {
		t.Fatalf("want one (overflow) bucket, got %+v", s.Buckets)
	}
	if got := s.Buckets[0].Lo; got != float64(uint64(1)<<62) {
		t.Fatalf("overflow bucket lo = %g", got)
	}
	if s.Max != huge {
		t.Fatalf("max = %g, want %g", s.Max, huge)
	}
	if q := s.Quantile(0.99); q > huge || q < 1e30 {
		t.Fatalf("overflow quantile %g outside [1e30, max]", q)
	}
	// Negative and sub-1 values take the low bucket, never panic.
	h.Observe(-5)
	h.Observe(0.25)
	if s := h.Snapshot(); s.Min != -5 {
		t.Fatalf("min = %v, want -5", s.Min)
	}
}

// TestHistogramConcurrentObserve drives Observe from 8 goroutines and
// verifies no observation is lost and the sum/extremes are exact.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) / 100)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	n := float64(goroutines * perG)
	wantSum := (n - 1) * n / 2 / 100
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if s.Min != 0 || s.Max != (n-1)/100 {
		t.Fatalf("extremes [%v, %v], want [0, %v]", s.Min, s.Max, (n-1)/100)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

// TestHistogramQuantileMonotone checks quantiles are ordered and bracketed
// for a spread of observations.
func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if !(s.P50 <= s.P90 && s.P90 <= s.P99) {
		t.Fatalf("quantiles not monotone: %v %v %v", s.P50, s.P90, s.P99)
	}
	if s.P50 < 256 || s.P50 > 1000 {
		t.Fatalf("p50 = %v, implausible for 1..1000", s.P50)
	}
	if s.P99 < s.P50 || s.P99 > 1000 {
		t.Fatalf("p99 = %v out of range", s.P99)
	}
}

// TestSnapshotDeterministicUnderVirtualClock pins telemetry determinism on
// the simulated substrate: with a VirtualClock and no metric activity
// between snapshots, consecutive snapshots (and their JSON rendering) are
// byte-identical — including the timestamp.
func TestSnapshotDeterministicUnderVirtualClock(t *testing.T) {
	clock := simnet.NewVirtualClock()
	reg := NewRegistry(clock)
	reg.Counter("resolver.resolutions").Add(7)
	reg.Gauge("cache.entries").Set(3)
	reg.GaugeFunc("cache.hits", func() float64 { return 12 })
	h := reg.Histogram("resolver.latency_ms")
	for i := 0; i < 50; i++ {
		h.Observe(float64(i))
	}

	var a, b bytes.Buffer
	if err := reg.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots differ under a frozen virtual clock:\n%s\nvs\n%s", a.String(), b.String())
	}
	s1 := reg.Snapshot()
	if !s1.At.Equal(simnet.Epoch) {
		t.Fatalf("snapshot At = %v, want virtual epoch", s1.At)
	}
	clock.Advance(time.Hour)
	if s2 := reg.Snapshot(); !s2.At.Equal(simnet.Epoch.Add(time.Hour)) {
		t.Fatalf("snapshot At did not follow the virtual clock: %v", s2.At)
	}
}

// TestCounterIncrementAllocFree pins the metric hot paths to zero
// allocations: counter increments, gauge sets, and histogram observes.
func TestCounterIncrementAllocFree(t *testing.T) {
	reg := NewRegistry(nil)
	c := reg.Counter("hot.counter")
	g := reg.Gauge("hot.gauge")
	h := reg.Histogram("hot.hist")
	if allocs := testing.AllocsPerRun(200, func() { c.Inc() }); allocs >= 0.5 {
		t.Errorf("Counter.Inc: %.2f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { g.Set(4) }); allocs >= 0.5 {
		t.Errorf("Gauge.Set: %.2f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { h.Observe(12.5) }); allocs >= 0.5 {
		t.Errorf("Histogram.Observe: %.2f allocs/op, want 0", allocs)
	}
	// Nil handles — the disabled-telemetry configuration — are 0-alloc too.
	var nc *Counter
	var nh *Histogram
	if allocs := testing.AllocsPerRun(200, func() { nc.Inc(); nh.Observe(1) }); allocs >= 0.5 {
		t.Errorf("nil handles: %.2f allocs/op, want 0", allocs)
	}
}

func TestRegistryHistogramNames(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Histogram("b")
	reg.Histogram("a")
	names := reg.HistogramNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v, want sorted [a b]", names)
	}
}
