package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LintExposition is a self-contained, stdlib-only analogue of
// `promtool check metrics`: it parses a Prometheus text-exposition stream
// and returns every violation found. An empty slice means the exposition
// is clean. Checks:
//
//   - line syntax: "name value", "name{labels} value", or "# TYPE/HELP …"
//   - metric and label names restricted to the exposition charset
//   - sample values parse as Go floats (Inf/NaN spellings included)
//   - every sample's base name is covered by a preceding # TYPE line
//   - no duplicate # TYPE lines and no duplicate series
//   - histogram invariants: _bucket cumulative counts are monotonically
//     non-decreasing in le order, an le="+Inf" bucket exists and equals
//     _count, and _sum/_count are present
func LintExposition(r io.Reader) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	types := map[string]string{} // base name → declared type
	seen := map[string]bool{}    // full series (name+labels) → emitted
	type histState struct {
		buckets map[float64]uint64 // le → cumulative count
		sum     *float64
		count   *uint64
	}
	hists := map[string]*histState{}
	hist := func(base string) *histState {
		h := hists[base]
		if h == nil {
			h = &histState{buckets: map[float64]uint64{}}
			hists[base] = h
		}
		return h
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				addf("line %d: unknown comment form %q (want # TYPE or # HELP)", lineNo, line)
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					addf("line %d: malformed TYPE line %q", lineNo, line)
					continue
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					addf("line %d: invalid metric name %q in TYPE line", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					addf("line %d: duplicate TYPE line for %q", lineNo, name)
				}
				types[name] = typ
			}
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			addf("line %d: %v", lineNo, err)
			continue
		}
		if !validMetricName(name) {
			addf("line %d: invalid metric name %q", lineNo, name)
			continue
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			addf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true

		base, suffix := splitHistogramSuffix(name)
		declared, ok := types[name]
		if !ok && suffix != "" {
			declared, ok = types[base]
		}
		if !ok {
			addf("line %d: sample %q has no preceding # TYPE line", lineNo, name)
			continue
		}
		if declared != "histogram" && declared != "summary" {
			continue
		}
		switch suffix {
		case "_bucket":
			le, lerr := leLabel(labels)
			if lerr != nil {
				addf("line %d: %v", lineNo, lerr)
				continue
			}
			cum := uint64(value)
			if float64(cum) != value || value < 0 {
				addf("line %d: bucket count %v is not a non-negative integer", lineNo, value)
			}
			hist(base).buckets[le] = cum
		case "_sum":
			v := value
			hist(base).sum = &v
		case "_count":
			c := uint64(value)
			if float64(c) != value || value < 0 {
				addf("line %d: _count %v is not a non-negative integer", lineNo, value)
			}
			hist(base).count = &c
		default:
			addf("line %d: histogram %q sample lacks _bucket/_sum/_count suffix", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		addf("read error: %v", err)
	}

	// Cross-line histogram invariants, in sorted order for determinism.
	histNames := make([]string, 0, len(hists))
	for n := range hists {
		histNames = append(histNames, n)
	}
	sort.Strings(histNames)
	for _, n := range histNames {
		h := hists[n]
		if types[n] != "histogram" {
			continue
		}
		if h.sum == nil {
			addf("histogram %q: missing _sum", n)
		}
		if h.count == nil {
			addf("histogram %q: missing _count", n)
		}
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := uint64(0)
		hasInf := false
		for _, le := range les {
			c := h.buckets[le]
			if c < prev {
				addf("histogram %q: bucket le=%v count %d below preceding bucket %d", n, le, c, prev)
			}
			prev = c
			if le > 1e308 { // +Inf sorts last
				hasInf = true
				if h.count != nil && c != *h.count {
					addf("histogram %q: le=\"+Inf\" bucket %d != _count %d", n, c, *h.count)
				}
			}
		}
		if !hasInf {
			addf("histogram %q: missing le=\"+Inf\" bucket", n)
		}
	}
	return problems
}

// validMetricName checks the exposition-format metric name charset.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// parseSampleLine splits "name{labels} value [timestamp]" into parts.
func parseSampleLine(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		k := strings.IndexAny(rest, " \t")
		if k < 0 {
			return "", "", 0, fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:k]
		rest = strings.TrimSpace(rest[k:])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("sample %q has %d value fields, want 1-2", line, len(fields))
	}
	v, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("sample value %q does not parse: %v", fields[0], perr)
	}
	return name, labels, v, nil
}

// splitHistogramSuffix returns the base name and the recognized histogram
// suffix ("" when none).
func splitHistogramSuffix(name string) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	return name, ""
}

// leLabel extracts the le="…" value from a bucket's label set.
func leLabel(labels string) (float64, error) {
	for _, part := range strings.Split(labels, ",") {
		part = strings.TrimSpace(part)
		if !strings.HasPrefix(part, "le=") {
			continue
		}
		v := strings.TrimPrefix(part, "le=")
		v = strings.Trim(v, `"`)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("le label %q does not parse: %v", v, err)
		}
		return f, nil
	}
	return 0, fmt.Errorf("bucket labels %q lack le", labels)
}
