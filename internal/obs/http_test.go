package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dnsttl/internal/simnet"
)

func TestMetricsEndpoint(t *testing.T) {
	clock := simnet.NewVirtualClock()
	reg := NewRegistry(clock)
	reg.Counter("cache.hits").Add(12)
	reg.Histogram("resolver.latency_ms").Observe(42)

	srv := httptest.NewServer(NewHandler(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics endpoint emitted invalid JSON: %v\n%s", err, body)
	}
	if snap.Counters["cache.hits"] != 12 {
		t.Fatalf("cache.hits = %d, want 12", snap.Counters["cache.hits"])
	}
	h := snap.Histograms["resolver.latency_ms"]
	if h.Count != 1 || h.P50 != 42 {
		t.Fatalf("latency histogram %+v, want count 1 p50 42", h)
	}

	// /trace without a tracer 404s.
	tresp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace without tracer: status %d, want 404", tresp.StatusCode)
	}
}

func TestTraceEndpoint(t *testing.T) {
	tr := NewTracer(simnet.NewVirtualClock())
	root := tr.Start("www.example.org. A")
	root.Child("cache lookup").Annotate("outcome", "miss")
	tr.Keep(root)

	srv := httptest.NewServer(NewHandler(nil, tr))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/trace"); code != 200 || !strings.Contains(body, "www.example.org. A") {
		t.Fatalf("trace listing: %d %q", code, body)
	}
	if code, body := get("/trace?name=www.example.org.+A"); code != 200 ||
		!strings.Contains(body, "outcome=miss") {
		t.Fatalf("trace lookup: %d %q", code, body)
	}
	if code, _ := get("/trace?name=unknown.test"); code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", code)
	}
	if code, _ := get("/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics without registry: %d, want 404", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
}

// TestMetricsContentNegotiation pins the /metrics representations: JSON by
// default (existing scrapers and scripts/metrics_smoke.sh depend on it),
// Prometheus text via ?format=prom or an Accept header preferring
// text/plain, and explicit ?format=json winning over Accept.
func TestMetricsContentNegotiation(t *testing.T) {
	reg := NewRegistry(simnet.NewVirtualClock())
	reg.Counter("resolver.resolutions").Inc()
	reg.Histogram("latency_ms").Observe(5)

	srv := httptest.NewServer(NewHandler(reg, nil))
	defer srv.Close()

	get := func(path, accept string) (string, string) {
		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, b)
		}
		return resp.Header.Get("Content-Type"), string(b)
	}

	// Default: JSON.
	ct, body := get("/metrics", "")
	if !strings.Contains(ct, "application/json") || !json.Valid([]byte(body)) {
		t.Fatalf("default /metrics: ct=%q, valid JSON=%v", ct, json.Valid([]byte(body)))
	}

	// ?format=prom: text exposition that passes our lint.
	ct, body = get("/metrics?format=prom", "")
	if !strings.Contains(ct, "text/plain") {
		t.Fatalf("?format=prom content type %q", ct)
	}
	if !strings.Contains(body, "# TYPE resolver_resolutions counter") {
		t.Fatalf("exposition missing TYPE line:\n%s", body)
	}
	if problems := LintExposition(strings.NewReader(body)); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}

	// Accept: text/plain negotiates the exposition too.
	ct, _ = get("/metrics", "text/plain")
	if !strings.Contains(ct, "text/plain") {
		t.Fatalf("Accept: text/plain got content type %q", ct)
	}

	// Explicit ?format=json wins over Accept.
	ct, _ = get("/metrics?format=json", "text/plain")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("?format=json with Accept text/plain got %q", ct)
	}

	// A browser-ish Accept listing JSON keeps JSON.
	ct, _ = get("/metrics", "application/json, text/plain;q=0.5")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("Accept with application/json got %q", ct)
	}
}

// TestMetricsWindowEndpoint pins /metrics?window= behavior with and
// without an attached History.
func TestMetricsWindowEndpoint(t *testing.T) {
	clock := simnet.NewVirtualClock()
	reg := NewRegistry(clock)
	c := reg.Counter("resolver.resolutions")
	hist := NewHistory(reg, 8)
	hist.Sample()
	c.Add(30)
	clock.Advance(10 * time.Second)

	srv := httptest.NewServer(NewHandlerWith(reg, nil, hist))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics?window=30s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window query: status %d: %s", resp.StatusCode, body)
	}
	var d Delta
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("window response not JSON: %v\n%s", err, body)
	}
	if cd := d.Counters["resolver.resolutions"]; cd.Delta != 30 || cd.Rate != 3 {
		t.Fatalf("windowed delta %+v, want {30 3}", cd)
	}

	// Malformed window: 400.
	resp, _ = http.Get(srv.URL + "/metrics?window=banana")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad window: status %d, want 400", resp.StatusCode)
	}

	// No history attached: 404.
	srv2 := httptest.NewServer(NewHandler(reg, nil))
	defer srv2.Close()
	resp, _ = http.Get(srv2.URL + "/metrics?window=30s")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("window without history: status %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentScrapeWhileObserve hammers every endpoint while observers
// mutate the registry — run under -race. Every scrape must return a
// well-formed document.
func TestConcurrentScrapeWhileObserve(t *testing.T) {
	reg := NewRegistry(nil)
	hist := NewHistory(reg, 8)
	hist.Sample()
	tr := NewTracer(nil)
	srv := httptest.NewServer(NewHandlerWith(reg, tr, hist))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("load.ops")
			h := reg.Histogram("load.latency_ms")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(float64(i % 1000))
					if i%100 == 0 {
						sp := tr.Start("scrape.test A")
						tr.Keep(sp)
						hist.Sample()
					}
				}
			}
		}(g)
	}

	paths := []string{"/metrics", "/metrics?format=prom", "/metrics?window=1s", "/trace", "/trace?name=nope"}
	for i := 0; i < 50; i++ {
		p := paths[i%len(paths)]
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch p {
		case "/metrics":
			if resp.StatusCode != 200 || !json.Valid(body) {
				t.Fatalf("scrape %s: status %d, JSON valid %v", p, resp.StatusCode, json.Valid(body))
			}
		case "/metrics?format=prom":
			if resp.StatusCode != 200 {
				t.Fatalf("scrape %s: status %d", p, resp.StatusCode)
			}
			if problems := LintExposition(strings.NewReader(string(body))); len(problems) != 0 {
				t.Fatalf("scrape %s: lint problems %v\n%s", p, problems, body)
			}
		case "/metrics?window=1s":
			if resp.StatusCode != 200 && resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("scrape %s: status %d", p, resp.StatusCode)
			}
		case "/trace?name=nope":
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("scrape %s: status %d, want 404", p, resp.StatusCode)
			}
		default:
			if resp.StatusCode != 200 {
				t.Fatalf("scrape %s: status %d", p, resp.StatusCode)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestServe(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Counter("x").Inc()
	addr, closeFn, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "\"x\": 1") {
		t.Fatalf("served metrics missing counter: %s", body)
	}
}
