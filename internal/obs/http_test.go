package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dnsttl/internal/simnet"
)

func TestMetricsEndpoint(t *testing.T) {
	clock := simnet.NewVirtualClock()
	reg := NewRegistry(clock)
	reg.Counter("cache.hits").Add(12)
	reg.Histogram("resolver.latency_ms").Observe(42)

	srv := httptest.NewServer(NewHandler(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics endpoint emitted invalid JSON: %v\n%s", err, body)
	}
	if snap.Counters["cache.hits"] != 12 {
		t.Fatalf("cache.hits = %d, want 12", snap.Counters["cache.hits"])
	}
	h := snap.Histograms["resolver.latency_ms"]
	if h.Count != 1 || h.P50 != 42 {
		t.Fatalf("latency histogram %+v, want count 1 p50 42", h)
	}

	// /trace without a tracer 404s.
	tresp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace without tracer: status %d, want 404", tresp.StatusCode)
	}
}

func TestTraceEndpoint(t *testing.T) {
	tr := NewTracer(simnet.NewVirtualClock())
	root := tr.Start("www.example.org. A")
	root.Child("cache lookup").Annotate("outcome", "miss")
	tr.Keep(root)

	srv := httptest.NewServer(NewHandler(nil, tr))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/trace"); code != 200 || !strings.Contains(body, "www.example.org. A") {
		t.Fatalf("trace listing: %d %q", code, body)
	}
	if code, body := get("/trace?name=www.example.org.+A"); code != 200 ||
		!strings.Contains(body, "outcome=miss") {
		t.Fatalf("trace lookup: %d %q", code, body)
	}
	if code, _ := get("/trace?name=unknown.test"); code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", code)
	}
	if code, _ := get("/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics without registry: %d, want 404", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Counter("x").Inc()
	addr, closeFn, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "\"x\": 1") {
		t.Fatalf("served metrics missing counter: %s", body)
	}
}
