package authoritative

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
)

func TestTCPServerIntegration(t *testing.T) {
	s := testServer(t)
	ts := &TCPServer{Server: s}
	addr, err := ts.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	q := dnswire.NewIterativeQuery(7, dnswire.NewName("www.example.org"), dnswire.TypeA)
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	respWire, rtt, err := TCPExchange(addr, wire, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v", rtt)
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 7 || len(resp.Answer) != 1 {
		t.Errorf("tcp response = %s", resp)
	}
	if err := ts.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestTCPExchangeConnRefused(t *testing.T) {
	s := testServer(t)
	ts := &TCPServer{Server: s}
	addr, err := ts.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if _, _, err := TCPExchange(addr, []byte{0}, 500*time.Millisecond); err == nil {
		t.Errorf("exchange against closed server should fail")
	}
}

func TestFrameCodec(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("frame = %v", got)
	}
	// Zero-length frames rejected.
	buf.Reset()
	buf.Write([]byte{0, 0})
	if _, err := readFrame(&buf); err == nil {
		t.Errorf("zero-length frame should error")
	}
	// Short frames rejected.
	buf.Reset()
	buf.Write([]byte{0, 10, 1, 2})
	if _, err := readFrame(&buf); err == nil {
		t.Errorf("short frame should error")
	}
	// Oversize messages rejected on write.
	if err := writeFrame(&buf, make([]byte, 70000)); err == nil {
		t.Errorf("oversize frame should error")
	}
}

func TestUDPTruncationRespectsEDNS(t *testing.T) {
	// A zone with enough TXT data to exceed 512 bytes.
	s := testServer(t)
	z := s.Zone(dnswire.NewName("example.org"))
	for i := 0; i < 10; i++ {
		z.MustAdd(dnswire.NewTXT("big.example.org", 60, fmt.Sprintf("%d-%s", i, strings.Repeat("x", 100))))
	}
	ask := func(withOPT bool) *dnswire.Message {
		q := dnswire.NewIterativeQuery(3, dnswire.NewName("big.example.org"), dnswire.TypeTXT)
		if withOPT {
			q.AddAdditional(dnswire.RR{Name: dnswire.Root, Type: dnswire.TypeOPT,
				Data: dnswire.OPT{UDPSize: 4096}})
		}
		wire, err := dnswire.Encode(q)
		if err != nil {
			t.Fatal(err)
		}
		respWire := s.ServeDNS(wire, clientAddr)
		resp, err := dnswire.Decode(respWire)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	plain := ask(false)
	if !plain.Header.TC || len(plain.Answer) != 0 {
		t.Errorf("non-EDNS query over 512 bytes must truncate: TC=%v answers=%d",
			plain.Header.TC, len(plain.Answer))
	}
	edns := ask(true)
	if edns.Header.TC || len(edns.Answer) == 0 {
		t.Errorf("EDNS query should fit: TC=%v answers=%d", edns.Header.TC, len(edns.Answer))
	}
}
