package authoritative

import (
	"crypto/tls"
	"encoding/base64"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"time"

	"dnsttl/internal/simnet"
)

// DoHPath is the well-known DNS-over-HTTPS endpoint path (RFC 8484 §4).
const DoHPath = "/dns-query"

// DoHServer serves DNS over HTTPS (RFC 8484): wire-format queries arrive
// as POST bodies or base64url ?dns= GET parameters on /dns-query, and
// wire-format answers go back as application/dns-message. Exactly one of
// Server or Handler must be set; Server takes precedence and applies the
// TCP-sized response limit (no datagram truncation over HTTP).
type DoHServer struct {
	Server *Server
	// Handler serves queries when Server is nil — any simnet.Handler,
	// e.g. a recursive front-end.
	Handler simnet.Handler
	// TLS must be set for RFC 8484 semantics; nil serves plain HTTP,
	// which is only useful behind a terminating proxy or in tests.
	TLS *tls.Config

	srv *http.Server
	ln  net.Listener
}

// Listen binds addr and serves until Close, returning the bound address.
func (d *DoHServer) Listen(addr string) (netip.AddrPort, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	bound := ln.Addr().(*net.TCPAddr).AddrPort()
	mux := http.NewServeMux()
	mux.Handle(DoHPath, d)
	d.ln = ln
	d.srv = &http.Server{
		Handler:           mux,
		TLSConfig:         d.TLS,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       DefaultTCPIdleTimeout,
	}
	go func() {
		if d.TLS != nil {
			_ = d.srv.ServeTLS(ln, "", "")
		} else {
			_ = d.srv.Serve(ln)
		}
	}()
	return bound, nil
}

// ServeHTTP implements http.Handler for the /dns-query endpoint.
func (d *DoHServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var query []byte
	var err error
	switch r.Method {
	case http.MethodPost:
		query, err = io.ReadAll(io.LimitReader(r.Body, 1<<16))
	case http.MethodGet:
		query, err = base64.RawURLEncoding.DecodeString(r.URL.Query().Get("dns"))
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	if err != nil || len(query) < 12 {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	from := netip.Addr{}
	if ap, perr := netip.ParseAddrPort(r.RemoteAddr); perr == nil {
		from = ap.Addr()
	}
	var resp []byte
	if d.Server != nil {
		resp = d.Server.ServeDNSTCP(query, from)
	} else if d.Handler != nil {
		resp = d.Handler.ServeDNS(query, from)
	}
	if resp == nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/dns-message")
	w.Header().Set("Content-Length", strconv.Itoa(len(resp)))
	_, _ = w.Write(resp)
}

// Close stops the listener and in-flight requests.
func (d *DoHServer) Close() error {
	if d.srv == nil {
		return nil
	}
	return d.srv.Close()
}
