package authoritative

import (
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

var clientAddr = netip.MustParseAddr("203.0.113.7")

func testServer(t *testing.T) *Server {
	t.Helper()
	z := zone.New(dnswire.NewName("example.org"))
	z.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "admin.example.org", 1, 7200, 3600, 1209600, 300),
		dnswire.NewNS("example.org", 172800, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 86400, "192.0.2.1"),
		dnswire.NewA("www.example.org", 300, "192.0.2.80"),
		dnswire.NewCNAME("alias.example.org", 600, "www.example.org"),
		dnswire.NewCNAME("chain.example.org", 600, "alias.example.org"),
		dnswire.NewNS("sub.example.org", 3600, "ns1.sub.example.org"),
		dnswire.NewA("ns1.sub.example.org", 7200, "192.0.2.53"),
	)
	s := NewServer(dnswire.NewName("ns1.example.org"), simnet.NewVirtualClock())
	s.AddZone(z)
	return s
}

func query(t *testing.T, s *Server, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	q := dnswire.NewIterativeQuery(42, dnswire.NewName(name), typ)
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	respWire := s.ServeDNS(wire, clientAddr)
	if respWire == nil {
		t.Fatal("nil response")
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 42 || !resp.Header.QR {
		t.Fatalf("bad response header: %+v", resp.Header)
	}
	return resp
}

func TestAuthoritativeAnswer(t *testing.T) {
	s := testServer(t)
	resp := query(t, s, "www.example.org", dnswire.TypeA)
	if !resp.Header.AA {
		t.Errorf("AA must be set on authoritative answers")
	}
	if len(resp.Answer) != 1 || resp.Answer[0].TTL != 300 {
		t.Errorf("answer = %v", resp.Answer)
	}
}

func TestReferralWithGlue(t *testing.T) {
	s := testServer(t)
	resp := query(t, s, "deep.sub.example.org", dnswire.TypeA)
	if resp.Header.AA {
		t.Errorf("referrals must not set AA")
	}
	if !resp.IsReferral() {
		t.Fatalf("expected referral, got %s", resp)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeNS {
		t.Errorf("authority = %v", resp.Authority)
	}
	if len(resp.Additional) != 1 || resp.Additional[0].Name != dnswire.NewName("ns1.sub.example.org") {
		t.Errorf("glue = %v", resp.Additional)
	}
}

func TestNXDomainCarriesSOA(t *testing.T) {
	s := testServer(t)
	resp := query(t, s, "missing.example.org", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeNXDomain || !resp.Header.AA {
		t.Errorf("header = %+v", resp.Header)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %v", resp.Authority)
	}
}

func TestNoData(t *testing.T) {
	s := testServer(t)
	resp := query(t, s, "www.example.org", dnswire.TypeMX)
	if resp.Header.RCode != dnswire.RCodeNoError || len(resp.Answer) != 0 {
		t.Errorf("NODATA response wrong: %s", resp)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %v", resp.Authority)
	}
}

func TestCNAMEChainFollowed(t *testing.T) {
	s := testServer(t)
	resp := query(t, s, "chain.example.org", dnswire.TypeA)
	// chain → alias → www → A
	if len(resp.Answer) != 3 {
		t.Fatalf("answer = %v", resp.Answer)
	}
	if resp.Answer[0].Type != dnswire.TypeCNAME || resp.Answer[2].Type != dnswire.TypeA {
		t.Errorf("chain order wrong: %v", resp.Answer)
	}
}

func TestCNAMELoopBounded(t *testing.T) {
	z := zone.New(dnswire.NewName("loop.org"))
	z.MustAdd(
		dnswire.NewSOA("loop.org", 60, "ns1.loop.org", "x.loop.org", 1, 1, 1, 1, 1),
		dnswire.NewCNAME("a.loop.org", 60, "b.loop.org"),
		dnswire.NewCNAME("b.loop.org", 60, "a.loop.org"),
	)
	s := NewServer(dnswire.NewName("ns1.loop.org"), nil)
	s.AddZone(z)
	resp := query(t, s, "a.loop.org", dnswire.TypeA)
	if len(resp.Answer) > 2*maxCNAMEChain+2 {
		t.Errorf("CNAME loop not bounded: %d answers", len(resp.Answer))
	}
}

func TestRefusedOutOfZone(t *testing.T) {
	s := testServer(t)
	resp := query(t, s, "example.com", dnswire.TypeA)
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %s, want REFUSED", resp.Header.RCode)
	}
}

func TestFormErrOnGarbage(t *testing.T) {
	s := testServer(t)
	resp := s.ServeDNS([]byte{0x12, 0x34, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xFF}, clientAddr)
	if resp == nil {
		t.Fatal("expected FORMERR response")
	}
	m, err := dnswire.Decode(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeFormErr || m.Header.ID != 0x1234 {
		t.Errorf("header = %+v", m.Header)
	}
	if s.ServeDNS([]byte{1, 2, 3}, clientAddr) != nil {
		t.Errorf("tiny garbage should be dropped")
	}
}

func TestNotImpForNonQuery(t *testing.T) {
	s := testServer(t)
	q := dnswire.NewIterativeQuery(1, dnswire.NewName("www.example.org"), dnswire.TypeA)
	q.Header.Opcode = dnswire.OpcodeUpdate
	resp := s.Handle(q, clientAddr)
	if resp.Header.RCode != dnswire.RCodeNotImp {
		t.Errorf("rcode = %s", resp.Header.RCode)
	}
}

func TestMostSpecificZoneWins(t *testing.T) {
	s := testServer(t)
	// Also serve the child zone on the same server: child data must win.
	child := zone.New(dnswire.NewName("sub.example.org"))
	child.MustAdd(
		dnswire.NewSOA("sub.example.org", 60, "ns1.sub.example.org", "x.sub.example.org", 1, 1, 1, 1, 60),
		dnswire.NewNS("sub.example.org", 900, "ns1.sub.example.org"),
		dnswire.NewA("host.sub.example.org", 60, "192.0.2.200"),
	)
	s.AddZone(child)
	resp := query(t, s, "host.sub.example.org", dnswire.TypeA)
	if !resp.Header.AA || len(resp.Answer) != 1 {
		t.Fatalf("child zone not preferred: %s", resp)
	}
	// NS at the cut: child view is authoritative with TTL 900.
	resp = query(t, s, "sub.example.org", dnswire.TypeNS)
	if !resp.Header.AA || len(resp.Answer) != 1 || resp.Answer[0].TTL != 900 {
		t.Errorf("NS at cut = %v", resp.Answer)
	}
	s.RemoveZone(dnswire.NewName("sub.example.org"))
	resp = query(t, s, "host.sub.example.org", dnswire.TypeA)
	if !resp.IsReferral() {
		t.Errorf("after RemoveZone expected referral again")
	}
}

func TestQueryLog(t *testing.T) {
	s := testServer(t)
	s.EnableQueryLog()
	query(t, s, "www.example.org", dnswire.TypeA)
	query(t, s, "deep.sub.example.org", dnswire.TypeA)
	log := s.QueryLog()
	if len(log) != 2 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[0].Name != dnswire.NewName("www.example.org") || log[0].Answers != 1 || log[0].Referral {
		t.Errorf("entry 0 = %+v", log[0])
	}
	if !log[1].Referral {
		t.Errorf("entry 1 should be a referral: %+v", log[1])
	}
	if log[0].Client != clientAddr {
		t.Errorf("client = %v", log[0].Client)
	}
	if s.QueryCount() != 2 {
		t.Errorf("QueryCount = %d", s.QueryCount())
	}
	s.ResetQueryLog()
	if len(s.QueryLog()) != 0 || s.QueryCount() != 0 {
		t.Errorf("reset did not clear")
	}
}

func TestZoneAccessor(t *testing.T) {
	s := testServer(t)
	if s.Zone(dnswire.NewName("example.org")) == nil {
		t.Errorf("Zone accessor broken")
	}
	if s.Zone(dnswire.NewName("nope.org")) != nil {
		t.Errorf("unknown zone should be nil")
	}
}

func TestUDPServerIntegration(t *testing.T) {
	s := testServer(t)
	u := &UDPServer{Server: s}
	addr, err := u.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	q := dnswire.NewIterativeQuery(99, dnswire.NewName("www.example.org"), dnswire.TypeA)
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	respWire, rtt, err := UDPExchange(addr, wire, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v", rtt)
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 99 || len(resp.Answer) != 1 {
		t.Errorf("udp response = %s", resp)
	}
	if err := u.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestRotateAnswers(t *testing.T) {
	z := zone.New(dnswire.NewName("lb.org"))
	z.MustAdd(
		dnswire.NewSOA("lb.org", 60, "ns1.lb.org", "x.lb.org", 1, 1, 1, 1, 60),
		dnswire.NewA("www.lb.org", 30, "192.0.2.1"),
		dnswire.NewA("www.lb.org", 30, "192.0.2.2"),
		dnswire.NewA("www.lb.org", 30, "192.0.2.3"),
	)
	s := NewServer(dnswire.NewName("ns1.lb.org"), nil)
	s.AddZone(z)
	s.RotateAnswers = true

	firsts := map[string]int{}
	for i := 0; i < 9; i++ {
		resp := query(t, s, "www.lb.org", dnswire.TypeA)
		if len(resp.Answer) != 3 {
			t.Fatalf("answers = %d", len(resp.Answer))
		}
		firsts[resp.Answer[0].Data.String()]++
	}
	// Round-robin: each address leads exactly a third of the time.
	if len(firsts) != 3 {
		t.Fatalf("first-record distribution = %v, want all three", firsts)
	}
	for addr, n := range firsts {
		if n != 3 {
			t.Errorf("address %s led %d times, want 3", addr, n)
		}
	}
	// Without rotation the order is fixed.
	s.RotateAnswers = false
	a := query(t, s, "www.lb.org", dnswire.TypeA).Answer[0].Data.String()
	b := query(t, s, "www.lb.org", dnswire.TypeA).Answer[0].Data.String()
	if a != b {
		t.Errorf("rotation off but first record changed")
	}
}
