package authoritative

import (
	"testing"
	"time"

	"dnsttl/internal/dnswire"
)

func TestAXFRRoundTrip(t *testing.T) {
	s := testServer(t)
	ts := &TCPServer{Server: s}
	addr, err := ts.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	z, err := FetchZone(addr, dnswire.NewName("example.org"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	orig := s.Zone(dnswire.NewName("example.org"))
	if z.RecordCount() != orig.RecordCount() {
		t.Errorf("transferred %d records, want %d", z.RecordCount(), orig.RecordCount())
	}
	// Every original RRset survives with TTLs intact.
	for _, set := range orig.AllSets() {
		got := z.Get(set.Name, set.Type)
		if got == nil || got.TTL != set.TTL || len(got.RRs) != len(set.RRs) {
			t.Errorf("set %s/%s lost or changed in transfer", set.Name, set.Type)
		}
	}
	if _, ok := z.SOA(); !ok {
		t.Errorf("transferred zone has no SOA")
	}
}

func TestAXFRRefusedForUnknownZone(t *testing.T) {
	s := testServer(t)
	ts := &TCPServer{Server: s}
	addr, err := ts.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if _, err := FetchZone(addr, dnswire.NewName("other.org"), 2*time.Second); err == nil {
		t.Errorf("AXFR of unserved zone must fail")
	}
}

func TestAXFRFramingValidation(t *testing.T) {
	// A zone without an SOA cannot be transferred.
	s := testServer(t)
	s.Zone(dnswire.NewName("example.org")).Remove(dnswire.NewName("example.org"), dnswire.TypeSOA)
	q := dnswire.NewIterativeQuery(1, dnswire.NewName("example.org"), TypeAXFR)
	resp := s.Handle(q, clientAddr)
	if resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("SOA-less AXFR should SERVFAIL, got %s", resp.Header.RCode)
	}
}
