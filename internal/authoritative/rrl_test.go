package authoritative

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/simnet"
)

// rawQuery sends one UDP query and returns the raw response bytes (nil
// when RRL dropped it).
func rawQuery(t *testing.T, s *Server, name string, from netip.Addr) []byte {
	t.Helper()
	q := dnswire.NewIterativeQuery(7, dnswire.NewName(name), dnswire.TypeA)
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	return s.ServeDNS(wire, from)
}

func TestParseRRLConfig(t *testing.T) {
	cfg, err := ParseRRLConfig("default")
	if err != nil || cfg != DefaultRRLConfig() {
		t.Fatalf("default parse: %+v, %v", cfg, err)
	}
	cfg, err = ParseRRLConfig("rps=2,slip=3")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RPS != 2 || cfg.Slip != 3 || cfg.Burst != 15 {
		t.Fatalf("partial override: %+v", cfg)
	}
	for _, bad := range []string{"rps", "rps=zero", "warp=1", "rps=0", "prefix4=99"} {
		if _, err := ParseRRLConfig(bad); err == nil {
			t.Fatalf("ParseRRLConfig(%q) should fail", bad)
		}
	}
}

func TestRRLWaterTortureSharesErrorBand(t *testing.T) {
	s := testServer(t)
	clk := s.Clock.(*simnet.VirtualClock)
	reg := obs.NewRegistry(clk)
	s.Instrument(reg)
	s.EnableRRL(RRLConfig{RPS: 1, Burst: 3, Slip: 0, Prefix4: 24, Prefix6: 56})

	attacker := netip.MustParseAddr("198.51.100.9")
	// Random-subdomain flood: every qname unique, every response NXDomain.
	// They must share the zone-origin error band, so only the burst leaks.
	sent := 0
	for i := 0; i < 20; i++ {
		if rawQuery(t, s, fmt.Sprintf("w%d.example.org", i), attacker) != nil {
			sent++
		}
	}
	if sent != 3 {
		t.Fatalf("flood responses sent = %d, want burst of 3", sent)
	}
	if got := reg.Counter(MetricRRLDropped).Value(); got != 17 {
		t.Fatalf("auth.rrl_dropped = %d, want 17", got)
	}

	// A client in a different /24 is a different bucket and still gets
	// its positive answer (positive answers band per-qname anyway).
	honest := netip.MustParseAddr("203.0.113.7")
	if rawQuery(t, s, "www.example.org", honest) == nil {
		t.Fatal("honest client in another prefix was dropped")
	}

	// Refill: a second later the attacker's band earns one more token.
	clk.Advance(time.Second)
	sent = 0
	for i := 20; i < 25; i++ {
		if rawQuery(t, s, fmt.Sprintf("w%d.example.org", i), attacker) != nil {
			sent++
		}
	}
	if sent != 1 {
		t.Fatalf("post-refill responses = %d, want 1", sent)
	}
}

func TestRRLSlipSendsTruncated(t *testing.T) {
	s := testServer(t)
	s.EnableRRL(RRLConfig{RPS: 1, Burst: 1, Slip: 2, Prefix4: 24, Prefix6: 56})
	from := netip.MustParseAddr("198.51.100.9")

	if rawQuery(t, s, "nope1.example.org", from) == nil {
		t.Fatal("burst response dropped")
	}
	// Limited responses now alternate drop, slip, drop, slip...
	var slips, drops int
	for i := 0; i < 6; i++ {
		wire := rawQuery(t, s, fmt.Sprintf("nope%d.example.org", i+2), from)
		if wire == nil {
			drops++
			continue
		}
		resp, err := dnswire.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Header.TC {
			t.Fatal("slipped response must be truncated")
		}
		if len(resp.Answer) != 0 || len(resp.Authority) != 0 || len(resp.Additional) != 0 {
			t.Fatal("slipped response must carry no records")
		}
		if resp.Header.RCode != dnswire.RCodeNXDomain {
			t.Fatalf("slipped rcode = %v, want NXDomain preserved", resp.Header.RCode)
		}
		slips++
	}
	if slips != 3 || drops != 3 {
		t.Fatalf("slips = %d drops = %d, want 3/3", slips, drops)
	}
}

func TestRRLExemptsTCP(t *testing.T) {
	s := testServer(t)
	s.EnableRRL(RRLConfig{RPS: 1, Burst: 1, Slip: 0, Prefix4: 24, Prefix6: 56})
	from := netip.MustParseAddr("198.51.100.9")

	// Exhaust the UDP bucket.
	rawQuery(t, s, "x1.example.org", from)
	if rawQuery(t, s, "x2.example.org", from) != nil {
		t.Fatal("UDP flood should be limited")
	}
	// TCP keeps answering: the handshake already authenticated the source.
	q := dnswire.NewIterativeQuery(9, dnswire.NewName("x3.example.org"), dnswire.TypeA)
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if s.ServeDNSTCP(wire, from) == nil {
			t.Fatal("TCP response must never be rate limited")
		}
	}
}

func TestRRLPositiveBandIsPerQName(t *testing.T) {
	s := testServer(t)
	s.EnableRRL(RRLConfig{RPS: 1, Burst: 2, Slip: 0, Prefix4: 24, Prefix6: 56})
	from := netip.MustParseAddr("198.51.100.9")

	// Exhaust the bucket for one positive qname...
	for i := 0; i < 3; i++ {
		rawQuery(t, s, "www.example.org", from)
	}
	// ...the nameserver's own A record is a different band and still flows.
	if rawQuery(t, s, "ns1.example.org", from) == nil {
		t.Fatal("distinct positive qname should have its own bucket")
	}
}

func TestDisableRRL(t *testing.T) {
	s := testServer(t)
	s.EnableRRL(RRLConfig{RPS: 1, Burst: 1, Slip: 0, Prefix4: 24, Prefix6: 56})
	from := netip.MustParseAddr("198.51.100.9")
	rawQuery(t, s, "y1.example.org", from)
	if rawQuery(t, s, "y2.example.org", from) != nil {
		t.Fatal("expected limiting before disable")
	}
	s.DisableRRL()
	for i := 0; i < 5; i++ {
		if rawQuery(t, s, fmt.Sprintf("z%d.example.org", i), from) == nil {
			t.Fatal("disabled limiter still dropping")
		}
	}
}
