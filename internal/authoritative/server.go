// Package authoritative implements an authoritative DNS server over the
// zone model: it answers with the AA bit for data it owns, emits referrals
// with glue at delegation points, returns RFC 2308 negative answers, and
// chases in-zone CNAME chains. It serves both the simulated message plane
// (simnet.Handler) and real UDP/TCP sockets.
package authoritative

import (
	"sync"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/qlog"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"

	"net/netip"
)

// QueryLogEntry records one handled query, the raw material for the
// paper's authoritative-side analyses (§3.4, §4.6, §6.2).
type QueryLogEntry struct {
	Time     time.Time
	Client   netip.Addr
	Name     dnswire.Name
	Type     dnswire.Type
	RCode    dnswire.RCode
	Answers  int
	Referral bool
}

// Server is an authoritative server for a set of zones.
type Server struct {
	// Name identifies the server in logs and experiment reports
	// (e.g. "ns1.cachetest.net").
	Name dnswire.Name
	// Clock timestamps query-log entries.
	Clock simnet.Clock
	// RotateAnswers cycles multi-record answer sets round-robin per
	// response — classic DNS load balancing (§6.1), where every arriving
	// query is a chance to steer a client.
	RotateAnswers bool
	// Obs, when non-nil, mirrors the query counters into the telemetry
	// plane (see Instrument); nil costs one pointer check per query.
	Obs *Metrics
	// QLog, when non-nil, emits one structured response-out record per
	// handled query — the authoritative-side capture the paper's §3.4
	// passive methodology collects. Nil costs one pointer check per query.
	QLog *qlog.Tap
	// Push, when non-nil, gets first claim on every decoded query — the
	// push plane (internal/push) uses it to intercept subscription requests
	// and IXFR pulls without this package importing it. Handlers must not
	// retain q: it returns to a pool when the query completes.
	Push PushHook

	mu       sync.RWMutex
	zones    map[dnswire.Name]*zone.Zone
	log      []QueryLogEntry
	rotation uint64
	// rrl, when non-nil, rate-limits UDP responses (see rrl.go).
	rrl *rrlState
	// logging controls whether entries are retained.
	logging bool
	queries uint64
}

// NewServer creates a server with no zones. If clock is nil the wall clock
// is used.
func NewServer(name dnswire.Name, clock simnet.Clock) *Server {
	if clock == nil {
		clock = simnet.WallClock{}
	}
	return &Server{
		Name:  name,
		Clock: clock,
		zones: make(map[dnswire.Name]*zone.Zone),
	}
}

// AddZone makes the server authoritative for z.
func (s *Server) AddZone(z *zone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin] = z
}

// RemoveZone drops authority for origin.
func (s *Server) RemoveZone(origin dnswire.Name) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, origin)
}

// Zone returns the zone with the given origin, or nil.
func (s *Server) Zone(origin dnswire.Name) *zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.zones[origin]
}

// EnableQueryLog turns on query logging (off by default to keep large
// simulations lean).
func (s *Server) EnableQueryLog() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logging = true
}

// QueryLog returns a copy of the retained log.
func (s *Server) QueryLog() []QueryLogEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]QueryLogEntry(nil), s.log...)
}

// ResetQueryLog clears the log and query counter.
func (s *Server) ResetQueryLog() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = nil
	s.queries = 0
}

// QueryCount returns the number of queries handled since the last reset.
func (s *Server) QueryCount() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queries
}

// bestZone returns the most specific zone enclosing name, found by walking
// the name's ancestors so servers hosting many zones stay O(label count)
// per query.
func (s *Server) bestZone(name dnswire.Name) *zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for n := name; ; n = n.Parent() {
		if z, ok := s.zones[n]; ok {
			return z
		}
		if n.IsRoot() {
			return nil
		}
	}
}

// ServeDNS implements simnet.Handler for the UDP transport: decode, handle,
// encode, truncating to the client's advertised EDNS size — or the classic
// 512 bytes when the query carried no OPT record (RFC 6891 §6.2.5).
// Malformed queries get FORMERR; encode failures drop the query (nil).
func (s *Server) ServeDNS(wire []byte, from netip.Addr) []byte {
	return s.serveWire(wire, from, 0)
}

// ServeDNSTCP is the TCP-transport entry point: same handling, but the
// 64 KiB frame limit applies instead of datagram truncation.
func (s *Server) ServeDNSTCP(wire []byte, from netip.Addr) []byte {
	return s.serveWire(wire, from, 0xFFFF)
}

// serveWire handles one query. limit 0 means "derive from the query's EDNS
// advertisement"; otherwise it is the response size bound.
func (s *Server) serveWire(wire []byte, from netip.Addr, limit int) []byte {
	// The query message lives only for the duration of this call: Handle
	// copies the question into the reply and retains nothing else, so both
	// the decoder and the message go back to their pools on return.
	d := dnswire.AcquireDecoder()
	q := dnswire.AcquireMessage()
	defer func() {
		dnswire.ReleaseMessage(q)
		dnswire.ReleaseDecoder(d)
	}()
	if err := d.Decode(wire, q); err != nil {
		// Can't even parse the ID reliably; drop.
		if len(wire) < 12 {
			return nil
		}
		resp := &dnswire.Message{Header: dnswire.Header{
			ID: uint16(wire[0])<<8 | uint16(wire[1]), QR: true, RCode: dnswire.RCodeFormErr,
		}}
		out, err := dnswire.Encode(resp)
		if err != nil {
			return nil
		}
		return out
	}
	resp := s.Handle(q, from)
	if limit == 0 {
		// RRL guards only the connectionless transport: a TCP client has
		// already proved its source address, so limiting it would add
		// collateral damage without reducing amplification.
		if r := s.limiter(); r != nil {
			key := rrlKey{band: s.band(q.Q(), resp), client: r.maskClient(from)}
			switch r.check(key) {
			case rrlDrop:
				if m := s.Obs; m != nil {
					m.RRLDropped.Inc()
				}
				return nil
			case rrlSlip:
				if m := s.Obs; m != nil {
					m.RRLSlipped.Inc()
				}
				resp = slipReply(resp)
			default:
				if m := s.Obs; m != nil {
					m.RRLPassed.Inc()
				}
			}
		}
		limit = dnswire.MaxUDPSize
		for _, rr := range q.Additional {
			if opt, ok := rr.Data.(dnswire.OPT); ok {
				limit = int(opt.UDPSize)
				if limit < dnswire.MaxUDPSize {
					limit = dnswire.MaxUDPSize
				}
				if limit > dnswire.MaxEDNSSize {
					limit = dnswire.MaxEDNSSize
				}
			}
		}
	}
	out, err := dnswire.EncodeWithLimit(resp, limit)
	if err != nil {
		return nil
	}
	return out
}

// PushHook intercepts queries ahead of normal resolution. HandleQuery
// returns (resp, true) to claim the query, (nil, false) to pass it through.
// internal/push's Authority implements this for subscription requests,
// NOTIFY handling, and IXFR serving.
type PushHook interface {
	HandleQuery(q *dnswire.Message, from netip.Addr) (*dnswire.Message, bool)
}

// Handle answers one decoded query.
func (s *Server) Handle(q *dnswire.Message, from netip.Addr) *dnswire.Message {
	question := q.Q()
	if h := s.Push; h != nil {
		if resp, ok := h.HandleQuery(q, from); ok {
			s.logQuery(from, question, resp)
			return resp
		}
	}
	resp := q.Reply()
	if question.Name == "" || q.Header.Opcode != dnswire.OpcodeQuery {
		resp.Header.RCode = dnswire.RCodeNotImp
		s.logQuery(from, question, resp)
		return resp
	}
	if question.Type == TypeAXFR {
		return s.handleAXFR(q, from)
	}

	z := s.bestZone(question.Name)
	if z == nil {
		resp.Header.RCode = dnswire.RCodeRefused
		s.logQuery(from, question, resp)
		return resp
	}
	s.answerFromZone(z, question.Name, question.Type, resp, 0)
	s.logQuery(from, question, resp)
	return resp
}

// maxCNAMEChain bounds in-zone alias chasing.
const maxCNAMEChain = 8

func (s *Server) answerFromZone(z *zone.Zone, name dnswire.Name, t dnswire.Type, resp *dnswire.Message, depth int) {
	res := z.Lookup(name, t)
	switch res.Kind {
	case zone.Answer:
		resp.Header.AA = true
		resp.AddAnswer(s.maybeRotate(res.Answer.RRs)...)
	case zone.CNAMEAnswer:
		resp.Header.AA = true
		resp.AddAnswer(res.Answer.RRs...)
		if depth < maxCNAMEChain {
			target := res.Answer.RRs[0].Data.(dnswire.CNAME).Target
			// Follow the alias if we are authoritative for the target too.
			if tz := s.bestZone(target); tz != nil {
				s.answerFromZone(tz, target, t, resp, depth+1)
			}
		}
	case zone.NoData:
		resp.Header.AA = true
		if res.Authority != nil {
			resp.AddAuthority(res.Authority.RRs...)
		}
	case zone.NXDomain:
		resp.Header.AA = true
		resp.Header.RCode = dnswire.RCodeNXDomain
		if res.Authority != nil {
			resp.AddAuthority(res.Authority.RRs...)
		}
	case zone.Delegation:
		// Referral: AA clear, NS in authority, glue in additional.
		resp.AddAuthority(res.Authority.RRs...)
		resp.AddAdditional(res.Glue...)
	case zone.NotInZone:
		resp.Header.RCode = dnswire.RCodeRefused
	}
}

// maybeRotate returns rrs rotated by the server's response counter when
// RotateAnswers is on, so successive clients see different first records.
func (s *Server) maybeRotate(rrs []dnswire.RR) []dnswire.RR {
	if !s.RotateAnswers || len(rrs) < 2 {
		return rrs
	}
	s.mu.Lock()
	off := int(s.rotation) % len(rrs)
	s.rotation++
	s.mu.Unlock()
	out := make([]dnswire.RR, 0, len(rrs))
	out = append(out, rrs[off:]...)
	out = append(out, rrs[:off]...)
	return out
}

func (s *Server) logQuery(from netip.Addr, q dnswire.Question, resp *dnswire.Message) {
	if m := s.Obs; m != nil {
		m.observe(resp)
	}
	if t := s.QLog; t != nil {
		var ttl uint32
		if len(resp.Answer) > 0 {
			ttl = resp.Answer[0].TTL
		}
		t.ResponseOut(from, q.Name, q.Type, resp.Header.RCode, ttl, qlog.OutcomeNone, 0)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	if !s.logging {
		return
	}
	s.log = append(s.log, QueryLogEntry{
		Time:     s.Clock.Now(),
		Client:   from,
		Name:     q.Name,
		Type:     q.Type,
		RCode:    resp.Header.RCode,
		Answers:  len(resp.Answer),
		Referral: resp.IsReferral(),
	})
}
