package authoritative

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

// Response Rate Limiting (RRL), the BIND/NSD defense against authoritative
// servers being used as amplifiers and against random-subdomain floods.
// Responses — not queries — are rate limited, per ⟨response band, masked
// client prefix⟩ bucket:
//
//   - positive answers band on the qname, so a flood for one popular name
//     is limited without touching the rest of the zone;
//   - NXDomain and NoData responses band on the *zone origin*, because a
//     water-torture flood never repeats a qname — per-qname buckets would
//     each see rate 1 and pass everything, while the per-zone error band
//     sees the full attack rate;
//   - referrals band on the zone being delegated to.
//
// A limited response is dropped — and every slip-th limited response is
// instead sent truncated (TC=1, answer sections stripped), so an honest
// client whose source address is being spoofed into a bucket can still
// retry over TCP and get a full answer: TCP responses are never limited,
// because the three-way handshake already proves the source address.
type RRLConfig struct {
	// RPS is the sustained responses/second each bucket may emit.
	RPS float64
	// Burst is the bucket depth (responses that may go out back-to-back).
	Burst float64
	// Slip sends every Slip-th limited response as a truncated reply
	// instead of dropping it. 0 drops everything; 1 slips everything
	// (no drops, pure TC); 2 is the BIND default.
	Slip int
	// Prefix4/Prefix6 mask client addresses into buckets (defaults /24
	// and /56 — RRL aggregates by network, not host, since an attacker
	// spoofs addresses within its network freely).
	Prefix4, Prefix6 int
}

// DefaultRRLConfig mirrors BIND's conventional starting point.
func DefaultRRLConfig() RRLConfig {
	return RRLConfig{RPS: 5, Burst: 15, Slip: 2, Prefix4: 24, Prefix6: 56}
}

// ParseRRLConfig parses the authserver -rrl flag grammar:
// "rps=5,burst=15,slip=2,prefix4=24,prefix6=56" — any subset of keys,
// missing keys keep the defaults. The literal "default" (or "") is the
// default config.
func ParseRRLConfig(s string) (RRLConfig, error) {
	cfg := DefaultRRLConfig()
	if s == "" || s == "default" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("rrl: want key=value, got %q", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return cfg, fmt.Errorf("rrl: %s=%q is not a number", key, val)
		}
		switch key {
		case "rps":
			cfg.RPS = f
		case "burst":
			cfg.Burst = f
		case "slip":
			cfg.Slip = int(f)
		case "prefix4":
			cfg.Prefix4 = int(f)
		case "prefix6":
			cfg.Prefix6 = int(f)
		default:
			return cfg, fmt.Errorf("rrl: unknown key %q (want rps, burst, slip, prefix4, prefix6)", key)
		}
	}
	if cfg.RPS <= 0 || cfg.Burst < 1 {
		return cfg, fmt.Errorf("rrl: need rps > 0 and burst >= 1")
	}
	if cfg.Prefix4 < 0 || cfg.Prefix4 > 32 || cfg.Prefix6 < 0 || cfg.Prefix6 > 128 {
		return cfg, fmt.Errorf("rrl: prefix4/prefix6 out of range")
	}
	return cfg, nil
}

// rrlVerdict is the limiter's decision for one UDP response.
type rrlVerdict uint8

const (
	rrlSend rrlVerdict = iota
	rrlDrop
	rrlSlip
)

type rrlKey struct {
	band   dnswire.Name
	client netip.Addr
}

type rrlBucket struct {
	tokens  float64
	last    time.Time
	limited int // responses limited since the bucket last passed one, drives slip cadence
}

// maxRRLBuckets bounds limiter state the same way the middleware
// per-client limiter does: reset wholesale at the cap rather than LRU
// bookkeeping per response.
const maxRRLBuckets = 1 << 16

// rrlState is the limiter attached to a Server by EnableRRL.
type rrlState struct {
	cfg   RRLConfig
	clock simnet.Clock

	mu      sync.Mutex
	buckets map[rrlKey]*rrlBucket
}

// EnableRRL turns on response rate limiting for UDP responses. Passing a
// zero-value config panics; use DefaultRRLConfig as the baseline.
func (s *Server) EnableRRL(cfg RRLConfig) {
	if cfg.RPS <= 0 || cfg.Burst < 1 {
		panic("authoritative: EnableRRL with rps <= 0 or burst < 1")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rrl = &rrlState{cfg: cfg, clock: s.Clock, buckets: map[rrlKey]*rrlBucket{}}
}

// DisableRRL removes the limiter.
func (s *Server) DisableRRL() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rrl = nil
}

// limiter returns the current rrl state (nil when disabled).
func (s *Server) limiter() *rrlState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rrl
}

// band classifies a response into its rate-limit band.
func (s *Server) band(q dnswire.Question, resp *dnswire.Message) dnswire.Name {
	if resp.Header.RCode == dnswire.RCodeNXDomain || (resp.Header.RCode == dnswire.RCodeNoError && len(resp.Answer) == 0) {
		// Error band: one bucket per zone, immune to qname randomization.
		if z := s.bestZone(q.Name); z != nil {
			return z.Origin
		}
	}
	return q.Name
}

// check books one would-be UDP response against its bucket.
func (r *rrlState) check(key rrlKey) rrlVerdict {
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	bk := r.buckets[key]
	if bk == nil {
		if len(r.buckets) >= maxRRLBuckets {
			r.buckets = map[rrlKey]*rrlBucket{}
		}
		bk = &rrlBucket{tokens: r.cfg.Burst, last: now}
		r.buckets[key] = bk
	} else {
		if dt := now.Sub(bk.last); dt > 0 {
			bk.tokens += dt.Seconds() * r.cfg.RPS
			if bk.tokens > r.cfg.Burst {
				bk.tokens = r.cfg.Burst
			}
		}
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		bk.limited = 0
		return rrlSend
	}
	bk.limited++
	if r.cfg.Slip > 0 && bk.limited%r.cfg.Slip == 0 {
		return rrlSlip
	}
	return rrlDrop
}

// maskClient aggregates a client address into its RRL network prefix.
func (r *rrlState) maskClient(client netip.Addr) netip.Addr {
	bits := r.cfg.Prefix6
	if client.Is4() || client.Is4In6() {
		bits = r.cfg.Prefix4
	}
	p, err := client.Unmap().Prefix(bits)
	if err != nil {
		return client
	}
	return p.Addr()
}

// slipReply builds the truncated stand-in for a limited response: header
// and question only, TC=1, same RCode — enough for an honest client to
// fall back to TCP.
func slipReply(resp *dnswire.Message) *dnswire.Message {
	out := &dnswire.Message{Header: resp.Header}
	out.Header.TC = true
	out.Question = append([]dnswire.Question(nil), resp.Question...)
	return out
}
