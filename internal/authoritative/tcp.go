package authoritative

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"
)

// TCPServer serves a Server over TCP with RFC 1035 §4.2.2 two-byte length
// framing — the fallback transport clients use when a UDP response arrives
// truncated.
type TCPServer struct {
	Server *Server

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// Listen binds addr and serves until Close, returning the bound address.
func (t *TCPServer) Listen(addr string) (netip.AddrPort, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	t.mu.Lock()
	t.ln = ln
	t.mu.Unlock()
	t.wg.Add(1)
	go t.serve(ln)
	return ln.Addr().(*net.TCPAddr).AddrPort(), nil
}

func (t *TCPServer) serve(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handleConn(conn)
		}()
	}
}

// handleConn serves queries on one connection until EOF or error. Multiple
// queries per connection are allowed, as the RFC permits.
func (t *TCPServer) handleConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	from := netip.Addr{}
	if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		from = ta.AddrPort().Addr()
	}
	for {
		query, err := readFrame(conn)
		if err != nil {
			return
		}
		resp := t.Server.ServeDNSTCP(query, from)
		if resp == nil {
			return
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the listener and waits for in-flight connections.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	t.closed = true
	ln := t.ln
	t.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	t.wg.Wait()
	return err
}

// readFrame reads one length-prefixed DNS message.
func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	if n == 0 {
		return nil, fmt.Errorf("authoritative: zero-length TCP frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes one length-prefixed DNS message.
func writeFrame(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return fmt.Errorf("authoritative: message exceeds TCP frame limit")
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// TCPExchange sends one query over TCP and reads the reply.
func TCPExchange(addr netip.AddrPort, query []byte, timeout time.Duration) ([]byte, time.Duration, error) {
	start := time.Now()
	conn, err := net.DialTimeout("tcp", addr.String(), timeout)
	if err != nil {
		return nil, time.Since(start), err
	}
	defer conn.Close()
	if err := conn.SetDeadline(start.Add(timeout)); err != nil {
		return nil, time.Since(start), err
	}
	if err := writeFrame(conn, query); err != nil {
		return nil, time.Since(start), err
	}
	resp, err := readFrame(conn)
	rtt := time.Since(start)
	if err != nil {
		return nil, rtt, fmt.Errorf("authoritative: tcp exchange: %w", err)
	}
	return resp, rtt, nil
}
