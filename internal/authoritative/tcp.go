package authoritative

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsttl/internal/simnet"
)

// Serving-plane defaults. A slow or hung client may pin at most one
// goroutine for DefaultTCPIdleTimeout; the connection cap bounds how many
// such goroutines can exist at once.
const (
	// DefaultTCPIdleTimeout is how long a connection may sit between
	// queries (and how long one read/write may take) before it is closed.
	DefaultTCPIdleTimeout = 30 * time.Second
	// DefaultMaxTCPConns bounds concurrently served connections.
	DefaultMaxTCPConns = 512
)

// TCPServer serves DNS over TCP with RFC 1035 §4.2.2 two-byte length
// framing — the fallback transport clients use when a UDP response arrives
// truncated, and the base layer for DoT when TLS is set. Exactly one of
// Server or Handler must be set; Server takes precedence and applies the
// 64 KiB TCP response limit instead of datagram truncation.
type TCPServer struct {
	Server *Server
	// Handler serves queries when Server is nil — any simnet.Handler,
	// e.g. a recursive front-end.
	Handler simnet.Handler
	// TLS, when non-nil, wraps every accepted connection (DNS over TLS,
	// RFC 7858).
	TLS *tls.Config
	// IdleTimeout bounds each read and write on a connection, so a client
	// that stops sending (or stops reading) cannot pin its goroutine
	// forever. 0 means DefaultTCPIdleTimeout.
	IdleTimeout time.Duration
	// MaxConns caps concurrently served connections; excess accepts are
	// closed immediately. 0 means DefaultMaxTCPConns; negative means
	// unlimited.
	MaxConns int

	// rejected counts connections refused by the MaxConns cap.
	rejected atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
	sem    chan struct{}
}

func (t *TCPServer) idleTimeout() time.Duration {
	if t.IdleTimeout > 0 {
		return t.IdleTimeout
	}
	return DefaultTCPIdleTimeout
}

// Rejected reports connections refused by the MaxConns cap.
func (t *TCPServer) Rejected() uint64 { return t.rejected.Load() }

// Listen binds addr and serves until Close, returning the bound address.
func (t *TCPServer) Listen(addr string) (netip.AddrPort, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	bound := ln.Addr().(*net.TCPAddr).AddrPort()
	if t.TLS != nil {
		ln = tls.NewListener(ln, t.TLS)
	}
	maxConns := t.MaxConns
	if maxConns == 0 {
		maxConns = DefaultMaxTCPConns
	}
	t.mu.Lock()
	t.ln = ln
	if maxConns > 0 {
		t.sem = make(chan struct{}, maxConns)
	}
	t.mu.Unlock()
	t.wg.Add(1)
	go t.serve(ln)
	return bound, nil
}

func (t *TCPServer) serve(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if t.sem != nil {
			select {
			case t.sem <- struct{}{}:
			default:
				// At the connection cap: shed the newcomer instead of
				// queueing it behind goroutines a slow client may be
				// pinning.
				t.rejected.Add(1)
				_ = conn.Close()
				continue
			}
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			if t.sem != nil {
				defer func() { <-t.sem }()
			}
			t.handleConn(conn)
		}()
	}
}

// handleConn serves queries on one connection until EOF, error, or an idle
// timeout. Multiple queries per connection are allowed, as the RFC permits.
func (t *TCPServer) handleConn(conn net.Conn) {
	defer conn.Close()
	idle := t.idleTimeout()
	from := netip.Addr{}
	if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		from = ta.AddrPort().Addr()
	}
	for {
		// One deadline per query: a client may hold the connection open
		// indefinitely as long as it keeps sending, but each silence is
		// bounded.
		_ = conn.SetReadDeadline(time.Now().Add(idle))
		query, err := readFrame(conn)
		if err != nil {
			return
		}
		var resp []byte
		if t.Server != nil {
			resp = t.Server.ServeDNSTCP(query, from)
		} else if t.Handler != nil {
			resp = t.Handler.ServeDNS(query, from)
		}
		if resp == nil {
			return
		}
		_ = conn.SetWriteDeadline(time.Now().Add(idle))
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops the listener and waits for in-flight connections.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	t.closed = true
	ln := t.ln
	t.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	t.wg.Wait()
	return err
}

// readFrame reads one length-prefixed DNS message.
func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	if n == 0 {
		return nil, fmt.Errorf("authoritative: zero-length TCP frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame writes one length-prefixed DNS message.
func writeFrame(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return fmt.Errorf("authoritative: message exceeds TCP frame limit")
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// TCPExchange sends one query over TCP and reads the reply.
func TCPExchange(addr netip.AddrPort, query []byte, timeout time.Duration) ([]byte, time.Duration, error) {
	start := time.Now()
	conn, err := net.DialTimeout("tcp", addr.String(), timeout)
	if err != nil {
		return nil, time.Since(start), err
	}
	defer conn.Close()
	if err := conn.SetDeadline(start.Add(timeout)); err != nil {
		return nil, time.Since(start), err
	}
	if err := writeFrame(conn, query); err != nil {
		return nil, time.Since(start), err
	}
	resp, err := readFrame(conn)
	rtt := time.Since(start)
	if err != nil {
		return nil, rtt, fmt.Errorf("authoritative: tcp exchange: %w", err)
	}
	return resp, rtt, nil
}
