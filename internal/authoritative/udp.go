package authoritative

import (
	"dnsttl/internal/simnet"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// UDPServer serves a DNS handler over a real UDP socket; it exists so the
// library is usable as an actual nameserver (cmd/authserver), as a
// recursive daemon front-end (cmd/resolverd), and so integration tests can
// exercise the OS network path. Exactly one of Server or Handler must be
// set; Server takes precedence.
type UDPServer struct {
	Server *Server
	// Handler serves queries when Server is nil — any simnet.Handler,
	// e.g. a recursive front-end.
	Handler simnet.Handler
	// MaxInflight bounds concurrently-served queries (default 512).
	// Queries are dispatched to goroutines rather than served inline in
	// the read loop: a recursive front-end's handler can block for a full
	// upstream timeout (an RRL-dropped response, a dead authoritative),
	// and serving serially would let one slow resolution head-of-line
	// block every client behind it. When all slots are busy the loop
	// blocks, so overload backpressure lands in the socket buffer.
	MaxInflight int

	mu     sync.Mutex
	conn   *net.UDPConn
	closed bool
	wg     sync.WaitGroup
}

func (u *UDPServer) handler() simnet.Handler {
	if u.Server != nil {
		return u.Server
	}
	return u.Handler
}

// Listen binds addr ("127.0.0.1:0" style) and starts serving until Close.
// It returns the bound address.
func (u *UDPServer) Listen(addr string) (netip.AddrPort, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	u.mu.Lock()
	u.conn = conn
	u.mu.Unlock()
	u.wg.Add(1)
	go u.serve(conn)
	return conn.LocalAddr().(*net.UDPAddr).AddrPort(), nil
}

func (u *UDPServer) serve(conn *net.UDPConn) {
	defer u.wg.Done()
	inflight := u.MaxInflight
	if inflight <= 0 {
		inflight = 512
	}
	sem := make(chan struct{}, inflight)
	buf := make([]byte, 65535)
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		query := make([]byte, n)
		copy(query, buf[:n])
		from := raddr.AddrPort().Addr()
		sem <- struct{}{}
		u.wg.Add(1)
		go func() {
			defer func() { <-sem; u.wg.Done() }()
			resp := u.handler().ServeDNS(query, from)
			if resp != nil {
				_, _ = conn.WriteToUDP(resp, raddr)
			}
		}()
	}
}

// Close stops the server and releases the socket.
func (u *UDPServer) Close() error {
	u.mu.Lock()
	u.closed = true
	conn := u.conn
	u.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	u.wg.Wait()
	return err
}

// UDPExchange sends a single wire-format query to addr over real UDP and
// waits up to timeout for a reply. It returns the reply bytes and the
// measured RTT.
func UDPExchange(addr netip.AddrPort, query []byte, timeout time.Duration) ([]byte, time.Duration, error) {
	conn, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(addr))
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	start := time.Now()
	if err := conn.SetDeadline(start.Add(timeout)); err != nil {
		return nil, 0, err
	}
	if _, err := conn.Write(query); err != nil {
		return nil, 0, err
	}
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	rtt := time.Since(start)
	if err != nil {
		return nil, rtt, fmt.Errorf("authoritative: udp exchange: %w", err)
	}
	return buf[:n], rtt, nil
}
