package authoritative

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/simnet"
)

// echoQR answers any query by echoing it with the QR bit set.
var echoQR = simnet.HandlerFunc(func(wire []byte, _ netip.Addr) []byte {
	resp := make([]byte, len(wire))
	copy(resp, wire)
	resp[2] |= 0x80
	return resp
})

// TestTCPServerHandlerDispatch serves a plain simnet.Handler (no *Server)
// over TCP — the recursive front-end path.
func TestTCPServerHandlerDispatch(t *testing.T) {
	ts := &TCPServer{Handler: echoQR}
	addr, err := ts.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	query := make([]byte, 12)
	query[0], query[1] = 0x12, 0x34
	resp, _, err := TCPExchange(addr, query, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != 0x12 || resp[1] != 0x34 || resp[2]&0x80 == 0 {
		t.Errorf("handler response = %v", resp)
	}
}

// TestTCPServerIdleTimeout checks that a connection that goes quiet is
// closed once the idle deadline passes, instead of pinning its goroutine.
func TestTCPServerIdleTimeout(t *testing.T) {
	ts := &TCPServer{Handler: echoQR, IdleTimeout: 200 * time.Millisecond}
	addr, err := ts.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server must hang up on its own.
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatalf("expected the server to close the idle connection")
	}
	if waited := time.Since(start); waited < 100*time.Millisecond || waited > 2*time.Second {
		t.Errorf("idle close after %v, want ~200ms", waited)
	}
}

// TestTCPServerMaxConns checks the connection cap: excess connections are
// shed at accept and counted, and capacity frees up when a held connection
// goes away.
func TestTCPServerMaxConns(t *testing.T) {
	ts := &TCPServer{Handler: echoQR, MaxConns: 1, IdleTimeout: 5 * time.Second}
	addr, err := ts.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	// First connection occupies the single slot.
	hold, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	query := make([]byte, 12)
	query[0] = 1
	if err := writeFrame(hold, query); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(hold); err != nil {
		t.Fatalf("query on the held connection: %v", err)
	}

	// Second connection must be shed: accepted then closed without service.
	shed, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer shed.Close()
	_ = shed.SetDeadline(time.Now().Add(2 * time.Second))
	_ = writeFrame(shed, query)
	if _, err := readFrame(shed); err == nil {
		t.Fatalf("connection over the cap should be closed, not served")
	}
	if got := ts.Rejected(); got == 0 {
		t.Errorf("Rejected() = 0, want > 0")
	}

	// Releasing the held connection frees the slot.
	hold.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, _, err := TCPExchange(addr, query, 500*time.Millisecond)
		if err == nil && len(resp) >= 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after closing the held connection: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDoHServerRoundTrip exercises both RFC 8484 query encodings against
// the plain-HTTP server mode (TLS-terminated DoH is covered by the
// transport e2e tests).
func TestDoHServerRoundTrip(t *testing.T) {
	ds := &DoHServer{Handler: echoQR}
	addr, err := ds.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	query := make([]byte, 12)
	query[0], query[1] = 0xAB, 0xCD

	for _, method := range []string{"POST", "GET"} {
		resp := dohRequest(t, addr, method, query)
		if len(resp) < 12 || resp[0] != 0xAB || resp[1] != 0xCD || resp[2]&0x80 == 0 {
			t.Errorf("%s response = %v", method, resp)
		}
	}

	// Bad requests are rejected, not served.
	r, err := http.Post(fmt.Sprintf("http://%s%s", addr, DoHPath),
		"application/dns-message", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("short query status = %d, want 400", r.StatusCode)
	}
}

// dohRequest sends one wire-format query by POST body or GET ?dns= and
// returns the response body.
func dohRequest(t *testing.T, addr netip.AddrPort, method string, query []byte) []byte {
	t.Helper()
	url := fmt.Sprintf("http://%s%s", addr, DoHPath)
	var resp *http.Response
	var err error
	switch method {
	case "POST":
		resp, err = http.Post(url, "application/dns-message", bytes.NewReader(query))
	case "GET":
		resp, err = http.Get(url + "?dns=" + base64.RawURLEncoding.EncodeToString(query))
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s status = %d", method, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/dns-message" {
		t.Errorf("%s content type = %q", method, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
