package authoritative

import (
	"fmt"
	"net/netip"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/zone"
)

// TypeAXFR is the zone-transfer query type (RFC 1035 §3.2.3). Transfers
// run over TCP; this implementation answers with a single message carrying
// the SOA-framed record list, which is sufficient for the zone sizes this
// module moves (the root zone for RFC 7706 mirrors).
const TypeAXFR = dnswire.Type(252)

// handleAXFR builds the transfer response for a zone this server is
// authoritative for, or nil if it is not.
func (s *Server) handleAXFR(q *dnswire.Message, from netip.Addr) *dnswire.Message {
	origin := q.Q().Name
	z := s.Zone(origin)
	resp := q.Reply()
	if z == nil {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}
	soa, ok := z.SOA()
	if !ok {
		resp.Header.RCode = dnswire.RCodeServFail
		return resp
	}
	resp.Header.AA = true
	// RFC 5936 framing: SOA, all other records, SOA again.
	resp.AddAnswer(soa)
	for _, set := range z.AllSets() {
		for _, rr := range set.RRs {
			if rr.Type == dnswire.TypeSOA && rr.Name == origin {
				continue
			}
			resp.AddAnswer(rr)
		}
	}
	resp.AddAnswer(soa)
	s.logQuery(from, q.Q(), resp)
	return resp
}

// FetchZone performs an AXFR against addr over TCP and reconstructs the
// zone — how an RFC 7706 mirror obtains the root zone.
func FetchZone(addr netip.AddrPort, origin dnswire.Name, timeout time.Duration) (*zone.Zone, error) {
	q := dnswire.NewIterativeQuery(uint16(time.Now().UnixNano()), origin, TypeAXFR)
	wire, err := dnswire.Encode(q)
	if err != nil {
		return nil, err
	}
	respWire, _, err := TCPExchange(addr, wire, timeout)
	if err != nil {
		return nil, err
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		return nil, err
	}
	if resp.Header.RCode != dnswire.RCodeNoError {
		return nil, fmt.Errorf("authoritative: AXFR refused: %s", resp.Header.RCode)
	}
	if len(resp.Answer) < 2 ||
		resp.Answer[0].Type != dnswire.TypeSOA ||
		resp.Answer[len(resp.Answer)-1].Type != dnswire.TypeSOA {
		return nil, fmt.Errorf("authoritative: AXFR response not SOA-framed")
	}
	z := zone.New(origin)
	for _, rr := range resp.Answer[:len(resp.Answer)-1] {
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("authoritative: AXFR record %s: %w", rr.Name, err)
		}
	}
	return z, nil
}
