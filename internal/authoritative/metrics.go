package authoritative

import (
	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
)

// Metrics is the authoritative server's telemetry handle set: the query
// volume and answer-kind breakdown the paper's server-side analyses (§3.4,
// §4.6) read, mirrored into the same registry the resolver reports to.
type Metrics struct {
	// Queries counts every query handled.
	Queries *obs.Counter
	// Referrals counts delegation responses (glue included).
	Referrals *obs.Counter
	// NXDomain counts RFC 2308 name-error responses.
	NXDomain *obs.Counter
	// Refused counts queries outside every served zone.
	Refused *obs.Counter
	// RRLPassed counts UDP responses the rate limiter let through.
	RRLPassed *obs.Counter
	// RRLDropped counts UDP responses RRL suppressed entirely.
	RRLDropped *obs.Counter
	// RRLSlipped counts limited responses sent truncated (TC=1) instead
	// of dropped, inviting the client to retry over TCP.
	RRLSlipped *obs.Counter
}

// Metric names under which Instrument registers the server's telemetry.
const (
	MetricQueries    = "auth.queries"
	MetricReferrals  = "auth.referrals"
	MetricNXDomain   = "auth.nxdomain"
	MetricRefused    = "auth.refused"
	MetricRRLPassed  = "auth.rrl_passed"
	MetricRRLDropped = "auth.rrl_dropped"
	MetricRRLSlipped = "auth.rrl_slipped"
)

// Instrument attaches registry-backed metrics to the server. A nil registry
// detaches (Obs reverts to nil, the zero-cost configuration).
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		s.Obs = nil
		return
	}
	s.Obs = &Metrics{
		Queries:    reg.Counter(MetricQueries),
		Referrals:  reg.Counter(MetricReferrals),
		NXDomain:   reg.Counter(MetricNXDomain),
		Refused:    reg.Counter(MetricRefused),
		RRLPassed:  reg.Counter(MetricRRLPassed),
		RRLDropped: reg.Counter(MetricRRLDropped),
		RRLSlipped: reg.Counter(MetricRRLSlipped),
	}
}

// observe books one handled query by its response shape.
func (m *Metrics) observe(resp *dnswire.Message) {
	m.Queries.Inc()
	switch {
	case resp.IsReferral():
		m.Referrals.Inc()
	case resp.Header.RCode == dnswire.RCodeNXDomain:
		m.NXDomain.Inc()
	case resp.Header.RCode == dnswire.RCodeRefused:
		m.Refused.Inc()
	}
}
