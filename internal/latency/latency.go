// Package latency models wide-area round-trip times by world region, and IP
// anycast site selection, replacing the paper's physical vantage points and
// its Route53 anycast deployment (§5.3, §6.2). Medians are calibrated so
// the paper's orderings hold: intra-region paths are tens of milliseconds,
// inter-continental paths are hundreds, and anycast shortens the tail far
// more than the median.
package latency

import (
	"net/netip"
	"sync"
	"time"

	"dnsttl/internal/simnet"
)

// Region is a coarse world region, matching Figure 10b's breakdown.
type Region uint8

// Regions in the paper's order (AF, AS, EU, NA, OC, SA).
const (
	AF Region = iota
	AS
	EU
	NA
	OC
	SA
)

// AllRegions lists every region.
var AllRegions = []Region{AF, AS, EU, NA, OC, SA}

func (r Region) String() string {
	switch r {
	case AF:
		return "AF"
	case AS:
		return "AS"
	case EU:
		return "EU"
	case NA:
		return "NA"
	case OC:
		return "OC"
	case SA:
		return "SA"
	}
	return "??"
}

// baseRTTMs[a][b] is the median RTT in milliseconds between regions a and b,
// from rough great-circle geography plus typical transit inflation.
var baseRTTMs = [6][6]float64{
	//        AF   AS   EU   NA   OC   SA
	AF: {60, 280, 140, 230, 350, 330},
	AS: {280, 50, 230, 200, 150, 320},
	EU: {140, 230, 25, 110, 280, 210},
	NA: {230, 200, 110, 35, 160, 150},
	OC: {350, 150, 280, 160, 30, 280},
	SA: {330, 320, 210, 150, 280, 45},
}

// BaseRTT returns the median RTT between two regions.
func BaseRTT(a, b Region) time.Duration {
	return time.Duration(baseRTTMs[a][b] * float64(time.Millisecond))
}

// PathModel produces jittered samples around the inter-region median. Sigma
// defaults to 0.45 — wide enough to give Internet-like tails without
// swamping the regional structure.
func PathModel(a, b Region, sigma float64) simnet.LatencyModel {
	if sigma <= 0 {
		sigma = 0.45
	}
	med := BaseRTT(a, b)
	return simnet.LogNormal{Median: med, Sigma: sigma, Floor: med / 4}
}

// AnycastCatalog is a set of anycast site locations for one service
// address. Queries reach the nearest site region-wise, which is how anycast
// compresses the RTT tail (§6.2): a client two continents from the unicast
// origin instead reaches an in-region site.
type AnycastCatalog struct {
	Sites []Region
}

// Route53Like returns a 45-site catalog shaped like the paper's anycast
// comparison service: sites concentrated where infrastructure is (many in
// EU/NA, several in AS, a few elsewhere).
func Route53Like() *AnycastCatalog {
	sites := make([]Region, 0, 45)
	add := func(r Region, n int) {
		for i := 0; i < n; i++ {
			sites = append(sites, r)
		}
	}
	add(NA, 14)
	add(EU, 12)
	add(AS, 10)
	add(SA, 4)
	add(OC, 3)
	add(AF, 2)
	return &AnycastCatalog{Sites: sites}
}

// NearestRegion returns the site region with the lowest base RTT from the
// client.
func (c *AnycastCatalog) NearestRegion(client Region) Region {
	best := c.Sites[0]
	for _, s := range c.Sites[1:] {
		if BaseRTT(client, s) < BaseRTT(client, best) {
			best = s
		}
	}
	return best
}

// Model returns the latency model from a client region to the anycast
// service: the path to the nearest site.
func (c *AnycastCatalog) Model(client Region, sigma float64) simnet.LatencyModel {
	return PathModel(client, c.NearestRegion(client), sigma)
}

// Topology places addresses in regions and derives per-link latency models
// for simnet. Anycast service addresses are registered with a catalog and
// resolve to the nearest site from each source.
type Topology struct {
	mu      sync.RWMutex
	regions map[netip.Addr]Region
	anycast map[netip.Addr]*AnycastCatalog
	links   map[[2]netip.Addr]simnet.LatencyModel
	// Sigma is the log-normal jitter parameter for all paths.
	Sigma float64
	// Default is the region assumed for unplaced addresses.
	Default Region
}

// NewTopology creates an empty topology defaulting unplaced addresses to EU
// (where both the paper's EC2 test servers and most Atlas probes are).
func NewTopology() *Topology {
	return &Topology{
		regions: make(map[netip.Addr]Region),
		anycast: make(map[netip.Addr]*AnycastCatalog),
		links:   make(map[[2]netip.Addr]simnet.LatencyModel),
		Default: EU,
	}
}

// SetLink overrides the latency model for one directed (src, dst) pair —
// used for intra-site hops like a resolver farm's frontend→backend links,
// which are orders of magnitude faster than wide-area paths.
func (t *Topology) SetLink(src, dst netip.Addr, m simnet.LatencyModel) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[[2]netip.Addr{src, dst}] = m
}

// Place pins addr to a region.
func (t *Topology) Place(addr netip.Addr, r Region) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.regions[addr] = r
}

// PlaceAnycast registers addr as an anycast service with the given sites.
func (t *Topology) PlaceAnycast(addr netip.Addr, c *AnycastCatalog) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.anycast[addr] = c
}

// RegionOf returns the region addr was placed in, or the default.
func (t *Topology) RegionOf(addr netip.Addr) Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if r, ok := t.regions[addr]; ok {
		return r
	}
	return t.Default
}

// LatencyFor implements the simnet.Network hook.
func (t *Topology) LatencyFor(src, dst netip.Addr) simnet.LatencyModel {
	srcR := t.RegionOf(src)
	t.mu.RLock()
	if m, ok := t.links[[2]netip.Addr{src, dst}]; ok {
		t.mu.RUnlock()
		return m
	}
	cat := t.anycast[dst]
	t.mu.RUnlock()
	if cat != nil {
		return cat.Model(srcR, t.Sigma)
	}
	return PathModel(srcR, t.RegionOf(dst), t.Sigma)
}
