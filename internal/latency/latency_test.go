package latency

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/simnet"
)

func TestRegionStrings(t *testing.T) {
	want := map[Region]string{AF: "AF", AS: "AS", EU: "EU", NA: "NA", OC: "OC", SA: "SA", Region(99): "??"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
	if len(AllRegions) != 6 {
		t.Errorf("AllRegions = %v", AllRegions)
	}
}

func TestBaseRTTSymmetricAndSane(t *testing.T) {
	for _, a := range AllRegions {
		for _, b := range AllRegions {
			if BaseRTT(a, b) != BaseRTT(b, a) {
				t.Errorf("RTT(%s,%s) asymmetric", a, b)
			}
			if a == b && BaseRTT(a, b) > 100*time.Millisecond {
				t.Errorf("intra-region RTT(%s) = %v too large", a, BaseRTT(a, b))
			}
			if a != b && BaseRTT(a, b) < BaseRTT(a, a) {
				t.Errorf("inter-region RTT(%s,%s) below intra-region", a, b)
			}
		}
	}
}

func TestPathModelMedian(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := PathModel(EU, NA, 0)
	below := 0
	n := 5000
	for i := 0; i < n; i++ {
		if m.Sample(r) < BaseRTT(EU, NA) {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("median fraction = %.3f", frac)
	}
}

func TestAnycastNearest(t *testing.T) {
	cat := Route53Like()
	if len(cat.Sites) != 45 {
		t.Fatalf("sites = %d, want 45", len(cat.Sites))
	}
	// Every region with a site should pick an in-region site.
	for _, r := range AllRegions {
		near := cat.NearestRegion(r)
		if near != r {
			t.Errorf("nearest site for %s = %s, want in-region", r, near)
		}
	}
	// A catalog without SA sites sends SA clients to NA (closest).
	small := &AnycastCatalog{Sites: []Region{EU, NA}}
	if got := small.NearestRegion(SA); got != NA {
		t.Errorf("SA → %s, want NA", got)
	}
}

// TestAnycastBeatsUnicastTail reproduces the §6.2 shape: against a unicast
// EU origin, anycast helps distant clients' tail latency far more than an
// EU client's median.
func TestAnycastBeatsUnicastTail(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cat := Route53Like()
	uniOC := PathModel(OC, EU, 0)
	anyOC := cat.Model(OC, 0)
	var sumUni, sumAny time.Duration
	for i := 0; i < 2000; i++ {
		sumUni += uniOC.Sample(r)
		sumAny += anyOC.Sample(r)
	}
	if sumAny >= sumUni/3 {
		t.Errorf("anycast for OC clients should be ≫ faster: uni=%v any=%v", sumUni/2000, sumAny/2000)
	}
}

func TestTopology(t *testing.T) {
	topo := NewTopology()
	client := netip.MustParseAddr("10.1.0.1")
	server := netip.MustParseAddr("192.0.2.1")
	anyAddr := netip.MustParseAddr("192.0.2.2")
	topo.Place(client, SA)
	topo.Place(server, EU)
	topo.PlaceAnycast(anyAddr, Route53Like())

	if topo.RegionOf(client) != SA || topo.RegionOf(server) != EU {
		t.Errorf("RegionOf broken")
	}
	if topo.RegionOf(netip.MustParseAddr("10.9.9.9")) != EU {
		t.Errorf("default region should be EU")
	}

	r := rand.New(rand.NewSource(3))
	uni := topo.LatencyFor(client, server)
	anyM := topo.LatencyFor(client, anyAddr)
	var sumU, sumA time.Duration
	for i := 0; i < 1000; i++ {
		sumU += uni.Sample(r)
		sumA += anyM.Sample(r)
	}
	// SA→EU unicast ≈ 210 ms median; SA anycast hits the SA site ≈ 45 ms.
	if sumA >= sumU {
		t.Errorf("anycast should beat transcontinental unicast: %v vs %v", sumA/1000, sumU/1000)
	}
}

func TestTopologyIsSimnetCompatible(t *testing.T) {
	topo := NewTopology()
	net := simnet.NewNetwork(1)
	net.LatencyFor = topo.LatencyFor // compile-time + runtime shape check
	a := netip.MustParseAddr("192.0.2.1")
	net.Attach(a, simnet.HandlerFunc(func(w []byte, _ netip.Addr) []byte { return w }))
	_, rtt, err := net.Exchange(netip.MustParseAddr("10.0.0.1"), a, []byte{1})
	if err != nil || rtt <= 0 {
		t.Errorf("exchange through topology: rtt=%v err=%v", rtt, err)
	}
}
