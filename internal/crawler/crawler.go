// Package crawler reimplements the paper's §5.1 measurement pipeline: for
// each domain in a list, find its authoritative servers through the parent,
// query the child directly (no shared recursives) for NS, A, AAAA, MX,
// DNSKEY and CNAME records, and aggregate record counts, unique-value
// ratios, TTL distributions, zero-TTL tails and bailiwick configurations —
// the raw material of Tables 5, 8 and 9 and Figure 9.
package crawler

import (
	"fmt"
	"net/netip"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/stats"
	"dnsttl/internal/zone"
	"dnsttl/internal/zonegen"
)

// CrawledTypes are the record types retrieved per domain, in report order.
var CrawledTypes = []dnswire.Type{
	dnswire.TypeNS, dnswire.TypeA, dnswire.TypeAAAA,
	dnswire.TypeMX, dnswire.TypeDNSKEY, dnswire.TypeCNAME,
}

// TypeStats aggregates one record type over a list.
type TypeStats struct {
	// Count is the total records seen; Unique the distinct RDATA values.
	Count  int
	Unique int
	// ZeroTTLDomains counts domains serving this type with TTL 0
	// (Table 8).
	ZeroTTLDomains int
	// TTLs collects one observation per record for the Figure 9 CDFs.
	TTLs *stats.Sample

	uniq map[string]struct{}
}

func newTypeStats() *TypeStats {
	return &TypeStats{TTLs: stats.NewSample(), uniq: make(map[string]struct{})}
}

func (ts *TypeStats) observe(rr dnswire.RR) {
	ts.Count++
	// Uniqueness is by RDATA value: shared hosting means many domains
	// pointing at the same nameserver host or address (Table 5's ratios).
	key := rr.Data.String()
	if _, ok := ts.uniq[key]; !ok {
		ts.uniq[key] = struct{}{}
		ts.Unique++
	}
	ts.TTLs.Add(float64(rr.TTL))
}

// Ratio returns Count/Unique, the Table 5 shared-hosting indicator.
func (ts *TypeStats) Ratio() float64 {
	if ts.Unique == 0 {
		return 0
	}
	return float64(ts.Count) / float64(ts.Unique)
}

// Result is one list's crawl summary.
type Result struct {
	List       zonegen.List
	Domains    int
	Responsive int
	Discarded  int
	// Per-type aggregates.
	Types map[dnswire.Type]*TypeStats
	// NS-query outcome census (Table 9).
	CNAMEAnswers int
	SOAAnswers   int
	RespondNS    int
	OutOnly      int
	InOnly       int
	Mixed        int
	// Parent/child NS-TTL comparison — the "full comparison of parent and
	// child" the paper flags as future work (§5.1). Counts are per domain
	// with both sides observed; Ratios collects child/parent TTL ratios.
	ChildShorter, ChildEqual, ChildLonger int
	ParentChildRatios                     *stats.Sample
	// PerDomainContent groups responsive domains for the DMap join.
	Content map[zonegen.ContentClass][]dnswire.Name
}

// Crawler runs crawls against a generated world.
type Crawler struct {
	World *zonegen.World
	// Addr is the crawler's source address (the paper crawled from one
	// EC2 vantage).
	Addr netip.Addr
}

// New creates a crawler for w.
func New(w *zonegen.World) *Crawler {
	return &Crawler{World: w, Addr: netip.MustParseAddr("10.200.0.1")}
}

var queryID uint16

func (c *Crawler) exchange(dst netip.Addr, name dnswire.Name, t dnswire.Type) (*dnswire.Message, error) {
	queryID++
	q := dnswire.NewIterativeQuery(queryID, name, t)
	wire, err := dnswire.Encode(q)
	if err != nil {
		return nil, err
	}
	respWire, _, err := c.World.Net.Exchange(c.Addr, dst, wire)
	if err != nil {
		return nil, err
	}
	return dnswire.Decode(respWire)
}

// childServers finds the domain's authoritative addresses the way a crawler
// must: ask the parent for the delegation and resolve the NS hosts (glue
// first, then the provider host directory). The parent-side NS TTL is
// returned for the parent/child comparison (0 when unseen).
func (c *Crawler) childServers(d *zonegen.Domain) ([]netip.Addr, uint32, error) {
	resp, err := c.exchange(d.ParentAddr, d.Name, dnswire.TypeNS)
	if err != nil {
		return nil, 0, fmt.Errorf("parent query: %w", err)
	}
	var hosts []dnswire.Name
	var parentTTL uint32
	glue := make(map[dnswire.Name]netip.Addr)
	nsRRs := resp.Authority
	if len(resp.Answer) > 0 {
		nsRRs = resp.Answer // parent may be authoritative (root for TLDs)
	}
	for _, rr := range nsRRs {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			hosts = append(hosts, ns.Host)
			if rr.Name == d.Name {
				parentTTL = rr.TTL
			}
		}
	}
	for _, rr := range resp.Additional {
		if a, ok := rr.Data.(dnswire.A); ok {
			glue[rr.Name] = a.Addr
		}
	}
	var addrs []netip.Addr
	seen := map[netip.Addr]bool{}
	for _, h := range hosts {
		addr, ok := glue[h]
		if !ok {
			addr, ok = c.World.HostAddr[h]
		}
		if ok && !seen[addr] {
			seen[addr] = true
			addrs = append(addrs, addr)
		}
	}
	return addrs, parentTTL, nil
}

// CrawlDomain measures one domain into res.
func (c *Crawler) CrawlDomain(d *zonegen.Domain, res *Result) {
	res.Domains++
	addrs, parentNSTTL, err := c.childServers(d)
	if err != nil || len(addrs) == 0 {
		res.Discarded++
		return
	}
	child := addrs[0]

	// One probe query decides responsiveness (the paper's "responded to
	// at least one of our queries").
	nsResp, err := c.exchange(child, d.Name, dnswire.TypeNS)
	if err != nil {
		res.Discarded++
		return
	}
	res.Responsive++

	// Classify the NS answer for Table 9.
	nsAnswers := nsResp.AnswersFor(d.Name, dnswire.TypeNS)
	sawCNAME := len(nsResp.AnswersFor(d.Name, dnswire.TypeCNAME)) > 0
	switch {
	case sawCNAME:
		res.CNAMEAnswers++
	case len(nsAnswers) == 0:
		// NODATA (SOA in authority) or NXDOMAIN.
		res.SOAAnswers++
	default:
		res.RespondNS++
		// Parent/child NS-TTL comparison (the paper's declared future
		// work): the child's authoritative value vs the delegation's.
		if parentNSTTL > 0 {
			childTTL := nsAnswers[0].TTL
			switch {
			case childTTL < parentNSTTL:
				res.ChildShorter++
			case childTTL == parentNSTTL:
				res.ChildEqual++
			default:
				res.ChildLonger++
			}
			res.ParentChildRatios.Add(float64(childTTL) / float64(parentNSTTL))
		}
		var hosts []dnswire.Name
		for _, rr := range nsAnswers {
			hosts = append(hosts, rr.Data.(dnswire.NS).Host)
		}
		switch zone.ClassifyBailiwick(d.Name, hosts) {
		case zone.BailiwickOutOnly:
			res.OutOnly++
		case zone.BailiwickInOnly:
			res.InOnly++
		case zone.BailiwickMixed:
			res.Mixed++
		}
	}

	// Retrieve every crawled type from the child.
	zeroSeen := map[dnswire.Type]bool{}
	record := func(rr dnswire.RR) {
		ts := res.Types[rr.Type]
		if ts == nil {
			return
		}
		ts.observe(rr)
		if rr.TTL == 0 && !zeroSeen[rr.Type] {
			zeroSeen[rr.Type] = true
			ts.ZeroTTLDomains++
		}
	}
	cnameCounted := false
	for _, t := range CrawledTypes {
		var resp *dnswire.Message
		if t == dnswire.TypeNS {
			resp = nsResp
		} else {
			resp, err = c.exchange(child, d.Name, t)
			if err != nil {
				continue
			}
		}
		for _, rr := range resp.Answer {
			if rr.Name != d.Name {
				continue
			}
			if rr.Type == t && t != dnswire.TypeCNAME {
				record(rr)
			}
			// CNAMEs surface in answers to any query type; count once per
			// domain.
			if rr.Type == dnswire.TypeCNAME && !cnameCounted {
				record(rr)
				cnameCounted = true
			}
		}
	}

	// Root list: report the NS hosts' A/AAAA instead (TLDs own none).
	if d.List == zonegen.Root && len(nsAnswers) > 0 {
		for _, rr := range nsAnswers {
			host := rr.Data.(dnswire.NS).Host
			srv := child
			if !host.IsSubdomainOf(d.Name) {
				if a, ok := c.World.HostAddr[host]; ok {
					srv = a
				}
			}
			for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
				resp, err := c.exchange(srv, host, t)
				if err != nil {
					continue
				}
				for _, a := range resp.AnswersFor(host, t) {
					record(a)
				}
			}
		}
	}

	if d.List == zonegen.NL {
		res.Content[d.Content] = append(res.Content[d.Content], d.Name)
	}
}

// CrawlList crawls every domain of one list.
func (c *Crawler) CrawlList(l zonegen.List) *Result {
	res := &Result{
		List:              l,
		Types:             make(map[dnswire.Type]*TypeStats),
		Content:           make(map[zonegen.ContentClass][]dnswire.Name),
		ParentChildRatios: stats.NewSample(),
	}
	for _, t := range CrawledTypes {
		res.Types[t] = newTypeStats()
	}
	for _, d := range c.World.Lists[l] {
		c.CrawlDomain(d, res)
	}
	return res
}

// CrawlAll crawls all five lists in the paper's order.
func (c *Crawler) CrawlAll() map[zonegen.List]*Result {
	out := make(map[zonegen.List]*Result, len(zonegen.AllLists))
	for _, l := range zonegen.AllLists {
		out[l] = c.CrawlList(l)
	}
	return out
}

// ResponsiveRatio returns Responsive/Domains.
func (r *Result) ResponsiveRatio() float64 {
	if r.Domains == 0 {
		return 0
	}
	return float64(r.Responsive) / float64(r.Domains)
}

// PercentOutOnly returns the Table 9 "percent out" row.
func (r *Result) PercentOutOnly() float64 {
	if r.RespondNS == 0 {
		return 0
	}
	return 100 * float64(r.OutOnly) / float64(r.RespondNS)
}
