package crawler

import (
	"testing"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zonegen"
)

func crawlWorld(t *testing.T, scale float64) map[zonegen.List]*Result {
	t.Helper()
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(5)
	w := zonegen.Build(zonegen.Config{Seed: 42, Scale: scale}, net, clock)
	return New(w).CrawlAll()
}

func TestCrawlResponsiveRatios(t *testing.T) {
	results := crawlWorld(t, 0.05)
	// Paper Table 5 ratios: Alexa .99, Majestic .93, Umbrella .78,
	// .nl .94–.98, Root .97.
	want := map[zonegen.List]float64{
		zonegen.Alexa:    0.99,
		zonegen.Majestic: 0.93,
		zonegen.Umbrella: 0.78,
		zonegen.NL:       0.977,
		zonegen.Root:     0.97,
	}
	for l, w := range want {
		got := results[l].ResponsiveRatio()
		if got < w-0.08 || got > w+0.08 {
			t.Errorf("%s responsive ratio = %.3f, want ≈%.2f", l, got, w)
		}
	}
}

func TestCrawlRecordPresence(t *testing.T) {
	results := crawlWorld(t, 0.05)
	for _, l := range zonegen.AllLists {
		r := results[l]
		ns := r.Types[dnswire.TypeNS]
		if ns.Count == 0 || ns.Unique == 0 {
			t.Errorf("%s: no NS records crawled", l)
		}
		if r.Types[dnswire.TypeA].Count == 0 {
			t.Errorf("%s: no A records crawled", l)
		}
		// Shared hosting: NS values are reused across domains. The root's
		// ratio is small (paper: 1.75) because many TLDs run their own
		// in-bailiwick servers.
		minRatio := 1.5
		if l == zonegen.Root {
			minRatio = 1.15
		}
		if ratio := ns.Ratio(); ratio < minRatio {
			t.Errorf("%s: NS unique ratio = %.2f, want >%.2f (shared hosting)", l, ratio, minRatio)
		}
	}
	// .nl has far heavier NS sharing than the top lists (Table 5:
	// ratio 190 vs ≈9-10).
	if results[zonegen.NL].Types[dnswire.TypeNS].Ratio() <=
		results[zonegen.Alexa].Types[dnswire.TypeNS].Ratio() {
		t.Errorf(".nl NS ratio (%.1f) should exceed Alexa's (%.1f)",
			results[zonegen.NL].Types[dnswire.TypeNS].Ratio(),
			results[zonegen.Alexa].Types[dnswire.TypeNS].Ratio())
	}
	// DNSSEC: .nl is far more signed than the top lists.
	nlKeys := results[zonegen.NL].Types[dnswire.TypeDNSKEY].Count
	alexaKeys := results[zonegen.Alexa].Types[dnswire.TypeDNSKEY].Count
	if nlKeys == 0 || float64(nlKeys)/float64(results[zonegen.NL].Responsive) < 0.4 {
		t.Errorf(".nl DNSKEY presence too low: %d of %d", nlKeys, results[zonegen.NL].Responsive)
	}
	if alexaKeys > nlKeys {
		t.Errorf("Alexa should have fewer DNSKEYs than .nl")
	}
}

func TestCrawlBailiwick(t *testing.T) {
	results := crawlWorld(t, 0.05)
	// Table 9: top lists >90 % out-only; root ≈49 %.
	for _, l := range []zonegen.List{zonegen.Alexa, zonegen.Majestic, zonegen.Umbrella, zonegen.NL} {
		if got := results[l].PercentOutOnly(); got < 85 {
			t.Errorf("%s out-only = %.1f%%, want >85%%", l, got)
		}
	}
	rootOut := results[zonegen.Root].PercentOutOnly()
	if rootOut < 38 || rootOut > 60 {
		t.Errorf("root out-only = %.1f%%, want ≈49%%", rootOut)
	}
	if results[zonegen.Root].InOnly == 0 || results[zonegen.Root].Mixed == 0 {
		t.Errorf("root should have in-only and mixed TLDs: %+v", results[zonegen.Root])
	}
}

func TestCrawlUmbrellaCNAMEAndSOA(t *testing.T) {
	results := crawlWorld(t, 0.05)
	u := results[zonegen.Umbrella]
	// Table 9: Umbrella has a huge CNAME tail (452k of 783k responsive).
	fCNAME := float64(u.CNAMEAnswers) / float64(u.Responsive)
	if fCNAME < 0.4 || fCNAME > 0.75 {
		t.Errorf("Umbrella CNAME fraction = %.3f, want ≈0.58", fCNAME)
	}
	if u.SOAAnswers == 0 {
		t.Errorf("Umbrella should have SOA/NODATA answers")
	}
	// Alexa's CNAME tail is small (≈5 %).
	a := results[zonegen.Alexa]
	if f := float64(a.CNAMEAnswers) / float64(a.Responsive); f > 0.15 {
		t.Errorf("Alexa CNAME fraction = %.3f, want ≈0.05", f)
	}
}

func TestCrawlTTLShapes(t *testing.T) {
	results := crawlWorld(t, 0.05)
	// Figure 9a: ≈80 % of root NS TTLs are 1–2 days.
	rootNS := results[zonegen.Root].Types[dnswire.TypeNS].TTLs
	longFrac := 1 - rootNS.FractionBelow(86400)
	if longFrac < 0.65 {
		t.Errorf("root NS TTLs ≥1d = %.2f, want ≈0.8", longFrac)
	}
	// Umbrella NS: ≈25 % under a minute.
	umbNS := results[zonegen.Umbrella].Types[dnswire.TypeNS].TTLs
	if f := umbNS.FractionAtMost(60); f < 0.12 || f > 0.40 {
		t.Errorf("Umbrella NS ≤60s = %.2f, want ≈0.25", f)
	}
	// NS lives longer than A for the general lists (Figure 9 trend).
	for _, l := range []zonegen.List{zonegen.Alexa, zonegen.Majestic} {
		ns := results[l].Types[dnswire.TypeNS].TTLs
		a := results[l].Types[dnswire.TypeA].TTLs
		if ns.Median() <= a.Median() {
			t.Errorf("%s: NS median %.0f should exceed A median %.0f", l, ns.Median(), a.Median())
		}
	}
}

func TestCrawlZeroTTLTail(t *testing.T) {
	results := crawlWorld(t, 0.2) // larger sample for the rare tail
	total := 0
	for _, l := range []zonegen.List{zonegen.Alexa, zonegen.Majestic, zonegen.Umbrella, zonegen.NL} {
		for _, ts := range results[l].Types {
			total += ts.ZeroTTLDomains
		}
	}
	if total == 0 {
		t.Errorf("no zero-TTL domains found; Table 8 expects a small tail")
	}
	// Root has none (Table 8).
	for _, ts := range results[zonegen.Root].Types {
		if ts.ZeroTTLDomains != 0 {
			t.Errorf("root zero-TTL domains = %d, want 0", ts.ZeroTTLDomains)
		}
	}
}

func TestCrawlContentJoin(t *testing.T) {
	results := crawlWorld(t, 0.05)
	nl := results[zonegen.NL]
	if len(nl.Content[zonegen.Placeholder]) == 0 {
		t.Errorf("no placeholder domains joined")
	}
	if len(nl.Content[zonegen.Unclassified]) == 0 {
		t.Errorf("no unclassified domains (most of .nl should be)")
	}
}

func TestTypeStatsRatio(t *testing.T) {
	ts := newTypeStats()
	if ts.Ratio() != 0 {
		t.Errorf("empty ratio should be 0")
	}
	ts.observe(dnswire.NewA("a.org", 60, "192.0.2.1"))
	ts.observe(dnswire.NewA("a.org", 60, "192.0.2.1"))
	ts.observe(dnswire.NewA("a.org", 60, "192.0.2.2"))
	if ts.Count != 3 || ts.Unique != 2 || ts.Ratio() != 1.5 {
		t.Errorf("stats = %+v", ts)
	}
}
