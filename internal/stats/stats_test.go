package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestQuantiles(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 50}, {0.75, 75}, {0.95, 95}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := s.Median(); got != 50 {
		t.Errorf("Median = %v", got)
	}
	if !math.IsNaN(NewSample().Quantile(0.5)) {
		t.Errorf("empty sample quantile should be NaN")
	}
}

func TestMeanMinMax(t *testing.T) {
	s := NewSample(3, 1, 2)
	if s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Errorf("mean/min/max = %v %v %v", s.Mean(), s.Min(), s.Max())
	}
	e := NewSample()
	if !math.IsNaN(e.Mean()) || !math.IsNaN(e.Min()) || !math.IsNaN(e.Max()) {
		t.Errorf("empty sample should be NaN")
	}
}

func TestFractions(t *testing.T) {
	s := NewSample(1, 2, 2, 3)
	if got := s.FractionBelow(2); got != 0.25 {
		t.Errorf("FractionBelow(2) = %v", got)
	}
	if got := s.FractionAtMost(2); got != 0.75 {
		t.Errorf("FractionAtMost(2) = %v", got)
	}
	if got := s.FractionEqual(2); got != 0.5 {
		t.Errorf("FractionEqual(2) = %v", got)
	}
	if got := s.FractionAtMost(0); got != 0 {
		t.Errorf("FractionAtMost(0) = %v", got)
	}
	if got := s.FractionAtMost(99); got != 1 {
		t.Errorf("FractionAtMost(99) = %v", got)
	}
}

func TestCDF(t *testing.T) {
	s := NewSample(1, 1, 2, 4)
	cdf := s.CDF()
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF = %v", cdf)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if NewSample().CDF() != nil {
		t.Errorf("empty CDF should be nil")
	}
}

func TestAddDurationAndSummary(t *testing.T) {
	s := NewSample()
	s.AddDuration(30 * time.Millisecond)
	s.AddDuration(50 * time.Millisecond)
	su := s.Summarize()
	if su.N != 2 || su.Median != 30 || su.MaxVal != 50 {
		t.Errorf("summary = %+v", su)
	}
	if !strings.Contains(su.String(), "median=30.0") {
		t.Errorf("summary string = %q", su.String())
	}
}

func TestHistogram(t *testing.T) {
	s := NewSample(0.5, 1, 1.5, 2, 10)
	counts := s.Histogram([]float64{0, 1, 2})
	// [0,1): 0.5 → 1; [1,2): 1, 1.5 → 2; overflow ≥2: 2, 10 → 2
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 2 {
		t.Errorf("histogram = %v", counts)
	}
}

func TestRenderCDF(t *testing.T) {
	a := NewSample(1, 2, 3, 4, 5)
	b := NewSample(10, 20, 30)
	out := RenderCDF("Figure X", "ms", map[string]*Sample{"short": a, "long": b}, 40, true)
	for _, want := range []string{"Figure X", "a = long", "b = short", "100%", "0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderCDF missing %q:\n%s", want, out)
		}
	}
	if out := RenderCDF("empty", "x", map[string]*Sample{"e": NewSample()}, 40, false); !strings.Contains(out, "no data") {
		t.Errorf("empty render = %q", out)
	}
	// Default width and linear axis paths.
	_ = RenderCDF("t", "x", map[string]*Sample{"s": NewSample(1, 2)}, 0, false)
}

func TestTable(t *testing.T) {
	tbl := &Table{Title: "Table 1", Header: []string{"Name", "TTL"}}
	tbl.AddRow("a.nic.cl", "172800")
	tbl.AddRow("x", "1")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("table:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "Name") || !strings.Contains(lines[3], "172800") {
		t.Errorf("table content:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatDurationMs(28700 * time.Microsecond); got != "28.7" {
		t.Errorf("FormatDurationMs = %q", got)
	}
	cases := map[int]string{0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567"}
	for n, want := range cases {
		if got := FormatCount(n); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", n, got, want)
		}
	}
}

// TestQuickQuantileBounds: quantiles are monotone in q and bounded by
// min/max for arbitrary samples.
func TestQuickQuantileBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		s := NewSample()
		for i := 0; i < int(n); i++ {
			s.Add(r.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCDFIsDistribution: the CDF is nondecreasing, ends at 1, and
// FractionAtMost agrees with it at every step.
func TestQuickCDFIsDistribution(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := NewSample(clean...)
		cdf := s.CDF()
		if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].X < cdf[j].X }) {
			return false
		}
		prev := 0.0
		for _, p := range cdf {
			if p.F < prev {
				return false
			}
			if math.Abs(s.FractionAtMost(p.X)-p.F) > 1e-12 {
				return false
			}
			prev = p.F
		}
		return math.Abs(cdf[len(cdf)-1].F-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
