// Package stats provides the small statistics toolkit the experiments use
// to turn raw measurements into the paper's tables and figures: empirical
// CDFs, quantiles, histograms and text renderers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is a mutable collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample creates a sample, optionally pre-loaded.
func NewSample(xs ...float64) *Sample {
	s := &Sample{xs: append([]float64(nil), xs...)}
	return s
}

// Add appends observations.
func (s *Sample) Add(xs ...float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// AddDuration appends a time observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len returns the observation count.
func (s *Sample) Len() int { return len(s.xs) }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th empirical quantile (0 ≤ q ≤ 1) using the
// nearest-rank method. It returns NaN for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	rank := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.xs[rank]
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the arithmetic mean (NaN when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min and Max return the extremes (NaN when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// FractionBelow returns the fraction of observations strictly less than x.
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, x)
	return float64(i) / float64(len(s.xs))
}

// FractionAtMost returns the fraction of observations ≤ x — the empirical
// CDF evaluated at x.
func (s *Sample) FractionAtMost(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] > x })
	return float64(i) / float64(len(s.xs))
}

// FractionEqual returns the fraction of observations exactly equal to x.
func (s *Sample) FractionEqual(x float64) float64 {
	return s.FractionAtMost(x) - s.FractionBelow(x)
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction ≤ X
}

// CDF returns the full empirical CDF as steps at each distinct value.
func (s *Sample) CDF() []CDFPoint {
	if len(s.xs) == 0 {
		return nil
	}
	s.sort()
	var out []CDFPoint
	n := float64(len(s.xs))
	for i := 0; i < len(s.xs); i++ {
		if i+1 < len(s.xs) && s.xs[i+1] == s.xs[i] {
			continue
		}
		out = append(out, CDFPoint{X: s.xs[i], F: float64(i+1) / n})
	}
	return out
}

// Summary captures the quantiles the paper reports in §5.3.
type Summary struct {
	N                     int
	Median, P75, P95, P99 float64
	Mean, MinVal, MaxVal  float64
}

// Summarize computes a Summary.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.Len(),
		Median: s.Quantile(0.5),
		P75:    s.Quantile(0.75),
		P95:    s.Quantile(0.95),
		P99:    s.Quantile(0.99),
		Mean:   s.Mean(),
		MinVal: s.Min(),
		MaxVal: s.Max(),
	}
}

// String renders the summary on one line.
func (su Summary) String() string {
	return fmt.Sprintf("n=%d median=%.1f p75=%.1f p95=%.1f p99=%.1f mean=%.1f",
		su.N, su.Median, su.P75, su.P95, su.P99, su.Mean)
}

// Histogram counts observations into caller-defined bins. Bin i covers
// [edges[i], edges[i+1]); a final overflow bin catches the rest.
func (s *Sample) Histogram(edges []float64) []int {
	counts := make([]int, len(edges))
	for _, x := range s.xs {
		placed := false
		for i := 0; i+1 < len(edges); i++ {
			if x >= edges[i] && x < edges[i+1] {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed && len(edges) > 0 && x >= edges[len(edges)-1] {
			counts[len(edges)-1]++
		}
	}
	return counts
}

// RenderCDF draws an ASCII CDF plot of the named series, sharing an x-axis.
// Width is the plot width in columns; values are plotted on a log x-axis
// when logX is set (zeros are clamped to the smallest positive value).
func RenderCDF(title, xlabel string, series map[string]*Sample, width int, logX bool) string {
	if width <= 0 {
		width = 60
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)

	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if s.Len() == 0 {
			continue
		}
		if v := s.Min(); v < minX {
			minX = v
		}
		if v := s.Max(); v > maxX {
			maxX = v
		}
	}
	if math.IsInf(minX, 1) {
		return title + ": (no data)\n"
	}
	if logX && minX <= 0 {
		minX = 0.01
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	xAt := func(col int) float64 {
		f := float64(col) / float64(width-1)
		if logX {
			return math.Exp(math.Log(minX) + f*(math.Log(maxX)-math.Log(minX)))
		}
		return minX + f*(maxX-minX)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	const rows = 10
	grid := make([][]byte, rows+1)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range names {
		s := series[name]
		if s.Len() == 0 {
			continue
		}
		mark := byte('a' + si)
		for col := 0; col < width; col++ {
			f := s.FractionAtMost(xAt(col))
			row := rows - int(math.Round(f*float64(rows)))
			if row < 0 {
				row = 0
			}
			if row > rows {
				row = rows
			}
			grid[row][col] = mark
		}
	}
	for i, line := range grid {
		frac := 1 - float64(i)/float64(rows)
		fmt.Fprintf(&b, "%4.0f%% |%s\n", frac*100, string(line))
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "       %-12.4g%*s%12.4g  (%s%s)\n", minX, width-24, "", maxX, xlabel, map[bool]string{true: ", log x", false: ""}[logX])
	for si, name := range names {
		fmt.Fprintf(&b, "       %c = %s (n=%d)\n", byte('a'+si), name, series[name].Len())
	}
	return b.String()
}

// Table renders rows of cells with padded columns, suitable for terminal
// output of the paper's tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// FormatDurationMs renders milliseconds with one decimal.
func FormatDurationMs(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// FormatCount renders n with thousands separators.
func FormatCount(n int) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}
