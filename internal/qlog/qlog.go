// Package qlog is the module's structured query-log plane: dnstap-shaped
// capture of individual DNS events — client queries arriving, responses
// leaving, upstream exchanges — at the resolver, the farm's frontends, and
// the authoritative servers.
//
// Where internal/obs aggregates (counters, histograms), qlog records: each
// captured event is one compact Record carrying timestamp, peer address,
// qname/qtype, rcode, answer TTL, cache outcome, latency, and transport.
// That stream is exactly the raw material of the paper's §3.4 passive
// methodology, so rotated logs feed straight into internal/entrada
// (cmd/dnstop) and reproduce the Figures 3/4 statistics from live traffic.
//
// The write path follows the module's alloc-pin discipline: producers
// publish into a fixed, lock-free MPMC ring (one CAS, no allocation, no
// blocking — a full ring drops the record and counts the drop), and a
// single consumer goroutine drains the ring, encodes (JSONL or a
// length-prefixed binary framing), and writes through a size-rotated file
// set. A nil *Logger or nil *Tap is a valid no-op costing one pointer
// check, so capture points need no "is logging on" branches of their own.
package qlog

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/simnet"
)

// Point is the capture point a record was taken at.
type Point uint8

const (
	// PointClientIn marks a query arriving from a client.
	PointClientIn Point = iota
	// PointResponseOut marks a response leaving for a client.
	PointResponseOut
	// PointUpstream marks one upstream exchange performed by a resolver.
	PointUpstream
	// PointNotify marks a push-plane NOTIFY arriving at a subscriber
	// (internal/push). Its Record reuses Name for the zone origin and TTL
	// for the advertised zone serial.
	PointNotify
)

// String renders the point's JSONL spelling.
func (p Point) String() string {
	switch p {
	case PointClientIn:
		return "client"
	case PointResponseOut:
		return "response"
	case PointUpstream:
		return "upstream"
	case PointNotify:
		return "notify"
	}
	return "unknown"
}

// ParsePoint maps the JSONL spellings back to a Point.
func ParsePoint(s string) (Point, error) {
	switch s {
	case "client":
		return PointClientIn, nil
	case "response":
		return PointResponseOut, nil
	case "upstream":
		return PointUpstream, nil
	case "notify":
		return PointNotify, nil
	}
	return 0, fmt.Errorf("qlog: unknown capture point %q", s)
}

// Outcome classifies how a response was produced (or how an upstream
// exchange ended). OutcomeNone is used where the concept does not apply
// (client-in records, authoritative responses, successful upstream
// exchanges).
type Outcome uint8

const (
	OutcomeNone Outcome = iota
	// OutcomeMiss: the response required upstream iteration.
	OutcomeMiss
	// OutcomeHit: answered from cache without any upstream query.
	OutcomeHit
	// OutcomeStale: answered past its TTL (RFC 8767 serve-stale).
	OutcomeStale
	// OutcomeCoalesced: answered by joining an identical in-flight query.
	OutcomeCoalesced
	// OutcomeTimeout: an upstream exchange that timed out.
	OutcomeTimeout
	// OutcomeError: an upstream exchange that failed for another reason.
	OutcomeError
	// OutcomeBlocked: answered by a middleware blocklist or static-answer
	// stage without consulting the resolver. (Appended for the middleware
	// plane; the binary encoding stores Outcome as a raw byte, so new
	// values append only.)
	OutcomeBlocked
	// OutcomeLimited: refused (or dropped) by a middleware per-client
	// rate-limiter stage.
	OutcomeLimited
)

// String renders the outcome's JSONL spelling.
func (o Outcome) String() string {
	switch o {
	case OutcomeMiss:
		return "miss"
	case OutcomeHit:
		return "hit"
	case OutcomeStale:
		return "stale"
	case OutcomeCoalesced:
		return "coalesced"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeError:
		return "error"
	case OutcomeBlocked:
		return "blocked"
	case OutcomeLimited:
		return "limited"
	}
	return ""
}

// ParseOutcome maps the JSONL spellings back to an Outcome.
func ParseOutcome(s string) (Outcome, error) {
	switch s {
	case "":
		return OutcomeNone, nil
	case "miss":
		return OutcomeMiss, nil
	case "hit":
		return OutcomeHit, nil
	case "stale":
		return OutcomeStale, nil
	case "coalesced":
		return OutcomeCoalesced, nil
	case "timeout":
		return OutcomeTimeout, nil
	case "error":
		return OutcomeError, nil
	case "blocked":
		return OutcomeBlocked, nil
	case "limited":
		return OutcomeLimited, nil
	}
	return 0, fmt.Errorf("qlog: unknown outcome %q", s)
}

// Record is one captured event. It is a value type holding no heap
// references beyond the (immutable) Name and Transport strings, so writing
// one into a ring slot is a plain copy.
type Record struct {
	// Time is the capture timestamp in Unix nanoseconds.
	Time int64
	// LatencyUS is the event's latency in microseconds: client wall time
	// for response-out records, exchange RTT for upstream records, 0 for
	// client-in records.
	LatencyUS int64
	// Client is the peer: the querying client for client-in/response-out
	// records, the upstream server for upstream records.
	Client netip.Addr
	// Name and Type identify the question.
	Name dnswire.Name
	Type dnswire.Type
	// Point is where the record was captured.
	Point Point
	// Outcome classifies response-out records (hit/miss/stale/coalesced)
	// and failed upstream exchanges (timeout/error).
	Outcome Outcome
	// RCode is the response code (response-out and successful upstream
	// records).
	RCode dnswire.RCode
	// TTL is the TTL of the first answer record, in seconds; 0 when the
	// response carried no answers.
	TTL uint32
	// Transport labels the wire the event used ("udp", "tcp", "dot",
	// "doh", "sim", ...).
	Transport string
}

// Metric names under which New registers the logger's telemetry.
const (
	// MetricRecords counts records accepted into the ring.
	MetricRecords = "qlog.records"
	// MetricDropped counts records lost to a full ring (backpressure is
	// never applied to the serving path).
	MetricDropped = "qlog.dropped"
	// MetricSampledOut counts records skipped by the 1-in-N or per-client
	// sampling configuration.
	MetricSampledOut = "qlog.sampled_out"
	// MetricBytes counts bytes written to the active log file.
	MetricBytes = "qlog.bytes_written"
	// MetricRotations counts completed file rotations.
	MetricRotations = "qlog.rotations"
	// MetricWriteErrors counts encode/write failures (the record is lost).
	MetricWriteErrors = "qlog.write_errors"
)

// Format selects the on-disk encoding.
type Format uint8

const (
	// FormatJSONL writes one JSON object per line — greppable, and what
	// cmd/dnstop reads by default.
	FormatJSONL Format = iota
	// FormatBinary writes the length-prefixed binary framing — roughly 4x
	// denser than JSONL, for high-QPS captures.
	FormatBinary
)

// ParseFormat maps "jsonl" or "binary" to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "jsonl", "json":
		return FormatJSONL, nil
	case "binary", "bin":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("qlog: unknown format %q (want jsonl or binary)", s)
}

func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "jsonl"
}

// Config parameterizes a Logger.
type Config struct {
	// Path is the active log file; rotations shift it to Path.1, Path.2, …
	Path string
	// Format selects the encoding; the zero value is JSONL.
	Format Format
	// MaxBytes rotates the active file when it exceeds this size;
	// 0 means 64 MiB.
	MaxBytes int64
	// MaxFiles bounds the rotated set (active file included); 0 means 4.
	MaxFiles int
	// RingSize is the capture ring's capacity, rounded up to a power of
	// two; 0 means 8192. A full ring drops records (counted), it never
	// blocks the serving path.
	RingSize int
	// SampleN keeps one record in N (applied after PerClientMod);
	// 0 or 1 keeps all.
	SampleN int
	// PerClientMod keeps only clients whose address hash ≡ 0 (mod M),
	// preserving complete per-client streams for interarrival analysis
	// where 1-in-N sampling would shred them; 0 or 1 keeps all clients.
	PerClientMod int
	// Points is the capture-point mask; 0 means all points.
	Points PointMask
	// Registry, when non-nil, receives the qlog.* counters.
	Registry *obs.Registry
	// Clock stamps records; nil means wall clock.
	Clock simnet.Clock
	// FlushEvery bounds how long a record may sit in the write buffer;
	// 0 means 250 ms.
	FlushEvery time.Duration
}

// PointMask selects which capture points a Logger retains.
type PointMask uint8

const (
	MaskClientIn    PointMask = 1 << PointClientIn
	MaskResponseOut PointMask = 1 << PointResponseOut
	MaskUpstream    PointMask = 1 << PointUpstream
	MaskNotify      PointMask = 1 << PointNotify
	MaskAll                   = MaskClientIn | MaskResponseOut | MaskUpstream | MaskNotify
)

// ParsePointMask parses a comma-separated point list ("client,response,
// upstream,notify" or "all").
func ParsePointMask(s string) (PointMask, error) {
	if s == "" || s == "all" {
		return MaskAll, nil
	}
	var m PointMask
	start := 0
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ',' {
			continue
		}
		p, err := ParsePoint(s[start:i])
		if err != nil {
			return 0, err
		}
		m |= 1 << p
		start = i + 1
	}
	return m, nil
}

// slot is one ring cell: seq is the Vyukov MPMC sequence marker.
type slot struct {
	seq atomic.Uint64
	rec Record
}

// Logger is the async capture pipeline: producers Emit into the ring,
// one consumer goroutine drains, encodes, and writes through rotation.
// The nil *Logger is a valid no-op.
type Logger struct {
	cfg   Config
	clock simnet.Clock

	ring []slot
	mask uint64
	enq  atomic.Uint64 // next sequence producers claim
	deq  uint64        // next sequence the consumer reads (consumer-only)

	// Accounting, mirrored into the registry when configured.
	records     atomic.Uint64
	dropped     atomic.Uint64
	sampledOut  atomic.Uint64
	writeErrors atomic.Uint64
	sampleSeq   atomic.Uint64 // 1-in-N position counter

	mRecords    *obs.Counter
	mDropped    *obs.Counter
	mSampledOut *obs.Counter
	mWriteErr   *obs.Counter

	notify chan struct{} // kicked (non-blocking) on enqueue to wake the consumer
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once

	w   *rotatingWriter
	enc encoder
}

// New opens the log file and starts the consumer. Close flushes and stops.
func New(cfg Config) (*Logger, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("qlog: Config.Path is required")
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 8192
	}
	size := 1
	for size < cfg.RingSize {
		size <<= 1
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.MaxFiles <= 0 {
		cfg.MaxFiles = 4
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 250 * time.Millisecond
	}
	if cfg.Points == 0 {
		cfg.Points = MaskAll
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simnet.WallClock{}
	}
	w, err := newRotatingWriter(cfg.Path, cfg.MaxBytes, cfg.MaxFiles, cfg.Registry)
	if err != nil {
		return nil, err
	}
	l := &Logger{
		cfg:    cfg,
		clock:  clock,
		ring:   make([]slot, size),
		mask:   uint64(size - 1),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		w:      w,

		mRecords:    cfg.Registry.Counter(MetricRecords),
		mDropped:    cfg.Registry.Counter(MetricDropped),
		mSampledOut: cfg.Registry.Counter(MetricSampledOut),
		mWriteErr:   cfg.Registry.Counter(MetricWriteErrors),
	}
	for i := range l.ring {
		l.ring[i].seq.Store(uint64(i))
	}
	if cfg.Format == FormatBinary {
		if err := w.writeHeader(binaryMagic); err != nil {
			_ = w.Close()
			return nil, err
		}
		l.enc = &binaryEncoder{}
	} else {
		l.enc = &jsonlEncoder{}
	}
	go l.consume()
	return l, nil
}

// Tap returns an emit handle labeled with a transport ("udp", "dot", …).
// Taps are what capture points hold; a nil Logger yields a nil Tap, and
// every Tap method is nil-safe, so wiring is unconditional.
func (l *Logger) Tap(transport string) *Tap {
	if l == nil {
		return nil
	}
	return &Tap{l: l, transport: transport}
}

// Stats is the logger's accounting snapshot.
type Stats struct {
	Records     uint64 `json:"records"`
	Dropped     uint64 `json:"dropped"`
	SampledOut  uint64 `json:"sampled_out"`
	WriteErrors uint64 `json:"write_errors"`
	Rotations   uint64 `json:"rotations"`
	Bytes       uint64 `json:"bytes_written"`
}

// Stats returns the logger's counters (zero for a nil logger).
func (l *Logger) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return Stats{
		Records:     l.records.Load(),
		Dropped:     l.dropped.Load(),
		SampledOut:  l.sampledOut.Load(),
		WriteErrors: l.writeErrors.Load(),
		Rotations:   l.w.rotations.Load(),
		Bytes:       l.w.bytes.Load(),
	}
}

// Emit offers one record to the ring. It never blocks: a full ring or a
// sampled-out record is counted and discarded. Emit is safe from any
// goroutine and allocation-free.
func (l *Logger) Emit(rec *Record) {
	if l == nil {
		return
	}
	if l.cfg.Points&(1<<rec.Point) == 0 {
		return
	}
	if m := l.cfg.PerClientMod; m > 1 && int(clientHash(rec.Client)%uint64(m)) != 0 {
		l.sampledOut.Add(1)
		l.mSampledOut.Inc()
		return
	}
	if n := l.cfg.SampleN; n > 1 && l.sampleSeq.Add(1)%uint64(n) != 0 {
		l.sampledOut.Add(1)
		l.mSampledOut.Inc()
		return
	}
	for {
		pos := l.enq.Load()
		s := &l.ring[pos&l.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if l.enq.CompareAndSwap(pos, pos+1) {
				s.rec = *rec
				s.seq.Store(pos + 1)
				l.records.Add(1)
				l.mRecords.Inc()
				select {
				case l.notify <- struct{}{}:
				default:
				}
				return
			}
		case seq < pos:
			// The consumer has not freed this slot: the ring is full.
			l.dropped.Add(1)
			l.mDropped.Inc()
			return
		default:
			// Another producer claimed pos; reload and retry.
		}
	}
}

// clientHash is a 64-bit FNV-1a over the address bytes, allocation-free.
func clientHash(a netip.Addr) uint64 {
	b := a.As16()
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// consume drains the ring, encodes, and writes until Close.
func (l *Logger) consume() {
	defer close(l.done)
	flush := time.NewTicker(l.cfg.FlushEvery)
	defer flush.Stop()
	for {
		if l.drain() == 0 {
			select {
			case <-l.notify:
			case <-flush.C:
				l.flushWrite()
			case <-l.stop:
				l.drain()
				l.flushWrite()
				return
			}
		}
	}
}

// drain consumes every currently published slot, returning how many.
func (l *Logger) drain() int {
	n := 0
	for {
		s := &l.ring[l.deq&l.mask]
		if s.seq.Load() != l.deq+1 {
			return n
		}
		rec := s.rec
		s.seq.Store(l.deq + uint64(len(l.ring)))
		l.deq++
		n++
		if err := l.enc.encode(l.w, &rec); err != nil {
			l.writeErrors.Add(1)
			l.mWriteErr.Inc()
		}
	}
}

func (l *Logger) flushWrite() {
	if err := l.w.Flush(); err != nil {
		l.writeErrors.Add(1)
		l.mWriteErr.Inc()
	}
}

// Now returns the logger's clock reading in Unix nanoseconds.
func (l *Logger) Now() int64 { return l.clock.Now().UnixNano() }

// Close drains the ring, flushes, and closes the active file. A nil logger
// is a no-op.
func (l *Logger) Close() error {
	if l == nil {
		return nil
	}
	l.once.Do(func() { close(l.stop) })
	<-l.done
	return l.w.Close()
}

// Tap is a transport-labeled emit handle held by one capture point. All
// methods are nil-safe and allocation-free.
type Tap struct {
	l         *Logger
	transport string
}

// ClientIn records a query arriving from client.
func (t *Tap) ClientIn(client netip.Addr, name dnswire.Name, qtype dnswire.Type) {
	if t == nil {
		return
	}
	t.l.Emit(&Record{
		Time:      t.l.Now(),
		Client:    client,
		Name:      name,
		Type:      qtype,
		Point:     PointClientIn,
		Transport: t.transport,
	})
}

// ResponseOut records a response leaving for client.
func (t *Tap) ResponseOut(client netip.Addr, name dnswire.Name, qtype dnswire.Type,
	rcode dnswire.RCode, ttl uint32, outcome Outcome, latency time.Duration) {
	if t == nil {
		return
	}
	t.l.Emit(&Record{
		Time:      t.l.Now(),
		LatencyUS: int64(latency / time.Microsecond),
		Client:    client,
		Name:      name,
		Type:      qtype,
		Point:     PointResponseOut,
		Outcome:   outcome,
		RCode:     rcode,
		TTL:       ttl,
		Transport: t.transport,
	})
}

// NotifyIn records a push-plane NOTIFY for zone arriving from an
// authoritative server. The advertised serial rides in the TTL field.
func (t *Tap) NotifyIn(from netip.Addr, zone dnswire.Name, serial uint32) {
	if t == nil {
		return
	}
	t.l.Emit(&Record{
		Time:      t.l.Now(),
		Client:    from,
		Name:      zone,
		Type:      dnswire.TypeSOA,
		Point:     PointNotify,
		TTL:       serial,
		Transport: t.transport,
	})
}

// Upstream records one upstream exchange against server. outcome is
// OutcomeNone for successful exchanges, OutcomeTimeout/OutcomeError
// otherwise.
func (t *Tap) Upstream(server netip.Addr, name dnswire.Name, qtype dnswire.Type,
	rcode dnswire.RCode, ttl uint32, outcome Outcome, rtt time.Duration) {
	if t == nil {
		return
	}
	t.l.Emit(&Record{
		Time:      t.l.Now(),
		LatencyUS: int64(rtt / time.Microsecond),
		Client:    server,
		Name:      name,
		Type:      qtype,
		Point:     PointUpstream,
		Outcome:   outcome,
		RCode:     rcode,
		TTL:       ttl,
		Transport: t.transport,
	})
}
