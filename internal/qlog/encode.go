package qlog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strconv"

	"dnsttl/internal/dnswire"
)

// binaryMagic opens every binary-format log file, so readers can
// auto-detect the encoding from the first bytes ('{' opens a JSONL file).
var binaryMagic = []byte("DQL1")

// encoder turns records into bytes on the consumer goroutine. Both
// implementations reuse a scratch buffer, so steady-state encoding is
// allocation-free.
type encoder interface {
	encode(w io.Writer, rec *Record) error
}

// jsonlEncoder writes one hand-built JSON object per line. Numeric codes
// (qtype, rcode) stay numeric — this is a machine format; dnstop renders
// the pretty names.
type jsonlEncoder struct {
	buf []byte
}

func (e *jsonlEncoder) encode(w io.Writer, rec *Record) error {
	b := e.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, rec.Time, 10)
	b = append(b, `,"point":"`...)
	b = append(b, rec.Point.String()...)
	b = append(b, `","transport":"`...)
	b = append(b, rec.Transport...)
	b = append(b, `","client":"`...)
	b = rec.Client.AppendTo(b)
	b = append(b, `","name":"`...)
	b = append(b, rec.Name...)
	b = append(b, `","type":`...)
	b = strconv.AppendUint(b, uint64(rec.Type), 10)
	b = append(b, `,"rcode":`...)
	b = strconv.AppendUint(b, uint64(rec.RCode), 10)
	b = append(b, `,"ttl":`...)
	b = strconv.AppendUint(b, uint64(rec.TTL), 10)
	if rec.Outcome != OutcomeNone {
		b = append(b, `,"outcome":"`...)
		b = append(b, rec.Outcome.String()...)
		b = append(b, '"')
	}
	b = append(b, `,"lat_us":`...)
	b = strconv.AppendInt(b, rec.LatencyUS, 10)
	b = append(b, '}', '\n')
	e.buf = b
	_, err := w.Write(b)
	return err
}

// jsonlRecord is the decode shape of one JSONL line.
type jsonlRecord struct {
	T         int64  `json:"t"`
	Point     string `json:"point"`
	Transport string `json:"transport"`
	Client    string `json:"client"`
	Name      string `json:"name"`
	Type      uint16 `json:"type"`
	RCode     uint16 `json:"rcode"`
	TTL       uint32 `json:"ttl"`
	Outcome   string `json:"outcome"`
	LatUS     int64  `json:"lat_us"`
}

func decodeJSONLLine(line []byte, rec *Record) error {
	var jr jsonlRecord
	if err := json.Unmarshal(line, &jr); err != nil {
		return err
	}
	p, err := ParsePoint(jr.Point)
	if err != nil {
		return err
	}
	o, err := ParseOutcome(jr.Outcome)
	if err != nil {
		return err
	}
	addr, err := netip.ParseAddr(jr.Client)
	if err != nil {
		return fmt.Errorf("qlog: bad client address %q: %w", jr.Client, err)
	}
	*rec = Record{
		Time:      jr.T,
		LatencyUS: jr.LatUS,
		Client:    addr,
		Name:      dnswire.Name(jr.Name),
		Type:      dnswire.Type(jr.Type),
		Point:     p,
		Outcome:   o,
		RCode:     dnswire.RCode(jr.RCode),
		TTL:       jr.TTL,
		Transport: jr.Transport,
	}
	return nil
}

// binaryEncoder writes length-prefixed frames:
//
//	uvarint payloadLen | payload
//
// payload: uvarint time | lat | point | outcome | rcode(uvarint) |
// type(uvarint) | ttl(uvarint) | transportLen+bytes | addrLen+bytes |
// nameLen+bytes. Times and latencies are unsigned (they are never
// negative in practice; negative values would round-trip via two's
// complement anyway since we cast, but we document them unsupported).
type binaryEncoder struct {
	buf   []byte // payload scratch
	frame []byte // len-prefix + payload scratch
}

func (e *binaryEncoder) encode(w io.Writer, rec *Record) error {
	b := e.buf[:0]
	b = binary.AppendUvarint(b, uint64(rec.Time))
	b = binary.AppendUvarint(b, uint64(rec.LatencyUS))
	b = append(b, byte(rec.Point), byte(rec.Outcome))
	b = binary.AppendUvarint(b, uint64(rec.RCode))
	b = binary.AppendUvarint(b, uint64(rec.Type))
	b = binary.AppendUvarint(b, uint64(rec.TTL))
	b = binary.AppendUvarint(b, uint64(len(rec.Transport)))
	b = append(b, rec.Transport...)
	addr := rec.Client.As16()
	if rec.Client.Is4() {
		a4 := rec.Client.As4()
		b = append(b, 4)
		b = append(b, a4[:]...)
	} else {
		b = append(b, 16)
		b = append(b, addr[:]...)
	}
	b = binary.AppendUvarint(b, uint64(len(rec.Name)))
	b = append(b, rec.Name...)
	e.buf = b

	f := e.frame[:0]
	f = binary.AppendUvarint(f, uint64(len(b)))
	f = append(f, b...)
	e.frame = f
	_, err := w.Write(f)
	return err
}

func decodeBinaryPayload(b []byte, rec *Record) error {
	u := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("qlog: truncated varint")
		}
		b = b[n:]
		return v, nil
	}
	t, err := u()
	if err != nil {
		return err
	}
	lat, err := u()
	if err != nil {
		return err
	}
	if len(b) < 2 {
		return fmt.Errorf("qlog: truncated record")
	}
	point, outcome := Point(b[0]), Outcome(b[1])
	b = b[2:]
	rcode, err := u()
	if err != nil {
		return err
	}
	qtype, err := u()
	if err != nil {
		return err
	}
	ttl, err := u()
	if err != nil {
		return err
	}
	tlen, err := u()
	if err != nil {
		return err
	}
	if uint64(len(b)) < tlen {
		return fmt.Errorf("qlog: truncated transport")
	}
	transport := string(b[:tlen])
	b = b[tlen:]
	if len(b) < 1 {
		return fmt.Errorf("qlog: truncated address")
	}
	alen := int(b[0])
	b = b[1:]
	if alen != 4 && alen != 16 || len(b) < alen {
		return fmt.Errorf("qlog: bad address length %d", alen)
	}
	var addr netip.Addr
	var ok bool
	addr, ok = netip.AddrFromSlice(b[:alen])
	if !ok {
		return fmt.Errorf("qlog: bad address bytes")
	}
	b = b[alen:]
	nlen, err := u()
	if err != nil {
		return err
	}
	if uint64(len(b)) < nlen {
		return fmt.Errorf("qlog: truncated name")
	}
	name := string(b[:nlen])
	*rec = Record{
		Time:      int64(t),
		LatencyUS: int64(lat),
		Client:    addr,
		Name:      dnswire.Name(name),
		Type:      dnswire.Type(qtype),
		Point:     point,
		Outcome:   outcome,
		RCode:     dnswire.RCode(rcode),
		TTL:       uint32(ttl),
		Transport: transport,
	}
	return nil
}

// Reader iterates the records of one log file, auto-detecting the
// encoding from the first bytes. Decode failures are counted and skipped
// (JSONL) or terminate the file (binary, where framing is lost), so a
// crash-truncated tail never aborts an analysis.
type Reader struct {
	r      *bufio.Reader
	closer io.Closer
	binary bool
	errs   int
}

// OpenFile opens one log file for reading.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	head, _ := r.Peek(len(binaryMagic))
	rd := &Reader{r: r, closer: f}
	if bytes.Equal(head, binaryMagic) {
		rd.binary = true
		_, _ = r.Discard(len(binaryMagic))
	}
	return rd, nil
}

// NewReader reads records from an in-memory stream (tests, pipes).
func NewReader(src io.Reader) *Reader {
	r := bufio.NewReaderSize(src, 1<<16)
	head, _ := r.Peek(len(binaryMagic))
	rd := &Reader{r: r}
	if bytes.Equal(head, binaryMagic) {
		rd.binary = true
		_, _ = r.Discard(len(binaryMagic))
	}
	return rd
}

// Next fills rec with the next record. It returns io.EOF at the end of
// the file; decode errors are counted (see DecodeErrors) and skipped when
// possible.
func (rd *Reader) Next(rec *Record) error {
	if rd.binary {
		return rd.nextBinary(rec)
	}
	return rd.nextJSONL(rec)
}

func (rd *Reader) nextJSONL(rec *Record) error {
	for {
		line, err := rd.r.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			if err == io.EOF {
				return io.EOF
			}
			continue
		}
		if err == io.EOF && line[len(line)-1] != '\n' {
			// A torn final line (crash mid-write): count, stop.
			rd.errs++
			return io.EOF
		}
		if derr := decodeJSONLLine(trimmed, rec); derr != nil {
			rd.errs++
			continue
		}
		return nil
	}
}

func (rd *Reader) nextBinary(rec *Record) error {
	n, err := binary.ReadUvarint(rd.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		rd.errs++
		return io.EOF
	}
	if n > 1<<20 {
		// An implausible frame means lost framing; stop the file.
		rd.errs++
		return io.EOF
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(rd.r, payload); err != nil {
		rd.errs++
		return io.EOF
	}
	if err := decodeBinaryPayload(payload, rec); err != nil {
		rd.errs++
		return io.EOF
	}
	return nil
}

// DecodeErrors reports how many records failed to decode so far.
func (rd *Reader) DecodeErrors() int { return rd.errs }

// Close releases the underlying file (no-op for in-memory readers).
func (rd *Reader) Close() error {
	if rd.closer == nil {
		return nil
	}
	return rd.closer.Close()
}

// RotatedSet returns the file set of a rotated capture in chronological
// order (oldest first): base.<maxIndex> … base.1, base. Missing rotation
// files are skipped; the base file must exist.
func RotatedSet(base string) ([]string, error) {
	if _, err := os.Stat(base); err != nil {
		return nil, err
	}
	var out []string
	// Probe upward until the first gap; rotations shift contiguously.
	var present []string
	for i := 1; ; i++ {
		p := fmt.Sprintf("%s.%d", base, i)
		if _, err := os.Stat(p); err != nil {
			break
		}
		present = append(present, p)
	}
	for i := len(present) - 1; i >= 0; i-- {
		out = append(out, present[i])
	}
	return append(out, base), nil
}

// ReadAll decodes every record across the given files (in order),
// returning the records and the total decode-error count.
func ReadAll(paths ...string) ([]Record, int, error) {
	var out []Record
	errs := 0
	for _, p := range paths {
		r, err := OpenFile(p)
		if err != nil {
			return nil, errs, err
		}
		var rec Record
		for {
			if err := r.Next(&rec); err != nil {
				break
			}
			out = append(out, rec)
		}
		errs += r.DecodeErrors()
		_ = r.Close()
	}
	return out, errs, nil
}
