package qlog

import (
	"net/netip"
	"path/filepath"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
)

// TestAllocsDisabled pins the ISSUE budget: a nil tap (qlog off) costs the
// serving path zero allocations.
func TestAllocsDisabled(t *testing.T) {
	var tap *Tap
	client := netip.MustParseAddr("10.0.0.1")
	name := dnswire.NewName("www.example.org")
	allocs := testing.AllocsPerRun(1000, func() {
		tap.ClientIn(client, name, dnswire.TypeA)
		tap.ResponseOut(client, name, dnswire.TypeA, dnswire.RCodeNoError, 300, OutcomeHit, time.Millisecond)
		tap.Upstream(client, name, dnswire.TypeA, dnswire.RCodeNoError, 300, OutcomeNone, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled capture allocates %.1f/op, want 0", allocs)
	}
}

// TestAllocsEnabled pins the ISSUE budget: enabled capture is ≤2
// allocations per record on the producer side (ours is 0 — the record is
// copied into a preallocated ring slot).
func TestAllocsEnabled(t *testing.T) {
	l, err := New(Config{
		Path:     filepath.Join(t.TempDir(), "q.log"),
		RingSize: 1 << 16, // large enough that the run never contends on drops
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tap := l.Tap("udp")
	client := netip.MustParseAddr("10.0.0.1")
	name := dnswire.NewName("www.example.org")
	allocs := testing.AllocsPerRun(1000, func() {
		tap.ResponseOut(client, name, dnswire.TypeA, dnswire.RCodeNoError, 300, OutcomeHit, time.Millisecond)
	})
	if allocs > 2 {
		t.Fatalf("enabled capture allocates %.1f/op, want <= 2", allocs)
	}
}

// TestAllocsSampledOut pins that a sampled-out record is also free.
func TestAllocsSampledOut(t *testing.T) {
	l, err := New(Config{
		Path:         filepath.Join(t.TempDir(), "q.log"),
		PerClientMod: 1 << 30, // effectively samples every client out
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tap := l.Tap("udp")
	client := netip.MustParseAddr("10.9.8.7")
	if clientHash(client)%(1<<30) == 0 {
		t.Skip("client unexpectedly selected by hash")
	}
	name := dnswire.NewName("www.example.org")
	allocs := testing.AllocsPerRun(1000, func() {
		tap.ResponseOut(client, name, dnswire.TypeA, dnswire.RCodeNoError, 300, OutcomeHit, time.Millisecond)
	})
	if allocs > 0 {
		t.Fatalf("sampled-out capture allocates %.1f/op, want 0", allocs)
	}
}
