package qlog

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
)

func testRecord(i int) Record {
	return Record{
		Time:      int64(1700000000_000000000 + i*1000),
		LatencyUS: int64(i % 5000),
		Client:    netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		Name:      dnswire.NewName(fmt.Sprintf("q%d.example.test", i%17)),
		Type:      dnswire.TypeA,
		Point:     Point(i % 3),
		Outcome:   Outcome(i % 7),
		RCode:     dnswire.RCode(i % 4),
		TTL:       uint32(i % 3600),
		Transport: []string{"udp", "tcp", "dot", "doh"}[i%4],
	}
}

// TestRoundTrip pins that both encodings reproduce records exactly.
func TestRoundTrip(t *testing.T) {
	for _, format := range []Format{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "q.log")
			l, err := New(Config{Path: path, Format: format})
			if err != nil {
				t.Fatal(err)
			}
			const n = 500
			want := make([]Record, n)
			for i := 0; i < n; i++ {
				want[i] = testRecord(i)
				l.Emit(&want[i])
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			got, errs, err := ReadAll(path)
			if err != nil {
				t.Fatal(err)
			}
			if errs != 0 {
				t.Fatalf("decode errors: %d", errs)
			}
			if len(got) != n {
				t.Fatalf("read %d records, want %d", len(got), n)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
				}
			}
			st := l.Stats()
			if st.Records != n || st.Dropped != 0 || st.SampledOut != 0 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

// TestRotation pins the size-based rotation invariants: the set is bounded
// by MaxFiles, every file decodes cleanly (binary files re-carry the
// magic), and RotatedSet returns chronological order.
func TestRotation(t *testing.T) {
	for _, format := range []Format{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "q.log")
			l, err := New(Config{Path: path, Format: format, MaxBytes: 4096, MaxFiles: 3})
			if err != nil {
				t.Fatal(err)
			}
			const n = 2000
			for i := 0; i < n; i++ {
				rec := testRecord(i)
				l.Emit(&rec)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if l.Stats().Rotations == 0 {
				t.Fatal("expected at least one rotation")
			}
			files, err := RotatedSet(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(files) > 3 {
				t.Fatalf("rotated set %v exceeds MaxFiles", files)
			}
			recs, errs, err := ReadAll(files...)
			if err != nil {
				t.Fatal(err)
			}
			if errs != 0 {
				t.Fatalf("decode errors across rotated set: %d", errs)
			}
			if len(recs) == 0 || len(recs) >= n {
				// Rotation must have discarded the oldest files but kept a
				// contiguous, decodable tail.
				t.Fatalf("read %d records, want (0, %d)", len(recs), n)
			}
			// Chronological order across the file boundary.
			for i := 1; i < len(recs); i++ {
				if recs[i].Time < recs[i-1].Time {
					t.Fatalf("records out of order at %d", i)
				}
			}
			// No file beyond the bound lingers.
			if _, err := os.Stat(path + ".3"); err == nil {
				t.Fatal("file beyond MaxFiles was not removed")
			}
		})
	}
}

// TestSampling pins 1-in-N and per-client sampling accounting.
func TestSampling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	reg := obs.NewRegistry(nil)
	l, err := New(Config{Path: path, SampleN: 10, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		l.Emit(&rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records != n/10 {
		t.Fatalf("kept %d records, want %d", st.Records, n/10)
	}
	if st.SampledOut != n-n/10 {
		t.Fatalf("sampled out %d, want %d", st.SampledOut, n-n/10)
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricRecords] != st.Records || snap.Counters[MetricSampledOut] != st.SampledOut {
		t.Fatalf("registry mirror disagrees: %+v vs %+v", snap.Counters, st)
	}

	// Per-client sampling keeps complete streams for selected clients.
	path2 := filepath.Join(t.TempDir(), "q2.log")
	l2, err := New(Config{Path: path2, PerClientMod: 4})
	if err != nil {
		t.Fatal(err)
	}
	kept := map[netip.Addr]int{}
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		rec.Client = netip.AddrFrom4([4]byte{192, 0, 2, byte(i % 16)})
		l2.Emit(&rec)
		if clientHash(rec.Client)%4 == 0 {
			kept[rec.Client]++
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadAll(path2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[netip.Addr]int{}
	for _, r := range recs {
		got[r.Client]++
	}
	if len(got) == 0 || len(got) >= 16 {
		t.Fatalf("per-client sampling kept %d of 16 clients", len(got))
	}
	for a, n := range kept {
		if got[a] != n {
			t.Fatalf("client %s: kept %d records, want the complete stream of %d", a, got[a], n)
		}
	}
}

// TestPointMask pins that masked-out capture points are not retained.
func TestPointMask(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	l, err := New(Config{Path: path, Points: MaskResponseOut | MaskUpstream})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		rec := testRecord(i) // cycles through all three points
		l.Emit(&rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("kept %d records, want 200", len(recs))
	}
	for _, r := range recs {
		if r.Point == PointClientIn {
			t.Fatal("client-in record retained despite mask")
		}
	}
}

// TestDropAccounting pins that a full ring drops (and counts) rather than
// blocking the producer.
func TestDropAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	l, err := New(Config{Path: path, RingSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Stall the consumer by closing its wake channel path indirectly: just
	// hammer far faster than one consumer can drain a 16-slot ring.
	const n = 100000
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		l.Emit(&rec)
	}
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.Records+st.Dropped != n {
		t.Fatalf("records %d + dropped %d != %d", st.Records, st.Dropped, n)
	}
	recs, errs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if errs != 0 {
		t.Fatalf("decode errors: %d", errs)
	}
	if uint64(len(recs)) != st.Records {
		t.Fatalf("file holds %d records, stats claim %d", len(recs), st.Records)
	}
}

// TestConcurrentEmit hammers the ring from many goroutines under -race and
// checks conservation: every emit is either written, dropped, or sampled.
func TestConcurrentEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.log")
	l, err := New(Config{Path: path, RingSize: 1024, SampleN: 3})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const per = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tap := l.Tap("udp")
			client := netip.AddrFrom4([4]byte{10, 1, 0, byte(g)})
			for i := 0; i < per; i++ {
				tap.ResponseOut(client, "www.example.test.", dnswire.TypeA,
					dnswire.RCodeNoError, 300, OutcomeHit, time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records+st.Dropped+st.SampledOut != goroutines*per {
		t.Fatalf("conservation violated: %+v (want total %d)", st, goroutines*per)
	}
	recs, errs, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if errs != 0 {
		t.Fatalf("decode errors: %d", errs)
	}
	if uint64(len(recs)) != st.Records {
		t.Fatalf("file holds %d records, stats claim %d", len(recs), st.Records)
	}
}

// TestTornTail pins that a crash-truncated file is tolerated: the intact
// prefix decodes and the torn tail is counted as a decode error.
func TestTornTail(t *testing.T) {
	for _, format := range []Format{FormatJSONL, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "q.log")
			l, err := New(Config{Path: path, Format: format})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				rec := testRecord(i)
				l.Emit(&rec)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
				t.Fatal(err)
			}
			recs, errs, err := ReadAll(path)
			if err != nil {
				t.Fatal(err)
			}
			if errs == 0 {
				t.Fatal("torn tail not counted as a decode error")
			}
			if len(recs) < 90 {
				t.Fatalf("only %d records survived a 7-byte truncation", len(recs))
			}
		})
	}
}

// TestParsePointMask pins the flag grammar.
func TestParsePointMask(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PointMask
		err  bool
	}{
		{"", MaskAll, false},
		{"all", MaskAll, false},
		{"response", MaskResponseOut, false},
		{"client,upstream", MaskClientIn | MaskUpstream, false},
		{"client,response,upstream", MaskClientIn | MaskResponseOut | MaskUpstream, false},
		{"client,response,upstream,notify", MaskAll, false},
		{"notify", MaskNotify, false},
		{"bogus", 0, true},
	} {
		got, err := ParsePointMask(tc.in)
		if (err != nil) != tc.err {
			t.Fatalf("ParsePointMask(%q) err=%v", tc.in, err)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParsePointMask(%q)=%v want %v", tc.in, got, tc.want)
		}
	}
}

// TestNilSafety pins the disabled configuration: nil loggers and taps
// accept every call.
func TestNilSafety(t *testing.T) {
	var l *Logger
	var tap *Tap = l.Tap("udp")
	tap.ClientIn(netip.MustParseAddr("10.0.0.1"), "a.example.", dnswire.TypeA)
	tap.ResponseOut(netip.MustParseAddr("10.0.0.1"), "a.example.", dnswire.TypeA,
		dnswire.RCodeNoError, 60, OutcomeHit, time.Millisecond)
	tap.Upstream(netip.MustParseAddr("10.0.0.2"), "a.example.", dnswire.TypeA,
		dnswire.RCodeNoError, 60, OutcomeNone, time.Millisecond)
	rec := testRecord(1)
	l.Emit(&rec)
	if st := l.Stats(); st != (Stats{}) {
		t.Fatalf("nil logger stats: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
