package qlog

import (
	"bufio"
	"fmt"
	"os"
	"sync/atomic"

	"dnsttl/internal/obs"
)

// rotatingWriter is a buffered, size-rotated file writer used only by the
// Logger's consumer goroutine (single-threaded, so no locking). Rotation
// happens between records: when the active file exceeds maxBytes after a
// write, it is shifted to path.1 (path.1 → path.2, …) and a fresh active
// file is opened. Files beyond maxFiles are deleted.
type rotatingWriter struct {
	path     string
	maxBytes int64
	maxFiles int

	f       *os.File
	bw      *bufio.Writer
	size    int64
	header  []byte // re-written at the top of every rotated-in file
	byteCtr *obs.Counter
	rotCtr  *obs.Counter

	bytes     atomic.Uint64
	rotations atomic.Uint64
}

func newRotatingWriter(path string, maxBytes int64, maxFiles int, reg *obs.Registry) (*rotatingWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &rotatingWriter{
		path:     path,
		maxBytes: maxBytes,
		maxFiles: maxFiles,
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<16),
		byteCtr:  reg.Counter(MetricBytes),
		rotCtr:   reg.Counter(MetricRotations),
	}, nil
}

// writeHeader records (and writes) the per-file header, re-emitted after
// every rotation (the binary format's magic).
func (w *rotatingWriter) writeHeader(h []byte) error {
	w.header = append([]byte(nil), h...)
	_, err := w.Write(h)
	return err
}

// Write appends one encoded record (or header). Rotation is checked after
// the write, so records are never split across files.
func (w *rotatingWriter) Write(p []byte) (int, error) {
	n, err := w.bw.Write(p)
	w.size += int64(n)
	w.bytes.Add(uint64(n))
	w.byteCtr.Add(uint64(n))
	if err != nil {
		return n, err
	}
	if w.size >= w.maxBytes {
		if rerr := w.rotate(); rerr != nil {
			return n, rerr
		}
	}
	return n, nil
}

// rotate shifts the file set and opens a fresh active file.
func (w *rotatingWriter) rotate() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	// Drop the oldest file if the set is full, then shift path.i → path.i+1.
	oldest := fmt.Sprintf("%s.%d", w.path, w.maxFiles-1)
	_ = os.Remove(oldest)
	for i := w.maxFiles - 2; i >= 1; i-- {
		from := fmt.Sprintf("%s.%d", w.path, i)
		if _, err := os.Stat(from); err == nil {
			_ = os.Rename(from, fmt.Sprintf("%s.%d", w.path, i+1))
		}
	}
	if w.maxFiles > 1 {
		if err := os.Rename(w.path, w.path+".1"); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.size = 0
	w.rotations.Add(1)
	w.rotCtr.Inc()
	if len(w.header) > 0 {
		if _, err := w.Write(w.header); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes buffered bytes to the OS.
func (w *rotatingWriter) Flush() error { return w.bw.Flush() }

// Close flushes and closes the active file.
func (w *rotatingWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}
