package dnswire

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Compression-table geometry. A referral-sized message registers a couple
// dozen distinct name suffixes; 128 open-addressed slots with a fill bound
// keeps probes short. When the table fills, further suffixes simply go
// uncompressed — output stays valid, deterministically.
const (
	compSlots   = 128
	compMaxFill = 96
)

// compEntry is one slot of the open-addressed compression table. gen makes
// reset O(1): a slot is live only when its generation matches the encoder's.
type compEntry struct {
	gen    uint32
	off    uint16
	suffix Name
}

// encoder serializes a message with RFC 1035 §4.1.4 name compression.
// Encoders are pooled; the per-Encode map of the original implementation is
// replaced by the fixed open-addressed table so the hot path allocates
// nothing beyond the output buffer.
type encoder struct {
	buf []byte
	// base is the offset of the message's first byte in buf: AppendEncode
	// targets may already carry bytes, and compression pointers are
	// relative to the message start.
	base int
	// qEnd is the offset just past the question section, for in-place
	// truncation in EncodeWithLimit.
	qEnd int

	gen     uint32
	tabFill int
	tab     [compSlots]compEntry
}

var encoderPool = sync.Pool{New: func() any { return new(encoder) }}

func (e *encoder) reset(dst []byte) {
	e.buf = dst
	e.base = len(dst)
	e.qEnd = 0
	e.tabFill = 0
	e.gen++
	if e.gen == 0 { // generation wrapped: stale slots could alias, clear
		e.tab = [compSlots]compEntry{}
		e.gen = 1
	}
}

// compHash is FNV-1a over the suffix bytes. It is a fixed function (not a
// seeded hash) so encoded output — including which suffixes win table slots
// — is byte-identical across processes, which experiment determinism
// depends on.
func compHash(s Name) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// lookup returns the registered offset of suffix, if any.
func (e *encoder) lookup(suffix Name) (uint16, bool) {
	i := compHash(suffix) % compSlots
	for {
		s := &e.tab[i]
		if s.gen != e.gen {
			return 0, false
		}
		if s.suffix == suffix {
			return s.off, true
		}
		i = (i + 1) % compSlots
	}
}

// insert registers suffix at off; full tables drop the registration.
func (e *encoder) insert(suffix Name, off uint16) {
	if e.tabFill >= compMaxFill {
		return
	}
	i := compHash(suffix) % compSlots
	for e.tab[i].gen == e.gen {
		if e.tab[i].suffix == suffix {
			return
		}
		i = (i + 1) % compSlots
	}
	e.tab[i] = compEntry{gen: e.gen, off: off, suffix: suffix}
	e.tabFill++
}

// Encode serializes m to wire format. It never truncates; callers enforcing
// UDP size limits should use EncodeWithLimit.
func Encode(m *Message) ([]byte, error) {
	// Pre-size for a typical referral-sized message so the common case is a
	// single allocation instead of a chain of append growths.
	return AppendEncode(make([]byte, 0, 512), m)
}

// AppendEncode serializes m, appending to dst (which may be nil), and
// returns the extended slice. With a dst of sufficient capacity the encode
// is allocation-free; this is the hot-path entry point the server and
// resolver query builders use with pooled buffers.
func AppendEncode(dst []byte, m *Message) ([]byte, error) {
	e := encoderPool.Get().(*encoder)
	e.reset(dst)
	out, err := e.encode(m)
	e.buf = nil // do not retain the caller's buffer in the pool
	encoderPool.Put(e)
	return out, err
}

// EncodeWithLimit serializes m, and if the result exceeds limit bytes it
// returns a truncated message: header with TC set, question retained, all RR
// sections dropped — the conservative behavior of most servers. Truncation
// patches the already-encoded bytes in place rather than encoding twice.
func EncodeWithLimit(m *Message, limit int) ([]byte, error) {
	e := encoderPool.Get().(*encoder)
	e.reset(nil)
	wire, err := e.encode(m)
	qEnd := e.qEnd
	e.buf = nil
	encoderPool.Put(e)
	if err != nil {
		return nil, err
	}
	if limit <= 0 || len(wire) <= limit {
		return wire, nil
	}
	// Drop every RR section: cut at the end of the question, set TC
	// (bit 9 of the flags word at bytes 2-3), zero AN/NS/AR counts.
	// Question-name compression only ever points into the question itself,
	// so the retained prefix stays self-contained.
	wire = wire[:qEnd]
	wire[2] |= 0x02
	for i := 6; i < 12; i++ {
		wire[i] = 0
	}
	return wire, nil
}

func (e *encoder) encode(m *Message) ([]byte, error) {
	e.writeHeader(m)
	for _, q := range m.Question {
		if err := e.writeName(q.Name); err != nil {
			return nil, err
		}
		e.writeU16(uint16(q.Type))
		e.writeU16(uint16(q.Class))
	}
	e.qEnd = len(e.buf) - e.base
	for _, sec := range [][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range sec {
			if err := e.writeRR(rr); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

func (e *encoder) writeHeader(m *Message) {
	h := m.Header
	var flags uint16
	if h.QR {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xF) << 11
	if h.AA {
		flags |= 1 << 10
	}
	if h.TC {
		flags |= 1 << 9
	}
	if h.RD {
		flags |= 1 << 8
	}
	if h.RA {
		flags |= 1 << 7
	}
	if h.AD {
		flags |= 1 << 5
	}
	if h.CD {
		flags |= 1 << 4
	}
	flags |= uint16(h.RCode) & 0xF
	e.writeU16(h.ID)
	e.writeU16(flags)
	e.writeU16(uint16(len(m.Question)))
	e.writeU16(uint16(len(m.Answer)))
	e.writeU16(uint16(len(m.Authority)))
	e.writeU16(uint16(len(m.Additional)))
}

func (e *encoder) writeU8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) writeU16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) writeU32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// writeName emits name with compression: at each label boundary, if the
// remaining suffix has been emitted before at an offset that fits in 14
// bits, a pointer is written instead. Names are stored canonically, so
// every suffix is a zero-copy slice of the name itself.
func (e *encoder) writeName(name Name) error {
	if err := name.Valid(); err != nil {
		return err
	}
	s := string(name)
	if name.IsRoot() {
		e.writeU8(0)
		return nil
	}
	pos := 0
	for pos < len(s) {
		suffix := Name(s[pos:])
		if off, ok := e.lookup(suffix); ok {
			e.writeU16(0xC000 | off)
			return nil
		}
		if off := len(e.buf) - e.base; off < 0x4000 {
			e.insert(suffix, uint16(off))
		}
		end := pos
		for s[end] != '.' {
			end++
		}
		label := s[pos:end]
		e.writeU8(uint8(len(label)))
		e.buf = append(e.buf, label...)
		pos = end + 1
	}
	e.writeU8(0)
	return nil
}

func (e *encoder) writeRR(rr RR) error {
	if rr.Type == TypeOPT {
		return e.writeOPT(rr)
	}
	if err := e.writeName(rr.Name); err != nil {
		return err
	}
	e.writeU16(uint16(rr.Type))
	e.writeU16(uint16(rr.Class))
	e.writeU32(rr.TTL)

	// Reserve RDLENGTH, fill after writing RDATA.
	lenAt := len(e.buf)
	e.writeU16(0)
	start := len(e.buf)
	if err := e.writeRData(rr); err != nil {
		return err
	}
	rdlen := len(e.buf) - start
	if rdlen > 0xFFFF {
		return fmt.Errorf("dnswire: RDATA of %s too long (%d bytes)", rr.Name, rdlen)
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(rdlen))
	return nil
}

func (e *encoder) writeOPT(rr RR) error {
	opt, ok := rr.Data.(OPT)
	if !ok {
		return fmt.Errorf("dnswire: OPT record without OPT data")
	}
	e.writeU8(0) // root owner name
	e.writeU16(uint16(TypeOPT))
	e.writeU16(opt.UDPSize)
	var ttl uint32
	ttl |= uint32(opt.ExtendedRCode) << 24
	ttl |= uint32(opt.Version) << 16
	if opt.DO {
		ttl |= 1 << 15
	}
	e.writeU32(ttl)
	e.writeU16(0) // no options
	return nil
}

func (e *encoder) writeRData(rr RR) error {
	switch d := rr.Data.(type) {
	case nil:
		e.buf = append(e.buf, rr.Raw...)
		return nil
	case A:
		if !d.Addr.Is4() {
			return fmt.Errorf("dnswire: A record %s carries non-IPv4 address %s", rr.Name, d.Addr)
		}
		b := d.Addr.As4()
		e.buf = append(e.buf, b[:]...)
	case AAAA:
		if !d.Addr.Is6() || d.Addr.Is4In6() {
			return fmt.Errorf("dnswire: AAAA record %s carries non-IPv6 address %s", rr.Name, d.Addr)
		}
		b := d.Addr.As16()
		e.buf = append(e.buf, b[:]...)
	case NS:
		return e.writeName(d.Host)
	case CNAME:
		return e.writeName(d.Target)
	case PTR:
		return e.writeName(d.Target)
	case MX:
		e.writeU16(d.Preference)
		return e.writeName(d.Host)
	case TXT:
		for _, s := range d.Strings {
			if len(s) > 255 {
				return fmt.Errorf("dnswire: TXT string exceeds 255 bytes")
			}
			e.writeU8(uint8(len(s)))
			e.buf = append(e.buf, s...)
		}
	case SOA:
		if err := e.writeName(d.MName); err != nil {
			return err
		}
		if err := e.writeName(d.RName); err != nil {
			return err
		}
		e.writeU32(d.Serial)
		e.writeU32(d.Refresh)
		e.writeU32(d.Retry)
		e.writeU32(d.Expire)
		e.writeU32(d.Minimum)
	case DNSKEY:
		e.writeU16(d.Flags)
		e.writeU8(d.Protocol)
		e.writeU8(d.Algorithm)
		e.buf = append(e.buf, d.PublicKey...)
	case DS:
		e.writeU16(d.KeyTag)
		e.writeU8(d.Algorithm)
		e.writeU8(d.DigestType)
		e.buf = append(e.buf, d.Digest...)
	case RRSIG:
		e.writeU16(uint16(d.TypeCovered))
		e.writeU8(d.Algorithm)
		e.writeU8(d.Labels)
		e.writeU32(d.OriginalTTL)
		e.writeU32(d.Expiration)
		e.writeU32(d.Inception)
		e.writeU16(d.KeyTag)
		// RFC 4034 §3.1.7: the signer name is not compressed.
		e.writeNameUncompressed(d.SignerName)
		e.buf = append(e.buf, d.Signature...)
	default:
		return fmt.Errorf("dnswire: cannot encode RDATA type %T", rr.Data)
	}
	return nil
}

func (e *encoder) writeNameUncompressed(name Name) {
	for it := name.Iter(); ; {
		label, ok := it.Next()
		if !ok {
			break
		}
		e.writeU8(uint8(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.writeU8(0)
}
