package dnswire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// encoder serializes a message with RFC 1035 §4.1.4 name compression.
type encoder struct {
	buf []byte
	// offsets maps a fully-qualified name (as stored in Name) to the wire
	// offset of its first occurrence, for compression pointers.
	offsets map[Name]int
}

// Encode serializes m to wire format. It never truncates; callers enforcing
// UDP size limits should use EncodeWithLimit.
func Encode(m *Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 512), offsets: make(map[Name]int)}
	return e.encode(m)
}

// EncodeWithLimit serializes m, and if the result exceeds limit bytes it
// returns a truncated message: header with TC set, question retained, all RR
// sections dropped — the conservative behavior of most servers.
func EncodeWithLimit(m *Message, limit int) ([]byte, error) {
	wire, err := Encode(m)
	if err != nil {
		return nil, err
	}
	if limit <= 0 || len(wire) <= limit {
		return wire, nil
	}
	tm := &Message{Header: m.Header, Question: m.Question}
	tm.Header.TC = true
	return Encode(tm)
}

func (e *encoder) encode(m *Message) ([]byte, error) {
	e.writeHeader(m)
	for _, q := range m.Question {
		if err := e.writeName(q.Name); err != nil {
			return nil, err
		}
		e.writeU16(uint16(q.Type))
		e.writeU16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range sec {
			if err := e.writeRR(rr); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

func (e *encoder) writeHeader(m *Message) {
	h := m.Header
	var flags uint16
	if h.QR {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xF) << 11
	if h.AA {
		flags |= 1 << 10
	}
	if h.TC {
		flags |= 1 << 9
	}
	if h.RD {
		flags |= 1 << 8
	}
	if h.RA {
		flags |= 1 << 7
	}
	if h.AD {
		flags |= 1 << 5
	}
	if h.CD {
		flags |= 1 << 4
	}
	flags |= uint16(h.RCode) & 0xF
	e.writeU16(h.ID)
	e.writeU16(flags)
	e.writeU16(uint16(len(m.Question)))
	e.writeU16(uint16(len(m.Answer)))
	e.writeU16(uint16(len(m.Authority)))
	e.writeU16(uint16(len(m.Additional)))
}

func (e *encoder) writeU8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) writeU16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) writeU32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// writeName emits name with compression: at each label boundary, if the
// remaining suffix has been emitted before at an offset that fits in 14
// bits, a pointer is written instead. Names are stored canonically, so
// every suffix is a zero-copy slice of the name itself.
func (e *encoder) writeName(name Name) error {
	if err := name.Valid(); err != nil {
		return err
	}
	s := string(name)
	if name.IsRoot() {
		e.writeU8(0)
		return nil
	}
	pos := 0
	for pos < len(s) {
		suffix := Name(s[pos:])
		if off, ok := e.offsets[suffix]; ok && off < 0x4000 {
			e.writeU16(0xC000 | uint16(off))
			return nil
		}
		if len(e.buf) < 0x4000 {
			e.offsets[suffix] = len(e.buf)
		}
		end := strings.IndexByte(s[pos:], '.') + pos
		label := s[pos:end]
		e.writeU8(uint8(len(label)))
		e.buf = append(e.buf, label...)
		pos = end + 1
	}
	e.writeU8(0)
	return nil
}

func (e *encoder) writeRR(rr RR) error {
	if rr.Type == TypeOPT {
		return e.writeOPT(rr)
	}
	if err := e.writeName(rr.Name); err != nil {
		return err
	}
	e.writeU16(uint16(rr.Type))
	e.writeU16(uint16(rr.Class))
	e.writeU32(rr.TTL)

	// Reserve RDLENGTH, fill after writing RDATA.
	lenAt := len(e.buf)
	e.writeU16(0)
	start := len(e.buf)
	if err := e.writeRData(rr); err != nil {
		return err
	}
	rdlen := len(e.buf) - start
	if rdlen > 0xFFFF {
		return fmt.Errorf("dnswire: RDATA of %s too long (%d bytes)", rr.Name, rdlen)
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(rdlen))
	return nil
}

func (e *encoder) writeOPT(rr RR) error {
	opt, ok := rr.Data.(OPT)
	if !ok {
		return fmt.Errorf("dnswire: OPT record without OPT data")
	}
	e.writeU8(0) // root owner name
	e.writeU16(uint16(TypeOPT))
	e.writeU16(opt.UDPSize)
	var ttl uint32
	ttl |= uint32(opt.ExtendedRCode) << 24
	ttl |= uint32(opt.Version) << 16
	if opt.DO {
		ttl |= 1 << 15
	}
	e.writeU32(ttl)
	e.writeU16(0) // no options
	return nil
}

func (e *encoder) writeRData(rr RR) error {
	switch d := rr.Data.(type) {
	case nil:
		e.buf = append(e.buf, rr.Raw...)
		return nil
	case A:
		if !d.Addr.Is4() {
			return fmt.Errorf("dnswire: A record %s carries non-IPv4 address %s", rr.Name, d.Addr)
		}
		b := d.Addr.As4()
		e.buf = append(e.buf, b[:]...)
	case AAAA:
		if !d.Addr.Is6() || d.Addr.Is4In6() {
			return fmt.Errorf("dnswire: AAAA record %s carries non-IPv6 address %s", rr.Name, d.Addr)
		}
		b := d.Addr.As16()
		e.buf = append(e.buf, b[:]...)
	case NS:
		return e.writeName(d.Host)
	case CNAME:
		return e.writeName(d.Target)
	case PTR:
		return e.writeName(d.Target)
	case MX:
		e.writeU16(d.Preference)
		return e.writeName(d.Host)
	case TXT:
		for _, s := range d.Strings {
			if len(s) > 255 {
				return fmt.Errorf("dnswire: TXT string exceeds 255 bytes")
			}
			e.writeU8(uint8(len(s)))
			e.buf = append(e.buf, s...)
		}
	case SOA:
		if err := e.writeName(d.MName); err != nil {
			return err
		}
		if err := e.writeName(d.RName); err != nil {
			return err
		}
		e.writeU32(d.Serial)
		e.writeU32(d.Refresh)
		e.writeU32(d.Retry)
		e.writeU32(d.Expire)
		e.writeU32(d.Minimum)
	case DNSKEY:
		e.writeU16(d.Flags)
		e.writeU8(d.Protocol)
		e.writeU8(d.Algorithm)
		e.buf = append(e.buf, d.PublicKey...)
	case DS:
		e.writeU16(d.KeyTag)
		e.writeU8(d.Algorithm)
		e.writeU8(d.DigestType)
		e.buf = append(e.buf, d.Digest...)
	case RRSIG:
		e.writeU16(uint16(d.TypeCovered))
		e.writeU8(d.Algorithm)
		e.writeU8(d.Labels)
		e.writeU32(d.OriginalTTL)
		e.writeU32(d.Expiration)
		e.writeU32(d.Inception)
		e.writeU16(d.KeyTag)
		// RFC 4034 §3.1.7: the signer name is not compressed.
		e.writeNameUncompressed(d.SignerName)
		e.buf = append(e.buf, d.Signature...)
	default:
		return fmt.Errorf("dnswire: cannot encode RDATA type %T", rr.Data)
	}
	return nil
}

func (e *encoder) writeNameUncompressed(name Name) {
	for _, label := range name.Labels() {
		e.writeU8(uint8(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.writeU8(0)
}
