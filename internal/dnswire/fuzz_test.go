package dnswire

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the wire decoder with arbitrary bytes; it must never
// panic, and anything it accepts must re-encode and re-decode to the same
// message (decode∘encode idempotence on the accepted set).
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid messages of increasing complexity.
	seed := func(m *Message) {
		wire, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	seed(NewQuery(1, NewName("example.org"), TypeA))
	resp := NewQuery(2, NewName("www.example.org"), TypeAAAA).Reply()
	resp.Header.AA = true
	resp.AddAnswer(NewAAAA("www.example.org", 300, "2001:db8::1"))
	resp.AddAuthority(NewNS("example.org", 3600, "ns1.example.org"))
	resp.AddAdditional(NewA("ns1.example.org", 7200, "192.0.2.53"))
	seed(resp)
	soa := NewQuery(3, NewName("x.org"), TypeSOA).Reply()
	soa.AddAnswer(NewSOA("x.org", 60, "ns.x.org", "h.x.org", 1, 2, 3, 4, 5))
	soa.AddAdditional(RR{Name: Root, Type: TypeOPT, Data: OPT{UDPSize: 4096, DO: true}})
	seed(soa)
	f.Add([]byte{0xC0, 0x0C})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	// Compression-pointer edge cases. A pointer-to-pointer chain: the
	// question name at offset 12 is a pointer to offset 14, itself a pointer
	// forward — the decoder must reject the forward hop, not loop.
	f.Add([]byte{
		0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, // header, QD=1
		0xC0, 14, // question name: pointer to offset 14
		0xC0, 16, // offset 14: pointer to offset 16 (forward → reject)
		0, // offset 16: root
		0, 1, 0, 1,
	})
	// A legitimate two-hop chain: name at 21 points to 16 ("b." + pointer),
	// which in turn points to 12 ("a.example.org.-ish" label data).
	f.Add([]byte{
		0, 9, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, // header, QD=2
		1, 'a', 0, 0x00, // offset 12: "a." then pad
		1, 'b', 0xC0, 12, // offset 16: "b.a." via pointer
		0, 1, // (type/class bytes for fuzz variety)
		0xC0, 16, // offset 22: pointer → pointer chain
		0, 1, 0, 1,
	})
	// A pointer whose target is the maximum encodable offset 0x3FFF: an
	// answer RR padded past 16 KiB with a zero byte (root name) at exactly
	// 0x3FFF, and a second RR whose owner is the pointer 0xFF,0xFF.
	big := make([]byte, 0, 0x4000+32)
	big = append(big,
		0, 9, 0x80, 0, 0, 0, 0, 2, 0, 0, 0, 0, // header, QR, AN=2
		0,           // RR1 owner: root
		0, 16, 0, 1, // TXT IN
		0, 0, 0, 60,
	)
	pad := 0x3FFF + 1 - (len(big) + 2) // RDATA spans through offset 0x3FFF
	big = append(big, byte(pad>>8), byte(pad))
	for len(big) <= 0x3FFF {
		big = append(big, 0) // TXT of empty strings; byte at 0x3FFF is 0x00
	}
	big = append(big,
		0xFF, 0xFF, // RR2 owner: pointer to 0x3FFF (a root byte)
		0, 1, 0, 1, // A IN
		0, 0, 0, 60,
		0, 4, 192, 0, 2, 1,
	)
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		// Whatever the one-shot path decided, the reusable path must agree:
		// a warm Decoder filling a recycled Message is the production decode
		// route and may not diverge from a fresh Decode.
		d := NewDecoder()
		var reused Message
		for i := 0; i < 2; i++ {
			err2 := d.Decode(data, &reused)
			if (err == nil) != (err2 == nil) {
				t.Fatalf("Decoder reuse pass %d disagrees with Decode: %v vs %v", i, err, err2)
			}
		}
		if err == nil {
			if len(reused.Answer) != len(m.Answer) || len(reused.Question) != len(m.Question) ||
				len(reused.Authority) != len(m.Authority) || len(reused.Additional) != len(m.Additional) {
				t.Fatalf("Decoder reuse changed message shape")
			}
		}
		if err != nil {
			return
		}
		wire2, err := Encode(m)
		if err != nil {
			// Some decoded forms are not re-encodable (e.g. counts that
			// exceeded section contents); that is acceptable as long as
			// decoding did not panic.
			return
		}
		m2, err := Decode(wire2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(m2.Answer) != len(m.Answer) || len(m2.Question) != len(m.Question) {
			t.Fatalf("re-decode changed shape: %d/%d answers", len(m2.Answer), len(m.Answer))
		}
	})
}

// FuzzNameRoundTrip checks name canonicalization stability: NewName is
// idempotent and valid names survive a wire round trip.
func FuzzNameRoundTrip(f *testing.F) {
	f.Add("example.org")
	f.Add("EXAMPLE.ORG.")
	f.Add(".")
	f.Add("a.b.c.d.e.f")
	f.Add("xn--nxasmq6b.example")
	f.Fuzz(func(t *testing.T, s string) {
		n := NewName(s)
		if NewName(string(n)) != n {
			t.Fatalf("NewName not idempotent for %q", s)
		}
		if n.Valid() != nil {
			return
		}
		m := NewQuery(1, n, TypeA)
		wire, err := Encode(m)
		if err != nil {
			return // non-ASCII labels etc. may fail encode limits
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of valid name %q failed: %v", n, err)
		}
		if got.Q().Name != n {
			t.Fatalf("name changed in round trip: %q → %q", n, got.Q().Name)
		}
	})
}
