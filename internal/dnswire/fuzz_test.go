package dnswire

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the wire decoder with arbitrary bytes; it must never
// panic, and anything it accepts must re-encode and re-decode to the same
// message (decode∘encode idempotence on the accepted set).
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid messages of increasing complexity.
	seed := func(m *Message) {
		wire, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	seed(NewQuery(1, NewName("example.org"), TypeA))
	resp := NewQuery(2, NewName("www.example.org"), TypeAAAA).Reply()
	resp.Header.AA = true
	resp.AddAnswer(NewAAAA("www.example.org", 300, "2001:db8::1"))
	resp.AddAuthority(NewNS("example.org", 3600, "ns1.example.org"))
	resp.AddAdditional(NewA("ns1.example.org", 7200, "192.0.2.53"))
	seed(resp)
	soa := NewQuery(3, NewName("x.org"), TypeSOA).Reply()
	soa.AddAnswer(NewSOA("x.org", 60, "ns.x.org", "h.x.org", 1, 2, 3, 4, 5))
	soa.AddAdditional(RR{Name: Root, Type: TypeOPT, Data: OPT{UDPSize: 4096, DO: true}})
	seed(soa)
	f.Add([]byte{0xC0, 0x0C})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		wire2, err := Encode(m)
		if err != nil {
			// Some decoded forms are not re-encodable (e.g. counts that
			// exceeded section contents); that is acceptable as long as
			// decoding did not panic.
			return
		}
		m2, err := Decode(wire2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(m2.Answer) != len(m.Answer) || len(m2.Question) != len(m.Question) {
			t.Fatalf("re-decode changed shape: %d/%d answers", len(m2.Answer), len(m.Answer))
		}
	})
}

// FuzzNameRoundTrip checks name canonicalization stability: NewName is
// idempotent and valid names survive a wire round trip.
func FuzzNameRoundTrip(f *testing.F) {
	f.Add("example.org")
	f.Add("EXAMPLE.ORG.")
	f.Add(".")
	f.Add("a.b.c.d.e.f")
	f.Add("xn--nxasmq6b.example")
	f.Fuzz(func(t *testing.T, s string) {
		n := NewName(s)
		if NewName(string(n)) != n {
			t.Fatalf("NewName not idempotent for %q", s)
		}
		if n.Valid() != nil {
			return
		}
		m := NewQuery(1, n, TypeA)
		wire, err := Encode(m)
		if err != nil {
			return // non-ASCII labels etc. may fail encode limits
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("decode of valid name %q failed: %v", n, err)
		}
		if got.Q().Name != n {
			t.Fatalf("name changed in round trip: %q → %q", n, got.Q().Name)
		}
	})
}
