package dnswire

import "testing"

// These tests pin the codec's allocation budgets so hot-path regressions
// fail loudly instead of silently eroding throughput. Thresholds carry a
// little slack because sync.Pool interaction with GC can surface the odd
// fractional allocation per run.

// TestAppendEncodeAllocFree: encoding into a buffer of sufficient capacity
// must not allocate.
func TestAppendEncodeAllocFree(t *testing.T) {
	m := benchMessage()
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(200, func() {
		out, err := AppendEncode(buf[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	})
	if allocs >= 0.5 {
		t.Errorf("AppendEncode into sized buffer: %.2f allocs/op, want 0", allocs)
	}
}

// TestEncodeAllocBudget: the convenience Encode pays exactly one allocation
// — the output buffer.
func TestEncodeAllocBudget(t *testing.T) {
	m := benchMessage()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Encode(m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1.5 {
		t.Errorf("Encode: %.2f allocs/op, want <= 1", allocs)
	}
}

// TestDecoderReuseAllocFree: a warm Decoder refilling a reused Message must
// not allocate — every name and boxed RData value is already interned and
// the section slices have capacity.
func TestDecoderReuseAllocFree(t *testing.T) {
	wire, err := Encode(benchMessage())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder()
	var m Message
	// Warm the intern tables and section slices.
	for i := 0; i < 3; i++ {
		if err := d.Decode(wire, &m); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := d.Decode(wire, &m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 0.5 {
		t.Errorf("warm Decoder.Decode: %.2f allocs/op, want 0", allocs)
	}
}
