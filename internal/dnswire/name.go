package dnswire

import (
	"errors"
	"strings"
)

// Name is a fully-qualified, case-normalized domain name in presentation
// form, always ending with a trailing dot ("example.org."). The root is ".".
//
// Names are stored lowercased; DNS name comparison is case-insensitive
// (RFC 1035 §2.3.3) and every package in this module relies on Name values
// being directly comparable with ==.
type Name string

// Root is the DNS root name.
const Root Name = "."

// Errors returned by name validation.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnswire: empty label")
)

// NewName canonicalizes s into a Name: lowercases it and ensures a trailing
// dot. It does not validate lengths; use Valid for that.
func NewName(s string) Name {
	if s == "" || s == "." {
		return Root
	}
	s = strings.ToLower(s)
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return Name(s)
}

// MustName is NewName plus validation, panicking on invalid input. It is
// intended for constants and tests.
func MustName(s string) Name {
	n := NewName(s)
	if err := n.Valid(); err != nil {
		panic(err)
	}
	return n
}

// Valid reports whether the name obeys RFC 1035 length limits.
func (n Name) Valid() error {
	if n == Root {
		return nil
	}
	// Wire length: one length octet per label plus label bytes, plus the
	// terminating zero octet. Labels are walked with the allocation-free
	// iterator: Valid sits on the encoder's per-name hot path.
	wire := 1
	for it := n.Iter(); ; {
		label, ok := it.Next()
		if !ok {
			break
		}
		if label == "" {
			return ErrEmptyLabel
		}
		if len(label) > 63 {
			return ErrLabelTooLong
		}
		wire += 1 + len(label)
	}
	if wire > 255 {
		return ErrNameTooLong
	}
	return nil
}

// IsRoot reports whether the name is the DNS root.
func (n Name) IsRoot() bool { return n == Root || n == "" }

// Labels returns the name's labels, most-specific first, excluding the root.
// "www.example.org." → ["www", "example", "org"]. Each call allocates the
// slice; hot paths should use Iter instead.
func (n Name) Labels() []string {
	if n.IsRoot() {
		return nil
	}
	return strings.Split(strings.TrimSuffix(string(n), "."), ".")
}

// LabelIter walks a name's labels most-specific first without allocating.
// Obtain one with Name.Iter; each Next returns a zero-copy substring of the
// name.
type LabelIter struct {
	s   string
	pos int
}

// Iter returns an allocation-free iterator over n's labels, yielding the
// same sequence as Labels (empty labels included, so malformed names can be
// detected by callers).
func (n Name) Iter() LabelIter {
	if n.IsRoot() {
		return LabelIter{pos: 1}
	}
	return LabelIter{s: strings.TrimSuffix(string(n), ".")}
}

// Next returns the next label and whether one was available.
func (it *LabelIter) Next() (string, bool) {
	if it.pos > len(it.s) {
		return "", false
	}
	if i := strings.IndexByte(it.s[it.pos:], '.'); i >= 0 {
		label := it.s[it.pos : it.pos+i]
		it.pos += i + 1
		return label, true
	}
	label := it.s[it.pos:]
	it.pos = len(it.s) + 1
	return label, true
}

// CountLabels returns the number of labels, 0 for the root.
func (n Name) CountLabels() int {
	if n.IsRoot() {
		return 0
	}
	return strings.Count(strings.TrimSuffix(string(n), "."), ".") + 1
}

// Parent returns the name with its leftmost label removed;
// "www.example.org." → "example.org.". The parent of the root is the root.
func (n Name) Parent() Name {
	if n.IsRoot() {
		return Root
	}
	s := strings.TrimSuffix(string(n), ".")
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return Name(s[i+1:] + ".")
	}
	return Root
}

// Child returns label + "." + n, e.g. Root.Child("org") → "org.".
func (n Name) Child(label string) Name {
	label = strings.ToLower(label)
	if n.IsRoot() {
		return Name(label + ".")
	}
	return Name(label + "." + string(n))
}

// IsSubdomainOf reports whether n is equal to or falls under ancestor.
// Every name is a subdomain of the root. This is the "in bailiwick"
// predicate from RFC 8499 used throughout §4 of the paper.
func (n Name) IsSubdomainOf(ancestor Name) bool {
	if ancestor.IsRoot() {
		return true
	}
	if n == ancestor {
		return true
	}
	return strings.HasSuffix(string(n), "."+string(ancestor))
}

// CommonAncestor returns the deepest name that is an ancestor of both names.
func CommonAncestor(a, b Name) Name {
	al, bl := a.Labels(), b.Labels()
	n := 0
	for n < len(al) && n < len(bl) && al[len(al)-1-n] == bl[len(bl)-1-n] {
		n++
	}
	if n == 0 {
		return Root
	}
	return Name(strings.Join(al[len(al)-n:], ".") + ".")
}

// String returns the presentation form.
func (n Name) String() string {
	if n.IsRoot() {
		return "."
	}
	return string(n)
}

// wireLen returns the uncompressed wire length of the name.
func (n Name) wireLen() int {
	if n.IsRoot() {
		return 1
	}
	return len(n) + 1
}
