package dnswire

// Wire-size accounting. The cache's byte-accurate memory bound charges each
// entry its uncompressed wire-format size (RFC 1035 §3.2.1 framing), which
// is the size a resolver would pay to hold the record ready to serve; name
// compression is a per-message transport optimization and deliberately does
// not enter the accounting.

// WireSize returns the uncompressed wire length of the name: one length
// octet per label plus the label bytes, plus the terminating zero octet.
// For a canonical Name ("example.org.") that is len(n)+1; the root is 1.
func (n Name) WireSize() int {
	if n == Root || n == "" {
		return 1
	}
	return len(n) + 1
}

// rrFixedHeader is the fixed RR framing past the owner name: TYPE(2) +
// CLASS(2) + TTL(4) + RDLENGTH(2).
const rrFixedHeader = 10

// WireSize returns the record's uncompressed wire length: owner name,
// fixed header, and RDATA sized exactly as the encoder would emit it with
// compression disabled. Unknown types carry their Raw bytes.
func (r RR) WireSize() int {
	return r.Name.WireSize() + rrFixedHeader + r.rdataWireSize()
}

func (r RR) rdataWireSize() int {
	switch d := r.Data.(type) {
	case nil:
		return len(r.Raw)
	case A:
		return 4
	case AAAA:
		return 16
	case NS:
		return d.Host.WireSize()
	case CNAME:
		return d.Target.WireSize()
	case PTR:
		return d.Target.WireSize()
	case MX:
		return 2 + d.Host.WireSize()
	case TXT:
		n := 0
		for _, s := range d.Strings {
			n += 1 + len(s)
		}
		return n
	case SOA:
		return d.MName.WireSize() + d.RName.WireSize() + 20
	case DNSKEY:
		return 4 + len(d.PublicKey)
	case DS:
		return 4 + len(d.Digest)
	case RRSIG:
		return 18 + d.SignerName.WireSize() + len(d.Signature)
	case OPT:
		// The OPT pseudo-record is never cached, but account its frame
		// (root owner + fixed header, no options) for completeness.
		return 0
	}
	return len(r.Raw)
}
