package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Decoding errors.
var (
	ErrShortMessage    = errors.New("dnswire: message too short")
	ErrPointerLoop     = errors.New("dnswire: compression pointer loop")
	ErrTrailingGarbage = errors.New("dnswire: bytes remain after final record")
)

type decoder struct {
	wire []byte
	off  int
}

// Decode parses a wire-format DNS message.
func Decode(wire []byte) (*Message, error) {
	d := &decoder{wire: wire}
	m := &Message{}
	qd, an, ns, ar, err := d.readHeader(&m.Header)
	if err != nil {
		return nil, err
	}
	for i := 0; i < qd; i++ {
		q, err := d.readQuestion()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Question = append(m.Question, q)
	}
	var opt *OPT
	read := func(n int, dst *[]RR, sec string) error {
		for i := 0; i < n; i++ {
			rr, err := d.readRR()
			if err != nil {
				return fmt.Errorf("%s record %d: %w", sec, i, err)
			}
			if rr.Type == TypeOPT {
				if o, ok := rr.Data.(OPT); ok {
					opt = &o
				}
			}
			*dst = append(*dst, rr)
		}
		return nil
	}
	if err := read(an, &m.Answer, "answer"); err != nil {
		return nil, err
	}
	if err := read(ns, &m.Authority, "authority"); err != nil {
		return nil, err
	}
	if err := read(ar, &m.Additional, "additional"); err != nil {
		return nil, err
	}
	if opt != nil {
		// Fold the extended RCode bits in (RFC 6891 §6.1.3).
		m.Header.RCode |= RCode(opt.ExtendedRCode) << 4
	}
	if d.off != len(d.wire) {
		return nil, ErrTrailingGarbage
	}
	return m, nil
}

func (d *decoder) need(n int) error {
	if d.off+n > len(d.wire) {
		return ErrShortMessage
	}
	return nil
}

func (d *decoder) readU8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.wire[d.off]
	d.off++
	return v, nil
}

func (d *decoder) readU16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(d.wire[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) readU32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(d.wire[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) readHeader(h *Header) (qd, an, ns, ar int, err error) {
	if err = d.need(12); err != nil {
		return
	}
	h.ID = binary.BigEndian.Uint16(d.wire)
	flags := binary.BigEndian.Uint16(d.wire[2:])
	h.QR = flags&(1<<15) != 0
	h.Opcode = Opcode(flags >> 11 & 0xF)
	h.AA = flags&(1<<10) != 0
	h.TC = flags&(1<<9) != 0
	h.RD = flags&(1<<8) != 0
	h.RA = flags&(1<<7) != 0
	h.AD = flags&(1<<5) != 0
	h.CD = flags&(1<<4) != 0
	h.RCode = RCode(flags & 0xF)
	qd = int(binary.BigEndian.Uint16(d.wire[4:]))
	an = int(binary.BigEndian.Uint16(d.wire[6:]))
	ns = int(binary.BigEndian.Uint16(d.wire[8:]))
	ar = int(binary.BigEndian.Uint16(d.wire[10:]))
	d.off = 12
	return
}

// readName reads a possibly-compressed name starting at the current offset.
func (d *decoder) readName() (Name, error) {
	name, next, err := readNameAt(d.wire, d.off)
	if err != nil {
		return "", err
	}
	d.off = next
	return name, nil
}

// readNameAt reads a name at offset off in wire, following compression
// pointers, and returns the name plus the offset just past the name's bytes
// at the top level (pointers are not followed for the return offset).
func readNameAt(wire []byte, off int) (Name, int, error) {
	var sb strings.Builder
	ret := -1 // offset to return to after first pointer
	hops := 0
	for {
		if off >= len(wire) {
			return "", 0, ErrShortMessage
		}
		b := wire[off]
		switch {
		case b == 0:
			if ret < 0 {
				ret = off + 1
			}
			if sb.Len() == 0 {
				return Root, ret, nil
			}
			return NewName(sb.String()), ret, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(wire) {
				return "", 0, ErrShortMessage
			}
			ptr := int(binary.BigEndian.Uint16(wire[off:]) & 0x3FFF)
			if ret < 0 {
				ret = off + 2
			}
			hops++
			if hops > 127 || ptr >= off {
				// A pointer must point strictly backwards; forward or
				// self-pointers can only form loops.
				return "", 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type %#x", b&0xC0)
		default:
			n := int(b)
			if off+1+n > len(wire) {
				return "", 0, ErrShortMessage
			}
			sb.Write(wire[off+1 : off+1+n])
			sb.WriteByte('.')
			off += 1 + n
		}
	}
}

func (d *decoder) readQuestion() (Question, error) {
	name, err := d.readName()
	if err != nil {
		return Question{}, err
	}
	t, err := d.readU16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.readU16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: name, Type: Type(t), Class: Class(c)}, nil
}

func (d *decoder) readRR() (RR, error) {
	name, err := d.readName()
	if err != nil {
		return RR{}, err
	}
	t16, err := d.readU16()
	if err != nil {
		return RR{}, err
	}
	c16, err := d.readU16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.readU32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.readU16()
	if err != nil {
		return RR{}, err
	}
	if err := d.need(int(rdlen)); err != nil {
		return RR{}, err
	}
	rr := RR{Name: name, Type: Type(t16), Class: Class(c16), TTL: ttl}
	end := d.off + int(rdlen)
	if rr.Type == TypeOPT {
		// RFC 6891: class is the UDP size, TTL carries flags.
		rr.Data = OPT{
			UDPSize:       c16,
			ExtendedRCode: uint8(ttl >> 24),
			Version:       uint8(ttl >> 16),
			DO:            ttl&(1<<15) != 0,
		}
		d.off = end // option TLVs are skipped
		return rr, nil
	}
	if err := d.readRData(&rr, end); err != nil {
		return RR{}, err
	}
	if d.off != end {
		return RR{}, fmt.Errorf("dnswire: RDATA length mismatch for %s %s", name, rr.Type)
	}
	return rr, nil
}

func (d *decoder) readRData(rr *RR, end int) error {
	switch rr.Type {
	case TypeA:
		if end-d.off != 4 {
			return fmt.Errorf("dnswire: A RDATA must be 4 bytes, got %d", end-d.off)
		}
		var b [4]byte
		copy(b[:], d.wire[d.off:end])
		d.off = end
		rr.Data = A{Addr: netip.AddrFrom4(b)}
	case TypeAAAA:
		if end-d.off != 16 {
			return fmt.Errorf("dnswire: AAAA RDATA must be 16 bytes, got %d", end-d.off)
		}
		var b [16]byte
		copy(b[:], d.wire[d.off:end])
		d.off = end
		rr.Data = AAAA{Addr: netip.AddrFrom16(b)}
	case TypeNS:
		host, err := d.readName()
		if err != nil {
			return err
		}
		rr.Data = NS{Host: host}
	case TypeCNAME:
		target, err := d.readName()
		if err != nil {
			return err
		}
		rr.Data = CNAME{Target: target}
	case TypePTR:
		target, err := d.readName()
		if err != nil {
			return err
		}
		rr.Data = PTR{Target: target}
	case TypeMX:
		pref, err := d.readU16()
		if err != nil {
			return err
		}
		host, err := d.readName()
		if err != nil {
			return err
		}
		rr.Data = MX{Preference: pref, Host: host}
	case TypeTXT:
		var txt TXT
		for d.off < end {
			n, err := d.readU8()
			if err != nil {
				return err
			}
			if d.off+int(n) > end {
				return ErrShortMessage
			}
			txt.Strings = append(txt.Strings, string(d.wire[d.off:d.off+int(n)]))
			d.off += int(n)
		}
		rr.Data = txt
	case TypeSOA:
		var s SOA
		var err error
		if s.MName, err = d.readName(); err != nil {
			return err
		}
		if s.RName, err = d.readName(); err != nil {
			return err
		}
		for _, p := range []*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum} {
			if *p, err = d.readU32(); err != nil {
				return err
			}
		}
		rr.Data = s
	case TypeDNSKEY:
		var k DNSKEY
		var err error
		if k.Flags, err = d.readU16(); err != nil {
			return err
		}
		if k.Protocol, err = d.readU8(); err != nil {
			return err
		}
		if k.Algorithm, err = d.readU8(); err != nil {
			return err
		}
		k.PublicKey = append([]byte(nil), d.wire[d.off:end]...)
		d.off = end
		rr.Data = k
	case TypeDS:
		var ds DS
		var err error
		if ds.KeyTag, err = d.readU16(); err != nil {
			return err
		}
		if ds.Algorithm, err = d.readU8(); err != nil {
			return err
		}
		if ds.DigestType, err = d.readU8(); err != nil {
			return err
		}
		ds.Digest = append([]byte(nil), d.wire[d.off:end]...)
		d.off = end
		rr.Data = ds
	case TypeRRSIG:
		var s RRSIG
		tc, err := d.readU16()
		if err != nil {
			return err
		}
		s.TypeCovered = Type(tc)
		if s.Algorithm, err = d.readU8(); err != nil {
			return err
		}
		if s.Labels, err = d.readU8(); err != nil {
			return err
		}
		for _, p := range []*uint32{&s.OriginalTTL, &s.Expiration, &s.Inception} {
			if *p, err = d.readU32(); err != nil {
				return err
			}
		}
		if s.KeyTag, err = d.readU16(); err != nil {
			return err
		}
		if s.SignerName, err = d.readName(); err != nil {
			return err
		}
		if d.off > end {
			return ErrShortMessage
		}
		s.Signature = append([]byte(nil), d.wire[d.off:end]...)
		d.off = end
		rr.Data = s
	default:
		rr.Raw = append([]byte(nil), d.wire[d.off:end]...)
		d.off = end
	}
	return nil
}
