package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
)

// Decoding errors.
var (
	ErrShortMessage    = errors.New("dnswire: message too short")
	ErrPointerLoop     = errors.New("dnswire: compression pointer loop")
	ErrTrailingGarbage = errors.New("dnswire: bytes remain after final record")
)

// maxInterned bounds the decoder's name and RData intern tables; past this
// the tables are cleared rather than growing without bound.
const maxInterned = 8192

// boxKey identifies an interned RData value. One key type covers the hot
// record families: addresses (A/AAAA), name-valued RData (NS/CNAME/PTR) and
// MX (name + preference).
type boxKey struct {
	t    Type
	name Name
	pref uint16
	addr netip.Addr
}

// Decoder parses wire-format messages into caller-owned Messages, reusing
// the target's RR slices and interning names and hot RData values so that a
// steady-state decode allocates nothing. A Decoder is not safe for
// concurrent use; use AcquireDecoder/ReleaseDecoder for a pooled one.
type Decoder struct {
	wire    []byte
	off     int
	scratch []byte // name assembly buffer

	// names interns decoded names by raw wire spelling (case included);
	// boxes interns the interface-boxed RData values whose boxing would
	// otherwise allocate on every record.
	names map[string]Name
	boxes map[boxKey]RData
	opts  map[OPT]RData
}

// NewDecoder returns a ready Decoder with empty intern tables.
func NewDecoder() *Decoder {
	return &Decoder{
		names: make(map[string]Name),
		boxes: make(map[boxKey]RData),
		opts:  make(map[OPT]RData),
	}
}

var decoderPool = sync.Pool{New: func() any { return NewDecoder() }}

// AcquireDecoder returns a pooled Decoder. Pooled decoders keep their warm
// intern tables across uses, which is what makes the server's per-query
// decode path allocation-free.
func AcquireDecoder() *Decoder { return decoderPool.Get().(*Decoder) }

// ReleaseDecoder returns d to the pool. The caller must not use d after.
func ReleaseDecoder(d *Decoder) {
	d.wire = nil
	decoderPool.Put(d)
}

// Decode parses a wire-format DNS message into a fresh Message.
func Decode(wire []byte) (*Message, error) {
	d := AcquireDecoder()
	m := &Message{}
	err := d.Decode(wire, m)
	ReleaseDecoder(d)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Decode parses wire into m, resetting m first and reusing its section
// slices. The decoded Message shares no state with the Decoder other than
// immutable interned values, so m stays valid after the Decoder is released
// or reused.
func (d *Decoder) Decode(wire []byte, m *Message) error {
	d.wire, d.off = wire, 0
	if len(d.names) > maxInterned {
		clear(d.names)
	}
	if len(d.boxes) > maxInterned {
		clear(d.boxes)
	}
	m.Reset()

	qd, an, ns, ar, err := d.readHeader(&m.Header)
	if err != nil {
		return err
	}
	for i := 0; i < qd; i++ {
		q, err := d.readQuestion()
		if err != nil {
			return fmt.Errorf("question %d: %w", i, err)
		}
		m.Question = append(m.Question, q)
	}
	var opt *OPT
	read := func(n int, dst *[]RR, sec string) error {
		for i := 0; i < n; i++ {
			rr, err := d.readRR()
			if err != nil {
				return fmt.Errorf("%s record %d: %w", sec, i, err)
			}
			if rr.Type == TypeOPT {
				if o, ok := rr.Data.(OPT); ok {
					opt = &o
				}
			}
			*dst = append(*dst, rr)
		}
		return nil
	}
	if err := read(an, &m.Answer, "answer"); err != nil {
		return err
	}
	if err := read(ns, &m.Authority, "authority"); err != nil {
		return err
	}
	if err := read(ar, &m.Additional, "additional"); err != nil {
		return err
	}
	if opt != nil {
		// Fold the extended RCode bits in (RFC 6891 §6.1.3).
		m.Header.RCode |= RCode(opt.ExtendedRCode) << 4
	}
	if d.off != len(d.wire) {
		return ErrTrailingGarbage
	}
	return nil
}

func (d *Decoder) need(n int) error {
	if d.off+n > len(d.wire) {
		return ErrShortMessage
	}
	return nil
}

func (d *Decoder) readU8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.wire[d.off]
	d.off++
	return v, nil
}

func (d *Decoder) readU16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(d.wire[d.off:])
	d.off += 2
	return v, nil
}

func (d *Decoder) readU32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(d.wire[d.off:])
	d.off += 4
	return v, nil
}

func (d *Decoder) readHeader(h *Header) (qd, an, ns, ar int, err error) {
	if err = d.need(12); err != nil {
		return
	}
	h.ID = binary.BigEndian.Uint16(d.wire)
	flags := binary.BigEndian.Uint16(d.wire[2:])
	h.QR = flags&(1<<15) != 0
	h.Opcode = Opcode(flags >> 11 & 0xF)
	h.AA = flags&(1<<10) != 0
	h.TC = flags&(1<<9) != 0
	h.RD = flags&(1<<8) != 0
	h.RA = flags&(1<<7) != 0
	h.AD = flags&(1<<5) != 0
	h.CD = flags&(1<<4) != 0
	h.RCode = RCode(flags & 0xF)
	qd = int(binary.BigEndian.Uint16(d.wire[4:]))
	an = int(binary.BigEndian.Uint16(d.wire[6:]))
	ns = int(binary.BigEndian.Uint16(d.wire[8:]))
	ar = int(binary.BigEndian.Uint16(d.wire[10:]))
	d.off = 12
	return
}

// internName canonicalizes the name assembled in d.scratch, reusing a
// previously decoded Name when the same spelling has been seen. The map
// lookup with a string([]byte) key compiles to a no-allocation access; only
// first sightings pay for the string copies.
func (d *Decoder) internName() Name {
	if n, ok := d.names[string(d.scratch)]; ok {
		return n
	}
	n := NewName(string(d.scratch))
	d.names[string(d.scratch)] = n
	return n
}

// readName reads a possibly-compressed name starting at the current offset.
func (d *Decoder) readName() (Name, error) {
	name, next, err := d.readNameAt(d.off)
	if err != nil {
		return "", err
	}
	d.off = next
	return name, nil
}

// readNameAt reads a name at offset off, following compression pointers,
// and returns the name plus the offset just past the name's bytes at the
// top level (pointers are not followed for the return offset).
func (d *Decoder) readNameAt(off int) (Name, int, error) {
	wire := d.wire
	d.scratch = d.scratch[:0]
	ret := -1 // offset to return to after first pointer
	hops := 0
	for {
		if off >= len(wire) {
			return "", 0, ErrShortMessage
		}
		b := wire[off]
		switch {
		case b == 0:
			if ret < 0 {
				ret = off + 1
			}
			if len(d.scratch) == 0 {
				return Root, ret, nil
			}
			return d.internName(), ret, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(wire) {
				return "", 0, ErrShortMessage
			}
			ptr := int(binary.BigEndian.Uint16(wire[off:]) & 0x3FFF)
			if ret < 0 {
				ret = off + 2
			}
			hops++
			if hops > 127 || ptr >= off {
				// A pointer must point strictly backwards; forward or
				// self-pointers can only form loops.
				return "", 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type %#x", b&0xC0)
		default:
			n := int(b)
			if off+1+n > len(wire) {
				return "", 0, ErrShortMessage
			}
			d.scratch = append(d.scratch, wire[off+1:off+1+n]...)
			d.scratch = append(d.scratch, '.')
			off += 1 + n
		}
	}
}

func (d *Decoder) readQuestion() (Question, error) {
	name, err := d.readName()
	if err != nil {
		return Question{}, err
	}
	t, err := d.readU16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.readU16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: name, Type: Type(t), Class: Class(c)}, nil
}

// box returns the interned interface value for k, constructing it with mk
// on first sighting. Boxing a concrete RData value into `any` heap-allocates
// in Go; interning makes repeat decodes of the same records free.
func (d *Decoder) box(k boxKey, mk func(boxKey) RData) RData {
	if v, ok := d.boxes[k]; ok {
		return v
	}
	v := mk(k)
	d.boxes[k] = v
	return v
}

// The constructors are named functions (not closures) so the hit path does
// not allocate a closure per record.
func mkA(k boxKey) RData     { return A{Addr: k.addr} }
func mkAAAA(k boxKey) RData  { return AAAA{Addr: k.addr} }
func mkNS(k boxKey) RData    { return NS{Host: k.name} }
func mkCNAME(k boxKey) RData { return CNAME{Target: k.name} }
func mkPTR(k boxKey) RData   { return PTR{Target: k.name} }
func mkMX(k boxKey) RData    { return MX{Preference: k.pref, Host: k.name} }

func (d *Decoder) boxOPT(o OPT) RData {
	if v, ok := d.opts[o]; ok {
		return v
	}
	v := RData(o)
	d.opts[o] = v
	return v
}

func (d *Decoder) readRR() (RR, error) {
	name, err := d.readName()
	if err != nil {
		return RR{}, err
	}
	t16, err := d.readU16()
	if err != nil {
		return RR{}, err
	}
	c16, err := d.readU16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.readU32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.readU16()
	if err != nil {
		return RR{}, err
	}
	if err := d.need(int(rdlen)); err != nil {
		return RR{}, err
	}
	rr := RR{Name: name, Type: Type(t16), Class: Class(c16), TTL: ttl}
	end := d.off + int(rdlen)
	if rr.Type == TypeOPT {
		// RFC 6891: class is the UDP size, TTL carries flags.
		rr.Data = d.boxOPT(OPT{
			UDPSize:       c16,
			ExtendedRCode: uint8(ttl >> 24),
			Version:       uint8(ttl >> 16),
			DO:            ttl&(1<<15) != 0,
		})
		d.off = end // option TLVs are skipped
		return rr, nil
	}
	if err := d.readRData(&rr, end); err != nil {
		return RR{}, err
	}
	if d.off != end {
		return RR{}, fmt.Errorf("dnswire: RDATA length mismatch for %s %s", name, rr.Type)
	}
	return rr, nil
}

func (d *Decoder) readRData(rr *RR, end int) error {
	switch rr.Type {
	case TypeA:
		if end-d.off != 4 {
			return fmt.Errorf("dnswire: A RDATA must be 4 bytes, got %d", end-d.off)
		}
		var b [4]byte
		copy(b[:], d.wire[d.off:end])
		d.off = end
		rr.Data = d.box(boxKey{t: TypeA, addr: netip.AddrFrom4(b)}, mkA)
	case TypeAAAA:
		if end-d.off != 16 {
			return fmt.Errorf("dnswire: AAAA RDATA must be 16 bytes, got %d", end-d.off)
		}
		var b [16]byte
		copy(b[:], d.wire[d.off:end])
		d.off = end
		rr.Data = d.box(boxKey{t: TypeAAAA, addr: netip.AddrFrom16(b)}, mkAAAA)
	case TypeNS:
		host, err := d.readName()
		if err != nil {
			return err
		}
		rr.Data = d.box(boxKey{t: TypeNS, name: host}, mkNS)
	case TypeCNAME:
		target, err := d.readName()
		if err != nil {
			return err
		}
		rr.Data = d.box(boxKey{t: TypeCNAME, name: target}, mkCNAME)
	case TypePTR:
		target, err := d.readName()
		if err != nil {
			return err
		}
		rr.Data = d.box(boxKey{t: TypePTR, name: target}, mkPTR)
	case TypeMX:
		pref, err := d.readU16()
		if err != nil {
			return err
		}
		host, err := d.readName()
		if err != nil {
			return err
		}
		rr.Data = d.box(boxKey{t: TypeMX, name: host, pref: pref}, mkMX)
	case TypeTXT:
		var txt TXT
		for d.off < end {
			n, err := d.readU8()
			if err != nil {
				return err
			}
			if d.off+int(n) > end {
				return ErrShortMessage
			}
			txt.Strings = append(txt.Strings, string(d.wire[d.off:d.off+int(n)]))
			d.off += int(n)
		}
		rr.Data = txt
	case TypeSOA:
		var s SOA
		var err error
		if s.MName, err = d.readName(); err != nil {
			return err
		}
		if s.RName, err = d.readName(); err != nil {
			return err
		}
		for _, p := range []*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum} {
			if *p, err = d.readU32(); err != nil {
				return err
			}
		}
		rr.Data = s
	case TypeDNSKEY:
		var k DNSKEY
		var err error
		if k.Flags, err = d.readU16(); err != nil {
			return err
		}
		if k.Protocol, err = d.readU8(); err != nil {
			return err
		}
		if k.Algorithm, err = d.readU8(); err != nil {
			return err
		}
		k.PublicKey = append([]byte(nil), d.wire[d.off:end]...)
		d.off = end
		rr.Data = k
	case TypeDS:
		var ds DS
		var err error
		if ds.KeyTag, err = d.readU16(); err != nil {
			return err
		}
		if ds.Algorithm, err = d.readU8(); err != nil {
			return err
		}
		if ds.DigestType, err = d.readU8(); err != nil {
			return err
		}
		ds.Digest = append([]byte(nil), d.wire[d.off:end]...)
		d.off = end
		rr.Data = ds
	case TypeRRSIG:
		var s RRSIG
		tc, err := d.readU16()
		if err != nil {
			return err
		}
		s.TypeCovered = Type(tc)
		if s.Algorithm, err = d.readU8(); err != nil {
			return err
		}
		if s.Labels, err = d.readU8(); err != nil {
			return err
		}
		for _, p := range []*uint32{&s.OriginalTTL, &s.Expiration, &s.Inception} {
			if *p, err = d.readU32(); err != nil {
				return err
			}
		}
		if s.KeyTag, err = d.readU16(); err != nil {
			return err
		}
		if s.SignerName, err = d.readName(); err != nil {
			return err
		}
		if d.off > end {
			return ErrShortMessage
		}
		s.Signature = append([]byte(nil), d.wire[d.off:end]...)
		d.off = end
		rr.Data = s
	default:
		rr.Raw = append([]byte(nil), d.wire[d.off:end]...)
		d.off = end
	}
	return nil
}
