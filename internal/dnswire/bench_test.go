package dnswire

import "testing"

func benchMessage() *Message {
	resp := NewQuery(7, NewName("www.example.org"), TypeA).Reply()
	resp.Header.AA = true
	resp.AddAnswer(
		NewA("www.example.org", 300, "192.0.2.80"),
		NewA("www.example.org", 300, "192.0.2.81"),
	)
	resp.AddAuthority(
		NewNS("example.org", 172800, "ns1.example.org"),
		NewNS("example.org", 172800, "ns2.example.org"),
	)
	resp.AddAdditional(
		NewA("ns1.example.org", 172800, "192.0.2.1"),
		NewA("ns2.example.org", 172800, "192.0.2.2"),
	)
	return resp
}

// BenchmarkEncode measures serializing a typical referral-sized response.
func BenchmarkEncode(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures parsing the same response.
func BenchmarkDecode(b *testing.B) {
	wire, err := Encode(benchMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendEncode measures the zero-allocation encode path: appending
// into a reused buffer of sufficient capacity.
func BenchmarkAppendEncode(b *testing.B) {
	m := benchMessage()
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := AppendEncode(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// BenchmarkDecoderReuse measures the steady-state decode path: one Decoder
// with warm intern tables filling a reused Message.
func BenchmarkDecoderReuse(b *testing.B) {
	wire, err := Encode(benchMessage())
	if err != nil {
		b.Fatal(err)
	}
	d := NewDecoder()
	var m Message
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.Decode(wire, &m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNameCanonicalize measures the hot Name constructor.
func BenchmarkNameCanonicalize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewName("WWW.Example.ORG")
	}
}
