package dnswire

import "testing"

// TestRDataTypesSealed: every RData implementation reports the type code
// its constructor assigns — the sealed-interface invariant encode relies on.
func TestRDataTypesSealed(t *testing.T) {
	rrs := []RR{
		NewA("a.org", 1, "192.0.2.1"),
		NewAAAA("a.org", 1, "2001:db8::1"),
		NewNS("a.org", 1, "ns.a.org"),
		NewCNAME("a.org", 1, "b.org"),
		NewMX("a.org", 1, 5, "mx.a.org"),
		NewTXT("a.org", 1, "x"),
		NewSOA("a.org", 1, "ns.a.org", "h.a.org", 1, 2, 3, 4, 5),
		NewDNSKEY("a.org", 1, 257, []byte{1}),
		{Name: NewName("a.org"), Type: TypeDS, Data: DS{KeyTag: 1, Algorithm: 8, DigestType: 2, Digest: []byte{1}}},
		{Name: NewName("a.org"), Type: TypeRRSIG, Data: RRSIG{TypeCovered: TypeA, SignerName: NewName("a.org")}},
		{Name: NewName("1.2.0.192.in-addr.arpa"), Type: TypePTR, Data: PTR{Target: NewName("a.org")}},
		{Name: Root, Type: TypeOPT, Data: OPT{UDPSize: 4096}},
	}
	for _, rr := range rrs {
		if rr.Data.rType() != rr.Type {
			t.Errorf("%T.rType() = %s, record type %s", rr.Data, rr.Data.rType(), rr.Type)
		}
		if rr.Data.String() == "" {
			t.Errorf("%T has empty presentation form", rr.Data)
		}
	}
}

func TestEnumStringsFull(t *testing.T) {
	cases := map[string]string{
		OpcodeIQuery.String():     "IQUERY",
		OpcodeStatus.String():     "STATUS",
		OpcodeNotify.String():     "NOTIFY",
		OpcodeUpdate.String():     "UPDATE",
		Opcode(9).String():        "OPCODE9",
		RCodeNoError.String():     "NOERROR",
		RCodeFormErr.String():     "FORMERR",
		RCodeServFail.String():    "SERVFAIL",
		RCodeNotImp.String():      "NOTIMP",
		RCodeRefused.String():     "REFUSED",
		ClassCH.String():          "CH",
		ClassANY.String():         "ANY",
		SectionAuthority.String(): "authority",
		Section(9).String():       "section9",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestNewIterativeQuery(t *testing.T) {
	q := NewIterativeQuery(9, NewName("x.org"), TypeNS)
	if q.Header.RD {
		t.Errorf("iterative queries must not set RD")
	}
	if q.Q().Type != TypeNS {
		t.Errorf("question = %+v", q.Q())
	}
}

func TestSectionAccessor(t *testing.T) {
	m := &Message{}
	m.AddAnswer(NewA("a.org", 1, "192.0.2.1"))
	m.AddAuthority(NewNS("a.org", 1, "ns.a.org"))
	m.AddAdditional(NewA("ns.a.org", 1, "192.0.2.2"))
	if len(m.Section(SectionAnswer)) != 1 ||
		len(m.Section(SectionAuthority)) != 1 ||
		len(m.Section(SectionAdditional)) != 1 {
		t.Errorf("Section accessor broken")
	}
}

func TestEqualUnknownTypes(t *testing.T) {
	a := RR{Name: NewName("x.org"), Type: Type(999), Class: ClassIN, Raw: []byte{1, 2}}
	b := RR{Name: NewName("x.org"), Type: Type(999), Class: ClassIN, Raw: []byte{1, 2}}
	c := RR{Name: NewName("x.org"), Type: Type(999), Class: ClassIN, Raw: []byte{3}}
	if !a.Equal(b) || a.Equal(c) {
		t.Errorf("raw-RDATA equality broken")
	}
	d := RR{Name: NewName("y.org"), Type: Type(999), Class: ClassIN, Raw: []byte{1, 2}}
	if a.Equal(d) {
		t.Errorf("different owners must not be equal")
	}
}

func TestEncodeRejectsInvalidRecords(t *testing.T) {
	// A record carrying a v6 address.
	bad := RR{Name: NewName("x.org"), Type: TypeA, Class: ClassIN,
		Data: A{Addr: NewAAAA("x.org", 1, "2001:db8::1").Data.(AAAA).Addr}}
	m := &Message{}
	m.AddAnswer(bad)
	if _, err := Encode(m); err == nil {
		t.Errorf("A with v6 address must fail to encode")
	}
	// Oversize TXT string.
	long := make([]byte, 300)
	m2 := &Message{}
	m2.AddAnswer(RR{Name: NewName("x.org"), Type: TypeTXT, Class: ClassIN,
		Data: TXT{Strings: []string{string(long)}}})
	if _, err := Encode(m2); err == nil {
		t.Errorf("oversize TXT string must fail")
	}
	// Invalid owner name.
	m3 := &Message{}
	m3.AddAnswer(RR{Name: Name("a..b."), Type: TypeA, Class: ClassIN,
		Data: A{Addr: NewA("x.org", 1, "192.0.2.1").Data.(A).Addr}})
	if _, err := Encode(m3); err == nil {
		t.Errorf("invalid owner must fail")
	}
}

func TestDecodeReservedLabelType(t *testing.T) {
	wire := make([]byte, 12, 16)
	wire[5] = 1 // QDCOUNT
	wire = append(wire, 0x80, 0x01, 'a', 0, 0, 1, 0, 1)
	if _, err := Decode(wire); err == nil {
		t.Errorf("reserved label type 0x80 must fail")
	}
}
