package dnswire

import (
	"fmt"
	"net/netip"
	"strings"
)

// RR is a single resource record. RData is nil for records whose type this
// module does not model; such records round-trip through the codec as opaque
// bytes held in Raw.
type RR struct {
	Name  Name
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
	// Raw holds the undecoded RDATA of unknown types.
	Raw []byte
}

// RData is the typed representation of an RR's RDATA.
type RData interface {
	// rType returns the RR type this data belongs to.
	rType() Type
	// String returns the presentation form of the RDATA.
	String() string
}

// Equal reports whether two records carry the same name, type, class and
// RDATA. TTL is deliberately excluded: RFC 2181 §5 defines RRset membership
// ignoring TTL, which is exactly the distinction this module studies.
func (r RR) Equal(o RR) bool {
	if r.Name != o.Name || r.Type != o.Type || r.Class != o.Class {
		return false
	}
	return r.dataString() == o.dataString()
}

func (r RR) dataString() string {
	if r.Data != nil {
		return r.Data.String()
	}
	return fmt.Sprintf("%x", r.Raw)
}

// String renders the record in zone-file presentation form.
func (r RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s", r.Name, r.TTL, r.Class, r.Type, r.dataString())
}

// A is an IPv4 address record (RFC 1035 §3.4.1).
type A struct{ Addr netip.Addr }

func (A) rType() Type      { return TypeA }
func (a A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record (RFC 3596).
type AAAA struct{ Addr netip.Addr }

func (AAAA) rType() Type      { return TypeAAAA }
func (a AAAA) String() string { return a.Addr.String() }

// NS names an authoritative server for the owner (RFC 1035 §3.3.11).
type NS struct{ Host Name }

func (NS) rType() Type      { return TypeNS }
func (n NS) String() string { return n.Host.String() }

// CNAME is a canonical-name alias (RFC 1035 §3.3.1).
type CNAME struct{ Target Name }

func (CNAME) rType() Type      { return TypeCNAME }
func (c CNAME) String() string { return c.Target.String() }

// PTR is a pointer record (RFC 1035 §3.3.12).
type PTR struct{ Target Name }

func (PTR) rType() Type      { return TypePTR }
func (p PTR) String() string { return p.Target.String() }

// MX is a mail-exchange record (RFC 1035 §3.3.9).
type MX struct {
	Preference uint16
	Host       Name
}

func (MX) rType() Type { return TypeMX }
func (m MX) String() string {
	return fmt.Sprintf("%d %s", m.Preference, m.Host)
}

// TXT is descriptive text (RFC 1035 §3.3.14). Each element is one
// character-string of at most 255 bytes.
type TXT struct{ Strings []string }

func (TXT) rType() Type { return TypeTXT }
func (t TXT) String() string {
	quoted := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

// SOA marks the start of a zone of authority (RFC 1035 §3.3.13). Minimum is
// the negative-caching TTL per RFC 2308.
type SOA struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (SOA) rType() Type { return TypeSOA }
func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// DNSKEY is a DNSSEC public key (RFC 4034 §2). The key material is opaque
// here; what matters to the paper (§5.1) is its TTL.
type DNSKEY struct {
	Flags     uint16
	Protocol  uint8
	Algorithm uint8
	PublicKey []byte
}

func (DNSKEY) rType() Type { return TypeDNSKEY }
func (k DNSKEY) String() string {
	return fmt.Sprintf("%d %d %d %x", k.Flags, k.Protocol, k.Algorithm, k.PublicKey)
}

// DS is a delegation-signer digest (RFC 4034 §5).
type DS struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

func (DS) rType() Type { return TypeDS }
func (d DS) String() string {
	return fmt.Sprintf("%d %d %d %x", d.KeyTag, d.Algorithm, d.DigestType, d.Digest)
}

// RRSIG covers an RRset with a signature (RFC 4034 §3). DNSSEC requires the
// covered RRset's TTL to match the RRSIG OriginalTTL, which is why validating
// resolvers must be child-centric (§2 of the paper).
type RRSIG struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OriginalTTL uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  Name
	Signature   []byte
}

func (RRSIG) rType() Type { return TypeRRSIG }
func (s RRSIG) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %x",
		s.TypeCovered, s.Algorithm, s.Labels, s.OriginalTTL,
		s.Expiration, s.Inception, s.KeyTag, s.SignerName, s.Signature)
}

// OPT is the EDNS0 pseudo-record (RFC 6891). Its "TTL" field carries the
// extended RCode and flags; UDPSize rides in the class field.
type OPT struct {
	UDPSize       uint16
	ExtendedRCode uint8
	Version       uint8
	DO            bool
}

func (OPT) rType() Type { return TypeOPT }
func (o OPT) String() string {
	return fmt.Sprintf("udp=%d ercode=%d version=%d do=%v", o.UDPSize, o.ExtendedRCode, o.Version, o.DO)
}

// NewA builds an A record. It panics if addr is not IPv4; use it for
// literals and tests.
func NewA(name string, ttl uint32, addr string) RR {
	a := netip.MustParseAddr(addr)
	if !a.Is4() {
		panic("dnswire: NewA requires an IPv4 address")
	}
	return RR{Name: MustName(name), Type: TypeA, Class: ClassIN, TTL: ttl, Data: A{Addr: a}}
}

// NewAAAA builds an AAAA record from an IPv6 literal.
func NewAAAA(name string, ttl uint32, addr string) RR {
	a := netip.MustParseAddr(addr)
	if !a.Is6() || a.Is4In6() {
		panic("dnswire: NewAAAA requires an IPv6 address")
	}
	return RR{Name: MustName(name), Type: TypeAAAA, Class: ClassIN, TTL: ttl, Data: AAAA{Addr: a}}
}

// NewNS builds an NS record.
func NewNS(name string, ttl uint32, host string) RR {
	return RR{Name: MustName(name), Type: TypeNS, Class: ClassIN, TTL: ttl, Data: NS{Host: MustName(host)}}
}

// NewCNAME builds a CNAME record.
func NewCNAME(name string, ttl uint32, target string) RR {
	return RR{Name: MustName(name), Type: TypeCNAME, Class: ClassIN, TTL: ttl, Data: CNAME{Target: MustName(target)}}
}

// NewMX builds an MX record.
func NewMX(name string, ttl uint32, pref uint16, host string) RR {
	return RR{Name: MustName(name), Type: TypeMX, Class: ClassIN, TTL: ttl, Data: MX{Preference: pref, Host: MustName(host)}}
}

// NewTXT builds a TXT record.
func NewTXT(name string, ttl uint32, strs ...string) RR {
	return RR{Name: MustName(name), Type: TypeTXT, Class: ClassIN, TTL: ttl, Data: TXT{Strings: strs}}
}

// NewSOA builds an SOA record.
func NewSOA(name string, ttl uint32, mname, rname string, serial, refresh, retry, expire, minimum uint32) RR {
	return RR{Name: MustName(name), Type: TypeSOA, Class: ClassIN, TTL: ttl, Data: SOA{
		MName: MustName(mname), RName: MustName(rname),
		Serial: serial, Refresh: refresh, Retry: retry, Expire: expire, Minimum: minimum,
	}}
}

// NewDNSKEY builds a DNSKEY record with opaque key material.
func NewDNSKEY(name string, ttl uint32, flags uint16, key []byte) RR {
	return RR{Name: MustName(name), Type: TypeDNSKEY, Class: ClassIN, TTL: ttl, Data: DNSKEY{
		Flags: flags, Protocol: 3, Algorithm: 8, PublicKey: key,
	}}
}
