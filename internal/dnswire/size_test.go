package dnswire

import "testing"

func TestNameWireSize(t *testing.T) {
	cases := []struct {
		name Name
		want int
	}{
		{Root, 1},
		{Name(""), 1},
		{NewName("org"), 5},              // 3org0
		{NewName("example.org"), 13},     // 7example3org0
		{NewName("www.example.org"), 17}, // 3www7example3org0
	}
	for _, c := range cases {
		if got := c.name.WireSize(); got != c.want {
			t.Errorf("WireSize(%q) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestRRWireSizeMatchesEncoder cross-checks WireSize against the real
// encoder on messages built so that no suffix repeats — compression never
// fires, so the encoded RR length must equal the accounted size exactly.
func TestRRWireSizeMatchesEncoder(t *testing.T) {
	const header = 12
	rrs := []RR{
		NewA("a.xa", 300, "192.0.2.1"),
		NewAAAA("b.xb", 300, "2001:db8::1"),
		NewTXT("c.xc", 60, "hello", "world"),
		{Name: NewName("d.xd"), Type: Type(0xFF00), Class: ClassIN, TTL: 5, Raw: []byte{1, 2, 3}},
	}
	for _, rr := range rrs {
		m := &Message{Header: Header{QR: true}}
		m.AddAnswer(rr)
		wire, err := Encode(m)
		if err != nil {
			t.Fatalf("encode %s: %v", rr.Name, err)
		}
		if got, want := rr.WireSize(), len(wire)-header; got != want {
			t.Errorf("WireSize(%s %s) = %d, encoder emitted %d", rr.Name, rr.Type, got, want)
		}
	}
}

// TestRRWireSizeNameRData pins the arithmetic for the name-bearing RDATA
// types, where compression in a real message would hide the true size.
func TestRRWireSizeNameRData(t *testing.T) {
	ns := NewNS("example.org", 3600, "ns1.example.org")
	// owner 13 + header 10 + rdata 17
	if got := ns.WireSize(); got != 40 {
		t.Errorf("NS WireSize = %d, want 40", got)
	}
	soa := NewSOA("example.org", 3600, "ns1.example.org", "admin.example.org", 1, 2, 3, 4, 5)
	// owner 13 + header 10 + mname 17 + rname 19 + 20
	if got := soa.WireSize(); got != 79 {
		t.Errorf("SOA WireSize = %d, want 79", got)
	}
	mx := NewMX("example.org", 3600, 10, "mail.example.org")
	// owner 13 + header 10 + pref 2 + host 18
	if got := mx.WireSize(); got != 43 {
		t.Errorf("MX WireSize = %d, want 43", got)
	}
}
