// Package dnswire implements the DNS wire format defined in RFC 1034 and
// RFC 1035, with the extensions needed by this reproduction: EDNS0 (RFC 6891)
// and the DNSSEC record types (RFC 4034) that carry TTL-relevant semantics.
//
// The package is self-contained (standard library only) and is the substrate
// for every other package in this module: authoritative servers, recursive
// resolvers, crawlers and the measurement harness all exchange []byte
// messages encoded and decoded here, exactly as a real deployment would.
package dnswire

import "fmt"

// Type is a DNS RR type code (RFC 1035 §3.2.2 and successors).
type Type uint16

// RR type codes used by this module.
const (
	TypeNone   Type = 0
	TypeA      Type = 1
	TypeNS     Type = 2
	TypeCNAME  Type = 5
	TypeSOA    Type = 6
	TypePTR    Type = 12
	TypeMX     Type = 15
	TypeTXT    Type = 16
	TypeAAAA   Type = 28
	TypeOPT    Type = 41
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeNSEC   Type = 47
	TypeDNSKEY Type = 48
	TypeANY    Type = 255
)

var typeNames = map[Type]string{
	TypeNone:   "NONE",
	TypeA:      "A",
	TypeNS:     "NS",
	TypeCNAME:  "CNAME",
	TypeSOA:    "SOA",
	TypePTR:    "PTR",
	TypeMX:     "MX",
	TypeTXT:    "TXT",
	TypeAAAA:   "AAAA",
	TypeOPT:    "OPT",
	TypeDS:     "DS",
	TypeRRSIG:  "RRSIG",
	TypeNSEC:   "NSEC",
	TypeDNSKEY: "DNSKEY",
	TypeANY:    "ANY",
}

var typeValues = func() map[string]Type {
	m := make(map[string]Type, len(typeNames))
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType converts a textual RR type ("A", "NS", ...) to its code.
func ParseType(s string) (Type, error) {
	if t, ok := typeValues[s]; ok {
		return t, nil
	}
	return TypeNone, fmt.Errorf("dnswire: unknown RR type %q", s)
}

// Class is a DNS class code. Only IN is used in practice.
type Class uint16

const (
	ClassIN  Class = 1
	ClassCH  Class = 3
	ClassANY Class = 255
)

func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// Opcode is the 4-bit query kind in the message header.
type Opcode uint8

const (
	OpcodeQuery  Opcode = 0
	OpcodeIQuery Opcode = 1
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeIQuery:
		return "IQUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// RCode is the 4-bit response code (extended RCode bits from EDNS0 are
// folded in by the decoder when an OPT record is present).
type RCode uint16

const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// Section identifies which part of a message a record appeared in. The paper
// (§3.1) shows that resolvers weigh TTLs differently depending on whether a
// record arrived as an authoritative answer, as authority (delegation NS), or
// as additional (glue) data, so the section is first-class in this module.
type Section uint8

const (
	SectionAnswer Section = iota
	SectionAuthority
	SectionAdditional
)

func (s Section) String() string {
	switch s {
	case SectionAnswer:
		return "answer"
	case SectionAuthority:
		return "authority"
	case SectionAdditional:
		return "additional"
	}
	return fmt.Sprintf("section%d", uint8(s))
}

// MaxUDPSize is the classic 512-byte DNS/UDP payload limit (RFC 1035 §2.3.4).
const MaxUDPSize = 512

// MaxEDNSSize is the EDNS0 payload size this module advertises.
const MaxEDNSSize = 4096

// MaxTTL is the largest TTL value a conforming implementation may treat as
// valid: RFC 2181 §8 limits TTLs to 2^31-1; larger values must be treated
// as zero.
const MaxTTL = 1<<31 - 1
