package dnswire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	wire, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestRoundTripQuery(t *testing.T) {
	m := NewQuery(0x1234, NewName("www.example.org"), TypeA)
	got := roundTrip(t, m)
	if got.Header.ID != 0x1234 || !got.Header.RD || got.Header.QR {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if q := got.Q(); q.Name != NewName("www.example.org") || q.Type != TypeA || q.Class != ClassIN {
		t.Errorf("question mismatch: %+v", q)
	}
}

func TestRoundTripAllRRTypes(t *testing.T) {
	m := NewQuery(7, NewName("example.org"), TypeANY)
	resp := m.Reply()
	resp.Header.AA = true
	resp.Header.RA = true
	resp.AddAnswer(
		NewA("example.org", 3600, "192.0.2.1"),
		NewAAAA("example.org", 7200, "2001:db8::1"),
		NewNS("example.org", 172800, "ns1.example.org"),
		NewCNAME("www.example.org", 300, "example.org"),
		NewMX("example.org", 900, 10, "mail.example.org"),
		NewTXT("example.org", 60, "v=spf1 -all", "second string"),
		NewSOA("example.org", 86400, "ns1.example.org", "hostmaster.example.org", 2019021301, 7200, 3600, 1209600, 3600),
		NewDNSKEY("example.org", 3600, 257, []byte{1, 2, 3, 4}),
		RR{Name: NewName("example.org"), Type: TypeDS, Class: ClassIN, TTL: 3600,
			Data: DS{KeyTag: 12345, Algorithm: 8, DigestType: 2, Digest: []byte{0xde, 0xad}}},
		RR{Name: NewName("example.org"), Type: TypeRRSIG, Class: ClassIN, TTL: 3600,
			Data: RRSIG{TypeCovered: TypeA, Algorithm: 8, Labels: 2, OriginalTTL: 3600,
				Expiration: 1560000000, Inception: 1550000000, KeyTag: 12345,
				SignerName: NewName("example.org"), Signature: []byte{9, 9, 9}}},
		RR{Name: NewName("1.2.0.192.in-addr.arpa"), Type: TypePTR, Class: ClassIN, TTL: 60,
			Data: PTR{Target: NewName("example.org")}},
	)
	got := roundTrip(t, resp)
	if len(got.Answer) != len(resp.Answer) {
		t.Fatalf("answer count = %d, want %d", len(got.Answer), len(resp.Answer))
	}
	for i := range resp.Answer {
		w, g := resp.Answer[i], got.Answer[i]
		if !g.Equal(w) || g.TTL != w.TTL {
			t.Errorf("record %d: got %s, want %s", i, g, w)
		}
	}
	if !got.Header.AA {
		t.Errorf("AA flag lost in round trip")
	}
}

func TestRoundTripUnknownType(t *testing.T) {
	m := &Message{Header: Header{ID: 1, QR: true}}
	m.AddAnswer(RR{Name: NewName("x.org"), Type: Type(999), Class: ClassIN, TTL: 5, Raw: []byte{1, 2, 3}})
	got := roundTrip(t, m)
	if got.Answer[0].Type != Type(999) || !bytes.Equal(got.Answer[0].Raw, []byte{1, 2, 3}) {
		t.Errorf("unknown type did not round trip: %+v", got.Answer[0])
	}
}

func TestNameCompressionApplied(t *testing.T) {
	m := &Message{Header: Header{QR: true}}
	m.Question = []Question{{Name: NewName("a.very.long.example.org"), Type: TypeNS, Class: ClassIN}}
	for i := 0; i < 10; i++ {
		m.AddAnswer(NewNS("a.very.long.example.org", 3600, "ns1.a.very.long.example.org"))
	}
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// With compression each repeated owner name costs 2 bytes, so the
	// message must be far smaller than the uncompressed form.
	uncompressed := 12 + 25*2 + 10*(25+10+2+27)
	if len(wire) >= uncompressed/2 {
		t.Errorf("compression ineffective: %d bytes", len(wire))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Answer[9].Name != NewName("a.very.long.example.org") {
		t.Errorf("compressed name decode: %q", got.Answer[9].Name)
	}
	if got.Answer[9].Data.(NS).Host != NewName("ns1.a.very.long.example.org") {
		t.Errorf("compressed NS host decode: %q", got.Answer[9].Data.(NS).Host)
	}
}

func TestDecodeRejectsPointerLoop(t *testing.T) {
	// Header + a name that points to itself at offset 12.
	wire := make([]byte, 12, 16)
	wire[5] = 1 // QDCOUNT=1
	wire = append(wire, 0xC0, 12, 0, 1, 0, 1)
	if _, err := Decode(wire); err == nil {
		t.Fatal("self-pointing name must fail to decode")
	}
}

func TestDecodeRejectsShortMessages(t *testing.T) {
	m := NewQuery(3, NewName("example.org"), TypeA)
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(wire); i++ {
		if _, err := Decode(wire[:i]); err == nil {
			t.Errorf("truncated message of %d bytes decoded without error", i)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	m := NewQuery(3, NewName("example.org"), TypeA)
	wire, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(wire, 0xFF)); err != ErrTrailingGarbage {
		t.Errorf("got %v, want ErrTrailingGarbage", err)
	}
}

func TestEncodeWithLimitTruncates(t *testing.T) {
	m := NewQuery(9, NewName("example.org"), TypeTXT)
	resp := m.Reply()
	for i := 0; i < 50; i++ {
		resp.AddAnswer(NewTXT("example.org", 60, string(bytes.Repeat([]byte{'x'}, 200))))
	}
	wire, err := EncodeWithLimit(resp, MaxUDPSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > MaxUDPSize {
		t.Fatalf("truncated message is %d bytes", len(wire))
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.TC {
		t.Errorf("TC flag not set on truncated message")
	}
	if len(got.Answer) != 0 {
		t.Errorf("truncated message still has %d answers", len(got.Answer))
	}
	// Under the limit: untouched.
	ok, err := EncodeWithLimit(NewQuery(1, NewName("a.b"), TypeA), MaxUDPSize)
	if err != nil {
		t.Fatal(err)
	}
	if m2, _ := Decode(ok); m2.Header.TC {
		t.Errorf("small message should not be truncated")
	}
}

func TestOPTRoundTrip(t *testing.T) {
	m := NewQuery(11, NewName("example.org"), TypeA)
	m.AddAdditional(RR{Name: Root, Type: TypeOPT, Data: OPT{UDPSize: 4096, DO: true}})
	got := roundTrip(t, m)
	if len(got.Additional) != 1 {
		t.Fatalf("additional count = %d", len(got.Additional))
	}
	opt, ok := got.Additional[0].Data.(OPT)
	if !ok {
		t.Fatalf("OPT data lost: %+v", got.Additional[0])
	}
	if opt.UDPSize != 4096 || !opt.DO {
		t.Errorf("OPT mismatch: %+v", opt)
	}
}

func TestExtendedRCodeFolded(t *testing.T) {
	m := &Message{Header: Header{ID: 1, QR: true, RCode: RCode(6)}} // low 4 bits
	m.AddAdditional(RR{Name: Root, Type: TypeOPT, Data: OPT{UDPSize: 4096, ExtendedRCode: 1}})
	got := roundTrip(t, m)
	if got.Header.RCode != RCode(1<<4|6) {
		t.Errorf("extended rcode = %d, want %d", got.Header.RCode, 1<<4|6)
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	for i := 0; i < 1<<7; i++ {
		h := Header{
			ID: uint16(i * 31), QR: i&1 != 0, AA: i&2 != 0, TC: i&4 != 0,
			RD: i&8 != 0, RA: i&16 != 0, AD: i&32 != 0, CD: i&64 != 0,
			Opcode: Opcode(i % 3), RCode: RCode(i % 6),
		}
		m := &Message{Header: h}
		got := roundTrip(t, m)
		if got.Header != h {
			t.Fatalf("header round trip: got %+v, want %+v", got.Header, h)
		}
	}
}

// randomName generates a valid random name for property tests.
func randomName(r *rand.Rand) Name {
	nLabels := 1 + r.Intn(4)
	labels := make([]byte, 0, 32)
	for i := 0; i < nLabels; i++ {
		if i > 0 {
			labels = append(labels, '.')
		}
		n := 1 + r.Intn(12)
		for j := 0; j < n; j++ {
			labels = append(labels, byte('a'+r.Intn(26)))
		}
	}
	return NewName(string(labels))
}

func randomRR(r *rand.Rand) RR {
	name := randomName(r)
	ttl := uint32(r.Intn(172801))
	switch r.Intn(7) {
	case 0:
		return RR{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl,
			Data: A{Addr: netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})}}
	case 1:
		var b [16]byte
		r.Read(b[:])
		b[0] = 0x20 // avoid the 4-in-6 mapped range
		return RR{Name: name, Type: TypeAAAA, Class: ClassIN, TTL: ttl, Data: AAAA{Addr: netip.AddrFrom16(b)}}
	case 2:
		return RR{Name: name, Type: TypeNS, Class: ClassIN, TTL: ttl, Data: NS{Host: randomName(r)}}
	case 3:
		return RR{Name: name, Type: TypeCNAME, Class: ClassIN, TTL: ttl, Data: CNAME{Target: randomName(r)}}
	case 4:
		return RR{Name: name, Type: TypeMX, Class: ClassIN, TTL: ttl,
			Data: MX{Preference: uint16(r.Intn(100)), Host: randomName(r)}}
	case 5:
		return RR{Name: name, Type: TypeTXT, Class: ClassIN, TTL: ttl, Data: TXT{Strings: []string{"s"}}}
	default:
		return RR{Name: name, Type: TypeSOA, Class: ClassIN, TTL: ttl, Data: SOA{
			MName: randomName(r), RName: randomName(r),
			Serial: r.Uint32(), Refresh: 7200, Retry: 3600, Expire: 86400, Minimum: uint32(r.Intn(3600)),
		}}
	}
}

// TestQuickRoundTrip is the codec's core property: Decode(Encode(m)) == m for
// arbitrary well-formed messages.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{Header: Header{ID: uint16(r.Intn(1 << 16)), QR: true, AA: r.Intn(2) == 0, RA: true}}
		m.Question = []Question{{Name: randomName(r), Type: TypeA, Class: ClassIN}}
		for i := 0; i < r.Intn(8); i++ {
			m.AddAnswer(randomRR(r))
		}
		for i := 0; i < r.Intn(4); i++ {
			m.AddAuthority(randomRR(r))
		}
		for i := 0; i < r.Intn(4); i++ {
			m.AddAdditional(randomRR(r))
		}
		wire, err := Encode(m)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics fuzzes the decoder with random bytes: it must
// return an error or a message, never panic or loop.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data) // must terminate without panicking
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeMutatedWire flips bytes in valid messages; the decoder must
// stay robust.
func TestQuickDecodeMutatedWire(t *testing.T) {
	base := NewQuery(77, NewName("www.example.org"), TypeAAAA)
	resp := base.Reply()
	resp.AddAnswer(NewAAAA("www.example.org", 60, "2001:db8::7"))
	resp.AddAuthority(NewNS("example.org", 3600, "ns1.example.org"))
	resp.AddAdditional(NewA("ns1.example.org", 7200, "192.0.2.53"))
	wire, err := Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos uint16, val byte) bool {
		mut := append([]byte(nil), wire...)
		mut[int(pos)%len(mut)] = val
		_, _ = Decode(mut)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMessageHelpers(t *testing.T) {
	m := NewQuery(5, NewName("x.org"), TypeNS)
	resp := m.Reply()
	if resp.Header.ID != 5 || !resp.Header.QR || !resp.Header.RD {
		t.Errorf("Reply header: %+v", resp.Header)
	}
	resp.AddAuthority(NewNS("x.org", 3600, "ns1.x.org"))
	if !resp.IsReferral() {
		t.Errorf("NS-only authority should be a referral")
	}
	resp.AddAnswer(NewNS("x.org", 3600, "ns1.x.org"))
	if resp.IsReferral() {
		t.Errorf("message with answers is not a referral")
	}
	if got := resp.AnswersFor(NewName("x.org"), TypeNS); len(got) != 1 {
		t.Errorf("AnswersFor = %v", got)
	}
	if got := resp.AnswersFor(NewName("x.org"), TypeA); len(got) != 0 {
		t.Errorf("AnswersFor wrong type = %v", got)
	}
	if (&Message{}).Q() != (Question{}) {
		t.Errorf("empty Q() should be zero")
	}
	if len(resp.Section(SectionAuthority)) != 1 {
		t.Errorf("Section(authority) wrong")
	}
}

func TestStringRendering(t *testing.T) {
	m := NewQuery(5, NewName("x.org"), TypeNS)
	resp := m.Reply()
	resp.Header.AA = true
	resp.AddAnswer(NewNS("x.org", 3600, "ns1.x.org"))
	s := resp.String()
	for _, want := range []string{"NOERROR", "aa", "ANSWER: 1", "ns1.x.org."} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTypeAndClassStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeDNSKEY.String() != "DNSKEY" {
		t.Errorf("type names wrong")
	}
	if Type(1234).String() != "TYPE1234" {
		t.Errorf("unknown type name: %s", Type(1234))
	}
	if ClassIN.String() != "IN" || Class(9).String() != "CLASS9" {
		t.Errorf("class names wrong")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Errorf("rcode names wrong")
	}
	if OpcodeQuery.String() != "QUERY" {
		t.Errorf("opcode names wrong")
	}
	if SectionAnswer.String() != "answer" || SectionAdditional.String() != "additional" {
		t.Errorf("section names wrong")
	}
	tp, err := ParseType("AAAA")
	if err != nil || tp != TypeAAAA {
		t.Errorf("ParseType(AAAA) = %v, %v", tp, err)
	}
	if _, err := ParseType("NOPE"); err == nil {
		t.Errorf("ParseType should reject unknown names")
	}
}

func TestRREqualIgnoresTTL(t *testing.T) {
	a := NewA("x.org", 100, "192.0.2.1")
	b := NewA("x.org", 999, "192.0.2.1")
	if !a.Equal(b) {
		t.Errorf("Equal must ignore TTL")
	}
	c := NewA("x.org", 100, "192.0.2.2")
	if a.Equal(c) {
		t.Errorf("different RDATA must not be Equal")
	}
}
