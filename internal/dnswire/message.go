package dnswire

import (
	"fmt"
	"strings"
	"sync"
)

// Header is the fixed 12-byte DNS message header (RFC 1035 §4.1.1), with
// the flag bits broken out.
type Header struct {
	ID     uint16
	QR     bool // response
	Opcode Opcode
	AA     bool // authoritative answer
	TC     bool // truncated
	RD     bool // recursion desired
	RA     bool // recursion available
	AD     bool // authentic data (RFC 4035)
	CD     bool // checking disabled (RFC 4035)
	RCode  RCode
}

// Question is the query tuple (RFC 1035 §4.1.2).
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard recursive query for (name, type).
func NewQuery(id uint16, name Name, t Type) *Message {
	return &Message{
		Header:   Header{ID: id, RD: true, Opcode: OpcodeQuery},
		Question: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}

// NewIterativeQuery builds a non-recursive query, as a recursive resolver
// sends to authoritative servers.
func NewIterativeQuery(id uint16, name Name, t Type) *Message {
	return &Message{
		Header:   Header{ID: id, Opcode: OpcodeQuery},
		Question: []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}

// Reply builds a response skeleton for m: same ID and question, QR set, and
// RD copied from the query per RFC 1035.
func (m *Message) Reply() *Message {
	return &Message{
		Header: Header{
			ID:     m.Header.ID,
			QR:     true,
			Opcode: m.Header.Opcode,
			RD:     m.Header.RD,
		},
		Question: append([]Question(nil), m.Question...),
	}
}

// Reset clears m for reuse, keeping the section slices' capacity so a
// pooled Message can absorb a Decoder.Decode without reallocating.
func (m *Message) Reset() {
	m.Header = Header{}
	m.Question = m.Question[:0]
	m.Answer = m.Answer[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]
}

var messagePool = sync.Pool{New: func() any { return new(Message) }}

// AcquireMessage returns a pooled, reset Message for short-lived use (e.g.
// decoding a query that is fully consumed before the reply is built).
// Callers must not retain any reference into it past ReleaseMessage.
func AcquireMessage() *Message { return messagePool.Get().(*Message) }

// ReleaseMessage returns m to the pool.
func ReleaseMessage(m *Message) {
	m.Reset()
	messagePool.Put(m)
}

// Q returns the first question, or a zero Question if there is none.
func (m *Message) Q() Question {
	if len(m.Question) == 0 {
		return Question{}
	}
	return m.Question[0]
}

// Section returns the records in the given message section.
func (m *Message) Section(s Section) []RR {
	switch s {
	case SectionAnswer:
		return m.Answer
	case SectionAuthority:
		return m.Authority
	default:
		return m.Additional
	}
}

// AddAnswer, AddAuthority and AddAdditional append records to the respective
// sections.
func (m *Message) AddAnswer(rrs ...RR)     { m.Answer = append(m.Answer, rrs...) }
func (m *Message) AddAuthority(rrs ...RR)  { m.Authority = append(m.Authority, rrs...) }
func (m *Message) AddAdditional(rrs ...RR) { m.Additional = append(m.Additional, rrs...) }

// AnswersFor returns the answer-section records matching name and type
// (following no CNAMEs).
func (m *Message) AnswersFor(name Name, t Type) []RR {
	var out []RR
	for _, rr := range m.Answer {
		if rr.Name == name && rr.Type == t {
			out = append(out, rr)
		}
	}
	return out
}

// IsReferral reports whether the message is a delegation referral: no
// answers, not authoritative, and NS records in the authority section.
func (m *Message) IsReferral() bool {
	if m.Header.RCode != RCodeNoError || len(m.Answer) > 0 {
		return false
	}
	for _, rr := range m.Authority {
		if rr.Type == TypeNS {
			return true
		}
	}
	return false
}

// String renders the message in a dig-like textual form.
func (m *Message) String() string {
	var b strings.Builder
	h := m.Header
	fmt.Fprintf(&b, ";; opcode: %s, status: %s, id: %d\n", h.Opcode, h.RCode, h.ID)
	b.WriteString(";; flags:")
	for _, f := range []struct {
		on   bool
		name string
	}{{h.QR, "qr"}, {h.AA, "aa"}, {h.TC, "tc"}, {h.RD, "rd"}, {h.RA, "ra"}, {h.AD, "ad"}, {h.CD, "cd"}} {
		if f.on {
			b.WriteString(" " + f.name)
		}
	}
	fmt.Fprintf(&b, "; QUERY: %d, ANSWER: %d, AUTHORITY: %d, ADDITIONAL: %d\n",
		len(m.Question), len(m.Answer), len(m.Authority), len(m.Additional))
	if len(m.Question) > 0 {
		b.WriteString(";; QUESTION SECTION:\n")
		for _, q := range m.Question {
			fmt.Fprintf(&b, ";%s\n", q)
		}
	}
	writeSection := func(title string, rrs []RR) {
		if len(rrs) == 0 {
			return
		}
		fmt.Fprintf(&b, ";; %s SECTION:\n", title)
		for _, rr := range rrs {
			b.WriteString(rr.String())
			b.WriteByte('\n')
		}
	}
	writeSection("ANSWER", m.Answer)
	writeSection("AUTHORITY", m.Authority)
	writeSection("ADDITIONAL", m.Additional)
	return b.String()
}
