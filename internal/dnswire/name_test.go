package dnswire

import (
	"strings"
	"testing"
)

func TestNewNameCanonicalizes(t *testing.T) {
	cases := []struct {
		in   string
		want Name
	}{
		{"", Root},
		{".", Root},
		{"example.org", "example.org."},
		{"example.org.", "example.org."},
		{"EXAMPLE.ORG", "example.org."},
		{"WwW.Example.Org.", "www.example.org."},
	}
	for _, c := range cases {
		if got := NewName(c.in); got != c.want {
			t.Errorf("NewName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNameValid(t *testing.T) {
	if err := Root.Valid(); err != nil {
		t.Errorf("root should be valid: %v", err)
	}
	if err := NewName("a.b.c").Valid(); err != nil {
		t.Errorf("a.b.c should be valid: %v", err)
	}
	long := strings.Repeat("a", 64)
	if err := NewName(long + ".org").Valid(); err != ErrLabelTooLong {
		t.Errorf("64-byte label: got %v, want ErrLabelTooLong", err)
	}
	// 255-octet limit: build a name of many 63-byte labels.
	lbl := strings.Repeat("b", 63)
	big := NewName(strings.Join([]string{lbl, lbl, lbl, lbl}, "."))
	if err := big.Valid(); err != ErrNameTooLong {
		t.Errorf("256-octet name: got %v, want ErrNameTooLong", err)
	}
	if err := NewName("a..b").Valid(); err != ErrEmptyLabel {
		t.Errorf("empty label: got %v, want ErrEmptyLabel", err)
	}
}

func TestNameLabels(t *testing.T) {
	n := NewName("www.example.org")
	labels := n.Labels()
	want := []string{"www", "example", "org"}
	if len(labels) != len(want) {
		t.Fatalf("Labels() = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, labels[i], want[i])
		}
	}
	if Root.Labels() != nil {
		t.Errorf("root labels should be nil")
	}
	if got := n.CountLabels(); got != 3 {
		t.Errorf("CountLabels() = %d, want 3", got)
	}
	if got := Root.CountLabels(); got != 0 {
		t.Errorf("root CountLabels() = %d, want 0", got)
	}
}

func TestNameParentChild(t *testing.T) {
	n := NewName("www.example.org")
	if p := n.Parent(); p != NewName("example.org") {
		t.Errorf("Parent(www.example.org) = %q", p)
	}
	if p := NewName("org").Parent(); p != Root {
		t.Errorf("Parent(org.) = %q, want root", p)
	}
	if p := Root.Parent(); p != Root {
		t.Errorf("Parent(.) = %q, want root", p)
	}
	if c := Root.Child("org"); c != NewName("org") {
		t.Errorf("root.Child(org) = %q", c)
	}
	if c := NewName("example.org").Child("NS1"); c != NewName("ns1.example.org") {
		t.Errorf("Child(NS1) = %q, want lowercase child", c)
	}
}

func TestIsSubdomainOf(t *testing.T) {
	cases := []struct {
		name, anc string
		want      bool
	}{
		{"www.example.org", "example.org", true},
		{"example.org", "example.org", true},
		{"example.org", "www.example.org", false},
		{"badexample.org", "example.org", false},
		{"example.com", "example.org", false},
		{"anything.at.all", ".", true},
		{"ns1.cachetest.net", "cachetest.net", true},
		{"ns1.zurroundeddu.com", "cachetest.net", false},
	}
	for _, c := range cases {
		got := NewName(c.name).IsSubdomainOf(NewName(c.anc))
		if got != c.want {
			t.Errorf("IsSubdomainOf(%q, %q) = %v, want %v", c.name, c.anc, got, c.want)
		}
	}
}

func TestCommonAncestor(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"www.example.org", "mail.example.org", "example.org"},
		{"example.org", "example.com", "."},
		{"a.b.c.org", "b.c.org", "b.c.org"},
		{"x.org", "x.org", "x.org"},
	}
	for _, c := range cases {
		got := CommonAncestor(NewName(c.a), NewName(c.b))
		if got != NewName(c.want) {
			t.Errorf("CommonAncestor(%q, %q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestMustNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustName on invalid name should panic")
		}
	}()
	MustName(strings.Repeat("a", 70) + ".org")
}

func TestNameString(t *testing.T) {
	if Root.String() != "." {
		t.Errorf("root String() = %q", Root.String())
	}
	if NewName("a.b").String() != "a.b." {
		t.Errorf("String() = %q", NewName("a.b").String())
	}
}
