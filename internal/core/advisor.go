package core

import (
	"fmt"

	"dnsttl/internal/zone"
)

// Scenario captures the operational factors of §6.1 that pull TTL choices
// in different directions.
type Scenario struct {
	// DNSLoadBalancing: the zone steers traffic via DNS (CDN-style);
	// short TTLs buy agility.
	DNSLoadBalancing bool
	// DDoSScrubbing: the operator must be able to redirect through a
	// scrubber on short notice.
	DDoSScrubbing bool
	// PlannedMaintenanceOnly: changes are scheduled, so TTLs can be
	// lowered just-before and raised after.
	PlannedMaintenanceOnly bool
	// RegistryOperator: the zone hosts public delegations (a TLD or
	// registry-like SLD).
	RegistryOperator bool
	// MeteredDNS: the DNS service bills per query.
	MeteredDNS bool
}

// Severity ranks findings.
type Severity uint8

// Severities from advisory to misconfiguration.
const (
	Info Severity = iota
	Advice
	Warning
)

func (s Severity) String() string {
	switch s {
	case Warning:
		return "WARNING"
	case Advice:
		return "ADVICE"
	}
	return "INFO"
}

// Recommendation is one finding from the advisor.
type Recommendation struct {
	Severity Severity
	// Rule names the check, stable for tests and tooling.
	Rule string
	Text string
}

func (r Recommendation) String() string {
	return fmt.Sprintf("[%s] %s: %s", r.Severity, r.Rule, r.Text)
}

// Thresholds from §6.3: short-TTL agility needs no less than 5 minutes;
// general zones should sit at an hour or more, ideally 4-24 h.
const (
	minAgileTTL      = 300
	recommendedFloor = 3600
	recommendedHigh  = 86400
)

// Advise runs the §6 rule set over a configuration and scenario.
func Advise(cfg ZoneConfig, sc Scenario) []Recommendation {
	var out []Recommendation
	add := func(sev Severity, rule, format string, args ...any) {
		out = append(out, Recommendation{Severity: sev, Rule: rule, Text: fmt.Sprintf(format, args...)})
	}

	needsAgility := sc.DNSLoadBalancing || sc.DDoSScrubbing

	// TTL=0 undermines caching entirely (§5.1.2).
	for name, ttl := range map[string]uint32{
		"NS": cfg.ChildNSTTL, "service": cfg.ServiceTTL, "server address": cfg.ChildAddrTTL,
	} {
		if ttl == 0 {
			add(Warning, "zero-ttl",
				"%s TTL is 0: every query reaches the authoritative, raising latency and erasing DDoS resilience; use at least %d s", name, minAgileTTL)
		}
	}

	// Parent/child NS divergence: the §3 finding — a parent-centric
	// minority will honor the parent's value, so both must be set
	// deliberately.
	if cfg.ParentNSTTL != cfg.ChildNSTTL && cfg.ChildNSTTL > 0 {
		sev := Advice
		if cfg.ChildNSTTL < cfg.ParentNSTTL/24 {
			sev = Warning
		}
		add(sev, "parent-child-mismatch",
			"parent NS TTL (%d) and child NS TTL (%d) diverge: ~10%% of resolvers are parent-centric and will use the parent's value; align them or accept a mixed effective TTL",
			cfg.ParentNSTTL, cfg.ChildNSTTL)
	}

	// In-bailiwick A > NS is ineffective (§4.2, §6.3: "TTLs of A/AAAA
	// records should be equal or shorter than the NS TTL for in-bailiwick
	// servers").
	if (cfg.Bailiwick == zone.BailiwickInOnly || cfg.Bailiwick == zone.BailiwickMixed) &&
		cfg.ChildAddrTTL > cfg.ChildNSTTL {
		add(Advice, "in-bailiwick-addr-exceeds-ns",
			"server address TTL (%d) exceeds the NS TTL (%d) but in-bailiwick addresses are re-fetched when the NS expires; the extra lifetime is never used — set them equal",
			cfg.ChildAddrTTL, cfg.ChildNSTTL)
	}

	// Out-of-bailiwick: independent TTLs are effective; note the §4.3
	// delay implication for renumbering.
	if cfg.Bailiwick == zone.BailiwickOutOnly && cfg.ChildAddrTTL > cfg.ChildNSTTL {
		add(Info, "out-of-bailiwick-independent",
			"out-of-bailiwick server addresses are cached independently: renumbering takes effect only after the address TTL (%d s), not the NS TTL",
			cfg.ChildAddrTTL)
	}

	// NS TTL guidance.
	switch {
	case needsAgility:
		if cfg.ServiceTTL > 900 {
			add(Advice, "agility-service-ttl",
				"DNS-based load balancing or DDoS redirection needs short *service* TTLs: 300-900 s (current %d s)", cfg.ServiceTTL)
		}
		if cfg.ChildNSTTL < recommendedFloor {
			add(Advice, "agility-ns-still-long",
				"even agile operations rarely need short NS TTLs: keep NS at >= %d s and confine short TTLs to the steered service records", recommendedFloor)
		}
	case cfg.ChildNSTTL > 0 && cfg.ChildNSTTL < 1800:
		add(Warning, "short-ns-ttl",
			"NS TTL %d s prevents caching without an operational need; §5.3 measured median latency dropping from 28.7 ms to 8 ms when .uy raised 300 s to 86400 s — use %d-%d s",
			cfg.ChildNSTTL, recommendedFloor, recommendedHigh)
	case cfg.ChildNSTTL < recommendedFloor:
		add(Advice, "modest-ns-ttl",
			"NS TTL %d s is below the recommended hour; prefer %d-%d s unless changes are imminent", cfg.ChildNSTTL, recommendedFloor, recommendedHigh)
	}

	if sc.PlannedMaintenanceOnly && cfg.ServiceTTL < recommendedFloor && !needsAgility {
		add(Advice, "planned-maintenance",
			"with planned maintenance, long TTLs cost nothing: lower them just before a change and raise them after; keep %d+ s in steady state", recommendedFloor)
	}

	if sc.RegistryOperator && cfg.ChildNSTTL < recommendedFloor {
		add(Warning, "registry-short-delegation",
			"registry delegations with NS TTLs under an hour penalize every child zone's resolution; §5.2 found most such TLDs had not considered the implications")
	}

	if sc.MeteredDNS {
		est := Estimate(EffectiveServiceTTL(cfg, MeasuredPopulation()), DefaultWorkload())
		add(Info, "metered-cost",
			"metered DNS: this configuration yields ~%.0f authoritative queries/hour per busy resolver (hit rate %.0f%%); longer TTLs cut the bill",
			est.AuthQueriesPerHour, est.HitRate*100)
	}

	if len(out) == 0 {
		add(Info, "ok", "configuration follows the paper's recommendations")
	}
	return out
}
