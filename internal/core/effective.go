// Package core distills the paper's findings into an operator-facing
// library: given a zone's TTL configuration (which lives in multiple places
// — parent and child, NS and address records, in or out of bailiwick) and a
// model of the deployed resolver population, it computes the *effective*
// TTLs resolvers will actually honor (§3, §4), estimates cache hit rates,
// latency and query volume (§6.2), and issues the §6.3 recommendations.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/zone"
)

// ZoneConfig is a domain's TTL configuration as its operator controls it.
type ZoneConfig struct {
	// Domain is the zone apex.
	Domain dnswire.Name
	// ParentNSTTL is the delegation NS TTL in the parent zone; many
	// registries fix it (com/net: 172800) and EPP cannot change it.
	ParentNSTTL uint32
	// ChildNSTTL is the NS TTL in the zone itself.
	ChildNSTTL uint32
	// ParentGlueTTL is the TTL of address glue in the parent (0 when the
	// servers are out of bailiwick and no glue exists).
	ParentGlueTTL uint32
	// ChildAddrTTL is the TTL of the nameserver address records in the
	// zone authoritative for them.
	ChildAddrTTL uint32
	// Bailiwick is the nameserver-host configuration.
	Bailiwick zone.BailiwickClass
	// ServiceTTL is the TTL of the service records clients look up
	// (e.g. the website's A/AAAA).
	ServiceTTL uint32
}

// PopulationModel is the resolver-behavior mix. Fractions should sum to ~1;
// Normalize fixes them up. The defaults follow the paper's measurements.
type PopulationModel struct {
	// ChildCentric resolvers honor the child's TTLs (§3: ~90 %).
	ChildCentric float64
	// ParentCentric resolvers honor the parent's (§3: ~10 %).
	ParentCentric float64
	// CapSeconds > 0 caps every effective TTL (e.g. 21599); CapShare is
	// the fraction of resolvers applying it.
	CapSeconds uint32
	CapShare   float64
}

// MeasuredPopulation returns the §3 mix: 90 % child-centric, 10 %
// parent-centric, 15 % capping at 21599 s.
func MeasuredPopulation() PopulationModel {
	return PopulationModel{ChildCentric: 0.9, ParentCentric: 0.1, CapSeconds: 21599, CapShare: 0.15}
}

// Normalize scales ChildCentric/ParentCentric to sum to 1.
func (p PopulationModel) Normalize() PopulationModel {
	s := p.ChildCentric + p.ParentCentric
	if s <= 0 {
		return PopulationModel{ChildCentric: 1}
	}
	p.ChildCentric /= s
	p.ParentCentric /= s
	return p
}

// TTLShare is one outcome of the effective-TTL computation: a fraction of
// the resolver population honoring a particular TTL.
type TTLShare struct {
	TTL   uint32
	Share float64
	// Why explains which mechanism produced this value.
	Why string
}

// Distribution is a set of TTL outcomes summing to share 1.
type Distribution []TTLShare

// Mean returns the share-weighted mean TTL.
func (d Distribution) Mean() float64 {
	m := 0.0
	for _, s := range d {
		m += float64(s.TTL) * s.Share
	}
	return m
}

// Min returns the smallest TTL with nonzero share.
func (d Distribution) Min() uint32 {
	min := uint32(math.MaxUint32)
	for _, s := range d {
		if s.Share > 0 && s.TTL < min {
			min = s.TTL
		}
	}
	if min == math.MaxUint32 {
		return 0
	}
	return min
}

// normalize merges equal TTLs and sorts ascending.
func (d Distribution) normalize() Distribution {
	byTTL := map[uint32]*TTLShare{}
	for _, s := range d {
		if s.Share <= 0 {
			continue
		}
		if e, ok := byTTL[s.TTL]; ok {
			e.Share += s.Share
			continue
		}
		cp := s
		byTTL[s.TTL] = &cp
	}
	out := make(Distribution, 0, len(byTTL))
	for _, e := range byTTL {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TTL < out[j].TTL })
	return out
}

// applyCap splits each share into capped and uncapped parts.
func applyCap(d Distribution, cap uint32, share float64) Distribution {
	if cap == 0 || share <= 0 {
		return d.normalize()
	}
	var out Distribution
	for _, s := range d {
		if s.TTL > cap {
			out = append(out,
				TTLShare{TTL: cap, Share: s.Share * share, Why: s.Why + ", capped"},
				TTLShare{TTL: s.TTL, Share: s.Share * (1 - share), Why: s.Why})
		} else {
			out = append(out, s)
		}
	}
	return out.normalize()
}

// EffectiveNSTTL computes the distribution of NS-set cache lifetimes across
// the population: child-centric resolvers use the child value, the
// parent-centric minority the parent's (§3).
func EffectiveNSTTL(cfg ZoneConfig, pop PopulationModel) Distribution {
	pop = pop.Normalize()
	d := Distribution{
		{TTL: cfg.ChildNSTTL, Share: pop.ChildCentric, Why: "child-centric (child NS TTL)"},
		{TTL: cfg.ParentNSTTL, Share: pop.ParentCentric, Why: "parent-centric (parent NS TTL)"},
	}
	return applyCap(d, pop.CapSeconds, pop.CapShare)
}

// EffectiveAddrTTL computes the nameserver-address cache lifetime. This is
// §4's result: for in-bailiwick servers the address is re-learned whenever
// the NS set expires, so its effective lifetime is min(NS TTL, address
// TTL); out-of-bailiwick addresses live their full TTL independently.
func EffectiveAddrTTL(cfg ZoneConfig, pop PopulationModel) Distribution {
	pop = pop.Normalize()
	var d Distribution
	switch cfg.Bailiwick {
	case zone.BailiwickInOnly, zone.BailiwickMixed:
		eff := cfg.ChildAddrTTL
		if cfg.ChildNSTTL < eff {
			eff = cfg.ChildNSTTL
		}
		d = append(d, TTLShare{TTL: eff, Share: pop.ChildCentric,
			Why: "in-bailiwick: address tied to NS expiry (min of the two)"})
		parentEff := cfg.ParentGlueTTL
		if parentEff == 0 {
			parentEff = cfg.ParentNSTTL
		}
		d = append(d, TTLShare{TTL: parentEff, Share: pop.ParentCentric,
			Why: "parent-centric: glue TTL"})
	default:
		d = append(d, TTLShare{TTL: cfg.ChildAddrTTL, Share: pop.ChildCentric,
			Why: "out-of-bailiwick: address cached independently for its full TTL"})
		parentEff := cfg.ParentGlueTTL
		if parentEff == 0 {
			parentEff = cfg.ChildAddrTTL
		}
		d = append(d, TTLShare{TTL: parentEff, Share: pop.ParentCentric,
			Why: "parent-centric: parent copy of the address"})
	}
	return applyCap(d, pop.CapSeconds, pop.CapShare)
}

// EffectiveServiceTTL is the distribution for the service records
// themselves: service records exist only in the child, so only caps differ
// across the population.
func EffectiveServiceTTL(cfg ZoneConfig, pop PopulationModel) Distribution {
	d := Distribution{{TTL: cfg.ServiceTTL, Share: 1, Why: "service record (child only)"}}
	return applyCap(d, pop.CapSeconds, pop.CapShare)
}

// HitRate is the classic TTL-cache model (Jung et al. [26], the paper's
// related work): for Poisson arrivals at rate lambda (queries/second) and a
// TTL of T seconds, the cache answers lambda·T of every lambda·T+1 queries.
func HitRate(ttl uint32, lambda float64) float64 {
	if lambda <= 0 || ttl == 0 {
		return 0
	}
	x := lambda * float64(ttl)
	return x / (x + 1)
}

// Estimates summarizes the client experience and authoritative load a
// configuration produces under a query workload.
type Estimates struct {
	// HitRate is the expected cache hit fraction.
	HitRate float64
	// MeanLatency is the expected per-query latency.
	MeanLatency time.Duration
	// AuthQueriesPerHour is the expected authoritative query load per
	// resolver.
	AuthQueriesPerHour float64
}

// Workload describes client demand at one recursive resolver.
type Workload struct {
	// QueriesPerSecond is the arrival rate for the service name.
	QueriesPerSecond float64
	// CacheHitLatency and MissLatency are the two client outcomes; the
	// paper's §6.1 contrast ("a 1 ms cache hit... a query to the
	// authoritative is usually fast, less than 100 ms").
	CacheHitLatency time.Duration
	MissLatency     time.Duration
}

// DefaultWorkload is a moderately popular name at a resolver.
func DefaultWorkload() Workload {
	return Workload{
		QueriesPerSecond: 0.02, // ~72 queries/hour
		CacheHitLatency:  4 * time.Millisecond,
		MissLatency:      40 * time.Millisecond,
	}
}

// Estimate computes Estimates for a service-record TTL distribution.
func Estimate(d Distribution, w Workload) Estimates {
	var e Estimates
	for _, s := range d {
		h := HitRate(s.TTL, w.QueriesPerSecond)
		e.HitRate += s.Share * h
		lat := time.Duration(float64(w.CacheHitLatency)*h + float64(w.MissLatency)*(1-h))
		e.MeanLatency += time.Duration(s.Share * float64(lat))
		e.AuthQueriesPerHour += s.Share * w.QueriesPerSecond * 3600 * (1 - h)
	}
	return e
}

// String renders a distribution.
func (d Distribution) String() string {
	out := ""
	for _, s := range d {
		out += fmt.Sprintf("  %6.1f%%  TTL %-7d %s\n", s.Share*100, s.TTL, s.Why)
	}
	return out
}
