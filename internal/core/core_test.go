package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/zone"
)

func uyBefore() ZoneConfig {
	return ZoneConfig{
		Domain:      dnswire.NewName("uy"),
		ParentNSTTL: 172800, ChildNSTTL: 300,
		ParentGlueTTL: 172800, ChildAddrTTL: 120,
		Bailiwick:  zone.BailiwickMixed,
		ServiceTTL: 300,
	}
}

func TestEffectiveNSTTL(t *testing.T) {
	d := EffectiveNSTTL(uyBefore(), MeasuredPopulation())
	var child, parent float64
	for _, s := range d {
		switch s.TTL {
		case 300:
			child += s.Share
		case 172800, 21599:
			parent += s.Share
		}
	}
	if math.Abs(child-0.9) > 1e-9 {
		t.Errorf("child share = %v, want 0.9", child)
	}
	if math.Abs(parent-0.1) > 1e-9 {
		t.Errorf("parent share = %v, want 0.1", parent)
	}
	// Shares always sum to 1.
	sum := 0.0
	for _, s := range d {
		sum += s.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
}

func TestEffectiveNSTTLCapSplitsShares(t *testing.T) {
	cfg := uyBefore()
	cfg.ChildNSTTL = 345600 // google.co-style
	cfg.ParentNSTTL = 900
	d := EffectiveNSTTL(cfg, MeasuredPopulation())
	capped := 0.0
	for _, s := range d {
		if s.TTL == 21599 {
			capped += s.Share
		}
	}
	// 15 % of the child-centric 90 %.
	if math.Abs(capped-0.9*0.15) > 1e-9 {
		t.Errorf("capped share = %v, want 0.135", capped)
	}
}

func TestEffectiveAddrTTLBailiwick(t *testing.T) {
	cfg := ZoneConfig{
		ParentNSTTL: 172800, ChildNSTTL: 3600,
		ParentGlueTTL: 172800, ChildAddrTTL: 7200,
		Bailiwick: zone.BailiwickInOnly,
	}
	pop := PopulationModel{ChildCentric: 1}
	d := EffectiveAddrTTL(cfg, pop)
	// §4.2: in-bailiwick → min(NS, addr) = 3600.
	if len(d) != 1 || d[0].TTL != 3600 {
		t.Fatalf("in-bailiwick effective addr TTL = %v, want 3600", d)
	}
	cfg.Bailiwick = zone.BailiwickOutOnly
	d = EffectiveAddrTTL(cfg, pop)
	// §4.3: out-of-bailiwick → full 7200.
	if len(d) != 1 || d[0].TTL != 7200 {
		t.Fatalf("out-of-bailiwick effective addr TTL = %v, want 7200", d)
	}
	// Parent-centric share rides the glue.
	d = EffectiveAddrTTL(cfg, PopulationModel{ParentCentric: 1})
	if d[0].TTL != 172800 {
		t.Errorf("parent-centric addr TTL = %v, want 172800", d)
	}
}

func TestDistributionHelpers(t *testing.T) {
	d := Distribution{{TTL: 100, Share: 0.5}, {TTL: 300, Share: 0.5}}
	if d.Mean() != 200 {
		t.Errorf("Mean = %v", d.Mean())
	}
	if d.Min() != 100 {
		t.Errorf("Min = %v", d.Min())
	}
	if (Distribution{}).Min() != 0 {
		t.Errorf("empty Min should be 0")
	}
	merged := Distribution{{TTL: 1, Share: 0.2}, {TTL: 1, Share: 0.3}, {TTL: 2, Share: 0.5}}.normalize()
	if len(merged) != 2 || merged[0].Share != 0.5 {
		t.Errorf("normalize = %v", merged)
	}
	if !strings.Contains(d.String(), "TTL 100") {
		t.Errorf("String = %q", d.String())
	}
}

func TestHitRateModel(t *testing.T) {
	if HitRate(0, 1) != 0 || HitRate(100, 0) != 0 {
		t.Errorf("degenerate hit rates should be 0")
	}
	// λT/(1+λT): λ=0.01, T=100 → 0.5.
	if got := HitRate(100, 0.01); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
	// Monotone in TTL.
	prev := 0.0
	for _, ttl := range []uint32{10, 60, 300, 3600, 86400} {
		h := HitRate(ttl, 0.02)
		if h <= prev {
			t.Fatalf("hit rate not increasing at %d", ttl)
		}
		prev = h
	}
	// The paper's observation: 1800-86400 s TTLs give ≈70 % hit rates
	// for typical demand.
	if h := HitRate(1800, 0.0015); h < 0.6 || h > 0.8 {
		t.Errorf("calibration: hit rate at 1800s = %.2f", h)
	}
}

func TestEstimate(t *testing.T) {
	w := DefaultWorkload()
	short := Estimate(Distribution{{TTL: 60, Share: 1}}, w)
	long := Estimate(Distribution{{TTL: 86400, Share: 1}}, w)
	if long.HitRate <= short.HitRate {
		t.Errorf("long TTL must hit more: %v vs %v", long.HitRate, short.HitRate)
	}
	if long.MeanLatency >= short.MeanLatency {
		t.Errorf("long TTL must be faster: %v vs %v", long.MeanLatency, short.MeanLatency)
	}
	if long.AuthQueriesPerHour >= short.AuthQueriesPerHour {
		t.Errorf("long TTL must cut load: %v vs %v", long.AuthQueriesPerHour, short.AuthQueriesPerHour)
	}
	// Latency is bounded by the two outcome latencies.
	if long.MeanLatency < w.CacheHitLatency || short.MeanLatency > w.MissLatency {
		t.Errorf("latencies out of bounds: %v, %v", long.MeanLatency, short.MeanLatency)
	}
}

func hasRule(recs []Recommendation, rule string) bool {
	for _, r := range recs {
		if r.Rule == rule {
			return true
		}
	}
	return false
}

func TestAdviseShortTTL(t *testing.T) {
	recs := Advise(uyBefore(), Scenario{})
	if !hasRule(recs, "short-ns-ttl") {
		t.Errorf("300 s NS TTL should trigger short-ns-ttl: %v", recs)
	}
	if !hasRule(recs, "parent-child-mismatch") {
		t.Errorf("172800 vs 300 should trigger mismatch: %v", recs)
	}
}

func TestAdviseZeroTTL(t *testing.T) {
	cfg := uyBefore()
	cfg.ServiceTTL = 0
	recs := Advise(cfg, Scenario{})
	if !hasRule(recs, "zero-ttl") {
		t.Errorf("zero TTL should warn: %v", recs)
	}
}

func TestAdviseInBailiwickAddr(t *testing.T) {
	cfg := ZoneConfig{
		ParentNSTTL: 3600, ChildNSTTL: 3600,
		ChildAddrTTL: 7200, Bailiwick: zone.BailiwickInOnly,
		ServiceTTL: 3600,
	}
	recs := Advise(cfg, Scenario{})
	if !hasRule(recs, "in-bailiwick-addr-exceeds-ns") {
		t.Errorf("A > NS in bailiwick should advise: %v", recs)
	}
	cfg.Bailiwick = zone.BailiwickOutOnly
	recs = Advise(cfg, Scenario{})
	if !hasRule(recs, "out-of-bailiwick-independent") {
		t.Errorf("out-of-bailiwick should note independence: %v", recs)
	}
	if hasRule(recs, "in-bailiwick-addr-exceeds-ns") {
		t.Errorf("out-of-bailiwick must not trigger the in-bailiwick rule")
	}
}

func TestAdviseAgility(t *testing.T) {
	cfg := ZoneConfig{
		ParentNSTTL: 172800, ChildNSTTL: 172800,
		ChildAddrTTL: 3600, Bailiwick: zone.BailiwickOutOnly,
		ServiceTTL: 86400,
	}
	recs := Advise(cfg, Scenario{DNSLoadBalancing: true})
	if !hasRule(recs, "agility-service-ttl") {
		t.Errorf("CDN scenario with 86400 service TTL should advise shorter: %v", recs)
	}
	// Short NS with agility need should not fire the short-ns warning…
	cfg.ChildNSTTL = 600
	cfg.ParentNSTTL = 600
	recs = Advise(cfg, Scenario{DNSLoadBalancing: true})
	if hasRule(recs, "short-ns-ttl") {
		t.Errorf("agile scenario must not warn about short NS: %v", recs)
	}
	// …but should point agility at service records instead.
	if !hasRule(recs, "agility-ns-still-long") {
		t.Errorf("agile scenario should still prefer long NS: %v", recs)
	}
}

func TestAdviseRegistryAndMetered(t *testing.T) {
	cfg := uyBefore()
	recs := Advise(cfg, Scenario{RegistryOperator: true, MeteredDNS: true})
	if !hasRule(recs, "registry-short-delegation") {
		t.Errorf("registry with 300 s NS should warn: %v", recs)
	}
	if !hasRule(recs, "metered-cost") {
		t.Errorf("metered scenario should estimate cost: %v", recs)
	}
}

func TestAdviseCleanConfig(t *testing.T) {
	cfg := ZoneConfig{
		ParentNSTTL: 86400, ChildNSTTL: 86400,
		ParentGlueTTL: 86400, ChildAddrTTL: 86400,
		Bailiwick: zone.BailiwickOutOnly, ServiceTTL: 14400,
	}
	recs := Advise(cfg, Scenario{})
	if len(recs) != 1 || recs[0].Rule != "ok" {
		t.Errorf("clean config should be ok: %v", recs)
	}
	if !strings.Contains(recs[0].String(), "INFO") {
		t.Errorf("String() = %q", recs[0].String())
	}
}

// TestQuickSharesSumToOne: every effective-TTL distribution is a probability
// distribution for arbitrary configurations and populations.
func TestQuickSharesSumToOne(t *testing.T) {
	f := func(pNS, cNS, glue, addr uint16, bw uint8, child, parent, capShare float64) bool {
		if math.IsNaN(child) || math.IsNaN(parent) || math.IsInf(child, 0) || math.IsInf(parent, 0) {
			return true
		}
		// Bound to realistic shares; Normalize handles the rest.
		child = math.Mod(math.Abs(child), 1)
		parent = math.Mod(math.Abs(parent), 1)
		if child+parent == 0 {
			return true
		}
		cfg := ZoneConfig{
			ParentNSTTL: uint32(pNS), ChildNSTTL: uint32(cNS),
			ParentGlueTTL: uint32(glue), ChildAddrTTL: uint32(addr),
			Bailiwick:  zone.BailiwickClass(bw % 3),
			ServiceTTL: uint32(cNS),
		}
		pop := PopulationModel{
			ChildCentric: child, ParentCentric: parent,
			CapSeconds: 21599, CapShare: math.Mod(math.Abs(capShare), 1),
		}
		for _, d := range []Distribution{
			EffectiveNSTTL(cfg, pop),
			EffectiveAddrTTL(cfg, pop),
			EffectiveServiceTTL(cfg, pop),
		} {
			sum := 0.0
			for _, s := range d {
				sum += s.Share
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickEstimateMonotone: longer service TTLs never hurt hit rate or
// mean latency under the model.
func TestQuickEstimateMonotone(t *testing.T) {
	f := func(t1, t2 uint16) bool {
		lo, hi := uint32(t1), uint32(t2)
		if lo > hi {
			lo, hi = hi, lo
		}
		w := DefaultWorkload()
		a := Estimate(Distribution{{TTL: lo, Share: 1}}, w)
		b := Estimate(Distribution{{TTL: hi, Share: 1}}, w)
		return b.HitRate >= a.HitRate && b.MeanLatency <= a.MeanLatency+time.Nanosecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
