package push

import (
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
)

// Authority is the server half of the push plane: it owns the feeds of the
// zones an authoritative server publishes, tracks subscribers, fans NOTIFYs
// out on every committed change, and serves the IXFR pulls those NOTIFYs
// trigger. It plugs into authoritative.Server via the PushHook field, so
// subscription requests and IXFR queries ride the server's normal listeners
// and are booked in its query count — notify overhead is charged honestly.
//
// Wire protocol:
//   - subscribe: Opcode NOTIFY, QR=0, question (origin, IXFR). A real-socket
//     subscriber encodes its notify-back port in the TTL of an additional
//     A record carrying its own address; port 0 (or no additional) means
//     "notify my source address" (the simnet convention). The response
//     answers with the zone's current SOA.
//   - notify: RFC 1996 — Opcode NOTIFY, AA, question (origin, SOA), the
//     current SOA in the answer section. Sent via Send, fire-and-forget.
//   - pull: RFC 1995 — Opcode QUERY, question (origin, IXFR), the client's
//     SOA in the authority section. Answered SOA-framed: up to date is a
//     lone SOA; deltas are SOA(cur), then per change set the Del section
//     (SOA at its From serial, deleted records) and Add section (SOA at its
//     To serial, added records), then SOA(cur) again; a client behind the
//     history gets the AXFR-shaped full zone (second record is not an SOA).
type Authority struct {
	// Send delivers one notify wire to a subscriber. The simnet wiring
	// ignores the port and uses Network.Exchange; the real-socket wiring
	// sends a UDP datagram. A nil Send disables fan-out (feeds still
	// version their zones).
	Send func(dst netip.AddrPort, wire []byte) error
	// Obs, when non-nil, mirrors the authority counters into a registry.
	Obs *AuthorityMetrics

	mu    sync.Mutex
	feeds map[dnswire.Name]*Feed
	subs  map[dnswire.Name]map[netip.AddrPort]struct{}

	msgID atomic.Uint32

	changes    atomic.Uint64
	notifies   atomic.Uint64
	ixfrServed atomic.Uint64
	axfrServed atomic.Uint64
}

// NewAuthority creates an authority with no feeds.
func NewAuthority() *Authority {
	return &Authority{
		feeds: make(map[dnswire.Name]*Feed),
		subs:  make(map[dnswire.Name]map[netip.AddrPort]struct{}),
	}
}

// AddFeed publishes f through this authority: every change set f commits
// becomes a NOTIFY fan-out to the zone's subscribers.
func (a *Authority) AddFeed(f *Feed) {
	a.mu.Lock()
	a.feeds[f.Origin()] = f
	a.mu.Unlock()
	f.setOnChange(a.broadcast)
}

// Instrument mirrors the authority's counters into reg under the
// push.feed_* names, including a live subscriber-count gauge.
func (a *Authority) Instrument(reg *obs.Registry) {
	a.Obs = NewAuthorityMetrics(reg)
	reg.GaugeFunc(MetricFeedSubscribers, func() float64 {
		return float64(a.Stats().Subscribers)
	})
}

// AuthorityStats is a snapshot of the authority's counters.
type AuthorityStats struct {
	Changes     uint64
	Notifies    uint64
	IXFRServed  uint64
	AXFRServed  uint64
	Subscribers int
}

// Stats snapshots the counters.
func (a *Authority) Stats() AuthorityStats {
	a.mu.Lock()
	n := 0
	for _, set := range a.subs {
		n += len(set)
	}
	a.mu.Unlock()
	return AuthorityStats{
		Changes:     a.changes.Load(),
		Notifies:    a.notifies.Load(),
		IXFRServed:  a.ixfrServed.Load(),
		AXFRServed:  a.axfrServed.Load(),
		Subscribers: n,
	}
}

// broadcast is a feed's onChange hook: one NOTIFY per subscriber, in
// deterministic (sorted) order.
func (a *Authority) broadcast(origin dnswire.Name, serial uint32) {
	a.changes.Add(1)
	a.Obs.changesInc()
	send := a.Send
	if send == nil {
		return
	}
	a.mu.Lock()
	f := a.feeds[origin]
	dsts := make([]netip.AddrPort, 0, len(a.subs[origin]))
	for dst := range a.subs[origin] {
		dsts = append(dsts, dst)
	}
	a.mu.Unlock()
	if f == nil || len(dsts) == 0 {
		return
	}
	sort.Slice(dsts, func(i, j int) bool {
		if c := dsts[i].Addr().Compare(dsts[j].Addr()); c != 0 {
			return c < 0
		}
		return dsts[i].Port() < dsts[j].Port()
	})
	soa, ok := f.Zone().SOA()
	if !ok {
		return
	}
	notify := &dnswire.Message{
		Header: dnswire.Header{
			ID:     uint16(a.msgID.Add(1)),
			Opcode: dnswire.OpcodeNotify,
			AA:     true,
		},
		Question: []dnswire.Question{{Name: origin, Type: dnswire.TypeSOA, Class: dnswire.ClassIN}},
	}
	notify.AddAnswer(soa)
	wire, err := dnswire.Encode(notify)
	if err != nil {
		return
	}
	for _, dst := range dsts {
		a.notifies.Add(1)
		a.Obs.notifiesInc()
		_ = send(dst, wire) // fire-and-forget: polling is the safety net
	}
}

// HandleQuery implements authoritative.PushHook: it claims subscription
// requests and IXFR pulls, passing everything else through.
func (a *Authority) HandleQuery(q *dnswire.Message, from netip.Addr) (*dnswire.Message, bool) {
	question := q.Q()
	switch {
	case q.Header.Opcode == dnswire.OpcodeNotify && !q.Header.QR && question.Type == TypeIXFR:
		return a.handleSubscribe(q, from), true
	case q.Header.Opcode == dnswire.OpcodeQuery && question.Type == TypeIXFR:
		return a.handleIXFR(q), true
	}
	return nil, false
}

// handleSubscribe registers the subscriber and answers with the current SOA.
func (a *Authority) handleSubscribe(q *dnswire.Message, from netip.Addr) *dnswire.Message {
	resp := q.Reply()
	origin := q.Q().Name
	port := uint16(0)
	for _, rr := range q.Additional {
		if rr.Type == dnswire.TypeA && rr.Name == origin {
			port = uint16(rr.TTL)
		}
	}
	a.mu.Lock()
	f := a.feeds[origin]
	if f != nil {
		set := a.subs[origin]
		if set == nil {
			set = make(map[netip.AddrPort]struct{})
			a.subs[origin] = set
		}
		set[netip.AddrPortFrom(from, port)] = struct{}{}
	}
	a.mu.Unlock()
	if f == nil {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}
	soa, ok := f.Zone().SOA()
	if !ok {
		resp.Header.RCode = dnswire.RCodeServFail
		return resp
	}
	resp.Header.AA = true
	resp.AddAnswer(soa)
	return resp
}

// handleIXFR serves an incremental pull, falling back to the full zone when
// the feed's history no longer covers the client's serial.
func (a *Authority) handleIXFR(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	origin := q.Q().Name
	a.mu.Lock()
	f := a.feeds[origin]
	a.mu.Unlock()
	if f == nil {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}
	var clientSerial uint32
	for _, rr := range q.Authority {
		if soa, ok := rr.Data.(dnswire.SOA); ok && rr.Type == dnswire.TypeSOA {
			clientSerial = soa.Serial
		}
	}
	soa, ok := f.Zone().SOA()
	if !ok {
		resp.Header.RCode = dnswire.RCodeServFail
		return resp
	}
	resp.Header.AA = true
	changes, covered := f.ChangesSince(clientSerial)
	if covered {
		resp.AddAnswer(soa)
		if len(changes) > 0 {
			for _, cs := range changes {
				resp.AddAnswer(cs.Del...)
				resp.AddAnswer(cs.Add...)
			}
			resp.AddAnswer(soa)
		}
		a.ixfrServed.Add(1)
		a.Obs.ixfrInc()
		return resp
	}
	// Full-zone fallback, AXFR-framed: SOA, everything else, SOA.
	resp.AddAnswer(soa)
	for _, set := range f.Zone().AllSets() {
		for _, rr := range set.RRs {
			if rr.Type == dnswire.TypeSOA && rr.Name == origin {
				continue
			}
			resp.AddAnswer(rr)
		}
	}
	resp.AddAnswer(soa)
	a.axfrServed.Add(1)
	a.Obs.axfrInc()
	return resp
}

// Nil-safe increment helpers so the hot paths need no Obs branches.
func (m *AuthorityMetrics) changesInc() {
	if m != nil {
		m.Changes.Inc()
	}
}
func (m *AuthorityMetrics) notifiesInc() {
	if m != nil {
		m.Notifies.Inc()
	}
}
func (m *AuthorityMetrics) ixfrInc() {
	if m != nil {
		m.IXFRServed.Inc()
	}
}
func (m *AuthorityMetrics) axfrInc() {
	if m != nil {
		m.AXFRServed.Inc()
	}
}
