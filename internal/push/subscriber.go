package push

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/qlog"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
)

// DefaultPollEvery is the SOA polling fallback period when Config leaves it
// zero: how stale a subscriber can get when the push channel silently drops
// every notify.
const DefaultPollEvery = 5 * time.Minute

// Config parameterizes a Subscriber.
type Config struct {
	// Addr is the subscriber's own address — the source of its subscribe,
	// poll, and IXFR exchanges, and (in simnet) where notifies arrive.
	Addr netip.Addr
	// Port is the notify-back UDP port advertised to authorities over real
	// sockets; 0 means the simnet convention (notify the source address).
	Port uint16
	// Net carries the subscriber's exchanges.
	Net simnet.Exchanger
	// Clock drives polling, health, and purge timestamps; nil means wall.
	Clock simnet.Clock
	// Retry paces resubscribe attempts after failures: attempt n waits
	// Retry.BackoffFor(n). The zero value retries on every Tick.
	Retry resolver.RetryPolicy
	// Stores are the caches purges apply to — one per farm frontend for
	// private topologies, a single shared store otherwise.
	Stores []cache.Store
	// Refetch, when non-nil, is called for every purged key (purge+prefetch
	// mode): re-resolve immediately so the next client query is fresh and
	// never charged the upstream round trip.
	Refetch func(name dnswire.Name, qtype dnswire.Type)
	// Metrics, when non-nil, mirrors the subscriber counters (NewMetrics).
	Metrics *Metrics
	// QLog, when non-nil, emits one notify-in record per NOTIFY received.
	QLog *qlog.Tap
	// PollEvery is the SOA polling fallback period; 0 means
	// DefaultPollEvery. Polling also resynchronizes the serial after missed
	// notifies, so it bounds the stale window under push-channel faults.
	PollEvery time.Duration
	// HealthAfter is how long a subscription may go without hearing from
	// its authority (subscribe ack, notify, or poll reply) before it is
	// unhealthy and serve-stale is vetoed for the names it covers; 0 means
	// 2×PollEvery.
	HealthAfter time.Duration
}

// zoneSub is one zone subscription's state.
type zoneSub struct {
	origin      dnswire.Name
	server      netip.Addr
	serial      uint32
	subscribed  bool
	failures    int
	nextAttempt time.Time
	lastSeen    time.Time
	pulling     bool
}

// Subscriber is the resolver half of the push plane: it subscribes to zone
// feeds, turns NOTIFYs into targeted cache purges (with optional immediate
// refetch), falls back to SOA polling when the push channel goes quiet, and
// implements resolver.StaleGate so purged or unvouched-for names are never
// served stale. It is also a simnet.Handler — attach it at its address to
// receive notifies on the simulated plane.
type Subscriber struct {
	cfg   Config
	clock simnet.Clock

	mu     sync.Mutex
	zones  map[dnswire.Name]*zoneSub
	purged map[cache.Key]time.Time

	msgID atomic.Uint32

	notifies         atomic.Uint64
	notifyDups       atomic.Uint64
	ixfr             atomic.Uint64
	axfrFallback     atomic.Uint64
	purgedN          atomic.Uint64
	refetches        atomic.Uint64
	subscribes       atomic.Uint64
	subscribeRetries atomic.Uint64
	polls            atomic.Uint64
	pollRecoveries   atomic.Uint64
	staleDenied      atomic.Uint64
}

// NewSubscriber builds a subscriber; call Subscribe per zone, then drive it
// with Tick (and deliver notifies via ServeDNS or HandleNotifyWire).
func NewSubscriber(cfg Config) *Subscriber {
	if cfg.Clock == nil {
		cfg.Clock = simnet.WallClock{}
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = DefaultPollEvery
	}
	if cfg.HealthAfter <= 0 {
		cfg.HealthAfter = 2 * cfg.PollEvery
	}
	return &Subscriber{
		cfg:    cfg,
		clock:  cfg.Clock,
		zones:  make(map[dnswire.Name]*zoneSub),
		purged: make(map[cache.Key]time.Time),
	}
}

// Stats is a snapshot of the subscriber's counters.
type Stats struct {
	Notifies         uint64
	NotifyDups       uint64
	IXFR             uint64
	AXFRFallback     uint64
	Purged           uint64
	Refetches        uint64
	Subscribes       uint64
	SubscribeRetries uint64
	Polls            uint64
	PollRecoveries   uint64
	StaleDenied      uint64
}

// Stats snapshots the counters.
func (s *Subscriber) Stats() Stats {
	return Stats{
		Notifies:         s.notifies.Load(),
		NotifyDups:       s.notifyDups.Load(),
		IXFR:             s.ixfr.Load(),
		AXFRFallback:     s.axfrFallback.Load(),
		Purged:           s.purgedN.Load(),
		Refetches:        s.refetches.Load(),
		Subscribes:       s.subscribes.Load(),
		SubscribeRetries: s.subscribeRetries.Load(),
		Polls:            s.polls.Load(),
		PollRecoveries:   s.pollRecoveries.Load(),
		StaleDenied:      s.staleDenied.Load(),
	}
}

// PollEvery reports the effective SOA polling fallback period.
func (s *Subscriber) PollEvery() time.Duration { return s.cfg.PollEvery }

// Subscribe registers interest in origin served at server and attempts the
// subscription immediately; failures are retried from Tick under the
// configured RetryPolicy backoff.
func (s *Subscriber) Subscribe(origin dnswire.Name, server netip.Addr) {
	s.mu.Lock()
	zs := s.zones[origin]
	if zs == nil {
		zs = &zoneSub{origin: origin, server: server}
		s.zones[origin] = zs
	} else {
		zs.server = server
	}
	s.mu.Unlock()
	s.trySubscribe(zs)
}

// Healthy reports whether origin's subscription has heard from its
// authority within the health window.
func (s *Subscriber) Healthy(origin dnswire.Name) bool {
	s.mu.Lock()
	zs := s.zones[origin]
	s.mu.Unlock()
	if zs == nil {
		return false
	}
	now := s.clock.Now()
	s.mu.Lock()
	ok := s.healthyLocked(zs, now)
	s.mu.Unlock()
	return ok
}

func (s *Subscriber) healthyLocked(zs *zoneSub, now time.Time) bool {
	return zs.subscribed && !zs.lastSeen.IsZero() &&
		now.Sub(zs.lastSeen) < s.cfg.HealthAfter
}

// Tick advances the subscription manager to now: resubscribe attempts come
// due under the RetryPolicy backoff, and zones that have not heard from
// their authority for PollEvery get an SOA poll — the fallback that bounds
// staleness when the push channel drops notifies. Zones are visited in
// sorted order so simulated runs are deterministic.
func (s *Subscriber) Tick(now time.Time) {
	s.mu.Lock()
	origins := make([]dnswire.Name, 0, len(s.zones))
	for o := range s.zones {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	subs := make([]*zoneSub, len(origins))
	for i, o := range origins {
		subs[i] = s.zones[o]
	}
	s.mu.Unlock()
	for _, zs := range subs {
		s.mu.Lock()
		needSub := !zs.subscribed && !now.Before(zs.nextAttempt)
		needPoll := zs.subscribed && (zs.lastSeen.IsZero() || now.Sub(zs.lastSeen) >= s.cfg.PollEvery)
		s.mu.Unlock()
		if needSub {
			s.trySubscribe(zs)
		} else if needPoll {
			s.poll(zs)
		}
	}
}

// trySubscribe sends one subscription request; on success it adopts the
// answered serial (pulling any changes missed while unsubscribed).
func (s *Subscriber) trySubscribe(zs *zoneSub) {
	req := &dnswire.Message{
		Header: dnswire.Header{
			ID:     uint16(s.msgID.Add(1)),
			Opcode: dnswire.OpcodeNotify,
		},
		Question: []dnswire.Question{{Name: zs.origin, Type: TypeIXFR, Class: dnswire.ClassIN}},
	}
	if s.cfg.Port != 0 {
		req.AddAdditional(dnswire.RR{
			Name: zs.origin, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: uint32(s.cfg.Port), Data: dnswire.A{Addr: s.cfg.Addr},
		})
	}
	serial, err := s.exchangeForSOA(zs.server, req)
	now := s.clock.Now()
	if err != nil {
		s.mu.Lock()
		zs.failures++
		zs.nextAttempt = now.Add(s.cfg.Retry.BackoffFor(zs.failures))
		s.mu.Unlock()
		s.subscribeRetries.Add(1)
		s.cfg.Metrics.subscribeRetriesInc()
		return
	}
	s.mu.Lock()
	zs.subscribed = true
	zs.failures = 0
	zs.lastSeen = now
	prev := zs.serial
	firstContact := prev == 0
	if firstContact || serial <= prev {
		// First contact adopts the zone as-is; nothing cached under the
		// subscription predates it.
		zs.serial = serial
	}
	s.mu.Unlock()
	s.subscribes.Add(1)
	s.cfg.Metrics.subscribesInc()
	if !firstContact && serial > prev {
		s.pull(zs)
	}
}

// poll sends one SOA query; an advanced serial means notifies were lost and
// is recovered with a pull, a failed poll drops the subscription back into
// resubscribe/backoff.
func (s *Subscriber) poll(zs *zoneSub) {
	s.mu.Lock()
	if zs.pulling {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.polls.Add(1)
	s.cfg.Metrics.pollsInc()
	req := dnswire.NewIterativeQuery(uint16(s.msgID.Add(1)), zs.origin, dnswire.TypeSOA)
	serial, err := s.exchangeForSOA(zs.server, req)
	now := s.clock.Now()
	if err != nil {
		s.mu.Lock()
		zs.subscribed = false
		zs.failures++
		zs.nextAttempt = now.Add(s.cfg.Retry.BackoffFor(zs.failures))
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	zs.lastSeen = now
	behind := serial > zs.serial
	s.mu.Unlock()
	if behind {
		s.pollRecoveries.Add(1)
		s.cfg.Metrics.pollRecoveriesInc()
		s.pull(zs)
	}
}

// exchangeForSOA sends req to server and returns the serial of the SOA in
// the response's answer section.
func (s *Subscriber) exchangeForSOA(server netip.Addr, req *dnswire.Message) (uint32, error) {
	wire, err := dnswire.Encode(req)
	if err != nil {
		return 0, err
	}
	respWire, _, err := s.cfg.Net.Exchange(s.cfg.Addr, server, wire)
	if err != nil {
		return 0, err
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		return 0, err
	}
	if resp.Header.RCode != dnswire.RCodeNoError {
		return 0, fmt.Errorf("push: %s answered %s", server, resp.Header.RCode)
	}
	for _, rr := range resp.Answer {
		if soa, ok := rr.Data.(dnswire.SOA); ok {
			return soa.Serial, nil
		}
	}
	return 0, fmt.Errorf("push: response from %s carries no SOA", server)
}

// ServeDNS implements simnet.Handler: NOTIFYs arriving at the subscriber's
// address are acknowledged (RFC 1996 §4.7) and drive a pull; anything else
// is refused.
func (s *Subscriber) ServeDNS(wire []byte, from netip.Addr) []byte {
	return s.HandleNotifyWire(wire, from)
}

// HandleNotifyWire decodes one datagram, handles it if it is a NOTIFY, and
// returns the ack wire (nil for non-NOTIFY traffic). RecursiveServer routes
// NOTIFY-opcode datagrams here when push is enabled.
func (s *Subscriber) HandleNotifyWire(wire []byte, from netip.Addr) []byte {
	q, err := dnswire.Decode(wire)
	if err != nil {
		return nil
	}
	if q.Header.Opcode != dnswire.OpcodeNotify || q.Header.QR {
		return nil
	}
	s.handleNotify(q, from)
	ack := q.Reply()
	ack.Header.AA = true
	out, err := dnswire.Encode(ack)
	if err != nil {
		return nil
	}
	return out
}

// handleNotify books one NOTIFY: a new serial triggers a pull, an
// already-seen serial is acknowledged without purging (at-most-once purge
// per serial under duplicated or reordered notifies).
func (s *Subscriber) handleNotify(q *dnswire.Message, from netip.Addr) {
	origin := q.Q().Name
	var serial uint32
	for _, rr := range q.Answer {
		if soa, ok := rr.Data.(dnswire.SOA); ok {
			serial = soa.Serial
		}
	}
	s.notifies.Add(1)
	s.cfg.Metrics.notifiesInc()
	if t := s.cfg.QLog; t != nil {
		t.NotifyIn(from, origin, serial)
	}
	s.mu.Lock()
	zs := s.zones[origin]
	if zs == nil {
		s.mu.Unlock()
		return
	}
	zs.lastSeen = s.clock.Now()
	if serial != 0 && serial <= zs.serial {
		s.mu.Unlock()
		s.notifyDups.Add(1)
		s.cfg.Metrics.notifyDupsInc()
		return
	}
	if zs.pulling {
		// A pull is already in flight; it will land at the latest serial.
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.pull(zs)
}

// pull performs one IXFR exchange and applies the result to the stores.
// At most one pull per zone is in flight at a time.
func (s *Subscriber) pull(zs *zoneSub) {
	s.mu.Lock()
	if zs.pulling {
		s.mu.Unlock()
		return
	}
	zs.pulling = true
	fromSerial := zs.serial
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		zs.pulling = false
		s.mu.Unlock()
	}()

	req := dnswire.NewIterativeQuery(uint16(s.msgID.Add(1)), zs.origin, TypeIXFR)
	req.AddAuthority(dnswire.RR{
		Name: zs.origin, Type: dnswire.TypeSOA, Class: dnswire.ClassIN,
		Data: dnswire.SOA{MName: zs.origin, RName: zs.origin, Serial: fromSerial},
	})
	wire, err := dnswire.Encode(req)
	if err != nil {
		return
	}
	respWire, _, err := s.cfg.Net.Exchange(s.cfg.Addr, zs.server, wire)
	if err != nil {
		return
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil || resp.Header.RCode != dnswire.RCodeNoError {
		return
	}
	cur, changes, full, upToDate, err := parseIXFR(resp.Answer)
	if err != nil {
		return
	}
	now := s.clock.Now()
	switch {
	case upToDate || cur <= fromSerial:
		// Nothing to apply.
	case full != nil:
		s.axfrFallback.Add(1)
		s.cfg.Metrics.axfrFallbackInc()
		s.applyFull(zs.origin, now)
	default:
		s.ixfr.Add(1)
		s.cfg.Metrics.ixfrInc()
		s.applyChanges(zs.origin, changes, now)
	}
	s.mu.Lock()
	if cur > zs.serial {
		zs.serial = cur
	}
	zs.lastSeen = now
	s.mu.Unlock()
}

// applyChanges purges every (name, type) a delta touched — NS sets also
// purge their glue via the cache's O(glue) index — and refetches what was
// actually evicted when purge+prefetch is on.
func (s *Subscriber) applyChanges(origin dnswire.Name, changes []ChangeSet, now time.Time) {
	seen := make(map[cache.Key]struct{})
	var keys []cache.Key
	for _, cs := range changes {
		for _, sec := range [2][]dnswire.RR{cs.Del, cs.Add} {
			for _, rr := range sec {
				k := cache.Key{Name: rr.Name, Type: rr.Type}
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				keys = append(keys, k)
			}
		}
	}
	s.purgeKeys(keys, now)
}

// applyFull is the fallback path: with no delta to target, every cached key
// under the zone is purged.
func (s *Subscriber) applyFull(origin dnswire.Name, now time.Time) {
	seen := make(map[cache.Key]struct{})
	var keys []cache.Key
	for _, store := range s.cfg.Stores {
		for _, k := range store.Keys() {
			if !k.Name.IsSubdomainOf(origin) {
				continue
			}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Type < keys[j].Type
	})
	s.purgeKeys(keys, now)
}

// purgeKeys removes the keys from every store, records the purge instants
// for the stale gate, and refetches evicted keys in purge+prefetch mode.
func (s *Subscriber) purgeKeys(keys []cache.Key, now time.Time) {
	var refetch []cache.Key
	for _, k := range keys {
		removed := false
		for _, store := range s.cfg.Stores {
			if store.Remove(k.Name, k.Type) {
				removed = true
				s.purgedN.Add(1)
				s.cfg.Metrics.purgedInc()
			}
			if k.Type == dnswire.TypeNS {
				n := store.PurgeGlueOf(k.Name)
				if n > 0 {
					s.purgedN.Add(uint64(n))
					s.cfg.Metrics.purgedAdd(uint64(n))
				}
			}
		}
		if removed && k.Type != dnswire.TypeSOA {
			refetch = append(refetch, k)
		}
	}
	s.mu.Lock()
	for _, k := range keys {
		s.purged[k] = now
	}
	s.prunePurgedLocked(now)
	s.mu.Unlock()
	if fn := s.cfg.Refetch; fn != nil {
		for _, k := range refetch {
			s.refetches.Add(1)
			s.cfg.Metrics.refetchesInc()
			fn(k.Name, k.Type)
		}
	}
}

// prunePurgedLocked bounds the purge-instant map: once it outgrows 4096
// entries, stamps older than an hour are dropped — far past any serve-stale
// window they could still veto.
func (s *Subscriber) prunePurgedLocked(now time.Time) {
	if len(s.purged) <= 4096 {
		return
	}
	cutoff := now.Add(-time.Hour)
	for k, t := range s.purged {
		if t.Before(cutoff) {
			delete(s.purged, k)
		}
	}
}

// AllowStale implements resolver.StaleGate. Names outside any subscribed
// zone pass through; a covered name is denied when its subscription is
// unhealthy (missed purges are possible) or when the entry predates a
// recorded purge of that key (known-superseded data).
func (s *Subscriber) AllowStale(name dnswire.Name, qtype dnswire.Type, storedAt time.Time) bool {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var zs *zoneSub
	for n := name; ; n = n.Parent() {
		if sub, ok := s.zones[n]; ok {
			zs = sub
			break
		}
		if n.IsRoot() {
			break
		}
	}
	if zs == nil {
		return true
	}
	if !s.healthyLocked(zs, now) {
		s.staleDenied.Add(1)
		s.cfg.Metrics.staleDeniedInc()
		return false
	}
	if t, ok := s.purged[cache.Key{Name: name, Type: qtype}]; ok && !storedAt.After(t) {
		s.staleDenied.Add(1)
		s.cfg.Metrics.staleDeniedInc()
		return false
	}
	return true
}

// parseIXFR classifies an IXFR answer section: up to date (lone SOA),
// incremental (second record is an SOA: RFC 1995 Del/Add sections), or the
// AXFR-shaped full zone (full != nil holds the zone's non-SOA records).
func parseIXFR(ans []dnswire.RR) (cur uint32, changes []ChangeSet, full []dnswire.RR, upToDate bool, err error) {
	if len(ans) == 0 {
		return 0, nil, nil, false, fmt.Errorf("push: empty transfer response")
	}
	head, ok := ans[0].Data.(dnswire.SOA)
	if !ok || ans[0].Type != dnswire.TypeSOA {
		return 0, nil, nil, false, fmt.Errorf("push: transfer not SOA-framed")
	}
	cur = head.Serial
	if len(ans) == 1 {
		return cur, nil, nil, true, nil
	}
	if ans[1].Type != dnswire.TypeSOA {
		if ans[len(ans)-1].Type != dnswire.TypeSOA {
			return 0, nil, nil, false, fmt.Errorf("push: full transfer missing trailing SOA")
		}
		return cur, nil, ans[1 : len(ans)-1], false, nil
	}
	i := 1
	for i < len(ans) {
		soa, ok := ans[i].Data.(dnswire.SOA)
		if !ok || ans[i].Type != dnswire.TypeSOA {
			return 0, nil, nil, false, fmt.Errorf("push: delta section not led by SOA")
		}
		if i == len(ans)-1 {
			if soa.Serial != cur {
				return 0, nil, nil, false, fmt.Errorf("push: trailing SOA serial %d != %d", soa.Serial, cur)
			}
			break
		}
		cs := ChangeSet{From: soa.Serial, Del: []dnswire.RR{ans[i]}}
		i++
		for i < len(ans) && ans[i].Type != dnswire.TypeSOA {
			cs.Del = append(cs.Del, ans[i])
			i++
		}
		if i >= len(ans) {
			return 0, nil, nil, false, fmt.Errorf("push: delta missing add section")
		}
		addSOA, ok := ans[i].Data.(dnswire.SOA)
		if !ok {
			return 0, nil, nil, false, fmt.Errorf("push: add section not led by SOA")
		}
		cs.To = addSOA.Serial
		cs.Add = []dnswire.RR{ans[i]}
		i++
		for i < len(ans) && ans[i].Type != dnswire.TypeSOA {
			cs.Add = append(cs.Add, ans[i])
			i++
		}
		changes = append(changes, cs)
	}
	if len(changes) == 0 {
		return cur, nil, nil, true, nil
	}
	return cur, changes, nil, false, nil
}

// Nil-safe increment helpers mirroring into the registry bundle.
func (m *Metrics) notifiesInc() {
	if m != nil {
		m.Notifies.Inc()
	}
}
func (m *Metrics) notifyDupsInc() {
	if m != nil {
		m.NotifyDups.Inc()
	}
}
func (m *Metrics) ixfrInc() {
	if m != nil {
		m.IXFR.Inc()
	}
}
func (m *Metrics) axfrFallbackInc() {
	if m != nil {
		m.AXFRFallback.Inc()
	}
}
func (m *Metrics) purgedInc() {
	if m != nil {
		m.Purged.Inc()
	}
}
func (m *Metrics) purgedAdd(n uint64) {
	if m != nil {
		m.Purged.Add(n)
	}
}
func (m *Metrics) refetchesInc() {
	if m != nil {
		m.Refetches.Inc()
	}
}
func (m *Metrics) subscribesInc() {
	if m != nil {
		m.Subscribes.Inc()
	}
}
func (m *Metrics) subscribeRetriesInc() {
	if m != nil {
		m.SubscribeRetries.Inc()
	}
}
func (m *Metrics) pollsInc() {
	if m != nil {
		m.Polls.Inc()
	}
}
func (m *Metrics) pollRecoveriesInc() {
	if m != nil {
		m.PollRecoveries.Inc()
	}
}
func (m *Metrics) staleDeniedInc() {
	if m != nil {
		m.StaleDenied.Inc()
	}
}
