package push

import (
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/cache"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

var (
	authAddr = netip.MustParseAddr("192.0.2.53")
	subAddr  = netip.MustParseAddr("192.0.2.10")
)

func testZone() *zone.Zone {
	z := zone.New(dnswire.NewName("example.org"))
	z.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "admin.example.org", 1, 7200, 3600, 1209600, 300),
		dnswire.NewNS("example.org", 3600, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 3600, "192.0.2.53"),
		dnswire.NewA("www.example.org", 300, "192.0.2.80"),
	)
	return z
}

// world wires one authoritative server with a push authority to one
// subscriber over a simulated network.
type world struct {
	net   *simnet.Network
	clock *simnet.VirtualClock
	zone  *zone.Zone
	feed  *Feed
	auth  *Authority
	srv   *authoritative.Server
	sub   *Subscriber
	store cache.Store
}

func newWorld(t *testing.T, history int, mut func(cfg *Config)) *world {
	t.Helper()
	net := simnet.NewNetwork(1)
	clock := simnet.NewVirtualClock()
	z := testZone()
	f, err := NewFeed(z, history)
	if err != nil {
		t.Fatal(err)
	}
	auth := NewAuthority()
	auth.Send = func(dst netip.AddrPort, wire []byte) error {
		_, _, err := net.Exchange(authAddr, dst.Addr(), wire)
		return err
	}
	auth.AddFeed(f)
	srv := authoritative.NewServer(dnswire.NewName("ns1.example.org"), clock)
	srv.AddZone(z)
	srv.Push = auth
	net.Attach(authAddr, srv)
	cfg := Config{
		Addr:      subAddr,
		Net:       net,
		Clock:     clock,
		Stores:    []cache.Store{cache.New(clock, cache.Config{ServeStale: true})},
		PollEvery: time.Minute,
	}
	if mut != nil {
		mut(&cfg)
	}
	sub := NewSubscriber(cfg)
	net.Attach(subAddr, sub)
	return &world{
		net: net, clock: clock, zone: z, feed: f, auth: auth,
		srv: srv, sub: sub, store: cfg.Stores[0],
	}
}

func putA(store cache.Store, name string, ttl uint32) {
	n := dnswire.NewName(name)
	store.Put(cache.Entry{
		Key: cache.Key{Name: n, Type: dnswire.TypeA},
		RRs: []dnswire.RR{dnswire.NewA(name, ttl, "192.0.2.80")},
		TTL: ttl,
	})
}

func cached(store cache.Store, name string) bool {
	_, _, ok := store.Get(dnswire.NewName(name), dnswire.TypeA)
	return ok
}

// randomMutate applies one random zone mutation. uniq feeds the address
// generator so Adds never collide with an existing RDATA (a duplicate Add is
// a no-op and fires no change).
func randomMutate(z *zone.Zone, rng *rand.Rand, uniq *int) {
	host := fmt.Sprintf("host%d.example.org", rng.Intn(8))
	n := dnswire.NewName(host)
	switch rng.Intn(4) {
	case 0:
		*uniq++
		_ = z.Add(dnswire.NewA(host, 60, fmt.Sprintf("10.%d.%d.%d", *uniq/62500%200, *uniq/250%250, 1+*uniq%250)))
	case 1:
		z.Remove(n, dnswire.TypeA)
	case 2:
		*uniq++
		_ = z.Replace(n, dnswire.TypeA, dnswire.NewA(host, 120, fmt.Sprintf("10.%d.%d.%d", *uniq/62500%200, *uniq/250%250, 1+*uniq%250)))
	case 3:
		z.SetTTL(n, dnswire.TypeA, uint32(30+rng.Intn(600)))
	}
}

// TestFeedSerialMonotonic is the property test for serial allocation: every
// effective mutation advances the serial by exactly one, the zone's SOA
// always carries the feed's serial, and the history is a gapless chain.
func TestFeedSerialMonotonic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		z := testZone()
		f, err := NewFeed(z, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		uniq := 0
		for i := 0; i < 300; i++ {
			randomMutate(z, rng, &uniq)
			if got, want := z.Serial(), f.Serial(); got != want {
				t.Fatalf("seed %d: zone serial %d != feed serial %d", seed, got, want)
			}
		}
		changes, ok := f.ChangesSince(1)
		if !ok {
			t.Fatalf("seed %d: history does not cover serial 1", seed)
		}
		want := uint32(1)
		for _, cs := range changes {
			if cs.From != want || cs.To != want+1 {
				t.Fatalf("seed %d: change set %d->%d, want %d->%d", seed, cs.From, cs.To, want, want+1)
			}
			want++
		}
		if want != f.Serial() {
			t.Fatalf("seed %d: chain ends at %d, feed serial %d", seed, want, f.Serial())
		}
	}
}

func rrString(rr dnswire.RR) string {
	return fmt.Sprintf("%s|%d|%d|%v", rr.Name, uint16(rr.Type), rr.TTL, rr.Data)
}

func setKey(rr dnswire.RR) string {
	return fmt.Sprintf("%s|%d", rr.Name, uint16(rr.Type))
}

func zoneState(z *zone.Zone) map[string][]string {
	state := make(map[string][]string)
	for _, set := range z.AllSets() {
		for _, rr := range set.RRs {
			state[setKey(rr)] = append(state[setKey(rr)], rrString(rr))
		}
	}
	for _, v := range state {
		sort.Strings(v)
	}
	return state
}

func applyChangeSets(state map[string][]string, changes []ChangeSet) error {
	for _, cs := range changes {
		for _, rr := range cs.Del {
			k, s := setKey(rr), rrString(rr)
			idx := -1
			for i, have := range state[k] {
				if have == s {
					idx = i
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("delta %d->%d deletes %s which is not present", cs.From, cs.To, s)
			}
			state[k] = append(state[k][:idx], state[k][idx+1:]...)
			if len(state[k]) == 0 {
				delete(state, k)
			}
		}
		for _, rr := range cs.Add {
			state[setKey(rr)] = append(state[setKey(rr)], rrString(rr))
		}
	}
	for _, v := range state {
		sort.Strings(v)
	}
	return nil
}

// TestDeltaEquivalence is the property test for delta application: replaying
// the IXFR history onto a snapshot of the zone reproduces the zone's final
// state exactly, for random mutation sequences — including an apex SOA
// replace, whose serial the feed overrides.
func TestDeltaEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 11, 99} {
		z := testZone()
		f, err := NewFeed(z, 0)
		if err != nil {
			t.Fatal(err)
		}
		shadow := zoneState(z)
		rng := rand.New(rand.NewSource(seed))
		uniq := 0
		for i := 0; i < 200; i++ {
			randomMutate(z, rng, &uniq)
		}
		// An out-of-band SOA replace: the writer's serial (999) must be
		// overridden by the feed's stamp in both zone and delta.
		if err := z.Replace(z.Origin, dnswire.TypeSOA,
			dnswire.NewSOA("example.org", 1800, "ns2.example.org", "admin.example.org", 999, 7200, 3600, 1209600, 300)); err != nil {
			t.Fatal(err)
		}
		changes, ok := f.ChangesSince(1)
		if !ok {
			t.Fatalf("seed %d: history does not cover serial 1", seed)
		}
		if err := applyChangeSets(shadow, changes); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := zoneState(z); !reflect.DeepEqual(shadow, got) {
			t.Fatalf("seed %d: delta replay diverged from zone state\nreplayed: %v\nzone:     %v", seed, shadow, got)
		}
	}
}

// TestChangesSinceEdges pins the coverage contract.
func TestChangesSinceEdges(t *testing.T) {
	z := testZone()
	f, err := NewFeed(z, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cs, ok := f.ChangesSince(1); !ok || cs != nil {
		t.Fatalf("up-to-date ChangesSince = %v, %v", cs, ok)
	}
	if _, ok := f.ChangesSince(9); ok {
		t.Fatal("future serial reported covered")
	}
	for i := 0; i < 5; i++ {
		z.MustAdd(dnswire.NewA("www.example.org", 300, fmt.Sprintf("192.0.2.%d", 100+i)))
	}
	if _, ok := f.ChangesSince(1); ok {
		t.Fatal("serial past the trimmed history reported covered")
	}
	if cs, ok := f.ChangesSince(4); !ok || len(cs) != 2 {
		t.Fatalf("ChangesSince(4) = %d sets, %v; want 2, true", len(cs), ok)
	}
}

// TestPushPurgeOnNotify walks the full simulated pipeline: zone mutation ->
// feed -> NOTIFY -> subscriber pull -> IXFR -> targeted purge + refetch.
func TestPushPurgeOnNotify(t *testing.T) {
	var refetched []cache.Key
	w := newWorld(t, 0, func(cfg *Config) {
		cfg.Refetch = func(name dnswire.Name, qtype dnswire.Type) {
			refetched = append(refetched, cache.Key{Name: name, Type: qtype})
		}
	})
	putA(w.store, "www.example.org", 300)
	putA(w.store, "ns1.example.org", 3600)

	w.sub.Subscribe(w.zone.Origin, authAddr)
	if got := w.sub.Stats().Subscribes; got != 1 {
		t.Fatalf("Subscribes = %d", got)
	}
	if !w.sub.Healthy(w.zone.Origin) {
		t.Fatal("fresh subscription not healthy")
	}

	www := dnswire.NewName("www.example.org")
	if err := w.zone.Replace(www, dnswire.TypeA, dnswire.NewA("www.example.org", 300, "192.0.2.81")); err != nil {
		t.Fatal(err)
	}

	if cached(w.store, "www.example.org") {
		t.Fatal("www.example.org A survived the notify purge")
	}
	if !cached(w.store, "ns1.example.org") {
		t.Fatal("untouched ns1.example.org A was purged")
	}
	st := w.sub.Stats()
	if st.Notifies != 1 || st.IXFR != 1 || st.Purged != 1 || st.AXFRFallback != 0 {
		t.Fatalf("subscriber stats = %+v", st)
	}
	if len(refetched) != 1 || refetched[0].Name != www || refetched[0].Type != dnswire.TypeA {
		t.Fatalf("refetched = %v, want exactly www/A", refetched)
	}
	as := w.auth.Stats()
	if as.Changes != 1 || as.Notifies != 1 || as.IXFRServed != 1 || as.Subscribers != 1 {
		t.Fatalf("authority stats = %+v", as)
	}
}

// TestNotifyAtMostOnce pins the at-most-once purge guarantee: duplicated and
// reordered notifies are acknowledged but never purge a serial twice.
func TestNotifyAtMostOnce(t *testing.T) {
	w := newWorld(t, 0, nil)
	putA(w.store, "www.example.org", 300)
	w.sub.Subscribe(w.zone.Origin, authAddr)

	www := dnswire.NewName("www.example.org")
	if err := w.zone.Replace(www, dnswire.TypeA, dnswire.NewA("www.example.org", 300, "192.0.2.81")); err != nil {
		t.Fatal(err)
	}
	base := w.sub.Stats()
	if base.Purged != 1 || base.IXFR != 1 {
		t.Fatalf("setup stats = %+v", base)
	}

	// The resolver re-resolves; the entry is cached again.
	putA(w.store, "www.example.org", 300)

	notifyAt := func(serial uint32) []byte {
		soa, ok := w.zone.SOA()
		if !ok {
			t.Fatal("zone lost its SOA")
		}
		data := soa.Data.(dnswire.SOA)
		data.Serial = serial
		soa.Data = data
		m := &dnswire.Message{
			Header:   dnswire.Header{ID: 7777, Opcode: dnswire.OpcodeNotify, AA: true},
			Question: []dnswire.Question{{Name: w.zone.Origin, Type: dnswire.TypeSOA, Class: dnswire.ClassIN}},
		}
		m.AddAnswer(soa)
		wire, err := dnswire.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}

	// Duplicate the current-serial notify three times, then replay the
	// pre-change serial (a reordered stale notify).
	cur := w.feed.Serial()
	for i := 0; i < 3; i++ {
		ack := w.sub.ServeDNS(notifyAt(cur), authAddr)
		resp, err := dnswire.Decode(ack)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Header.QR || resp.Header.Opcode != dnswire.OpcodeNotify || !resp.Header.AA {
			t.Fatalf("notify ack header = %+v", resp.Header)
		}
	}
	w.sub.ServeDNS(notifyAt(cur-1), authAddr)

	st := w.sub.Stats()
	if st.NotifyDups != 4 {
		t.Fatalf("NotifyDups = %d, want 4", st.NotifyDups)
	}
	if st.Purged != base.Purged || st.IXFR != base.IXFR {
		t.Fatalf("replayed notifies purged again: %+v (base %+v)", st, base)
	}
	if !cached(w.store, "www.example.org") {
		t.Fatal("replayed notify purged the re-resolved entry")
	}
}

// TestPollRecovery pins the fallback: with the push channel dead, the SOA
// poll detects the advanced serial and recovers the purge via IXFR.
func TestPollRecovery(t *testing.T) {
	w := newWorld(t, 0, nil)
	w.auth.Send = nil // push channel drops every notify
	putA(w.store, "www.example.org", 300)
	w.sub.Subscribe(w.zone.Origin, authAddr)

	www := dnswire.NewName("www.example.org")
	if err := w.zone.Replace(www, dnswire.TypeA, dnswire.NewA("www.example.org", 300, "192.0.2.81")); err != nil {
		t.Fatal(err)
	}
	if !cached(w.store, "www.example.org") {
		t.Fatal("entry purged although no notify could have arrived")
	}

	w.clock.Advance(time.Minute)
	w.sub.Tick(w.clock.Now())

	st := w.sub.Stats()
	if st.Polls != 1 || st.PollRecoveries != 1 || st.IXFR != 1 {
		t.Fatalf("stats after poll = %+v", st)
	}
	if cached(w.store, "www.example.org") {
		t.Fatal("poll recovery did not purge the stale entry")
	}
}

// TestAXFRFallback pins the full-zone path: a subscriber further behind than
// the feed's history gets the AXFR-shaped transfer and purges everything it
// cached under the zone — and nothing outside it.
func TestAXFRFallback(t *testing.T) {
	w := newWorld(t, 2, nil)
	w.auth.Send = nil
	putA(w.store, "www.example.org", 300)
	putA(w.store, "unrelated.test", 300)
	w.sub.Subscribe(w.zone.Origin, authAddr)

	for i := 0; i < 5; i++ {
		w.zone.MustAdd(dnswire.NewA("www.example.org", 300, fmt.Sprintf("192.0.2.%d", 100+i)))
	}

	w.clock.Advance(time.Minute)
	w.sub.Tick(w.clock.Now())

	st := w.sub.Stats()
	if st.AXFRFallback != 1 || st.IXFR != 0 {
		t.Fatalf("stats after fallback = %+v", st)
	}
	if cached(w.store, "www.example.org") {
		t.Fatal("full fallback left a zone entry cached")
	}
	if !cached(w.store, "unrelated.test") {
		t.Fatal("full fallback purged an out-of-zone entry")
	}
	if got := w.auth.Stats().AXFRServed; got != 1 {
		t.Fatalf("authority AXFRServed = %d", got)
	}
}

// TestSubscribeRetryBackoff pins the resubscribe lifecycle under the
// resolver's RetryPolicy: failures back off exponentially, success restores
// health, and a zone the authority does not feed is refused.
func TestSubscribeRetryBackoff(t *testing.T) {
	net := simnet.NewNetwork(1)
	clock := simnet.NewVirtualClock()
	sub := NewSubscriber(Config{
		Addr:  subAddr,
		Net:   net,
		Clock: clock,
		Retry: resolver.RetryPolicy{Backoff: 10 * time.Second},
	})
	origin := dnswire.NewName("example.org")

	// Nothing is attached at the authority address yet: every attempt fails.
	sub.Subscribe(origin, authAddr)
	if got := sub.Stats().SubscribeRetries; got != 1 {
		t.Fatalf("SubscribeRetries = %d", got)
	}
	if sub.Healthy(origin) {
		t.Fatal("failed subscription reported healthy")
	}

	// Before the 10 s backoff elapses, Tick must not retry.
	sub.Tick(clock.Now())
	if got := sub.Stats().SubscribeRetries; got != 1 {
		t.Fatalf("Tick retried inside the backoff window: %d", got)
	}
	clock.Advance(10 * time.Second)
	sub.Tick(clock.Now())
	if got := sub.Stats().SubscribeRetries; got != 2 {
		t.Fatalf("SubscribeRetries after backoff = %d", got)
	}

	// The authority comes up; the next due attempt (backoff now 20 s)
	// succeeds and the subscription is healthy again.
	z := testZone()
	f, err := NewFeed(z, 0)
	if err != nil {
		t.Fatal(err)
	}
	auth := NewAuthority()
	auth.AddFeed(f)
	srv := authoritative.NewServer(dnswire.NewName("ns1.example.org"), clock)
	srv.AddZone(z)
	srv.Push = auth
	net.Attach(authAddr, srv)

	clock.Advance(20 * time.Second)
	sub.Tick(clock.Now())
	st := sub.Stats()
	if st.Subscribes != 1 || st.SubscribeRetries != 2 {
		t.Fatalf("stats after recovery = %+v", st)
	}
	if !sub.Healthy(origin) {
		t.Fatal("recovered subscription not healthy")
	}

	// A zone this authority does not feed is refused and retried.
	sub.Subscribe(dnswire.NewName("other.org"), authAddr)
	if got := sub.Stats().SubscribeRetries; got != 3 {
		t.Fatalf("refused subscription not booked as retry: %d", got)
	}
}

// TestAllowStale pins the stale-gate semantics: names outside any
// subscription pass through, purged entries older than their purge are
// vetoed, and an unhealthy subscription vetoes everything it covers.
func TestAllowStale(t *testing.T) {
	w := newWorld(t, 0, nil)
	w.sub.Subscribe(w.zone.Origin, authAddr)
	www := dnswire.NewName("www.example.org")
	epoch := w.clock.Now()

	if !w.sub.AllowStale(dnswire.NewName("www.example.com"), dnswire.TypeA, epoch) {
		t.Fatal("uncovered name was vetoed")
	}
	if !w.sub.AllowStale(www, dnswire.TypeA, epoch) {
		t.Fatal("healthy un-purged name was vetoed")
	}

	putA(w.store, "www.example.org", 300)
	if err := w.zone.Replace(www, dnswire.TypeA, dnswire.NewA("www.example.org", 300, "192.0.2.81")); err != nil {
		t.Fatal(err)
	}
	// Stored at or before the purge instant: known-superseded, vetoed.
	if w.sub.AllowStale(www, dnswire.TypeA, epoch) {
		t.Fatal("purged entry was served stale")
	}
	// Stored after the purge: fresh data, allowed.
	if !w.sub.AllowStale(www, dnswire.TypeA, epoch.Add(time.Second)) {
		t.Fatal("entry stored after the purge was vetoed")
	}
	if got := w.sub.Stats().StaleDenied; got != 1 {
		t.Fatalf("StaleDenied = %d", got)
	}

	// No contact for HealthAfter (2 x PollEvery): the subscription goes
	// unhealthy and every covered name is vetoed, purged or not.
	w.clock.Advance(3 * time.Minute)
	if w.sub.AllowStale(dnswire.NewName("other.example.org"), dnswire.TypeA, w.clock.Now()) {
		t.Fatal("unhealthy subscription allowed serve-stale")
	}
	if got := w.sub.Stats().StaleDenied; got != 2 {
		t.Fatalf("StaleDenied = %d", got)
	}
}

// TestPushRaceHammer drives concurrent zone mutations, notify fan-out, cache
// reads, stale-gate checks, and subscription ticks across 16 frontend stores.
// Run with -race; the assertions are deliberately light — the test's job is
// to surface data races and lock-order deadlocks.
func TestPushRaceHammer(t *testing.T) {
	clock := simnet.NewVirtualClock()
	stores := make([]cache.Store, 16)
	for i := range stores {
		stores[i] = cache.New(clock, cache.Config{ServeStale: true})
	}
	w := newWorld(t, 0, func(cfg *Config) {
		cfg.Clock = clock
		cfg.Stores = stores
	})
	w.sub.Subscribe(w.zone.Origin, authAddr)
	for _, store := range stores {
		for i := 0; i < 8; i++ {
			putA(store, fmt.Sprintf("host%d.example.org", i), 300)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				host := fmt.Sprintf("host%d.example.org", i%8)
				_ = w.zone.Replace(dnswire.NewName(host), dnswire.TypeA,
					dnswire.NewA(host, 300, fmt.Sprintf("10.%d.%d.%d", g, i, 1+(g*30+i)%250)))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := dnswire.NewName(fmt.Sprintf("host%d.example.org", i%8))
				stores[(g*200+i)%len(stores)].Get(name, dnswire.TypeA)
				w.sub.AllowStale(name, dnswire.TypeA, clock.Now())
				w.sub.Healthy(w.zone.Origin)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				w.sub.Tick(clock.Now())
			}
		}()
	}
	wg.Wait()

	if got, want := w.zone.Serial(), w.feed.Serial(); got != want {
		t.Fatalf("zone serial %d != feed serial %d after hammer", got, want)
	}
	if w.sub.Stats().Notifies == 0 {
		t.Fatal("hammer delivered no notifies")
	}
	// Converge: one final poll must leave the subscriber at the feed's serial
	// (a trailing notify may have been suppressed by an in-flight pull).
	w.clock.Advance(time.Minute)
	w.sub.Tick(w.clock.Now())
	if !w.sub.Healthy(w.zone.Origin) {
		t.Fatal("subscription unhealthy after hammer")
	}
}
