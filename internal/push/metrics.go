package push

import "dnsttl/internal/obs"

// Metric names the push plane registers. The push.* prefix is the
// subscriber (resolver) side; push.feed_* is the authority side.
const (
	// MetricNotifies counts NOTIFY messages arriving at the subscriber.
	MetricNotifies = "push.notifies"
	// MetricNotifyDups counts NOTIFYs carrying an already-seen serial —
	// duplicates and reorders acknowledged without a second purge.
	MetricNotifyDups = "push.notify_dups"
	// MetricIXFR counts incremental delta pulls completed.
	MetricIXFR = "push.ixfr"
	// MetricAXFRFallback counts pulls answered with the full-zone fallback
	// because the feed's history no longer covered our serial.
	MetricAXFRFallback = "push.axfr_fallback"
	// MetricPurged counts cache entries removed by applied change sets.
	MetricPurged = "push.purged"
	// MetricRefetches counts purge+prefetch re-resolutions triggered.
	MetricRefetches = "push.refetches"
	// MetricSubscribes counts successful zone subscriptions.
	MetricSubscribes = "push.subscribes"
	// MetricSubscribeRetries counts failed subscription attempts (retried
	// under the resolver's RetryPolicy backoff).
	MetricSubscribeRetries = "push.subscribe_retries"
	// MetricPolls counts SOA fallback polls sent when notifies go quiet.
	MetricPolls = "push.polls"
	// MetricPollRecoveries counts polls that found an advanced serial —
	// changes the push channel lost, recovered via polling.
	MetricPollRecoveries = "push.poll_recoveries"
	// MetricStaleDenied counts serve-stale answers vetoed because the name
	// was purged or its subscription was unhealthy.
	MetricStaleDenied = "push.stale_denied"

	// MetricFeedChanges counts zone change sets committed to feeds.
	MetricFeedChanges = "push.feed_changes"
	// MetricFeedNotifies counts NOTIFY messages fanned out to subscribers.
	MetricFeedNotifies = "push.feed_notifies"
	// MetricFeedSubscribers gauges the current subscriber registrations.
	MetricFeedSubscribers = "push.feed_subscribers"
	// MetricFeedIXFRServed counts incremental transfers served.
	MetricFeedIXFRServed = "push.feed_ixfr_served"
	// MetricFeedAXFRServed counts full-zone fallback transfers served.
	MetricFeedAXFRServed = "push.feed_axfr_served"
)

// Metrics is the subscriber-side counter bundle. All handles are nil-safe,
// so a Subscriber without a registry pays one pointer check per event.
type Metrics struct {
	Notifies         *obs.Counter
	NotifyDups       *obs.Counter
	IXFR             *obs.Counter
	AXFRFallback     *obs.Counter
	Purged           *obs.Counter
	Refetches        *obs.Counter
	Subscribes       *obs.Counter
	SubscribeRetries *obs.Counter
	Polls            *obs.Counter
	PollRecoveries   *obs.Counter
	StaleDenied      *obs.Counter
}

// NewMetrics resolves the subscriber bundle against reg (nil reg yields
// nil-safe no-op handles).
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Notifies:         reg.Counter(MetricNotifies),
		NotifyDups:       reg.Counter(MetricNotifyDups),
		IXFR:             reg.Counter(MetricIXFR),
		AXFRFallback:     reg.Counter(MetricAXFRFallback),
		Purged:           reg.Counter(MetricPurged),
		Refetches:        reg.Counter(MetricRefetches),
		Subscribes:       reg.Counter(MetricSubscribes),
		SubscribeRetries: reg.Counter(MetricSubscribeRetries),
		Polls:            reg.Counter(MetricPolls),
		PollRecoveries:   reg.Counter(MetricPollRecoveries),
		StaleDenied:      reg.Counter(MetricStaleDenied),
	}
}

// AuthorityMetrics is the authority-side counter bundle.
type AuthorityMetrics struct {
	Changes    *obs.Counter
	Notifies   *obs.Counter
	IXFRServed *obs.Counter
	AXFRServed *obs.Counter
}

// NewAuthorityMetrics resolves the authority bundle against reg.
func NewAuthorityMetrics(reg *obs.Registry) *AuthorityMetrics {
	return &AuthorityMetrics{
		Changes:    reg.Counter(MetricFeedChanges),
		Notifies:   reg.Counter(MetricFeedNotifies),
		IXFRServed: reg.Counter(MetricFeedIXFRServed),
		AXFRServed: reg.Counter(MetricFeedAXFRServed),
	}
}
