// Package push is the change-feed plane: the third axis of the paper's
// "what TTL should operators pick" question. Instead of buying freshness
// with short TTLs (§5's update-latency/query-volume tension), authoritative
// zones publish versioned change sets — a zone serial plus per-name
// add/remove deltas, NOTIFY/IXFR-shaped (RFC 1996/1995) — and resolvers
// subscribe per zone. An incoming NOTIFY drives a targeted cache purge
// (reusing the cache's O(glue) PurgeGlueOf index for delegation changes),
// optionally followed by an immediate re-resolve ("purge+prefetch"), so
// long-TTL zones propagate updates at notify latency instead of TTL expiry.
//
// The plane has two halves. Feed watches one zone's mutations (via
// zone.SetWatcher), allocates monotone serials, and keeps a bounded
// IXFR-style history. Authority owns the wire protocol on the server:
// subscription requests (a NOTIFY-opcode query for type IXFR), NOTIFY
// fan-out to subscribers on every change, and SOA-framed IXFR responses
// with an AXFR-shaped full-zone fallback when the history no longer covers
// a client's serial. Subscriber is the resolver side: it subscribes with
// resubscribe backoff under the resolver's RetryPolicy, applies deltas as
// cache purges across one or many stores (a farm's frontends), falls back
// to SOA polling when notifies stop arriving, and vetoes RFC 8767
// serve-stale for names it knows to be superseded (resolver.StaleGate).
//
// Everything is deterministic: message IDs come from atomic counters, no
// RNG is consumed, and both halves run under simnet's virtual clock, so
// the propagation experiments (internal/experiments/pushprop.go) replay
// byte-identically at any worker count.
package push

import "dnsttl/internal/dnswire"

// TypeIXFR is the incremental zone-transfer query type (RFC 1995). A
// subscriber pulls deltas with an IXFR query carrying its current SOA in
// the authority section; TypeAXFR (internal/authoritative) is the
// full-transfer fallback framing.
const TypeIXFR = dnswire.Type(251)
