package push

import (
	"fmt"
	"sync"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/zone"
)

// ChangeSet is one serial step of a zone: applying it to a copy of the zone
// at serial From yields the zone at serial To. Del and Add are RFC 1995
// sections: each begins with the SOA at the section's serial (From for Del,
// To for Add), followed by the records the mutation removed or added.
type ChangeSet struct {
	From uint32
	To   uint32
	Del  []dnswire.RR
	Add  []dnswire.RR
}

// DefaultHistory bounds a feed's retained change sets when NewFeed is given
// no explicit limit. A subscriber further behind than the history covers
// gets the full-zone fallback instead of deltas.
const DefaultHistory = 1024

// Feed versions one zone: it watches mutations, allocates monotone serials,
// stamps them into the zone's SOA, and retains a bounded IXFR history.
// Install it on an Authority to fan NOTIFYs out to subscribers.
type Feed struct {
	zone *zone.Zone
	max  int

	mu      sync.Mutex
	serial  uint32
	history []ChangeSet
	// onChange fires after a change set is committed, outside mu, so the
	// Authority's notify fan-out can trigger reentrant IXFR reads.
	onChange func(origin dnswire.Name, serial uint32)
}

// NewFeed versions z, which must carry an SOA (the serial source). The
// feed installs itself as the zone's watcher; maxHistory <= 0 means
// DefaultHistory.
func NewFeed(z *zone.Zone, maxHistory int) (*Feed, error) {
	rr, ok := z.SOA()
	if !ok {
		return nil, fmt.Errorf("push: zone %s has no SOA to version", z.Origin)
	}
	if _, ok := rr.Data.(dnswire.SOA); !ok {
		return nil, fmt.Errorf("push: zone %s SOA has undecoded RDATA", z.Origin)
	}
	if maxHistory <= 0 {
		maxHistory = DefaultHistory
	}
	f := &Feed{zone: z, max: maxHistory, serial: z.Serial()}
	z.SetWatcher(f.record)
	return f, nil
}

// Origin returns the fed zone's apex.
func (f *Feed) Origin() dnswire.Name { return f.zone.Origin }

// Zone returns the zone this feed versions.
func (f *Feed) Zone() *zone.Zone { return f.zone }

// Serial returns the feed's current serial.
func (f *Feed) Serial() uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.serial
}

// setOnChange installs the post-commit callback (Authority.AddFeed).
func (f *Feed) setOnChange(fn func(origin dnswire.Name, serial uint32)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.onChange = fn
}

// record is the zone watcher: it turns one committed mutation into one
// serial step. It runs with the zone unlocked but mutations serialized
// (zone.SetWatcher's contract), so reading the zone's SOA here is safe and
// the history order matches commit order exactly.
func (f *Feed) record(ch zone.Change) {
	f.mu.Lock()
	from := f.serial
	to := from + 1
	f.serial = to

	cs := ChangeSet{From: from, To: to}
	if ch.Name == f.zone.Origin && ch.Type == dnswire.TypeSOA {
		// The mutation replaced the SOA itself; the feed's serial stamp
		// (SetSerial below) overrides whatever serial the writer supplied.
		cs.Del = cloneRRs(ch.Old)
		cs.Add = withSerial(cloneRRs(ch.New), to)
	} else {
		soa, ok := f.soaAt(from)
		if ok {
			cs.Del = append(cs.Del, soa)
		}
		cs.Del = append(cs.Del, ch.Old...)
		if ok {
			cs.Add = append(cs.Add, withSerial([]dnswire.RR{soa}, to)...)
		}
		cs.Add = append(cs.Add, ch.New...)
	}
	f.history = append(f.history, cs)
	if len(f.history) > f.max {
		f.history = f.history[len(f.history)-f.max:]
	}
	cb := f.onChange
	f.mu.Unlock()

	f.zone.SetSerial(to)
	if cb != nil {
		cb(f.zone.Origin, to)
	}
}

// soaAt reads the zone's current SOA rewritten to the given serial. The
// zone still carries the pre-change serial when record runs, but rewriting
// explicitly keeps the history correct even if a writer tampered with the
// serial out of band.
func (f *Feed) soaAt(serial uint32) (dnswire.RR, bool) {
	rr, ok := f.zone.SOA()
	if !ok {
		return dnswire.RR{}, false
	}
	soa, ok := rr.Data.(dnswire.SOA)
	if !ok {
		return dnswire.RR{}, false
	}
	soa.Serial = serial
	rr.Data = soa
	return rr, true
}

// ChangesSince returns the change sets leading from serial to the current
// state, and whether the history covers that span. ok=false means the
// caller needs the full-zone fallback; an up-to-date serial returns
// (nil, true).
func (f *Feed) ChangesSince(serial uint32) ([]ChangeSet, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if serial == f.serial {
		return nil, true
	}
	if serial > f.serial {
		return nil, false
	}
	start := -1
	for i := range f.history {
		if f.history[i].From == serial {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, false
	}
	out := make([]ChangeSet, len(f.history)-start)
	copy(out, f.history[start:])
	return out, true
}

func cloneRRs(rrs []dnswire.RR) []dnswire.RR {
	if rrs == nil {
		return nil
	}
	return append([]dnswire.RR(nil), rrs...)
}

// withSerial rewrites the serial of every SOA in rrs (in place) and returns
// the slice.
func withSerial(rrs []dnswire.RR, serial uint32) []dnswire.RR {
	for i := range rrs {
		if soa, ok := rrs[i].Data.(dnswire.SOA); ok {
			soa.Serial = serial
			rrs[i].Data = soa
		}
	}
	return rrs
}
