package transport

import (
	"errors"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"
)

// udpConn is one pooled connected UDP socket with its owned read buffer —
// the socket is held exclusively for the duration of an exchange, so the
// buffer is never shared.
type udpConn struct {
	c    *net.UDPConn
	buf  []byte
	last time.Time
}

// udpTransport exchanges over pooled connected UDP sockets, falling back
// to the pipelined TCP transport when a response arrives truncated
// (RFC 1035 §4.2.1). Pooling the sockets matters at load-generator rates:
// a fresh socket per query costs two extra syscalls and a port allocation.
type udpTransport struct {
	cfg Config
	m   *Metrics
	tcp *streamTransport // truncation fallback; nil when disabled

	mu     sync.Mutex
	idle   map[netip.AddrPort][]*udpConn
	closed bool
}

func newUDPTransport(cfg Config) *udpTransport {
	u := &udpTransport{
		cfg:  cfg,
		m:    cfg.Metrics.orNil(),
		idle: make(map[netip.AddrPort][]*udpConn),
	}
	if !cfg.DisableTCPFallback {
		u.tcp = newTCPTransport(cfg)
	}
	return u
}

// get pops a pooled socket for server or dials a new one.
func (u *udpTransport) get(server netip.AddrPort) (*udpConn, error) {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil, errConnClosed
	}
	list := u.idle[server]
	for len(list) > 0 {
		uc := list[len(list)-1]
		list = list[:len(list)-1]
		u.idle[server] = list
		if time.Since(uc.last) > u.cfg.IdleTimeout {
			_ = uc.c.Close()
			continue
		}
		u.mu.Unlock()
		u.m.Reuses.Inc()
		return uc, nil
	}
	u.mu.Unlock()
	c, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(server))
	if err != nil {
		u.m.DialErrors.Inc()
		return nil, err
	}
	u.m.Dials.Inc()
	return &udpConn{c: c, buf: make([]byte, 65535)}, nil
}

// put returns a socket to the pool, closing it if the pool is full.
func (u *udpTransport) put(server netip.AddrPort, uc *udpConn) {
	uc.last = time.Now()
	u.mu.Lock()
	if !u.closed && len(u.idle[server]) < u.cfg.PoolSize {
		u.idle[server] = append(u.idle[server], uc)
		u.mu.Unlock()
		return
	}
	u.mu.Unlock()
	_ = uc.c.Close()
}

// Exchange implements Transport: write the query on a pooled connected
// socket, read until a response with the query's message ID arrives (late
// answers to earlier timed-out queries are dropped), and retry truncated
// answers over TCP.
func (u *udpTransport) Exchange(server netip.AddrPort, query []byte) ([]byte, time.Duration, error) {
	u.m.Exchanges.Inc()
	resp, rtt, err := u.exchangeUDP(server, query)
	if err != nil {
		u.m.Errors.Inc()
		return nil, rtt, err
	}
	if resp[2]&0x02 != 0 && u.tcp != nil { // TC bit: retry over TCP
		u.m.TCPFallbacks.Inc()
		tcpResp, tcpRTT, tcpErr := u.tcp.Exchange(server, query)
		if tcpErr == nil {
			return tcpResp, rtt + tcpRTT, nil
		}
		// The truncated UDP answer is still an answer; serve it rather
		// than failing the exchange, as the classic resolver path does.
	}
	u.m.RTT.ObserveDuration(rtt)
	return resp, rtt, nil
}

func (u *udpTransport) exchangeUDP(server netip.AddrPort, query []byte) ([]byte, time.Duration, error) {
	if len(query) < 12 {
		return nil, 0, errors.New("transport: query shorter than a DNS header")
	}
	uc, err := u.get(server)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	deadline := start.Add(u.cfg.Timeout)
	_ = uc.c.SetDeadline(deadline)
	if _, err := uc.c.Write(query); err != nil {
		_ = uc.c.Close()
		return nil, time.Since(start), err
	}
	for {
		n, err := uc.c.Read(uc.buf)
		if err != nil {
			_ = uc.c.Close()
			if errors.Is(err, os.ErrDeadlineExceeded) {
				err = ErrTimeout
			}
			return nil, time.Since(start), err
		}
		if n < 12 || uc.buf[0] != query[0] || uc.buf[1] != query[1] {
			// A stray datagram: wrong ID (a late answer from a previous
			// occupant of this socket) or too short to be DNS. Keep
			// listening until our answer or the deadline.
			u.m.IDMismatches.Inc()
			continue
		}
		rtt := time.Since(start)
		resp := make([]byte, n)
		copy(resp, uc.buf[:n])
		u.put(server, uc)
		return resp, rtt, nil
	}
}

// Close implements Transport.
func (u *udpTransport) Close() error {
	u.mu.Lock()
	u.closed = true
	idle := u.idle
	u.idle = make(map[netip.AddrPort][]*udpConn)
	u.mu.Unlock()
	for _, list := range idle {
		for _, uc := range list {
			_ = uc.c.Close()
		}
	}
	if u.tcp != nil {
		return u.tcp.Close()
	}
	return nil
}
