package transport

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"time"
)

// SelfSigned mints an ephemeral ECDSA certificate for the given hosts (DNS
// names or IP literals) plus a CertPool trusting it — the batteries for
// DoT/DoH test servers and for daemons started without -tls-cert. Not for
// production use: the key never leaves memory and the validity is 7 days.
func SelfSigned(hosts ...string) (tls.Certificate, *x509.CertPool, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "dnsttl self-signed"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(7 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	if len(hosts) == 0 {
		hosts = []string{"127.0.0.1", "::1", "localhost"}
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	cert := tls.Certificate{
		Certificate: [][]byte{der},
		PrivateKey:  key,
		Leaf:        leaf,
	}
	return cert, pool, nil
}
