package transport

import (
	"dnsttl/internal/obs"
)

// Metrics is the transport plane's bundle of pre-resolved telemetry
// handles. Every field is nil-safe (the obs contract), so a zero or nil
// *Metrics disables recording without branches at the call sites.
type Metrics struct {
	// Exchanges counts Exchange calls; Errors the ones that failed.
	Exchanges *obs.Counter
	Errors    *obs.Counter
	// Dials counts new connections (or UDP sockets) opened; DialErrors the
	// dials that failed; Reuses the exchanges served by a pooled
	// connection instead of a fresh dial.
	Dials      *obs.Counter
	DialErrors *obs.Counter
	Reuses     *obs.Counter
	// Handshakes counts completed TLS handshakes; HandshakeMS times them.
	Handshakes  *obs.Counter
	HandshakeMS *obs.Histogram
	// TCPFallbacks counts truncated UDP responses retried over TCP.
	TCPFallbacks *obs.Counter
	// IDMismatches counts responses dropped because their message ID
	// matched no in-flight query (late answers after a timeout, or a
	// misbehaving server).
	IDMismatches *obs.Counter
	// RTT times successful exchanges in milliseconds.
	RTT *obs.Histogram
}

// Metric names under which NewMetrics registers the transport telemetry.
const (
	MetricExchanges    = "transport.exchanges"
	MetricErrors       = "transport.errors"
	MetricDials        = "transport.dials"
	MetricDialErrors   = "transport.dial_errors"
	MetricReuses       = "transport.reuses"
	MetricHandshakes   = "transport.tls_handshakes"
	MetricHandshakeMS  = "transport.tls_handshake_ms"
	MetricTCPFallbacks = "transport.tcp_fallbacks"
	MetricIDMismatches = "transport.id_mismatches"
	MetricRTT          = "transport.rtt_ms"
)

// NewMetrics resolves the standard handle set from reg. A nil registry
// yields a Metrics of nil handles, which records nothing.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Exchanges:    reg.Counter(MetricExchanges),
		Errors:       reg.Counter(MetricErrors),
		Dials:        reg.Counter(MetricDials),
		DialErrors:   reg.Counter(MetricDialErrors),
		Reuses:       reg.Counter(MetricReuses),
		Handshakes:   reg.Counter(MetricHandshakes),
		HandshakeMS:  reg.Histogram(MetricHandshakeMS),
		TCPFallbacks: reg.Counter(MetricTCPFallbacks),
		IDMismatches: reg.Counter(MetricIDMismatches),
		RTT:          reg.Histogram(MetricRTT),
	}
}

// orNil lets transports embed a possibly-nil Metrics without nil checks:
// field access on the zero Metrics yields nil handles, which are no-ops.
func (m *Metrics) orNil() *Metrics {
	if m == nil {
		return &Metrics{}
	}
	return m
}
