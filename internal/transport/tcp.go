package transport

import (
	"crypto/tls"
	"net"
	"net/netip"
	"time"
)

// streamTransport is the shared TCP/DoT implementation: a per-upstream
// pool of pipelined persistent connections, differing only in how a
// connection is dialed.
type streamTransport struct {
	cfg  Config
	m    *Metrics
	pool *pool
}

// newTCPTransport builds the plain-TCP transport (RFC 7766 persistent
// connections, pipelined).
func newTCPTransport(cfg Config) *streamTransport {
	t := &streamTransport{cfg: cfg, m: cfg.Metrics.orNil()}
	t.pool = newPool(cfg, t.m, func(server netip.AddrPort) (net.Conn, error) {
		return net.DialTimeout("tcp", server.String(), cfg.Timeout)
	})
	return t
}

// newDoTTransport builds the DNS-over-TLS transport (RFC 7858): the same
// pipelined pool, dialed through a TLS handshake.
func newDoTTransport(cfg Config) *streamTransport {
	t := &streamTransport{cfg: cfg, m: cfg.Metrics.orNil()}
	t.pool = newPool(cfg, t.m, func(server netip.AddrPort) (net.Conn, error) {
		raw, err := net.DialTimeout("tcp", server.String(), cfg.Timeout)
		if err != nil {
			return nil, err
		}
		tc := tls.Client(raw, cfg.tlsConfig(server.Addr().String()))
		start := time.Now()
		_ = tc.SetDeadline(start.Add(cfg.Timeout))
		if err := tc.Handshake(); err != nil {
			_ = raw.Close()
			return nil, err
		}
		_ = tc.SetDeadline(time.Time{})
		t.m.Handshakes.Inc()
		t.m.HandshakeMS.ObserveDuration(time.Since(start))
		return tc, nil
	})
	return t
}

// Exchange implements Transport.
func (t *streamTransport) Exchange(server netip.AddrPort, query []byte) ([]byte, time.Duration, error) {
	t.m.Exchanges.Inc()
	resp, rtt, err := t.pool.exchange(server, query)
	if err != nil {
		t.m.Errors.Inc()
		return nil, rtt, err
	}
	t.m.RTT.ObserveDuration(rtt)
	return resp, rtt, nil
}

// Close implements Transport.
func (t *streamTransport) Close() error { return t.pool.close() }
