package transport

import (
	"net"
	"net/netip"
	"sync"
	"time"
)

// pool keeps up to PoolSize live pipelined connections per upstream. A free
// (zero in-flight) connection is always reused; when every connection is
// busy the pool dials new ones until the cap, then piles onto the
// least-loaded connection — pipelining absorbs the overflow.
type pool struct {
	cfg  Config
	m    *Metrics
	dial func(server netip.AddrPort) (net.Conn, error)

	mu      sync.Mutex
	conns   map[netip.AddrPort][]*pipeConn
	dialing map[netip.AddrPort]int
	closed  bool
}

func newPool(cfg Config, m *Metrics, dial func(netip.AddrPort) (net.Conn, error)) *pool {
	return &pool{
		cfg:     cfg,
		m:       m.orNil(),
		dial:    dial,
		conns:   make(map[netip.AddrPort][]*pipeConn),
		dialing: make(map[netip.AddrPort]int),
	}
}

// get returns a connection to server, dialing if the pool has no usable
// one. fresh reports whether the connection was dialed for this call.
func (p *pool) get(server netip.AddrPort) (pc *pipeConn, fresh bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, errConnClosed
	}
	// Prune dead and idle-expired connections, keep the rest.
	list := p.conns[server][:0]
	var best *pipeConn
	for _, c := range p.conns[server] {
		if !c.alive() {
			c.close()
			continue
		}
		list = append(list, c)
		if best == nil || c.load() < best.load() {
			best = c
		}
	}
	p.conns[server] = list
	atCap := len(list)+p.dialing[server] >= p.cfg.PoolSize
	if best != nil && (best.load() == 0 || atCap) {
		p.mu.Unlock()
		p.m.Reuses.Inc()
		return best, false, nil
	}
	p.dialing[server]++
	p.mu.Unlock()

	c, err := p.dial(server)

	p.mu.Lock()
	p.dialing[server]--
	if err != nil {
		p.mu.Unlock()
		p.m.DialErrors.Inc()
		return nil, false, err
	}
	p.m.Dials.Inc()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return nil, false, errConnClosed
	}
	pc = newPipeConn(c, p.cfg, p.m)
	p.conns[server] = append(p.conns[server], pc)
	p.mu.Unlock()
	return pc, true, nil
}

// exchange runs one query through a pooled connection. When a reused
// connection fails with a connection-level error (the server closed it
// between queries, or reset it mid-flight), the exchange is retried once on
// a freshly dialed connection — timeouts are not retried, that is the
// retry plane's job.
func (p *pool) exchange(server netip.AddrPort, query []byte) ([]byte, time.Duration, error) {
	pc, fresh, err := p.get(server)
	if err != nil {
		return nil, 0, err
	}
	resp, rtt, err := pc.exchange(query)
	if err == nil || fresh || err == ErrTimeout {
		return resp, rtt, err
	}
	pc, _, derr := p.getFresh(server)
	if derr != nil {
		return nil, rtt, err
	}
	resp, rtt2, err := pc.exchange(query)
	return resp, rtt + rtt2, err
}

// getFresh always dials (the reused-connection retry path).
func (p *pool) getFresh(server netip.AddrPort) (*pipeConn, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, errConnClosed
	}
	p.dialing[server]++
	p.mu.Unlock()

	c, err := p.dial(server)

	p.mu.Lock()
	p.dialing[server]--
	if err != nil {
		p.mu.Unlock()
		p.m.DialErrors.Inc()
		return nil, false, err
	}
	p.m.Dials.Inc()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return nil, false, errConnClosed
	}
	pc := newPipeConn(c, p.cfg, p.m)
	p.conns[server] = append(p.conns[server], pc)
	p.mu.Unlock()
	return pc, true, nil
}

// close tears down every pooled connection.
func (p *pool) close() error {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = make(map[netip.AddrPort][]*pipeConn)
	p.mu.Unlock()
	for _, list := range conns {
		for _, c := range list {
			c.close()
		}
	}
	return nil
}
