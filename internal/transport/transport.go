// Package transport is the resolver-side real-socket plane: pluggable
// client transports that carry one wire-format DNS query to an upstream
// server and return the wire-format response. Four implementations share
// one interface and one per-upstream connection-pool design:
//
//   - UDP: pooled connected sockets with truncation-driven TCP fallback
//     (RFC 1035 §4.2.1) — the classic resolver transport.
//   - TCP: persistent pipelined connections (RFC 7766 §6.2.1.1) with
//     out-of-order response matching by message ID, so many queries share
//     one connection without head-of-line blocking at the client.
//   - DoT: the same pipelined core over crypto/tls (RFC 7858).
//   - DoH: POSTed application/dns-message over net/http (RFC 8484), with
//     connection reuse delegated to the HTTP client's pool.
//
// Every transport records dial/reuse/handshake/RTT telemetry through
// internal/obs when given a Metrics bundle, so connection-pool behavior is
// observable at production query rates. The simulation plane is untouched:
// a Transport is adapted into the resolver's Exchanger interface by Net,
// and everything above (retry/hedging, span tracing, caching) works
// unchanged over real sockets.
package transport

import (
	"crypto/tls"
	"fmt"
	"net/netip"
	"strings"
	"time"
)

// Kind selects a transport implementation.
type Kind uint8

const (
	// UDP is datagram exchange with TCP fallback on truncation.
	UDP Kind = iota
	// TCP is persistent pipelined TCP with out-of-order responses.
	TCP
	// DoT is DNS over TLS (RFC 7858).
	DoT
	// DoH is DNS over HTTPS (RFC 8484, POST wireformat).
	DoH
)

// String names the kind the way the -transport flags spell it.
func (k Kind) String() string {
	switch k {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	case DoT:
		return "dot"
	case DoH:
		return "doh"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// DefaultPort is the IANA port for the kind: 53 for UDP/TCP, 853 for DoT,
// 443 for DoH.
func (k Kind) DefaultPort() uint16 {
	switch k {
	case DoT:
		return 853
	case DoH:
		return 443
	default:
		return 53
	}
}

// ParseKind maps "udp", "tcp", "dot", or "doh" to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "udp":
		return UDP, nil
	case "tcp":
		return TCP, nil
	case "dot", "tls":
		return DoT, nil
	case "doh", "https":
		return DoH, nil
	}
	return 0, fmt.Errorf("transport: unknown kind %q (want udp, tcp, dot, or doh)", s)
}

// Transport moves one wire-format query to server and returns the
// wire-format response and measured round-trip time. Implementations are
// safe for concurrent use; the caller's query buffer is not retained or
// mutated past the call.
type Transport interface {
	Exchange(server netip.AddrPort, query []byte) (resp []byte, rtt time.Duration, err error)
	// Close releases every pooled connection.
	Close() error
}

// Defaults applied by New for zero Config fields.
const (
	DefaultPoolSize    = 4
	DefaultTimeout     = 5 * time.Second
	DefaultIdleTimeout = 30 * time.Second
)

// Config parameterizes New.
type Config struct {
	// Kind selects the implementation.
	Kind Kind
	// PoolSize bounds live connections per upstream (and, for UDP, pooled
	// sockets per upstream). 0 means DefaultPoolSize.
	PoolSize int
	// Timeout bounds one exchange end to end, including any dial or TLS
	// handshake it triggers. 0 means DefaultTimeout.
	Timeout time.Duration
	// IdleTimeout closes pooled connections unused this long. 0 means
	// DefaultIdleTimeout.
	IdleTimeout time.Duration
	// TLS configures DoT/DoH. nil uses a default config; ServerName and
	// Insecure below still apply on top of a caller-provided config when
	// unset there.
	TLS *tls.Config
	// ServerName overrides the TLS SNI / certificate host check (default:
	// the upstream's address literal).
	ServerName string
	// Insecure skips TLS certificate verification (self-signed test
	// servers).
	Insecure bool
	// DisableTCPFallback turns off the UDP transport's truncation retry.
	DisableTCPFallback bool
	// Metrics, when non-nil, records pool and exchange telemetry.
	Metrics *Metrics
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = DefaultPoolSize
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	return c
}

// tlsConfig builds the effective client TLS config for host.
func (c Config) tlsConfig(host string) *tls.Config {
	var cfg *tls.Config
	if c.TLS != nil {
		cfg = c.TLS.Clone()
	} else {
		cfg = &tls.Config{MinVersion: tls.VersionTLS12}
	}
	if cfg.ServerName == "" {
		if c.ServerName != "" {
			cfg.ServerName = c.ServerName
		} else {
			cfg.ServerName = host
		}
	}
	if c.Insecure {
		cfg.InsecureSkipVerify = true
	}
	return cfg
}

// New builds the configured transport.
func New(cfg Config) (Transport, error) {
	cfg = cfg.withDefaults()
	switch cfg.Kind {
	case UDP:
		return newUDPTransport(cfg), nil
	case TCP:
		return newTCPTransport(cfg), nil
	case DoT:
		return newDoTTransport(cfg), nil
	case DoH:
		return newDoHTransport(cfg), nil
	}
	return nil, fmt.Errorf("transport: unknown kind %v", cfg.Kind)
}
