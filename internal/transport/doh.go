package transport

import (
	"bytes"
	"crypto/tls"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"net/netip"
	"time"
)

// DoHPath is the well-known DoH endpoint path (RFC 8484 §4).
const DoHPath = "/dns-query"

// dohContentType is the wire-format media type (RFC 8484 §6).
const dohContentType = "application/dns-message"

// dohTransport POSTs application/dns-message over HTTPS (RFC 8484).
// Connection pooling and reuse live in the net/http transport; reuse and
// handshake telemetry is lifted out through httptrace, so the pooled DoH
// path reports the same metrics the hand-rolled pools do.
type dohTransport struct {
	cfg    Config
	m      *Metrics
	client *http.Client
}

func newDoHTransport(cfg Config) *dohTransport {
	tr := &http.Transport{
		// The empty host keeps ServerName unset so net/http derives SNI
		// from each request URL — one transport serves many upstreams.
		TLSClientConfig:     cfg.tlsConfig(""),
		ForceAttemptHTTP2:   true,
		MaxIdleConns:        4 * cfg.PoolSize,
		MaxIdleConnsPerHost: cfg.PoolSize,
		MaxConnsPerHost:     cfg.PoolSize,
		IdleConnTimeout:     cfg.IdleTimeout,
	}
	return &dohTransport{
		cfg:    cfg,
		m:      cfg.Metrics.orNil(),
		client: &http.Client{Transport: tr, Timeout: cfg.Timeout},
	}
}

// Exchange implements Transport. The query's message ID is zeroed on the
// wire for HTTP-cache friendliness (RFC 8484 §4.1) and restored in the
// response.
func (d *dohTransport) Exchange(server netip.AddrPort, query []byte) ([]byte, time.Duration, error) {
	d.m.Exchanges.Inc()
	resp, rtt, err := d.exchange(server, query)
	if err != nil {
		d.m.Errors.Inc()
		return nil, rtt, err
	}
	d.m.RTT.ObserveDuration(rtt)
	return resp, rtt, nil
}

func (d *dohTransport) exchange(server netip.AddrPort, query []byte) ([]byte, time.Duration, error) {
	if len(query) < 12 {
		return nil, 0, fmt.Errorf("transport: query shorter than a DNS header")
	}
	body := make([]byte, len(query))
	copy(body, query)
	body[0], body[1] = 0, 0

	url := "https://" + server.String() + DoHPath
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", dohContentType)
	req.Header.Set("Accept", dohContentType)

	var handshakeStart time.Time
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				d.m.Reuses.Inc()
			} else {
				d.m.Dials.Inc()
			}
		},
		TLSHandshakeStart: func() { handshakeStart = time.Now() },
		TLSHandshakeDone: func(_ tls.ConnectionState, err error) {
			if err == nil {
				d.m.Handshakes.Inc()
				d.m.HandshakeMS.ObserveDuration(time.Since(handshakeStart))
			}
		},
	}
	req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))

	start := time.Now()
	httpResp, err := d.client.Do(req)
	if err != nil {
		return nil, time.Since(start), err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(httpResp.Body, 1<<16))
		return nil, time.Since(start), fmt.Errorf("transport: doh status %s", httpResp.Status)
	}
	wire, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<16))
	rtt := time.Since(start)
	if err != nil {
		return nil, rtt, err
	}
	if len(wire) < 12 {
		return nil, rtt, fmt.Errorf("transport: doh response shorter than a DNS header")
	}
	wire[0], wire[1] = query[0], query[1]
	return wire, rtt, nil
}

// Close implements Transport.
func (d *dohTransport) Close() error {
	d.client.CloseIdleConnections()
	return nil
}
