package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// Exchange errors.
var (
	// ErrTimeout reports an exchange that saw no response in time.
	ErrTimeout = errors.New("transport: exchange timed out")
	// errConnClosed reports an exchange attempted or in flight on a
	// connection that died.
	errConnClosed = errors.New("transport: connection closed")
)

// pipeResult is one demultiplexed response (or the connection's fate).
type pipeResult struct {
	wire []byte
	err  error
}

// pipeConn is one persistent stream connection (TCP or TLS) multiplexing
// many concurrent queries, RFC 7766 §6.2.1.1 style: queries are written
// back to back with connection-local message IDs, and a single reader
// goroutine matches responses — which may arrive in any order — back to
// their waiters by ID. The caller's original ID is restored before the
// response is handed back, so pipelining is invisible above the transport.
type pipeConn struct {
	c   net.Conn
	cfg Config
	m   *Metrics

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint16]chan pipeResult
	nextID  uint16
	dead    bool
	err     error
	lastUse time.Time // completion time of the last exchange, for idle reap
}

// frameBufPool recycles the [length prefix + query] write buffers.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// newPipeConn wraps an established connection and starts its reader.
func newPipeConn(c net.Conn, cfg Config, m *Metrics) *pipeConn {
	p := &pipeConn{
		c:       c,
		cfg:     cfg,
		m:       m.orNil(),
		pending: make(map[uint16]chan pipeResult),
		lastUse: time.Now(),
	}
	go p.readLoop()
	return p
}

// load reports in-flight exchanges (the pool's least-loaded pick).
func (p *pipeConn) load() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// alive reports whether the connection can still carry queries, treating a
// connection idle past the configured IdleTimeout as dead.
func (p *pipeConn) alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return false
	}
	if len(p.pending) == 0 && time.Since(p.lastUse) > p.cfg.IdleTimeout {
		return false
	}
	return true
}

// exchange sends one query and waits for its response. The query's message
// ID is rewritten to a connection-local one on the wire and restored in the
// response; the caller's buffer is copied, never retained or mutated.
func (p *pipeConn) exchange(query []byte) ([]byte, time.Duration, error) {
	if len(query) < 12 {
		return nil, 0, fmt.Errorf("transport: query shorter than a DNS header")
	}
	if len(query) > 0xFFFF {
		return nil, 0, fmt.Errorf("transport: query exceeds the TCP frame limit")
	}
	ch := make(chan pipeResult, 1)
	p.mu.Lock()
	if p.dead {
		err := p.err
		p.mu.Unlock()
		if err == nil {
			err = errConnClosed
		}
		return nil, 0, err
	}
	id := p.nextID
	for {
		id++
		if _, busy := p.pending[id]; !busy {
			break
		}
	}
	p.nextID = id
	p.pending[id] = ch
	p.mu.Unlock()

	bufp := frameBufPool.Get().(*[]byte)
	frame := append((*bufp)[:0], 0, 0)
	frame = append(frame, query...)
	binary.BigEndian.PutUint16(frame, uint16(len(query)))
	frame[2], frame[3] = byte(id>>8), byte(id)

	start := time.Now()
	p.wmu.Lock()
	_ = p.c.SetWriteDeadline(start.Add(p.cfg.Timeout))
	_, werr := p.c.Write(frame)
	p.wmu.Unlock()
	*bufp = frame[:0]
	frameBufPool.Put(bufp)
	if werr != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		p.fail(werr)
		return nil, time.Since(start), werr
	}

	timer := time.NewTimer(p.cfg.Timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		rtt := time.Since(start)
		p.mu.Lock()
		p.lastUse = time.Now()
		p.mu.Unlock()
		if r.err != nil {
			return nil, rtt, r.err
		}
		r.wire[0], r.wire[1] = query[0], query[1]
		return r.wire, rtt, nil
	case <-timer.C:
		p.mu.Lock()
		delete(p.pending, id)
		p.lastUse = time.Now()
		p.mu.Unlock()
		return nil, time.Since(start), ErrTimeout
	}
}

// readLoop demultiplexes length-framed responses to their waiters until the
// connection dies or sits idle past IdleTimeout with nothing in flight.
func (p *pipeConn) readLoop() {
	br := bufio.NewReaderSize(p.c, 4096)
	var hdr [2]byte
	for {
		// The read deadline serves two masters: reaping idle connections
		// (nothing pending) and bounding reads when queries are in flight.
		// Waiters carry their own timers, so the in-flight bound only has
		// to be no tighter than theirs.
		wait := p.cfg.IdleTimeout
		if inflight := p.load(); inflight > 0 && p.cfg.Timeout+time.Second > wait {
			wait = p.cfg.Timeout + time.Second
		}
		_ = p.c.SetReadDeadline(time.Now().Add(wait))
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) && p.load() == 0 {
				err = errConnClosed // quiet idle reap
			}
			p.fail(err)
			return
		}
		n := binary.BigEndian.Uint16(hdr[:])
		if n < 12 {
			p.fail(fmt.Errorf("transport: short response frame (%d bytes)", n))
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			p.fail(err)
			return
		}
		id := uint16(buf[0])<<8 | uint16(buf[1])
		p.mu.Lock()
		ch, ok := p.pending[id]
		delete(p.pending, id)
		p.mu.Unlock()
		if !ok {
			// Unknown ID: a late answer to a timed-out query, or a server
			// responding with an ID we never sent. Either way: drop.
			p.m.IDMismatches.Inc()
			continue
		}
		ch <- pipeResult{wire: buf}
	}
}

// fail marks the connection dead, closes it, and hands err to every waiter.
func (p *pipeConn) fail(err error) {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	p.err = err
	waiters := p.pending
	p.pending = make(map[uint16]chan pipeResult)
	p.mu.Unlock()
	_ = p.c.Close()
	for _, ch := range waiters {
		ch <- pipeResult{err: err}
	}
}

// close tears the connection down (pool shutdown).
func (p *pipeConn) close() { p.fail(errConnClosed) }
