package transport

import (
	"encoding/binary"
	"io"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnsttl/internal/obs"
)

// testQuery builds a minimal 13-byte query: a DNS header carrying id plus a
// one-byte tag the scripted servers echo back, so tests can check that each
// concurrent caller got its own answer and its own original ID.
func testQuery(id uint16, tag byte) []byte {
	q := make([]byte, 13)
	binary.BigEndian.PutUint16(q, id)
	q[12] = tag
	return q
}

// readTestFrame reads one length-prefixed frame, returning nil on any error
// — the client closing its pooled connections at test teardown is expected,
// not a failure.
func readTestFrame(c net.Conn) []byte {
	var hdr [2]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil
	}
	buf := make([]byte, binary.BigEndian.Uint16(hdr[:]))
	if _, err := io.ReadFull(c, buf); err != nil {
		return nil
	}
	return buf
}

func writeTestFrame(c net.Conn, msg []byte) {
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(msg)))
	if _, err := c.Write(hdr[:]); err != nil {
		return
	}
	_, _ = c.Write(msg)
}

// respond echoes the query with the QR bit set, preserving the wire ID the
// server saw (the connection-local one) and the caller's tag byte.
func respond(q []byte) []byte {
	r := make([]byte, len(q))
	copy(r, q)
	r[2] |= 0x80
	return r
}

// scriptedServer runs script on each accepted connection.
func scriptedServer(t *testing.T, script func(conn net.Conn)) netip.AddrPort {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				script(conn)
			}()
		}
	}()
	return ln.Addr().(*net.TCPAddr).AddrPort()
}

// TestPipelineOutOfOrder sends a batch of concurrent queries down one
// pipelined connection and has the server answer them in reverse order.
// Every caller must still receive its own response, carrying its original
// message ID (RFC 7766 §6.2.1.1 out-of-order processing).
func TestPipelineOutOfOrder(t *testing.T) {
	const batch = 4
	addr := scriptedServer(t, func(conn net.Conn) {
		// Warm-up query establishes the connection in the pool.
		if f := readTestFrame(conn); f != nil {
			writeTestFrame(conn, respond(f))
		}
		// Read the whole batch, then answer last-in first-out.
		frames := make([][]byte, 0, batch)
		for i := 0; i < batch; i++ {
			f := readTestFrame(conn)
			if f == nil {
				return
			}
			frames = append(frames, f)
		}
		for i := batch - 1; i >= 0; i-- {
			writeTestFrame(conn, respond(frames[i]))
		}
	})

	tr, err := New(Config{Kind: TCP, PoolSize: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if _, _, err := tr.Exchange(addr, testQuery(0x1111, 0xFF)); err != nil {
		t.Fatalf("warm-up exchange: %v", err)
	}

	var wg sync.WaitGroup
	errs := make([]error, batch)
	resps := make([][]byte, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], _, errs[i] = tr.Exchange(addr, testQuery(0xA000+uint16(i), byte(i)))
		}(i)
	}
	wg.Wait()

	for i := 0; i < batch; i++ {
		if errs[i] != nil {
			t.Fatalf("exchange %d: %v", i, errs[i])
		}
		if got := binary.BigEndian.Uint16(resps[i]); got != 0xA000+uint16(i) {
			t.Errorf("exchange %d: response ID = %#x, want %#x (original ID not restored)",
				i, got, 0xA000+uint16(i))
		}
		if resps[i][12] != byte(i) {
			t.Errorf("exchange %d: got response tagged %d — matched to the wrong query",
				i, resps[i][12])
		}
		if resps[i][2]&0x80 == 0 {
			t.Errorf("exchange %d: QR bit not set", i)
		}
	}
}

// TestPipelineIDMismatchRejected has the server emit a response with an ID
// that matches no in-flight query before the real answer. The bogus frame
// must be dropped (and counted), not delivered.
func TestPipelineIDMismatchRejected(t *testing.T) {
	addr := scriptedServer(t, func(conn net.Conn) {
		f := readTestFrame(conn)
		if f == nil {
			return
		}
		bogus := respond(f)
		wireID := binary.BigEndian.Uint16(bogus)
		binary.BigEndian.PutUint16(bogus, wireID+0x4242)
		bogus[12] = 0xEE
		writeTestFrame(conn, bogus)
		writeTestFrame(conn, respond(f))
	})

	reg := obs.NewRegistry(nil)
	m := NewMetrics(reg)
	tr, err := New(Config{Kind: TCP, PoolSize: 1, Timeout: 2 * time.Second, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	resp, _, err := tr.Exchange(addr, testQuery(0x2222, 0x07))
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint16(resp) != 0x2222 || resp[12] != 0x07 {
		t.Errorf("got the bogus frame: id=%#x tag=%#x", binary.BigEndian.Uint16(resp), resp[12])
	}
	if got := m.IDMismatches.Value(); got != 1 {
		t.Errorf("IDMismatches = %d, want 1", got)
	}
}

// TestPoolRetriesAfterMidFlightReset covers the stale-pooled-connection
// path: the server serves one query, then resets the connection while the
// second query is in flight. The pool must notice the reused connection
// died, dial a fresh one, and complete the exchange.
func TestPoolRetriesAfterMidFlightReset(t *testing.T) {
	var mu sync.Mutex
	conns := 0
	addr := scriptedServer(t, func(conn net.Conn) {
		mu.Lock()
		conns++
		first := conns == 1
		mu.Unlock()
		if first {
			if f := readTestFrame(conn); f != nil {
				writeTestFrame(conn, respond(f))
			}
			// Wait for the second query, then slam the door mid-flight.
			readTestFrame(conn)
			return // deferred Close resets the connection
		}
		for {
			f := readTestFrame(conn)
			if f == nil {
				return
			}
			writeTestFrame(conn, respond(f))
		}
	})

	reg := obs.NewRegistry(nil)
	m := NewMetrics(reg)
	tr, err := New(Config{Kind: TCP, PoolSize: 1, Timeout: 2 * time.Second, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if _, _, err := tr.Exchange(addr, testQuery(1, 1)); err != nil {
		t.Fatalf("first exchange: %v", err)
	}
	resp, _, err := tr.Exchange(addr, testQuery(2, 2))
	if err != nil {
		t.Fatalf("exchange after mid-flight reset: %v", err)
	}
	if binary.BigEndian.Uint16(resp) != 2 || resp[12] != 2 {
		t.Errorf("retried exchange returned wrong response: %v", resp[:13])
	}
	if got := m.Reuses.Value(); got != 1 {
		t.Errorf("Reuses = %d, want 1 (second exchange must start on the pooled conn)", got)
	}
	if got := m.Dials.Value(); got != 2 {
		t.Errorf("Dials = %d, want 2 (initial dial + post-reset redial)", got)
	}
	if got := m.Errors.Value(); got != 0 {
		t.Errorf("Errors = %d, want 0 (the retry should make the exchange succeed)", got)
	}
}

// TestPipelineTimeoutThenLateAnswer checks that a query that times out is
// forgotten: when its answer eventually arrives it is dropped as an ID
// mismatch, and the connection keeps serving later queries.
func TestPipelineTimeoutThenLateAnswer(t *testing.T) {
	release := make(chan struct{})
	addr := scriptedServer(t, func(conn net.Conn) {
		f1 := readTestFrame(conn)
		if f1 == nil {
			return
		}
		<-release // stall past the client timeout
		writeTestFrame(conn, respond(f1))
		if f2 := readTestFrame(conn); f2 != nil {
			writeTestFrame(conn, respond(f2))
		}
	})

	reg := obs.NewRegistry(nil)
	m := NewMetrics(reg)
	tr, err := New(Config{Kind: TCP, PoolSize: 1, Timeout: 300 * time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if _, _, err := tr.Exchange(addr, testQuery(9, 9)); err != ErrTimeout {
		t.Fatalf("stalled exchange: err = %v, want ErrTimeout", err)
	}
	close(release)
	resp, _, err := tr.Exchange(addr, testQuery(10, 10))
	if err != nil {
		t.Fatalf("exchange after timeout: %v", err)
	}
	if binary.BigEndian.Uint16(resp) != 10 || resp[12] != 10 {
		t.Errorf("got stale answer: %v", resp[:13])
	}
	if got := m.IDMismatches.Value(); got != 1 {
		t.Errorf("IDMismatches = %d, want 1 (the late answer must be dropped)", got)
	}
}
