package transport

import (
	"net/netip"
	"time"
)

// Net adapts a Transport into the resolver's Exchanger shape
// (simnet.Exchanger): queries addressed to a bare server address go to
// that address at the configured port. The source address is ignored —
// real sockets pick their own.
//
// Everything above the Exchanger seam — iteration, caching, the retry and
// hedging plane, span tracing — works unchanged whether the exchanger is
// the in-memory simnet or this adapter over real sockets.
type Net struct {
	// T carries the queries.
	T Transport
	// Port is the destination port on every upstream.
	Port uint16
}

// NewNet wraps t, defaulting port 0 to the kind-appropriate value when
// known (use Kind.DefaultPort at construction) or 53 otherwise.
func NewNet(t Transport, port uint16) *Net {
	if port == 0 {
		port = 53
	}
	return &Net{T: t, Port: port}
}

// Exchange implements simnet.Exchanger.
func (n *Net) Exchange(src, dst netip.Addr, query []byte) ([]byte, time.Duration, error) {
	return n.T.Exchange(netip.AddrPortFrom(dst, n.Port), query)
}

// Close releases the underlying transport's pooled connections.
func (n *Net) Close() error { return n.T.Close() }
