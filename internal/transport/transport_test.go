package transport

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/simnet"
)

// echoHandler answers any query by echoing it with QR set — enough for
// transport round-trip tests, which only care about framing, ID handling,
// and connection reuse.
var echoHandler = simnet.HandlerFunc(func(wire []byte, _ netip.Addr) []byte {
	resp := make([]byte, len(wire))
	copy(resp, wire)
	resp[2] |= 0x80
	return resp
})

func encodedQuery(t *testing.T, id uint16) []byte {
	t.Helper()
	q := dnswire.NewQuery(id, dnswire.NewName("www.example.org"), dnswire.TypeA)
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestExchangeAllKinds round-trips every transport kind against a real
// server over loopback — UDP, TCP, DoT (verified TLS), DoH (verified
// HTTPS) — and checks that repeated exchanges reuse pooled connections.
func TestExchangeAllKinds(t *testing.T) {
	cert, pool, err := SelfSigned("127.0.0.1", "localhost")
	if err != nil {
		t.Fatal(err)
	}
	serverTLS := &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}

	cases := []struct {
		kind   Kind
		listen func(t *testing.T) netip.AddrPort
		tls    *x509.CertPool
	}{
		{kind: UDP, listen: func(t *testing.T) netip.AddrPort {
			s := &authoritative.UDPServer{Handler: echoHandler}
			addr, err := s.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return addr
		}},
		{kind: TCP, listen: func(t *testing.T) netip.AddrPort {
			s := &authoritative.TCPServer{Handler: echoHandler}
			addr, err := s.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return addr
		}},
		{kind: DoT, tls: pool, listen: func(t *testing.T) netip.AddrPort {
			s := &authoritative.TCPServer{Handler: echoHandler, TLS: serverTLS.Clone()}
			addr, err := s.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return addr
		}},
		{kind: DoH, tls: pool, listen: func(t *testing.T) netip.AddrPort {
			s := &authoritative.DoHServer{Handler: echoHandler, TLS: serverTLS.Clone()}
			addr, err := s.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return addr
		}},
	}

	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			addr := tc.listen(t)
			reg := obs.NewRegistry(nil)
			m := NewMetrics(reg)
			cfg := Config{Kind: tc.kind, Timeout: 3 * time.Second, Metrics: m}
			if tc.tls != nil {
				cfg.TLS = &tls.Config{RootCAs: tc.tls, MinVersion: tls.VersionTLS12}
			}
			tr, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()

			const rounds = 3
			for i := 0; i < rounds; i++ {
				id := 0x3000 + uint16(i)
				resp, rtt, err := tr.Exchange(addr, encodedQuery(t, id))
				if err != nil {
					t.Fatalf("exchange %d: %v", i, err)
				}
				if rtt <= 0 {
					t.Errorf("exchange %d: rtt = %v", i, rtt)
				}
				msg, err := dnswire.Decode(resp)
				if err != nil {
					t.Fatalf("exchange %d: decode: %v", i, err)
				}
				if msg.Header.ID != id {
					t.Errorf("exchange %d: ID = %d, want %d", i, msg.Header.ID, id)
				}
				if !msg.Header.QR {
					t.Errorf("exchange %d: QR not set", i)
				}
			}

			if got := m.Exchanges.Value(); got != rounds {
				t.Errorf("Exchanges = %d, want %d", got, rounds)
			}
			if got := m.Reuses.Value(); got == 0 {
				t.Errorf("Reuses = 0, want > 0 (sequential exchanges must reuse the pooled connection)")
			}
			if got := m.Errors.Value(); got != 0 {
				t.Errorf("Errors = %d, want 0", got)
			}
			if tc.tls != nil {
				if got := m.Handshakes.Value(); got == 0 {
					t.Errorf("Handshakes = 0, want > 0 for %s", tc.kind)
				}
			}
		})
	}
}

// TestUDPTruncationFallsBackToTCP serves TC-bit answers over UDP and full
// answers over TCP on the same port; the UDP transport must retry over TCP
// and return the untruncated response.
func TestUDPTruncationFallsBackToTCP(t *testing.T) {
	truncating := simnet.HandlerFunc(func(wire []byte, _ netip.Addr) []byte {
		resp := make([]byte, len(wire))
		copy(resp, wire)
		resp[2] |= 0x80 | 0x02 // QR + TC
		return resp
	})
	us := &authoritative.UDPServer{Handler: truncating}
	addr, err := us.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer us.Close()
	ts := &authoritative.TCPServer{Handler: echoHandler}
	if _, err := ts.Listen(fmt.Sprintf("127.0.0.1:%d", addr.Port())); err != nil {
		t.Fatalf("binding TCP on the UDP port: %v", err)
	}
	defer ts.Close()

	reg := obs.NewRegistry(nil)
	m := NewMetrics(reg)
	tr, err := New(Config{Kind: UDP, Timeout: 3 * time.Second, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	resp, _, err := tr.Exchange(addr, encodedQuery(t, 0x0777))
	if err != nil {
		t.Fatal(err)
	}
	msg, err := dnswire.Decode(resp)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.TC {
		t.Errorf("response still truncated — TCP fallback did not happen")
	}
	if msg.Header.ID != 0x0777 {
		t.Errorf("ID = %d, want %d", msg.Header.ID, 0x0777)
	}
	if got := m.TCPFallbacks.Value(); got != 1 {
		t.Errorf("TCPFallbacks = %d, want 1", got)
	}

	// With fallback disabled the truncated answer is returned as is.
	tr2, err := New(Config{Kind: UDP, Timeout: 3 * time.Second, DisableTCPFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	resp, _, err = tr2.Exchange(addr, encodedQuery(t, 0x0778))
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := dnswire.Decode(resp); err != nil || !msg.Header.TC {
		t.Errorf("DisableTCPFallback should return the truncated UDP answer (err=%v)", err)
	}
}

// TestParseKind covers the flag-value round trip.
func TestParseKind(t *testing.T) {
	for _, k := range []Kind{UDP, TCP, DoT, DoH} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("carrier-pigeon"); err == nil {
		t.Errorf("ParseKind should reject unknown kinds")
	}
	ports := map[Kind]uint16{UDP: 53, TCP: 53, DoT: 853, DoH: 443}
	for k, want := range ports {
		if got := k.DefaultPort(); got != want {
			t.Errorf("%v.DefaultPort() = %d, want %d", k, got, want)
		}
	}
}

// TestDoTVerificationFailsWithoutTrust checks that DoT against a
// self-signed server fails closed unless the certificate is trusted or
// Insecure is set.
func TestDoTVerificationFailsWithoutTrust(t *testing.T) {
	cert, _, err := SelfSigned("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	s := &authoritative.TCPServer{Handler: echoHandler,
		TLS: &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12}}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	strict, err := New(Config{Kind: DoT, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	if _, _, err := strict.Exchange(addr, encodedQuery(t, 1)); err == nil {
		t.Errorf("DoT against an untrusted cert must fail verification")
	}

	insecure, err := New(Config{Kind: DoT, Timeout: 2 * time.Second, Insecure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer insecure.Close()
	if _, _, err := insecure.Exchange(addr, encodedQuery(t, 2)); err != nil {
		t.Errorf("DoT with Insecure should succeed: %v", err)
	}
}
