// Package entrada is the passive-measurement warehouse of §3.4: it ingests
// query streams captured at authoritative servers and computes the
// per-(resolver, query-name) statistics behind Figures 3 and 4 — query
// counts per group, interarrival times, and the resolver centricity census
// ("at least half of recursive resolvers are child-centric").
package entrada

import (
	"net/netip"
	"sort"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/stats"
)

// Row is one captured query.
type Row struct {
	Time     time.Time
	Resolver netip.Addr
	Name     dnswire.Name
	Type     dnswire.Type
}

// GroupKey identifies a (resolver, query-name) group. Different names may
// sit in the cache with different TTLs, so the pair — not the resolver
// alone — is the unit of caching behavior.
type GroupKey struct {
	Resolver netip.Addr
	Name     dnswire.Name
}

// Group aggregates one (resolver, query-name) stream.
type Group struct {
	Key   GroupKey
	Times []time.Time
}

// Queries returns the group's query count.
func (g *Group) Queries() int { return len(g.Times) }

// Interarrivals returns successive gaps, optionally dropping gaps below
// minGap (the paper filters <2 s to remove retransmissions).
func (g *Group) Interarrivals(minGap time.Duration) []time.Duration {
	var out []time.Duration
	for i := 1; i < len(g.Times); i++ {
		gap := g.Times[i].Sub(g.Times[i-1])
		if gap >= minGap {
			out = append(out, gap)
		}
	}
	return out
}

// MinInterarrival returns the smallest gap ≥ minGap, and false if none.
func (g *Group) MinInterarrival(minGap time.Duration) (time.Duration, bool) {
	gaps := g.Interarrivals(minGap)
	if len(gaps) == 0 {
		return 0, false
	}
	min := gaps[0]
	for _, d := range gaps[1:] {
		if d < min {
			min = d
		}
	}
	return min, true
}

// Warehouse holds captured rows grouped for analysis.
type Warehouse struct {
	groups map[GroupKey]*Group
	rows   int
}

// NewWarehouse creates an empty warehouse.
func NewWarehouse() *Warehouse {
	return &Warehouse{groups: make(map[GroupKey]*Group)}
}

// Ingest adds one row.
func (w *Warehouse) Ingest(r Row) {
	k := GroupKey{Resolver: r.Resolver, Name: r.Name}
	g := w.groups[k]
	if g == nil {
		g = &Group{Key: k}
		w.groups[k] = g
	}
	g.Times = append(g.Times, r.Time)
	w.rows++
}

// IngestServerLog pulls an authoritative server's query log, keeping only
// the given query names (nil means all).
func (w *Warehouse) IngestServerLog(s *authoritative.Server, names map[dnswire.Name]bool) {
	for _, e := range s.QueryLog() {
		if names != nil && !names[e.Name] {
			continue
		}
		w.Ingest(Row{Time: e.Time, Resolver: e.Client, Name: e.Name, Type: e.Type})
	}
}

// Rows returns the ingested row count.
func (w *Warehouse) Rows() int { return w.rows }

// Groups returns all groups, times sorted.
func (w *Warehouse) Groups() []*Group {
	out := make([]*Group, 0, len(w.groups))
	for _, g := range w.groups {
		sort.Slice(g.Times, func(i, j int) bool { return g.Times[i].Before(g.Times[j]) })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Resolver != out[j].Key.Resolver {
			return out[i].Key.Resolver.Less(out[j].Key.Resolver)
		}
		return out[i].Key.Name < out[j].Key.Name
	})
	return out
}

// QueryCountSample returns per-group query counts (Figure 3's CDF),
// counting only gaps ≥ minGap when minGap > 0 (the red "filtered" line).
func (w *Warehouse) QueryCountSample(minGap time.Duration) *stats.Sample {
	s := stats.NewSample()
	for _, g := range w.Groups() {
		if minGap <= 0 {
			s.Add(float64(g.Queries()))
			continue
		}
		// Collapse bursts: count queries separated by ≥ minGap.
		n := 0
		var last time.Time
		for i, t := range g.Times {
			if i == 0 || t.Sub(last) >= minGap {
				n++
				last = t
			}
		}
		s.Add(float64(n))
	}
	return s
}

// MinInterarrivalSample returns each multi-query group's minimum
// interarrival in seconds (Figure 4's CDF).
func (w *Warehouse) MinInterarrivalSample(minGap time.Duration) *stats.Sample {
	s := stats.NewSample()
	for _, g := range w.Groups() {
		if min, ok := g.MinInterarrival(minGap); ok {
			s.Add(min.Seconds())
		}
	}
	return s
}

// Census is the §3.4 centricity breakdown.
type Census struct {
	Groups      int
	MultiQuery  int // groups with >1 query: child-centric evidence
	SingleQuery int
	// SingleButMultiElsewhere counts single-query groups whose resolver
	// queried other names more than once — evidence the resolver is
	// child-centric after all (the paper's 14 %).
	SingleButMultiElsewhere int
	UniqueResolvers         int
}

// CentricityCensus computes the census.
func (w *Warehouse) CentricityCensus() Census {
	c := Census{}
	multiResolvers := make(map[netip.Addr]bool)
	resolvers := make(map[netip.Addr]bool)
	var singles []*Group
	for _, g := range w.Groups() {
		c.Groups++
		resolvers[g.Key.Resolver] = true
		if g.Queries() > 1 {
			c.MultiQuery++
			multiResolvers[g.Key.Resolver] = true
		} else {
			c.SingleQuery++
			singles = append(singles, g)
		}
	}
	for _, g := range singles {
		if multiResolvers[g.Key.Resolver] {
			c.SingleButMultiElsewhere++
		}
	}
	c.UniqueResolvers = len(resolvers)
	return c
}

// FractionMultiQuery is the paper's 52 % headline: the share of groups that
// queried more than once over the window.
func (c Census) FractionMultiQuery() float64 {
	if c.Groups == 0 {
		return 0
	}
	return float64(c.MultiQuery) / float64(c.Groups)
}
