package entrada

import (
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

var (
	r1 = netip.MustParseAddr("203.0.113.1")
	r2 = netip.MustParseAddr("203.0.113.2")
	n1 = dnswire.NewName("ns1.dns.nl")
	n2 = dnswire.NewName("ns2.dns.nl")
)

func at(sec int) time.Time { return simnet.Epoch.Add(time.Duration(sec) * time.Second) }

func TestGroupingAndInterarrivals(t *testing.T) {
	w := NewWarehouse()
	for _, sec := range []int{0, 3600, 3601, 7200} { // burst at 3600/3601
		w.Ingest(Row{Time: at(sec), Resolver: r1, Name: n1, Type: dnswire.TypeA})
	}
	w.Ingest(Row{Time: at(100), Resolver: r1, Name: n2, Type: dnswire.TypeA})
	w.Ingest(Row{Time: at(50), Resolver: r2, Name: n1, Type: dnswire.TypeA})

	if w.Rows() != 6 {
		t.Fatalf("rows = %d", w.Rows())
	}
	groups := w.Groups()
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	g := groups[0] // r1/n1 (sorted by resolver then name)
	if g.Key.Resolver != r1 || g.Key.Name != n1 || g.Queries() != 4 {
		t.Fatalf("group 0 = %+v", g.Key)
	}
	// Unfiltered interarrivals: 3600, 1, 3599.
	if gaps := g.Interarrivals(0); len(gaps) != 3 || gaps[1] != time.Second {
		t.Errorf("gaps = %v", gaps)
	}
	// Filtered ≥2 s: the 1 s retransmission gap drops out.
	if gaps := g.Interarrivals(2 * time.Second); len(gaps) != 2 {
		t.Errorf("filtered gaps = %v", gaps)
	}
	min, ok := g.MinInterarrival(2 * time.Second)
	if !ok || min != 3599*time.Second {
		t.Errorf("min interarrival = %v %v", min, ok)
	}
	if _, ok := groups[2].MinInterarrival(0); ok {
		t.Errorf("single-query group has no interarrival")
	}
}

func TestQueryCountSampleFiltering(t *testing.T) {
	w := NewWarehouse()
	// 3 queries, two of which are a retransmission burst.
	for _, sec := range []int{0, 1, 3600} {
		w.Ingest(Row{Time: at(sec), Resolver: r1, Name: n1})
	}
	raw := w.QueryCountSample(0)
	if raw.Max() != 3 {
		t.Errorf("raw count = %v", raw.Max())
	}
	filtered := w.QueryCountSample(2 * time.Second)
	if filtered.Max() != 2 {
		t.Errorf("filtered count = %v", filtered.Max())
	}
}

func TestCentricityCensus(t *testing.T) {
	w := NewWarehouse()
	// r1 is clearly child-centric: multiple queries for n1.
	w.Ingest(Row{Time: at(0), Resolver: r1, Name: n1})
	w.Ingest(Row{Time: at(3600), Resolver: r1, Name: n1})
	// r1 queried n2 once — but is multi elsewhere.
	w.Ingest(Row{Time: at(0), Resolver: r1, Name: n2})
	// r2 queried once only: parent-centric or simply quiet.
	w.Ingest(Row{Time: at(0), Resolver: r2, Name: n1})

	c := w.CentricityCensus()
	if c.Groups != 3 || c.MultiQuery != 1 || c.SingleQuery != 2 {
		t.Fatalf("census = %+v", c)
	}
	if c.SingleButMultiElsewhere != 1 {
		t.Errorf("SingleButMultiElsewhere = %d, want 1 (r1/n2)", c.SingleButMultiElsewhere)
	}
	if c.UniqueResolvers != 2 {
		t.Errorf("resolvers = %d", c.UniqueResolvers)
	}
	if f := c.FractionMultiQuery(); f < 0.33 || f > 0.34 {
		t.Errorf("multi fraction = %v", f)
	}
	if (Census{}).FractionMultiQuery() != 0 {
		t.Errorf("empty census fraction should be 0")
	}
}

func TestMinInterarrivalSample(t *testing.T) {
	w := NewWarehouse()
	for _, sec := range []int{0, 3600, 7200} {
		w.Ingest(Row{Time: at(sec), Resolver: r1, Name: n1})
	}
	for _, sec := range []int{0, 1800} {
		w.Ingest(Row{Time: at(sec), Resolver: r2, Name: n1})
	}
	s := w.MinInterarrivalSample(2 * time.Second)
	if s.Len() != 2 {
		t.Fatalf("sample = %d", s.Len())
	}
	if s.Min() != 1800 || s.Max() != 3600 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestIngestServerLog(t *testing.T) {
	clock := simnet.NewVirtualClock()
	z := zone.New(dnswire.NewName("dns.nl"))
	z.MustAdd(
		dnswire.NewSOA("dns.nl", 3600, "ns1.dns.nl", "x.dns.nl", 1, 1, 1, 1, 60),
		dnswire.NewA("ns1.dns.nl", 3600, "192.0.2.1"),
		dnswire.NewA("ns2.dns.nl", 3600, "192.0.2.2"),
	)
	srv := authoritative.NewServer(n1, clock)
	srv.AddZone(z)
	srv.EnableQueryLog()

	send := func(name dnswire.Name) {
		q := dnswire.NewIterativeQuery(1, name, dnswire.TypeA)
		wire, _ := dnswire.Encode(q)
		srv.ServeDNS(wire, r1)
	}
	send(n1)
	clock.Advance(time.Hour)
	send(n1)
	send(n2)

	w := NewWarehouse()
	w.IngestServerLog(srv, map[dnswire.Name]bool{n1: true})
	if w.Rows() != 2 {
		t.Fatalf("filtered ingest rows = %d, want 2", w.Rows())
	}
	w2 := NewWarehouse()
	w2.IngestServerLog(srv, nil)
	if w2.Rows() != 3 {
		t.Fatalf("unfiltered ingest rows = %d", w2.Rows())
	}
	groups := w2.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if min, ok := groups[0].MinInterarrival(0); !ok || min != time.Hour {
		t.Errorf("interarrival from server log = %v %v", min, ok)
	}
}
