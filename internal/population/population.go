// Package population describes the behavioral makeup of the deployed
// resolver base. The paper never sees a resolver's source code — it sees
// the aggregate of many implementations' choices. This package captures
// those choices as weighted profiles over resolver.Policy, calibrated to
// the paper's measurements:
//
//   - ~90 % of .uy NS answers carried the child's TTL (§3.2) → the bulk of
//     the population is child-centric;
//   - ~15 % of google.co answers were capped at 21599 s (§3.3) → a
//     Google-like capping profile;
//   - ~2.9 % of .uy answers showed the full parent TTL (§3.2) and OpenDNS
//     behaved parent-centrically (§4.4) → parent-centric and RFC 7706
//     local-root profiles;
//   - ~2.25 % of VPs stayed with the renumbered-away server (§4.2) → a
//     sticky profile.
package population

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// Profile is one behavioral family with its share of the population.
type Profile struct {
	// Name labels the profile in reports ("bind-like", "opendns-like"...).
	Name string
	// Weight is the profile's share; weights in a mix are normalized.
	Weight float64
	// Policy is the resolver configuration this family runs.
	Policy resolver.Policy
}

// Mix is a weighted set of profiles.
type Mix []Profile

// DefaultMix is calibrated to the paper's findings (see package comment).
func DefaultMix() Mix {
	childBind := resolver.DefaultPolicy() // child-centric, 1-week cap
	childBind.RevalidateGlue = true
	childUnbound := resolver.DefaultPolicy()
	childUnbound.TTLCap = 86400
	childGoogle := resolver.DefaultPolicy()
	childGoogle.TTLCap = 21599
	childGoogle.CapAtServe = true
	parent := resolver.DefaultPolicy()
	parent.Centricity = resolver.ParentCentric
	localRoot := resolver.DefaultPolicy()
	localRoot.LocalRoot = true
	localRoot.Centricity = resolver.ParentCentric
	sticky := resolver.DefaultPolicy()
	sticky.Sticky = true
	decoupled := resolver.DefaultPolicy()
	decoupled.RefreshGlueOnReferral = false

	return Mix{
		{Name: "bind-like", Weight: 0.55, Policy: childBind},
		{Name: "unbound-like", Weight: 0.20, Policy: childUnbound},
		{Name: "google-like", Weight: 0.15, Policy: childGoogle},
		{Name: "opendns-like", Weight: 0.055, Policy: parent},
		{Name: "localroot", Weight: 0.02, Policy: localRoot},
		{Name: "sticky", Weight: 0.0225, Policy: sticky},
		{Name: "decoupled", Weight: 0.0025, Policy: decoupled},
	}
}

// AllChildCentric is a mix of one mainstream profile, for controlled
// experiments that want behavior held constant.
func AllChildCentric() Mix {
	return Mix{{Name: "bind-like", Weight: 1, Policy: resolver.DefaultPolicy()}}
}

// totalWeight sums the mix's weights.
func (m Mix) totalWeight() float64 {
	t := 0.0
	for _, p := range m {
		t += p.Weight
	}
	return t
}

// Validate rejects mixes that only worked by accident of implicit
// normalization: an empty mix, a zero/negative/non-finite weight, or a
// total weight that is not positive. Pick tolerated these silently (an
// empty mix fell back to a default profile, a zero-weight profile could
// still be returned as the last-row fallback); the workload compiler
// turns weights into arrival-rate shares, where such inputs must be
// loud errors rather than skewed results.
func (m Mix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("population: empty mix")
	}
	for i, p := range m {
		if math.IsNaN(p.Weight) || math.IsInf(p.Weight, 0) {
			return fmt.Errorf("population: profile %d (%q) has non-finite weight %v", i, p.Name, p.Weight)
		}
		if p.Weight <= 0 {
			return fmt.Errorf("population: profile %d (%q) has non-positive weight %v", i, p.Name, p.Weight)
		}
	}
	return nil
}

// Shares returns each profile's normalized share of the population, in mix
// order. It errors on any mix Validate rejects.
func (m Mix) Shares() ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	total := m.totalWeight()
	shares := make([]float64, len(m))
	for i, p := range m {
		shares[i] = p.Weight / total
	}
	return shares, nil
}

// Pick samples a profile proportionally to weight.
func (m Mix) Pick(r *rand.Rand) Profile {
	if len(m) == 0 {
		return Profile{Name: "default", Weight: 1, Policy: resolver.DefaultPolicy()}
	}
	x := r.Float64() * m.totalWeight()
	for _, p := range m {
		if x < p.Weight {
			return p
		}
		x -= p.Weight
	}
	return m[len(m)-1]
}

// FractionChildCentric returns the weight share of child-centric profiles.
func (m Mix) FractionChildCentric() float64 {
	if len(m) == 0 {
		return 1
	}
	child := 0.0
	for _, p := range m {
		if p.Policy.Centricity == resolver.ChildCentric && !p.Policy.LocalRoot {
			child += p.Weight
		}
	}
	return child / m.totalWeight()
}

// Builder constructs resolvers for a simulation from profiles.
type Builder struct {
	Net       simnet.Exchanger
	Clock     simnet.Clock
	RootHints []netip.Addr
	// LocalRootZone is handed to RFC 7706 profiles.
	LocalRootZone *zone.Zone
	// Network, when set, lets callers attach recursives to the simulated
	// plane as servers — needed to build resolver farms whose frontends
	// reach their backends over the wire.
	Network *simnet.Network
}

// Build instantiates a resolver at addr running the profile's policy.
func (b *Builder) Build(p Profile, addr netip.Addr, seed int64) *resolver.Resolver {
	r := resolver.New(addr, p.Policy, b.Net, b.Clock, b.RootHints, seed)
	if p.Policy.LocalRoot {
		r.LocalRootZone = b.LocalRootZone
	}
	return r
}
