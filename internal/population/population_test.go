package population

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

func TestDefaultMixWeights(t *testing.T) {
	m := DefaultMix()
	if got := m.totalWeight(); math.Abs(got-1) > 1e-9 {
		t.Errorf("total weight = %v, want 1", got)
	}
	// The paper's headline: ~90 % child-centric.
	frac := m.FractionChildCentric()
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("child-centric fraction = %.3f, want ≈0.9", frac)
	}
	names := map[string]bool{}
	for _, p := range m {
		if names[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"bind-like", "google-like", "opendns-like", "sticky", "localroot"} {
		if !names[want] {
			t.Errorf("mix missing profile %q", want)
		}
	}
}

func TestPickProportional(t *testing.T) {
	m := DefaultMix()
	r := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	n := 50000
	for i := 0; i < n; i++ {
		counts[m.Pick(r).Name]++
	}
	for _, p := range m {
		got := float64(counts[p.Name]) / float64(n)
		if math.Abs(got-p.Weight) > 0.02 {
			t.Errorf("profile %s drawn %.4f, want ≈%.4f", p.Name, got, p.Weight)
		}
	}
}

func TestPickEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var empty Mix
	p := empty.Pick(r)
	if p.Name != "default" {
		t.Errorf("empty mix pick = %+v", p)
	}
	single := AllChildCentric()
	if got := single.Pick(r); got.Name != "bind-like" {
		t.Errorf("single mix pick = %+v", got)
	}
	if single.FractionChildCentric() != 1 {
		t.Errorf("AllChildCentric fraction = %v", single.FractionChildCentric())
	}
	if (Mix{}).FractionChildCentric() != 1 {
		t.Errorf("empty mix child fraction should default to 1")
	}
}

func TestValidate(t *testing.T) {
	ok := resolver.DefaultPolicy()
	cases := []struct {
		name string
		mix  Mix
		want bool // valid?
	}{
		{"default", DefaultMix(), true},
		{"single", AllChildCentric(), true},
		{"empty", Mix{}, false},
		{"nil", nil, false},
		{"zero-weight", Mix{{Name: "a", Weight: 0, Policy: ok}}, false},
		{"negative-weight", Mix{{Name: "a", Weight: 1, Policy: ok}, {Name: "b", Weight: -0.5, Policy: ok}}, false},
		{"nan-weight", Mix{{Name: "a", Weight: math.NaN(), Policy: ok}}, false},
		{"inf-weight", Mix{{Name: "a", Weight: math.Inf(1), Policy: ok}}, false},
	}
	for _, c := range cases {
		err := c.mix.Validate()
		if c.want && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.want && err == nil {
			t.Errorf("%s: Validate accepted an invalid mix", c.name)
		}
	}
}

func TestShares(t *testing.T) {
	ok := resolver.DefaultPolicy()
	m := Mix{{Name: "a", Weight: 3, Policy: ok}, {Name: "b", Weight: 1, Policy: ok}}
	shares, err := m.Shares()
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 2 || math.Abs(shares[0]-0.75) > 1e-12 || math.Abs(shares[1]-0.25) > 1e-12 {
		t.Errorf("shares = %v, want [0.75 0.25]", shares)
	}
	if _, err := (Mix{}).Shares(); err == nil {
		t.Error("Shares on empty mix should error")
	}
	defShares, err := DefaultMix().Shares()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range defShares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("default shares sum to %v", sum)
	}
}

func TestProfilePoliciesDiffer(t *testing.T) {
	m := DefaultMix()
	byName := map[string]Profile{}
	for _, p := range m {
		byName[p.Name] = p
	}
	if byName["google-like"].Policy.TTLCap != 21599 {
		t.Errorf("google-like cap = %d", byName["google-like"].Policy.TTLCap)
	}
	if byName["opendns-like"].Policy.Centricity != resolver.ParentCentric {
		t.Errorf("opendns-like should be parent-centric")
	}
	if !byName["sticky"].Policy.Sticky {
		t.Errorf("sticky profile not sticky")
	}
	if !byName["localroot"].Policy.LocalRoot {
		t.Errorf("localroot profile not RFC 7706")
	}
	if byName["decoupled"].Policy.RefreshGlueOnReferral {
		t.Errorf("decoupled profile should not refresh glue")
	}
}

func TestBuilderBuild(t *testing.T) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(1)
	root := zone.New(dnswire.Root)
	b := &Builder{Net: net, Clock: clock,
		RootHints: []netip.Addr{netip.MustParseAddr("192.0.2.1")}, LocalRootZone: root}
	for _, p := range DefaultMix() {
		r := b.Build(p, netip.MustParseAddr("10.0.0.1"), 1)
		if r == nil || r.Cache == nil {
			t.Fatalf("Build(%s) incomplete", p.Name)
		}
		if p.Policy.LocalRoot && r.LocalRootZone != root {
			t.Errorf("localroot profile should carry the mirror")
		}
		if !p.Policy.LocalRoot && r.LocalRootZone != nil {
			t.Errorf("non-localroot profile should not carry the mirror")
		}
	}
}
