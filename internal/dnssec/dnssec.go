// Package dnssec implements the slice of DNSSEC the paper leans on (§2,
// §6.3): RRsets are signed by the child zone, the signature binds the
// original TTL, and validation therefore requires fetching the child's
// records — a validating resolver is structurally child-centric.
//
// The record formats are real (RFC 4034 DNSKEY/RRSIG/DS through the wire
// codec); the cryptography is an HMAC-SHA256 construction standing in for
// public-key signatures, which preserves every property the paper's
// analysis depends on: signatures bind owner, type, RDATA set and
// OriginalTTL, verification needs the zone's key, and tampering (including
// TTL inflation beyond the original) is detected. It is not, and does not
// need to be, real asymmetric crypto.
package dnssec

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/zone"
)

// algHMACLab is the private-use algorithm number carried in the records.
const algHMACLab = 253

// Key is a zone's signing key.
type Key struct {
	Zone   dnswire.Name
	Secret []byte
}

// NewKey derives a deterministic key for a zone from a seed.
func NewKey(z dnswire.Name, seed int64) *Key {
	h := sha256.New()
	fmt.Fprintf(h, "dnsttl-key:%s:%d", z, seed)
	return &Key{Zone: z, Secret: h.Sum(nil)}
}

// DNSKEY returns the public record form of the key (in this construction
// the verifier holds the same material, as with a shared-secret TSIG).
func (k *Key) DNSKEY(ttl uint32) dnswire.RR {
	return dnswire.RR{
		Name: k.Zone, Type: dnswire.TypeDNSKEY, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.DNSKEY{Flags: 257, Protocol: 3, Algorithm: algHMACLab, PublicKey: k.Secret},
	}
}

// KeyTag computes an RFC 4034 appendix-B-style tag over the key material.
func (k *Key) KeyTag() uint16 {
	var acc uint32
	for i, b := range k.Secret {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += acc >> 16 & 0xFFFF
	return uint16(acc)
}

// DS returns the delegation-signer digest for publishing in the parent.
func (k *Key) DS(ttl uint32) dnswire.RR {
	sum := sha256.Sum256(append([]byte(k.Zone), k.Secret...))
	return dnswire.RR{
		Name: k.Zone, Type: dnswire.TypeDS, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.DS{KeyTag: k.KeyTag(), Algorithm: algHMACLab, DigestType: 2, Digest: sum[:]},
	}
}

// signedData serializes what the signature covers: owner, class, type,
// OriginalTTL, validity window and the canonically-ordered RDATA set
// (RFC 4034 §3.1.8.1, simplified).
func signedData(rrs []dnswire.RR, origTTL uint32, expiration, inception uint32) []byte {
	if len(rrs) == 0 {
		return nil
	}
	var buf []byte
	buf = append(buf, []byte(rrs[0].Name)...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(rrs[0].Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rrs[0].Class))
	buf = binary.BigEndian.AppendUint32(buf, origTTL)
	buf = binary.BigEndian.AppendUint32(buf, expiration)
	buf = binary.BigEndian.AppendUint32(buf, inception)
	rdata := make([]string, 0, len(rrs))
	for _, rr := range rrs {
		rdata = append(rdata, rr.Data.String())
	}
	sort.Strings(rdata)
	for _, d := range rdata {
		buf = append(buf, d...)
		buf = append(buf, 0)
	}
	return buf
}

// Sign produces the RRSIG covering rrs. All records must share owner and
// type; the RRset TTL becomes OriginalTTL — the value validation pins.
func Sign(k *Key, rrs []dnswire.RR, now time.Time, validity time.Duration) (dnswire.RR, error) {
	if len(rrs) == 0 {
		return dnswire.RR{}, fmt.Errorf("dnssec: empty RRset")
	}
	owner, typ, ttl := rrs[0].Name, rrs[0].Type, rrs[0].TTL
	for _, rr := range rrs {
		if rr.Name != owner || rr.Type != typ {
			return dnswire.RR{}, fmt.Errorf("dnssec: mixed RRset (%s/%s vs %s/%s)", rr.Name, rr.Type, owner, typ)
		}
	}
	if !owner.IsSubdomainOf(k.Zone) {
		return dnswire.RR{}, fmt.Errorf("dnssec: %s outside zone %s", owner, k.Zone)
	}
	if validity <= 0 {
		validity = 14 * 24 * time.Hour
	}
	inception := uint32(now.Unix())
	expiration := uint32(now.Add(validity).Unix())
	mac := hmac.New(sha256.New, k.Secret)
	mac.Write(signedData(rrs, ttl, expiration, inception))
	sig := dnswire.RRSIG{
		TypeCovered: typ,
		Algorithm:   algHMACLab,
		Labels:      uint8(owner.CountLabels()),
		OriginalTTL: ttl,
		Expiration:  expiration,
		Inception:   inception,
		KeyTag:      k.KeyTag(),
		SignerName:  k.Zone,
		Signature:   mac.Sum(nil),
	}
	return dnswire.RR{Name: owner, Type: dnswire.TypeRRSIG, Class: dnswire.ClassIN, TTL: ttl, Data: sig}, nil
}

// Validation errors.
type ValidationError struct{ Reason string }

func (e *ValidationError) Error() string { return "dnssec: " + e.Reason }

// Verify checks sig over rrs with key material. It enforces the paper's
// §2 point: the received TTL may be lower (decayed) but never higher than
// the signed OriginalTTL.
func Verify(keyRR dnswire.RR, rrs []dnswire.RR, sigRR dnswire.RR, now time.Time) error {
	key, ok := keyRR.Data.(dnswire.DNSKEY)
	if !ok {
		return &ValidationError{"key record is not a DNSKEY"}
	}
	sig, ok := sigRR.Data.(dnswire.RRSIG)
	if !ok {
		return &ValidationError{"signature record is not an RRSIG"}
	}
	if len(rrs) == 0 {
		return &ValidationError{"empty RRset"}
	}
	if sig.TypeCovered != rrs[0].Type {
		return &ValidationError{"type covered mismatch"}
	}
	nowU := uint32(now.Unix())
	if nowU > sig.Expiration {
		return &ValidationError{"signature expired"}
	}
	if nowU < sig.Inception {
		return &ValidationError{"signature not yet valid"}
	}
	for _, rr := range rrs {
		if rr.TTL > sig.OriginalTTL {
			return &ValidationError{fmt.Sprintf("TTL %d exceeds signed original %d", rr.TTL, sig.OriginalTTL)}
		}
	}
	// Recompute over the RDATA with the signed OriginalTTL.
	canon := make([]dnswire.RR, len(rrs))
	copy(canon, rrs)
	for i := range canon {
		canon[i].TTL = sig.OriginalTTL
	}
	mac := hmac.New(sha256.New, key.PublicKey)
	mac.Write(signedData(canon, sig.OriginalTTL, sig.Expiration, sig.Inception))
	if !hmac.Equal(mac.Sum(nil), sig.Signature) {
		return &ValidationError{"signature mismatch"}
	}
	return nil
}

// SignZone signs every RRset in z (except RRSIGs themselves) and inserts
// the DNSKEY at the apex. Returns the number of RRSIGs added.
func SignZone(z *zone.Zone, k *Key, now time.Time) (int, error) {
	if err := z.Add(k.DNSKEY(3600)); err != nil {
		return 0, err
	}
	n := 0
	for _, set := range z.AllSets() {
		if set.Type == dnswire.TypeRRSIG {
			continue
		}
		sig, err := Sign(k, set.RRs, now, 0)
		if err != nil {
			return n, err
		}
		if err := z.Add(sig); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
