package dnssec

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

func testKey() *Key { return NewKey(dnswire.NewName("example.org"), 1) }

func testRRset() []dnswire.RR {
	return []dnswire.RR{
		dnswire.NewA("www.example.org", 300, "192.0.2.1"),
		dnswire.NewA("www.example.org", 300, "192.0.2.2"),
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	k := testKey()
	now := simnet.Epoch
	rrs := testRRset()
	sig, err := Sign(k, rrs, now, 0)
	if err != nil {
		t.Fatal(err)
	}
	sd := sig.Data.(dnswire.RRSIG)
	if sd.OriginalTTL != 300 || sd.SignerName != k.Zone || sd.TypeCovered != dnswire.TypeA {
		t.Errorf("RRSIG fields: %+v", sd)
	}
	if err := Verify(k.DNSKEY(3600), rrs, sig, now.Add(time.Hour)); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyAcceptsDecayedTTL(t *testing.T) {
	k := testKey()
	now := simnet.Epoch
	rrs := testRRset()
	sig, _ := Sign(k, rrs, now, 0)
	decayed := testRRset()
	for i := range decayed {
		decayed[i].TTL = 17 // what a cache would report mid-life
	}
	if err := Verify(k.DNSKEY(3600), decayed, sig, now); err != nil {
		t.Errorf("decayed TTLs must verify: %v", err)
	}
}

func TestVerifyRejectsInflatedTTL(t *testing.T) {
	k := testKey()
	now := simnet.Epoch
	rrs := testRRset()
	sig, _ := Sign(k, rrs, now, 0)
	inflated := testRRset()
	inflated[0].TTL = 172800 // parent-style inflation past the signed value
	if err := Verify(k.DNSKEY(3600), inflated, sig, now); err == nil {
		t.Errorf("TTL above OriginalTTL must fail validation (§2)")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	k := testKey()
	now := simnet.Epoch
	rrs := testRRset()
	sig, _ := Sign(k, rrs, now, 0)
	tampered := testRRset()
	tampered[0] = dnswire.NewA("www.example.org", 300, "203.0.113.66")
	if err := Verify(k.DNSKEY(3600), tampered, sig, now); err == nil {
		t.Errorf("modified RDATA must fail")
	}
	// Wrong key.
	other := NewKey(dnswire.NewName("example.org"), 2)
	if err := Verify(other.DNSKEY(3600), rrs, sig, now); err == nil {
		t.Errorf("wrong key must fail")
	}
}

func TestVerifyValidityWindow(t *testing.T) {
	k := testKey()
	now := simnet.Epoch
	rrs := testRRset()
	sig, _ := Sign(k, rrs, now, time.Hour)
	if err := Verify(k.DNSKEY(3600), rrs, sig, now.Add(2*time.Hour)); err == nil {
		t.Errorf("expired signature must fail")
	}
	if err := Verify(k.DNSKEY(3600), rrs, sig, now.Add(-time.Hour)); err == nil {
		t.Errorf("not-yet-valid signature must fail")
	}
}

func TestSignRejectsBadInput(t *testing.T) {
	k := testKey()
	now := simnet.Epoch
	if _, err := Sign(k, nil, now, 0); err == nil {
		t.Errorf("empty RRset must fail")
	}
	mixed := []dnswire.RR{
		dnswire.NewA("a.example.org", 60, "192.0.2.1"),
		dnswire.NewA("b.example.org", 60, "192.0.2.2"),
	}
	if _, err := Sign(k, mixed, now, 0); err == nil {
		t.Errorf("mixed owners must fail")
	}
	outside := []dnswire.RR{dnswire.NewA("www.example.com", 60, "192.0.2.1")}
	if _, err := Sign(k, outside, now, 0); err == nil {
		t.Errorf("out-of-zone RRset must fail")
	}
}

func TestSignZone(t *testing.T) {
	z := zone.New(dnswire.NewName("example.org"))
	z.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "x.example.org", 1, 1, 1, 1, 60),
		dnswire.NewNS("example.org", 3600, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 3600, "192.0.2.1"),
		dnswire.NewA("www.example.org", 300, "192.0.2.80"),
	)
	k := testKey()
	n, err := SignZone(z, k, simnet.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	// SOA, NS, two A sets, DNSKEY = 5 RRsets signed.
	if n != 5 {
		t.Errorf("signed %d RRsets, want 5", n)
	}
	if z.Get(dnswire.NewName("example.org"), dnswire.TypeDNSKEY) == nil {
		t.Errorf("DNSKEY missing from apex")
	}
	sigs := z.Get(dnswire.NewName("www.example.org"), dnswire.TypeRRSIG)
	if sigs == nil {
		t.Fatalf("www RRSIG missing")
	}
	// And the signature verifies against the zone data.
	www := z.Get(dnswire.NewName("www.example.org"), dnswire.TypeA)
	if err := Verify(k.DNSKEY(3600), www.RRs, sigs.RRs[0], simnet.Epoch); err != nil {
		t.Errorf("zone signature invalid: %v", err)
	}
}

func TestDSAndKeyTag(t *testing.T) {
	k := testKey()
	ds := k.DS(3600)
	d := ds.Data.(dnswire.DS)
	if d.KeyTag != k.KeyTag() || len(d.Digest) != 32 {
		t.Errorf("DS = %+v", d)
	}
	// Different zones produce different keys and tags.
	k2 := NewKey(dnswire.NewName("other.org"), 1)
	if string(k2.Secret) == string(k.Secret) {
		t.Errorf("keys should differ per zone")
	}
}

// TestQuickSignVerify: for arbitrary small RRsets, Sign → Verify holds, and
// verification fails under any single-record RDATA change.
func TestQuickSignVerify(t *testing.T) {
	k := testKey()
	now := simnet.Epoch
	f := func(octets []byte, ttl uint16) bool {
		if len(octets) == 0 {
			return true
		}
		var rrs []dnswire.RR
		for i := 0; i < len(octets) && i < 4; i++ {
			a := netip.AddrFrom4([4]byte{192, 0, octets[i], byte(i)})
			rrs = append(rrs, dnswire.NewA("h.example.org", uint32(ttl), a.String()))
		}
		sig, err := Sign(k, rrs, now, 0)
		if err != nil {
			return false
		}
		if Verify(k.DNSKEY(3600), rrs, sig, now) != nil {
			return false
		}
		mutated := append([]dnswire.RR(nil), rrs...)
		mutated[0] = dnswire.NewA("h.example.org", uint32(ttl), "198.18.0.1")
		if mutated[0].Data.String() == rrs[0].Data.String() {
			return true // mutation happened to collide; skip
		}
		return Verify(k.DNSKEY(3600), mutated, sig, now) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
