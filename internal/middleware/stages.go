package middleware

import (
	"context"
	"fmt"
	"net/netip"
	"strings"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
)

// resolverStage is the terminal stage: it hands the query to the host's
// datapath (resolver or farm frontend). The zero-config default pipeline
// is exactly one of these.
type resolverStage struct {
	name    string
	lookup  LookupFunc
	queries *obs.Counter
}

func init() {
	register("resolver", func(b *builder, sp *stageSpec) (Stage, error) {
		o := options{sp: sp, seen: map[string]bool{"type": true}}
		if err := o.finish(); err != nil {
			return nil, err
		}
		return &resolverStage{
			name:    sp.name,
			lookup:  b.env.Lookup,
			queries: b.env.counter(sp.name, "queries"),
		}, nil
	})
}

func (s *resolverStage) Name() string { return s.name }

func (s *resolverStage) Resolve(_ context.Context, q *Query) (*Response, error) {
	s.queries.Inc()
	if s.lookup == nil {
		return nil, fmt.Errorf("middleware: stage %q has no lookup datapath", s.name)
	}
	res, err := s.lookup(q.Name, q.Type)
	if err != nil {
		return nil, err
	}
	return &Response{Result: res, Verdict: VerdictResolved, Stage: s.name}, nil
}

// ttlmodStage clamps answer-section TTLs into [min, max] on the way back
// to the client — the operator-facing knob for the paper's central
// variable, applied after caching so the cache still honors origin TTLs.
type ttlmodStage struct {
	name      string
	next      Stage
	min, max  uint32
	rewritten *obs.Counter
}

func init() {
	register("ttlmod", func(b *builder, sp *stageSpec) (Stage, error) {
		o := options{sp: sp, seen: map[string]bool{"type": true}}
		st := &ttlmodStage{
			name:      sp.name,
			min:       uint32(o.integer("min", 0)),
			max:       uint32(o.integer("max", 0)),
			rewritten: b.env.counter(sp.name, "rewritten"),
		}
		next, err := b.next(&o)
		if err != nil {
			return nil, err
		}
		st.next = next
		if err := o.finish(); err != nil {
			return nil, err
		}
		if st.max != 0 && st.min > st.max {
			return nil, fmt.Errorf("middleware: stage %q: min %d > max %d", sp.name, st.min, st.max)
		}
		return st, nil
	})
}

func (s *ttlmodStage) Name() string { return s.name }

func (s *ttlmodStage) clamp(ttl uint32) uint32 {
	if ttl < s.min {
		ttl = s.min
	}
	if s.max != 0 && ttl > s.max {
		ttl = s.max
	}
	return ttl
}

func (s *ttlmodStage) Resolve(ctx context.Context, q *Query) (*Response, error) {
	resp, err := s.next.Resolve(ctx, q)
	if err != nil || resp == nil || resp.Result == nil || resp.Msg == nil {
		return resp, err
	}
	changed := false
	for _, rr := range resp.Msg.Answer {
		if s.clamp(rr.TTL) != rr.TTL {
			changed = true
			break
		}
	}
	if !changed {
		return resp, nil
	}
	// Copy-on-write: the message may be shared with a cache entry or a
	// coalesced follower.
	cp := *resp.Result
	cp.Msg = copyMsg(resp.Msg)
	for i := range cp.Msg.Answer {
		cp.Msg.Answer[i].TTL = s.clamp(cp.Msg.Answer[i].TTL)
	}
	if len(cp.Msg.Answer) > 0 {
		cp.Trace.AnswerTTL = cp.Msg.Answer[0].TTL
	}
	s.rewritten.Inc()
	out := *resp
	out.Result = &cp
	return &out, nil
}

// collapseStage minimizes responses: it strips the authority and
// additional sections and can cap the answer section, trading referral
// context for datagram size (qname-minimization's response-side cousin).
type collapseStage struct {
	name      string
	next      Stage
	maxAnswer int // 0 = no cap
	collapsed *obs.Counter
}

func init() {
	register("collapse", func(b *builder, sp *stageSpec) (Stage, error) {
		o := options{sp: sp, seen: map[string]bool{"type": true}}
		st := &collapseStage{
			name:      sp.name,
			maxAnswer: o.integer("answers", 0),
			collapsed: b.env.counter(sp.name, "collapsed"),
		}
		next, err := b.next(&o)
		if err != nil {
			return nil, err
		}
		st.next = next
		if err := o.finish(); err != nil {
			return nil, err
		}
		return st, nil
	})
}

func (s *collapseStage) Name() string { return s.name }

func (s *collapseStage) Resolve(ctx context.Context, q *Query) (*Response, error) {
	resp, err := s.next.Resolve(ctx, q)
	if err != nil || resp == nil || resp.Result == nil || resp.Msg == nil {
		return resp, err
	}
	m := resp.Msg
	capped := s.maxAnswer > 0 && len(m.Answer) > s.maxAnswer
	if len(m.Authority) == 0 && len(m.Additional) == 0 && !capped {
		return resp, nil
	}
	cp := *resp.Result
	cp.Msg = copyMsg(m)
	cp.Msg.Authority = nil
	cp.Msg.Additional = nil
	if capped {
		cp.Msg.Answer = cp.Msg.Answer[:s.maxAnswer]
	}
	s.collapsed.Inc()
	out := *resp
	out.Result = &cp
	return &out, nil
}

// staticStage answers an exact set of names locally with a fixed A record
// — split-horizon overrides, sinkholes, and test fixtures. Non-matching
// queries pass through.
type staticStage struct {
	name    string
	next    Stage
	names   map[dnswire.Name]bool
	answer  dnswire.RR
	served  *obs.Counter
}

func init() {
	register("static", func(b *builder, sp *stageSpec) (Stage, error) {
		o := options{sp: sp, seen: map[string]bool{"type": true}}
		st := &staticStage{
			name:   sp.name,
			names:  map[dnswire.Name]bool{},
			served: b.env.counter(sp.name, "served"),
		}
		for _, n := range strings.Fields(o.str("names", "")) {
			name := dnswire.NewName(n)
			if err := name.Valid(); err != nil {
				return nil, fmt.Errorf("middleware: stage %q: bad name %q: %v", sp.name, n, err)
			}
			st.names[name] = true
		}
		addr := o.str("answer", "")
		ttl := o.integer("ttl", 300)
		next, err := b.next(&o)
		if err != nil {
			return nil, err
		}
		st.next = next
		if err := o.finish(); err != nil {
			return nil, err
		}
		if len(st.names) == 0 {
			return nil, fmt.Errorf("middleware: stage %q needs names = \"a.example b.example\"", sp.name)
		}
		ip, err := netip.ParseAddr(addr)
		if err != nil || !ip.Is4() {
			return nil, fmt.Errorf("middleware: stage %q needs answer = \"ipv4\", got %q", sp.name, addr)
		}
		st.answer = dnswire.RR{
			Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: uint32(ttl), Data: dnswire.A{Addr: ip},
		}
		return st, nil
	})
}

func (s *staticStage) Name() string { return s.name }

func (s *staticStage) Resolve(ctx context.Context, q *Query) (*Response, error) {
	if q.Type != dnswire.TypeA || !s.names[q.Name] {
		return s.next.Resolve(ctx, q)
	}
	s.served.Inc()
	rr := s.answer
	rr.Name = q.Name
	res := refused(q)
	res.Msg.Header.RCode = dnswire.RCodeNoError
	res.Msg.Header.AA = false
	res.Msg.AddAnswer(rr)
	res.Trace.CacheHit = true
	res.Trace.AnswerTTL = rr.TTL
	return &Response{Result: res, Verdict: VerdictBlocked, Stage: s.name}, nil
}
