package middleware

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The spec grammar is a TOML subset shaped like a routedns config: named
// stage tables plus one top-level entry key.
//
//	# abuse-hardened frontend
//	entry = "shield"
//
//	[stage.shield]
//	type   = "ratelimit"
//	qps    = 2
//	burst  = 10
//	next   = "block"
//
//	[stage.block]
//	type   = "blocklist"
//	block  = "ads.example tracker.example"
//	action = "nxdomain"
//	next   = "resolver"
//
//	[stage.resolver]
//	type = "resolver"
//
// Keys take one value: a "quoted string" or a bare token (numbers,
// durations, fractions). Every stage needs a type; every non-terminal
// type needs a next. entry may be omitted when the spec has exactly one
// stage table. An empty spec compiles to the default pipeline.

// stageSpec is one parsed [stage.NAME] table.
type stageSpec struct {
	name string
	opts map[string]string
	line int // of the table header, for error messages
}

// parsed is a whole parsed spec.
type parsed struct {
	entry  string
	stages []*stageSpec
}

// parseSpec parses the text grammar. It is strict: unknown syntax,
// duplicate tables, or duplicate keys are errors, so a bad SIGHUP reload
// is rejected instead of half-applied.
func parseSpec(text string) (*parsed, error) {
	p := &parsed{}
	byName := map[string]*stageSpec{}
	var cur *stageSpec
	for i, raw := range strings.Split(text, "\n") {
		line := i + 1
		s := strings.TrimSpace(raw)
		if j := strings.IndexByte(s, '#'); j >= 0 {
			s = strings.TrimSpace(s[:j])
		}
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "[") {
			if !strings.HasSuffix(s, "]") {
				return nil, fmt.Errorf("middleware: line %d: unterminated table header %q", line, s)
			}
			name, ok := strings.CutPrefix(s[1:len(s)-1], "stage.")
			name = strings.TrimSpace(name)
			if !ok || name == "" {
				return nil, fmt.Errorf("middleware: line %d: want [stage.NAME], got %q", line, s)
			}
			if byName[name] != nil {
				return nil, fmt.Errorf("middleware: line %d: duplicate stage %q", line, name)
			}
			cur = &stageSpec{name: name, opts: map[string]string{}, line: line}
			byName[name] = cur
			p.stages = append(p.stages, cur)
			continue
		}
		key, val, ok := strings.Cut(s, "=")
		if !ok {
			return nil, fmt.Errorf("middleware: line %d: want key = value, got %q", line, s)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if strings.HasPrefix(val, `"`) {
			unq, err := strconv.Unquote(val)
			if err != nil {
				return nil, fmt.Errorf("middleware: line %d: bad string %s", line, val)
			}
			val = unq
		}
		if cur == nil {
			if key != "entry" {
				return nil, fmt.Errorf("middleware: line %d: key %q outside a [stage.*] table (only entry may precede them)", line, key)
			}
			if p.entry != "" {
				return nil, fmt.Errorf("middleware: line %d: duplicate entry", line)
			}
			p.entry = val
			continue
		}
		if _, dup := cur.opts[key]; dup {
			return nil, fmt.Errorf("middleware: line %d: duplicate key %q in stage %q", line, key, cur.name)
		}
		cur.opts[key] = val
	}
	if p.entry == "" {
		if len(p.stages) == 1 {
			p.entry = p.stages[0].name
		} else if len(p.stages) > 1 {
			return nil, fmt.Errorf("middleware: spec has %d stages but no entry = \"name\"", len(p.stages))
		}
	} else if len(p.stages) == 0 {
		// An entry naming a stage that was never defined must be an error,
		// not a silent fallback to the default pipeline — a truncated
		// SIGHUP reload would otherwise swap the whole graph out.
		return nil, fmt.Errorf("middleware: entry %q references an undefined stage (spec has no [stage.*] tables)", p.entry)
	}
	return p, nil
}

// buildFunc constructs one stage kind. next is nil for terminal kinds.
type buildFunc func(b *builder, sp *stageSpec) (Stage, error)

// stageKinds registers every stage type the grammar accepts. Each stage
// file adds its kind in init(); scripts/docs_check.sh requires every
// registered kind to be documented in docs/middleware.md.
var stageKinds = map[string]buildFunc{}

func register(kind string, fn buildFunc) { stageKinds[kind] = fn }

// StageKinds lists the registered stage type names, sorted.
func StageKinds() []string {
	out := make([]string, 0, len(stageKinds))
	for k := range stageKinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// builder resolves stage references while compiling a parsed spec.
type builder struct {
	env      Env
	specs    map[string]*stageSpec
	built    map[string]Stage
	building map[string]bool // cycle detection
}

// Build compiles a spec against env. An empty (or comment-only) spec
// yields the default pipeline. Build validates everything up front —
// unknown types, unknown keys, dangling next references, cycles — so a
// pipeline that compiles can be swapped in live.
func Build(spec string, env Env) (*Pipeline, error) {
	p, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	if len(p.stages) == 0 {
		pl := Default(env)
		pl.spec = spec
		return pl, nil
	}
	b := &builder{
		env:      env,
		specs:    map[string]*stageSpec{},
		built:    map[string]Stage{},
		building: map[string]bool{},
	}
	for _, sp := range p.stages {
		b.specs[sp.name] = sp
	}
	entry, err := b.stage(p.entry)
	if err != nil {
		return nil, err
	}
	pl := &Pipeline{entry: entry, spec: spec}
	for _, sp := range p.stages {
		st, err := b.stage(sp.name) // builds any stage entry doesn't reach
		if err != nil {
			return nil, err
		}
		pl.stages = append(pl.stages, st)
	}
	return pl, nil
}

// MustBuild is Build for canned specs in tests and experiments.
func MustBuild(spec string, env Env) *Pipeline {
	p, err := Build(spec, env)
	if err != nil {
		panic(err)
	}
	return p
}

// Check parses and type-checks a spec without an environment — the
// daemons validate a -pipeline file (and a SIGHUP replacement) with it
// before committing.
func Check(spec string) error {
	_, err := Build(spec, Env{})
	return err
}

// stage returns the named stage, building it (and its next chain) once.
func (b *builder) stage(name string) (Stage, error) {
	if st, ok := b.built[name]; ok {
		return st, nil
	}
	sp, ok := b.specs[name]
	if !ok {
		return nil, fmt.Errorf("middleware: reference to undefined stage %q", name)
	}
	if b.building[name] {
		return nil, fmt.Errorf("middleware: stage cycle through %q", name)
	}
	b.building[name] = true
	defer delete(b.building, name)

	o := options{sp: sp, seen: map[string]bool{"type": true}}
	kind := o.str("type", "")
	if kind == "" {
		return nil, fmt.Errorf("middleware: stage %q (line %d) has no type", sp.name, sp.line)
	}
	build, ok := stageKinds[kind]
	if !ok {
		return nil, fmt.Errorf("middleware: stage %q: unknown type %q (known: %s)",
			sp.name, kind, strings.Join(StageKinds(), ", "))
	}
	st, err := build(b, sp)
	if err != nil {
		return nil, err
	}
	b.built[name] = st
	return st, nil
}

// next builds the stage's next reference — required for every
// non-terminal stage kind.
func (b *builder) next(o *options) (Stage, error) {
	name := o.str("next", "")
	if name == "" {
		return nil, fmt.Errorf("middleware: stage %q needs next = \"stage\"", o.sp.name)
	}
	return b.stage(name)
}

// options wraps a stage's key/value table with typed, consumption-tracked
// getters so finish() can reject misspelled keys.
type options struct {
	sp   *stageSpec
	seen map[string]bool
	err  error
}

func (o *options) str(key, def string) string {
	o.seen[key] = true
	if v, ok := o.sp.opts[key]; ok {
		return v
	}
	return def
}

func (o *options) num(key string, def float64) float64 {
	o.seen[key] = true
	v, ok := o.sp.opts[key]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && o.err == nil {
		o.err = fmt.Errorf("middleware: stage %q: %s = %q is not a number", o.sp.name, key, v)
	}
	return f
}

func (o *options) integer(key string, def int) int {
	o.seen[key] = true
	v, ok := o.sp.opts[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil && o.err == nil {
		o.err = fmt.Errorf("middleware: stage %q: %s = %q is not an integer", o.sp.name, key, v)
	}
	return n
}

// finish reports the first typed-getter error, then any key the stage
// never consumed — a typo, under the strict-reload contract.
func (o *options) finish() error {
	if o.err != nil {
		return o.err
	}
	var unknown []string
	for k := range o.sp.opts {
		if !o.seen[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("middleware: stage %q: unknown key(s) %s", o.sp.name, strings.Join(unknown, ", "))
	}
	return nil
}
