package middleware

import (
	"context"
	"sync"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
)

// dedupStage coalesces identical in-flight questions: the first query for
// a ⟨name, type⟩ becomes the leader and runs the rest of the chain;
// queries arriving before it finishes wait and share its answer. This is
// the farm's cross-frontend singleflight expressed as a pipeline stage,
// so a single-resolver deployment — or a sub-chain behind a router — can
// opt into coalescing too. Deduplication is name-keyed, never
// client-keyed: placing it after a rate limiter keeps per-client
// accounting exact.
type dedupStage struct {
	name      string
	next      Stage
	leaders   *obs.Counter
	coalesced *obs.Counter

	mu    sync.Mutex
	calls map[dedupKey]*dedupCall
}

type dedupKey struct {
	name  dnswire.Name
	qtype dnswire.Type
}

type dedupCall struct {
	wg   sync.WaitGroup
	resp *Response
	err  error
	dups int
}

func init() {
	register("dedup", func(b *builder, sp *stageSpec) (Stage, error) {
		o := options{sp: sp, seen: map[string]bool{"type": true}}
		st := &dedupStage{
			name:      sp.name,
			leaders:   b.env.counter(sp.name, "leaders"),
			coalesced: b.env.counter(sp.name, "coalesced"),
			calls:     map[dedupKey]*dedupCall{},
		}
		next, err := b.next(&o)
		if err != nil {
			return nil, err
		}
		st.next = next
		if err := o.finish(); err != nil {
			return nil, err
		}
		return st, nil
	})
}

func (s *dedupStage) Name() string { return s.name }

func (s *dedupStage) Resolve(ctx context.Context, q *Query) (*Response, error) {
	k := dedupKey{name: q.Name, qtype: q.Type}
	s.mu.Lock()
	if c, ok := s.calls[k]; ok {
		c.dups++
		s.mu.Unlock()
		s.coalesced.Inc()
		c.wg.Wait()
		if c.err != nil || c.resp == nil || c.resp.Result == nil {
			return c.resp, c.err
		}
		// Followers get their own Result marked coalesced (the message is
		// shared, read-only by convention): they cost zero upstream work.
		cp := *c.resp.Result
		cp.CacheHit = false
		cp.Coalesced = true
		cp.Queries = 0
		cp.Timeouts = 0
		cp.Retries = 0
		cp.Hedges = 0
		out := *c.resp
		out.Result = &cp
		return &out, nil
	}
	c := &dedupCall{}
	c.wg.Add(1)
	s.calls[k] = c
	s.mu.Unlock()

	s.leaders.Inc()
	c.resp, c.err = s.next.Resolve(ctx, q)

	s.mu.Lock()
	delete(s.calls, k)
	s.mu.Unlock()
	c.wg.Done()
	return c.resp, c.err
}

// inFlight reports how many followers are waiting on k — tests use it to
// stage deterministic coalescing.
func (s *dedupStage) inFlight(k dedupKey) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.calls[k]; ok {
		return c.dups
	}
	return 0
}
