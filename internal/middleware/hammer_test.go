package middleware

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
)

// TestPipelineRaceHammer drives the stateful stages — per-client rate
// limiter, singleflight dedup, and the response memo — from many
// goroutines at once on the wall clock. It exists for the -race build:
// the limiter's bucket map, the dedup call table, and the memo's FIFO all
// mutate under concurrent load here, so any missing lock shows up as a
// detector report rather than a production heisenbug.
func TestPipelineRaceHammer(t *testing.T) {
	const spec = `
entry = "limit"

[stage.limit]
type = "ratelimit"
qps = 50000
burst = 100000
action = "refuse"
next = "dedup"

[stage.dedup]
type = "dedup"
next = "memo"

[stage.memo]
type = "cache"
entries = 64
next = "resolve"

[stage.resolve]
type = "resolver"
`
	var lookups atomic.Int64
	lookup := func(name dnswire.Name, qtype dnswire.Type) (*resolver.Result, error) {
		lookups.Add(1)
		// A short real sleep keeps many goroutines inside the dedup
		// leader window at once.
		time.Sleep(50 * time.Microsecond)
		msg := &dnswire.Message{Header: dnswire.Header{QR: true, RA: true}}
		msg.Question = []dnswire.Question{{Name: name, Type: qtype, Class: dnswire.ClassIN}}
		msg.AddAnswer(dnswire.RR{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 30, Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}})
		return &resolver.Result{Msg: msg, Trace: resolver.Trace{Queries: 1}}, nil
	}
	reg := obs.NewRegistry(simnet.WallClock{})
	p, err := Build(spec, Env{Lookup: lookup, Clock: simnet.WallClock{}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 32
	const perG = 300
	names := make([]dnswire.Name, 8)
	for i := range names {
		names[i] = dnswire.NewName(fmt.Sprintf("h%d.example.org", i))
	}
	var wg sync.WaitGroup
	var served atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := netip.AddrFrom4([4]byte{10, 0, byte(g >> 8), byte(g)})
			for i := 0; i < perG; i++ {
				q := &Query{Name: names[(g+i)%len(names)], Type: dnswire.TypeA, Client: client}
				resp, err := p.Resolve(context.Background(), q)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if resp != nil && resp.Result != nil {
					served.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	if got := served.Load(); got != goroutines*perG {
		t.Fatalf("served %d of %d queries", got, goroutines*perG)
	}
	// Dedup and the memo must have absorbed work: strictly fewer upstream
	// lookups than queries proves coalescing/memoization engaged under
	// contention (8 names, 30 s TTL, ~10k queries).
	if l := lookups.Load(); l >= goroutines*perG {
		t.Fatalf("no coalescing: %d lookups for %d queries", l, goroutines*perG)
	}
}
