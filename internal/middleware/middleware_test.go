package middleware

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
)

// fakeLookup is a counting terminal datapath returning a canned answer.
type fakeLookup struct {
	calls atomic.Int64
	ttl   uint32
	delay func() // optional hook run inside the lookup, for coalescing tests
}

func (f *fakeLookup) lookup(name dnswire.Name, qtype dnswire.Type) (*resolver.Result, error) {
	f.calls.Add(1)
	if f.delay != nil {
		f.delay()
	}
	ttl := f.ttl
	if ttl == 0 {
		ttl = 300
	}
	msg := &dnswire.Message{
		Header:   dnswire.Header{QR: true, RA: true},
		Question: []dnswire.Question{{Name: name, Type: qtype, Class: dnswire.ClassIN}},
	}
	msg.AddAnswer(dnswire.RR{
		Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")},
	})
	msg.AddAuthority(dnswire.NewNS("example.org", 3600, "ns1.example.org"))
	return &resolver.Result{Msg: msg, Trace: resolver.Trace{Queries: 1, AnswerTTL: ttl}}, nil
}

func query(name string, client string) *Query {
	q := &Query{Name: dnswire.MustName(name), Type: dnswire.TypeA}
	if client != "" {
		q.Client = netip.MustParseAddr(client)
	}
	return q
}

func TestDefaultPipelineIsSingleTerminalStage(t *testing.T) {
	fl := &fakeLookup{}
	p := Default(Env{Lookup: fl.lookup})
	if got := p.Stages(); len(got) != 1 || got[0] != "resolver" {
		t.Fatalf("Stages() = %v, want [resolver]", got)
	}
	resp, err := p.Resolve(context.Background(), query("www.example.org", ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != VerdictResolved || resp.Drop {
		t.Fatalf("verdict = %v drop = %v", resp.Verdict, resp.Drop)
	}
	if fl.calls.Load() != 1 {
		t.Fatalf("lookup calls = %d, want 1", fl.calls.Load())
	}
}

func TestBuildEmptySpecIsDefault(t *testing.T) {
	fl := &fakeLookup{}
	p, err := Build("  # only a comment\n\n", Env{Lookup: fl.lookup})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stages(); len(got) != 1 || got[0] != "resolver" {
		t.Fatalf("Stages() = %v, want [resolver]", got)
	}
}

func TestSpecParseErrors(t *testing.T) {
	cases := []struct{ name, spec, wantErr string }{
		{"garbage line", "what even is this", "want key = value"},
		{"bad header", "[stage.x\ntype = \"resolver\"", "unterminated"},
		{"not a stage table", "[other.x]", "want [stage.NAME]"},
		{"dup stage", "[stage.a]\ntype=\"resolver\"\n[stage.a]\ntype=\"resolver\"", "duplicate stage"},
		{"dup key", "[stage.a]\ntype=\"resolver\"\ntype=\"resolver\"", "duplicate key"},
		{"key before tables", "foo = 1\n[stage.a]\ntype=\"resolver\"", "outside a [stage.*] table"},
		{"many stages no entry", "[stage.a]\ntype=\"resolver\"\n[stage.b]\ntype=\"resolver\"", "no entry"},
		{"unknown type", "[stage.a]\ntype = \"warp\"", "unknown type"},
		{"missing type", "[stage.a]\nnext = \"b\"", "has no type"},
		{"unknown key", "[stage.a]\ntype = \"resolver\"\nwhat = 1", "unknown key"},
		{"dangling next", "[stage.a]\ntype = \"dedup\"\nnext = \"ghost\"", "undefined stage"},
		{"dangling entry", "entry = \"ghost\"\n[stage.a]\ntype = \"resolver\"", "undefined stage"},
		{"cycle", "entry=\"a\"\n[stage.a]\ntype=\"dedup\"\nnext=\"b\"\n[stage.b]\ntype=\"dedup\"\nnext=\"a\"", "cycle"},
		{"bad number", "entry=\"a\"\n[stage.a]\ntype=\"ratelimit\"\nqps=\"fast\"\nnext=\"r\"\n[stage.r]\ntype=\"resolver\"", "not a number"},
		{"missing next", "[stage.a]\ntype = \"dedup\"", "needs next"},
		{"bad action", "entry=\"a\"\n[stage.a]\ntype=\"blocklist\"\nblock=\"x.example\"\naction=\"explode\"\nnext=\"r\"\n[stage.r]\ntype=\"resolver\"", "action must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Build(tc.spec, Env{Lookup: (&fakeLookup{}).lookup})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Build err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestCheckNeedsNoEnv(t *testing.T) {
	if err := Check("[stage.only]\ntype = \"resolver\"\n"); err != nil {
		t.Fatal(err)
	}
	if err := Check("[stage.only]\ntype = \"bogus\"\n"); err == nil {
		t.Fatal("want error for unknown type")
	}
}

func TestBlocklistStage(t *testing.T) {
	fl := &fakeLookup{}
	reg := obs.NewRegistry(nil)
	p := MustBuild(`
entry = "bl"
[stage.bl]
type   = "blocklist"
block  = "bad.example tracker.net"
action = "nxdomain"
next   = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup, Registry: reg})

	resp, err := p.Resolve(context.Background(), query("x.y.bad.example", "10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != VerdictBlocked || resp.Stage != "bl" {
		t.Fatalf("verdict = %v stage = %q", resp.Verdict, resp.Stage)
	}
	if resp.Msg.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v, want NXDomain", resp.Msg.Header.RCode)
	}
	if fl.calls.Load() != 0 {
		t.Fatal("blocked query reached the resolver")
	}

	if _, err := p.Resolve(context.Background(), query("good.example", "10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if fl.calls.Load() != 1 {
		t.Fatalf("pass-through calls = %d, want 1", fl.calls.Load())
	}
	if got := reg.Counter("mw.bl.blocked").Value(); got != 1 {
		t.Fatalf("mw.bl.blocked = %d, want 1", got)
	}
}

func TestStaticStage(t *testing.T) {
	fl := &fakeLookup{}
	p := MustBuild(`
entry = "pin"
[stage.pin]
type   = "static"
names  = "intranet.corp"
answer = "10.1.2.3"
ttl    = 60
next   = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup})

	resp, err := p.Resolve(context.Background(), query("intranet.corp", ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Msg.Answer) != 1 || resp.Msg.Answer[0].TTL != 60 {
		t.Fatalf("answer = %v", resp.Msg.Answer)
	}
	if a := resp.Msg.Answer[0].Data.(dnswire.A); a.Addr != netip.MustParseAddr("10.1.2.3") {
		t.Fatalf("addr = %v", a.Addr)
	}
	if resp.Msg.Answer[0].Name != dnswire.MustName("intranet.corp") {
		t.Fatalf("owner = %v", resp.Msg.Answer[0].Name)
	}
	// AAAA for the same name passes through.
	qa := query("intranet.corp", "")
	qa.Type = dnswire.TypeAAAA
	if _, err := p.Resolve(context.Background(), qa); err != nil {
		t.Fatal(err)
	}
	if fl.calls.Load() != 1 {
		t.Fatalf("resolver calls = %d, want 1", fl.calls.Load())
	}
}

func TestRateLimitStage(t *testing.T) {
	fl := &fakeLookup{}
	clk := simnet.NewVirtualClock()
	reg := obs.NewRegistry(clk)
	p := MustBuild(`
entry = "shield"
[stage.shield]
type  = "ratelimit"
qps   = 1
burst = 2
next  = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup, Clock: clk, Registry: reg})

	ctx := context.Background()
	// Burst of 2 admitted, third limited.
	for i := 0; i < 2; i++ {
		resp, err := p.Resolve(ctx, query("a.example", "10.0.0.9"))
		if err != nil || resp.Verdict != VerdictResolved {
			t.Fatalf("query %d: verdict = %v err = %v", i, resp.Verdict, err)
		}
	}
	resp, err := p.Resolve(ctx, query("a.example", "10.0.0.9"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != VerdictLimited || resp.Msg.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("verdict = %v rcode = %v", resp.Verdict, resp.Msg.Header.RCode)
	}
	// A different client has its own bucket.
	if resp, _ := p.Resolve(ctx, query("a.example", "10.0.0.10")); resp.Verdict != VerdictResolved {
		t.Fatalf("other client limited: %v", resp.Verdict)
	}
	// Refill after a second.
	clk.Advance(time.Second)
	if resp, _ := p.Resolve(ctx, query("a.example", "10.0.0.9")); resp.Verdict != VerdictResolved {
		t.Fatalf("post-refill verdict = %v", resp.Verdict)
	}
	// Clientless (in-process) queries bypass the limiter entirely.
	for i := 0; i < 10; i++ {
		if resp, _ := p.Resolve(ctx, query("a.example", "")); resp.Verdict != VerdictResolved {
			t.Fatalf("clientless query limited")
		}
	}
	if got := reg.Counter("mw.shield.limited").Value(); got != 1 {
		t.Fatalf("mw.shield.limited = %d, want 1", got)
	}
}

func TestRateLimitPrefixAggregation(t *testing.T) {
	fl := &fakeLookup{}
	clk := simnet.NewVirtualClock()
	p := MustBuild(`
entry = "shield"
[stage.shield]
type    = "ratelimit"
qps     = 1
burst   = 1
prefix4 = 24
action  = "drop"
next    = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup, Clock: clk})

	ctx := context.Background()
	if resp, _ := p.Resolve(ctx, query("a.example", "203.0.113.7")); resp.Verdict != VerdictResolved {
		t.Fatalf("first query limited")
	}
	// Same /24, different host: shares the bucket, and drop mode asks the
	// caller to send nothing.
	resp, err := p.Resolve(ctx, query("a.example", "203.0.113.99"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != VerdictLimited || !resp.Drop {
		t.Fatalf("verdict = %v drop = %v, want limited drop", resp.Verdict, resp.Drop)
	}
}

func TestDedupStageCoalesces(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	fl := &fakeLookup{delay: func() {
		once.Do(func() { close(entered) })
		<-release
	}}
	p := MustBuild(`
entry = "sf"
[stage.sf]
type = "dedup"
next = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup})

	ctx := context.Background()
	const followers = 4
	var wg sync.WaitGroup
	results := make([]*Response, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _ = p.Resolve(ctx, query("cold.example", "10.0.0.1"))
	}()
	<-entered
	sf := p.stages[0].(*dedupStage)
	k := dedupKey{name: dnswire.MustName("cold.example"), qtype: dnswire.TypeA}
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = p.Resolve(ctx, query("cold.example", "10.0.0.2"))
		}(i)
	}
	for sf.inFlight(k) < followers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if fl.calls.Load() != 1 {
		t.Fatalf("lookup calls = %d, want 1 (coalesced)", fl.calls.Load())
	}
	coalesced := 0
	for i, r := range results {
		if r == nil || r.Result == nil {
			t.Fatalf("result %d is nil", i)
		}
		if r.Coalesced {
			coalesced++
			if r.Queries != 0 {
				t.Fatalf("follower %d charged %d queries", i, r.Queries)
			}
		}
	}
	if coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", coalesced, followers)
	}
}

func TestCacheStage(t *testing.T) {
	fl := &fakeLookup{ttl: 100}
	clk := simnet.NewVirtualClock()
	p := MustBuild(`
entry = "memo"
[stage.memo]
type = "cache"
next = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup, Clock: clk})

	ctx := context.Background()
	if resp, _ := p.Resolve(ctx, query("hot.example", "10.0.0.1")); resp.Verdict != VerdictResolved {
		t.Fatal("first query should miss")
	}
	clk.Advance(40 * time.Second)
	resp, err := p.Resolve(ctx, query("hot.example", "10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != VerdictCached || !resp.CacheHit {
		t.Fatalf("verdict = %v cachehit = %v", resp.Verdict, resp.CacheHit)
	}
	if got := resp.Msg.Answer[0].TTL; got != 60 {
		t.Fatalf("decayed TTL = %d, want 60", got)
	}
	if fl.calls.Load() != 1 {
		t.Fatalf("lookup calls = %d, want 1", fl.calls.Load())
	}
	// Expiry: past the TTL the entry is refetched.
	clk.Advance(61 * time.Second)
	if resp, _ := p.Resolve(ctx, query("hot.example", "10.0.0.1")); resp.Verdict != VerdictResolved {
		t.Fatal("expired entry should miss")
	}
	if fl.calls.Load() != 2 {
		t.Fatalf("lookup calls = %d, want 2", fl.calls.Load())
	}
}

func TestCacheStageEviction(t *testing.T) {
	fl := &fakeLookup{ttl: 1000}
	clk := simnet.NewVirtualClock()
	p := MustBuild(`
entry = "memo"
[stage.memo]
type    = "cache"
entries = 2
next    = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup, Clock: clk})

	ctx := context.Background()
	for _, n := range []string{"a.example", "b.example", "c.example"} {
		if _, err := p.Resolve(ctx, query(n, "")); err != nil {
			t.Fatal(err)
		}
	}
	// a was evicted FIFO; c is memoized.
	p.Resolve(ctx, query("c.example", ""))
	if fl.calls.Load() != 3 {
		t.Fatalf("calls after c re-query = %d, want 3", fl.calls.Load())
	}
	p.Resolve(ctx, query("a.example", ""))
	if fl.calls.Load() != 4 {
		t.Fatalf("calls after a re-query = %d, want 4 (a evicted)", fl.calls.Load())
	}
}

func TestTTLModStage(t *testing.T) {
	fl := &fakeLookup{ttl: 86400}
	p := MustBuild(`
entry = "clamp"
[stage.clamp]
type = "ttlmod"
min  = 30
max  = 3600
next = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup})

	resp, err := p.Resolve(context.Background(), query("long.example", ""))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Msg.Answer[0].TTL; got != 3600 {
		t.Fatalf("clamped TTL = %d, want 3600", got)
	}
	if resp.AnswerTTL != 3600 {
		t.Fatalf("trace AnswerTTL = %d, want 3600", resp.AnswerTTL)
	}
}

func TestCollapseStage(t *testing.T) {
	fl := &fakeLookup{}
	p := MustBuild(`
entry = "min"
[stage.min]
type = "collapse"
next = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup})

	resp, err := p.Resolve(context.Background(), query("www.example.org", ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Msg.Authority) != 0 || len(resp.Msg.Additional) != 0 {
		t.Fatalf("sections not stripped: %d/%d", len(resp.Msg.Authority), len(resp.Msg.Additional))
	}
	if len(resp.Msg.Answer) != 1 {
		t.Fatalf("answer count = %d", len(resp.Msg.Answer))
	}
}

func TestRouterStage(t *testing.T) {
	fl := &fakeLookup{}
	p := MustBuild(`
entry = "split"
[stage.split]
type    = "router"
routes  = "blocked.example -> bl; example -> r"
default = "r"
[stage.bl]
type   = "blocklist"
block  = "blocked.example"
action = "refused"
next   = "r"
[stage.r]
type = "resolver"
`, Env{Lookup: fl.lookup})

	resp, err := p.Resolve(context.Background(), query("x.blocked.example", "10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Verdict != VerdictBlocked || resp.Msg.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("routed query: verdict = %v rcode = %v", resp.Verdict, resp.Msg.Header.RCode)
	}
	if resp2, _ := p.Resolve(context.Background(), query("ok.example", "10.0.0.1")); resp2.Verdict != VerdictResolved {
		t.Fatalf("suffix route verdict = %v", resp2.Verdict)
	}
	if resp3, _ := p.Resolve(context.Background(), query("elsewhere.net", "10.0.0.1")); resp3.Verdict != VerdictResolved {
		t.Fatalf("default route verdict = %v", resp3.Verdict)
	}
}

func TestStageKindsRegistered(t *testing.T) {
	want := []string{"blocklist", "cache", "collapse", "dedup", "ratelimit", "resolver", "router", "static", "ttlmod"}
	got := StageKinds()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("StageKinds() = %v, want %v", got, want)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictResolved: "resolved", VerdictBlocked: "blocked",
		VerdictLimited: "limited", VerdictCached: "cached",
	} {
		if v.String() != want {
			t.Fatalf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}
