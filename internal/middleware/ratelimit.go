package middleware

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnsttl/internal/obs"
	"dnsttl/internal/simnet"
)

// rateLimitStage is a per-client token bucket: each masked client address
// earns qps tokens per second up to burst, and a query that finds the
// bucket empty is refused (or silently dropped). Clients are masked to a
// prefix — /32 and /64 by default — so one flooding host cannot rotate
// through a /24 of sources to earn fresh buckets, and one NAT'd office
// shares a single budget, the same aggregation classic resolver ACL
// limiters use.
type rateLimitStage struct {
	name             string
	next             Stage
	qps              float64
	burst            float64
	prefix4, prefix6 int
	drop             bool
	clock            simnet.Clock

	limited *obs.Counter
	passed  *obs.Counter

	mu      sync.Mutex
	buckets map[netip.Addr]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds limiter state against source-address floods: at the
// cap the table is reset wholesale, which briefly re-admits everyone —
// strictly safer than unbounded growth, and cheaper than LRU bookkeeping
// on the per-query hot path.
const maxBuckets = 1 << 16

func init() {
	register("ratelimit", func(b *builder, sp *stageSpec) (Stage, error) {
		o := options{sp: sp, seen: map[string]bool{"type": true}}
		st := &rateLimitStage{
			name:    sp.name,
			qps:     o.num("qps", 10),
			burst:   o.num("burst", 20),
			prefix4: o.integer("prefix4", 32),
			prefix6: o.integer("prefix6", 64),
			clock:   b.env.clock(),
			limited: b.env.counter(sp.name, "limited"),
			passed:  b.env.counter(sp.name, "passed"),
			buckets: map[netip.Addr]*bucket{},
		}
		switch action := o.str("action", "refuse"); action {
		case "refuse":
		case "drop":
			st.drop = true
		default:
			return nil, fmt.Errorf("middleware: stage %q: action must be refuse or drop, got %q", sp.name, action)
		}
		next, err := b.next(&o)
		if err != nil {
			return nil, err
		}
		st.next = next
		if err := o.finish(); err != nil {
			return nil, err
		}
		if st.qps <= 0 || st.burst < 1 {
			return nil, fmt.Errorf("middleware: stage %q: need qps > 0 and burst >= 1", sp.name)
		}
		if st.prefix4 < 0 || st.prefix4 > 32 || st.prefix6 < 0 || st.prefix6 > 128 {
			return nil, fmt.Errorf("middleware: stage %q: prefix4/prefix6 out of range", sp.name)
		}
		return st, nil
	})
}

func (s *rateLimitStage) Name() string { return s.name }

// key masks the client to the configured prefix.
func (s *rateLimitStage) key(client netip.Addr) netip.Addr {
	bits := s.prefix6
	if client.Is4() || client.Is4In6() {
		bits = s.prefix4
	}
	p, err := client.Unmap().Prefix(bits)
	if err != nil {
		return client
	}
	return p.Addr()
}

// admit spends one token from the client's bucket, reporting whether the
// query may proceed.
func (s *rateLimitStage) admit(client netip.Addr) bool {
	now := s.clock.Now()
	key := s.key(client)
	s.mu.Lock()
	defer s.mu.Unlock()
	bk := s.buckets[key]
	if bk == nil {
		if len(s.buckets) >= maxBuckets {
			s.buckets = map[netip.Addr]*bucket{}
		}
		bk = &bucket{tokens: s.burst, last: now}
		s.buckets[key] = bk
	} else {
		if dt := now.Sub(bk.last); dt > 0 {
			bk.tokens += dt.Seconds() * s.qps
			if bk.tokens > s.burst {
				bk.tokens = s.burst
			}
		}
		bk.last = now
	}
	if bk.tokens < 1 {
		return false
	}
	bk.tokens--
	return true
}

func (s *rateLimitStage) Resolve(ctx context.Context, q *Query) (*Response, error) {
	// In-process lookups carry no client address; the limiter is a
	// network-edge defense, so they pass untouched.
	if !q.Client.IsValid() || s.admit(q.Client) {
		s.passed.Inc()
		return s.next.Resolve(ctx, q)
	}
	s.limited.Inc()
	res := refused(q)
	return &Response{Result: res, Verdict: VerdictLimited, Stage: s.name, Drop: s.drop}, nil
}
