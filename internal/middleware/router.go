package middleware

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
)

// routerStage forwards queries to different sub-chains by qname suffix —
// routedns's "route" element. Routes are longest-suffix-wins, so
//
//	[stage.split]
//	type    = "router"
//	routes  = "corp.example -> internal; example -> filtered"
//	default = "resolver"
//
// sends a.corp.example down "internal", other example names down
// "filtered", and everything else down "default". Each route target is a
// stage name; the router is how one listener hosts split-horizon,
// per-zone hardening, or a quarantine chain.
type routerStage struct {
	name     string
	routes   []route // longest suffix first
	fallback Stage
	routed   *obs.Counter
}

type route struct {
	suffix dnswire.Name
	to     Stage
	labels int
}

func init() {
	register("router", func(b *builder, sp *stageSpec) (Stage, error) {
		o := options{sp: sp, seen: map[string]bool{"type": true}}
		st := &routerStage{
			name:   sp.name,
			routed: b.env.counter(sp.name, "routed"),
		}
		spec := o.str("routes", "")
		def := o.str("default", "")
		if err := o.finish(); err != nil {
			return nil, err
		}
		if def == "" {
			return nil, fmt.Errorf("middleware: stage %q needs default = \"stage\"", sp.name)
		}
		fallback, err := b.stage(def)
		if err != nil {
			return nil, err
		}
		st.fallback = fallback
		for _, part := range strings.Split(spec, ";") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			sfx, target, ok := strings.Cut(part, "->")
			if !ok {
				return nil, fmt.Errorf("middleware: stage %q: route %q wants \"suffix -> stage\"", sp.name, part)
			}
			name := dnswire.NewName(strings.TrimSpace(sfx))
			if err := name.Valid(); err != nil {
				return nil, fmt.Errorf("middleware: stage %q: bad route suffix %q: %v", sp.name, sfx, err)
			}
			to, err := b.stage(strings.TrimSpace(target))
			if err != nil {
				return nil, err
			}
			st.routes = append(st.routes, route{suffix: name, to: to, labels: name.CountLabels()})
		}
		// Longest (most-specific) suffix wins; ties keep spec order.
		sort.SliceStable(st.routes, func(i, j int) bool {
			return st.routes[i].labels > st.routes[j].labels
		})
		return st, nil
	})
}

func (s *routerStage) Name() string { return s.name }

func (s *routerStage) Resolve(ctx context.Context, q *Query) (*Response, error) {
	for _, r := range s.routes {
		if q.Name == r.suffix || q.Name.IsSubdomainOf(r.suffix) {
			s.routed.Inc()
			return r.to.Resolve(ctx, q)
		}
	}
	return s.fallback.Resolve(ctx, q)
}
