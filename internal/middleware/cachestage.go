package middleware

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dnsttl/internal/obs"
	"dnsttl/internal/simnet"
)

// cacheStage memoizes whole responses in front of a sub-chain. It is not
// the resolver's record cache (that one owns TTL decay, eviction
// pressure, serve-stale, and prefetch — see internal/cache): this stage
// is routedns's "cache" element, a message-level memo that shields
// whatever sits behind it — a ttl-modifying sub-chain, a blocklist
// verdict, a remote forwarder — from repeat questions. Entries live for
// the response's answer TTL (negttl for answerless responses) and hits
// serve a copy with decayed TTLs, exactly what a downstream cache would
// see on the wire.
type cacheStage struct {
	name    string
	next    Stage
	entries int
	negTTL  time.Duration
	clock   simnet.Clock

	hits   *obs.Counter
	misses *obs.Counter

	mu    sync.Mutex
	memo  map[dedupKey]*memoEntry
	order []dedupKey // FIFO eviction ring
}

type memoEntry struct {
	resp    *Response
	stored  time.Time
	expires time.Time
}

func init() {
	register("cache", func(b *builder, sp *stageSpec) (Stage, error) {
		o := options{sp: sp, seen: map[string]bool{"type": true}}
		st := &cacheStage{
			name:    sp.name,
			entries: o.integer("entries", 4096),
			negTTL:  time.Duration(o.integer("negttl", 30)) * time.Second,
			clock:   b.env.clock(),
			hits:    b.env.counter(sp.name, "hits"),
			misses:  b.env.counter(sp.name, "misses"),
			memo:    map[dedupKey]*memoEntry{},
		}
		next, err := b.next(&o)
		if err != nil {
			return nil, err
		}
		st.next = next
		if err := o.finish(); err != nil {
			return nil, err
		}
		if st.entries < 1 {
			return nil, fmt.Errorf("middleware: stage %q: entries must be >= 1", sp.name)
		}
		return st, nil
	})
}

func (s *cacheStage) Name() string { return s.name }

func (s *cacheStage) Resolve(ctx context.Context, q *Query) (*Response, error) {
	k := dedupKey{name: q.Name, qtype: q.Type}
	now := s.clock.Now()

	s.mu.Lock()
	if e, ok := s.memo[k]; ok && now.Before(e.expires) {
		s.mu.Unlock()
		s.hits.Inc()
		return s.serveHit(e, now), nil
	}
	s.mu.Unlock()

	s.misses.Inc()
	resp, err := s.next.Resolve(ctx, q)
	if err != nil || resp == nil || resp.Result == nil || resp.Msg == nil || resp.Drop {
		return resp, err
	}
	ttl := s.negTTL
	if len(resp.Msg.Answer) > 0 {
		ttl = time.Duration(resp.Msg.Answer[0].TTL) * time.Second
	}
	if ttl <= 0 {
		return resp, nil
	}
	s.mu.Lock()
	if _, ok := s.memo[k]; !ok {
		for len(s.memo) >= s.entries && len(s.order) > 0 {
			delete(s.memo, s.order[0])
			s.order = s.order[1:]
		}
		s.memo[k] = &memoEntry{resp: resp, stored: now, expires: now.Add(ttl)}
		s.order = append(s.order, k)
	}
	s.mu.Unlock()
	return resp, nil
}

// serveHit copies the memoized response with answer TTLs decayed by the
// entry's age, marking the copy a cache hit that cost no upstream work.
func (s *cacheStage) serveHit(e *memoEntry, now time.Time) *Response {
	age := uint32(now.Sub(e.stored) / time.Second)
	cp := *e.resp.Result
	cp.Msg = copyMsg(e.resp.Msg)
	for i := range cp.Msg.Answer {
		if ttl := cp.Msg.Answer[i].TTL; ttl > age {
			cp.Msg.Answer[i].TTL = ttl - age
		} else {
			cp.Msg.Answer[i].TTL = 0
		}
	}
	cp.CacheHit = true
	cp.Coalesced = false
	cp.Stale = false
	cp.Latency = 0
	cp.Queries = 0
	cp.Timeouts = 0
	cp.Retries = 0
	cp.Hedges = 0
	if len(cp.Msg.Answer) > 0 {
		cp.AnswerTTL = cp.Msg.Answer[0].TTL
	}
	out := Response{Result: &cp, Verdict: VerdictCached, Stage: s.name}
	return &out
}
