// Package middleware turns the resolver datapath into a graph of small
// composable stages, the way routedns builds resolvers from pipeline
// elements: a query enters at one stage and flows stage to stage until a
// terminal stage answers it. Each stage does one thing — route by qname,
// answer from a blocklist, rate-limit a client, coalesce duplicate
// in-flight questions, memoize whole responses, rewrite TTLs, strip
// response sections — and hands everything else to its Next stage.
//
// The graph is config-driven: Build compiles a TOML-shaped text spec (see
// the graph.go grammar) into a Pipeline whose terminal "resolver" stage
// calls whatever Lookup function the host provides — a single iterative
// resolver, a whole farm frontend, or a forwarder. The zero-config
// Default pipeline is exactly one terminal stage, so a Client built
// without a spec resolves byte-for-byte as the pre-middleware facade did
// (pinned by the chaos-scenario equivalence tests).
//
// Every stage reports under "mw.<stage-name>.*" in the shared obs
// registry, and stages annotate the resolution's span tree so /trace and
// the query log show which stage answered.
package middleware

import (
	"context"
	"net/netip"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
)

// Query is one client question entering the pipeline. Client is the
// requesting address as seen by the listener; stages that key on it (the
// per-client rate limiter) skip queries whose Client is the zero Addr —
// in-process library lookups with no network client.
type Query struct {
	Name   dnswire.Name
	Type   dnswire.Type
	Client netip.Addr
}

// Verdict classifies how the pipeline terminated a query, for qlog
// outcome labeling and daemon accounting.
type Verdict uint8

const (
	// VerdictResolved: the query traversed the whole chain and was
	// answered by the terminal resolver stage (from cache or upstream).
	VerdictResolved Verdict = iota
	// VerdictBlocked: a blocklist or static-answer stage answered without
	// consulting the resolver.
	VerdictBlocked
	// VerdictLimited: the per-client rate limiter refused (or dropped)
	// the query.
	VerdictLimited
	// VerdictCached: a middleware response cache answered from a
	// memoized message.
	VerdictCached
)

// String returns the verdict's qlog-friendly spelling.
func (v Verdict) String() string {
	switch v {
	case VerdictBlocked:
		return "blocked"
	case VerdictLimited:
		return "limited"
	case VerdictCached:
		return "cached"
	}
	return "resolved"
}

// Response is a pipeline answer: the resolver Result (message plus trace)
// and the middleware bookkeeping around it.
type Response struct {
	*resolver.Result
	// Verdict says how the pipeline produced this response.
	Verdict Verdict
	// Stage names the stage that terminated the query when Verdict is not
	// VerdictResolved (e.g. "shield" for a rate limiter instance).
	Stage string
	// Drop asks the caller to send nothing at all — the rate limiter's
	// "drop" action. Result still carries a REFUSED message for callers
	// (tests, in-process lookups) that must return something.
	Drop bool
}

// Stage is one element of the graph. Stages hold their own Next reference
// (wired by the graph builder), so Resolve needs no chain argument: a
// stage either answers q itself or delegates to its Next.
//
// Implementations must be safe for concurrent use: one Stage instance
// serves every client of a frontend.
type Stage interface {
	// Name returns the instance name the spec assigned (metrics and span
	// annotations use it).
	Name() string
	// Resolve answers the query or passes it down the chain.
	Resolve(ctx context.Context, q *Query) (*Response, error)
}

// LookupFunc is the terminal resolution the pipeline wraps — a frontend's
// (or single resolver's) existing datapath.
type LookupFunc func(name dnswire.Name, qtype dnswire.Type) (*resolver.Result, error)

// Env is everything the graph builder hands to stage constructors.
type Env struct {
	// Lookup is the terminal datapath the "resolver" stage calls.
	Lookup LookupFunc
	// Clock drives rate-limiter refill and response-cache decay; nil
	// means wall time.
	Clock simnet.Clock
	// Registry, when non-nil, backs each stage's mw.<name>.* counters.
	Registry *obs.Registry
}

func (e Env) clock() simnet.Clock {
	if e.Clock == nil {
		return simnet.WallClock{}
	}
	return e.Clock
}

// counter registers a mw.<stage>.<what> counter, or returns the nil-safe
// no-op counter when no registry is attached.
func (e Env) counter(stage, what string) *obs.Counter {
	if e.Registry == nil {
		return nil
	}
	return e.Registry.Counter("mw." + stage + "." + what)
}

// Pipeline is a compiled stage graph with a single entry point.
type Pipeline struct {
	entry  Stage
	stages []Stage // every stage, in spec order (entry may be any of them)
	spec   string  // the source text, for introspection and reload diffing
}

// Resolve runs the query through the graph.
func (p *Pipeline) Resolve(ctx context.Context, q *Query) (*Response, error) {
	return p.entry.Resolve(ctx, q)
}

// Stages lists the instance names in spec order — "resolver" alone for
// the default pipeline.
func (p *Pipeline) Stages() []string {
	out := make([]string, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.Name()
	}
	return out
}

// Spec returns the source text the pipeline was built from ("" for the
// default pipeline).
func (p *Pipeline) Spec() string { return p.spec }

// Default builds the zero-config pipeline: one terminal resolver stage.
// It adds two pointer hops and no behavior to the wrapped datapath.
func Default(env Env) *Pipeline {
	t := &resolverStage{name: "resolver", lookup: env.Lookup}
	return &Pipeline{entry: t, stages: []Stage{t}}
}

// refused builds the REFUSED message every policy-refusal path returns.
func refused(q *Query) *resolver.Result {
	return &resolver.Result{Msg: &dnswire.Message{
		Header:   dnswire.Header{QR: true, RA: true, RCode: dnswire.RCodeRefused},
		Question: []dnswire.Question{{Name: q.Name, Type: q.Type, Class: dnswire.ClassIN}},
	}}
}

// copyMsg shallow-copies a message with fresh section slices, so stages
// that rewrite a response (ttlmod, collapse) never mutate a message that
// may be shared with a cache entry or a coalesced follower.
func copyMsg(m *dnswire.Message) *dnswire.Message {
	cp := &dnswire.Message{Header: m.Header}
	cp.Question = append([]dnswire.Question(nil), m.Question...)
	cp.Answer = append([]dnswire.RR(nil), m.Answer...)
	cp.Authority = append([]dnswire.RR(nil), m.Authority...)
	cp.Additional = append([]dnswire.RR(nil), m.Additional...)
	return cp
}
