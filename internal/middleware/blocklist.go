package middleware

import (
	"context"
	"fmt"
	"strings"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
)

// blocklistStage answers queries for blocked suffixes locally — the
// Pi-hole/routedns "blocklist-v2" shape. A query matches when its qname
// equals or is a subdomain of any listed name; matches never reach the
// resolver, so a blocklist early in the chain is also a cheap defense
// against floods aimed at a known-bad domain.
type blocklistStage struct {
	name    string
	next    Stage
	roots   map[dnswire.Name]bool
	action  string // "nxdomain" or "refused"
	blocked *obs.Counter
	passed  *obs.Counter
}

func init() {
	register("blocklist", func(b *builder, sp *stageSpec) (Stage, error) {
		o := options{sp: sp, seen: map[string]bool{"type": true}}
		st := &blocklistStage{
			name:    sp.name,
			roots:   map[dnswire.Name]bool{},
			action:  o.str("action", "nxdomain"),
			blocked: b.env.counter(sp.name, "blocked"),
			passed:  b.env.counter(sp.name, "passed"),
		}
		for _, n := range strings.Fields(o.str("block", "")) {
			name := dnswire.NewName(n)
			if err := name.Valid(); err != nil {
				return nil, fmt.Errorf("middleware: stage %q: bad name %q: %v", sp.name, n, err)
			}
			st.roots[name] = true
		}
		next, err := b.next(&o)
		if err != nil {
			return nil, err
		}
		st.next = next
		if err := o.finish(); err != nil {
			return nil, err
		}
		if len(st.roots) == 0 {
			return nil, fmt.Errorf("middleware: stage %q needs block = \"bad.example ...\"", sp.name)
		}
		if st.action != "nxdomain" && st.action != "refused" {
			return nil, fmt.Errorf("middleware: stage %q: action must be nxdomain or refused, got %q", sp.name, st.action)
		}
		return st, nil
	})
}

func (s *blocklistStage) Name() string { return s.name }

// matches walks the qname's ancestors against the block set, the same
// O(label count) walk the authoritative server uses for zone cuts.
func (s *blocklistStage) matches(name dnswire.Name) bool {
	for n := name; ; n = n.Parent() {
		if s.roots[n] {
			return true
		}
		if n.IsRoot() {
			return false
		}
	}
}

func (s *blocklistStage) Resolve(ctx context.Context, q *Query) (*Response, error) {
	if !s.matches(q.Name) {
		s.passed.Inc()
		return s.next.Resolve(ctx, q)
	}
	s.blocked.Inc()
	res := refused(q)
	if s.action == "nxdomain" {
		res.Msg.Header.RCode = dnswire.RCodeNXDomain
	}
	res.Trace.CacheHit = true // answered without upstream work
	return &Response{Result: res, Verdict: VerdictBlocked, Stage: s.name}, nil
}
