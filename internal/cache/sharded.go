package cache

import (
	"hash/fnv"
	"sync/atomic"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

// Sharded is a consistent-hash pool of independent Caches presenting one
// logical Store. Each shard carries its own lock, so frontends of a
// resolver farm sharing the pool contend only when they touch the same
// shard — the "sharded cache" topology large public resolvers deploy
// between a fully private and a fully shared design.
//
// A key always maps to the same shard (FNV-1a over the owner name and
// type), so credibility ranking, negative caching, and TTL decay behave
// exactly as they would in a single Cache.
type Sharded struct {
	shards []*Cache
	// prefetches counts refresh-ahead prefetches noted against the pool as
	// a whole; a prefetch protects a key, not a shard, so the pool keeps
	// one counter instead of attributing to shards.
	prefetches atomic.Uint64
}

// NewSharded builds a pool of n shards on the given clock, each configured
// with cfg. Capacity and MaxBytes in cfg are per shard. n < 1 is treated
// as 1.
func NewSharded(clock simnet.Clock, cfg Config, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*Cache, n)}
	for i := range s.shards {
		s.shards[i] = New(clock, cfg)
	}
	return s
}

// KeyHash is the shard-placement hash: FNV-1a over the owner name plus the
// type. Exported so farms can hash query names with the identical function
// when placing queries on frontends.
func KeyHash(name dnswire.Name, t dnswire.Type) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte{byte(t >> 8), byte(t)})
	return h.Sum64()
}

// NumShards returns the pool size.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes shard i for telemetry.
func (s *Sharded) Shard(i int) *Cache { return s.shards[i] }

func (s *Sharded) shardFor(name dnswire.Name, t dnswire.Type) *Cache {
	return s.shards[KeyHash(name, t)%uint64(len(s.shards))]
}

// Put stores e in the shard owning e.Key.
func (s *Sharded) Put(e Entry) bool {
	return s.shardFor(e.Key.Name, e.Key.Type).Put(e)
}

// Get returns the fresh entry for (name, t) from its shard.
func (s *Sharded) Get(name dnswire.Name, t dnswire.Type) (*Entry, uint32, bool) {
	return s.shardFor(name, t).Get(name, t)
}

// GetStale is Get extended with the serve-stale window.
func (s *Sharded) GetStale(name dnswire.Name, t dnswire.Type) (*Entry, uint32, bool) {
	return s.shardFor(name, t).GetStale(name, t)
}

// Remove deletes (name, t) from its shard.
func (s *Sharded) Remove(name dnswire.Name, t dnswire.Type) bool {
	return s.shardFor(name, t).Remove(name, t)
}

// PurgeGlueOf sweeps every shard for glue of the given NS owner.
func (s *Sharded) PurgeGlueOf(nsOwner dnswire.Name) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.PurgeGlueOf(nsOwner)
	}
	return n
}

// Flush empties every shard.
func (s *Sharded) Flush() {
	for _, sh := range s.shards {
		sh.Flush()
	}
}

// Len counts entries across shards, expired ones included.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Stats aggregates the counters of every shard, plus the pool-level
// prefetch count.
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		out.StaleHits += st.StaleHits
		out.Entries += st.Entries
		out.Bytes += st.Bytes
		out.Prefetches += st.Prefetches
		out.AdmissionRejects += st.AdmissionRejects
	}
	out.Prefetches += s.prefetches.Load()
	return out
}

// NotePrefetch counts one refresh-ahead prefetch against the pool.
func (s *Sharded) NotePrefetch() { s.prefetches.Add(1) }

// Keys lists cached keys shard by shard.
func (s *Sharded) Keys() []Key {
	var out []Key
	for _, sh := range s.shards {
		out = append(out, sh.Keys()...)
	}
	return out
}

var (
	_ Store = (*Cache)(nil)
	_ Store = (*Sharded)(nil)
)
