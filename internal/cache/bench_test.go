package cache

import (
	"fmt"
	"testing"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

// BenchmarkPutGet measures the cache hot path: insert then look up.
func BenchmarkPutGet(b *testing.B) {
	c := New(simnet.NewVirtualClock(), Config{})
	names := make([]dnswire.Name, 1024)
	for i := range names {
		names[i] = dnswire.NewName(fmt.Sprintf("n%04d.example.org", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := names[i%len(names)]
		c.Put(Entry{
			Key:  Key{Name: n, Type: dnswire.TypeA},
			RRs:  []dnswire.RR{dnswire.NewA(string(n), 300, "192.0.2.1")},
			TTL:  300,
			Cred: CredAnswerAuth,
		})
		if _, _, ok := c.Get(n, dnswire.TypeA); !ok {
			b.Fatal("miss after put")
		}
	}
}

// BenchmarkPurgeGlueOf measures glue purging with a full cache: the glueOf
// index makes each purge proportional to the glue set (here 2 records), not
// the 8k resident entries the pre-index implementation scanned.
func BenchmarkPurgeGlueOf(b *testing.B) {
	c := New(simnet.NewVirtualClock(), Config{})
	for i := 0; i < 8192; i++ {
		n := dnswire.NewName(fmt.Sprintf("host%05d.example.org", i))
		c.Put(Entry{
			Key:  Key{Name: n, Type: dnswire.TypeA},
			RRs:  []dnswire.RR{dnswire.NewA(string(n), 300, "192.0.2.1")},
			TTL:  300,
			Cred: CredAnswerAuth,
		})
	}
	owner := dnswire.NewName("frag.example.org")
	glue := []dnswire.Name{
		dnswire.NewName("ns1.frag.example.org"),
		dnswire.NewName("ns2.frag.example.org"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range glue {
			c.Put(Entry{
				Key:    Key{Name: g, Type: dnswire.TypeA},
				RRs:    []dnswire.RR{dnswire.NewA(string(g), 300, "192.0.2.53")},
				TTL:    300,
				Cred:   CredAdditional,
				GlueOf: owner,
			})
		}
		if n := c.PurgeGlueOf(owner); n != len(glue) {
			b.Fatalf("purged %d, want %d", n, len(glue))
		}
	}
}

// BenchmarkGetHit measures a pure cache hit.
func BenchmarkGetHit(b *testing.B) {
	c := New(simnet.NewVirtualClock(), Config{})
	n := dnswire.NewName("www.example.org")
	c.Put(Entry{
		Key:  Key{Name: n, Type: dnswire.TypeA},
		RRs:  []dnswire.RR{dnswire.NewA(string(n), 300, "192.0.2.1")},
		TTL:  300,
		Cred: CredAnswerAuth,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Get(n, dnswire.TypeA); !ok {
			b.Fatal("miss")
		}
	}
}
