package cache

import (
	"fmt"
	"testing"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

// BenchmarkPutGet measures the cache hot path: insert then look up.
func BenchmarkPutGet(b *testing.B) {
	c := New(simnet.NewVirtualClock(), Config{})
	names := make([]dnswire.Name, 1024)
	for i := range names {
		names[i] = dnswire.NewName(fmt.Sprintf("n%04d.example.org", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := names[i%len(names)]
		c.Put(Entry{
			Key:  Key{Name: n, Type: dnswire.TypeA},
			RRs:  []dnswire.RR{dnswire.NewA(string(n), 300, "192.0.2.1")},
			TTL:  300,
			Cred: CredAnswerAuth,
		})
		if _, _, ok := c.Get(n, dnswire.TypeA); !ok {
			b.Fatal("miss after put")
		}
	}
}

// BenchmarkGetHit measures a pure cache hit.
func BenchmarkGetHit(b *testing.B) {
	c := New(simnet.NewVirtualClock(), Config{})
	n := dnswire.NewName("www.example.org")
	c.Put(Entry{
		Key:  Key{Name: n, Type: dnswire.TypeA},
		RRs:  []dnswire.RR{dnswire.NewA(string(n), 300, "192.0.2.1")},
		TTL:  300,
		Cred: CredAnswerAuth,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Get(n, dnswire.TypeA); !ok {
			b.Fatal("miss")
		}
	}
}
