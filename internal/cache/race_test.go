package cache

import (
	"fmt"
	"sync"
	"testing"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/simnet"
)

// TestStatsConcurrentWithGetPut drives Get/Put/Stats from many goroutines
// at once. Under -race this proves Stats reads don't race the hot paths;
// the final counts prove no increment was lost.
func TestStatsConcurrentWithGetPut(t *testing.T) {
	c := New(simnet.NewVirtualClock(), Config{})
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := dnswire.NewName(fmt.Sprintf("w%d.example.org", g))
			for i := 0; i < perG; i++ {
				c.Put(Entry{
					Key: Key{Name: name, Type: dnswire.TypeA},
					RRs: []dnswire.RR{dnswire.NewA(string(name), 300, "192.0.2.1")},
					TTL: 300,
				})
				c.Get(name, dnswire.TypeA)
				c.Get(name, dnswire.TypeAAAA) // always a miss
				if i%64 == 0 {
					_ = c.Stats()
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		// A scraper hammering Stats while the workers run, as a /metrics
		// endpoint would.
		for {
			select {
			case <-done:
				return
			default:
				_ = c.Stats()
			}
		}
	}()
	wg.Wait()
	close(done)

	s := c.Stats()
	if want := uint64(goroutines * perG); s.Hits != want {
		t.Fatalf("hits = %d, want %d", s.Hits, want)
	}
	if want := uint64(goroutines * perG); s.Misses != want {
		t.Fatalf("misses = %d, want %d", s.Misses, want)
	}
	if s.Entries != goroutines {
		t.Fatalf("entries = %d, want %d", s.Entries, goroutines)
	}
}

// TestInstrument checks the registry bridge: gauges registered by
// Instrument follow the cache's live counters at snapshot time.
func TestInstrument(t *testing.T) {
	clock := simnet.NewVirtualClock()
	c := New(clock, Config{})
	reg := obs.NewRegistry(clock)
	Instrument(reg, "cache", c.Stats)
	Instrument(nil, "cache", c.Stats) // nil registry: no-op, no panic

	name := dnswire.NewName("www.example.org")
	c.Put(Entry{
		Key: Key{Name: name, Type: dnswire.TypeA},
		RRs: []dnswire.RR{dnswire.NewA("www.example.org", 300, "192.0.2.1")},
		TTL: 300, Stored: clock.Now(),
	})
	c.Get(name, dnswire.TypeA)
	c.Get(name, dnswire.TypeMX)

	s := reg.Snapshot()
	want := map[string]float64{
		"cache.hits": 1, "cache.misses": 1, "cache.entries": 1,
		"cache.evictions": 0, "cache.stale_hits": 0,
	}
	for k, v := range want {
		if got := s.Gauges[k]; got != v {
			t.Fatalf("%s = %v, want %v", k, got, v)
		}
	}
	// A later scrape sees later state: no re-registration needed.
	c.Get(name, dnswire.TypeA)
	if got := reg.Snapshot().Gauges["cache.hits"]; got != 2 {
		t.Fatalf("cache.hits after second hit = %v, want 2", got)
	}
}
