package cache

import (
	"fmt"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

func TestShardedRoundTrip(t *testing.T) {
	clk := simnet.NewVirtualClock()
	s := NewSharded(clk, Config{}, 8)

	names := make([]dnswire.Name, 50)
	for i := range names {
		names[i] = dnswire.NewName(fmt.Sprintf("w%02d.example.org", i))
		s.Put(entry(string(names[i]), dnswire.TypeA, 300, CredAnswerAuth))
	}
	for _, n := range names {
		if _, rem, ok := s.Get(n, dnswire.TypeA); !ok || rem != 300 {
			t.Fatalf("%s: rem=%d ok=%v", n, rem, ok)
		}
	}
	if s.Len() != len(names) {
		t.Errorf("Len = %d, want %d", s.Len(), len(names))
	}
	if got := len(s.Keys()); got != len(names) {
		t.Errorf("Keys = %d, want %d", got, len(names))
	}

	// Keys must spread across shards, and a key must always live on the
	// same shard (same data visible through Get after TTL decay).
	occupied := 0
	for i := 0; i < s.NumShards(); i++ {
		if s.Shard(i).Len() > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Errorf("50 keys occupy %d shard(s); hashing is degenerate", occupied)
	}

	clk.Advance(301 * time.Second)
	for _, n := range names {
		if _, _, ok := s.Get(n, dnswire.TypeA); ok {
			t.Fatalf("%s: expired entry still served", n)
		}
	}
}

func TestShardedCredibilityAndRemove(t *testing.T) {
	s := NewSharded(simnet.NewVirtualClock(), Config{}, 4)
	s.Put(entry("nic.uy", dnswire.TypeA, 300, CredAnswerAuth))
	if s.Put(entry("nic.uy", dnswire.TypeA, 172800, CredAdditional)) {
		t.Error("glue replaced unexpired authoritative data across the pool")
	}
	if !s.Remove(dnswire.NewName("nic.uy"), dnswire.TypeA) {
		t.Error("Remove missed the owning shard")
	}
	if _, _, ok := s.Get(dnswire.NewName("nic.uy"), dnswire.TypeA); ok {
		t.Error("entry survived Remove")
	}
}

func TestShardedStatsAggregateAndFlush(t *testing.T) {
	clk := simnet.NewVirtualClock()
	s := NewSharded(clk, Config{ServeStale: true}, 4)
	for i := 0; i < 20; i++ {
		n := fmt.Sprintf("x%d.org", i)
		s.Put(entry(n, dnswire.TypeA, 60, CredAnswerAuth))
		s.Get(dnswire.NewName(n), dnswire.TypeA)    // hit
		s.Get(dnswire.NewName(n), dnswire.TypeAAAA) // miss
	}
	st := s.Stats()
	if st.Hits != 20 || st.Misses != 20 || st.Entries != 20 {
		t.Errorf("aggregate stats = %+v", st)
	}
	clk.Advance(90 * time.Second)
	if _, rem, ok := s.GetStale(dnswire.NewName("x0.org"), dnswire.TypeA); !ok || rem != 30 {
		t.Errorf("sharded GetStale: rem=%d ok=%v", rem, ok)
	}
	s.Flush()
	if s.Len() != 0 {
		t.Errorf("Len after Flush = %d", s.Len())
	}
}

func TestShardedPurgeGlueOf(t *testing.T) {
	s := NewSharded(simnet.NewVirtualClock(), Config{}, 4)
	owner := dnswire.NewName("sub.example.org")
	for i := 0; i < 6; i++ {
		e := entry(fmt.Sprintf("ns%d.sub.example.org", i), dnswire.TypeA, 7200, CredAdditional)
		e.GlueOf = owner
		s.Put(e)
	}
	s.Put(entry("unrelated.org", dnswire.TypeA, 7200, CredAdditional))
	if n := s.PurgeGlueOf(owner); n != 6 {
		t.Errorf("PurgeGlueOf = %d, want 6", n)
	}
	if s.Len() != 1 {
		t.Errorf("Len after purge = %d, want the unrelated entry only", s.Len())
	}
}

func TestKeyHashStable(t *testing.T) {
	a := KeyHash(dnswire.NewName("www.example.org"), dnswire.TypeA)
	b := KeyHash(dnswire.NewName("www.example.org"), dnswire.TypeA)
	if a != b {
		t.Error("KeyHash not deterministic")
	}
	if KeyHash(dnswire.NewName("www.example.org"), dnswire.TypeA) ==
		KeyHash(dnswire.NewName("www.example.org"), dnswire.TypeAAAA) {
		t.Error("KeyHash ignores the type")
	}
}
