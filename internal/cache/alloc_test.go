package cache

import (
	"testing"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

// TestGetHitAllocFree pins the cache-hit fast path to zero allocations: a
// hit is a map lookup plus TTL arithmetic, nothing more.
func TestGetHitAllocFree(t *testing.T) {
	c := New(simnet.NewVirtualClock(), Config{})
	n := dnswire.NewName("www.example.org")
	c.Put(Entry{
		Key:  Key{Name: n, Type: dnswire.TypeA},
		RRs:  []dnswire.RR{dnswire.NewA(string(n), 300, "192.0.2.1")},
		TTL:  300,
		Cred: CredAnswerAuth,
	})
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, ok := c.Get(n, dnswire.TypeA); !ok {
			t.Fatal("miss")
		}
	})
	if allocs >= 0.5 {
		t.Errorf("cache hit: %.2f allocs/op, want 0", allocs)
	}
}
