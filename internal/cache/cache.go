// Package cache implements a recursive resolver's record cache with the
// mechanisms whose interactions the paper studies: TTL decay against a
// clock, RFC 2181 §5.4.1 credibility ranking (so authoritative child data
// outranks parent glue), RFC 2308 negative caching, TTL capping and
// flooring as deployed resolvers do, serve-stale (RFC 8767), and glue
// tagging so resolver policy can couple an in-bailiwick A record's lifetime
// to its covering NS RRset.
//
// Beyond TTL decay, the cache models memory pressure: entries are charged
// their uncompressed wire-format size, a MaxBytes bound can force eviction
// before TTL expiry, and the eviction order is pluggable (FIFO, LRU, or
// segmented-LRU with TinyLFU admission) — the regime where cache size, not
// TTL, limits the hit rate.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/obs"
	"dnsttl/internal/simnet"
)

// Credibility ranks how trustworthy cached data is, after RFC 2181 §5.4.1.
// Higher values replace lower ones; lower values never overwrite unexpired
// higher ones. This ranking is what makes most resolvers child-centric
// (§3 of the paper): the child's authoritative answer outranks the parent's
// glue, but only once the child has actually been asked.
type Credibility uint8

const (
	// CredAdditional: glue from a referral's additional section.
	CredAdditional Credibility = iota + 1
	// CredAuthorityReferral: NS records in a referral's authority section.
	CredAuthorityReferral
	// CredAuthorityAuth: authority-section data of an authoritative answer.
	CredAuthorityAuth
	// CredAnswerNonAuth: answer-section data without the AA bit (e.g. from
	// a forwarder).
	CredAnswerNonAuth
	// CredAnswerAuth: answer-section data with the AA bit — the child
	// zone's own statement.
	CredAnswerAuth
)

func (c Credibility) String() string {
	switch c {
	case CredAdditional:
		return "additional"
	case CredAuthorityReferral:
		return "authority-referral"
	case CredAuthorityAuth:
		return "authority-auth"
	case CredAnswerNonAuth:
		return "answer-nonauth"
	case CredAnswerAuth:
		return "answer-auth"
	}
	return "none"
}

// Key identifies a cache entry.
type Key struct {
	Name dnswire.Name
	Type dnswire.Type
}

// NegativeKind distinguishes cached negative answers.
type NegativeKind uint8

const (
	// NotNegative marks a positive entry.
	NotNegative NegativeKind = iota
	// NegNXDomain caches "name does not exist".
	NegNXDomain
	// NegNoData caches "name exists, type does not".
	NegNoData
)

// Entry is one cached RRset (or negative answer).
type Entry struct {
	Key      Key
	RRs      []dnswire.RR
	TTL      uint32
	Stored   time.Time
	Cred     Credibility
	Negative NegativeKind
	// GlueOf, when set, names the delegation NS owner this entry arrived
	// as glue for; resolver policy may couple its lifetime to that NS set.
	GlueOf dnswire.Name
	// Server is the authoritative address the data came from, for
	// stickiness analysis.
	Server string

	// Eviction-plane bookkeeping, owned by the cache that stores the entry
	// and guarded by its lock. el is the entry's handle in its evictor's
	// order list, seg its SLRU segment tag, bytes its charged size.
	el    *list.Element
	seg   uint8
	bytes int32
}

// expiresAt is when the entry stops being fresh.
func (e *Entry) expiresAt() time.Time {
	return e.Stored.Add(time.Duration(e.TTL) * time.Second)
}

// Remaining returns the decayed TTL at time now, and false if expired.
func (e *Entry) Remaining(now time.Time) (uint32, bool) {
	elapsed := now.Sub(e.Stored)
	if elapsed < 0 {
		elapsed = 0
	}
	sec := uint32(elapsed / time.Second)
	if sec >= e.TTL {
		return 0, false
	}
	return e.TTL - sec, true
}

// entryIndexOverhead approximates the per-entry bookkeeping bytes beyond
// the records themselves: the map slot, the order-list element, and the
// Entry struct header. A flat constant keeps the accounting deterministic
// across architectures.
const entryIndexOverhead = 96

// entryBytes is the memory charge for e: index overhead plus the
// uncompressed wire size of every record (dnswire.RR.WireSize). Negative
// entries carry no records and cost only the overhead plus their key.
func entryBytes(e *Entry) int32 {
	n := entryIndexOverhead + len(e.Key.Name)
	for i := range e.RRs {
		n += e.RRs[i].WireSize()
	}
	return int32(n)
}

// EntryCharge computes the byte charge an entry with the given key name
// length and record wire sizes would incur — the same arithmetic Put uses
// for resident accounting. The workload compiler uses it to run the Che
// byte fixed point against real MaxBytes bounds without building entries.
func EntryCharge(keyNameLen int, rrWireSizes ...int) int32 {
	n := entryIndexOverhead + keyNameLen
	for _, s := range rrWireSizes {
		n += s
	}
	return int32(n)
}

// Config tunes cache behavior; the zero value is a plain RFC-conformant
// cache with a 1M-entry bound.
type Config struct {
	// MaxTTL caps stored TTLs (0 = no cap). BIND defaults to one week;
	// Google Public DNS effectively caps at 21599 s (§3.3 of the paper).
	MaxTTL uint32
	// MinTTL floors stored TTLs (0 = no floor). Some resolvers impose
	// tens of seconds to bound load.
	MinTTL uint32
	// ServeStale, when set, lets GetStale return expired entries for up to
	// StaleFor after expiry (RFC 8767), used when authoritatives are down.
	ServeStale bool
	// StaleFor bounds how long past expiry stale data may be served.
	// Zero means 1 day, the RFC 8767 suggestion.
	StaleFor time.Duration
	// Capacity bounds the entry count; 0 means 1<<20. When the bound is
	// reached, the Eviction policy picks the victim (the zero-value policy
	// is FIFO: oldest-stored first).
	Capacity int
	// MaxBytes bounds the memory charge of resident entries (wire-format
	// record bytes plus index overhead; see Stats.Bytes). 0 means
	// unbounded. Like Capacity, the Eviction policy picks victims when a
	// Put would exceed the bound.
	MaxBytes int64
	// Eviction selects the eviction policy: EvictFIFO (zero value, the
	// legacy oldest-stored-first order), EvictLRU, or EvictSLRU
	// (segmented LRU with TinyLFU admission).
	Eviction EvictionPolicy
}

func (c Config) capacity() int {
	if c.Capacity <= 0 {
		return 1 << 20
	}
	return c.Capacity
}

func (c Config) staleFor() time.Duration {
	if c.StaleFor <= 0 {
		return 24 * time.Hour
	}
	return c.StaleFor
}

// Store is the cache surface the resolver (and the farm topologies built
// on top of it) depend on. *Cache is the single-lock implementation;
// Sharded spreads the same contract over a consistent-hash pool so many
// farm frontends can share one logical cache without serializing on one
// mutex.
type Store interface {
	// Put stores an entry under the store's TTL cap/floor and RFC 2181
	// credibility rules, reporting whether it was accepted.
	Put(e Entry) bool
	// Get returns the fresh entry for (name, t) and its remaining TTL.
	Get(name dnswire.Name, t dnswire.Type) (*Entry, uint32, bool)
	// GetStale is Get extended with the RFC 8767 serve-stale window.
	GetStale(name dnswire.Name, t dnswire.Type) (*Entry, uint32, bool)
	// Remove deletes the entry for (name, t), reporting whether it existed.
	Remove(name dnswire.Name, t dnswire.Type) bool
	// PurgeGlueOf removes every entry cached as glue for the NS owner.
	PurgeGlueOf(nsOwner dnswire.Name) int
	// Flush empties the store.
	Flush()
	// Len counts entries, expired ones included.
	Len() int
	// Stats snapshots the hit/miss/eviction counters.
	Stats() Stats
	// Keys lists all cached keys, for inspection.
	Keys() []Key
	// NotePrefetch counts a refresh-ahead prefetch issued on behalf of this
	// store, so prefetch load shows up next to the hit/miss counters it
	// protects.
	NotePrefetch()
}

// Cache is a TTL-decaying, credibility-ranked DNS cache.
type Cache struct {
	clock simnet.Clock
	cfg   Config

	mu      sync.Mutex
	entries map[Key]*Entry
	evictor Evictor // eviction order; all calls under mu
	bytes   int64   // resident memory charge, guarded by mu
	// glueIdx maps an NS owner name to the keys cached as glue for it, so
	// PurgeGlueOf touches only the glue records instead of scanning the
	// whole cache.
	glueIdx map[dnswire.Name]map[Key]struct{}

	// Counters are atomic so Stats can be read mid-operation (from a
	// /metrics scrape or a concurrent experiment) without taking the cache
	// lock and without racing the Get/Put paths that bump them.
	hits, misses, evictions, staleHits atomic.Uint64
	prefetches, admissionRejects       atomic.Uint64
}

// New creates a cache on the given clock (nil means wall clock).
func New(clock simnet.Clock, cfg Config) *Cache {
	if clock == nil {
		clock = simnet.WallClock{}
	}
	return &Cache{
		clock:   clock,
		cfg:     cfg,
		entries: make(map[Key]*Entry),
		evictor: newEvictor(cfg.Eviction, cfg.capacity()),
		glueIdx: make(map[dnswire.Name]map[Key]struct{}),
	}
}

// removeLocked unlinks e from every internal structure.
func (c *Cache) removeLocked(e *Entry) {
	c.evictor.Remove(e)
	delete(c.entries, e.Key)
	c.bytes -= int64(e.bytes)
	if e.GlueOf != "" {
		if keys := c.glueIdx[e.GlueOf]; keys != nil {
			delete(keys, e.Key)
			if len(keys) == 0 {
				delete(c.glueIdx, e.GlueOf)
			}
		}
	}
}

// indexGlueLocked records e's key under its GlueOf owner, if any.
func (c *Cache) indexGlueLocked(e *Entry) {
	if e.GlueOf == "" {
		return
	}
	keys := c.glueIdx[e.GlueOf]
	if keys == nil {
		keys = make(map[Key]struct{})
		c.glueIdx[e.GlueOf] = keys
	}
	keys[e.Key] = struct{}{}
}

// Stats reports cache counters.
type Stats struct {
	Hits, Misses, Evictions, StaleHits uint64
	Entries                            int
	// Bytes is the resident memory charge: wire-format record bytes plus
	// per-entry index overhead.
	Bytes int64
	// Prefetches counts refresh-ahead re-resolutions issued for entries in
	// this store (see Store.NotePrefetch).
	Prefetches uint64
	// AdmissionRejects counts Puts turned away at the bound because the
	// admission filter judged the candidate less popular than the victim
	// (SLRU/TinyLFU only).
	AdmissionRejects uint64
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries := len(c.entries)
	bytes := c.bytes
	c.mu.Unlock()
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load(),
		StaleHits: c.staleHits.Load(), Entries: entries, Bytes: bytes,
		Prefetches: c.prefetches.Load(), AdmissionRejects: c.admissionRejects.Load(),
	}
}

// NotePrefetch counts one refresh-ahead prefetch against this cache.
func (c *Cache) NotePrefetch() { c.prefetches.Add(1) }

// Instrument bridges a cache's counters into the telemetry registry as
// snapshot-time gauges named <prefix>.hits, .misses, .evictions,
// .stale_hits, .entries, .bytes, .prefetches, and .admission_rejects. The
// stats function is called at scrape time, so one registration follows the
// cache's live state; any Store (single cache, sharded pool, or a farm
// fleet aggregate) can be bridged. A nil registry is a no-op.
func Instrument(reg *obs.Registry, prefix string, stats func() Stats) {
	if reg == nil {
		return
	}
	reg.GaugeFunc(prefix+".hits", func() float64 { return float64(stats().Hits) })
	reg.GaugeFunc(prefix+".misses", func() float64 { return float64(stats().Misses) })
	reg.GaugeFunc(prefix+".evictions", func() float64 { return float64(stats().Evictions) })
	reg.GaugeFunc(prefix+".stale_hits", func() float64 { return float64(stats().StaleHits) })
	reg.GaugeFunc(prefix+".entries", func() float64 { return float64(stats().Entries) })
	reg.GaugeFunc(prefix+".bytes", func() float64 { return float64(stats().Bytes) })
	reg.GaugeFunc(prefix+".prefetches", func() float64 { return float64(stats().Prefetches) })
	reg.GaugeFunc(prefix+".admission_rejects", func() float64 { return float64(stats().AdmissionRejects) })
}

// Len returns the number of entries, expired ones included.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the resident memory charge.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Put stores e, applying TTL cap/floor, and returns whether the entry was
// stored. An unexpired existing entry with higher credibility wins over the
// new data (RFC 2181 §5.4.1); equal or higher credibility replaces. Under a
// Capacity or MaxBytes bound, an SLRU admission filter may also turn away a
// new key it judges less popular than the eviction victim.
func (c *Cache) Put(e Entry) bool {
	now := c.clock.Now()
	if e.Stored.IsZero() {
		e.Stored = now
	}
	if c.cfg.MaxTTL > 0 && e.TTL > c.cfg.MaxTTL {
		e.TTL = c.cfg.MaxTTL
	}
	if e.TTL < c.cfg.MinTTL {
		e.TTL = c.cfg.MinTTL
	}
	e.el, e.seg = nil, 0
	e.bytes = entryBytes(&e)
	c.mu.Lock()
	defer c.mu.Unlock()
	resident := false
	if old, ok := c.entries[e.Key]; ok {
		if _, fresh := old.Remaining(now); fresh && old.Cred > e.Cred {
			return false
		}
		c.removeLocked(old)
		resident = true
	}
	// A key that was already resident skips the admission filter: it has
	// paid its way in, and its replacement does not grow the entry count.
	if !c.evictToFitLocked(&e, !resident, now) {
		return false
	}
	c.entries[e.Key] = &e
	c.evictor.Push(&e)
	c.bytes += int64(e.bytes)
	c.indexGlueLocked(&e)
	return true
}

// evictToFitLocked makes room for cand, evicting victims in policy order
// until both the entry-count and byte bounds hold. It reports false when
// cand cannot be stored at all: it alone exceeds MaxBytes, or the policy's
// admission filter prefers the current victim (checked once, against the
// first fresh victim, per TinyLFU — an expired victim carries no value
// worth defending, so it is evicted without a vote).
func (c *Cache) evictToFitLocked(cand *Entry, admit bool, now time.Time) bool {
	if c.cfg.MaxBytes > 0 && int64(cand.bytes) > c.cfg.MaxBytes {
		return false
	}
	admissionChecked := !admit
	for len(c.entries) >= c.cfg.capacity() ||
		(c.cfg.MaxBytes > 0 && c.bytes+int64(cand.bytes) > c.cfg.MaxBytes) {
		victim := c.evictor.Victim()
		if victim == nil {
			return true
		}
		if !admissionChecked {
			if _, fresh := victim.Remaining(now); fresh {
				admissionChecked = true
				if !c.evictor.Admit(cand.Key, victim) {
					c.admissionRejects.Add(1)
					return false
				}
			}
		}
		c.removeLocked(victim)
		c.evictions.Add(1)
	}
	return true
}

// Get returns the fresh entry for (name, t) and its remaining TTL.
func (c *Cache) Get(name dnswire.Name, t dnswire.Type) (*Entry, uint32, bool) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(Key{Name: name, Type: t}, now)
}

func (c *Cache) getLocked(k Key, now time.Time) (*Entry, uint32, bool) {
	c.evictor.Record(k)
	e, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, 0, false
	}
	rem, fresh := e.Remaining(now)
	if !fresh {
		c.misses.Add(1)
		return nil, 0, false
	}
	c.evictor.Touch(e)
	c.hits.Add(1)
	return e, rem, true
}

// GetStale returns the entry even if expired, provided serve-stale is on
// and the entry expired no more than StaleFor ago. The returned TTL for a
// stale entry is the RFC 8767 recommendation of 30 s.
func (c *Cache) GetStale(name dnswire.Name, t dnswire.Type) (*Entry, uint32, bool) {
	now := c.clock.Now()
	k := Key{Name: name, Type: t}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, rem, ok := c.getLocked(k, now); ok {
		return e, rem, true
	}
	if !c.cfg.ServeStale {
		return nil, 0, false
	}
	e, ok := c.entries[k]
	if !ok {
		return nil, 0, false
	}
	if now.Sub(e.expiresAt()) > c.cfg.staleFor() {
		return nil, 0, false
	}
	c.staleHits.Add(1)
	return e, 30, true
}

// Remove deletes the entry for (name, t), reporting whether it existed.
func (c *Cache) Remove(name dnswire.Name, t dnswire.Type) bool {
	k := Key{Name: name, Type: t}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return false
	}
	c.removeLocked(e)
	return true
}

// PurgeGlueOf removes every entry cached as glue for the given NS owner.
// Resolvers with coupled NS/A lifetimes (§4.2 of the paper: in-bailiwick
// servers) call this when the covering NS set expires or is refreshed.
func (c *Cache) PurgeGlueOf(nsOwner dnswire.Name) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.glueIdx[nsOwner]
	n := len(keys)
	for k := range keys {
		// removeLocked mutates the index set; entries lookup stays valid.
		c.removeLocked(c.entries[k])
	}
	return n
}

// Flush empties the cache.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*Entry)
	c.evictor.Reset()
	c.bytes = 0
	c.glueIdx = make(map[dnswire.Name]map[Key]struct{})
}

// Keys returns all cached keys (expired included) in eviction order (next
// victim first), for inspection in tests and experiments.
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, len(c.entries))
	c.evictor.Walk(func(e *Entry) { out = append(out, e.Key) })
	return out
}
