package cache

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

func entry(name string, t dnswire.Type, ttl uint32, cred Credibility) Entry {
	return Entry{
		Key:  Key{Name: dnswire.NewName(name), Type: t},
		RRs:  []dnswire.RR{dnswire.NewA(name, ttl, "192.0.2.1")},
		TTL:  ttl,
		Cred: cred,
	}
}

func TestPutGetAndDecay(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{})
	c.Put(entry("www.example.org", dnswire.TypeA, 300, CredAnswerAuth))

	e, rem, ok := c.Get(dnswire.NewName("www.example.org"), dnswire.TypeA)
	if !ok || rem != 300 {
		t.Fatalf("fresh get: rem=%d ok=%v", rem, ok)
	}
	if e.Cred != CredAnswerAuth {
		t.Errorf("cred = %v", e.Cred)
	}
	clk.Advance(100 * time.Second)
	if _, rem, ok = c.Get(dnswire.NewName("www.example.org"), dnswire.TypeA); !ok || rem != 200 {
		t.Errorf("after 100s: rem=%d ok=%v, want 200", rem, ok)
	}
	clk.Advance(200 * time.Second)
	if _, _, ok = c.Get(dnswire.NewName("www.example.org"), dnswire.TypeA); ok {
		t.Errorf("entry must expire exactly at TTL")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCredibilityRanking(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{})
	// Child's authoritative answer in cache (TTL 300, the .uy case).
	c.Put(entry("nic.uy", dnswire.TypeA, 300, CredAnswerAuth))
	// Parent glue (TTL 172800) must NOT overwrite it.
	glue := entry("nic.uy", dnswire.TypeA, 172800, CredAdditional)
	if c.Put(glue) {
		t.Errorf("glue must not replace unexpired authoritative data")
	}
	_, rem, _ := c.Get(dnswire.NewName("nic.uy"), dnswire.TypeA)
	if rem != 300 {
		t.Errorf("rem = %d, want the child's 300", rem)
	}
	// Equal credibility replaces.
	if !c.Put(entry("nic.uy", dnswire.TypeA, 120, CredAnswerAuth)) {
		t.Errorf("equal credibility must replace")
	}
	// Once expired, glue may land.
	clk.Advance(1000 * time.Second)
	if !c.Put(glue) {
		t.Errorf("expired entries must not block lower credibility")
	}
	_, rem, ok := c.Get(dnswire.NewName("nic.uy"), dnswire.TypeA)
	if !ok || rem != 172800 {
		t.Errorf("after glue insert: rem=%d ok=%v", rem, ok)
	}
}

func TestCredibilityUpgrade(t *testing.T) {
	c := New(simnet.NewVirtualClock(), Config{})
	c.Put(entry("x.org", dnswire.TypeA, 172800, CredAdditional))
	// Authoritative data replaces glue immediately.
	if !c.Put(entry("x.org", dnswire.TypeA, 60, CredAnswerAuth)) {
		t.Fatalf("authoritative answer must replace glue")
	}
	_, rem, _ := c.Get(dnswire.NewName("x.org"), dnswire.TypeA)
	if rem != 60 {
		t.Errorf("rem = %d, want 60", rem)
	}
}

func TestTTLCapAndFloor(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{MaxTTL: 21599, MinTTL: 30})
	c.Put(entry("big.org", dnswire.TypeNS, 345600, CredAnswerAuth))
	_, rem, _ := c.Get(dnswire.NewName("big.org"), dnswire.TypeNS)
	if rem != 21599 {
		t.Errorf("capped rem = %d, want 21599 (the Google cap from §3.3)", rem)
	}
	c.Put(entry("small.org", dnswire.TypeA, 5, CredAnswerAuth))
	_, rem, _ = c.Get(dnswire.NewName("small.org"), dnswire.TypeA)
	if rem != 30 {
		t.Errorf("floored rem = %d, want 30", rem)
	}
}

func TestNegativeEntries(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{})
	c.Put(Entry{
		Key:      Key{Name: dnswire.NewName("missing.org"), Type: dnswire.TypeA},
		TTL:      300,
		Cred:     CredAnswerAuth,
		Negative: NegNXDomain,
	})
	e, _, ok := c.Get(dnswire.NewName("missing.org"), dnswire.TypeA)
	if !ok || e.Negative != NegNXDomain {
		t.Errorf("negative entry: %+v ok=%v", e, ok)
	}
	clk.Advance(301 * time.Second)
	if _, _, ok := c.Get(dnswire.NewName("missing.org"), dnswire.TypeA); ok {
		t.Errorf("negative entry must expire")
	}
}

func TestServeStale(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{ServeStale: true, StaleFor: time.Hour})
	c.Put(entry("stale.org", dnswire.TypeA, 60, CredAnswerAuth))
	clk.Advance(120 * time.Second)
	if _, _, ok := c.Get(dnswire.NewName("stale.org"), dnswire.TypeA); ok {
		t.Fatalf("Get must not return expired data")
	}
	e, rem, ok := c.GetStale(dnswire.NewName("stale.org"), dnswire.TypeA)
	if !ok || rem != 30 {
		t.Fatalf("GetStale: rem=%d ok=%v", rem, ok)
	}
	if e.Key.Name != dnswire.NewName("stale.org") {
		t.Errorf("wrong entry")
	}
	clk.Advance(2 * time.Hour)
	if _, _, ok := c.GetStale(dnswire.NewName("stale.org"), dnswire.TypeA); ok {
		t.Errorf("stale window exceeded, must miss")
	}
	if st := c.Stats(); st.StaleHits != 1 {
		t.Errorf("StaleHits = %d", st.StaleHits)
	}
}

func TestServeStaleDisabled(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{})
	c.Put(entry("x.org", dnswire.TypeA, 60, CredAnswerAuth))
	clk.Advance(2 * time.Minute)
	if _, _, ok := c.GetStale(dnswire.NewName("x.org"), dnswire.TypeA); ok {
		t.Errorf("GetStale must respect ServeStale=false")
	}
	// But fresh data still flows through GetStale.
	c.Put(entry("y.org", dnswire.TypeA, 600, CredAnswerAuth))
	if _, rem, ok := c.GetStale(dnswire.NewName("y.org"), dnswire.TypeA); !ok || rem != 600 {
		t.Errorf("GetStale on fresh entry: rem=%d ok=%v", rem, ok)
	}
}

func TestPurgeGlueOf(t *testing.T) {
	c := New(simnet.NewVirtualClock(), Config{})
	g1 := entry("ns1.sub.example.org", dnswire.TypeA, 7200, CredAdditional)
	g1.GlueOf = dnswire.NewName("sub.example.org")
	g2 := entry("ns2.sub.example.org", dnswire.TypeA, 7200, CredAdditional)
	g2.GlueOf = dnswire.NewName("sub.example.org")
	other := entry("ns1.other.org", dnswire.TypeA, 7200, CredAdditional)
	c.Put(g1)
	c.Put(g2)
	c.Put(other)
	if n := c.PurgeGlueOf(dnswire.NewName("sub.example.org")); n != 2 {
		t.Fatalf("purged %d, want 2", n)
	}
	if _, _, ok := c.Get(dnswire.NewName("ns1.sub.example.org"), dnswire.TypeA); ok {
		t.Errorf("glue should be gone")
	}
	if _, _, ok := c.Get(dnswire.NewName("ns1.other.org"), dnswire.TypeA); !ok {
		t.Errorf("unrelated entry purged")
	}
}

func TestEvictionFIFO(t *testing.T) {
	c := New(simnet.NewVirtualClock(), Config{Capacity: 3})
	for i := 0; i < 5; i++ {
		c.Put(entry(fmt.Sprintf("n%d.org", i), dnswire.TypeA, 600, CredAnswerAuth))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if _, _, ok := c.Get(dnswire.NewName("n0.org"), dnswire.TypeA); ok {
		t.Errorf("oldest entry should be evicted")
	}
	if _, _, ok := c.Get(dnswire.NewName("n4.org"), dnswire.TypeA); !ok {
		t.Errorf("newest entry should remain")
	}
	if st := c.Stats(); st.Evictions != 2 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestRemoveAndFlushAndKeys(t *testing.T) {
	c := New(simnet.NewVirtualClock(), Config{})
	c.Put(entry("a.org", dnswire.TypeA, 60, CredAnswerAuth))
	c.Put(entry("b.org", dnswire.TypeA, 60, CredAnswerAuth))
	if ks := c.Keys(); len(ks) != 2 || ks[0].Name != dnswire.NewName("a.org") {
		t.Errorf("Keys = %v", ks)
	}
	if !c.Remove(dnswire.NewName("a.org"), dnswire.TypeA) {
		t.Errorf("Remove existing = false")
	}
	if c.Remove(dnswire.NewName("a.org"), dnswire.TypeA) {
		t.Errorf("Remove missing = true")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Flush left %d entries", c.Len())
	}
}

func TestRemainingBoundary(t *testing.T) {
	clk := simnet.NewVirtualClock()
	e := Entry{TTL: 10, Stored: clk.Now()}
	if rem, ok := e.Remaining(clk.Now()); !ok || rem != 10 {
		t.Errorf("t=0: %d %v", rem, ok)
	}
	if rem, ok := e.Remaining(clk.Now().Add(9 * time.Second)); !ok || rem != 1 {
		t.Errorf("t=9: %d %v", rem, ok)
	}
	if _, ok := e.Remaining(clk.Now().Add(10 * time.Second)); ok {
		t.Errorf("t=TTL must be expired")
	}
	// Clock skew (stored in the future) must not underflow.
	if rem, ok := e.Remaining(clk.Now().Add(-time.Hour)); !ok || rem != 10 {
		t.Errorf("future-stored entry: %d %v", rem, ok)
	}
}

func TestCredibilityStrings(t *testing.T) {
	for c, want := range map[Credibility]string{
		CredAdditional:        "additional",
		CredAuthorityReferral: "authority-referral",
		CredAuthorityAuth:     "authority-auth",
		CredAnswerNonAuth:     "answer-nonauth",
		CredAnswerAuth:        "answer-auth",
		Credibility(0):        "none",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

// TestQuickDecayMonotonic: remaining TTL never increases as time advances,
// and an entry reports expired exactly from TTL seconds onward.
func TestQuickDecayMonotonic(t *testing.T) {
	f := func(ttl uint16, steps []uint8) bool {
		clk := simnet.NewVirtualClock()
		e := Entry{TTL: uint32(ttl), Stored: clk.Now()}
		prev := uint32(ttl)
		elapsed := uint64(0)
		for _, s := range steps {
			clk.Advance(time.Duration(s) * time.Second)
			elapsed += uint64(s)
			rem, ok := e.Remaining(clk.Now())
			if ok {
				if elapsed >= uint64(ttl) {
					return false // should be expired
				}
				if rem > prev {
					return false // never increases
				}
				prev = rem
			} else if elapsed < uint64(ttl) {
				return false // expired too early
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickCredibilityInvariant: after any Put sequence, the stored entry's
// credibility is the max of all attempted Puts while fresh.
func TestQuickCredibilityInvariant(t *testing.T) {
	f := func(creds []uint8) bool {
		c := New(simnet.NewVirtualClock(), Config{})
		var maxCred Credibility
		for _, cr := range creds {
			cred := Credibility(cr%5) + 1
			c.Put(entry("x.org", dnswire.TypeA, 600, cred))
			if cred > maxCred {
				maxCred = cred
			}
		}
		if len(creds) == 0 {
			return true
		}
		e, _, ok := c.Get(dnswire.NewName("x.org"), dnswire.TypeA)
		return ok && e.Cred == maxCred
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGetStaleBoundaries pins the RFC 8767 window semantics at its exact
// edges: an entry is stale (not fresh) from the moment elapsed == TTL,
// servable as stale through expiry+StaleFor inclusive, and gone one tick
// later.
func TestGetStaleBoundaries(t *testing.T) {
	const ttl = 100
	const staleFor = time.Hour
	name := dnswire.NewName("edge.org")

	fresh := func(elapsed time.Duration) (*Entry, uint32, bool, *Cache) {
		clk := simnet.NewVirtualClock()
		c := New(clk, Config{ServeStale: true, StaleFor: staleFor})
		c.Put(entry("edge.org", dnswire.TypeA, ttl, CredAnswerAuth))
		clk.Advance(elapsed)
		e, rem, ok := c.GetStale(name, dnswire.TypeA)
		return e, rem, ok, c
	}

	// One tick before expiry: still fresh, real remaining TTL.
	if _, rem, ok, c := fresh(ttl*time.Second - time.Second); !ok || rem != 1 {
		t.Errorf("t=TTL-1: rem=%d ok=%v, want fresh with rem=1", rem, ok)
	} else if st := c.Stats(); st.StaleHits != 0 {
		t.Errorf("t=TTL-1: StaleHits=%d, want 0", st.StaleHits)
	}

	// Exactly at expiry: no longer fresh (Remaining: elapsed >= TTL), but
	// inside the stale window, served with the RFC 8767 30 s TTL.
	if e, rem, ok, c := fresh(ttl * time.Second); !ok || rem != 30 {
		t.Errorf("t=TTL: rem=%d ok=%v, want stale serve with rem=30", rem, ok)
	} else {
		if e.Key.Name != name {
			t.Errorf("t=TTL: wrong entry %v", e.Key)
		}
		if st := c.Stats(); st.StaleHits != 1 || st.Hits != 0 {
			t.Errorf("t=TTL: stats=%+v, want 1 stale hit and no fresh hit", st)
		}
	}

	// Exactly at expiry+StaleFor: the window is inclusive (now-expiry must
	// EXCEED StaleFor to reject), so this still serves.
	if _, rem, ok, _ := fresh(ttl*time.Second + staleFor); !ok || rem != 30 {
		t.Errorf("t=TTL+StaleFor: rem=%d ok=%v, want stale serve at window edge", rem, ok)
	}

	// One tick past the window: gone.
	if _, _, ok, c := fresh(ttl*time.Second + staleFor + time.Second); ok {
		t.Errorf("t=TTL+StaleFor+1: served beyond the stale window")
	} else if st := c.Stats(); st.StaleHits != 0 {
		t.Errorf("t=TTL+StaleFor+1: StaleHits=%d, want 0", st.StaleHits)
	}
}
