package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
)

func evictOrder(c *Cache) []string {
	var names []string
	for _, k := range c.Keys() {
		names = append(names, string(k.Name))
	}
	return names
}

// TestLRURecencyOrder pins the LRU contract: a hit moves the entry to the
// safe end of the eviction order, so under pressure the victims are exactly
// the least-recently-used keys, in recency order.
func TestLRURecencyOrder(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{Capacity: 4, Eviction: EvictLRU})
	for _, n := range []string{"a.", "b.", "c.", "d."} {
		c.Put(entry(n, dnswire.TypeA, 300, CredAnswerAuth))
	}
	// Touch a and c: eviction order must now be b, d, a, c.
	c.Get(dnswire.NewName("a."), dnswire.TypeA)
	c.Get(dnswire.NewName("c."), dnswire.TypeA)
	if got := evictOrder(c); fmt.Sprint(got) != "[b. d. a. c.]" {
		t.Fatalf("order after touches = %v, want [b. d. a. c.]", got)
	}

	// Two inserts over capacity must evict b then d — never the touched keys.
	c.Put(entry("e.", dnswire.TypeA, 300, CredAnswerAuth))
	c.Put(entry("f.", dnswire.TypeA, 300, CredAnswerAuth))
	for _, n := range []string{"a.", "c.", "e.", "f."} {
		if _, _, ok := c.Get(dnswire.NewName(n), dnswire.TypeA); !ok {
			t.Errorf("touched/new key %s was evicted", n)
		}
	}
	for _, n := range []string{"b.", "d."} {
		if _, _, ok := c.Get(dnswire.NewName(n), dnswire.TypeA); ok {
			t.Errorf("LRU victim %s still resident", n)
		}
	}
	if st := c.Stats(); st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
}

// TestFIFOIgnoresRecency is the contrast case: under the legacy policy the
// same touch pattern changes nothing, and insertion order picks the victims.
func TestFIFOIgnoresRecency(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{Capacity: 4})
	for _, n := range []string{"a.", "b.", "c.", "d."} {
		c.Put(entry(n, dnswire.TypeA, 300, CredAnswerAuth))
	}
	c.Get(dnswire.NewName("a."), dnswire.TypeA)
	c.Get(dnswire.NewName("c."), dnswire.TypeA)
	c.Put(entry("e.", dnswire.TypeA, 300, CredAnswerAuth))
	if _, _, ok := c.Get(dnswire.NewName("a."), dnswire.TypeA); ok {
		t.Error("FIFO must evict a. (oldest stored) despite its recent hit")
	}
}

// TestByteBoundNeverExceeded drives a byte-bounded cache with entries of
// random sizes and checks, after every operation, that the resident total
// matches the per-entry accounting and never exceeds MaxBytes.
func TestByteBoundNeverExceeded(t *testing.T) {
	for _, p := range []EvictionPolicy{EvictFIFO, EvictLRU, EvictSLRU} {
		t.Run(p.String(), func(t *testing.T) {
			clk := simnet.NewVirtualClock()
			const bound = 8 << 10
			c := New(clk, Config{MaxBytes: bound, Capacity: 128, Eviction: p})
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 4000; i++ {
				name := fmt.Sprintf("%0*d.example.org", 1+rng.Intn(40), rng.Intn(300))
				e := entry(name, dnswire.TypeA, uint32(1+rng.Intn(200)), CredAnswerAuth)
				for j := rng.Intn(4); j > 0; j-- { // up to 4 extra RRs per set
					e.RRs = append(e.RRs, dnswire.NewA(name, e.TTL, "192.0.2.2"))
				}
				c.Put(e)
				if rng.Intn(4) == 0 {
					c.Get(dnswire.NewName(name), dnswire.TypeA)
				}
				if rng.Intn(16) == 0 {
					clk.Advance(time.Duration(rng.Intn(30)) * time.Second)
				}
				if got := c.Bytes(); got > bound {
					t.Fatalf("op %d: resident bytes %d exceed bound %d", i, got, bound)
				}
			}
			// The tracked total must equal the sum over resident entries.
			var sum int64
			c.mu.Lock()
			for _, e := range c.entries {
				sum += int64(e.bytes)
			}
			c.mu.Unlock()
			if got := c.Bytes(); got != sum {
				t.Errorf("tracked bytes %d != per-entry sum %d", got, sum)
			}
		})
	}
}

// TestOversizedEntryRejected: an entry larger than the whole bound must be
// refused outright instead of flushing the cache to make room it can never
// have.
func TestOversizedEntryRejected(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{MaxBytes: 256, Eviction: EvictLRU})
	c.Put(entry("small.example.org", dnswire.TypeA, 300, CredAnswerAuth))
	big := entry("big.example.org", dnswire.TypeTXT, 300, CredAnswerAuth)
	big.RRs = []dnswire.RR{dnswire.NewTXT("big.example.org", 300, string(make([]byte, 200)))}
	if c.Put(big) {
		t.Fatal("entry larger than MaxBytes was admitted")
	}
	if _, _, ok := c.Get(dnswire.NewName("small.example.org"), dnswire.TypeA); !ok {
		t.Error("resident entry was evicted for an unstorable candidate")
	}
}

// TestDoorkeeperAdmission exercises the TinyLFU gate end to end: a
// never-seen key cannot displace a warm victim, repeated sightings walk it
// through the doorkeeper and the sketch, and once its estimate beats the
// victim's the same Put succeeds.
func TestDoorkeeperAdmission(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{Capacity: 4, Eviction: EvictSLRU})
	warm := []string{"w1.example.org", "w2.example.org", "w3.example.org", "w4.example.org"}
	for _, n := range warm {
		c.Put(entry(n, dnswire.TypeA, 3600, CredAnswerAuth))
	}
	// Two hits each: first sighting arms the doorkeeper, the second feeds
	// the sketch — every resident now has estimate 2.
	for i := 0; i < 2; i++ {
		for _, n := range warm {
			c.Get(dnswire.NewName(n), dnswire.TypeA)
		}
	}

	cold := entry("cold.example.org", dnswire.TypeA, 3600, CredAnswerAuth)
	if c.Put(cold) {
		t.Fatal("one-hit wonder displaced a warm entry")
	}
	st := c.Stats()
	if st.AdmissionRejects == 0 {
		t.Fatal("rejection not counted in AdmissionRejects")
	}
	if st.Entries != 4 {
		t.Fatalf("entries = %d after rejected Put, want 4", st.Entries)
	}

	// Four lookups push the cold key's estimate past the victims' 2.
	for i := 0; i < 4; i++ {
		c.Get(dnswire.NewName("cold.example.org"), dnswire.TypeA)
	}
	if !c.Put(cold) {
		t.Fatal("frequently requested key still rejected")
	}
	if _, _, ok := c.Get(dnswire.NewName("cold.example.org"), dnswire.TypeA); !ok {
		t.Error("admitted key not resident")
	}
}

// TestAdmissionSkipsExpiredVictim: the filter only defends victims that are
// still alive. Once the resident set has expired, even an estimate-0 key
// must get in — expired entries have nothing left to protect.
func TestAdmissionSkipsExpiredVictim(t *testing.T) {
	clk := simnet.NewVirtualClock()
	c := New(clk, Config{Capacity: 2, Eviction: EvictSLRU})
	c.Put(entry("w1.example.org", dnswire.TypeA, 30, CredAnswerAuth))
	c.Put(entry("w2.example.org", dnswire.TypeA, 30, CredAnswerAuth))
	for i := 0; i < 3; i++ {
		c.Get(dnswire.NewName("w1.example.org"), dnswire.TypeA)
		c.Get(dnswire.NewName("w2.example.org"), dnswire.TypeA)
	}
	clk.Advance(31 * time.Second)
	if !c.Put(entry("cold.example.org", dnswire.TypeA, 30, CredAnswerAuth)) {
		t.Fatal("admission filter defended an expired victim")
	}
}

// TestGetHitAllocFreeLRU pins the recency-maintained hit path to zero
// allocations: under LRU a hit is the FIFO hit plus a MoveToBack, which
// must not allocate.
func TestGetHitAllocFreeLRU(t *testing.T) {
	c := New(simnet.NewVirtualClock(), Config{Eviction: EvictLRU})
	n := dnswire.NewName("www.example.org")
	c.Put(entry("www.example.org", dnswire.TypeA, 300, CredAnswerAuth))
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, ok := c.Get(n, dnswire.TypeA); !ok {
			t.Fatal("miss")
		}
	})
	if allocs >= 0.5 {
		t.Errorf("LRU cache hit: %.2f allocs/op, want 0", allocs)
	}
}

// TestPressureHammer mixes Put, Get, GetStale, Remove, Keys, Flush,
// NotePrefetch, and Stats across goroutines on a byte-bounded cache for
// every policy. Under -race this proves the eviction structures (lists,
// sketch, byte counter) never escape the cache lock.
func TestPressureHammer(t *testing.T) {
	for _, p := range []EvictionPolicy{EvictFIFO, EvictLRU, EvictSLRU} {
		t.Run(p.String(), func(t *testing.T) {
			c := New(simnet.NewVirtualClock(), Config{
				MaxBytes: 16 << 10, Capacity: 128, Eviction: p,
			})
			const goroutines = 8
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < 3000; i++ {
						name := fmt.Sprintf("h%03d.example.org", rng.Intn(400))
						switch rng.Intn(8) {
						case 0:
							c.Remove(dnswire.NewName(name), dnswire.TypeA)
						case 1:
							c.GetStale(dnswire.NewName(name), dnswire.TypeA)
						case 2:
							c.NotePrefetch()
							c.Get(dnswire.NewName(name), dnswire.TypeA)
						case 3:
							_ = c.Keys()
						case 4:
							_ = c.Stats()
						default:
							c.Put(entry(name, dnswire.TypeA, uint32(1+rng.Intn(300)), CredAnswerAuth))
							c.Get(dnswire.NewName(name), dnswire.TypeA)
						}
					}
				}(g)
			}
			wg.Wait()
			if got := c.Bytes(); got > 16<<10 {
				t.Errorf("resident bytes %d exceed bound after hammer", got)
			}
			c.Flush()
			if c.Len() != 0 || c.Bytes() != 0 {
				t.Errorf("after flush: %d entries, %d bytes", c.Len(), c.Bytes())
			}
		})
	}
}
