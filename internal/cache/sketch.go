package cache

// freqSketch is the TinyLFU admission filter: a 4-bit count-min sketch with
// periodic aging, fronted by a doorkeeper bloom filter that absorbs the
// first occurrence of every key. DNS workloads are dominated by a long tail
// of names queried exactly once; the doorkeeper keeps them out of the
// sketch entirely, so the 4-bit counters measure only keys seen at least
// twice, and the aging halving keeps the estimate tracking the recent
// window rather than all time (the TinyLFU "reset" operation).
//
// All operations are O(1), allocation-free, and run under the owning
// cache's lock.
type freqSketch struct {
	// counters packs 16 4-bit counters per uint64 word. Four independent
	// hash rows are derived from one 64-bit key hash.
	counters []uint64
	mask     uint64 // counter-index mask; len(counters)*16 is a power of two
	// door is the doorkeeper bloom filter (2 hash functions).
	door     []uint64
	doorMask uint64 // bit-index mask
	// additions counts sketch increments since the last aging; at
	// sampleCap the counters halve and the doorkeeper clears.
	additions int
	sampleCap int
}

// Sketch sizing bounds: at least 1k counters so small caches still get a
// useful signal, at most 128k so a default (1M-entry) capacity does not
// allocate megabytes of sketch.
const (
	sketchMinCounters = 1 << 10
	sketchMaxCounters = 1 << 17
)

// newFreqSketch sizes the sketch for an expected population of capacity
// entries: counters ≈ capacity rounded up to a power of two (clamped), a
// doorkeeper of 8 bits per counter, and a sample window of 10× the counter
// count per the TinyLFU paper.
func newFreqSketch(capacity int) *freqSketch {
	n := sketchMinCounters
	for n < capacity && n < sketchMaxCounters {
		n <<= 1
	}
	return &freqSketch{
		counters:  make([]uint64, n/16),
		mask:      uint64(n - 1),
		door:      make([]uint64, n/64),
		doorMask:  uint64(n - 1),
		sampleCap: 10 * n,
	}
}

// spread re-mixes h into four row hashes. The multipliers are odd 64-bit
// constants (splitmix64 finalizer style), so the rows are effectively
// independent.
func spread(h uint64, row uint) uint64 {
	h += uint64(row) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// doorTest reports whether h is (probably) in the doorkeeper.
func (s *freqSketch) doorTest(h uint64) bool {
	b1 := spread(h, 7) & s.doorMask
	b2 := spread(h, 8) & s.doorMask
	return s.door[b1>>6]&(1<<(b1&63)) != 0 && s.door[b2>>6]&(1<<(b2&63)) != 0
}

// doorSet inserts h into the doorkeeper.
func (s *freqSketch) doorSet(h uint64) {
	b1 := spread(h, 7) & s.doorMask
	b2 := spread(h, 8) & s.doorMask
	s.door[b1>>6] |= 1 << (b1 & 63)
	s.door[b2>>6] |= 1 << (b2 & 63)
}

// counterAt returns the 4-bit counter for row i of hash h.
func (s *freqSketch) counterAt(h uint64, row uint) (word int, shift uint) {
	idx := spread(h, row) & s.mask
	return int(idx >> 4), uint(idx&15) << 2
}

// record notes one occurrence of a key hash: first sighting arms the
// doorkeeper, repeats increment the sketch rows (saturating at 15).
func (s *freqSketch) record(h uint64) {
	if !s.doorTest(h) {
		s.doorSet(h)
		return
	}
	bumped := false
	for row := uint(0); row < 4; row++ {
		w, sh := s.counterAt(h, row)
		if c := (s.counters[w] >> sh) & 0xf; c < 15 {
			s.counters[w] += 1 << sh
			bumped = true
		}
	}
	if bumped {
		s.additions++
		if s.additions >= s.sampleCap {
			s.age()
		}
	}
}

// estimate returns the key's frequency estimate: the count-min minimum over
// the rows, plus one if the doorkeeper has seen it.
func (s *freqSketch) estimate(h uint64) uint32 {
	min := uint64(15)
	for row := uint(0); row < 4; row++ {
		w, sh := s.counterAt(h, row)
		if c := (s.counters[w] >> sh) & 0xf; c < min {
			min = c
		}
	}
	est := uint32(min)
	if s.doorTest(h) {
		est++
	}
	return est
}

// age halves every counter and clears the doorkeeper — the TinyLFU reset
// that keeps estimates tracking the recent request window.
func (s *freqSketch) age() {
	for i := range s.counters {
		// Halve all 16 packed counters at once: shift, then mask off the
		// bit that bled in from each neighbor's low end.
		s.counters[i] = (s.counters[i] >> 1) & 0x7777777777777777
	}
	for i := range s.door {
		s.door[i] = 0
	}
	s.additions = 0
}

// reset clears all frequency state.
func (s *freqSketch) reset() {
	for i := range s.counters {
		s.counters[i] = 0
	}
	for i := range s.door {
		s.door[i] = 0
	}
	s.additions = 0
}
