package cache

import (
	"container/list"
	"fmt"
)

// EvictionPolicy selects how the cache orders entries for eviction under
// pressure (entry-count or byte bound). The zero value is FIFO, the legacy
// behavior: a zero-value Config builds a cache behaviorally identical to
// the pre-pressure-plane implementation.
type EvictionPolicy uint8

const (
	// EvictFIFO evicts oldest-stored first, ignoring accesses. This is the
	// legacy (and zero-value) policy.
	EvictFIFO EvictionPolicy = iota
	// EvictLRU evicts least-recently-used first: every cache hit moves the
	// entry to the tail of the eviction order.
	EvictLRU
	// EvictSLRU is a segmented LRU with TinyLFU admission: new entries land
	// in a probationary segment and are promoted on re-reference; at the
	// bound, a frequency sketch with a doorkeeper decides whether a new key
	// is popular enough to displace the current victim at all. One-hit
	// wonders — the long Zipf tail of DNS names — never push out warm
	// entries.
	EvictSLRU
)

// ParseEvictionPolicy maps the CLI spellings to a policy.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) {
	switch s {
	case "fifo", "":
		return EvictFIFO, nil
	case "lru":
		return EvictLRU, nil
	case "slru", "tinylfu":
		return EvictSLRU, nil
	}
	return EvictFIFO, fmt.Errorf("cache: unknown eviction policy %q (want fifo, lru, or slru)", s)
}

func (p EvictionPolicy) String() string {
	switch p {
	case EvictLRU:
		return "lru"
	case EvictSLRU:
		return "slru"
	}
	return "fifo"
}

// Evictor is the pluggable eviction order behind a Cache. Implementations
// own the order structure(s) and track membership through the entry's
// unexported handle fields; the cache calls every method with its lock
// held, so evictors need no locking of their own, and every operation is
// O(1).
type Evictor interface {
	// Push links a newly stored entry into the order.
	Push(e *Entry)
	// Touch notes a cache hit on a resident entry.
	Touch(e *Entry)
	// Record notes a lookup of k (hit or miss), feeding any frequency state
	// the policy keeps for admission decisions.
	Record(k Key)
	// Remove unlinks e from the order.
	Remove(e *Entry)
	// Victim returns the entry the policy would evict next, or nil.
	Victim() *Entry
	// Admit reports whether cand deserves to displace victim when the cache
	// is at its bound. Policies without admission control always say yes.
	Admit(cand Key, victim *Entry) bool
	// Walk visits every resident entry in eviction order (victim first).
	Walk(fn func(e *Entry))
	// Reset empties the order (and any frequency state).
	Reset()
}

// newEvictor builds the evictor for a policy. capacity sizes any frequency
// state (the SLRU sketch and segment split); FIFO and LRU ignore it.
func newEvictor(p EvictionPolicy, capacity int) Evictor {
	switch p {
	case EvictLRU:
		return &lruEvictor{listEvictor{order: list.New()}}
	case EvictSLRU:
		return newSLRUEvictor(capacity)
	}
	return &fifoEvictor{listEvictor{order: list.New()}}
}

// listEvictor is the shared single-list machinery of FIFO and LRU: push to
// back, evict from front. The two differ only in what a hit does.
type listEvictor struct{ order *list.List }

func (l *listEvictor) Push(e *Entry)   { e.el = l.order.PushBack(e) }
func (l *listEvictor) Record(Key)      {}
func (l *listEvictor) Remove(e *Entry) { l.order.Remove(e.el); e.el = nil }
func (l *listEvictor) Victim() *Entry {
	front := l.order.Front()
	if front == nil {
		return nil
	}
	return front.Value.(*Entry)
}
func (l *listEvictor) Admit(Key, *Entry) bool { return true }
func (l *listEvictor) Reset()                 { l.order.Init() }
func (l *listEvictor) Walk(fn func(e *Entry)) {
	for el := l.order.Front(); el != nil; el = el.Next() {
		fn(el.Value.(*Entry))
	}
}

// fifoEvictor is the legacy order: insertion order, hits change nothing.
type fifoEvictor struct{ listEvictor }

func (f *fifoEvictor) Touch(*Entry) {}

// lruEvictor keeps one recency list: hits move to the back.
type lruEvictor struct{ listEvictor }

func (l *lruEvictor) Touch(e *Entry) { l.order.MoveToBack(e.el) }

// Segment tags for slruEvictor, stored on the entry so segment membership
// is O(1) without a side map.
const (
	segProbation uint8 = 1
	segProtected uint8 = 2
)

// slruEvictor is a segmented LRU (probation + protected) with a TinyLFU
// frequency sketch and doorkeeper deciding admission at the bound.
//
// New entries enter probation; a hit promotes to protected, whose overflow
// demotes its own LRU end back to probation — scanning workloads churn
// probation while the protected segment holds the proven-warm set. Victims
// come from probation's LRU end first, so a warm entry is never displaced
// by a key that has not earned a second access.
type slruEvictor struct {
	probation *list.List
	protected *list.List
	protCap   int
	sketch    *freqSketch
}

// protectedFraction is the share of the entry capacity reserved for the
// protected segment, per the SLRU literature's 80/20 split.
const protectedFraction = 0.8

func newSLRUEvictor(capacity int) *slruEvictor {
	protCap := int(float64(capacity) * protectedFraction)
	if protCap < 1 {
		protCap = 1
	}
	return &slruEvictor{
		probation: list.New(),
		protected: list.New(),
		protCap:   protCap,
		sketch:    newFreqSketch(capacity),
	}
}

func (s *slruEvictor) Push(e *Entry) {
	e.seg = segProbation
	e.el = s.probation.PushBack(e)
}

func (s *slruEvictor) Touch(e *Entry) {
	if e.seg == segProtected {
		s.protected.MoveToBack(e.el)
		return
	}
	// Promote out of probation. Elements cannot migrate between lists, so
	// re-insert and refresh the handle.
	s.probation.Remove(e.el)
	e.seg = segProtected
	e.el = s.protected.PushBack(e)
	if s.protected.Len() > s.protCap {
		if front := s.protected.Front(); front != nil {
			de := front.Value.(*Entry)
			s.protected.Remove(front)
			de.seg = segProbation
			de.el = s.probation.PushBack(de)
		}
	}
}

func (s *slruEvictor) Record(k Key) { s.sketch.record(keyHash64(k)) }

func (s *slruEvictor) Remove(e *Entry) {
	if e.seg == segProtected {
		s.protected.Remove(e.el)
	} else {
		s.probation.Remove(e.el)
	}
	e.el, e.seg = nil, 0
}

func (s *slruEvictor) Victim() *Entry {
	if front := s.probation.Front(); front != nil {
		return front.Value.(*Entry)
	}
	if front := s.protected.Front(); front != nil {
		return front.Value.(*Entry)
	}
	return nil
}

// Admit is the TinyLFU doorkeeper decision: the candidate must be strictly
// more popular than the victim to displace it. Ties reject, which keeps a
// stream of one-hit wonders from cycling the probation segment.
func (s *slruEvictor) Admit(cand Key, victim *Entry) bool {
	return s.sketch.estimate(keyHash64(cand)) > s.sketch.estimate(keyHash64(victim.Key))
}

func (s *slruEvictor) Walk(fn func(e *Entry)) {
	for el := s.probation.Front(); el != nil; el = el.Next() {
		fn(el.Value.(*Entry))
	}
	for el := s.protected.Front(); el != nil; el = el.Next() {
		fn(el.Value.(*Entry))
	}
}

func (s *slruEvictor) Reset() {
	s.probation.Init()
	s.protected.Init()
	s.sketch.reset()
}

// keyHash64 is an allocation-free FNV-1a over the key's name and type, used
// by the frequency sketch. (cache.KeyHash exists but converts the name to a
// byte slice, which allocates; this sits on the Get hot path of an SLRU
// cache.)
func keyHash64(k Key) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.Name); i++ {
		h = (h ^ uint64(k.Name[i])) * 1099511628211
	}
	h = (h ^ uint64(k.Type>>8)) * 1099511628211
	h = (h ^ uint64(k.Type&0xff)) * 1099511628211
	return h
}
