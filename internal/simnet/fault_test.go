package simnet

import (
	"net/netip"
	"testing"
	"time"
)

var (
	faultSrv = netip.MustParseAddr("192.0.2.1")
	faultCli = netip.MustParseAddr("10.0.0.1")
)

func TestFaultScheduleWindows(t *testing.T) {
	s := NewFaultSchedule(
		Outage(faultSrv, 10*time.Minute, 20*time.Minute),
		LossBurst(netip.Addr{}, 0, time.Hour, 0.25),
		LatencySpike(faultSrv, 0, time.Hour, 4),
	)
	at := func(d time.Duration) FaultEffects {
		return s.EffectsAt(faultCli, faultSrv, Epoch.Add(d))
	}
	if e := at(5 * time.Minute); e.Down {
		t.Errorf("down before the outage window: %+v", e)
	}
	if e := at(15 * time.Minute); !e.Down {
		t.Errorf("not down inside the outage window: %+v", e)
	}
	if e := at(30 * time.Minute); e.Down {
		t.Errorf("down after the outage window: %+v", e)
	}
	if e := at(15 * time.Minute); e.LossP != 0.25 || e.Factor != 4 {
		t.Errorf("loss/latency effects wrong: %+v", e)
	}
	// The wildcard loss matches other servers; the targeted spike does not.
	other := netip.MustParseAddr("192.0.2.9")
	if e := s.EffectsAt(faultCli, other, Epoch.Add(15*time.Minute)); e.LossP != 0.25 || e.Factor != 0 {
		t.Errorf("wildcard/targeted matching wrong for other server: %+v", e)
	}
	// Past every window: nothing.
	if e := at(2 * time.Hour); e.Any() {
		t.Errorf("effects active past all windows: %+v", e)
	}
}

func TestFaultLossComposition(t *testing.T) {
	s := NewFaultSchedule(
		LossBurst(faultSrv, 0, time.Hour, 0.5),
		LossBurst(faultSrv, 0, time.Hour, 0.5),
	)
	e := s.EffectsAt(faultCli, faultSrv, Epoch)
	if e.LossP != 0.75 {
		t.Errorf("independent composition of two 0.5 losses = %v, want 0.75", e.LossP)
	}
}

func TestFaultFlap(t *testing.T) {
	s := NewFaultSchedule(Flap(faultSrv, 0, time.Hour, 10*time.Minute, 0.5))
	down := 0
	for m := 0; m < 60; m++ {
		if s.EffectsAt(faultCli, faultSrv, Epoch.Add(time.Duration(m)*time.Minute)).Down {
			down++
		}
	}
	if down != 30 {
		t.Errorf("flap with duty 0.5 down %d/60 minutes, want 30", down)
	}
	// Phase: down during the first half of each period when Seed is 0.
	if !s.EffectsAt(faultCli, faultSrv, Epoch.Add(2*time.Minute)).Down {
		t.Error("expected down in first half-period")
	}
	if s.EffectsAt(faultCli, faultSrv, Epoch.Add(7*time.Minute)).Down {
		t.Error("expected up in second half-period")
	}
	// Seeded schedules shift the phase deterministically per server.
	s2 := NewFaultSchedule(Flap(faultSrv, 0, time.Hour, 10*time.Minute, 0.5))
	s2.Seed = 7
	s3 := NewFaultSchedule(Flap(faultSrv, 0, time.Hour, 10*time.Minute, 0.5))
	s3.Seed = 7
	for m := 0; m < 60; m++ {
		at := Epoch.Add(time.Duration(m) * time.Minute)
		if s2.EffectsAt(faultCli, faultSrv, at).Down != s3.EffectsAt(faultCli, faultSrv, at).Down {
			t.Fatal("same-seed flap schedules disagree")
		}
	}
}

func TestFaultPerFlow(t *testing.T) {
	other := netip.MustParseAddr("10.0.0.2")
	s := NewFaultSchedule(Fault{Kind: FaultOutage, Client: faultCli, Start: 0, End: time.Hour})
	if !s.EffectsAt(faultCli, faultSrv, Epoch).Down {
		t.Error("per-flow fault missed its client")
	}
	if s.EffectsAt(other, faultSrv, Epoch).Down {
		t.Error("per-flow fault leaked to another client")
	}
}

func TestParseFaultSchedule(t *testing.T) {
	s, err := ParseFaultSchedule("outage:*:30m+1h; loss:192.0.2.1:0s+2h:0.3; latency:*:0s+0s:10; flap:192.0.2.1:1h+1h:60s,0.25; servfail:*:10m+5m; truncate:192.0.2.1:0s+1h")
	if err != nil {
		t.Fatal(err)
	}
	fs := s.Faults()
	if len(fs) != 6 {
		t.Fatalf("parsed %d faults, want 6", len(fs))
	}
	// Faults() sorts by start: latency(0) truncate(0) loss(0) servfail(10m) outage(30m) flap(1h).
	if fs[len(fs)-1].Kind != FaultFlap || fs[len(fs)-1].Period != time.Minute || fs[len(fs)-1].Duty != 0.25 {
		t.Errorf("flap entry parsed wrong: %+v", fs[len(fs)-1])
	}
	e := s.EffectsAt(faultCli, netip.MustParseAddr("192.0.2.1"), Epoch.Add(45*time.Minute))
	if !e.Down || e.LossP < 0.299 || e.LossP > 0.301 || e.Factor != 10 || !e.Truncate {
		t.Errorf("composed parse effects wrong: %+v", e)
	}
	// Unbounded window (duration 0) stays active forever.
	if got := s.EffectsAt(faultCli, faultSrv, Epoch.Add(1000*time.Hour)).Factor; got != 10 {
		t.Errorf("unbounded latency window factor = %v, want 10", got)
	}

	for _, bad := range []string{
		"", "outage", "santa:*:0s+1h", "loss:*:0s+1h:1.5", "loss:*:0s+1h",
		"latency:*:0s+1h:-2", "flap:*:0s+1h:60s", "flap:*:0s+1h:60s,2",
		"outage:*:0s+1h:param", "outage:nonsense:0s+1h", "outage:*:bogus",
	} {
		if _, err := ParseFaultSchedule(bad); err == nil {
			t.Errorf("ParseFaultSchedule(%q) accepted", bad)
		}
	}
}

// TestNetworkFaultInjection drives real exchanges through a scripted
// network: outage → timeout, servfail → instant RCODE 2, truncate → TC=1
// empty shell, latency spike → scaled RTT.
func TestNetworkFaultInjection(t *testing.T) {
	clock := NewVirtualClock()
	n := NewNetwork(1)
	n.Clock = clock
	n.LatencyFor = func(src, dst netip.Addr) LatencyModel { return Constant(10 * time.Millisecond) }
	n.Attach(faultSrv, HandlerFunc(func(wire []byte, from netip.Addr) []byte {
		resp := append([]byte(nil), wire...)
		resp[2] |= 0x80
		return resp
	}))
	// A minimal query: header + no question (handlers here don't parse).
	query := make([]byte, 12)
	query[0], query[1] = 0xab, 0xcd

	n.Faults = NewFaultSchedule(
		Outage(faultSrv, 0, 10*time.Minute),
		ServFailStorm(faultSrv, 10*time.Minute, 10*time.Minute),
		TruncateAll(faultSrv, 20*time.Minute, 10*time.Minute),
		LatencySpike(faultSrv, 30*time.Minute, 10*time.Minute, 5),
	)

	if _, rtt, err := n.Exchange(faultCli, faultSrv, query); err != ErrTimeout || rtt != DefaultTimeout {
		t.Errorf("outage window: err=%v rtt=%v, want timeout", err, rtt)
	}

	clock.Advance(10 * time.Minute)
	resp, _, err := n.Exchange(faultCli, faultSrv, query)
	if err != nil {
		t.Fatal(err)
	}
	if resp[3]&0x0F != 0x02 || resp[2]&0x80 == 0 {
		t.Errorf("servfail window: header %x %x, want QR+SERVFAIL", resp[2], resp[3])
	}
	if resp[0] != 0xab || resp[1] != 0xcd {
		t.Errorf("servfail reply lost the query ID: % x", resp[:2])
	}

	clock.Advance(10 * time.Minute)
	resp, _, err = n.Exchange(faultCli, faultSrv, query)
	if err != nil {
		t.Fatal(err)
	}
	if resp[2]&0x02 == 0 {
		t.Errorf("truncate window: TC not set (byte2=%x)", resp[2])
	}

	clock.Advance(10 * time.Minute)
	if _, rtt, err := n.Exchange(faultCli, faultSrv, query); err != nil || rtt != 50*time.Millisecond {
		t.Errorf("latency spike: rtt=%v err=%v, want 50ms", rtt, err)
	}

	// Past all windows: normal delivery again.
	clock.Advance(10 * time.Minute)
	if _, rtt, err := n.Exchange(faultCli, faultSrv, query); err != nil || rtt != 10*time.Millisecond {
		t.Errorf("after windows: rtt=%v err=%v, want 10ms", rtt, err)
	}

	// ExchangeAt positions the fault lookup: offset back... the schedule is
	// relative to the clock, so a large offset from the last window's start
	// lands past everything too.
	if _, _, err := n.ExchangeAt(faultCli, faultSrv, query, time.Hour); err != nil {
		t.Errorf("ExchangeAt past windows: %v", err)
	}
}

// TestNetworkFaultOffset proves the per-exchange offset moves the schedule
// window: at clock time 0 an exchange with a large enough offset escapes an
// outage that is still active for offset-0 exchanges.
func TestNetworkFaultOffset(t *testing.T) {
	clock := NewVirtualClock()
	n := NewNetwork(1)
	n.Clock = clock
	n.Attach(faultSrv, HandlerFunc(func(wire []byte, from netip.Addr) []byte {
		resp := append([]byte(nil), wire...)
		resp[2] |= 0x80
		return resp
	}))
	n.Faults = NewFaultSchedule(Outage(faultSrv, 0, time.Minute))
	query := make([]byte, 12)
	if _, _, err := n.ExchangeAt(faultCli, faultSrv, query, 0); err != ErrTimeout {
		t.Errorf("offset 0 inside outage: err=%v, want timeout", err)
	}
	if _, _, err := n.ExchangeAt(faultCli, faultSrv, query, 2*time.Minute); err != nil {
		t.Errorf("offset past outage: %v", err)
	}
}
