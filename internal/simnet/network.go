package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// Handler is the server side of the message plane. It receives raw wire
// bytes and returns raw wire bytes, so every hop exercises the real codec.
// A nil response means the server drops the query.
type Handler interface {
	ServeDNS(wire []byte, from netip.Addr) []byte
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(wire []byte, from netip.Addr) []byte

// ServeDNS calls f.
func (f HandlerFunc) ServeDNS(wire []byte, from netip.Addr) []byte { return f(wire, from) }

// Exchanger is the client side: send a query to dst, get the response and
// the round-trip time. Both the in-memory Network and the real-UDP client in
// the authoritative package implement this.
type Exchanger interface {
	Exchange(src, dst netip.Addr, query []byte) (resp []byte, rtt time.Duration, err error)
}

// Exchange errors.
var (
	ErrTimeout     = errors.New("simnet: query timed out")
	ErrUnreachable = errors.New("simnet: no server at destination")
)

// DefaultTimeout is the simulated client timeout charged for lost queries.
const DefaultTimeout = 5 * time.Second

// node is one attached server.
type node struct {
	handler Handler
	// down marks the server unresponsive (used for §4.4-style experiments
	// where child authoritatives are taken offline).
	down bool
}

// Network is the in-memory message plane. Latency is decided per
// (src, dst) pair by the configured LatencyFor function; loss by LossFor.
type Network struct {
	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[netip.Addr]*node

	// LatencyFor returns the RTT model for a src→dst exchange. If nil, a
	// constant 20 ms is used.
	LatencyFor func(src, dst netip.Addr) LatencyModel
	// LossFor returns the probability in [0,1] that a query or its reply
	// is lost. If nil, no loss.
	LossFor func(src, dst netip.Addr) float64
	// Timeout is what a lost query costs the client. Zero means
	// DefaultTimeout.
	Timeout time.Duration
	// Tap, when non-nil, observes every exchange — the simulation's
	// packet capture, standing in for the paper's pcap analyses (§4.4).
	// It runs outside the network lock; keep it cheap.
	Tap func(TapEvent)

	// counters
	queries uint64
	losses  uint64
}

// TapEvent describes one observed exchange.
type TapEvent struct {
	Src, Dst netip.Addr
	Query    []byte
	Response []byte // nil on loss/timeout
	RTT      time.Duration
	Err      error
}

// NewNetwork creates a network with a deterministic RNG seeded by seed.
func NewNetwork(seed int64) *Network {
	return &Network{
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[netip.Addr]*node),
	}
}

// Attach registers handler as the server listening at addr, replacing any
// previous server there.
func (n *Network) Attach(addr netip.Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = &node{handler: h}
}

// Detach removes the server at addr.
func (n *Network) Detach(addr netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

// SetDown marks the server at addr unresponsive (true) or responsive
// (false) without detaching it; queries to a down server time out.
func (n *Network) SetDown(addr netip.Addr, down bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd := n.nodes[addr]
	if nd == nil {
		return fmt.Errorf("simnet: SetDown(%s): %w", addr, ErrUnreachable)
	}
	nd.down = down
	return nil
}

// Exchange delivers query to the server at dst and returns its response.
// The returned RTT is sampled from the link's latency model; lost or
// unanswered queries return ErrTimeout and cost the full timeout.
func (n *Network) Exchange(src, dst netip.Addr, query []byte) ([]byte, time.Duration, error) {
	resp, rtt, err := n.exchange(src, dst, query)
	if tap := n.Tap; tap != nil {
		tap(TapEvent{Src: src, Dst: dst, Query: query, Response: resp, RTT: rtt, Err: err})
	}
	return resp, rtt, err
}

func (n *Network) exchange(src, dst netip.Addr, query []byte) ([]byte, time.Duration, error) {
	n.mu.Lock()
	nd := n.nodes[dst]
	timeout := n.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	var (
		lost bool
		rtt  time.Duration
	)
	n.queries++
	if n.LossFor != nil {
		if p := n.LossFor(src, dst); p > 0 && n.rng.Float64() < p {
			lost = true
			n.losses++
		}
	}
	if !lost && nd != nil && !nd.down {
		model := LatencyModel(Constant(20 * time.Millisecond))
		if n.LatencyFor != nil {
			if m := n.LatencyFor(src, dst); m != nil {
				model = m
			}
		}
		rtt = model.Sample(n.rng)
	}
	n.mu.Unlock()

	if nd == nil {
		return nil, timeout, ErrUnreachable
	}
	if lost || nd.down {
		return nil, timeout, ErrTimeout
	}
	resp := nd.handler.ServeDNS(query, src)
	if resp == nil {
		return nil, timeout, ErrTimeout
	}
	if rtt > timeout {
		return nil, timeout, ErrTimeout
	}
	return resp, rtt, nil
}

// Stats returns the number of exchanges attempted and the number lost.
func (n *Network) Stats() (queries, losses uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.queries, n.losses
}

// Rand derives an independent deterministic RNG from the network's seed
// stream, for callers that need their own randomness.
func (n *Network) Rand() *rand.Rand {
	n.mu.Lock()
	defer n.mu.Unlock()
	return rand.New(rand.NewSource(n.rng.Int63()))
}
