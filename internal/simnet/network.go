package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// Handler is the server side of the message plane. It receives raw wire
// bytes and returns raw wire bytes, so every hop exercises the real codec.
// A nil response means the server drops the query.
type Handler interface {
	ServeDNS(wire []byte, from netip.Addr) []byte
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(wire []byte, from netip.Addr) []byte

// ServeDNS calls f.
func (f HandlerFunc) ServeDNS(wire []byte, from netip.Addr) []byte { return f(wire, from) }

// Exchanger is the client side: send a query to dst, get the response and
// the round-trip time. Both the in-memory Network and the real-UDP client in
// the authoritative package implement this.
type Exchanger interface {
	Exchange(src, dst netip.Addr, query []byte) (resp []byte, rtt time.Duration, err error)
}

// Exchange errors.
var (
	ErrTimeout     = errors.New("simnet: query timed out")
	ErrUnreachable = errors.New("simnet: no server at destination")
)

// DefaultTimeout is the simulated client timeout charged for lost queries.
const DefaultTimeout = 5 * time.Second

// node is one attached server.
type node struct {
	handler Handler
	// down marks the server unresponsive (used for §4.4-style experiments
	// where child authoritatives are taken offline).
	down atomic.Bool
}

// flowKey identifies a directed (src, dst) traffic flow.
type flowKey struct {
	src, dst netip.Addr
}

// flow holds the per-(src,dst) random state. Sharding the RNG per flow means
// concurrent exchanges on different flows never contend, and — because each
// flow's stream is seeded purely from (network seed, src, dst) — the loss
// and latency draws a flow sees do not depend on what any other flow is
// doing or on the order flows were first used. That is what keeps parallel
// experiment sweeps byte-identical to serial ones.
type flow struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// Network is the in-memory message plane. Latency is decided per
// (src, dst) pair by the configured LatencyFor function; loss by LossFor.
type Network struct {
	seed int64

	mu    sync.RWMutex // guards nodes and flows maps
	nodes map[netip.Addr]*node
	flows map[flowKey]*flow

	derive struct { // state for Rand(), isolated from flow streams
		sync.Mutex
		rng *rand.Rand
	}

	// LatencyFor returns the RTT model for a src→dst exchange. If nil, a
	// constant 20 ms is used.
	LatencyFor func(src, dst netip.Addr) LatencyModel
	// LossFor returns the probability in [0,1] that a query or its reply
	// is lost. If nil, no loss.
	LossFor func(src, dst netip.Addr) float64
	// Timeout is what a lost query costs the client. Zero means
	// DefaultTimeout.
	Timeout time.Duration
	// Clock positions exchanges in time for the fault schedule. Nil means
	// faults are evaluated at Epoch (plus any per-exchange offset).
	Clock Clock
	// Faults, when non-nil, scripts per-server/per-flow fault windows —
	// outages, loss bursts, latency spikes, SERVFAIL storms, truncation,
	// flapping — evaluated against Clock. The schedule must not be mutated
	// while exchanges run.
	Faults *FaultSchedule
	// Tap, when non-nil, observes every exchange — the simulation's
	// packet capture, standing in for the paper's pcap analyses (§4.4).
	// It runs outside the network lock; keep it cheap. The Query and
	// Response slices are only valid during the call.
	Tap func(TapEvent)

	// counters
	queries atomic.Uint64
	losses  atomic.Uint64
}

// TapEvent describes one observed exchange.
type TapEvent struct {
	Src, Dst netip.Addr
	Query    []byte
	Response []byte // nil on loss/timeout
	RTT      time.Duration
	Err      error
}

// NewNetwork creates a network with deterministic randomness derived from
// seed. Random draws are sharded per (src, dst) flow; see flow.
func NewNetwork(seed int64) *Network {
	n := &Network{
		seed:  seed,
		nodes: make(map[netip.Addr]*node),
		flows: make(map[flowKey]*flow),
	}
	n.derive.rng = rand.New(rand.NewSource(seed))
	return n
}

// flowSeed mixes the network seed with both endpoint addresses (FNV-1a over
// their 16-byte forms) into the flow's RNG seed. Depending only on
// (seed, src, dst) — never on discovery order — is load-bearing for
// determinism under concurrency.
func flowSeed(seed int64, k flowKey) int64 {
	h := uint64(14695981039346656037)
	step := func(b byte) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	for i := 0; i < 8; i++ {
		step(byte(uint64(seed) >> (8 * i)))
	}
	src, dst := k.src.As16(), k.dst.As16()
	for _, b := range src {
		step(b)
	}
	for _, b := range dst {
		step(b)
	}
	return int64(h)
}

// flowFor returns the flow state for (src, dst), creating it on first use.
func (n *Network) flowFor(src, dst netip.Addr) *flow {
	k := flowKey{src: src, dst: dst}
	n.mu.RLock()
	f := n.flows[k]
	n.mu.RUnlock()
	if f != nil {
		return f
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if f = n.flows[k]; f == nil {
		f = &flow{rng: rand.New(rand.NewSource(flowSeed(n.seed, k)))}
		n.flows[k] = f
	}
	return f
}

// Attach registers handler as the server listening at addr, replacing any
// previous server there.
func (n *Network) Attach(addr netip.Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = &node{handler: h}
}

// Detach removes the server at addr.
func (n *Network) Detach(addr netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

// SetDown marks the server at addr unresponsive (true) or responsive
// (false) without detaching it; queries to a down server time out.
func (n *Network) SetDown(addr netip.Addr, down bool) error {
	n.mu.RLock()
	nd := n.nodes[addr]
	n.mu.RUnlock()
	if nd == nil {
		return fmt.Errorf("simnet: SetDown(%s): %w", addr, ErrUnreachable)
	}
	nd.down.Store(down)
	return nil
}

// Exchange delivers query to the server at dst and returns its response.
// The returned RTT is sampled from the link's latency model; lost or
// unanswered queries return ErrTimeout and cost the full timeout.
func (n *Network) Exchange(src, dst netip.Addr, query []byte) ([]byte, time.Duration, error) {
	return n.ExchangeAt(src, dst, query, 0)
}

// OffsetExchanger is an Exchanger that can position an exchange at a
// virtual-time offset past the clock's current instant. Resolvers pass the
// latency a resolution has already accumulated (RTTs, backoffs), so within
// one resolution later attempts see later fault-schedule state — a retry
// after backoff can genuinely ride out a flap window.
type OffsetExchanger interface {
	Exchanger
	ExchangeAt(src, dst netip.Addr, query []byte, offset time.Duration) (resp []byte, rtt time.Duration, err error)
}

// ExchangeAt is Exchange with the fault schedule evaluated at
// Clock.Now()+offset. With no schedule installed the offset is irrelevant
// and ExchangeAt is identical to Exchange.
func (n *Network) ExchangeAt(src, dst netip.Addr, query []byte, offset time.Duration) ([]byte, time.Duration, error) {
	resp, rtt, err := n.exchange(src, dst, query, offset)
	if tap := n.Tap; tap != nil {
		tap(TapEvent{Src: src, Dst: dst, Query: query, Response: resp, RTT: rtt, Err: err})
	}
	return resp, rtt, err
}

// faultTime is the instant the fault schedule sees for an exchange.
func (n *Network) faultTime(offset time.Duration) time.Time {
	if n.Clock != nil {
		return n.Clock.Now().Add(offset)
	}
	return Epoch.Add(offset)
}

func (n *Network) exchange(src, dst netip.Addr, query []byte, offset time.Duration) ([]byte, time.Duration, error) {
	n.mu.RLock()
	nd := n.nodes[dst]
	n.mu.RUnlock()
	timeout := n.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	var (
		lost bool
		rtt  time.Duration
	)
	n.queries.Add(1)

	// Scripted faults compose over the link's base loss and latency: the
	// schedule is immutable and the clock read is cheap, so this adds no
	// contention to concurrent exchanges on different flows.
	var eff FaultEffects
	if n.Faults != nil {
		eff = n.Faults.EffectsAt(src, dst, n.faultTime(offset))
	}

	// Sample loss and latency from the flow's private stream. The stream is
	// consumed exactly as the single-RNG implementation did: a loss draw
	// only when loss probability is positive, a latency draw only for
	// delivered queries.
	needLoss := false
	var lossP float64
	if n.LossFor != nil {
		lossP = n.LossFor(src, dst)
	}
	if eff.LossP > 0 {
		lossP = 1 - (1-lossP)*(1-eff.LossP)
	}
	needLoss = lossP > 0
	deliverable := nd != nil && !nd.down.Load() && !eff.Down
	if needLoss || deliverable {
		f := n.flowFor(src, dst)
		f.mu.Lock()
		if needLoss && f.rng.Float64() < lossP {
			lost = true
			n.losses.Add(1)
		}
		if !lost && deliverable {
			model := LatencyModel(Constant(20 * time.Millisecond))
			if n.LatencyFor != nil {
				if m := n.LatencyFor(src, dst); m != nil {
					model = m
				}
			}
			rtt = model.Sample(f.rng)
		}
		f.mu.Unlock()
	}
	if eff.Factor > 0 {
		rtt = time.Duration(float64(rtt) * eff.Factor)
	}

	if nd == nil {
		return nil, timeout, ErrUnreachable
	}
	if lost || !deliverable {
		return nil, timeout, ErrTimeout
	}
	var resp []byte
	switch {
	case eff.ServFail:
		resp = synthReply(query, true, false)
	case eff.Truncate:
		resp = synthReply(query, false, true)
	default:
		resp = nd.handler.ServeDNS(query, src)
	}
	if resp == nil {
		return nil, timeout, ErrTimeout
	}
	if rtt > timeout {
		return nil, timeout, ErrTimeout
	}
	return resp, rtt, nil
}

// synthReply fabricates a fault reply from the query's own wire bytes: the
// header and question come back verbatim with QR set, plus SERVFAIL or an
// empty TC=1 body. Working at the byte level keeps fault injection
// independent of the codec and allocation-cheap.
func synthReply(query []byte, servfail, truncate bool) []byte {
	if len(query) < 12 {
		return nil
	}
	resp := append([]byte(nil), query...)
	resp[2] |= 0x80 // QR
	if truncate {
		resp[2] |= 0x02 // TC
		// Drop answer/authority counts (queries carry none anyway) so the
		// reply is an empty truncated shell.
		resp[6], resp[7], resp[8], resp[9] = 0, 0, 0, 0
	}
	if servfail {
		resp[3] = (resp[3] &^ 0x0F) | 0x02 // RCODE = SERVFAIL
	}
	return resp
}

// Stats returns the number of exchanges attempted and the number lost.
func (n *Network) Stats() (queries, losses uint64) {
	return n.queries.Load(), n.losses.Load()
}

// Rand derives an independent deterministic RNG from the network's seed
// stream, for callers that need their own randomness. Derivation draws from
// a dedicated stream, so it never perturbs flow sampling.
func (n *Network) Rand() *rand.Rand {
	n.derive.Lock()
	defer n.derive.Unlock()
	return rand.New(rand.NewSource(n.derive.rng.Int63()))
}
