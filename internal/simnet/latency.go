package simnet

import (
	"math"
	"math/rand"
	"time"
)

// LatencyModel produces round-trip-time samples for a link. Implementations
// must be safe for use from a single goroutine with the rand they are
// handed.
type LatencyModel interface {
	Sample(r *rand.Rand) time.Duration
}

// Constant always returns the same RTT.
type Constant time.Duration

// Sample returns the constant RTT.
func (c Constant) Sample(*rand.Rand) time.Duration { return time.Duration(c) }

// Uniform samples uniformly in [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample returns an RTT uniformly distributed in [Min, Max].
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Int63n(int64(u.Max-u.Min)))
}

// LogNormal models Internet RTTs: a log-normal body parameterized by its
// median, with an optional floor. Internet path RTT distributions are
// right-skewed with heavy tails, which is what gives the paper's Figure 10
// and 11 their long upper percentiles.
type LogNormal struct {
	// Median is the distribution median (the exp(mu) point).
	Median time.Duration
	// Sigma is the log-space standard deviation; 0.5–1.0 is typical for
	// wide-area paths.
	Sigma float64
	// Floor clamps samples from below (propagation delay can't be beaten).
	Floor time.Duration
}

// Sample draws one RTT.
func (l LogNormal) Sample(r *rand.Rand) time.Duration {
	mu := math.Log(float64(l.Median))
	v := math.Exp(mu + l.Sigma*r.NormFloat64())
	d := time.Duration(v)
	if d < l.Floor {
		d = l.Floor
	}
	return d
}

// Shifted adds a fixed Offset to samples from Base; useful to compose a
// propagation floor with a jitter body.
type Shifted struct {
	Base   LatencyModel
	Offset time.Duration
}

// Sample returns Base's sample plus Offset.
func (s Shifted) Sample(r *rand.Rand) time.Duration {
	return s.Base.Sample(r) + s.Offset
}

// CacheHitLatency is the RTT from a stub to its recursive resolver when the
// answer is served from cache. The paper's §1 contrasts "a 15 ms response"
// against "a 1 ms cache hit"; measured stub→recursive RTTs from Atlas probes
// cluster in the low single-digit milliseconds.
var CacheHitLatency = LogNormal{Median: 4 * time.Millisecond, Sigma: 1.1, Floor: 300 * time.Microsecond}
