package simnet

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock()
	if !c.Now().Equal(Epoch) {
		t.Errorf("clock should start at Epoch")
	}
	c.Advance(10 * time.Minute)
	if got := c.Elapsed(); got != 10*time.Minute {
		t.Errorf("Elapsed = %v", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Elapsed(); got != 10*time.Minute {
		t.Errorf("negative Advance must be ignored, Elapsed = %v", got)
	}
	c.Set(Epoch.Add(time.Hour))
	if got := c.Elapsed(); got != time.Hour {
		t.Errorf("Set: Elapsed = %v", got)
	}
}

func TestWallClock(t *testing.T) {
	before := time.Now()
	got := WallClock{}.Now()
	if got.Before(before.Add(-time.Second)) || got.After(before.Add(time.Second)) {
		t.Errorf("WallClock.Now way off: %v", got)
	}
}

func TestLatencyModels(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if d := (Constant(5 * time.Millisecond)).Sample(r); d != 5*time.Millisecond {
		t.Errorf("Constant = %v", d)
	}
	u := Uniform{Min: 10 * time.Millisecond, Max: 20 * time.Millisecond}
	for i := 0; i < 100; i++ {
		d := u.Sample(r)
		if d < u.Min || d > u.Max {
			t.Fatalf("Uniform sample %v out of range", d)
		}
	}
	if d := (Uniform{Min: 7, Max: 7}).Sample(r); d != 7 {
		t.Errorf("degenerate Uniform = %v", d)
	}
	s := Shifted{Base: Constant(time.Millisecond), Offset: 2 * time.Millisecond}
	if d := s.Sample(r); d != 3*time.Millisecond {
		t.Errorf("Shifted = %v", d)
	}
}

func TestLogNormalShape(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ln := LogNormal{Median: 30 * time.Millisecond, Sigma: 0.8, Floor: time.Millisecond}
	n := 20000
	below := 0
	var sum time.Duration
	for i := 0; i < n; i++ {
		d := ln.Sample(r)
		if d < ln.Floor {
			t.Fatalf("sample %v under floor", d)
		}
		if d < ln.Median {
			below++
		}
		sum += d
	}
	// Median property: about half the samples below the median.
	frac := float64(below) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction below median = %.3f, want ≈0.5", frac)
	}
	// Right skew: mean well above median.
	mean := sum / time.Duration(n)
	if mean <= ln.Median {
		t.Errorf("log-normal mean %v should exceed median %v", mean, ln.Median)
	}
}

func echoHandler(tag byte) Handler {
	return HandlerFunc(func(wire []byte, from netip.Addr) []byte {
		out := append([]byte{tag}, wire...)
		return out
	})
}

func TestNetworkExchange(t *testing.T) {
	n := NewNetwork(1)
	a := netip.MustParseAddr("192.0.2.1")
	n.Attach(a, echoHandler('x'))
	resp, rtt, err := n.Exchange(netip.MustParseAddr("10.0.0.1"), a, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "x\x01\x02" {
		t.Errorf("resp = %v", resp)
	}
	if rtt != 20*time.Millisecond {
		t.Errorf("default rtt = %v, want 20ms", rtt)
	}
}

func TestNetworkUnreachable(t *testing.T) {
	n := NewNetwork(1)
	_, rtt, err := n.Exchange(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("192.0.2.9"), nil)
	if err != ErrUnreachable {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	if rtt != DefaultTimeout {
		t.Errorf("rtt = %v, want timeout", rtt)
	}
}

func TestNetworkDownServer(t *testing.T) {
	n := NewNetwork(1)
	a := netip.MustParseAddr("192.0.2.1")
	n.Attach(a, echoHandler('x'))
	if err := n.SetDown(a, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Exchange(netip.MustParseAddr("10.0.0.1"), a, nil); err != ErrTimeout {
		t.Errorf("down server: err = %v, want ErrTimeout", err)
	}
	if err := n.SetDown(a, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Exchange(netip.MustParseAddr("10.0.0.1"), a, nil); err != nil {
		t.Errorf("revived server: err = %v", err)
	}
	if err := n.SetDown(netip.MustParseAddr("192.0.2.99"), true); err == nil {
		t.Errorf("SetDown on unknown address should error")
	}
}

func TestNetworkLoss(t *testing.T) {
	n := NewNetwork(7)
	a := netip.MustParseAddr("192.0.2.1")
	n.Attach(a, echoHandler('x'))
	n.LossFor = func(src, dst netip.Addr) float64 { return 0.5 }
	n.Timeout = 100 * time.Millisecond
	lost := 0
	total := 2000
	for i := 0; i < total; i++ {
		_, rtt, err := n.Exchange(netip.MustParseAddr("10.0.0.1"), a, nil)
		if err == ErrTimeout {
			lost++
			if rtt != 100*time.Millisecond {
				t.Fatalf("lost query rtt = %v, want configured timeout", rtt)
			}
		}
	}
	frac := float64(lost) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("loss fraction = %.3f, want ≈0.5", frac)
	}
	q, l := n.Stats()
	if q != uint64(total) || l != uint64(lost) {
		t.Errorf("Stats = %d, %d; want %d, %d", q, l, total, lost)
	}
}

func TestNetworkPerLinkLatency(t *testing.T) {
	n := NewNetwork(1)
	a := netip.MustParseAddr("192.0.2.1")
	b := netip.MustParseAddr("192.0.2.2")
	n.Attach(a, echoHandler('a'))
	n.Attach(b, echoHandler('b'))
	n.LatencyFor = func(src, dst netip.Addr) LatencyModel {
		if dst == a {
			return Constant(time.Millisecond)
		}
		return Constant(time.Second)
	}
	_, rttA, _ := n.Exchange(netip.MustParseAddr("10.0.0.1"), a, nil)
	_, rttB, _ := n.Exchange(netip.MustParseAddr("10.0.0.1"), b, nil)
	if rttA != time.Millisecond || rttB != time.Second {
		t.Errorf("per-link latency: %v, %v", rttA, rttB)
	}
}

func TestNetworkRTTAboveTimeoutIsTimeout(t *testing.T) {
	n := NewNetwork(1)
	a := netip.MustParseAddr("192.0.2.1")
	n.Attach(a, echoHandler('a'))
	n.Timeout = 10 * time.Millisecond
	n.LatencyFor = func(src, dst netip.Addr) LatencyModel { return Constant(time.Minute) }
	if _, rtt, err := n.Exchange(netip.MustParseAddr("10.0.0.1"), a, nil); err != ErrTimeout || rtt != 10*time.Millisecond {
		t.Errorf("slow link should time out: rtt=%v err=%v", rtt, err)
	}
}

func TestNetworkDetach(t *testing.T) {
	n := NewNetwork(1)
	a := netip.MustParseAddr("192.0.2.1")
	n.Attach(a, echoHandler('a'))
	n.Detach(a)
	if _, _, err := n.Exchange(netip.MustParseAddr("10.0.0.1"), a, nil); err != ErrUnreachable {
		t.Errorf("detached server: err = %v", err)
	}
}

func TestNilHandlerResponseIsTimeout(t *testing.T) {
	n := NewNetwork(1)
	a := netip.MustParseAddr("192.0.2.1")
	n.Attach(a, HandlerFunc(func([]byte, netip.Addr) []byte { return nil }))
	if _, _, err := n.Exchange(netip.MustParseAddr("10.0.0.1"), a, nil); err != ErrTimeout {
		t.Errorf("nil handler response: err = %v, want ErrTimeout", err)
	}
}

// TestQuickDeterminism: two networks with identical seeds and workloads see
// identical RTT streams — the reproducibility invariant every experiment
// depends on.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64, rounds uint8) bool {
		run := func() []time.Duration {
			n := NewNetwork(seed)
			a := netip.MustParseAddr("192.0.2.1")
			n.Attach(a, echoHandler('a'))
			n.LatencyFor = func(src, dst netip.Addr) LatencyModel {
				return LogNormal{Median: 30 * time.Millisecond, Sigma: 0.7}
			}
			var out []time.Duration
			for i := 0; i < int(rounds%32); i++ {
				_, rtt, _ := n.Exchange(netip.MustParseAddr("10.0.0.1"), a, nil)
				out = append(out, rtt)
			}
			return out
		}
		x, y := run(), run()
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNetworkTap(t *testing.T) {
	n := NewNetwork(1)
	a := netip.MustParseAddr("192.0.2.1")
	n.Attach(a, echoHandler('x'))
	var events []TapEvent
	n.Tap = func(ev TapEvent) { events = append(events, ev) }

	n.Exchange(netip.MustParseAddr("10.0.0.1"), a, []byte{1, 2})
	n.Exchange(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("192.0.2.99"), []byte{3})

	if len(events) != 2 {
		t.Fatalf("tap saw %d events", len(events))
	}
	if events[0].Dst != a || events[0].Err != nil || string(events[0].Response) != "x\x01\x02" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Err != ErrUnreachable || events[1].Response != nil {
		t.Errorf("event 1 = %+v", events[1])
	}
}
