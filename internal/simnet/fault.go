package simnet

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"
)

// FaultKind enumerates the failure modes a FaultSchedule can inject. They
// are the partial, time-varying regimes Moura et al.'s root-DDoS study and
// RFC 8767 identify as the realistic shape of authoritative failure — not
// the binary all-down window of a naive outage model.
type FaultKind uint8

const (
	// FaultOutage makes the matched servers hard-down for the window:
	// queries cost the full timeout and get no reply.
	FaultOutage FaultKind = iota + 1
	// FaultLoss adds packet loss with probability LossP for the window,
	// composed with the link's base LossFor probability.
	FaultLoss
	// FaultLatency multiplies sampled RTTs by Factor for the window.
	FaultLatency
	// FaultServFail makes the matched servers answer instantly with
	// SERVFAIL — an overloaded or broken backend rather than a dead one.
	FaultServFail
	// FaultTruncate makes the matched servers reply with TC=1 and empty
	// sections, as anycast sites under attack shed load.
	FaultTruncate
	// FaultFlap alternates the matched servers between down and up with
	// Period and Duty: down for the first Duty fraction of each period.
	FaultFlap
)

func (k FaultKind) String() string {
	switch k {
	case FaultOutage:
		return "outage"
	case FaultLoss:
		return "loss"
	case FaultLatency:
		return "latency"
	case FaultServFail:
		return "servfail"
	case FaultTruncate:
		return "truncate"
	case FaultFlap:
		return "flap"
	}
	return "none"
}

// Fault is one scripted fault window.
type Fault struct {
	Kind FaultKind
	// Server is the affected destination; the zero Addr matches every
	// server.
	Server netip.Addr
	// Client restricts the fault to queries from one source (a per-flow
	// fault); the zero Addr matches every client.
	Client netip.Addr
	// Start and End bound the window, measured from the schedule origin.
	// End <= Start means an unbounded window.
	Start, End time.Duration
	// LossP is the loss probability for FaultLoss.
	LossP float64
	// Factor is the RTT multiplier for FaultLatency.
	Factor float64
	// Period and Duty shape FaultFlap: within the window the server is
	// down while (t-Start) mod Period < Duty*Period.
	Period time.Duration
	Duty   float64
}

// matches reports whether the fault applies to the (src, dst) flow at
// schedule-relative time el.
func (f Fault) matches(src, dst netip.Addr, el time.Duration) bool {
	if el < f.Start || (f.End > f.Start && el >= f.End) {
		return false
	}
	if f.Server.IsValid() && f.Server != dst {
		return false
	}
	if f.Client.IsValid() && f.Client != src {
		return false
	}
	return true
}

// FaultEffects is the composed failure state of one flow at one instant.
type FaultEffects struct {
	// Down means the query is swallowed: full-timeout, no reply.
	Down bool
	// LossP is extra loss probability, composed with the link's base loss
	// as 1-(1-a)(1-b).
	LossP float64
	// Factor multiplies the sampled RTT; 0 means no change.
	Factor float64
	// ServFail synthesizes an instant SERVFAIL reply.
	ServFail bool
	// Truncate synthesizes an empty TC=1 reply.
	Truncate bool
}

// Any reports whether any fault is active.
func (e FaultEffects) Any() bool {
	return e.Down || e.LossP > 0 || e.Factor > 0 || e.ServFail || e.Truncate
}

// FaultSchedule is a deterministic, clock-driven script of fault windows.
// It is immutable once runs begin: EffectsAt only reads, so concurrent
// exchanges never contend, and the same (schedule, clock, seed) triple
// replays byte-identically at any concurrency.
type FaultSchedule struct {
	// Start anchors the windows in absolute time; the zero value means
	// Epoch, where every VirtualClock starts.
	Start time.Time
	// Seed offsets each flapping server's phase deterministically, so a
	// fleet of flapping servers doesn't blink in lockstep. Zero keeps all
	// phases aligned at Start.
	Seed int64

	faults []Fault
}

// NewFaultSchedule builds a schedule from fault windows.
func NewFaultSchedule(faults ...Fault) *FaultSchedule {
	s := &FaultSchedule{}
	s.Add(faults...)
	return s
}

// Add appends fault windows. Not safe to call concurrently with EffectsAt.
func (s *FaultSchedule) Add(faults ...Fault) {
	s.faults = append(s.faults, faults...)
}

// Faults returns a copy of the scripted windows, sorted by start time.
func (s *FaultSchedule) Faults() []Fault {
	out := append([]Fault(nil), s.faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len reports the number of scripted windows.
func (s *FaultSchedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.faults)
}

// EffectsAt composes every fault matching the (src, dst) flow at absolute
// time t. Loss probabilities compose as independent events; latency factors
// multiply; any matching outage or down flap phase wins over reply faults.
func (s *FaultSchedule) EffectsAt(src, dst netip.Addr, t time.Time) FaultEffects {
	var e FaultEffects
	if s == nil || len(s.faults) == 0 {
		return e
	}
	start := s.Start
	if start.IsZero() {
		start = Epoch
	}
	el := t.Sub(start)
	for _, f := range s.faults {
		if !f.matches(src, dst, el) {
			continue
		}
		switch f.Kind {
		case FaultOutage:
			e.Down = true
		case FaultLoss:
			e.LossP = 1 - (1-e.LossP)*(1-f.LossP)
		case FaultLatency:
			if f.Factor > 0 {
				if e.Factor == 0 {
					e.Factor = f.Factor
				} else {
					e.Factor *= f.Factor
				}
			}
		case FaultServFail:
			e.ServFail = true
		case FaultTruncate:
			e.Truncate = true
		case FaultFlap:
			if f.Period <= 0 {
				e.Down = true
				continue
			}
			phase := (el - f.Start + flapPhase(s.Seed, dst, f.Period)) % f.Period
			if float64(phase) < f.Duty*float64(f.Period) {
				e.Down = true
			}
		}
	}
	return e
}

// flapPhase derives a deterministic per-server phase offset in [0, period)
// from the schedule seed, so same-seed runs are byte-identical while
// distinct servers flap out of phase.
func flapPhase(seed int64, dst netip.Addr, period time.Duration) time.Duration {
	if seed == 0 {
		return 0
	}
	h := uint64(14695981039346656037)
	step := func(b byte) { h = (h ^ uint64(b)) * 1099511628211 }
	for i := 0; i < 8; i++ {
		step(byte(uint64(seed) >> (8 * i)))
	}
	for _, b := range dst.As16() {
		step(b)
	}
	return time.Duration(h % uint64(period))
}

// ParseFaultSchedule parses the compact schedule grammar used by the CLI
// flags and the chaos harness. Entries are semicolon-separated:
//
//	kind:server:start+duration[:params]
//
// where kind is outage|loss|latency|servfail|truncate|flap, server is an IP
// address or "*" for all servers, start and duration are Go durations
// ("30m+1h"; a duration of 0 means unbounded), and params depend on kind:
//
//	loss:*:30m+1h:0.5        → 50 % loss
//	latency:*:0s+2h:10       → RTTs ×10
//	flap:192.0.2.1:0s+2h:60s,0.5 → 60 s period, down half of each
//
// outage, servfail, and truncate take no params.
func ParseFaultSchedule(spec string) (*FaultSchedule, error) {
	s := NewFaultSchedule()
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		f, err := parseFault(entry)
		if err != nil {
			return nil, fmt.Errorf("simnet: fault %q: %w", entry, err)
		}
		s.Add(f)
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("simnet: empty fault schedule %q", spec)
	}
	return s, nil
}

func parseFault(entry string) (Fault, error) {
	parts := strings.Split(entry, ":")
	if len(parts) < 3 {
		return Fault{}, fmt.Errorf("want kind:server:start+dur[:params]")
	}
	var f Fault
	switch parts[0] {
	case "outage":
		f.Kind = FaultOutage
	case "loss":
		f.Kind = FaultLoss
	case "latency":
		f.Kind = FaultLatency
	case "servfail":
		f.Kind = FaultServFail
	case "truncate":
		f.Kind = FaultTruncate
	case "flap":
		f.Kind = FaultFlap
	default:
		return Fault{}, fmt.Errorf("unknown kind %q", parts[0])
	}
	if parts[1] != "*" {
		a, err := netip.ParseAddr(parts[1])
		if err != nil {
			return Fault{}, err
		}
		f.Server = a
	}
	startDur, dur, ok := strings.Cut(parts[2], "+")
	if !ok {
		return Fault{}, fmt.Errorf("window %q: want start+duration", parts[2])
	}
	start, err := time.ParseDuration(startDur)
	if err != nil {
		return Fault{}, err
	}
	d, err := time.ParseDuration(dur)
	if err != nil {
		return Fault{}, err
	}
	f.Start = start
	if d > 0 {
		f.End = start + d
	}
	param := ""
	if len(parts) > 3 {
		param = parts[3]
	}
	switch f.Kind {
	case FaultLoss:
		p, err := strconv.ParseFloat(param, 64)
		if err != nil || p < 0 || p > 1 {
			return Fault{}, fmt.Errorf("loss probability %q: want a float in [0,1]", param)
		}
		f.LossP = p
	case FaultLatency:
		x, err := strconv.ParseFloat(param, 64)
		if err != nil || x <= 0 {
			return Fault{}, fmt.Errorf("latency factor %q: want a positive float", param)
		}
		f.Factor = x
	case FaultFlap:
		period, duty, ok := strings.Cut(param, ",")
		if !ok {
			return Fault{}, fmt.Errorf("flap params %q: want period,duty", param)
		}
		f.Period, err = time.ParseDuration(period)
		if err != nil || f.Period <= 0 {
			return Fault{}, fmt.Errorf("flap period %q: want a positive duration", period)
		}
		f.Duty, err = strconv.ParseFloat(duty, 64)
		if err != nil || f.Duty < 0 || f.Duty > 1 {
			return Fault{}, fmt.Errorf("flap duty %q: want a float in [0,1]", duty)
		}
	default:
		if param != "" {
			return Fault{}, fmt.Errorf("%s takes no params", f.Kind)
		}
	}
	return f, nil
}

// Convenience constructors for the common windows.

// Outage scripts a hard outage of server (zero Addr = all) in
// [start, start+dur).
func Outage(server netip.Addr, start, dur time.Duration) Fault {
	return Fault{Kind: FaultOutage, Server: server, Start: start, End: start + dur}
}

// LossBurst scripts added loss probability p in the window.
func LossBurst(server netip.Addr, start, dur time.Duration, p float64) Fault {
	return Fault{Kind: FaultLoss, Server: server, Start: start, End: start + dur, LossP: p}
}

// LatencySpike scripts RTTs multiplied by factor in the window.
func LatencySpike(server netip.Addr, start, dur time.Duration, factor float64) Fault {
	return Fault{Kind: FaultLatency, Server: server, Start: start, End: start + dur, Factor: factor}
}

// ServFailStorm scripts instant SERVFAIL replies in the window.
func ServFailStorm(server netip.Addr, start, dur time.Duration) Fault {
	return Fault{Kind: FaultServFail, Server: server, Start: start, End: start + dur}
}

// TruncateAll scripts empty TC=1 replies in the window.
func TruncateAll(server netip.Addr, start, dur time.Duration) Fault {
	return Fault{Kind: FaultTruncate, Server: server, Start: start, End: start + dur}
}

// Flap scripts down/up flapping with the given period and down duty cycle.
func Flap(server netip.Addr, start, dur, period time.Duration, duty float64) Fault {
	return Fault{Kind: FaultFlap, Server: server, Start: start, End: start + dur, Period: period, Duty: duty}
}
