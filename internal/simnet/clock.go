// Package simnet provides the simulated substrate the measurement
// experiments run on: a virtual clock, seeded randomness, latency and loss
// models, and an in-memory network that moves wire-format DNS messages
// between clients and servers.
//
// The simulation is synchronous in virtual time: a query's network cost is
// returned to the caller as an RTT sample rather than by sleeping, and the
// experiment driver advances the clock between probe rounds. TTL arithmetic
// in caches and zones reads the same clock, so a "4-hour" experiment runs in
// milliseconds yet decays TTLs exactly as wall time would.
package simnet

import (
	"sync"
	"time"
)

// Clock abstracts time for everything in this module that decays TTLs or
// timestamps queries. Production paths use WallClock; simulations use
// VirtualClock.
type Clock interface {
	Now() time.Time
}

// WallClock is the real time.Now.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually-advanced clock. The zero value starts at a
// fixed epoch so experiments are reproducible.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is where virtual clocks start: the paper's first measurement date.
var Epoch = time.Date(2019, 2, 14, 0, 0, 0, 0, time.UTC)

// NewVirtualClock returns a clock set to Epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: Epoch}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *VirtualClock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Elapsed returns the virtual time since Epoch.
func (c *VirtualClock) Elapsed() time.Duration {
	return c.Now().Sub(Epoch)
}
