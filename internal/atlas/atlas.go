// Package atlas simulates a RIPE-Atlas-style measurement platform: a fleet
// of probes spread unevenly over world regions (the real platform skews
// European), each probing through one or more recursive resolvers. A
// (probe, resolver) pair is a vantage point (VP), the paper's unit of
// observation (§3.2).
package atlas

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/latency"
	"dnsttl/internal/population"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
)

// VP is one vantage point: a probe bound to one recursive resolver.
type VP struct {
	ID      int
	ProbeID int
	Region  latency.Region
	// Resolver is the recursive this VP queries — a full iterative
	// resolver, or a farm frontend shared with other VPs (public
	// resolver services).
	Resolver resolver.Lookuper
	// Profile names the resolver's behavioral family.
	Profile string
	// Shared marks VPs using a shared public resolver.
	Shared bool
	// Stub models the probe→resolver RTT.
	Stub simnet.LatencyModel
}

// Response is one probe measurement.
type Response struct {
	VPID, ProbeID int
	Region        latency.Region
	Profile       string
	Round         int
	Time          time.Time
	// RTT is what the probe saw: stub RTT plus the resolver's upstream
	// work (zero upstream for cache hits).
	RTT time.Duration
	// TTL is the TTL in the first answer record, the quantity behind
	// Figures 1 and 2.
	TTL uint32
	// Answer is the first answer record's RDATA in presentation form —
	// the §4 experiments watch it to detect which server content a VP
	// received.
	Answer string
	// RCode, CacheHit, Stale and FinalServer describe how the answer was
	// produced.
	RCode       dnswire.RCode
	CacheHit    bool
	Stale       bool
	FinalServer netip.Addr
	// Err is non-nil when the probe got no usable answer.
	Err error
}

// regionWeights reflects the real platform's skew (§7: "skewed towards
// Europe").
var regionWeights = []struct {
	r latency.Region
	w float64
}{
	{latency.EU, 0.55},
	{latency.NA, 0.15},
	{latency.AS, 0.12},
	{latency.AF, 0.07},
	{latency.SA, 0.06},
	{latency.OC, 0.05},
}

// RegionShares returns the platform's region skew as parallel slices of
// regions and probability shares (summing to 1), most heavily weighted
// first. The workload compiler scales per-region arrival rates by these
// shares so a planet-scale population inherits the same geography the
// simulated fleet samples from.
func RegionShares() ([]latency.Region, []float64) {
	regions := make([]latency.Region, len(regionWeights))
	shares := make([]float64, len(regionWeights))
	for i, rw := range regionWeights {
		regions[i] = rw.r
		shares[i] = rw.w
	}
	return regions, shares
}

func sampleRegion(r *rand.Rand) latency.Region {
	x := r.Float64()
	for _, rw := range regionWeights {
		if x < rw.w {
			return rw.r
		}
		x -= rw.w
	}
	return latency.OC
}

// FleetConfig sizes and shapes a fleet.
type FleetConfig struct {
	// Probes is the number of probes; VPs ≈ Probes × (1 + MultiVPFrac).
	Probes int
	// MultiVPFrac is the fraction of probes with a second resolver
	// (the paper sees ~15k VPs from ~9k probes).
	MultiVPFrac float64
	// SharedFrac is the probability that a VP whose profile is a public
	// service (google-like, opendns-like) uses the shared regional
	// instance rather than a private resolver.
	SharedFrac float64
	// FarmBackends sizes shared public-resolver farms: the frontend
	// spreads queries over this many backend recursives with independent
	// caches (the §4.4 fragmentation). 0 means 4; 1 collapses the farm
	// to a single shared cache. Farms require the builder to expose its
	// Network; otherwise shared instances are plain resolvers.
	FarmBackends int
	// Mix is the resolver population; nil means population.DefaultMix.
	Mix population.Mix
	// Seed drives all fleet randomness.
	Seed int64
}

// Fleet is a built VP fleet.
type Fleet struct {
	VPs   []*VP
	Topo  *latency.Topology
	rng   *rand.Rand
	clock simnet.Clock
}

type sharedKey struct {
	profile string
	region  latency.Region
}

// NewFleet builds the fleet: probes with regions, resolvers with profiles,
// shared public-resolver instances per (profile, region), and topology
// placements for every address.
func NewFleet(cfg FleetConfig, b *population.Builder, topo *latency.Topology) *Fleet {
	if cfg.Probes <= 0 {
		cfg.Probes = 100
	}
	mix := cfg.Mix
	if mix == nil {
		mix = population.DefaultMix()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Fleet{Topo: topo, rng: rng, clock: b.Clock}
	shared := make(map[sharedKey]resolver.Lookuper)
	vpID := 0
	resolverN := 0

	allocAddr := func(region latency.Region) netip.Addr {
		resolverN++
		addr := netip.AddrFrom4([4]byte{172, 16 + byte(resolverN>>16), byte(resolverN >> 8), byte(resolverN)})
		topo.Place(addr, region)
		return addr
	}
	newResolver := func(p population.Profile, region latency.Region) *resolver.Resolver {
		return b.Build(p, allocAddr(region), rng.Int63())
	}
	// newFarm builds a public service: a forwarder frontend spreading
	// queries over backend recursives with independent caches, linked by
	// fast intra-site hops.
	newFarm := func(p population.Profile, region latency.Region) resolver.Lookuper {
		backends := cfg.FarmBackends
		if backends <= 0 {
			backends = 4
		}
		if b.Network == nil || backends == 1 {
			return newResolver(p, region)
		}
		front := allocAddr(region)
		ups := make([]netip.Addr, backends)
		for i := range ups {
			r := newResolver(p, region)
			b.Network.Attach(r.Addr, resolver.Handler{R: r})
			ups[i] = r.Addr
			topo.SetLink(front, r.Addr, simnet.Constant(500*time.Microsecond))
		}
		fw := resolver.NewForwarder(front, ups, b.Net, b.Clock, rng.Int63())
		fw.Passthrough = true // public front doors balance, they don't cache
		return fw
	}

	for probe := 0; probe < cfg.Probes; probe++ {
		region := sampleRegion(rng)
		probeAddr := netip.AddrFrom4([4]byte{10, byte(probe >> 16), byte(probe >> 8), byte(probe)})
		topo.Place(probeAddr, region)

		nVPs := 1
		if rng.Float64() < cfg.MultiVPFrac {
			nVPs = 2
		}
		for v := 0; v < nVPs; v++ {
			p := mix.Pick(rng)
			isPublic := p.Name == "google-like" || p.Name == "opendns-like"
			var res resolver.Lookuper
			sharedVP := false
			var stub simnet.LatencyModel
			if isPublic && rng.Float64() < cfg.SharedFrac {
				k := sharedKey{p.Name, region}
				if shared[k] == nil {
					shared[k] = newFarm(p, region)
				}
				res = shared[k]
				sharedVP = true
				// Public resolvers are reached over anycast: longer stub
				// RTT than a LAN resolver, still intra-region.
				stub = simnet.LogNormal{Median: 18 * time.Millisecond, Sigma: 0.6, Floor: 2 * time.Millisecond}
			} else {
				res = newResolver(p, region)
				stub = simnet.CacheHitLatency
			}
			f.VPs = append(f.VPs, &VP{
				ID:       vpID,
				ProbeID:  probe,
				Region:   region,
				Resolver: res,
				Profile:  p.Name,
				Shared:   sharedVP,
				Stub:     stub,
			})
			vpID++
		}
	}
	return f
}

// Schedule describes one measurement campaign: what to ask, how often, and
// for how long — the paper's "query every 600 s for two hours" discipline.
type Schedule struct {
	// Name is the query name. If PerProbe is set, the literal "PROBEID" in
	// Name is replaced with the probe number, reproducing the paper's
	// uncacheable unique-name trick (§4.2, §6.2).
	Name dnswire.Name
	Type dnswire.Type
	// Interval separates rounds; the paper uses 600 s.
	Interval time.Duration
	// Rounds is the number of probe rounds.
	Rounds int
	// PerProbe substitutes the probe ID into the query name.
	PerProbe bool
	// Jitter spreads each round's probes uniformly over the interval
	// instead of firing them simultaneously — how the real platform
	// schedules, and what lets shared caches decay between clients so
	// answered TTLs take intermediate values (Figures 1 and 2).
	Jitter bool
	// OnRound, when non-nil, runs before each round with the round number;
	// experiments use it to renumber servers or change TTLs mid-campaign.
	OnRound func(round int)
}

// queryName resolves the schedule's name for a given probe.
func (s Schedule) queryName(probeID int) dnswire.Name {
	if !s.PerProbe {
		return s.Name
	}
	// Name canonicalization lowercased the token.
	name := strings.ReplaceAll(string(s.Name), "probeid", fmt.Sprintf("p%d", probeID))
	return dnswire.NewName(name)
}

// Run executes the campaign on the given virtual clock, advancing it by
// Interval between rounds, and returns every response.
func (f *Fleet) Run(clock *simnet.VirtualClock, s Schedule) []Response {
	out := make([]Response, 0, len(f.VPs)*s.Rounds)
	for round := 0; round < s.Rounds; round++ {
		if s.OnRound != nil {
			s.OnRound(round)
		}
		start := clock.Now()
		if !s.Jitter {
			for _, vp := range f.VPs {
				out = append(out, f.probeOnce(clock, vp, round, s))
			}
		} else {
			offsets := make([]time.Duration, len(f.VPs))
			order := make([]int, len(f.VPs))
			for i := range f.VPs {
				offsets[i] = time.Duration(f.rng.Int63n(int64(s.Interval)))
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return offsets[order[a]] < offsets[order[b]] })
			for _, i := range order {
				clock.Set(start.Add(offsets[i]))
				out = append(out, f.probeOnce(clock, f.VPs[i], round, s))
			}
		}
		clock.Set(start.Add(s.Interval))
	}
	return out
}

func (f *Fleet) probeOnce(clock simnet.Clock, vp *VP, round int, s Schedule) Response {
	name := s.queryName(vp.ProbeID)
	res, err := vp.Resolver.Resolve(name, s.Type)
	r := Response{
		VPID:    vp.ID,
		ProbeID: vp.ProbeID,
		Region:  vp.Region,
		Profile: vp.Profile,
		Round:   round,
		Time:    clock.Now(),
		Err:     err,
	}
	r.RTT = vp.Stub.Sample(f.rng)
	if res != nil {
		r.RTT += res.Latency
		r.TTL = res.AnswerTTL
		r.RCode = res.Msg.Header.RCode
		r.CacheHit = res.CacheHit
		r.Stale = res.Stale
		r.FinalServer = res.FinalServer
		if len(res.Msg.Answer) > 0 {
			last := res.Msg.Answer[len(res.Msg.Answer)-1]
			if last.Data != nil {
				r.Answer = last.Data.String()
			}
		}
		if err == nil && r.RCode != dnswire.RCodeNoError {
			r.Err = fmt.Errorf("atlas: rcode %s", r.RCode)
		}
	}
	return r
}

// Valid reports whether the response carried a usable answer.
func (r Response) Valid() bool {
	return r.Err == nil && r.RCode == dnswire.RCodeNoError
}
