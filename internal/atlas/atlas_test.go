package atlas

import (
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/latency"
	"dnsttl/internal/population"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// miniWorld: root + example.org, both on one simnet.
func miniWorld(t *testing.T) (*simnet.Network, *simnet.VirtualClock, *latency.Topology, *population.Builder, *authoritative.Server) {
	t.Helper()
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(11)
	topo := latency.NewTopology()
	net.LatencyFor = topo.LatencyFor

	rootAddr := netip.MustParseAddr("198.41.0.4")
	orgAddr := netip.MustParseAddr("192.0.2.10")
	topo.Place(rootAddr, latency.NA)
	topo.Place(orgAddr, latency.EU)

	root := zone.New(dnswire.Root)
	root.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "x.y.", 1, 1, 1, 1, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, "198.41.0.4"),
		dnswire.NewNS("example.org", 172800, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 172800, "192.0.2.10"),
	)
	org := zone.New(dnswire.NewName("example.org"))
	org.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "x.example.org", 1, 1, 1, 1, 60),
		dnswire.NewNS("example.org", 300, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 300, "192.0.2.10"),
		dnswire.NewA("www.example.org", 600, "192.0.2.80"),
		dnswire.NewA("*.u.example.org", 60, "192.0.2.81"),
	)
	rootSrv := authoritative.NewServer(dnswire.NewName("a.root-servers.net"), clock)
	rootSrv.AddZone(root)
	net.Attach(rootAddr, rootSrv)
	orgSrv := authoritative.NewServer(dnswire.NewName("ns1.example.org"), clock)
	orgSrv.AddZone(org)
	net.Attach(orgAddr, orgSrv)

	b := &population.Builder{Net: net, Clock: clock, RootHints: []netip.Addr{rootAddr}, LocalRootZone: root, Network: net}
	return net, clock, topo, b, orgSrv
}

func TestFleetConstruction(t *testing.T) {
	_, _, topo, b, _ := miniWorld(t)
	f := NewFleet(FleetConfig{Probes: 400, MultiVPFrac: 0.5, SharedFrac: 0.8, Seed: 1}, b, topo)
	if len(f.VPs) < 400 || len(f.VPs) > 800 {
		t.Fatalf("VPs = %d", len(f.VPs))
	}
	multi := len(f.VPs) - 400
	if multi < 120 || multi > 280 {
		t.Errorf("multi-VP probes = %d, want ≈200", multi)
	}
	regions := map[latency.Region]int{}
	profiles := map[string]int{}
	sharedCount := 0
	resolvers := map[*VP]bool{}
	_ = resolvers
	for _, vp := range f.VPs {
		regions[vp.Region]++
		profiles[vp.Profile]++
		if vp.Shared {
			sharedCount++
		}
		if vp.Resolver == nil || vp.Stub == nil {
			t.Fatalf("VP %d incomplete", vp.ID)
		}
	}
	if float64(regions[latency.EU])/float64(len(f.VPs)) < 0.4 {
		t.Errorf("EU share = %d/%d, want the Atlas European skew", regions[latency.EU], len(f.VPs))
	}
	if profiles["bind-like"] == 0 || profiles["google-like"] == 0 {
		t.Errorf("profiles = %v", profiles)
	}
	if sharedCount == 0 {
		t.Errorf("no shared-resolver VPs despite SharedFrac=0.8")
	}
}

func TestFleetDeterminism(t *testing.T) {
	build := func() []string {
		_, _, topo, b, _ := miniWorld(t)
		f := NewFleet(FleetConfig{Probes: 50, Seed: 7}, b, topo)
		var out []string
		for _, vp := range f.VPs {
			out = append(out, vp.Profile+vp.Region.String())
		}
		return out
	}
	a, bb := build(), build()
	if len(a) != len(bb) {
		t.Fatalf("fleet sizes differ")
	}
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("fleet differs at %d: %s vs %s", i, a[i], bb[i])
		}
	}
}

func TestRunCampaign(t *testing.T) {
	_, clock, topo, b, orgSrv := miniWorld(t)
	f := NewFleet(FleetConfig{Probes: 60, Seed: 3}, b, topo)
	sched := Schedule{
		Name:     dnswire.NewName("www.example.org"),
		Type:     dnswire.TypeA,
		Interval: 600 * time.Second,
		Rounds:   3,
	}
	resps := f.Run(clock, sched)
	if len(resps) != len(f.VPs)*3 {
		t.Fatalf("responses = %d, want %d", len(resps), len(f.VPs)*3)
	}
	valid := 0
	hits := 0
	for _, r := range resps {
		if r.Valid() {
			valid++
			if r.TTL == 0 || r.TTL > 600 {
				t.Fatalf("TTL = %d", r.TTL)
			}
			if r.RTT <= 0 {
				t.Fatalf("RTT = %v", r.RTT)
			}
		}
		if r.CacheHit {
			hits++
		}
	}
	if valid != len(resps) {
		t.Errorf("valid = %d of %d", valid, len(resps))
	}
	// TTL 600 = interval: rounds 1-2 may hit the cache (TTL not yet
	// expired only within the same round's timestamp)... with a 600 s TTL
	// and 600 s interval, round 2 refetches; round 1 never cached. So
	// expect zero... unless shared resolvers serve several VPs per round.
	if hits == 0 {
		t.Logf("no cache hits (fine for unshared fleet)")
	}
	// Virtual time advanced.
	if clock.Elapsed() != 3*600*time.Second {
		t.Errorf("elapsed = %v", clock.Elapsed())
	}
	if orgSrv.QueryCount() == 0 {
		t.Errorf("authoritative never queried")
	}
}

func TestPerProbeNames(t *testing.T) {
	_, clock, topo, b, _ := miniWorld(t)
	f := NewFleet(FleetConfig{Probes: 10, Seed: 3}, b, topo)
	sched := Schedule{
		Name:     dnswire.NewName("PROBEID.u.example.org"),
		Type:     dnswire.TypeA,
		Interval: time.Minute,
		Rounds:   1,
		PerProbe: true,
	}
	if got := sched.queryName(42); got != dnswire.NewName("p42.u.example.org") {
		t.Fatalf("queryName = %s", got)
	}
	resps := f.Run(clock, sched)
	for _, r := range resps {
		if !r.Valid() {
			t.Fatalf("probe %d: %v (rcode %s)", r.ProbeID, r.Err, r.RCode)
		}
	}
}

func TestOnRoundHook(t *testing.T) {
	_, clock, topo, b, _ := miniWorld(t)
	f := NewFleet(FleetConfig{Probes: 5, Seed: 3}, b, topo)
	var rounds []int
	f.Run(clock, Schedule{
		Name: dnswire.NewName("www.example.org"), Type: dnswire.TypeA,
		Interval: time.Second, Rounds: 3,
		OnRound: func(r int) { rounds = append(rounds, r) },
	})
	if len(rounds) != 3 || rounds[0] != 0 || rounds[2] != 2 {
		t.Errorf("rounds = %v", rounds)
	}
}

func TestCacheHitLatencyMuchLower(t *testing.T) {
	_, clock, topo, b, _ := miniWorld(t)
	// One probe, one resolver, long-TTL name queried twice quickly.
	f := NewFleet(FleetConfig{Probes: 1, Seed: 5, Mix: population.AllChildCentric()}, b, topo)
	sched := Schedule{Name: dnswire.NewName("www.example.org"), Type: dnswire.TypeA,
		Interval: 10 * time.Second, Rounds: 2}
	resps := f.Run(clock, sched)
	if len(resps) != 2 {
		t.Fatal("want 2 responses")
	}
	if resps[1].RTT >= resps[0].RTT {
		t.Errorf("cache hit (%v) should beat full resolution (%v)", resps[1].RTT, resps[0].RTT)
	}
	if !resps[1].CacheHit {
		t.Errorf("second response should be a cache hit")
	}
}

func TestJitterSpreadsProbes(t *testing.T) {
	_, clock, topo, b, _ := miniWorld(t)
	f := NewFleet(FleetConfig{Probes: 40, Seed: 9}, b, topo)
	resps := f.Run(clock, Schedule{
		Name: dnswire.NewName("www.example.org"), Type: dnswire.TypeA,
		Interval: 600 * time.Second, Rounds: 2, Jitter: true,
	})
	times := map[int64]bool{}
	for _, r := range resps {
		if r.Round == 0 {
			times[r.Time.Unix()] = true
			if r.Time.Before(simnet.Epoch) || !r.Time.Before(simnet.Epoch.Add(600*time.Second)) {
				t.Fatalf("round-0 probe at %v outside its interval", r.Time)
			}
		}
	}
	if len(times) < 10 {
		t.Errorf("jitter produced only %d distinct probe times", len(times))
	}
	// The clock still lands exactly on the round boundary afterwards.
	if clock.Elapsed() != 2*600*time.Second {
		t.Errorf("elapsed = %v", clock.Elapsed())
	}
}

func TestFarmSharedVPs(t *testing.T) {
	_, clock, topo, b, orgSrv := miniWorld(t)
	f := NewFleet(FleetConfig{Probes: 300, SharedFrac: 1.0, FarmBackends: 3, Seed: 12}, b, topo)
	sharedVPs := 0
	for _, vp := range f.VPs {
		if vp.Shared {
			sharedVPs++
		}
	}
	if sharedVPs == 0 {
		t.Skip("no public-profile VPs drawn at this seed")
	}
	resps := f.Run(clock, Schedule{
		Name: dnswire.NewName("www.example.org"), Type: dnswire.TypeA,
		Interval: 60 * time.Second, Rounds: 2, Jitter: true,
	})
	valid := 0
	for _, r := range resps {
		if r.Valid() {
			valid++
		}
	}
	if valid < len(resps)*9/10 {
		t.Errorf("farm fleet: %d/%d valid", valid, len(resps))
	}
	if orgSrv.QueryCount() == 0 {
		t.Errorf("no authoritative queries")
	}
}
