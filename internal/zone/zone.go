// Package zone implements the DNS zone data model: RRsets owned by names,
// delegation points with glue, the RFC 1034 §4.3.2 lookup algorithm, and a
// master-file reader/writer. Zones here are what authoritative servers serve
// and what the crawler and generator populate.
package zone

import (
	"fmt"
	"sort"
	"sync"

	"dnsttl/internal/dnswire"
)

// RRSet is the unit of DNS data: all records sharing (name, type, class).
// RFC 2181 §5.2 requires all members to share one TTL; Add enforces this by
// clamping new members to the set's existing TTL.
type RRSet struct {
	Name dnswire.Name
	Type dnswire.Type
	TTL  uint32
	RRs  []dnswire.RR
}

// Clone returns a deep-enough copy whose RR slice can be mutated freely.
func (s *RRSet) Clone() *RRSet {
	c := *s
	c.RRs = append([]dnswire.RR(nil), s.RRs...)
	return &c
}

// Change describes one committed zone mutation: the RRset for (Name, Type)
// went from Old to New. Either side may be nil (pure add, pure delete).
// Changes are what a push feed (internal/push) turns into IXFR-shaped
// deltas, so the slices are clones the receiver may retain.
type Change struct {
	Name dnswire.Name
	Type dnswire.Type
	Old  []dnswire.RR
	New  []dnswire.RR
}

// Zone is one zone of authority: an apex with an SOA, plus the names below
// it up to (and including) any delegation points.
type Zone struct {
	mu sync.RWMutex
	// watchMu serializes mutation+watcher pairs: every mutator takes it
	// before mu and releases it only after the watcher callback returns, so
	// concurrent mutations deliver their Change events in commit order. The
	// watcher itself runs outside mu and may therefore read the zone and
	// call SetSerial without deadlocking.
	watchMu sync.Mutex
	watcher func(Change)
	// Origin is the zone apex.
	Origin dnswire.Name
	// sets maps owner name → type → RRset.
	sets map[dnswire.Name]map[dnswire.Type]*RRSet
	// ancestors counts, for every name on the path from an owner up to the
	// origin, how many owner names sit at or below it — it makes empty
	// non-terminal detection (NameExists) O(label count) instead of a
	// full-zone scan.
	ancestors map[dnswire.Name]int
}

// New creates an empty zone rooted at origin.
func New(origin dnswire.Name) *Zone {
	return &Zone{
		Origin:    origin,
		sets:      make(map[dnswire.Name]map[dnswire.Type]*RRSet),
		ancestors: make(map[dnswire.Name]int),
	}
}

// SetWatcher installs fn to observe committed mutations (Add, Remove,
// Replace, SetTTL). The callback runs synchronously with the zone unlocked
// but the mutation stream serialized: events arrive in commit order, and fn
// may read the zone or call SetSerial. A nil fn detaches the watcher.
func (z *Zone) SetWatcher(fn func(Change)) {
	z.watchMu.Lock()
	defer z.watchMu.Unlock()
	z.watcher = fn
}

// notify fires the watcher for a committed change. Callers hold watchMu and
// have already released mu.
func (z *Zone) notify(ch Change) {
	if z.watcher != nil {
		z.watcher(ch)
	}
}

// SetSerial rewrites the SOA serial in place, reporting whether the zone has
// an SOA. It deliberately does not fire the watcher: the push feed calls it
// from inside its own change handler to stamp the serial it just allocated.
func (z *Zone) SetSerial(serial uint32) bool {
	z.mu.Lock()
	defer z.mu.Unlock()
	set := z.lookupSetLocked(z.Origin, dnswire.TypeSOA)
	if set == nil || len(set.RRs) == 0 {
		return false
	}
	for i := range set.RRs {
		soa, ok := set.RRs[i].Data.(dnswire.SOA)
		if !ok {
			return false
		}
		soa.Serial = serial
		set.RRs[i].Data = soa
	}
	return true
}

// Serial returns the zone's SOA serial, or 0 if the zone has no SOA.
func (z *Zone) Serial() uint32 {
	rr, ok := z.SOA()
	if !ok {
		return 0
	}
	soa, ok := rr.Data.(dnswire.SOA)
	if !ok {
		return 0
	}
	return soa.Serial
}

// indexOwnerLocked updates the ancestor index when owner gains (delta=1) or
// loses (delta=-1) its last RRset.
func (z *Zone) indexOwnerLocked(owner dnswire.Name, delta int) {
	for n := owner; ; n = n.Parent() {
		z.ancestors[n] += delta
		if z.ancestors[n] == 0 {
			delete(z.ancestors, n)
		}
		if n == z.Origin || n.IsRoot() {
			return
		}
	}
}

// Add inserts rr into the zone. The record's owner must be at or below the
// zone origin. If an RRset already exists for (name, type), the record joins
// it and its TTL is clamped to the set's TTL (RFC 2181 §5.2); duplicate
// RDATA is ignored.
func (z *Zone) Add(rr dnswire.RR) error {
	if !rr.Name.IsSubdomainOf(z.Origin) {
		return fmt.Errorf("zone %s: record %s out of zone", z.Origin, rr.Name)
	}
	z.watchMu.Lock()
	defer z.watchMu.Unlock()
	z.mu.Lock()
	old := z.snapshotLocked(rr.Name, rr.Type)
	added := z.addLocked(rr)
	var next []dnswire.RR
	if added {
		next = z.snapshotLocked(rr.Name, rr.Type)
	}
	z.mu.Unlock()
	if added {
		z.notify(Change{Name: rr.Name, Type: rr.Type, Old: old, New: next})
	}
	return nil
}

// addLocked inserts rr under z.mu, reporting whether the zone changed
// (false when rr duplicates existing RDATA).
func (z *Zone) addLocked(rr dnswire.RR) bool {
	if rr.TTL > dnswire.MaxTTL {
		rr.TTL = 0 // RFC 2181 §8
	}
	byType := z.sets[rr.Name]
	if byType == nil {
		byType = make(map[dnswire.Type]*RRSet)
		z.sets[rr.Name] = byType
		z.indexOwnerLocked(rr.Name, 1)
	}
	set := byType[rr.Type]
	if set == nil {
		set = &RRSet{Name: rr.Name, Type: rr.Type, TTL: rr.TTL}
		byType[rr.Type] = set
	}
	for _, have := range set.RRs {
		if have.Equal(rr) {
			return false
		}
	}
	rr.TTL = set.TTL
	set.RRs = append(set.RRs, rr)
	return true
}

// snapshotLocked clones the RRs of (name, t) under z.mu, or returns nil.
func (z *Zone) snapshotLocked(name dnswire.Name, t dnswire.Type) []dnswire.RR {
	set := z.lookupSetLocked(name, t)
	if set == nil {
		return nil
	}
	return append([]dnswire.RR(nil), set.RRs...)
}

// MustAdd is Add that panics; for tests and generators.
func (z *Zone) MustAdd(rrs ...dnswire.RR) {
	for _, rr := range rrs {
		if err := z.Add(rr); err != nil {
			panic(err)
		}
	}
}

// Remove deletes the RRset for (name, t). It reports whether anything was
// removed.
func (z *Zone) Remove(name dnswire.Name, t dnswire.Type) bool {
	z.watchMu.Lock()
	defer z.watchMu.Unlock()
	z.mu.Lock()
	old := z.snapshotLocked(name, t)
	removed := z.removeLocked(name, t)
	z.mu.Unlock()
	if removed {
		z.notify(Change{Name: name, Type: t, Old: old})
	}
	return removed
}

// removeLocked deletes the RRset for (name, t) under z.mu.
func (z *Zone) removeLocked(name dnswire.Name, t dnswire.Type) bool {
	byType := z.sets[name]
	if byType == nil {
		return false
	}
	if _, ok := byType[t]; !ok {
		return false
	}
	delete(byType, t)
	if len(byType) == 0 {
		delete(z.sets, name)
		z.indexOwnerLocked(name, -1)
	}
	return true
}

// Replace atomically swaps the RRset for (name, t) with the given records,
// which must all share that name and type. This is how experiments
// "renumber" a server (§4.2 of the paper).
func (z *Zone) Replace(name dnswire.Name, t dnswire.Type, rrs ...dnswire.RR) error {
	for _, rr := range rrs {
		if rr.Name != name || rr.Type != t {
			return fmt.Errorf("zone %s: Replace(%s, %s) given mismatched record %s", z.Origin, name, t, rr)
		}
		if !rr.Name.IsSubdomainOf(z.Origin) {
			return fmt.Errorf("zone %s: record %s out of zone", z.Origin, rr.Name)
		}
	}
	z.watchMu.Lock()
	defer z.watchMu.Unlock()
	z.mu.Lock()
	old := z.snapshotLocked(name, t)
	z.removeLocked(name, t)
	for _, rr := range rrs {
		z.addLocked(rr)
	}
	next := z.snapshotLocked(name, t)
	z.mu.Unlock()
	if len(old) > 0 || len(next) > 0 {
		z.notify(Change{Name: name, Type: t, Old: old, New: next})
	}
	return nil
}

// SetTTL rewrites the TTL of the RRset for (name, t). It reports whether the
// set exists. This is the zone-operator action studied in §5.3 (".uy raised
// its NS TTL from 300 s to 86400 s").
func (z *Zone) SetTTL(name dnswire.Name, t dnswire.Type, ttl uint32) bool {
	z.watchMu.Lock()
	defer z.watchMu.Unlock()
	z.mu.Lock()
	set := z.lookupSetLocked(name, t)
	if set == nil {
		z.mu.Unlock()
		return false
	}
	old := append([]dnswire.RR(nil), set.RRs...)
	changed := set.TTL != ttl
	set.TTL = ttl
	for i := range set.RRs {
		set.RRs[i].TTL = ttl
	}
	next := append([]dnswire.RR(nil), set.RRs...)
	z.mu.Unlock()
	if changed {
		z.notify(Change{Name: name, Type: t, Old: old, New: next})
	}
	return true
}

func (z *Zone) lookupSetLocked(name dnswire.Name, t dnswire.Type) *RRSet {
	byType := z.sets[name]
	if byType == nil {
		return nil
	}
	return byType[t]
}

// Get returns a copy of the RRset for (name, t), or nil.
func (z *Zone) Get(name dnswire.Name, t dnswire.Type) *RRSet {
	z.mu.RLock()
	defer z.mu.RUnlock()
	set := z.lookupSetLocked(name, t)
	if set == nil {
		return nil
	}
	return set.Clone()
}

// SOA returns the zone's SOA record, or false if the zone has none.
func (z *Zone) SOA() (dnswire.RR, bool) {
	set := z.Get(z.Origin, dnswire.TypeSOA)
	if set == nil || len(set.RRs) == 0 {
		return dnswire.RR{}, false
	}
	return set.RRs[0], true
}

// NameExists reports whether any RRset is owned by name, or whether name is
// an empty non-terminal (an ancestor of an existing name). Both exist for
// NXDOMAIN purposes (RFC 8499).
func (z *Zone) NameExists(name dnswire.Name) bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.ancestors[name] > 0
}

// Names returns all owner names in the zone, sorted.
func (z *Zone) Names() []dnswire.Name {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]dnswire.Name, 0, len(z.sets))
	for n := range z.sets {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllSets returns copies of every RRset in the zone, in sorted owner order.
func (z *Zone) AllSets() []*RRSet {
	names := z.Names()
	z.mu.RLock()
	defer z.mu.RUnlock()
	var out []*RRSet
	for _, n := range names {
		byType := z.sets[n]
		types := make([]dnswire.Type, 0, len(byType))
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			out = append(out, byType[t].Clone())
		}
	}
	return out
}

// delegationFor walks from name up toward the origin looking for an NS set
// owned strictly below the origin — a zone cut.
func (z *Zone) delegationFor(name dnswire.Name) *RRSet {
	z.mu.RLock()
	defer z.mu.RUnlock()
	for n := name; n != z.Origin && !n.IsRoot(); n = n.Parent() {
		if set := z.lookupSetLocked(n, dnswire.TypeNS); set != nil {
			return set.Clone()
		}
	}
	return nil
}

// IsDelegated reports whether name falls under a zone cut in z.
func (z *Zone) IsDelegated(name dnswire.Name) bool {
	return z.delegationFor(name) != nil
}

// RecordCount returns the total number of records in the zone.
func (z *Zone) RecordCount() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, byType := range z.sets {
		for _, set := range byType {
			n += len(set.RRs)
		}
	}
	return n
}
