package zone

import (
	"sync"
	"testing"

	"dnsttl/internal/dnswire"
)

func watchedZone(t *testing.T) (*Zone, *[]Change) {
	t.Helper()
	z := New(dnswire.NewName("example.org"))
	z.MustAdd(dnswire.NewSOA("example.org", 3600, "ns1.example.org", "admin.example.org", 1, 7200, 3600, 1209600, 300))
	var events []Change
	z.SetWatcher(func(ch Change) { events = append(events, ch) })
	return z, &events
}

// TestWatcherEvents pins the Change stream each mutator produces.
func TestWatcherEvents(t *testing.T) {
	z, events := watchedZone(t)
	www := dnswire.NewName("www.example.org")

	z.MustAdd(dnswire.NewA("www.example.org", 300, "192.0.2.1"))
	if len(*events) != 1 {
		t.Fatalf("after Add: %d events, want 1", len(*events))
	}
	ev := (*events)[0]
	if ev.Name != www || ev.Type != dnswire.TypeA || len(ev.Old) != 0 || len(ev.New) != 1 {
		t.Fatalf("Add event = %+v", ev)
	}

	// Duplicate RDATA changes nothing and must not fire.
	z.MustAdd(dnswire.NewA("www.example.org", 300, "192.0.2.1"))
	if len(*events) != 1 {
		t.Fatalf("duplicate Add fired an event")
	}

	if err := z.Replace(www, dnswire.TypeA, dnswire.NewA("www.example.org", 300, "192.0.2.2")); err != nil {
		t.Fatal(err)
	}
	if len(*events) != 2 {
		t.Fatalf("after Replace: %d events, want 2 (Replace must be one atomic event)", len(*events))
	}
	ev = (*events)[1]
	if len(ev.Old) != 1 || len(ev.New) != 1 {
		t.Fatalf("Replace event = %+v", ev)
	}
	if ev.Old[0].Data.(dnswire.A).Addr.String() != "192.0.2.1" ||
		ev.New[0].Data.(dnswire.A).Addr.String() != "192.0.2.2" {
		t.Fatalf("Replace old/new mismatch: %+v", ev)
	}

	if !z.SetTTL(www, dnswire.TypeA, 60) {
		t.Fatal("SetTTL missed the set")
	}
	if len(*events) != 3 {
		t.Fatalf("after SetTTL: %d events, want 3", len(*events))
	}
	if (*events)[2].New[0].TTL != 60 {
		t.Fatalf("SetTTL event TTL = %d", (*events)[2].New[0].TTL)
	}
	// Same TTL again: no change, no event.
	z.SetTTL(www, dnswire.TypeA, 60)
	if len(*events) != 3 {
		t.Fatalf("no-op SetTTL fired an event")
	}

	if !z.Remove(www, dnswire.TypeA) {
		t.Fatal("Remove missed the set")
	}
	if len(*events) != 4 {
		t.Fatalf("after Remove: %d events, want 4", len(*events))
	}
	ev = (*events)[3]
	if len(ev.Old) != 1 || len(ev.New) != 0 {
		t.Fatalf("Remove event = %+v", ev)
	}
	if z.Remove(www, dnswire.TypeA) {
		t.Fatal("second Remove reported true")
	}
	if len(*events) != 4 {
		t.Fatalf("no-op Remove fired an event")
	}
}

// TestSetSerial pins that SetSerial rewrites the SOA without firing the
// watcher — it is the feed's own stamp, not a zone change.
func TestSetSerial(t *testing.T) {
	z, events := watchedZone(t)
	if z.Serial() != 1 {
		t.Fatalf("initial serial = %d", z.Serial())
	}
	if !z.SetSerial(42) {
		t.Fatal("SetSerial failed")
	}
	if z.Serial() != 42 {
		t.Fatalf("serial after SetSerial = %d", z.Serial())
	}
	if len(*events) != 0 {
		t.Fatalf("SetSerial fired %d watcher events", len(*events))
	}
	empty := New(dnswire.NewName("empty.org"))
	if empty.SetSerial(1) {
		t.Fatal("SetSerial on a zone without SOA reported true")
	}
}

// TestWatcherReadsZone pins the locking contract: the watcher may read the
// zone and call SetSerial from inside the callback.
func TestWatcherReadsZone(t *testing.T) {
	z := New(dnswire.NewName("example.org"))
	z.MustAdd(dnswire.NewSOA("example.org", 3600, "ns1.example.org", "admin.example.org", 7, 7200, 3600, 1209600, 300))
	z.SetWatcher(func(ch Change) {
		if _, ok := z.SOA(); !ok {
			t.Error("watcher could not read the zone")
		}
		z.SetSerial(z.Serial() + 1)
	})
	z.MustAdd(dnswire.NewA("www.example.org", 300, "192.0.2.1"))
	if z.Serial() != 8 {
		t.Fatalf("serial after watched Add = %d, want 8", z.Serial())
	}
}

// TestWatcherOrdering pins that concurrent mutations deliver their events
// serialized and in commit order (watchMu), so a feed's history can never
// interleave two mutations.
func TestWatcherOrdering(t *testing.T) {
	z := New(dnswire.NewName("example.org"))
	z.MustAdd(dnswire.NewSOA("example.org", 3600, "ns1.example.org", "admin.example.org", 1, 7200, 3600, 1209600, 300))
	inWatcher := false
	count := 0
	z.SetWatcher(func(ch Change) {
		if inWatcher {
			t.Error("watcher reentered concurrently")
		}
		inWatcher = true
		count++
		inWatcher = false
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ttl := uint32(60 + (g*50+i)%600)
				z.SetTTL(dnswire.NewName("example.org"), dnswire.TypeSOA, ttl)
			}
		}(g)
	}
	wg.Wait()
	if count == 0 {
		t.Fatal("no watcher events delivered")
	}
}
