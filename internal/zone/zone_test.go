package zone

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"dnsttl/internal/dnswire"
)

func newTestZone(t *testing.T) *Zone {
	t.Helper()
	z := New(dnswire.NewName("example.org"))
	z.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "admin.example.org", 1, 7200, 3600, 1209600, 300),
		dnswire.NewNS("example.org", 172800, "ns1.example.org"),
		dnswire.NewNS("example.org", 172800, "ns2.example.org"),
		dnswire.NewA("ns1.example.org", 86400, "192.0.2.1"),
		dnswire.NewA("ns2.example.org", 86400, "192.0.2.2"),
		dnswire.NewA("www.example.org", 300, "192.0.2.80"),
		dnswire.NewAAAA("www.example.org", 300, "2001:db8::80"),
		dnswire.NewCNAME("mail.example.org", 600, "www.example.org"),
		dnswire.NewMX("example.org", 3600, 10, "mx.example.org"),
		// Delegation with in-bailiwick glue.
		dnswire.NewNS("sub.example.org", 3600, "ns1.sub.example.org"),
		dnswire.NewA("ns1.sub.example.org", 7200, "192.0.2.53"),
		// Wildcard.
		dnswire.NewA("*.wild.example.org", 60, "192.0.2.99"),
		// Empty non-terminal: only a grandchild exists under "ent".
		dnswire.NewA("deep.ent.example.org", 60, "192.0.2.100"),
	)
	return z
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := New(dnswire.NewName("example.org"))
	if err := z.Add(dnswire.NewA("example.com", 60, "192.0.2.1")); err == nil {
		t.Fatal("out-of-zone record must be rejected")
	}
}

func TestAddClampsTTLToRRSet(t *testing.T) {
	z := New(dnswire.NewName("example.org"))
	z.MustAdd(dnswire.NewA("x.example.org", 100, "192.0.2.1"))
	z.MustAdd(dnswire.NewA("x.example.org", 999, "192.0.2.2"))
	set := z.Get(dnswire.NewName("x.example.org"), dnswire.TypeA)
	if set.TTL != 100 {
		t.Errorf("set TTL = %d, want 100", set.TTL)
	}
	for _, rr := range set.RRs {
		if rr.TTL != 100 {
			t.Errorf("member TTL = %d, want 100 (RFC 2181 §5.2)", rr.TTL)
		}
	}
}

func TestAddDeduplicates(t *testing.T) {
	z := New(dnswire.NewName("example.org"))
	z.MustAdd(dnswire.NewA("x.example.org", 100, "192.0.2.1"))
	z.MustAdd(dnswire.NewA("x.example.org", 100, "192.0.2.1"))
	set := z.Get(dnswire.NewName("x.example.org"), dnswire.TypeA)
	if len(set.RRs) != 1 {
		t.Errorf("duplicate RDATA should be ignored, got %d records", len(set.RRs))
	}
}

func TestAddZeroesOversizeTTL(t *testing.T) {
	z := New(dnswire.NewName("example.org"))
	rr := dnswire.NewA("x.example.org", 0, "192.0.2.1")
	rr.TTL = 1 << 31 // exceeds RFC 2181 §8 limit
	z.MustAdd(rr)
	if set := z.Get(dnswire.NewName("x.example.org"), dnswire.TypeA); set.TTL != 0 {
		t.Errorf("TTL > 2^31-1 must be treated as 0, got %d", set.TTL)
	}
}

func TestLookupAnswer(t *testing.T) {
	z := newTestZone(t)
	res := z.Lookup(dnswire.NewName("www.example.org"), dnswire.TypeA)
	if res.Kind != Answer {
		t.Fatalf("kind = %s, want answer", res.Kind)
	}
	if len(res.Answer.RRs) != 1 || res.Answer.TTL != 300 {
		t.Errorf("answer = %+v", res.Answer)
	}
}

func TestLookupNoData(t *testing.T) {
	z := newTestZone(t)
	res := z.Lookup(dnswire.NewName("www.example.org"), dnswire.TypeMX)
	if res.Kind != NoData {
		t.Fatalf("kind = %s, want nodata", res.Kind)
	}
	if res.Authority == nil || res.Authority.Type != dnswire.TypeSOA {
		t.Errorf("negative answer must carry SOA, got %+v", res.Authority)
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := newTestZone(t)
	res := z.Lookup(dnswire.NewName("nope.example.org"), dnswire.TypeA)
	if res.Kind != NXDomain {
		t.Fatalf("kind = %s, want nxdomain", res.Kind)
	}
	if res.Authority == nil || res.Authority.Type != dnswire.TypeSOA {
		t.Errorf("NXDOMAIN must carry SOA")
	}
}

func TestLookupEmptyNonTerminal(t *testing.T) {
	z := newTestZone(t)
	res := z.Lookup(dnswire.NewName("ent.example.org"), dnswire.TypeA)
	if res.Kind != NoData {
		t.Fatalf("empty non-terminal: kind = %s, want nodata", res.Kind)
	}
}

func TestLookupCNAME(t *testing.T) {
	z := newTestZone(t)
	res := z.Lookup(dnswire.NewName("mail.example.org"), dnswire.TypeA)
	if res.Kind != CNAMEAnswer {
		t.Fatalf("kind = %s, want cname", res.Kind)
	}
	if res.Answer.RRs[0].Data.(dnswire.CNAME).Target != dnswire.NewName("www.example.org") {
		t.Errorf("cname target wrong: %+v", res.Answer.RRs[0])
	}
	// Query for the CNAME type itself returns it as a plain answer.
	res = z.Lookup(dnswire.NewName("mail.example.org"), dnswire.TypeCNAME)
	if res.Kind != Answer {
		t.Errorf("CNAME-type query: kind = %s, want answer", res.Kind)
	}
}

func TestLookupDelegationWithGlue(t *testing.T) {
	z := newTestZone(t)
	res := z.Lookup(dnswire.NewName("host.sub.example.org"), dnswire.TypeA)
	if res.Kind != Delegation {
		t.Fatalf("kind = %s, want delegation", res.Kind)
	}
	if res.Authority.Name != dnswire.NewName("sub.example.org") || res.Authority.Type != dnswire.TypeNS {
		t.Errorf("authority = %+v", res.Authority)
	}
	if len(res.Glue) != 1 || res.Glue[0].Name != dnswire.NewName("ns1.sub.example.org") {
		t.Errorf("glue = %+v", res.Glue)
	}
	// A query at the cut itself is also a referral.
	res = z.Lookup(dnswire.NewName("sub.example.org"), dnswire.TypeNS)
	if res.Kind != Delegation {
		t.Errorf("query at cut: kind = %s, want delegation", res.Kind)
	}
}

func TestLookupWildcard(t *testing.T) {
	z := newTestZone(t)
	res := z.Lookup(dnswire.NewName("anything.wild.example.org"), dnswire.TypeA)
	if res.Kind != Answer {
		t.Fatalf("kind = %s, want answer via wildcard", res.Kind)
	}
	if res.Answer.Name != dnswire.NewName("anything.wild.example.org") {
		t.Errorf("wildcard answer must be synthesized at the query name, got %s", res.Answer.Name)
	}
	if res.Answer.RRs[0].Data.(dnswire.A).Addr.String() != "192.0.2.99" {
		t.Errorf("wildcard RDATA wrong")
	}
}

func TestLookupNotInZone(t *testing.T) {
	z := newTestZone(t)
	if res := z.Lookup(dnswire.NewName("example.com"), dnswire.TypeA); res.Kind != NotInZone {
		t.Errorf("kind = %s, want notinzone", res.Kind)
	}
}

func TestReplaceRenumbers(t *testing.T) {
	z := newTestZone(t)
	name := dnswire.NewName("www.example.org")
	err := z.Replace(name, dnswire.TypeA, dnswire.NewA("www.example.org", 300, "198.51.100.1"))
	if err != nil {
		t.Fatal(err)
	}
	set := z.Get(name, dnswire.TypeA)
	if len(set.RRs) != 1 || set.RRs[0].Data.(dnswire.A).Addr.String() != "198.51.100.1" {
		t.Errorf("renumber failed: %+v", set)
	}
	// Mismatched record rejected.
	if err := z.Replace(name, dnswire.TypeA, dnswire.NewA("other.example.org", 1, "192.0.2.9")); err == nil {
		t.Errorf("Replace must reject mismatched names")
	}
}

func TestSetTTL(t *testing.T) {
	z := newTestZone(t)
	if !z.SetTTL(dnswire.NewName("example.org"), dnswire.TypeNS, 86400) {
		t.Fatal("SetTTL on existing set returned false")
	}
	set := z.Get(dnswire.NewName("example.org"), dnswire.TypeNS)
	if set.TTL != 86400 || set.RRs[0].TTL != 86400 {
		t.Errorf("SetTTL did not propagate: %+v", set)
	}
	if z.SetTTL(dnswire.NewName("missing.example.org"), dnswire.TypeA, 1) {
		t.Errorf("SetTTL on missing set should be false")
	}
}

func TestRemove(t *testing.T) {
	z := newTestZone(t)
	if !z.Remove(dnswire.NewName("www.example.org"), dnswire.TypeA) {
		t.Fatal("Remove returned false")
	}
	if z.Get(dnswire.NewName("www.example.org"), dnswire.TypeA) != nil {
		t.Errorf("record still present after Remove")
	}
	// AAAA remains.
	if z.Get(dnswire.NewName("www.example.org"), dnswire.TypeAAAA) == nil {
		t.Errorf("Remove deleted too much")
	}
	if z.Remove(dnswire.NewName("www.example.org"), dnswire.TypeA) {
		t.Errorf("second Remove should be false")
	}
}

func TestSOAAndCounts(t *testing.T) {
	z := newTestZone(t)
	soa, ok := z.SOA()
	if !ok || soa.Data.(dnswire.SOA).Minimum != 300 {
		t.Errorf("SOA: %v %v", soa, ok)
	}
	if n := z.RecordCount(); n != 13 {
		t.Errorf("RecordCount = %d, want 13", n)
	}
	names := z.Names()
	if len(names) == 0 || names[0] > names[len(names)-1] {
		t.Errorf("Names not sorted: %v", names)
	}
	empty := New(dnswire.NewName("x.org"))
	if _, ok := empty.SOA(); ok {
		t.Errorf("empty zone should have no SOA")
	}
}

func TestClassifyBailiwick(t *testing.T) {
	dom := dnswire.NewName("example.org")
	n := func(s string) dnswire.Name { return dnswire.NewName(s) }
	cases := []struct {
		hosts []dnswire.Name
		want  BailiwickClass
	}{
		{[]dnswire.Name{n("ns1.example.org"), n("ns2.example.org")}, BailiwickInOnly},
		{[]dnswire.Name{n("ns1.dns-host.com"), n("ns2.dns-host.com")}, BailiwickOutOnly},
		{[]dnswire.Name{n("ns1.example.org"), n("ns2.dns-host.com")}, BailiwickMixed},
		{nil, BailiwickNone},
	}
	for _, c := range cases {
		if got := ClassifyBailiwick(dom, c.hosts); got != c.want {
			t.Errorf("ClassifyBailiwick(%v) = %s, want %s", c.hosts, got, c.want)
		}
	}
	if !InBailiwick(n("a.b.example.org"), dom) || InBailiwick(n("a.example.com"), dom) {
		t.Errorf("InBailiwick predicate wrong")
	}
}

func TestNSHosts(t *testing.T) {
	z := newTestZone(t)
	hosts := NSHosts(z.Get(dnswire.NewName("example.org"), dnswire.TypeNS))
	if len(hosts) != 2 {
		t.Fatalf("NSHosts = %v", hosts)
	}
	if NSHosts(nil) != nil {
		t.Errorf("NSHosts(nil) should be nil")
	}
}

// TestQuickLookupTotal: Lookup must classify every possible name somewhere
// under the origin without panicking, and NXDomain implies NameExists=false.
func TestQuickLookupTotal(t *testing.T) {
	z := newTestZone(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		labels := []string{"www", "sub", "ns1", "wild", "x", "ent", "deep", "*"}
		name := dnswire.Name("example.org.")
		for i := 0; i < r.Intn(4); i++ {
			name = name.Child(labels[r.Intn(len(labels))])
		}
		res := z.Lookup(name, dnswire.TypeA)
		if res.Kind == NXDomain && z.NameExists(name) {
			t.Logf("NXDomain for existing name %s", name)
			return false
		}
		if res.Kind == Answer && (res.Answer == nil || len(res.Answer.RRs) == 0) {
			t.Logf("Answer with no records for %s", name)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIsDelegatedAndStrings(t *testing.T) {
	z := newTestZone(t)
	if !z.IsDelegated(dnswire.NewName("host.sub.example.org")) {
		t.Errorf("name under cut should be delegated")
	}
	if z.IsDelegated(dnswire.NewName("www.example.org")) {
		t.Errorf("in-zone name is not delegated")
	}
	for k, want := range map[AnswerKind]string{
		Answer: "answer", NoData: "nodata", NXDomain: "nxdomain",
		Delegation: "delegation", CNAMEAnswer: "cname", NotInZone: "notinzone",
		AnswerKind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	for b, want := range map[BailiwickClass]string{
		BailiwickInOnly: "in-only", BailiwickOutOnly: "out-only",
		BailiwickMixed: "mixed", BailiwickNone: "none", BailiwickClass(9): "unknown",
	} {
		if b.String() != want {
			t.Errorf("%d.String() = %q", b, b.String())
		}
	}
}

func TestMustAddPanics(t *testing.T) {
	z := New(dnswire.NewName("example.org"))
	defer func() {
		if recover() == nil {
			t.Errorf("MustAdd out-of-zone should panic")
		}
	}()
	z.MustAdd(dnswire.NewA("example.com", 1, "192.0.2.1"))
}

// TestQuickAncestorIndex: NameExists (backed by the incremental ancestor
// index) always agrees with a brute-force scan, across random Add/Remove
// sequences.
func TestQuickAncestorIndex(t *testing.T) {
	labels := []string{"a", "b", "c"}
	f := func(ops []uint16) bool {
		z := New(dnswire.NewName("example.org"))
		for _, op := range ops {
			name := dnswire.Name("example.org.")
			for d := 0; d < int(op%3)+1; d++ {
				name = name.Child(labels[int(op>>uint(2*d))%len(labels)])
			}
			if op&0x8000 == 0 {
				z.MustAdd(dnswire.RR{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
					TTL: 60, Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}})
			} else {
				z.Remove(name, dnswire.TypeA)
			}
		}
		// Brute force: a name exists iff some owner is at or below it.
		owners := z.Names()
		check := func(name dnswire.Name) bool {
			for _, o := range owners {
				if o.IsSubdomainOf(name) {
					return true
				}
			}
			return false
		}
		for _, l1 := range labels {
			for _, l2 := range labels {
				n1 := dnswire.NewName("example.org").Child(l1)
				n2 := n1.Child(l2)
				for _, n := range []dnswire.Name{n1, n2, n2.Child(l1)} {
					if z.NameExists(n) != check(n) {
						t.Logf("NameExists(%s) = %v, brute force %v (owners %v)",
							n, z.NameExists(n), check(n), owners)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
