package zone

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dnsttl/internal/dnswire"
)

// Parse reads a zone in a practical subset of RFC 1035 master-file syntax:
// one record per line, $ORIGIN and $TTL directives, "@" for the origin,
// relative names, comments with ";", and the record types this module
// models. Parentheses-continued records are joined onto one line first.
func Parse(r io.Reader, origin dnswire.Name) (*Zone, error) {
	z := New(origin)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		curOrigin  = origin
		defaultTTL = uint32(3600)
		lineNo     = 0
		pending    strings.Builder
		openParens = 0
	)
	process := func(line string) error {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return nil
		}
		switch strings.ToUpper(fields[0]) {
		case "$ORIGIN":
			if len(fields) < 2 {
				return fmt.Errorf("$ORIGIN needs an argument")
			}
			curOrigin = dnswire.NewName(fields[1])
			return nil
		case "$TTL":
			if len(fields) < 2 {
				return fmt.Errorf("$TTL needs an argument")
			}
			ttl, err := parseTTL(fields[1])
			if err != nil {
				return err
			}
			defaultTTL = ttl
			return nil
		}
		rr, err := parseRecord(fields, curOrigin, defaultTTL)
		if err != nil {
			return err
		}
		return z.Add(rr)
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 && !inQuotes(line, i) {
			line = line[:i]
		}
		// Fold multi-line records.
		opens := strings.Count(line, "(")
		closes := strings.Count(line, ")")
		if openParens > 0 || opens > closes {
			pending.WriteString(" " + line)
			openParens += opens - closes
			if openParens > 0 {
				continue
			}
			line = pending.String()
			pending.Reset()
		}
		line = strings.NewReplacer("(", " ", ")", " ").Replace(line)
		if err := process(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if openParens > 0 {
		return nil, fmt.Errorf("unbalanced parentheses at end of file")
	}
	return z, nil
}

func inQuotes(line string, pos int) bool {
	quotes := 0
	for i := 0; i < pos; i++ {
		if line[i] == '"' {
			quotes++
		}
	}
	return quotes%2 == 1
}

// parseRecord parses: name [ttl] [class] type rdata...
func parseRecord(fields []string, origin dnswire.Name, defaultTTL uint32) (dnswire.RR, error) {
	if len(fields) < 3 {
		return dnswire.RR{}, fmt.Errorf("record needs at least name, type and rdata: %v", fields)
	}
	name := absName(fields[0], origin)
	rest := fields[1:]

	ttl := defaultTTL
	if v, err := parseTTL(rest[0]); err == nil {
		ttl = v
		rest = rest[1:]
	}
	if len(rest) > 0 && strings.EqualFold(rest[0], "IN") {
		rest = rest[1:]
	}
	// TTL may also follow the class.
	if len(rest) > 0 {
		if v, err := parseTTL(rest[0]); err == nil {
			ttl = v
			rest = rest[1:]
		}
	}
	if len(rest) == 0 {
		return dnswire.RR{}, fmt.Errorf("missing RR type")
	}
	t, err := dnswire.ParseType(strings.ToUpper(rest[0]))
	if err != nil {
		return dnswire.RR{}, err
	}
	rdata := rest[1:]
	rr := dnswire.RR{Name: name, Type: t, Class: dnswire.ClassIN, TTL: ttl}
	switch t {
	case dnswire.TypeA:
		if len(rdata) != 1 {
			return rr, fmt.Errorf("A needs 1 field")
		}
		return dnswire.NewA(string(name), ttl, rdata[0]), nil
	case dnswire.TypeAAAA:
		if len(rdata) != 1 {
			return rr, fmt.Errorf("AAAA needs 1 field")
		}
		return dnswire.NewAAAA(string(name), ttl, rdata[0]), nil
	case dnswire.TypeNS:
		if len(rdata) != 1 {
			return rr, fmt.Errorf("NS needs 1 field")
		}
		rr.Data = dnswire.NS{Host: absName(rdata[0], origin)}
	case dnswire.TypeCNAME:
		if len(rdata) != 1 {
			return rr, fmt.Errorf("CNAME needs 1 field")
		}
		rr.Data = dnswire.CNAME{Target: absName(rdata[0], origin)}
	case dnswire.TypePTR:
		if len(rdata) != 1 {
			return rr, fmt.Errorf("PTR needs 1 field")
		}
		rr.Data = dnswire.PTR{Target: absName(rdata[0], origin)}
	case dnswire.TypeMX:
		if len(rdata) != 2 {
			return rr, fmt.Errorf("MX needs 2 fields")
		}
		pref, err := strconv.ParseUint(rdata[0], 10, 16)
		if err != nil {
			return rr, fmt.Errorf("MX preference: %w", err)
		}
		rr.Data = dnswire.MX{Preference: uint16(pref), Host: absName(rdata[1], origin)}
	case dnswire.TypeTXT:
		var txt dnswire.TXT
		for _, f := range rdata {
			txt.Strings = append(txt.Strings, strings.Trim(f, `"`))
		}
		rr.Data = txt
	case dnswire.TypeSOA:
		if len(rdata) != 7 {
			return rr, fmt.Errorf("SOA needs 7 fields, got %d", len(rdata))
		}
		var nums [5]uint32
		for i := 0; i < 5; i++ {
			v, err := parseTTL(rdata[2+i])
			if err != nil {
				return rr, fmt.Errorf("SOA field %d: %w", 2+i, err)
			}
			nums[i] = v
		}
		rr.Data = dnswire.SOA{
			MName: absName(rdata[0], origin), RName: absName(rdata[1], origin),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4],
		}
	case dnswire.TypeDNSKEY:
		if len(rdata) < 4 {
			return rr, fmt.Errorf("DNSKEY needs 4 fields")
		}
		flags, err := strconv.ParseUint(rdata[0], 10, 16)
		if err != nil {
			return rr, err
		}
		proto, err := strconv.ParseUint(rdata[1], 10, 8)
		if err != nil {
			return rr, err
		}
		alg, err := strconv.ParseUint(rdata[2], 10, 8)
		if err != nil {
			return rr, err
		}
		rr.Data = dnswire.DNSKEY{
			Flags: uint16(flags), Protocol: uint8(proto), Algorithm: uint8(alg),
			PublicKey: []byte(strings.Join(rdata[3:], "")),
		}
	default:
		return rr, fmt.Errorf("unsupported type %s in master file", t)
	}
	return rr, nil
}

func absName(s string, origin dnswire.Name) dnswire.Name {
	if s == "@" {
		return origin
	}
	if strings.HasSuffix(s, ".") {
		return dnswire.NewName(s)
	}
	if origin.IsRoot() {
		return dnswire.NewName(s)
	}
	return dnswire.NewName(s + "." + string(origin))
}

// parseTTL accepts plain seconds or BIND-style unit suffixes (30m, 2h, 1d, 1w).
func parseTTL(s string) (uint32, error) {
	if s == "" {
		return 0, fmt.Errorf("empty TTL")
	}
	mult := uint64(1)
	last := s[len(s)-1]
	switch last {
	case 's', 'S':
		s = s[:len(s)-1]
	case 'm', 'M':
		mult, s = 60, s[:len(s)-1]
	case 'h', 'H':
		mult, s = 3600, s[:len(s)-1]
	case 'd', 'D':
		mult, s = 86400, s[:len(s)-1]
	case 'w', 'W':
		mult, s = 604800, s[:len(s)-1]
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad TTL %q", s)
	}
	v *= mult
	if v > dnswire.MaxTTL {
		return 0, fmt.Errorf("TTL %d exceeds 2^31-1", v)
	}
	return uint32(v), nil
}

// Write serializes the zone in master-file form, sorted by owner name, with
// the apex SOA first as convention requires.
func Write(w io.Writer, z *Zone) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$ORIGIN %s\n", z.Origin)
	if soa, ok := z.SOA(); ok {
		fmt.Fprintln(bw, soa.String())
	}
	for _, set := range z.AllSets() {
		if set.Type == dnswire.TypeSOA && set.Name == z.Origin {
			continue
		}
		for _, rr := range set.RRs {
			fmt.Fprintln(bw, rr.String())
		}
	}
	return bw.Flush()
}
