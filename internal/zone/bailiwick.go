package zone

import "dnsttl/internal/dnswire"

// BailiwickClass classifies how a domain's nameserver set relates to the
// domain itself, the distinction at the heart of §4 and Table 9 of the paper.
type BailiwickClass uint8

const (
	// BailiwickInOnly: every NS host is under the domain (needs glue).
	BailiwickInOnly BailiwickClass = iota
	// BailiwickOutOnly: every NS host is outside the domain.
	BailiwickOutOnly
	// BailiwickMixed: some in, some out.
	BailiwickMixed
	// BailiwickNone: the domain has no NS hosts to classify.
	BailiwickNone
)

func (b BailiwickClass) String() string {
	switch b {
	case BailiwickInOnly:
		return "in-only"
	case BailiwickOutOnly:
		return "out-only"
	case BailiwickMixed:
		return "mixed"
	case BailiwickNone:
		return "none"
	}
	return "unknown"
}

// InBailiwick reports whether host is in bailiwick of domain: at or under it
// (RFC 8499). ns.example.org is in bailiwick of example.org;
// ns.example.com is not.
func InBailiwick(host, domain dnswire.Name) bool {
	return host.IsSubdomainOf(domain)
}

// ClassifyBailiwick classifies a domain's nameserver host set.
func ClassifyBailiwick(domain dnswire.Name, hosts []dnswire.Name) BailiwickClass {
	if len(hosts) == 0 {
		return BailiwickNone
	}
	in, out := 0, 0
	for _, h := range hosts {
		if InBailiwick(h, domain) {
			in++
		} else {
			out++
		}
	}
	switch {
	case in > 0 && out > 0:
		return BailiwickMixed
	case in > 0:
		return BailiwickInOnly
	default:
		return BailiwickOutOnly
	}
}

// NSHosts extracts the NS target hostnames from an RRset.
func NSHosts(set *RRSet) []dnswire.Name {
	if set == nil {
		return nil
	}
	var hosts []dnswire.Name
	for _, rr := range set.RRs {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			hosts = append(hosts, ns.Host)
		}
	}
	return hosts
}
