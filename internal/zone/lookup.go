package zone

import (
	"dnsttl/internal/dnswire"
)

// AnswerKind classifies the outcome of a zone lookup.
type AnswerKind uint8

const (
	// Answer: the zone is authoritative for the name and has the type.
	Answer AnswerKind = iota
	// NoData: the name exists but has no records of the queried type.
	NoData
	// NXDomain: the name does not exist in the zone.
	NXDomain
	// Delegation: the name falls under a zone cut; the result carries the
	// NS set and any glue.
	Delegation
	// CNAMEAnswer: the name is an alias; the result carries the CNAME and
	// the caller should chase the target.
	CNAMEAnswer
	// NotInZone: the name is not under this zone's origin at all.
	NotInZone
)

func (k AnswerKind) String() string {
	switch k {
	case Answer:
		return "answer"
	case NoData:
		return "nodata"
	case NXDomain:
		return "nxdomain"
	case Delegation:
		return "delegation"
	case CNAMEAnswer:
		return "cname"
	case NotInZone:
		return "notinzone"
	}
	return "unknown"
}

// LookupResult is the outcome of Zone.Lookup.
type LookupResult struct {
	Kind AnswerKind
	// Answer holds the matching RRset (or the CNAME for CNAMEAnswer).
	Answer *RRSet
	// Authority holds the delegation NS set (for Delegation) or the SOA
	// (for NoData/NXDomain negative answers, per RFC 2308).
	Authority *RRSet
	// Glue holds address records for in-bailiwick delegation nameservers.
	Glue []dnswire.RR
}

// Lookup runs the authoritative-side resolution algorithm of RFC 1034
// §4.3.2 against this zone: delegation beats data, CNAME beats other types,
// and negative answers carry the SOA.
func (z *Zone) Lookup(name dnswire.Name, t dnswire.Type) LookupResult {
	if !name.IsSubdomainOf(z.Origin) {
		return LookupResult{Kind: NotInZone}
	}

	// Zone cut between origin and name? Return a referral. A query *for*
	// the NS set at the cut itself is also a referral (the child zone is
	// authoritative for it, we only hold a copy).
	if cut := z.delegationFor(name); cut != nil {
		return LookupResult{
			Kind:      Delegation,
			Authority: cut,
			Glue:      z.glueFor(cut),
		}
	}

	z.mu.RLock()
	byType := z.sets[name]
	z.mu.RUnlock()

	if byType != nil {
		if set := z.Get(name, t); set != nil {
			return LookupResult{Kind: Answer, Answer: set}
		}
		// CNAME matches any type except its own (and except at names that
		// actually hold the queried type, handled above).
		if t != dnswire.TypeCNAME {
			if cname := z.Get(name, dnswire.TypeCNAME); cname != nil {
				return LookupResult{Kind: CNAMEAnswer, Answer: cname}
			}
		}
		return LookupResult{Kind: NoData, Authority: z.soaSet()}
	}

	// Wildcard match (RFC 1034 §4.3.3): the closest-encloser's "*" child.
	if res, ok := z.wildcardLookup(name, t); ok {
		return res
	}

	if z.NameExists(name) {
		// Empty non-terminal: NODATA, not NXDOMAIN.
		return LookupResult{Kind: NoData, Authority: z.soaSet()}
	}
	return LookupResult{Kind: NXDomain, Authority: z.soaSet()}
}

func (z *Zone) wildcardLookup(name dnswire.Name, t dnswire.Type) (LookupResult, bool) {
	for n := name.Parent(); ; n = n.Parent() {
		if !n.IsSubdomainOf(z.Origin) && n != z.Origin {
			break
		}
		wc := n.Child("*")
		if set := z.Get(wc, t); set != nil {
			// Synthesize the answer at the query name.
			syn := set.Clone()
			syn.Name = name
			for i := range syn.RRs {
				syn.RRs[i].Name = name
			}
			return LookupResult{Kind: Answer, Answer: syn}, true
		}
		if n == z.Origin || n.IsRoot() {
			break
		}
	}
	return LookupResult{}, false
}

// glueFor collects A/AAAA records present in the zone for the delegation's
// nameservers. Only in-bailiwick glue (hosts under the delegated name or
// elsewhere within this zone) can exist here by construction.
func (z *Zone) glueFor(cut *RRSet) []dnswire.RR {
	var glue []dnswire.RR
	for _, rr := range cut.RRs {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
			if set := z.Get(ns.Host, t); set != nil {
				glue = append(glue, set.RRs...)
			}
		}
	}
	return glue
}

func (z *Zone) soaSet() *RRSet {
	return z.Get(z.Origin, dnswire.TypeSOA)
}
