package zone

import (
	"bytes"
	"strings"
	"testing"

	"dnsttl/internal/dnswire"
)

const sampleZone = `
$ORIGIN example.org.
$TTL 3600
@        86400 IN SOA ns1 admin 2019021301 7200 3600 1209600 300
@        172800 IN NS ns1
@        172800 IN NS ns2.dns-host.com.
ns1      86400 IN A 192.0.2.1
www      300 IN A 192.0.2.80 ; web server
www      300 IN AAAA 2001:db8::80
mail     IN CNAME www
@        IN MX 10 mx
txt      IN TXT "hello world" "second"
key      IN DNSKEY 257 3 8 AwEAAbbbbb
sub      7200 IN NS ns1.sub
ns1.sub  7200 IN A 192.0.2.53
multi    1h IN SOA ns1 admin (
             1     ; serial
             7200  ; refresh
             3600  ; retry
             1209600
             300 )
`

func TestParseMasterFile(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZone), dnswire.NewName("example.org"))
	if err != nil {
		t.Fatal(err)
	}
	soa, ok := z.SOA()
	if !ok {
		t.Fatal("no SOA parsed")
	}
	sd := soa.Data.(dnswire.SOA)
	if sd.MName != dnswire.NewName("ns1.example.org") || sd.Serial != 2019021301 {
		t.Errorf("SOA = %+v", sd)
	}
	ns := z.Get(dnswire.NewName("example.org"), dnswire.TypeNS)
	if len(ns.RRs) != 2 || ns.TTL != 172800 {
		t.Errorf("NS set = %+v", ns)
	}
	hosts := NSHosts(ns)
	if hosts[1] != dnswire.NewName("ns2.dns-host.com") {
		t.Errorf("absolute NS name mishandled: %v", hosts)
	}
	www := z.Get(dnswire.NewName("www.example.org"), dnswire.TypeA)
	if www == nil || www.TTL != 300 {
		t.Errorf("www A = %+v (comment stripping or TTL parse broken)", www)
	}
	cn := z.Get(dnswire.NewName("mail.example.org"), dnswire.TypeCNAME)
	if cn == nil || cn.TTL != 3600 {
		t.Errorf("default $TTL not applied: %+v", cn)
	}
	txt := z.Get(dnswire.NewName("txt.example.org"), dnswire.TypeTXT)
	if txt == nil || txt.RRs[0].Data.(dnswire.TXT).Strings[0] != "hello" {
		// strings.Fields splits on spaces so quoted strings with spaces
		// arrive as separate tokens; verify at least both tokens survive.
		if txt == nil || len(txt.RRs[0].Data.(dnswire.TXT).Strings) < 2 {
			t.Errorf("TXT = %+v", txt)
		}
	}
	key := z.Get(dnswire.NewName("key.example.org"), dnswire.TypeDNSKEY)
	if key == nil || key.RRs[0].Data.(dnswire.DNSKEY).Flags != 257 {
		t.Errorf("DNSKEY = %+v", key)
	}
	multi := z.Get(dnswire.NewName("multi.example.org"), dnswire.TypeSOA)
	if multi == nil || multi.TTL != 3600 {
		t.Errorf("parenthesized record = %+v", multi)
	}
	if multi.RRs[0].Data.(dnswire.SOA).Expire != 1209600 {
		t.Errorf("multi-line SOA fields = %+v", multi.RRs[0].Data)
	}
}

func TestParseTTLUnits(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
		ok   bool
	}{
		{"0", 0, true},
		{"600", 600, true},
		{"30m", 1800, true},
		{"2h", 7200, true},
		{"1d", 86400, true},
		{"1w", 604800, true},
		{"60s", 60, true},
		{"", 0, false},
		{"m", 0, false},
		{"1x1", 0, false},
		{"4294967296", 0, false}, // > 2^31-1 after range check
	}
	for _, c := range cases {
		got, err := parseTTL(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseTTL(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseTTL(%q) should fail", c.in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"$ORIGIN",                      // missing arg
		"$TTL",                         // missing arg
		"$TTL abc",                     // bad ttl
		"www IN A",                     // missing rdata
		"www IN A 1.2.3.4 5.6.7.8",     // too many fields
		"www IN NOPE x",                // unknown type
		"www IN MX ten mx.example.org", // bad preference
		"www IN SOA a b 1 2 3",         // short SOA
		"www IN A 1.2.3.4 (",           // unbalanced paren
	}
	for _, b := range bad {
		if _, err := Parse(strings.NewReader(b), dnswire.NewName("example.org")); err == nil {
			t.Errorf("Parse(%q) should fail", b)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZone), dnswire.NewName("example.org"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, z); err != nil {
		t.Fatal(err)
	}
	z2, err := Parse(&buf, dnswire.NewName("example.org"))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if z2.RecordCount() != z.RecordCount() {
		t.Errorf("round trip lost records: %d vs %d", z2.RecordCount(), z.RecordCount())
	}
	for _, set := range z.AllSets() {
		got := z2.Get(set.Name, set.Type)
		if got == nil {
			t.Errorf("set %s/%s lost in round trip", set.Name, set.Type)
			continue
		}
		if got.TTL != set.TTL || len(got.RRs) != len(set.RRs) {
			t.Errorf("set %s/%s changed: %+v vs %+v", set.Name, set.Type, got, set)
		}
	}
}

func TestAbsName(t *testing.T) {
	origin := dnswire.NewName("example.org")
	if absName("@", origin) != origin {
		t.Errorf("@ should be origin")
	}
	if absName("www", origin) != dnswire.NewName("www.example.org") {
		t.Errorf("relative name broken")
	}
	if absName("other.com.", origin) != dnswire.NewName("other.com") {
		t.Errorf("absolute name broken")
	}
	if absName("tld", dnswire.Root) != dnswire.NewName("tld") {
		t.Errorf("root-origin relative name broken")
	}
}
