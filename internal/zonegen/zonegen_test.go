package zonegen

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(5)
	return Build(Config{Seed: 42, Scale: 0.05}, net, clock)
}

func TestBuildPopulations(t *testing.T) {
	w := smallWorld(t)
	for _, l := range AllLists {
		ds := w.Lists[l]
		wantSize := int(float64(params[l].size) * 0.05)
		if len(ds) != wantSize {
			t.Errorf("%s: %d domains, want %d", l, len(ds), wantSize)
		}
		responsive := 0
		for _, d := range ds {
			if d.Name == "" || d.ParentAddr == (netip.Addr{}) {
				t.Fatalf("%s: incomplete domain %+v", l, d)
			}
			if d.Responsive {
				responsive++
				if d.Zone == nil {
					t.Fatalf("%s: responsive domain %s without zone", l, d.Name)
				}
			}
		}
		frac := float64(responsive) / float64(len(ds))
		if frac < params[l].responsive-0.1 || frac > 1 {
			t.Errorf("%s: responsive fraction %.2f, want ≈%.2f", l, frac, params[l].responsive)
		}
	}
}

func TestTTLDistMedians(t *testing.T) {
	// Table 7 medians (hours → seconds) for class-conditioned .nl dists.
	cases := []struct {
		name string
		d    ttlDist
		want uint32
	}{
		{"NS/ecommerce", classNSTTL[Ecommerce], 14400},
		{"NS/parking", classNSTTL[Parking], 86400},
		{"NS/placeholder", classNSTTL[Placeholder], 14400},
		{"A/ecommerce", classATTL[Ecommerce], 3600},
		{"A/parking", classATTL[Parking], 3600},
		{"A/placeholder", classATTL[Placeholder], 3600},
		{"AAAA/ecommerce", classAAAATTL[Ecommerce], 360},
		{"AAAA/parking", classAAAATTL[Parking], 3600},
		{"AAAA/placeholder", classAAAATTL[Placeholder], 14400},
		{"MX/ecommerce", classMXTTL[Ecommerce], 3600},
		{"DNSKEY/parking", classDNSKEYTTL[Parking], 86400},
		{"DNSKEY/ecommerce", classDNSKEYTTL[Ecommerce], 3600},
	}
	for _, c := range cases {
		if got := c.d.median(); got != c.want {
			t.Errorf("%s median = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTTLDistSample(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := nsTTL[Alexa]
	seen := map[uint32]int{}
	for i := 0; i < 10000; i++ {
		seen[d.sample(r)]++
	}
	// Every menu value with weight ≥2% should appear.
	for _, e := range d {
		if e.w >= 0.02 && seen[e.ttl] == 0 {
			t.Errorf("TTL %d (w=%.3f) never sampled", e.ttl, e.w)
		}
	}
	// Zero-TTL tail exists but is rare (Table 8).
	zf := float64(seen[0]) / 10000
	if zf > 0.02 {
		t.Errorf("zero-TTL fraction %.4f too high", zf)
	}
}

func TestRootListShortTTLTail(t *testing.T) {
	// §5.2: a small set of TLDs has NS TTLs under 30/120 minutes.
	r := rand.New(rand.NewSource(2))
	short30, short120 := 0, 0
	n := 20000
	for i := 0; i < n; i++ {
		ttl := nsTTL[Root].sample(r)
		if ttl < 1800 {
			short30++
		}
		if ttl < 7200 {
			short120++
		}
	}
	f30 := float64(short30) / float64(n)
	f120 := float64(short120) / float64(n)
	// Paper: 34/1535 ≈ 2.2% under 30 min, 122/1535 ≈ 7.9% under 120 min.
	if f30 < 0.005 || f30 > 0.05 {
		t.Errorf("TLDs with NS TTL <30min: %.3f, want ≈0.02", f30)
	}
	if f120 < 0.04 || f120 > 0.12 {
		t.Errorf("TLDs with NS TTL <120min: %.3f, want ≈0.08", f120)
	}
}

func TestBailiwickFractions(t *testing.T) {
	w := smallWorld(t)
	for _, l := range []List{Alexa, NL, Root} {
		counts := map[zone.BailiwickClass]int{}
		n := 0
		for _, d := range w.Lists[l] {
			if d.Responsive && d.NSBehavior == NSAnswer {
				counts[d.Bailiwick]++
				n++
			}
		}
		fOut := float64(counts[zone.BailiwickOutOnly]) / float64(n)
		want := params[l].fOutOnly
		if fOut < want-0.1 || fOut > want+0.1 {
			t.Errorf("%s out-only fraction = %.3f, want ≈%.3f", l, fOut, want)
		}
	}
}

func TestUmbrellaCNAMETail(t *testing.T) {
	w := smallWorld(t)
	cname := 0
	n := 0
	for _, d := range w.Lists[Umbrella] {
		if !d.Responsive {
			continue
		}
		n++
		if d.NSBehavior == NSCNAME {
			cname++
		}
	}
	frac := float64(cname) / float64(n)
	if frac < 0.45 || frac > 0.70 {
		t.Errorf("Umbrella CNAME fraction = %.3f, want ≈0.58", frac)
	}
}

// TestWorldResolvable: a real recursive resolver can resolve generated
// domains end to end through the generated delegations — out-of-bailiwick
// NS host names included.
func TestWorldResolvable(t *testing.T) {
	clock := simnet.NewVirtualClock()
	net := simnet.NewNetwork(5)
	net.LatencyFor = func(src, dst netip.Addr) simnet.LatencyModel {
		return simnet.Constant(time.Millisecond)
	}
	w := Build(Config{Seed: 42, Scale: 0.02}, net, clock)
	r := resolver.New(netip.MustParseAddr("10.0.0.9"), resolver.DefaultPolicy(),
		net, clock, []netip.Addr{w.RootAddr}, 7)

	resolved, tried := 0, 0
	for _, l := range AllLists {
		for _, d := range w.Lists[l] {
			if !d.Responsive || d.NSBehavior != NSAnswer {
				continue
			}
			tried++
			if tried > 40 {
				break
			}
			qt := dnswire.TypeA
			if l == Root {
				qt = dnswire.TypeNS
			}
			res, err := r.Resolve(d.Name, qt)
			if err != nil {
				t.Fatalf("resolve %s: %v", d.Name, err)
			}
			if res.Msg.Header.RCode == dnswire.RCodeNoError && len(res.Msg.Answer) > 0 {
				resolved++
			} else {
				t.Errorf("%s (%s, bailiwick %s): rcode %s answers %d",
					d.Name, l, d.Bailiwick, res.Msg.Header.RCode, len(res.Msg.Answer))
			}
		}
	}
	if resolved == 0 {
		t.Fatal("nothing resolved")
	}
}

func TestHostDirectory(t *testing.T) {
	w := smallWorld(t)
	if len(w.HostAddr) == 0 {
		t.Fatal("empty host directory")
	}
	for h, a := range w.HostAddr {
		if !a.IsValid() {
			t.Fatalf("host %s has invalid address", h)
		}
	}
	if w.Server(w.RootAddr) == nil {
		t.Errorf("root server not registered")
	}
}

func TestContentClassesPresent(t *testing.T) {
	w := smallWorld(t)
	counts := map[ContentClass]int{}
	for _, d := range w.Lists[NL] {
		counts[d.Content]++
	}
	if counts[Placeholder] == 0 || counts[Ecommerce] == 0 || counts[Parking] == 0 {
		t.Errorf("content classes = %v", counts)
	}
	// Placeholder dominates the classified set (Table 6).
	classified := counts[Placeholder] + counts[Ecommerce] + counts[Parking]
	if float64(counts[Placeholder])/float64(classified) < 0.7 {
		t.Errorf("placeholder share = %d/%d", counts[Placeholder], classified)
	}
	for c, want := range map[ContentClass]string{Placeholder: "placeholder", Ecommerce: "e-commerce", Parking: "parking", Unclassified: "unclassified"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	names := func() []dnswire.Name {
		clock := simnet.NewVirtualClock()
		net := simnet.NewNetwork(5)
		w := Build(Config{Seed: 9, Scale: 0.01}, net, clock)
		var out []dnswire.Name
		for _, l := range AllLists {
			for _, d := range w.Lists[l] {
				out = append(out, d.Name)
				if d.Zone != nil {
					out = append(out, dnswire.Name(d.Bailiwick.String()))
				}
			}
		}
		return out
	}
	a, b := names(), names()
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worlds differ at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestParamsAccessor(t *testing.T) {
	size, resp := Params(Alexa)
	if size != 10000 || resp != 0.99 {
		t.Errorf("Params(Alexa) = %d, %f", size, resp)
	}
}
