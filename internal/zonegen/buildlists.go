package zonegen

import (
	"fmt"
	"net/netip"

	"dnsttl/internal/dnswire"
	"dnsttl/internal/zone"
)

// tldZone returns the registry zone object for a TLD (created by buildTLD).
func (w *World) tldZone(tld dnswire.Name) *zone.Zone {
	srv := w.servers[w.TLDAddr[tld]]
	return srv.Zone(tld)
}

// parentNSTTL is the registry-side delegation TTL: .com-style registries
// use two days, .nl one hour — the parent/child divergence the paper's §3
// studies.
func parentNSTTL(tld string) uint32 {
	if tld == "nl" {
		return 3600
	}
	return 172800
}

// buildSLDList populates one second-level-domain list.
func (w *World) buildSLDList(l List, scale float64) {
	p := params[l]
	size := int(float64(p.size) * scale)
	if size < 1 {
		size = 1
	}
	providers := w.buildProviders(l, int(float64(size)*p.providerFrac))
	w.buildProviderZones(l, providers)

	tld := dnswire.NewName(p.tld)
	tz := w.tldZone(tld)
	pNSTTL := parentNSTTL(p.tld)

	// Platform zones host the CNAME/SOA-answering FQDNs (one per
	// provider, delegated once).
	platforms := make(map[*provider]*zone.Zone)
	platformOf := func(pr *provider) *zone.Zone {
		if z := platforms[pr]; z != nil {
			return z
		}
		name := fmt.Sprintf("plat-%s.%s", hostLabel(pr.hosts[0]), p.tld)
		z := w.newChildZone(l, name, pr, zone.BailiwickOutOnly, Unclassified, false)
		// The platform apex itself resolves (CDN edges do).
		z.MustAdd(dnswire.RR{Name: z.Origin.Child("edge"), Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: aTTL[l].sample(w.rng), Data: mustA(pr.addr.String())})
		platforms[pr] = z
		w.delegate(tz, dnswire.NewName(name), pr, zone.BailiwickOutOnly, pNSTTL)
		return z
	}

	for i := 0; i < size; i++ {
		pr := pickProvider(providers, w.rng)
		responsive := w.rng.Float64() < p.responsive
		d := &Domain{List: l, Responsive: responsive, ParentAddr: w.TLDAddr[tld]}

		behavior := NSAnswer
		if responsive {
			x := w.rng.Float64()
			if x < p.fCNAME {
				behavior = NSCNAME
			} else if x < p.fCNAME+p.fSOA {
				behavior = NSSOA
			}
		}
		d.NSBehavior = behavior

		switch behavior {
		case NSCNAME, NSSOA:
			// A deep FQDN inside a provider platform zone.
			plat := platformOf(pr)
			name := dnswire.NewName(fmt.Sprintf("d%06d.id.cdn.%s", i, plat.Origin))
			d.Name = name
			d.ChildAddrs = []netip.Addr{pr.addr}
			d.Bailiwick = zone.BailiwickNone
			if behavior == NSCNAME {
				target := dnswire.NewName("edge." + string(plat.Origin))
				plat.MustAdd(dnswire.RR{
					Name: name, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN,
					TTL:  cnameTTL[l].sample(w.rng),
					Data: dnswire.CNAME{Target: target},
				})
			} else {
				plat.MustAdd(dnswire.RR{
					Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
					TTL:  aTTL[l].sample(w.rng),
					Data: mustA(pr.customerAddr(w.rng, p.aShare, w.allocIP)),
				})
			}
			d.Zone = plat
		default:
			name := fmt.Sprintf("d%06d-%s.%s", i, l, p.tld)
			d.Name = dnswire.NewName(name)
			bw := w.sampleBailiwick(p)
			d.Bailiwick = bw
			if !responsive {
				// Lame delegation: parent points at a silent server.
				d.ChildAddrs = []netip.Addr{w.deadAddr}
				w.delegateDead(tz, d.Name, pNSTTL)
				break
			}
			var content ContentClass
			if l == NL && w.rng.Float64() < 0.27 {
				content = w.sampleContentClass()
			}
			d.Content = content
			d.ChildAddrs = []netip.Addr{pr.addr}
			d.Zone = w.newChildZone(l, name, pr, bw, content, true)
			w.delegate(tz, d.Name, pr, bw, pNSTTL)
		}
		w.Lists[l] = append(w.Lists[l], d)
	}
}

// sampleBailiwick draws the NS-host configuration per Table 9.
func (w *World) sampleBailiwick(p listParams) zone.BailiwickClass {
	x := w.rng.Float64()
	switch {
	case x < p.fOutOnly:
		return zone.BailiwickOutOnly
	case x < p.fOutOnly+p.fInOnly:
		return zone.BailiwickInOnly
	default:
		return zone.BailiwickMixed
	}
}

// sampleContentClass draws a DMap class with Table 6's proportions.
func (w *World) sampleContentClass() ContentClass {
	x := w.rng.Float64()
	switch {
	case x < 0.813:
		return Placeholder
	case x < 0.813+0.101:
		return Ecommerce
	default:
		return Parking
	}
}

// nsHosts returns the child's NS host names for the chosen bailiwick class.
func nsHosts(domain dnswire.Name, pr *provider, bw zone.BailiwickClass, n int) []dnswire.Name {
	var hosts []dnswire.Name
	switch bw {
	case zone.BailiwickInOnly:
		for i := 0; i < n; i++ {
			hosts = append(hosts, domain.Child(fmt.Sprintf("ns%d", i+1)))
		}
	case zone.BailiwickMixed:
		hosts = append(hosts, domain.Child("ns1"))
		hosts = append(hosts, pr.hosts[0])
		for len(hosts) < n {
			hosts = append(hosts, pr.hosts[len(hosts)%len(pr.hosts)])
		}
	default:
		for i := 0; i < n; i++ {
			hosts = append(hosts, pr.hosts[i%len(pr.hosts)])
		}
	}
	return hosts[:n]
}

// newChildZone creates and serves a child zone for one domain with the
// list- (or content-class-) calibrated TTLs.
func (w *World) newChildZone(l List, name string, pr *provider, bw zone.BailiwickClass, content ContentClass, full bool) *zone.Zone {
	p := params[l]
	dn := dnswire.NewName(name)
	z := zone.New(dn)

	pick := func(generic map[List]ttlDist, class map[ContentClass]ttlDist) uint32 {
		if l == NL && content != Unclassified {
			return class[content].sample(w.rng)
		}
		return generic[l].sample(w.rng)
	}

	nsTTLv := pick(nsTTL, classNSTTL)
	soaTTL := nsTTLv
	if soaTTL == 0 {
		soaTTL = 3600
	}
	z.MustAdd(dnswire.NewSOA(name, soaTTL, "ns1."+name, "hostmaster."+name, 1, 7200, 3600, 1209600, min32(soaTTL, 3600)))

	n := intBetween(w.rng, p.nsPerDomain)
	hosts := nsHosts(dn, pr, bw, n)
	for _, h := range hosts {
		z.MustAdd(dnswire.RR{Name: dn, Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: nsTTLv, Data: dnswire.NS{Host: h}})
		if h.IsSubdomainOf(dn) {
			// In-bailiwick host needs its address in the child zone.
			z.MustAdd(dnswire.RR{Name: h, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: pick(aTTL, classATTL), Data: mustA(pr.addr.String())})
		}
	}

	if full {
		aTTLv := pick(aTTL, classATTL)
		nA := intBetween(w.rng, p.aPerDomain)
		for i := 0; i < nA; i++ {
			z.MustAdd(dnswire.RR{Name: dn, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: aTTLv, Data: mustA(pr.customerAddr(w.rng, p.aShare, w.allocIP))})
		}
		if w.rng.Float64() < p.pAAAA {
			z.MustAdd(dnswire.RR{Name: dn, Type: dnswire.TypeAAAA, Class: dnswire.ClassIN,
				TTL: pick(aaaaTTL, classAAAATTL), Data: v6For(pr, w.rng, p.aShare)})
		}
		if w.rng.Float64() < p.pMX {
			mxTTLv := pick(mxTTL, classMXTTL)
			z.MustAdd(dnswire.RR{Name: dn, Type: dnswire.TypeMX, Class: dnswire.ClassIN,
				TTL: mxTTLv, Data: dnswire.MX{Preference: 10, Host: dnswire.NewName("mx." + hostLabel(pr.hosts[0]) + ".net")}})
		}
		if w.rng.Float64() < p.pDNSKEY {
			z.MustAdd(dnswire.RR{Name: dn, Type: dnswire.TypeDNSKEY, Class: dnswire.ClassIN,
				TTL:  pick(dnskeyTTL, classDNSKEYTTL),
				Data: dnswire.DNSKEY{Flags: 257, Protocol: 3, Algorithm: 13, PublicKey: []byte(name)}})
		}
	}
	pr.srv.AddZone(z)
	return z
}

// delegate adds the parent-side NS set (and glue when in bailiwick) for a
// child to the registry zone.
func (w *World) delegate(tz *zone.Zone, child dnswire.Name, pr *provider, bw zone.BailiwickClass, pTTL uint32) {
	hosts := nsHosts(child, pr, bw, 2)
	for _, h := range hosts {
		tz.MustAdd(dnswire.RR{Name: child, Type: dnswire.TypeNS, Class: dnswire.ClassIN,
			TTL: pTTL, Data: dnswire.NS{Host: h}})
		if h.IsSubdomainOf(child) {
			tz.MustAdd(dnswire.RR{Name: h, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: pTTL, Data: mustA(pr.addr.String())})
		}
	}
}

// delegateDead points a child at the unresponsive server.
func (w *World) delegateDead(tz *zone.Zone, child dnswire.Name, pTTL uint32) {
	h := child.Child("ns1")
	tz.MustAdd(dnswire.RR{Name: child, Type: dnswire.TypeNS, Class: dnswire.ClassIN,
		TTL: pTTL, Data: dnswire.NS{Host: h}})
	tz.MustAdd(dnswire.RR{Name: h, Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: pTTL, Data: mustA(w.deadAddr.String())})
}

// buildProviderZones gives each hosting provider its own resolvable zone
// (hostN-list.net) holding its nameserver host addresses, delegated from
// .net — so out-of-bailiwick NS names resolve end to end.
func (w *World) buildProviderZones(l List, providers []*provider) {
	netTLD := dnswire.NewName("net")
	tz := w.tldZone(netTLD)
	for _, pr := range providers {
		origin := dnswire.NewName(hostLabel(pr.hosts[0]) + ".net")
		z := zone.New(origin)
		z.MustAdd(dnswire.NewSOA(string(origin), 3600, string(pr.hosts[0]), "hostmaster."+string(origin), 1, 7200, 3600, 1209600, 3600))
		for _, h := range pr.hosts {
			z.MustAdd(dnswire.RR{Name: origin, Type: dnswire.TypeNS, Class: dnswire.ClassIN,
				TTL: 86400, Data: dnswire.NS{Host: h}})
			z.MustAdd(dnswire.RR{Name: h, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: 86400, Data: mustA(pr.addr.String())})
		}
		z.MustAdd(dnswire.RR{Name: origin.Child("mx"), Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 3600, Data: mustA(pr.addr.String())})
		pr.srv.AddZone(z)
		// Delegate from .net with glue (the hosts are in bailiwick of the
		// provider zone).
		for _, h := range pr.hosts {
			tz.MustAdd(dnswire.RR{Name: origin, Type: dnswire.TypeNS, Class: dnswire.ClassIN,
				TTL: 172800, Data: dnswire.NS{Host: h}})
			tz.MustAdd(dnswire.RR{Name: h, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: 172800, Data: mustA(pr.addr.String())})
		}
	}
}

// buildRootList populates the TLD list served from the root zone itself.
func (w *World) buildRootList(scale float64) {
	p := params[Root]
	size := int(float64(p.size) * scale)
	if size < 1 {
		size = 1
	}
	providers := w.buildProviders(Root, int(float64(size)*p.providerFrac))
	w.buildProviderZones(Root, providers)

	for i := 0; i < size; i++ {
		pr := pickProvider(providers, w.rng)
		name := fmt.Sprintf("t%04d", i)
		dn := dnswire.NewName(name)
		responsive := w.rng.Float64() < p.responsive
		d := &Domain{
			Name: dn, List: Root, Responsive: responsive,
			ParentAddr: w.RootAddr, NSBehavior: NSAnswer,
		}
		if !responsive {
			d.ChildAddrs = []netip.Addr{w.deadAddr}
			w.delegateDead(w.RootZone, dn, 172800)
			w.Lists[Root] = append(w.Lists[Root], d)
			continue
		}
		bw := w.sampleBailiwick(p)
		d.Bailiwick = bw
		d.ChildAddrs = []netip.Addr{pr.addr}
		d.Zone = w.newChildZone(Root, name, pr, bw, Unclassified, true)
		w.delegate(w.RootZone, dn, pr, bw, 172800)
		w.Lists[Root] = append(w.Lists[Root], d)
	}
}

func hostLabel(h dnswire.Name) string {
	labels := h.Labels()
	if len(labels) >= 2 {
		return labels[1]
	}
	return labels[0]
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
