package zonegen

import (
	"fmt"
	"math/rand"
	"net/netip"

	"dnsttl/internal/dnswire"
)

// mustA wraps an IPv4 literal as A RDATA.
func mustA(s string) dnswire.A {
	return dnswire.A{Addr: netip.MustParseAddr(s)}
}

// v6For synthesizes AAAA RDATA from the provider's shared pool: customers
// that share a v4 address share the matching v6 one, preserving the
// unique-ratio structure for AAAA records too.
func v6For(pr *provider, r *rand.Rand, share int) dnswire.AAAA {
	v4 := pr.customerAddr(r, share, func() netip.Addr {
		// v6-only estates still draw pool slots; reuse a fresh v4-shaped
		// slot as the low bits.
		b := [4]byte{100, byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(255))}
		return netip.AddrFrom4(b)
	})
	a := netip.MustParseAddr(v4).As4()
	return dnswire.AAAA{Addr: netip.MustParseAddr(fmt.Sprintf("2001:db8:%x:%x::%x", a[0], a[1], uint16(a[2])<<8|uint16(a[3])))}
}
