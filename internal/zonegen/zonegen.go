// Package zonegen builds the synthetic Internet the crawler experiments run
// against: five domain populations shaped like the paper's lists (Alexa,
// Majestic, Umbrella, the .nl zone, and the root), each with calibrated TTL
// distributions, bailiwick configurations, shared hosting, DNSSEC presence,
// CNAME tails and a sprinkle of TTL-zero and unresponsive domains. The
// populations are served by real authoritative servers over the simulated
// network, so the crawler measures them exactly as the paper measured the
// real lists.
package zonegen

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/simnet"
	"dnsttl/internal/zone"
)

// List identifies one of the five crawled populations.
type List string

// The five lists of §5.1.
const (
	Alexa    List = "alexa"
	Majestic List = "majestic"
	Umbrella List = "umbrella"
	NL       List = "nl"
	Root     List = "root"
)

// AllLists in the paper's column order.
var AllLists = []List{Alexa, Majestic, Umbrella, NL, Root}

// ContentClass is the DMap classification of a .nl domain's web content
// (§5.1.1, Table 6).
type ContentClass uint8

// Content classes; Unclassified covers domains DMap could not categorize.
const (
	Unclassified ContentClass = iota
	Placeholder
	Ecommerce
	Parking
)

func (c ContentClass) String() string {
	switch c {
	case Placeholder:
		return "placeholder"
	case Ecommerce:
		return "e-commerce"
	case Parking:
		return "parking"
	}
	return "unclassified"
}

// Domain is one generated domain with its ground truth, which experiments
// may consult but the crawler must rediscover by querying.
type Domain struct {
	Name dnswire.Name
	List List
	// Responsive is false for domains whose servers never answer
	// (Umbrella's transient cloud names, mostly).
	Responsive bool
	// NSBehavior describes what an NS query to the child returns.
	NSBehavior NSBehavior
	// Bailiwick is the ground-truth NS host configuration.
	Bailiwick zone.BailiwickClass
	// Content is set for .nl domains DMap can classify.
	Content ContentClass
	// ChildAddrs are the authoritative server addresses for the domain.
	ChildAddrs []netip.Addr
	// ParentAddr serves the domain's parent zone.
	ParentAddr netip.Addr
	// Zone is the child zone served at ChildAddrs.
	Zone *zone.Zone
}

// NSBehavior is what an NS query to the child authoritative yields.
type NSBehavior uint8

// NS query outcomes seen in the wild (Table 9's CNAME/SOA rows).
const (
	NSAnswer NSBehavior = iota
	NSCNAME             // the name is an alias; NS query returns a CNAME
	NSSOA               // NODATA: the name exists under a zone but has no NS
)

// listParams calibrates one list's population.
type listParams struct {
	size       int
	tld        string
	responsive float64
	// record presence
	pAAAA, pMX, pDNSKEY float64
	nsPerDomain         [2]int // min,max
	aPerDomain          [2]int
	// NS-query behavior fractions
	fCNAME, fSOA float64
	// bailiwick fractions of NS-answering domains
	fOutOnly, fInOnly float64 // mixed = rest
	// hosting concentration: fraction of domains per provider-unit; lower
	// means more sharing (higher unique ratios in Table 5).
	providerFrac float64
	// aShare: how many customers share one address on average.
	aShare int
}

// params are calibrated against Table 5 (presence ratios), Table 9
// (bailiwick) and the response ratios of §5.1.
var params = map[List]listParams{
	Alexa: {
		size: 10000, tld: "com", responsive: 0.99,
		pAAAA: 0.28, pMX: 0.62, pDNSKEY: 0.043,
		nsPerDomain: [2]int{2, 4}, aPerDomain: [2]int{1, 2},
		fCNAME: 0.052, fSOA: 0.013,
		fOutOnly: 0.950, fInOnly: 0.041,
		providerFrac: 0.055, aShare: 2,
	},
	Majestic: {
		size: 10000, tld: "com", responsive: 0.93,
		pAAAA: 0.23, pMX: 0.60, pDNSKEY: 0.041,
		nsPerDomain: [2]int{2, 4}, aPerDomain: [2]int{1, 2},
		fCNAME: 0.008, fSOA: 0.009,
		fOutOnly: 0.957, fInOnly: 0.031,
		providerFrac: 0.05, aShare: 2,
	},
	Umbrella: {
		size: 10000, tld: "com", responsive: 0.78,
		pAAAA: 0.37, pMX: 0.48, pDNSKEY: 0.015,
		nsPerDomain: [2]int{2, 3}, aPerDomain: [2]int{1, 3},
		fCNAME: 0.578, fSOA: 0.075,
		fOutOnly: 0.901, fInOnly: 0.074,
		providerFrac: 0.06, aShare: 2,
	},
	NL: {
		size: 25000, tld: "nl", responsive: 0.977,
		pAAAA: 0.39, pMX: 0.78, pDNSKEY: 0.697,
		nsPerDomain: [2]int{2, 3}, aPerDomain: [2]int{1, 1},
		fCNAME: 0.0017, fSOA: 0.0023,
		fOutOnly: 0.997, fInOnly: 0.0023,
		providerFrac: 0.006, aShare: 20,
	},
	Root: {
		size: 1562, tld: "", responsive: 0.97,
		pAAAA: 0.90, pMX: 0.05, pDNSKEY: 0,
		nsPerDomain: [2]int{3, 7}, aPerDomain: [2]int{1, 1},
		fCNAME: 0, fSOA: 0,
		fOutOnly: 0.487, fInOnly: 0.426,
		providerFrac: 0.25, aShare: 1,
	},
}

// Params exposes a list's configured size for reporting.
func Params(l List) (size int, responsive float64) {
	p := params[l]
	return p.size, p.responsive
}

// Config controls generation.
type Config struct {
	Seed int64
	// Scale multiplies every list size (1.0 = the package defaults;
	// the paper's full scale would be Scale≈100 for the million-entry
	// lists). Zero means 1.0.
	Scale float64
}

// World is the generated Internet.
type World struct {
	Net   *simnet.Network
	Clock simnet.Clock
	// RootAddr and RootZone anchor resolution.
	RootAddr netip.Addr
	RootZone *zone.Zone
	// Lists holds every generated domain per list.
	Lists map[List][]*Domain
	// HostAddr resolves a nameserver host name to its server address —
	// the stand-in for resolving hosting providers' own names when a
	// referral carries no glue.
	HostAddr map[dnswire.Name]netip.Addr
	// TLDAddr maps each TLD to its registry server.
	TLDAddr map[dnswire.Name]netip.Addr

	deadAddr netip.Addr
	nextIP   uint32
	rng      *rand.Rand
	clock    simnet.Clock
	servers  map[netip.Addr]*authoritative.Server
}

// Build generates the world onto the given network and clock.
func Build(cfg Config, net *simnet.Network, clock simnet.Clock) *World {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	w := &World{
		Net:      net,
		Clock:    clock,
		Lists:    make(map[List][]*Domain),
		HostAddr: make(map[dnswire.Name]netip.Addr),
		TLDAddr:  make(map[dnswire.Name]netip.Addr),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		clock:    clock,
		servers:  make(map[netip.Addr]*authoritative.Server),
	}
	w.nextIP = 0x64400001 // 100.64.0.1, carrier-grade NAT space as lab space
	w.deadAddr = w.allocIP()

	w.RootAddr = w.allocIP()
	w.RootZone = zone.New(dnswire.Root)
	w.RootZone.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "nstld.example.", 2019021300, 1800, 900, 604800, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, w.RootAddr.String()),
	)
	rootSrv := w.serverAt(w.RootAddr, "a.root-servers.net")
	rootSrv.AddZone(w.RootZone)

	// TLD registries used by the SLD lists.
	for _, tld := range []string{"com", "nl", "net", "org"} {
		w.buildTLD(tld)
	}

	for _, l := range []List{Alexa, Majestic, Umbrella, NL} {
		w.buildSLDList(l, cfg.Scale)
	}
	w.buildRootList(cfg.Scale)
	return w
}

func (w *World) allocIP() netip.Addr {
	ip := w.nextIP
	w.nextIP++
	return netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
}

func (w *World) serverAt(addr netip.Addr, name string) *authoritative.Server {
	if s, ok := w.servers[addr]; ok {
		return s
	}
	s := authoritative.NewServer(dnswire.NewName(name), w.clock)
	w.servers[addr] = s
	w.Net.Attach(addr, s)
	return s
}

// Server returns the authoritative server at addr, or nil.
func (w *World) Server(addr netip.Addr) *authoritative.Server {
	return w.servers[addr]
}

func (w *World) buildTLD(tld string) {
	addr := w.allocIP()
	name := dnswire.NewName(tld)
	host := dnswire.NewName("a.gtld-servers." + tld)
	z := zone.New(name)
	z.MustAdd(
		dnswire.NewSOA(tld, 900, string(host), "hostmaster."+tld, 1, 1800, 900, 604800, 900),
		dnswire.NewNS(tld, 172800, string(host)),
		dnswire.NewA(string(host), 172800, addr.String()),
	)
	srv := w.serverAt(addr, string(host))
	srv.AddZone(z)
	w.TLDAddr[name] = addr
	w.HostAddr[host] = addr
	// Delegate from the root.
	w.RootZone.MustAdd(
		dnswire.NewNS(tld, 172800, string(host)),
		dnswire.NewA(string(host), 172800, addr.String()),
	)
}

// provider is one shared-hosting operator: a couple of NS host names, one
// server, and a pool of customer addresses.
type provider struct {
	hosts []dnswire.Name
	addr  netip.Addr
	srv   *authoritative.Server
	pool  []string
}

// buildProviders creates hosting providers for a list. Customer-to-provider
// assignment is power-law distributed: a few giants host most domains,
// which is what produces the high unique-record ratios of Table 5.
func (w *World) buildProviders(l List, n int) []*provider {
	if n < 1 {
		n = 1
	}
	out := make([]*provider, n)
	for i := range out {
		addr := w.allocIP()
		h1 := dnswire.NewName(fmt.Sprintf("ns1.host%d-%s.net", i, l))
		h2 := dnswire.NewName(fmt.Sprintf("ns2.host%d-%s.net", i, l))
		p := &provider{
			hosts: []dnswire.Name{h1, h2},
			addr:  addr,
			srv:   w.serverAt(addr, string(h1)),
		}
		w.HostAddr[h1] = addr
		w.HostAddr[h2] = addr
		out[i] = p
	}
	return out
}

// pickProvider samples a provider with a power-law preference for low
// indices.
func pickProvider(ps []*provider, r *rand.Rand) *provider {
	x := r.Float64()
	idx := int(math.Floor(float64(len(ps)) * x * x * x))
	if idx >= len(ps) {
		idx = len(ps) - 1
	}
	return ps[idx]
}

func (p *provider) customerAddr(r *rand.Rand, share int, alloc func() netip.Addr) string {
	if share < 1 {
		share = 1
	}
	// Grow the pool so that on average `share` customers share one value.
	if len(p.pool) == 0 || r.Intn(share) == 0 {
		p.pool = append(p.pool, alloc().String())
	}
	return p.pool[r.Intn(len(p.pool))]
}

func intBetween(r *rand.Rand, lohi [2]int) int {
	if lohi[1] <= lohi[0] {
		return lohi[0]
	}
	return lohi[0] + r.Intn(lohi[1]-lohi[0]+1)
}
