package zonegen

import "math/rand"

// ttlDist is a discrete TTL distribution: human-chosen round values with
// list-specific weights, calibrated to the shapes of Figure 9. Operators
// pick from a small menu (1 min, 5 min, 1 h, 1 day, 2 days ...), which is
// why the paper's CDFs are staircases.
type ttlDist []struct {
	ttl uint32
	w   float64
}

func (d ttlDist) sample(r *rand.Rand) uint32 {
	total := 0.0
	for _, e := range d {
		total += e.w
	}
	x := r.Float64() * total
	for _, e := range d {
		if x < e.w {
			return e.ttl
		}
		x -= e.w
	}
	return d[len(d)-1].ttl
}

// median returns the distribution's weighted median, used by tests to check
// calibration.
func (d ttlDist) median() uint32 {
	total := 0.0
	for _, e := range d {
		total += e.w
	}
	// Weighted median over the entries sorted by TTL. Entries are written
	// in ascending order by convention; trust but accumulate in order.
	acc := 0.0
	for _, e := range d {
		acc += e.w
		if acc >= total/2 {
			return e.ttl
		}
	}
	return d[len(d)-1].ttl
}

// Per-list NS TTL distributions (Figure 9a): the root is dominated by 1-2
// day values; Umbrella's cloud/CDN names skew very short; the general top
// lists spread over the whole menu.
var nsTTL = map[List]ttlDist{
	Root: {
		{0, 0.000}, {600, 0.015}, {1800, 0.02}, {3600, 0.04}, {21600, 0.05},
		{43200, 0.08}, {86400, 0.36}, {172800, 0.435},
	},
	Alexa: {
		{0, 0.0046}, {60, 0.03}, {300, 0.05}, {600, 0.05}, {1800, 0.07},
		{3600, 0.20}, {7200, 0.05}, {14400, 0.10}, {21600, 0.11},
		{43200, 0.10}, {86400, 0.18}, {172800, 0.055},
	},
	Majestic: {
		{0, 0.0045}, {60, 0.025}, {300, 0.04}, {600, 0.04}, {1800, 0.06},
		{3600, 0.22}, {7200, 0.06}, {14400, 0.11}, {21600, 0.10},
		{43200, 0.11}, {86400, 0.17}, {172800, 0.065},
	},
	Umbrella: {
		{0, 0.005}, {30, 0.10}, {60, 0.15}, {300, 0.13}, {600, 0.09},
		{1800, 0.05}, {3600, 0.14}, {14400, 0.06}, {21600, 0.06},
		{43200, 0.05}, {86400, 0.12}, {172800, 0.045},
	},
	NL: {
		{0, 0.0006}, {300, 0.04}, {600, 0.04}, {1800, 0.05}, {3600, 0.27},
		{7200, 0.08}, {14400, 0.26}, {21600, 0.06}, {43200, 0.05},
		{86400, 0.18}, {172800, 0.01},
	},
}

// A-record TTLs (Figure 9b): addresses are the shortest-lived records —
// clouds and CDNs renumber constantly.
var aTTL = map[List]ttlDist{
	Root: { // addresses of TLD nameservers: long
		{0, 0.0}, {3600, 0.07}, {21600, 0.08}, {43200, 0.10},
		{86400, 0.40}, {172800, 0.35},
	},
	Alexa: {
		{0, 0.0009}, {20, 0.03}, {60, 0.12}, {300, 0.30}, {600, 0.11},
		{1800, 0.09}, {3600, 0.21}, {14400, 0.06}, {21600, 0.03},
		{43200, 0.02}, {86400, 0.05},
	},
	Majestic: {
		{0, 0.0006}, {20, 0.02}, {60, 0.10}, {300, 0.26}, {600, 0.11},
		{1800, 0.09}, {3600, 0.25}, {14400, 0.07}, {21600, 0.04},
		{43200, 0.02}, {86400, 0.05},
	},
	Umbrella: {
		{0, 0.0007}, {20, 0.08}, {60, 0.25}, {300, 0.26}, {600, 0.09},
		{1800, 0.05}, {3600, 0.14}, {14400, 0.04}, {21600, 0.03},
		{43200, 0.02}, {86400, 0.04},
	},
	NL: {
		{0, 0.0001}, {60, 0.04}, {300, 0.09}, {600, 0.07}, {1800, 0.07},
		{3600, 0.42}, {7200, 0.09}, {14400, 0.12}, {43200, 0.04},
		{86400, 0.06},
	},
}

// AAAA TTLs track A but slightly longer (v6 estates change less).
var aaaaTTL = map[List]ttlDist{
	Root:     aTTL[Root],
	Alexa:    aTTL[Alexa],
	Majestic: aTTL[Majestic],
	Umbrella: aTTL[Umbrella],
	NL: {
		{0, 0.0001}, {300, 0.06}, {600, 0.05}, {1800, 0.06}, {3600, 0.38},
		{7200, 0.10}, {14400, 0.20}, {43200, 0.05}, {86400, 0.10},
	},
}

// MX TTLs (Figure 9d-ish): mail routing is mid-range.
var mxTTL = map[List]ttlDist{
	Root: {{3600, 0.3}, {86400, 0.7}},
	Alexa: {
		{0, 0.001}, {300, 0.10}, {600, 0.06}, {1800, 0.08}, {3600, 0.38},
		{14400, 0.16}, {21600, 0.06}, {43200, 0.05}, {86400, 0.11},
	},
	Majestic: {
		{0, 0.001}, {300, 0.09}, {600, 0.06}, {1800, 0.08}, {3600, 0.38},
		{14400, 0.17}, {21600, 0.06}, {43200, 0.05}, {86400, 0.11},
	},
	Umbrella: {
		{0, 0.0008}, {300, 0.14}, {600, 0.08}, {1800, 0.07}, {3600, 0.35},
		{14400, 0.14}, {21600, 0.06}, {43200, 0.05}, {86400, 0.11},
	},
	NL: {
		{0, 0.0001}, {300, 0.05}, {600, 0.04}, {1800, 0.06}, {3600, 0.48},
		{7200, 0.09}, {14400, 0.14}, {43200, 0.04}, {86400, 0.10},
	},
}

// DNSKEY TTLs: long, like NS (keys roll rarely).
var dnskeyTTL = map[List]ttlDist{
	Alexa: {
		{300, 0.03}, {3600, 0.35}, {7200, 0.08}, {14400, 0.18},
		{21600, 0.07}, {43200, 0.07}, {86400, 0.20}, {172800, 0.02},
	},
	Majestic: {
		{300, 0.03}, {3600, 0.34}, {7200, 0.08}, {14400, 0.18},
		{21600, 0.08}, {43200, 0.07}, {86400, 0.20}, {172800, 0.02},
	},
	Umbrella: {
		{300, 0.04}, {3600, 0.36}, {7200, 0.08}, {14400, 0.16},
		{21600, 0.08}, {43200, 0.07}, {86400, 0.19}, {172800, 0.02},
	},
	NL: {
		{3600, 0.42}, {7200, 0.06}, {14400, 0.27}, {21600, 0.04},
		{43200, 0.04}, {86400, 0.17},
	},
}

// CNAME TTLs: short-to-mid, CDN-style.
var cnameTTL = map[List]ttlDist{
	Alexa: {
		{20, 0.06}, {60, 0.15}, {300, 0.3}, {600, 0.12}, {1800, 0.08},
		{3600, 0.18}, {14400, 0.05}, {86400, 0.06},
	},
	Majestic: {
		{20, 0.05}, {60, 0.13}, {300, 0.3}, {600, 0.12}, {1800, 0.08},
		{3600, 0.2}, {14400, 0.06}, {86400, 0.06},
	},
	Umbrella: {
		{20, 0.12}, {60, 0.28}, {300, 0.28}, {600, 0.09}, {1800, 0.05},
		{3600, 0.12}, {14400, 0.03}, {86400, 0.03},
	},
	NL: {
		{300, 0.1}, {3600, 0.45}, {14400, 0.25}, {86400, 0.2},
	},
}

// Content-class conditioned .nl TTL distributions, calibrated so the class
// medians land on Table 7 (hours): NS 4/24/4, A 1/1/1, AAAA 0.1/1/4,
// MX 1/1/1, DNSKEY 1/24/4 for e-commerce/parking/placeholder.
var classNSTTL = map[ContentClass]ttlDist{
	Ecommerce:   {{300, 0.06}, {3600, 0.25}, {7200, 0.1}, {14400, 0.35}, {86400, 0.24}},
	Parking:     {{3600, 0.15}, {14400, 0.2}, {86400, 0.55}, {172800, 0.10}},
	Placeholder: {{300, 0.05}, {3600, 0.28}, {7200, 0.08}, {14400, 0.38}, {86400, 0.21}},
}

var classATTL = map[ContentClass]ttlDist{
	Ecommerce:   {{60, 0.08}, {300, 0.2}, {600, 0.1}, {3600, 0.45}, {14400, 0.12}, {86400, 0.05}},
	Parking:     {{300, 0.15}, {600, 0.1}, {3600, 0.5}, {14400, 0.15}, {86400, 0.10}},
	Placeholder: {{60, 0.04}, {300, 0.18}, {600, 0.09}, {3600, 0.48}, {14400, 0.14}, {86400, 0.07}},
}

var classAAAATTL = map[ContentClass]ttlDist{
	Ecommerce:   {{60, 0.2}, {300, 0.15}, {360, 0.25}, {600, 0.15}, {3600, 0.15}, {14400, 0.10}},
	Parking:     {{300, 0.2}, {600, 0.1}, {3600, 0.45}, {14400, 0.15}, {86400, 0.10}},
	Placeholder: {{600, 0.1}, {3600, 0.25}, {7200, 0.08}, {14400, 0.4}, {86400, 0.17}},
}

var classMXTTL = map[ContentClass]ttlDist{
	Ecommerce:   {{300, 0.1}, {600, 0.1}, {3600, 0.55}, {14400, 0.15}, {86400, 0.10}},
	Parking:     {{300, 0.1}, {3600, 0.55}, {14400, 0.2}, {86400, 0.15}},
	Placeholder: {{300, 0.08}, {600, 0.08}, {3600, 0.52}, {14400, 0.2}, {86400, 0.12}},
}

var classDNSKEYTTL = map[ContentClass]ttlDist{
	Ecommerce:   {{3600, 0.55}, {14400, 0.2}, {86400, 0.25}},
	Parking:     {{3600, 0.15}, {14400, 0.2}, {86400, 0.60}, {172800, 0.05}},
	Placeholder: {{3600, 0.3}, {7200, 0.05}, {14400, 0.45}, {86400, 0.20}},
}
