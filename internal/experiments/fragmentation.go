package experiments

import (
	"fmt"
	"net/netip"

	"dnsttl/internal/authoritative"
	"dnsttl/internal/dnswire"
	"dnsttl/internal/farm"
	"dnsttl/internal/obs"
	"dnsttl/internal/resolver"
	"dnsttl/internal/simnet"
	"dnsttl/internal/stats"
	"dnsttl/internal/workload"
	"dnsttl/internal/zone"
)

// farmWorld is one fragmentation cell's testbed: a root, one authoritative
// zone holding the workload's names at a fixed TTL, and counters on both
// servers so authoritative query volume can be attributed.
type farmWorld struct {
	clock             *simnet.VirtualClock
	net               *simnet.Network
	rootAddr, orgAddr netip.Addr
	rootSrv, orgSrv   *authoritative.Server
	gen               *workload.Generator
	// hotQueries counts authoritative fetches of the most popular name —
	// the record whose per-farm fetch rate the paper's fragmentation
	// argument predicts scales linearly with the frontend count.
	hotQueries uint64
}

func newFarmWorld(names int, ttl uint32, qps float64, seed int64) *farmWorld {
	w := &farmWorld{
		clock:    simnet.NewVirtualClock(),
		net:      simnet.NewNetwork(seed),
		rootAddr: netip.MustParseAddr("192.88.40.1"),
		orgAddr:  netip.MustParseAddr("192.88.40.2"),
	}
	orgAddr := w.orgAddr
	root := zone.New(dnswire.Root)
	root.MustAdd(
		dnswire.NewSOA(".", 86400, "a.root-servers.net.", "x.example.", 1, 1, 1, 1, 86400),
		dnswire.NewNS(".", 518400, "a.root-servers.net"),
		dnswire.NewA("a.root-servers.net", 518400, w.rootAddr.String()),
		dnswire.NewNS("example.org", 172800, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 172800, orgAddr.String()),
	)
	org := zone.New(dnswire.NewName("example.org"))
	org.MustAdd(
		dnswire.NewSOA("example.org", 3600, "ns1.example.org", "x.example.org", 1, 1, 1, 1, 60),
		dnswire.NewNS("example.org", 86400, "ns1.example.org"),
		dnswire.NewA("ns1.example.org", 86400, orgAddr.String()),
	)
	w.gen = workload.New(dnswire.NewName("example.org"), names, 1.0, qps, seed)
	for j, n := range w.gen.Names {
		org.MustAdd(dnswire.RR{Name: n, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: ttl, Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{198, 18, byte(j >> 8), byte(j)})}})
	}
	w.rootSrv = authoritative.NewServer(dnswire.NewName("a.root-servers.net"), w.clock)
	w.rootSrv.AddZone(root)
	w.net.Attach(w.rootAddr, w.rootSrv)
	w.orgSrv = authoritative.NewServer(dnswire.NewName("ns1.example.org"), w.clock)
	w.orgSrv.AddZone(org)
	w.net.Attach(orgAddr, w.orgSrv)
	hot := w.gen.Names[0]
	w.net.Tap = func(ev simnet.TapEvent) {
		if ev.Dst != orgAddr {
			return
		}
		if q, err := dnswire.Decode(ev.Query); err == nil && len(q.Question) > 0 && q.Q().Name == hot {
			w.hotQueries++
		}
	}
	return w
}

// FarmFragmentation reproduces the paper's §4.4 operational finding as a
// controlled sweep: a fixed Zipf/Poisson client stream is served by a
// resolver farm of 1, 4, and 16 frontends under each cache topology, at a
// short and a long zone TTL. With private per-frontend caches the
// authoritative query volume grows with the farm size — each frontend must
// fetch every record for itself, which is why short TTLs behind large
// public resolvers translate into fleet-sized load multipliers — while the
// shared and consistent-hash sharded topologies keep it flat, and the
// effective hit rate clients see stays near the single-resolver figure.
// The TTL × farm-size × topology grid is fanned across workers; every cell
// rebuilds its own world from the same seed, so cells are independent and
// the report does not depend on the worker count.
func FarmFragmentation(queries, workers int, seed int64) *Report {
	if queries <= 0 {
		queries = 4000
	}
	ttls := []uint32{60, 3600}
	frontCounts := []int{1, 4, 16}
	topos := []farm.Topology{farm.Private, farm.Shared, farm.Sharded}
	const names = 150
	const qps = 8.0

	type cell struct {
		auth    uint64
		hot     uint64
		rates   farm.Rates
		latency obs.HistogramSnapshot
	}
	ck := func(topo farm.Topology, nf int, ttl uint32) string {
		return fmt.Sprintf("%s_f%d_ttl%d", topo, nf, ttl)
	}

	type config struct {
		ttl  uint32
		nf   int
		topo farm.Topology
	}
	var grid []config
	for _, ttl := range ttls {
		for _, nf := range frontCounts {
			for _, topo := range topos {
				grid = append(grid, config{ttl: ttl, nf: nf, topo: topo})
			}
		}
	}
	cells := Sweep(len(grid), workers, func(i int) cell {
		cfg := grid[i]
		// Every cell replays the identical arrival stream: the world (and
		// its generator) is rebuilt from the same seed.
		w := newFarmWorld(names, cfg.ttl, qps, seed)
		// The cell's fleet reports through its own registry, so the hit
		// rates and client-latency quantiles below are the same numbers a
		// resolverd built on this farm would serve at /metrics.
		reg := obs.NewRegistry(w.clock)
		fm := farm.New(farm.Config{
			Frontends: cfg.nf,
			Topology:  cfg.topo,
			Placement: farm.PlaceRandom,
			Coalesce:  true,
			Policy:    resolver.DefaultPolicy(),
			Seed:      seed,
			Registry:  reg,
		}, netip.MustParseAddr("10.40.0.1"), w.net, w.clock, []netip.Addr{w.rootAddr})

		for q := 0; q < queries; q++ {
			gap, name := w.gen.Next()
			w.clock.Advance(gap)
			_, _ = fm.Resolve(name, dnswire.TypeA)
		}
		return cell{
			auth:    w.rootSrv.QueryCount() + w.orgSrv.QueryCount(),
			hot:     w.hotQueries,
			rates:   fm.Stats().Rates(),
			latency: reg.Histogram(resolver.MetricLatency).Snapshot(),
		}
	})
	results := make(map[string]cell, len(grid))
	for i, cfg := range grid {
		results[ck(cfg.topo, cfg.nf, cfg.ttl)] = cells[i]
	}

	tbl := &stats.Table{
		Title: fmt.Sprintf("Authoritative query volume and fleet hit rate vs farm size (Zipf s=1, %d names, %.0f q/s, %s queries per cell)",
			names, qps, stats.FormatCount(queries)),
		Header: []string{"TTL (s)", "frontends",
			"auth private", "auth shared", "auth sharded",
			"hit private", "hit shared", "hit sharded",
			"p50 private", "p50 shared", "p50 sharded"},
	}
	m := map[string]float64{}
	for _, ttl := range ttls {
		for _, nf := range frontCounts {
			row := []string{fmt.Sprintf("%d", ttl), fmt.Sprintf("%d", nf)}
			for _, topo := range topos {
				c := results[ck(topo, nf, ttl)]
				row = append(row, fmt.Sprintf("%d", c.auth))
				m[fmt.Sprintf("auth_%s", ck(topo, nf, ttl))] = float64(c.auth)
				m[fmt.Sprintf("hot_%s", ck(topo, nf, ttl))] = float64(c.hot)
				m[fmt.Sprintf("hit_%s", ck(topo, nf, ttl))] = c.rates.Hit
				m[fmt.Sprintf("lat_p50_ms_%s", ck(topo, nf, ttl))] = c.latency.P50
				m[fmt.Sprintf("lat_p99_ms_%s", ck(topo, nf, ttl))] = c.latency.P99
			}
			for _, topo := range topos {
				row = append(row, fmt.Sprintf("%.3f", results[ck(topo, nf, ttl)].rates.Hit))
			}
			for _, topo := range topos {
				row = append(row, fmt.Sprintf("%.1f", results[ck(topo, nf, ttl)].latency.P50))
			}
			tbl.AddRow(row...)
		}
	}
	// Headline growth factors: authoritative volume at 16 frontends over
	// the single-resolver volume, per topology — total, and for the most
	// popular name alone, where the fragmentation multiplier is closest to
	// the frontend count (tail names are dominated by compulsory misses).
	for _, ttl := range ttls {
		for _, topo := range topos {
			base, big := results[ck(topo, 1, ttl)], results[ck(topo, 16, ttl)]
			g, hg := 0.0, 0.0
			if base.auth > 0 {
				g = float64(big.auth) / float64(base.auth)
			}
			if base.hot > 0 {
				hg = float64(big.hot) / float64(base.hot)
			}
			m[fmt.Sprintf("growth_%s_ttl%d", topo, ttl)] = g
			m[fmt.Sprintf("hot_growth_%s_ttl%d", topo, ttl)] = hg
		}
	}

	return &Report{
		ID:      "Farm fragmentation",
		Title:   "Private frontend caches multiply authoritative load at short TTLs; shared/sharded farm caches keep it flat",
		Text:    tbl.String(),
		Metrics: m,
	}
}
